module sensjoin

go 1.22
