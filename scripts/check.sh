#!/usr/bin/env sh
# Full local check: what CI runs. The race pass covers the packages
# with concurrency (the experiment fan-out and the shared caches).
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test ./...
go test -race ./...
# Smoke the join-kernel benchmarks: one iteration proves the indexed
# and reference paths still run on both band and equi shapes.
go test -run=NONE -bench=ExactJoin -benchtime=1x ./internal/core
# Audit smoke: one experiment with every execution self-auditing its
# journal (conservation, reconciliation, slot order, filter soundness).
go run ./cmd/experiments -nodes 400 -only E1a -audit > /dev/null
