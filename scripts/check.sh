#!/usr/bin/env sh
# Full local check: what CI runs. The race pass covers the packages
# with concurrency (the experiment fan-out and the shared caches).
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test ./...
go test -race ./internal/bench ./internal/core ./internal/quadtree ./internal/workload
