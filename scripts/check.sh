#!/usr/bin/env sh
# Full local check: what CI runs. The race pass covers the packages
# with concurrency (the experiment fan-out and the shared caches).
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test ./...
go test -race ./...
# Smoke the join-kernel benchmarks: one iteration proves the indexed
# and reference paths still run on both band and equi shapes.
go test -run=NONE -bench=ExactJoin -benchtime=1x ./internal/core
# Audit smoke: one experiment with every execution self-auditing its
# journal (conservation, reconciliation, slot order, filter soundness,
# reliability).
go run ./cmd/experiments -nodes 400 -only E1a -audit > /dev/null
# Loss smoke: the reliable-transport sweep at two loss rates, audited —
# both methods must stay oracle-exact under packet loss.
go run ./cmd/experiments -nodes 400 -loss 0.05,0.10 -only L1 -audit > /dev/null
# Reliable-transport race pass: the ARQ, scoped recovery and the loss
# sweep under the race detector, beyond the general -race run above.
go test -race -run 'Reliable|Recovery|StandDown|Loss' ./internal/netsim ./internal/core ./internal/bench
# Sharded-simulator race pass: window workers, cross-region inboxes,
# per-region freelists and the parallel setup paths (neighbor grid,
# BFS tree, plan building) under the race detector.
go test -race -run 'Shard|Parallel' ./internal/netsim ./internal/bench ./internal/routing ./internal/topology
# Scale smoke (X7, time-budgeted): a 50k-node run of both join methods
# on the classic and the sharded engine, plus a reduced-scale run under
# the race detector. The JSON artifact is what CI uploads.
go run ./cmd/experiments -scale 50000 -shards 1,4 -scale-json BENCH_scale.json > /dev/null
go run -race ./cmd/experiments -scale 10000 -shards 4 > /dev/null
# MQO smoke (X8, reduced size): N concurrent continuous queries shared
# vs independent — every per-query table must match its independent
# counterpart. The JSON artifact is what CI uploads.
go run ./cmd/experiments -mqo -nodes 400 -mqo-n 1,2,4 -mqo-json BENCH_mqo.json > /tmp/sensjoin-mqo.txt
! grep -q DIFFER /tmp/sensjoin-mqo.txt
# MQO race pass: query-group clustering, the shared round, filter
# canonicalization and the diff scratch arena under the race detector.
go test -race -run 'QueryGroup|Canonical|DiffScratch|BuildFilterMsg|MQO' ./internal/core ./internal/query ./internal/bench
# Observability smoke: run an audited experiment with the live server
# holding, validate the Prometheus exposition (in-repo validator, no
# external deps), check /progress, pull a 1 s CPU profile, then release
# the server via /quit. The tables on stdout must not change by a byte
# versus a plain run.
go build -o /tmp/sensjoin-experiments ./cmd/experiments
go build -o /tmp/sensjoin-promcheck ./cmd/promcheck
/tmp/sensjoin-experiments -nodes 400 -only E1a,X6 -audit > /tmp/sensjoin-tables-plain.txt
/tmp/sensjoin-experiments -nodes 400 -only E1a,X6 -audit -serve 127.0.0.1:39414 -progress -hold > /tmp/sensjoin-tables-served.txt 2>/dev/null &
OBS_PID=$!
trap 'kill $OBS_PID 2>/dev/null || true' EXIT
/tmp/sensjoin-promcheck -require sensjoin_netsim_events_total,sensjoin_netsim_tx_packets_total,sensjoin_core_runs_total,sensjoin_core_phase_transitions_total,sensjoin_core_phase_seconds,sensjoin_routing_tree_depth,sensjoin_bench_cells_done_total,sensjoin_bench_node_energy_joules,sensjoin_mqo_groups,sensjoin_mqo_merged_broadcasts_total,sensjoin_mqo_dedup_tuples_total,sensjoin_mqo_bitmap_bytes_total http://127.0.0.1:39414/metrics
/tmp/sensjoin-promcheck -raw -contains '"id": "E1a"' http://127.0.0.1:39414/progress
/tmp/sensjoin-promcheck -raw 'http://127.0.0.1:39414/debug/pprof/profile?seconds=1'
/tmp/sensjoin-promcheck -raw http://127.0.0.1:39414/quit
wait $OBS_PID
trap - EXIT
cmp /tmp/sensjoin-tables-plain.txt /tmp/sensjoin-tables-served.txt
# Serving smoke (sensjoind lifecycle): start the daemon with every
# query span-sampled, run concurrent client queries (one with a
# client-chosen trace ID), validate every sensjoind_* metric family —
# including the per-phase latency histogram and the traced-query
# counter — with the in-repo Prometheus validator, assert the flight
# recorder lists the traced query and serves its non-empty span tree,
# then drain with SIGTERM — the daemon must exit 0.
go build -o /tmp/sensjoind ./cmd/sensjoind
go build -o /tmp/sensjoinctl ./cmd/sensjoinctl
/tmp/sensjoind -listen 127.0.0.1:39415 -http 127.0.0.1:39416 -nodes 150 -trace-sample 1 2>/dev/null &
SJD_PID=$!
trap 'kill $SJD_PID 2>/dev/null || true' EXIT
i=0; until /tmp/sensjoin-promcheck -raw http://127.0.0.1:39416/healthz >/dev/null 2>&1; do
  i=$((i+1)); [ $i -le 50 ] || exit 1; sleep 0.1
done
/tmp/sensjoinctl -addr 127.0.0.1:39415 -trace ci-smoke-1 'SELECT A.temp, B.hum FROM Sensors A, Sensors B WHERE A.temp - B.temp > 5.0 ONCE' > /dev/null 2>&1 & C1=$!
/tmp/sensjoinctl -addr 127.0.0.1:39415 'SELECT MIN(distance(A.x, A.y, B.x, B.y)) FROM Sensors A, Sensors B WHERE A.temp - B.temp > 6.0 ONCE' > /dev/null 2>&1 & C2=$!
/tmp/sensjoinctl -addr 127.0.0.1:39415 -rounds 2 'SELECT A.temp FROM Sensors A, Sensors B WHERE A.temp = B.temp SAMPLE PERIOD 30' > /dev/null 2>&1 & C3=$!
wait $C1; wait $C2; wait $C3
/tmp/sensjoin-promcheck -require sensjoind_sessions,sensjoind_sessions_total,sensjoind_queries_total,sensjoind_rejected_total,sensjoind_prepared_cache_hits_total,sensjoind_prepared_cache_misses_total,sensjoind_queue_depth,sensjoind_active_queries,sensjoind_query_seconds,sensjoind_shared_queries_total,sensjoind_shared_rounds_total,sensjoind_traced_queries_total,sensjoind_query_phase_seconds http://127.0.0.1:39416/metrics
/tmp/sensjoin-promcheck -raw -contains '"TraceID": "ci-smoke-1"' http://127.0.0.1:39416/debug/queries
/tmp/sensjoin-promcheck -raw -contains '"ev"' 'http://127.0.0.1:39416/debug/queries?trace=ci-smoke-1'
kill -TERM $SJD_PID
wait $SJD_PID
trap - EXIT
# Sharded-trace determinism: the journal a sharded engine records must
# be byte-identical to the classic engine's, and six audit passes must
# stay clean on it; sharded metrics must not fall back to classic.
go test -run 'TestShardTrace|TestShardMetrics' ./internal/core
# Flight-recorder & trace-propagation race pass (beyond the general
# server race run): the bounded ring under concurrent writers/readers,
# and per-member span attribution through a shared query group.
go test -race -run 'Flight|Trace' ./internal/server
# Serving load (X9, time-budgeted): sustained QPS through the daemon
# with every table checked byte-for-byte against direct execution. The
# JSON artifact is what CI uploads.
go run ./cmd/experiments -serve-load -serve-seconds 1 -serve-load-json BENCH_serve.json > /tmp/sensjoin-serve.txt
grep -q '"ByteIdentical": true' BENCH_serve.json
# Serving race pass: sessions, admission, the prepared cache and shared
# grouping under the race detector.
go test -race ./internal/server ./internal/proto ./pkg/client
go test -race -run 'Prepared|Fingerprint' ./internal/core ./internal/query
# Churn smoke (X10, reduced size): the churn-resilience ladder — seeded
# node churn & mobility with mid-round tree repair. The artifact must
# show zero churn-safety audit violations (no silent wrong answers) and
# at least one mid-round repair actually exercised.
go run ./cmd/experiments -churn -churn-nodes 120 -churn-rounds 6 -churn-rates 0,0.01 -churn-json BENCH_churn.json > /dev/null
grep -q '"violations_total": 0' BENCH_churn.json
! grep -q '"repairs_total": 0' BENCH_churn.json
# Churn race pass: the injector, mid-round repair, the soak test and
# the X10 harness under the race detector.
go test -race -run 'Churn|Repair' ./internal/netsim ./internal/core ./internal/routing ./internal/bench ./internal/trace
