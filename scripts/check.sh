#!/usr/bin/env sh
# Full local check: what CI runs. The race pass covers the packages
# with concurrency (the experiment fan-out and the shared caches).
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test ./...
go test -race ./...
# Smoke the join-kernel benchmarks: one iteration proves the indexed
# and reference paths still run on both band and equi shapes.
go test -run=NONE -bench=ExactJoin -benchtime=1x ./internal/core
# Audit smoke: one experiment with every execution self-auditing its
# journal (conservation, reconciliation, slot order, filter soundness,
# reliability).
go run ./cmd/experiments -nodes 400 -only E1a -audit > /dev/null
# Loss smoke: the reliable-transport sweep at two loss rates, audited —
# both methods must stay oracle-exact under packet loss.
go run ./cmd/experiments -nodes 400 -loss 0.05,0.10 -only L1 -audit > /dev/null
# Reliable-transport race pass: the ARQ, scoped recovery and the loss
# sweep under the race detector, beyond the general -race run above.
go test -race -run 'Reliable|Recovery|StandDown|Loss' ./internal/netsim ./internal/core ./internal/bench
