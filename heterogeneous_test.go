package sensjoin_test

import (
	"testing"

	"sensjoin"
)

// setupZones splits a network into two positional relations and returns
// the network plus the member counts of each zone.
func setupZones(t *testing.T, nodes int, seed int64) (*sensjoin.Network, int, int) {
	t.Helper()
	net, err := sensjoin.NewNetwork(sensjoin.Config{Nodes: nodes, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	truth, err := net.GroundTruth("SELECT S.x FROM Sensors S ONCE")
	if err != nil {
		t.Fatal(err)
	}
	half := net.Area().Width() / 2
	west := make(map[int]bool)
	for i, row := range truth.Rows {
		if row[0] < half {
			west[i+1] = true
		}
	}
	if err := net.DefineRelation("West", func(n int) bool { return west[n] }); err != nil {
		t.Fatal(err)
	}
	if err := net.DefineRelation("East", func(n int) bool { return !west[n] }); err != nil {
		t.Fatal(err)
	}
	return net, len(west), nodes - len(west)
}

func TestHeterogeneousJoinMatchesOracle(t *testing.T) {
	net, _, _ := setupZones(t, 200, 31)
	const q = `
		SELECT A.temp, B.temp FROM West A, East B
		WHERE A.temp - B.temp > 4 ONCE`
	truth, err := net.GroundTruth(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []sensjoin.Method{sensjoin.SENSJoin(), sensjoin.ExternalJoin()} {
		res, err := net.Execute(q, m)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if len(res.Rows) != len(truth.Rows) {
			t.Fatalf("%s: %d rows, oracle %d", m.Name(), len(res.Rows), len(truth.Rows))
		}
		if !res.Complete {
			t.Fatalf("%s: incomplete", m.Name())
		}
	}
}

func TestHeterogeneousMembership(t *testing.T) {
	net, wCount, eCount := setupZones(t, 200, 37)
	if wCount == 0 || eCount == 0 {
		t.Skip("degenerate split")
	}
	// A collection query on one relation returns exactly its members.
	res, err := net.Execute("SELECT A.temp FROM West A ONCE", sensjoin.ExternalJoin())
	if err != nil {
		t.Fatal(err)
	}
	if res.MemberNodes != wCount || len(res.Rows) != wCount {
		t.Fatalf("West members = %d rows = %d, want %d", res.MemberNodes, len(res.Rows), wCount)
	}
	// The cross join counts the union of both relations' members.
	res, err = net.Execute("SELECT A.temp, B.temp FROM West A, East B WHERE A.temp - B.temp > 2 ONCE", sensjoin.ExternalJoin())
	if err != nil {
		t.Fatal(err)
	}
	if res.MemberNodes != wCount+eCount {
		t.Fatalf("join members = %d, want %d", res.MemberNodes, wCount+eCount)
	}
}

func TestDefineRelationValidation(t *testing.T) {
	net, _, _ := setupZones(t, 50, 41)
	if err := net.DefineRelation("West", func(int) bool { return true }); err == nil {
		t.Fatal("duplicate relation must fail")
	}
	if err := net.DefineRelation("", func(int) bool { return true }); err == nil {
		t.Fatal("empty name must fail")
	}
	if err := net.DefineRelation("Q", nil); err == nil {
		t.Fatal("nil membership must fail")
	}
	// The built-in homogeneous relation still works afterwards.
	res, err := net.Execute("SELECT A.temp FROM Sensors A ONCE", sensjoin.ExternalJoin())
	if err != nil {
		t.Fatal(err)
	}
	if res.MemberNodes != 50 {
		t.Fatalf("Sensors members = %d, want 50", res.MemberNodes)
	}
}

func TestHeterogeneousSelfAndCrossMix(t *testing.T) {
	// Three-way: one zone twice (self-join) plus the other zone.
	net, wCount, _ := setupZones(t, 120, 43)
	if wCount < 5 {
		t.Skip("too few west nodes")
	}
	const q = `
		SELECT A.temp, B.temp, C.temp FROM West A, West B, East C
		WHERE A.temp - B.temp > 3 AND abs(B.temp - C.temp) < 1 ONCE`
	truth, err := net.GroundTruth(q)
	if err != nil {
		t.Fatal(err)
	}
	res, err := net.Execute(q, sensjoin.SENSJoin())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(truth.Rows) {
		t.Fatalf("rows %d vs oracle %d", len(res.Rows), len(truth.Rows))
	}
}
