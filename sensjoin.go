// Package sensjoin is a from-scratch reproduction of SENS-Join, the
// energy-efficient general-purpose join method for wireless sensor
// networks (Stern, Buchmann, Böhm: "Towards Efficient Processing of
// General-Purpose Joins in Sensor Networks", ICDE 2009).
//
// The package simulates a sensor network at packet granularity and
// executes declarative join queries over it with either SENS-Join or the
// external-join baseline, reporting the communication costs the paper's
// evaluation is built on.
//
// Quickstart:
//
//	net, err := sensjoin.NewNetwork(sensjoin.Config{Nodes: 500, Seed: 1})
//	if err != nil { ... }
//	res, err := net.Execute(`
//	    SELECT MIN(distance(A.x, A.y, B.x, B.y))
//	    FROM Sensors A, Sensors B
//	    WHERE A.temp - B.temp > 10.0 ONCE`, sensjoin.SENSJoin())
//
// See examples/ for complete programs and cmd/experiments for the
// reproduction of every figure in the paper.
package sensjoin

import (
	"fmt"
	"io"

	"sensjoin/internal/compress"
	"sensjoin/internal/core"
	"sensjoin/internal/field"
	"sensjoin/internal/metrics"
	"sensjoin/internal/netsim"
	"sensjoin/internal/query"
	"sensjoin/internal/relation"
	"sensjoin/internal/stats"
	"sensjoin/internal/topology"
	"sensjoin/internal/trace"
)

// Config describes the simulated deployment.
type Config struct {
	// Nodes is the number of sensor nodes (excluding the base station).
	Nodes int
	// Seed makes placement and sensor fields reproducible.
	Seed int64
	// RangeM is the radio range in meters; 0 means the paper's 50 m.
	RangeM float64
	// AreaSideM is the square deployment side in meters; 0 scales the
	// area to the paper's density (1500 nodes on 1050x1050 m).
	AreaSideM float64
	// MaxPacket is the maximum packet size in bytes; 0 means the
	// paper's 48.
	MaxPacket int
	// BaseAtCenter places the base station at the area center instead
	// of the corner.
	BaseAtCenter bool
	// QuietFields selects low-noise, slowly drifting sensor fields:
	// consecutive snapshots stay correlated at quantization-cell
	// granularity, which is what the incremental filter mode
	// (ContinuousSENSJoin) exploits. The default fields carry realistic
	// measurement noise of about half a temperature cell per reading.
	QuietFields bool
}

// Area reports the deployment extent.
type Area struct {
	W, H float64
}

// Width returns the horizontal extent in meters.
func (a Area) Width() float64 { return a.W }

// Height returns the vertical extent in meters.
func (a Area) Height() float64 { return a.H }

// Result is a query execution's outcome.
type Result struct {
	// Columns names the output columns.
	Columns []string
	// Rows holds the result values; aggregate queries yield one row.
	Rows [][]float64
	// ContributingNodes counts distinct nodes appearing in the result.
	ContributingNodes int
	// MemberNodes counts nodes belonging to the queried relations.
	MemberNodes int
	// Complete is false when failures caused data loss (§IV-F).
	Complete bool
	// ResponseTime is the simulated seconds from start to result.
	ResponseTime float64
	// Executions counts protocol executions (>1 after failure recovery).
	Executions int
}

// Fraction returns ContributingNodes / MemberNodes, the paper's main
// workload parameter.
func (r *Result) Fraction() float64 {
	if r.MemberNodes == 0 {
		return 0
	}
	return float64(r.ContributingNodes) / float64(r.MemberNodes)
}

func fromCore(res *core.Result, executions int) *Result {
	rows := make([][]float64, len(res.Rows))
	for i, r := range res.Rows {
		rows[i] = []float64(r)
	}
	return &Result{
		Columns:           res.Columns,
		Rows:              rows,
		ContributingNodes: res.ContributingNodes,
		MemberNodes:       res.MemberNodes,
		Complete:          res.Complete,
		ResponseTime:      res.ResponseTime,
		Executions:        executions,
	}
}

// Method is a join execution strategy.
type Method struct {
	m core.Method
}

// Name identifies the method.
func (m Method) Name() string { return m.m.Name() }

// SENSJoin returns the paper's method with its default parameters
// (Dmax = 30 B, filter memory limit 500 B, quadtree representation).
func SENSJoin() Method { return Method{core.NewSENSJoin()} }

// ExternalJoin returns the state-of-the-art baseline: ship all tuples to
// the base station and join there.
func ExternalJoin() Method { return Method{core.External{}} }

// ContinuousSENSJoin returns SENS-Join with incremental filter
// dissemination across executions — the paper's §VIII follow-on idea:
// under temporal correlation, consecutive rounds of a continuous query
// transmit only the filter's delta against the previous round. Reuse the
// returned Method value for every round (Monitor does this naturally).
// The first round costs the same as plain SENS-Join; desynchronized
// nodes (Treecut sleep, tree repair, lost broadcasts) fall back to a
// conservative assume-all round and resynchronize in the next one, so
// every round's result stays exact.
func ContinuousSENSJoin() Method { return Method{core.NewContinuousSENSJoin()} }

// SENSJoinNoQuad returns SENS-Join with raw join-attribute tuples instead
// of the quadtree (the paper's SENS_No-Quad baseline, Fig. 16).
func SENSJoinNoQuad() Method {
	return Method{&core.SENSJoin{Options: core.Options{Rep: core.RawRep{}}}}
}

// MediatedJoin returns the "mediated join" baseline of Coman et al.
// (paper §II): all tuples travel to a mediator node at the member
// centroid, the join happens there, and only the result rows travel to
// the base station. Efficient solely when the input relations sit in
// small regions away from the base station and the join is selective.
func MediatedJoin() Method { return Method{core.Mediated{}} }

// SemiJoinMethod returns the in-network semi-join baseline (paper §II,
// Coman et al. / Yu et al. style): relation A's join-attribute values
// are flooded over the network and only matching B tuples are shipped;
// A's tuples ship in full. Two-relation queries only.
func SemiJoinMethod() Method { return Method{core.SemiJoin{}} }

// SENSJoinZlib returns SENS-Join with zlib-compressed raw tuples (§VI-B).
func SENSJoinZlib() Method {
	return Method{&core.SENSJoin{Options: core.Options{Rep: core.CompressedRep{Codec: compress.Zlib{}}}}}
}

// SENSJoinBWZ returns SENS-Join with the bzip2-style BWZ compressor
// (§VI-B).
func SENSJoinBWZ() Method {
	return Method{&core.SENSJoin{Options: core.Options{Rep: core.CompressedRep{Codec: compress.BWZ{}}}}}
}

// Options tunes SENS-Join; see SENSJoinWithOptions.
type Options struct {
	// Dmax is the Treecut threshold in bytes (default 30).
	Dmax int
	// FilterMemLimit bounds the stored subtree structure (default 500).
	FilterMemLimit int
	// DisableTreecut switches the Treecut mechanism off.
	DisableTreecut bool
	// DisableSelectiveForwarding forwards the unpruned filter.
	DisableSelectiveForwarding bool
}

// SENSJoinWithOptions returns SENS-Join with custom parameters.
func SENSJoinWithOptions(o Options) Method {
	return Method{&core.SENSJoin{Options: core.Options{
		Dmax:                       o.Dmax,
		FilterMemLimit:             o.FilterMemLimit,
		DisableTreecut:             o.DisableTreecut,
		DisableSelectiveForwarding: o.DisableSelectiveForwarding,
	}}}
}

// Network is a simulated sensor network ready to execute queries.
type Network struct {
	r       *core.Runner
	clock   float64
	members map[string]func(int) bool
	reg     *metrics.Registry
}

// NewNetwork builds a connected random deployment with the standard
// "Sensors" relation (temp, hum, pres, light, x, y) over spatially
// correlated synthetic fields.
func NewNetwork(cfg Config) (*Network, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("sensjoin: Nodes must be positive")
	}
	setup := core.SetupConfig{Nodes: cfg.Nodes, Seed: cfg.Seed}
	if cfg.BaseAtCenter {
		setup.Base = topology.BaseCenter
	}
	if cfg.RangeM > 0 || cfg.AreaSideM > 0 {
		setup.Area = topology.Config{Range: cfg.RangeM}
		if cfg.AreaSideM > 0 {
			setup.Area.Area = topology.ScaledArea(cfg.Nodes) // replaced below
			setup.Area.Area.MaxX = setup.Area.Area.MinX + cfg.AreaSideM
			setup.Area.Area.MaxY = setup.Area.Area.MinY + cfg.AreaSideM
		}
	}
	if cfg.MaxPacket > 0 {
		radio := netsim.DefaultRadio()
		radio.MaxPacket = cfg.MaxPacket
		setup.Radio = radio
	}
	r, err := core.NewRunner(setup)
	if err != nil {
		return nil, err
	}
	if cfg.QuietFields {
		r.Env = field.QuietEnvironment(r.Dep.Area, cfg.Seed+1000)
	}
	return &Network{r: r}, nil
}

// DefineRelation registers an additional sensor relation (heterogeneous
// networks, paper §III: "groups of nodes form different relations"). The
// relation shares the standard attribute set and quantization; member
// decides which nodes belong to it. Queries can then join across
// relations, e.g. FROM Heaters A, Coolers B.
func (n *Network) DefineRelation(name string, member func(node int) bool) error {
	if name == "" || member == nil {
		return fmt.Errorf("sensjoin: DefineRelation needs a name and a membership function")
	}
	if _, exists := n.r.Catalog[name]; exists {
		return fmt.Errorf("sensjoin: relation %q already defined", name)
	}
	std := n.r.Catalog["Sensors"]
	schema := &relation.Schema{Name: name, Attrs: append([]relation.AttrDef(nil), std.Attrs...)}
	n.r.Catalog[name] = schema
	if n.members == nil {
		n.members = make(map[string]func(int) bool)
		n.r.Member = func(id topology.NodeID, rel string) bool {
			if f, ok := n.members[rel]; ok {
				return f(int(id))
			}
			return true // relations without a membership function are homogeneous
		}
	}
	n.members[name] = member
	return nil
}

// Nodes returns the sensor node count (excluding the base station).
func (n *Network) Nodes() int { return n.r.Dep.N() - 1 }

// Area returns the deployment extent.
func (n *Network) Area() Area {
	return Area{W: n.r.Dep.Area.Width(), H: n.r.Dep.Area.Height()}
}

// AvgDegree returns the mean neighborhood size.
func (n *Network) AvgDegree() float64 { return n.r.Dep.AvgDegree() }

// TreeDepth returns the routing tree's maximum depth.
func (n *Network) TreeDepth() int { return n.r.Tree.MaxDepth }

// Validate parses the query and checks it against the catalog without
// executing anything.
func (n *Network) Validate(src string) error {
	_, err := n.r.ExecSQL(src, n.clock)
	return err
}

// Explain renders the query's execution plan: predicate split, join
// attributes, quantization grid, level schedule, and the pre-computation
// estimates on the current snapshot. Nothing is transmitted.
func (n *Network) Explain(src string) (string, error) {
	x, err := n.r.ExecSQL(src, n.clock)
	if err != nil {
		return "", err
	}
	return core.Explain(x)
}

// Advice is the cost model's recommendation; see Advise.
type Advice struct {
	// Use names the recommended method ("sens-join" or "external-join").
	Use string
	// PredictedExternal and PredictedSENS estimate the packet counts.
	PredictedExternal float64
	PredictedSENS     float64
	// ExpectedFraction is the snapshot's contributing fraction.
	ExpectedFraction float64
	// BreakEvenFraction estimates where the two methods cost the same
	// on this deployment.
	BreakEvenFraction float64
}

// Advise predicts, without transmitting anything, which general-purpose
// method is cheaper for the query on the current snapshot — the paper's
// §IV-E join-location analysis turned into a planner. The underlying
// analytical model is validated against the simulator in the tests.
func (n *Network) Advise(src string) (*Advice, error) {
	x, err := n.r.ExecSQL(src, n.clock)
	if err != nil {
		return nil, err
	}
	a, err := core.Advise(x)
	if err != nil {
		return nil, err
	}
	return &Advice{
		Use:               a.Use,
		PredictedExternal: a.PredictedExternal,
		PredictedSENS:     a.PredictedSENS,
		ExpectedFraction:  a.ExpectedFraction,
		BreakEvenFraction: a.BreakEvenFraction,
	}, nil
}

// Execute runs a snapshot query with the given method and returns the
// result. Communication costs accumulate in the network's statistics
// (see PhaseTable, TotalPackets); call ResetStats between runs to
// compare methods.
func (n *Network) Execute(src string, m Method) (*Result, error) {
	res, err := n.r.Run(src, m.m, n.clock)
	if err != nil {
		return nil, err
	}
	return fromCore(res, 1), nil
}

// ExecuteWithRecovery runs the query and re-executes after routing-tree
// repair when failures made the result incomplete (§IV-F).
func (n *Network) ExecuteWithRecovery(src string, m Method, maxAttempts int) (*Result, error) {
	res, attempts, err := n.r.RunWithRecovery(src, m.m, n.clock, maxAttempts)
	if err != nil {
		return nil, err
	}
	return fromCore(res, attempts), nil
}

// Monitor executes a SAMPLE PERIOD query for the given number of rounds,
// advancing the simulated clock (and the sensor fields) by the query's
// period between rounds.
func (n *Network) Monitor(src string, m Method, rounds int) ([]*Result, error) {
	q, err := query.Parse(src)
	if err != nil {
		return nil, err
	}
	if q.Mode != query.Periodic {
		return nil, fmt.Errorf("sensjoin: Monitor needs a SAMPLE PERIOD query, got %q", src)
	}
	var out []*Result
	for i := 0; i < rounds; i++ {
		res, err := n.r.Run(src, m.m, n.clock)
		if err != nil {
			return out, err
		}
		out = append(out, fromCore(res, 1))
		n.clock += q.Period
	}
	return out, nil
}

// DisseminateQuery floods the query through the network, charging the
// cost under the "query-dissem" phase (identical for all methods).
func (n *Network) DisseminateQuery(src string) error {
	x, err := n.r.ExecSQL(src, n.clock)
	if err != nil {
		return err
	}
	core.DisseminateQuery(x)
	return nil
}

// GroundTruth computes the query result directly from the snapshot,
// bypassing the network (the oracle used in tests).
func (n *Network) GroundTruth(src string) (*Result, error) {
	x, err := n.r.ExecSQL(src, n.clock)
	if err != nil {
		return nil, err
	}
	res, err := core.GroundTruth(x)
	if err != nil {
		return nil, err
	}
	return fromCore(res, 0), nil
}

// ResetStats clears all communication counters.
func (n *Network) ResetStats() { n.r.Stats.Reset() }

// PhaseTable formats the per-phase communication totals.
func (n *Network) PhaseTable() string { return n.r.Stats.PhaseTable() }

// PhasePackets returns the transmitted packets of one accounting phase
// ("ja-collect", "filter-dissem", "final-collect", "extern-collect",
// "query-dissem", ...); PhaseTable lists the labels seen.
func (n *Network) PhasePackets(phase string) int64 {
	return n.r.Stats.TotalTx(phase)
}

// TotalPackets sums the transmitted packets over the method's phases.
func (n *Network) TotalPackets(m Method) int64 {
	return n.r.Stats.TotalTx(m.m.Phases()...)
}

// PerNodePackets returns transmitted packets per node over the method's
// phases; index 0 is the base station.
func (n *Network) PerNodePackets(m Method) []int64 {
	return n.r.Stats.PerNodeTx(m.m.Phases()...)
}

// MaxLoadedNode returns the most loaded sensor node and its packet count
// over the method's phases.
func (n *Network) MaxLoadedNode(m Method) (node int, packets int64) {
	id, p := n.r.Stats.MaxTx(m.m.Phases()...)
	return int(id), p
}

// TotalEnergy estimates the radio energy in Joules spent by all sensor
// nodes so far, under a CC2420-class energy model.
func (n *Network) TotalEnergy() float64 {
	return n.r.Stats.TotalEnergy(stats.CC2420Model())
}

// TraceEvent is one radio-level event: "tx" (transmission), "rx"
// (delivery to one receiver, stamped at its arrival time), "drop" (link
// down / dead receiver) or "lost" (probabilistic loss). Events of one
// logical message share MsgID.
type TraceEvent struct {
	Event    string
	At       float64 // simulated seconds
	MsgID    int64
	Phase    string
	Src, Dst int
	Bytes    int
	Packets  int
}

// SetTrace installs a radio-level observer (nil disables). Useful for
// debugging protocol behaviour; see `sensjoin -trace`.
func (n *Network) SetTrace(fn func(TraceEvent)) {
	if fn == nil {
		n.r.Net.SetTracer(nil)
		return
	}
	n.r.Net.SetTracer(func(ev netsim.TraceEvent) {
		fn(TraceEvent{
			Event: ev.Event, At: ev.At, MsgID: ev.MsgID, Phase: ev.Phase,
			Src: int(ev.Src), Dst: int(ev.Dst), Bytes: ev.Bytes, Packets: ev.Packets,
		})
	})
}

// EnableMetrics attaches the network's whole stack — event loop, radio,
// reliable transport, protocol phases — to live instruments (counters,
// gauges, histograms). Render them with WriteMetrics. Metrics observe
// the simulation without perturbing it: results and packet accounting
// are identical with metrics on or off. Idempotent.
func (n *Network) EnableMetrics() {
	if n.reg == nil {
		n.reg = metrics.New()
	}
	n.r.EnableMetrics(n.reg)
}

// WriteMetrics renders the live instruments in Prometheus text format
// (version 0.0.4). Requires EnableMetrics.
func (n *Network) WriteMetrics(w io.Writer) error {
	if n.reg == nil {
		return fmt.Errorf("sensjoin: no metrics; call EnableMetrics before executing")
	}
	return n.reg.WritePrometheus(w)
}

// EnableJournal starts recording a structured execution journal: every
// radio event plus the protocol-level span events (phase transitions,
// Treecut exits, proxy takeovers, prune and suppress decisions, recovery
// attempts). The journal grows across executions; export it with
// WriteTrace / WriteChromeTrace, summarize it with PhaseBreakdown /
// Timeline, or audit executions with ExecuteAudited. Idempotent.
func (n *Network) EnableJournal() { n.r.EnableTrace() }

// WriteTrace writes the recorded journal as JSON Lines, one event per
// line. Requires EnableJournal (or a prior ExecuteAudited).
func (n *Network) WriteTrace(w io.Writer) error {
	if n.r.Trace == nil {
		return fmt.Errorf("sensjoin: no journal; call EnableJournal before executing")
	}
	return trace.WriteJSONL(w, n.r.Trace.Journal())
}

// WriteChromeTrace writes the journal in Chrome trace_event format;
// open the file at chrome://tracing or https://ui.perfetto.dev.
func (n *Network) WriteChromeTrace(w io.Writer) error {
	if n.r.Trace == nil {
		return fmt.Errorf("sensjoin: no journal; call EnableJournal before executing")
	}
	return trace.WriteChrome(w, n.r.Trace.Journal())
}

// PhaseBreakdown formats the journal's per-phase response-time and
// traffic table (empty without a journal).
func (n *Network) PhaseBreakdown() string {
	if n.r.Trace == nil {
		return ""
	}
	return trace.PhaseBreakdown(n.r.Trace.Journal())
}

// Timeline renders the journal as an ASCII phase timeline of the given
// width (empty without a journal).
func (n *Network) Timeline(width int) string {
	if n.r.Trace == nil {
		return ""
	}
	return trace.Timeline(n.r.Trace.Journal(), width)
}

// ExecuteAudited runs the query like Execute and then audits the
// execution's journal segment: conservation (every delivery traces back
// to a transmission; drops and losses explain the gaps), reconciliation
// (journal totals equal the statistics, bit-exact), slot-schedule
// ordering (no parent transmits before its children in collection
// phases) and filter soundness (no suppressed tuple belongs to the exact
// result — checked on fault-free runs). It returns the violations as
// human-readable strings; a correct execution returns none. Enables the
// journal on demand.
func (n *Network) ExecuteAudited(src string, m Method) (*Result, []string, error) {
	res, violations, err := n.r.AuditRun(src, m.m, n.clock)
	if err != nil {
		return nil, nil, err
	}
	out := make([]string, len(violations))
	for i, v := range violations {
		out[i] = v.String()
	}
	return fromCore(res, 1), out, nil
}

// SetPacketLoss enables per-packet Bernoulli loss (rate in [0,1)): a
// message is lost when any of its packets is. Executions under loss
// report Complete=false when result tuples went missing; recover with
// ExecuteWithRecovery. Rate 0 disables the model.
func (n *Network) SetPacketLoss(rate float64, seed int64) {
	n.r.Net.SetLossRate(rate, seed)
}

// FailLink forces the link between nodes a and b down (both directions).
func (n *Network) FailLink(a, b int) {
	n.r.Net.LinkDown(topology.NodeID(a), topology.NodeID(b))
}

// RestoreLink brings a failed link back up.
func (n *Network) RestoreLink(a, b int) {
	n.r.Net.LinkUp(topology.NodeID(a), topology.NodeID(b))
}

// KillNode takes a node offline.
func (n *Network) KillNode(id int) { n.r.Net.KillNode(topology.NodeID(id)) }

// ReviveNode brings a node back online.
func (n *Network) ReviveNode(id int) { n.r.Net.ReviveNode(topology.NodeID(id)) }

// RepairRouting re-forms the routing tree over the live links, standing
// in for the collection-tree protocol's self-repair.
func (n *Network) RepairRouting() { n.r.RebuildTree() }

// RoutingParent returns node id's parent in the routing tree (-1 for the
// base station and unreachable nodes).
func (n *Network) RoutingParent(id int) int { return int(n.r.Tree.Parent[id]) }

// Clock returns the simulated sampling time used for the next Execute.
func (n *Network) Clock() float64 { return n.clock }

// AdvanceClock moves the sampling time forward by dt seconds; drifting
// sensor fields change accordingly.
func (n *Network) AdvanceClock(dt float64) { n.clock += dt }
