// Package client is the Go client for sensjoind, the sensjoin query
// daemon. One Client multiplexes any number of concurrent queries over
// a single connection:
//
//	c, err := client.Dial("127.0.0.1:7077")
//	defer c.Close()
//	table, err := c.Query(`SELECT A.temp, B.hum FROM Sensors A, Sensors B
//	                       WHERE A.temp - B.temp > 8.0 ONCE`)
//
// Continuous queries stream one Table per epoch:
//
//	st, err := c.Stream(src, client.Options{Rounds: 5})
//	for {
//		table, err := st.Next()
//		if err == io.EOF { break }
//		...
//	}
//
// With DialConfig.Reconnect set, a broken connection fails the queries
// that were in flight on it (their execution state is gone) but the
// Client re-dials with capped exponential backoff before the next
// submission instead of staying poisoned. Options.Timeout (or the
// DialConfig.QueryTimeout default) bounds how long Next waits for an
// epoch; expiry cancels the query server-side and surfaces as a
// *TimeoutError.
//
// The wire protocol is internal/proto; see PROTOCOL.md.
package client

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"sensjoin/internal/proto"
)

// Options tune one query submission.
type Options struct {
	// Method selects the join method: "" / "sens" (default) or
	// "external".
	Method string
	// At is the snapshot time of the first epoch.
	At float64
	// Rounds caps a periodic query's epochs (default 1).
	Rounds int
	// Nodes/Seed override the server's default deployment (0 = server
	// default).
	Nodes int
	Seed  int64
	// Timeout bounds each Next call on this query's stream; expiry
	// cancels the query and Next returns a *TimeoutError. 0 uses the
	// client's DialConfig.QueryTimeout (which defaults to none).
	Timeout time.Duration
	// TraceID names this query in the server's flight recorder
	// (/debug/queries). Empty lets the server assign one; either way
	// the effective ID is returned on Table.TraceID.
	TraceID string
}

// DialConfig tunes a connection and its failure behaviour.
type DialConfig struct {
	// Addr is the server address (host:port).
	Addr string
	// Timeout bounds connect + handshake (default 10s).
	Timeout time.Duration
	// Reconnect re-dials a broken connection (capped exponential
	// backoff with jitter) before the next query submission instead of
	// failing every later call with the stale connection error.
	Reconnect bool
	// BackoffBase is the first reconnect delay (default 50ms).
	BackoffBase time.Duration
	// BackoffMax caps the reconnect delay (default 5s).
	BackoffMax time.Duration
	// MaxAttempts bounds the dial attempts of one reconnect (default 5).
	MaxAttempts int
	// QueryTimeout is the default per-query deadline applied when
	// Options.Timeout is zero; 0 means no deadline.
	QueryTimeout time.Duration
}

func (c DialConfig) withDefaults() DialConfig {
	if c.Timeout == 0 {
		c.Timeout = 10 * time.Second
	}
	if c.BackoffBase == 0 {
		c.BackoffBase = 50 * time.Millisecond
	}
	if c.BackoffMax == 0 {
		c.BackoffMax = 5 * time.Second
	}
	if c.MaxAttempts == 0 {
		c.MaxAttempts = 5
	}
	return c
}

// Table is one epoch's result table.
type Table struct {
	Columns []string
	Rows    [][]float64
	// Epoch numbers the table within a continuous query (0-based).
	Epoch int
	// Time is the snapshot time the epoch sampled.
	Time         float64
	Complete     bool
	Contributing int
	Members      int
	ResponseTime float64
	// CacheHit reports that the server served the compiled plan from
	// its prepared-query cache.
	CacheHit bool
	// Shared reports shared (grouped) execution with ClusterSize
	// queries per protocol round.
	Shared      bool
	ClusterSize int
	// TraceID identifies this query in the server's flight recorder:
	// GET /debug/queries on the observability port lists recent
	// executions (phase latencies, cache and sharing facts), and when
	// Sampled is true, /debug/queries?trace=<TraceID> serves the
	// query's full span tree as JSONL.
	TraceID string
	Sampled bool
}

// ServerError is a query or session failure reported by the server.
type ServerError struct {
	Code string
	Msg  string
}

func (e *ServerError) Error() string { return fmt.Sprintf("sensjoind: %s: %s", e.Code, e.Msg) }

// TimeoutError reports a query that exceeded its deadline. It
// implements the net.Error-style Timeout method, so generic callers can
// detect it without importing this package's type.
type TimeoutError struct {
	// After is the deadline that expired.
	After time.Duration
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("client: query timed out after %s", e.After)
}

// Timeout reports true; the error is a deadline expiry.
func (e *TimeoutError) Timeout() bool { return true }

type frame struct {
	kind    byte
	payload []byte
}

// wire is one live connection: its demux table and terminal error are
// tied to this connection's lifetime, so a reconnect starts from a
// clean slate while streams of the old connection keep observing the
// old connection's death.
type wire struct {
	conn net.Conn
	wmu  sync.Mutex // serializes WriteFrame

	mu    sync.Mutex
	calls map[int64]chan frame
	err   error // terminal connection error, set once

	// done closes when the connection dies; it unblocks every stream
	// without the races of closing the per-call channels.
	done     chan struct{}
	doneOnce sync.Once
}

// fail terminates every in-flight call on this connection with err.
func (w *wire) fail(err error) {
	w.mu.Lock()
	if w.err == nil {
		w.err = err
	}
	w.mu.Unlock()
	w.doneOnce.Do(func() { close(w.done) })
}

func (w *wire) error() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Client is a connection to sensjoind. It is safe for concurrent use.
type Client struct {
	cfg DialConfig

	// rmu serializes reconnect attempts: concurrent submissions on a
	// broken connection share one backoff sequence.
	rmu sync.Mutex

	mu     sync.Mutex
	w      *wire
	nextID int64
	closed bool

	// Hello is the server's session greeting (the latest connection's).
	Hello proto.HelloOK
}

// Dial connects and performs the protocol handshake.
func Dial(addr string) (*Client, error) {
	return DialWith(DialConfig{Addr: addr})
}

// DialTimeout is Dial with a bound on connect + handshake.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	return DialWith(DialConfig{Addr: addr, Timeout: timeout})
}

// DialWith connects with explicit configuration.
func DialWith(cfg DialConfig) (*Client, error) {
	cfg = cfg.withDefaults()
	w, hello, err := connect(cfg.Addr, cfg.Timeout)
	if err != nil {
		return nil, err
	}
	c := &Client{cfg: cfg, w: w, Hello: hello}
	go c.readLoop(w)
	return c, nil
}

// connect dials and performs the handshake, returning the live wire.
func connect(addr string, timeout time.Duration) (*wire, proto.HelloOK, error) {
	var hello proto.HelloOK
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, hello, err
	}
	conn.SetDeadline(time.Now().Add(timeout))
	if err := proto.WriteFrame(conn, proto.KindHello, proto.Hello{Version: proto.Version}); err != nil {
		conn.Close()
		return nil, hello, err
	}
	kind, payload, err := proto.ReadFrame(conn)
	if err != nil {
		conn.Close()
		return nil, hello, err
	}
	switch kind {
	case proto.KindHelloOK:
		if err := proto.Decode(payload, &hello); err != nil {
			conn.Close()
			return nil, hello, err
		}
	case proto.KindError:
		var e proto.Error
		proto.Decode(payload, &e)
		conn.Close()
		return nil, hello, &ServerError{Code: e.Code, Msg: e.Msg}
	default:
		conn.Close()
		return nil, hello, fmt.Errorf("client: unexpected handshake frame kind %d", kind)
	}
	conn.SetDeadline(time.Time{})
	return &wire{conn: conn, calls: make(map[int64]chan frame), done: make(chan struct{})}, hello, nil
}

// Close tears the connection down; all in-flight queries fail and no
// reconnect happens afterwards.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	w := c.w
	c.mu.Unlock()
	w.wmu.Lock()
	proto.WriteFrame(w.conn, proto.KindBye, struct{}{})
	w.wmu.Unlock()
	err := w.conn.Close()
	w.fail(io.ErrClosedPipe)
	return err
}

// healthyWire returns the current connection, re-dialing a broken one
// when the configuration allows. Reconnect attempts back off
// exponentially from BackoffBase to BackoffMax with full jitter, so a
// herd of clients does not re-dial a recovering server in lockstep.
func (c *Client) healthyWire() (*wire, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	c.mu.Lock()
	w, closed := c.w, c.closed
	c.mu.Unlock()
	err := w.error()
	if err == nil {
		return w, nil
	}
	if closed || !c.cfg.Reconnect {
		return nil, err
	}
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		time.Sleep(backoff(c.cfg.BackoffBase, c.cfg.BackoffMax, attempt))
		nw, hello, derr := connect(c.cfg.Addr, c.cfg.Timeout)
		if derr != nil {
			err = derr
			continue
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			nw.conn.Close()
			return nil, io.ErrClosedPipe
		}
		c.w = nw
		c.Hello = hello
		c.mu.Unlock()
		go c.readLoop(nw)
		return nw, nil
	}
	return nil, err
}

// backoff returns the delay before dial attempt (0-based), capped
// exponential with full jitter.
func backoff(base, max time.Duration, attempt int) time.Duration {
	d := base << uint(attempt)
	if d > max || d <= 0 {
		d = max
	}
	return time.Duration(rand.Int63n(int64(d)) + 1)
}

// readLoop demultiplexes one connection's server frames to their
// query's channel.
func (c *Client) readLoop(w *wire) {
	br := bufio.NewReader(w.conn)
	for {
		kind, payload, err := proto.ReadFrame(br)
		if err != nil {
			w.fail(err)
			return
		}
		var hdr struct{ ID int64 }
		if proto.Decode(payload, &hdr) != nil || hdr.ID == 0 {
			// A session-level error (ID 0) poisons the connection.
			if kind == proto.KindError {
				var e proto.Error
				proto.Decode(payload, &e)
				w.fail(&ServerError{Code: e.Code, Msg: e.Msg})
			} else {
				w.fail(fmt.Errorf("client: unroutable frame kind %d", kind))
			}
			return
		}
		w.mu.Lock()
		ch := w.calls[hdr.ID]
		w.mu.Unlock()
		if ch == nil {
			continue // canceled and forgotten
		}
		ch <- frame{kind: kind, payload: payload}
		if kind == proto.KindDone || kind == proto.KindError {
			w.mu.Lock()
			delete(w.calls, hdr.ID)
			w.mu.Unlock()
		}
	}
}

// Query runs a one-shot query and returns its table.
func (c *Client) Query(src string) (*Table, error) {
	return c.QueryOpts(src, Options{})
}

// QueryOpts runs a query and returns its first (for one-shot queries,
// only) table, discarding any further epochs.
func (c *Client) QueryOpts(src string, o Options) (*Table, error) {
	st, err := c.Stream(src, o)
	if err != nil {
		return nil, err
	}
	t, err := st.Next()
	if err != nil {
		return nil, err
	}
	st.Close()
	return t, nil
}

// Stream submits a query and returns its epoch stream.
func (c *Client) Stream(src string, o Options) (*Stream, error) {
	w, err := c.healthyWire()
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.nextID++
	id := c.nextID
	c.mu.Unlock()
	ch := make(chan frame, 256)
	w.mu.Lock()
	w.calls[id] = ch
	w.mu.Unlock()

	q := proto.Query{
		ID: id, Src: src, Method: o.Method, At: o.At,
		Rounds: o.Rounds, Nodes: o.Nodes, Seed: o.Seed,
		TraceID: o.TraceID,
	}
	w.wmu.Lock()
	werr := proto.WriteFrame(w.conn, proto.KindQuery, q)
	w.wmu.Unlock()
	if werr != nil {
		w.mu.Lock()
		delete(w.calls, id)
		w.mu.Unlock()
		return nil, werr
	}
	timeout := o.Timeout
	if timeout == 0 {
		timeout = c.cfg.QueryTimeout
	}
	return &Stream{w: w, id: id, ch: ch, timeout: timeout}, nil
}

// Stream is one query's sequence of epoch tables.
type Stream struct {
	w  *wire
	id int64
	ch chan frame

	// timeout bounds each Next call; 0 waits forever.
	timeout time.Duration

	header proto.Header
	rows   [][]float64
	done   bool
	err    error
}

// Next returns the next epoch's table, io.EOF after the final epoch, or
// the error that terminated the query. When the stream has a deadline
// and no epoch arrives in time, Next cancels the query server-side and
// returns a *TimeoutError — later frames of the canceled query are
// drained off the demux loop in the background, never blocking it.
func (s *Stream) Next() (*Table, error) {
	if s.err != nil {
		return nil, s.err
	}
	if s.done {
		return nil, io.EOF
	}
	var expired <-chan time.Time
	if s.timeout > 0 {
		t := time.NewTimer(s.timeout)
		defer t.Stop()
		expired = t.C
	}
	for {
		var f frame
		select {
		case f = <-s.ch:
		default:
			// Only consult the connection's death after draining every
			// frame that arrived before it.
			select {
			case f = <-s.ch:
			case <-s.w.done:
				s.err = s.w.error()
				if s.err == nil {
					s.err = io.ErrUnexpectedEOF
				}
				return nil, s.err
			case <-expired:
				s.err = &TimeoutError{After: s.timeout}
				s.cancel()
				return nil, s.err
			}
		}
		switch f.kind {
		case proto.KindHeader:
			if err := proto.Decode(f.payload, &s.header); err != nil {
				s.err = err
				return nil, err
			}
		case proto.KindRows:
			var r proto.Rows
			if err := proto.Decode(f.payload, &r); err != nil {
				s.err = err
				return nil, err
			}
			s.rows = append(s.rows, r.Rows...)
		case proto.KindEpochEnd:
			var e proto.EpochEnd
			if err := proto.Decode(f.payload, &e); err != nil {
				s.err = err
				return nil, err
			}
			t := &Table{
				Columns: s.header.Columns, Rows: s.rows,
				Epoch: e.Epoch, Time: e.Time,
				Complete: e.Complete, Contributing: e.Contributing,
				Members: e.Members, ResponseTime: e.ResponseTime,
				CacheHit: s.header.CacheHit,
				Shared:   s.header.Shared, ClusterSize: s.header.ClusterSize,
				TraceID: s.header.TraceID, Sampled: s.header.Sampled,
			}
			if t.Rows == nil {
				t.Rows = [][]float64{}
			}
			s.rows = nil
			return t, nil
		case proto.KindDone:
			s.done = true
			return nil, io.EOF
		case proto.KindError:
			var e proto.Error
			proto.Decode(f.payload, &e)
			s.err = &ServerError{Code: e.Code, Msg: e.Msg}
			return nil, s.err
		}
	}
}

// cancel asks the server to stop the query and drains the stream's
// demux channel in the background until the server's Done/Error frame
// reclaims the entry (or the connection dies), so an abandoned stream
// never wedges the demux loop.
func (s *Stream) cancel() error {
	s.w.wmu.Lock()
	err := proto.WriteFrame(s.w.conn, proto.KindCancel, proto.Cancel{ID: s.id})
	s.w.wmu.Unlock()
	go func() {
		for {
			select {
			case f := <-s.ch:
				if f.kind == proto.KindDone || f.kind == proto.KindError {
					return
				}
			case <-s.w.done:
				return
			}
		}
	}()
	return err
}

// Close cancels the query (if still running) and releases the stream.
// Discarding a stream without Close leaks its demux entry until the
// query finishes server-side.
func (s *Stream) Close() error {
	if s.done || s.err != nil {
		return nil
	}
	err := s.cancel()
	s.done = true
	return err
}
