// Package client is the Go client for sensjoind, the sensjoin query
// daemon. One Client multiplexes any number of concurrent queries over
// a single connection:
//
//	c, err := client.Dial("127.0.0.1:7077")
//	defer c.Close()
//	table, err := c.Query(`SELECT A.temp, B.hum FROM Sensors A, Sensors B
//	                       WHERE A.temp - B.temp > 8.0 ONCE`)
//
// Continuous queries stream one Table per epoch:
//
//	st, err := c.Stream(src, client.Options{Rounds: 5})
//	for {
//		table, err := st.Next()
//		if err == io.EOF { break }
//		...
//	}
//
// The wire protocol is internal/proto; see PROTOCOL.md.
package client

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"sensjoin/internal/proto"
)

// Options tune one query submission.
type Options struct {
	// Method selects the join method: "" / "sens" (default) or
	// "external".
	Method string
	// At is the snapshot time of the first epoch.
	At float64
	// Rounds caps a periodic query's epochs (default 1).
	Rounds int
	// Nodes/Seed override the server's default deployment (0 = server
	// default).
	Nodes int
	Seed  int64
}

// Table is one epoch's result table.
type Table struct {
	Columns []string
	Rows    [][]float64
	// Epoch numbers the table within a continuous query (0-based).
	Epoch int
	// Time is the snapshot time the epoch sampled.
	Time         float64
	Complete     bool
	Contributing int
	Members      int
	ResponseTime float64
	// CacheHit reports that the server served the compiled plan from
	// its prepared-query cache.
	CacheHit bool
	// Shared reports shared (grouped) execution with ClusterSize
	// queries per protocol round.
	Shared      bool
	ClusterSize int
}

// ServerError is a query or session failure reported by the server.
type ServerError struct {
	Code string
	Msg  string
}

func (e *ServerError) Error() string { return fmt.Sprintf("sensjoind: %s: %s", e.Code, e.Msg) }

type frame struct {
	kind    byte
	payload []byte
}

// Client is a connection to sensjoind. It is safe for concurrent use.
type Client struct {
	conn net.Conn
	wmu  sync.Mutex // serializes WriteFrame

	mu     sync.Mutex
	calls  map[int64]chan frame
	nextID int64
	err    error // terminal connection error, set once

	// done closes when the connection dies; it unblocks every stream
	// without the races of closing the per-call channels.
	done     chan struct{}
	doneOnce sync.Once

	// Hello is the server's session greeting.
	Hello proto.HelloOK
}

// Dial connects and performs the protocol handshake.
func Dial(addr string) (*Client, error) {
	return DialTimeout(addr, 10*time.Second)
}

// DialTimeout is Dial with a bound on connect + handshake.
func DialTimeout(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, calls: make(map[int64]chan frame), done: make(chan struct{})}
	conn.SetDeadline(time.Now().Add(timeout))
	if err := proto.WriteFrame(conn, proto.KindHello, proto.Hello{Version: proto.Version}); err != nil {
		conn.Close()
		return nil, err
	}
	kind, payload, err := proto.ReadFrame(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	switch kind {
	case proto.KindHelloOK:
		if err := proto.Decode(payload, &c.Hello); err != nil {
			conn.Close()
			return nil, err
		}
	case proto.KindError:
		var e proto.Error
		proto.Decode(payload, &e)
		conn.Close()
		return nil, &ServerError{Code: e.Code, Msg: e.Msg}
	default:
		conn.Close()
		return nil, fmt.Errorf("client: unexpected handshake frame kind %d", kind)
	}
	conn.SetDeadline(time.Time{})
	go c.readLoop()
	return c, nil
}

// Close tears the connection down; all in-flight queries fail.
func (c *Client) Close() error {
	c.wmu.Lock()
	proto.WriteFrame(c.conn, proto.KindBye, struct{}{})
	c.wmu.Unlock()
	err := c.conn.Close()
	c.fail(io.ErrClosedPipe)
	return err
}

// fail terminates every in-flight call with err.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	c.mu.Unlock()
	c.doneOnce.Do(func() { close(c.done) })
}

// readLoop demultiplexes server frames to their query's channel.
func (c *Client) readLoop() {
	br := bufio.NewReader(c.conn)
	for {
		kind, payload, err := proto.ReadFrame(br)
		if err != nil {
			c.fail(err)
			return
		}
		var hdr struct{ ID int64 }
		if proto.Decode(payload, &hdr) != nil || hdr.ID == 0 {
			// A session-level error (ID 0) poisons the connection.
			if kind == proto.KindError {
				var e proto.Error
				proto.Decode(payload, &e)
				c.fail(&ServerError{Code: e.Code, Msg: e.Msg})
			} else {
				c.fail(fmt.Errorf("client: unroutable frame kind %d", kind))
			}
			return
		}
		c.mu.Lock()
		ch := c.calls[hdr.ID]
		c.mu.Unlock()
		if ch == nil {
			continue // canceled and forgotten
		}
		ch <- frame{kind: kind, payload: payload}
		if kind == proto.KindDone || kind == proto.KindError {
			c.mu.Lock()
			delete(c.calls, hdr.ID)
			c.mu.Unlock()
		}
	}
}

// Query runs a one-shot query and returns its table.
func (c *Client) Query(src string) (*Table, error) {
	return c.QueryOpts(src, Options{})
}

// QueryOpts runs a query and returns its first (for one-shot queries,
// only) table, discarding any further epochs.
func (c *Client) QueryOpts(src string, o Options) (*Table, error) {
	st, err := c.Stream(src, o)
	if err != nil {
		return nil, err
	}
	t, err := st.Next()
	if err != nil {
		return nil, err
	}
	st.Close()
	return t, nil
}

// Stream submits a query and returns its epoch stream.
func (c *Client) Stream(src string, o Options) (*Stream, error) {
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.nextID++
	id := c.nextID
	ch := make(chan frame, 256)
	c.calls[id] = ch
	c.mu.Unlock()

	q := proto.Query{
		ID: id, Src: src, Method: o.Method, At: o.At,
		Rounds: o.Rounds, Nodes: o.Nodes, Seed: o.Seed,
	}
	c.wmu.Lock()
	err := proto.WriteFrame(c.conn, proto.KindQuery, q)
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.calls, id)
		c.mu.Unlock()
		return nil, err
	}
	return &Stream{c: c, id: id, ch: ch}, nil
}

// Stream is one query's sequence of epoch tables.
type Stream struct {
	c  *Client
	id int64
	ch chan frame

	header proto.Header
	rows   [][]float64
	done   bool
	err    error
}

// Next returns the next epoch's table, io.EOF after the final epoch, or
// the error that terminated the query.
func (s *Stream) Next() (*Table, error) {
	if s.err != nil {
		return nil, s.err
	}
	if s.done {
		return nil, io.EOF
	}
	for {
		var f frame
		select {
		case f = <-s.ch:
		default:
			// Only consult the connection's death after draining every
			// frame that arrived before it.
			select {
			case f = <-s.ch:
			case <-s.c.done:
				s.c.mu.Lock()
				s.err = s.c.err
				s.c.mu.Unlock()
				if s.err == nil {
					s.err = io.ErrUnexpectedEOF
				}
				return nil, s.err
			}
		}
		switch f.kind {
		case proto.KindHeader:
			if err := proto.Decode(f.payload, &s.header); err != nil {
				s.err = err
				return nil, err
			}
		case proto.KindRows:
			var r proto.Rows
			if err := proto.Decode(f.payload, &r); err != nil {
				s.err = err
				return nil, err
			}
			s.rows = append(s.rows, r.Rows...)
		case proto.KindEpochEnd:
			var e proto.EpochEnd
			if err := proto.Decode(f.payload, &e); err != nil {
				s.err = err
				return nil, err
			}
			t := &Table{
				Columns: s.header.Columns, Rows: s.rows,
				Epoch: e.Epoch, Time: e.Time,
				Complete: e.Complete, Contributing: e.Contributing,
				Members: e.Members, ResponseTime: e.ResponseTime,
				CacheHit: s.header.CacheHit,
				Shared:   s.header.Shared, ClusterSize: s.header.ClusterSize,
			}
			if t.Rows == nil {
				t.Rows = [][]float64{}
			}
			s.rows = nil
			return t, nil
		case proto.KindDone:
			s.done = true
			return nil, io.EOF
		case proto.KindError:
			var e proto.Error
			proto.Decode(f.payload, &e)
			s.err = &ServerError{Code: e.Code, Msg: e.Msg}
			return nil, s.err
		}
	}
}

// Close cancels the query (if still running) and releases the stream.
// Discarding a stream without Close leaks its demux entry until the
// query finishes server-side.
func (s *Stream) Close() error {
	if s.done || s.err != nil {
		return nil
	}
	s.c.wmu.Lock()
	err := proto.WriteFrame(s.c.conn, proto.KindCancel, proto.Cancel{ID: s.id})
	s.c.wmu.Unlock()
	// Drain asynchronously until the server's Done/Error arrives so the
	// demux entry is reclaimed without blocking the caller.
	go func() {
		for {
			select {
			case f := <-s.ch:
				if f.kind == proto.KindDone || f.kind == proto.KindError {
					return
				}
			case <-s.c.done:
				return
			}
		}
	}()
	s.done = true
	return err
}
