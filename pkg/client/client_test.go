package client_test

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"sensjoin/internal/proto"
	"sensjoin/pkg/client"
)

// fakeServer is a scriptable sensjoind stand-in: each accepted
// connection runs the handler for its 1-based connection ordinal, so a
// test can script "crash on the first connection, behave on the
// second". Handlers run after a successful handshake.
type fakeServer struct {
	t  *testing.T
	ln net.Listener
}

func newFakeServer(t *testing.T, handlers ...func(conn net.Conn)) *fakeServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fs := &fakeServer{t: t, ln: ln}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for i := 0; ; i++ {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			h := handlers[min(i, len(handlers)-1)]
			go func() {
				defer conn.Close()
				kind, _, err := proto.ReadFrame(conn)
				if err != nil || kind != proto.KindHello {
					return
				}
				proto.WriteFrame(conn, proto.KindHelloOK, proto.HelloOK{
					Version: proto.Version, Session: int64(i + 1), Nodes: 10, Seed: 1,
				})
				h(conn)
			}()
		}
	}()
	return fs
}

func (fs *fakeServer) addr() string { return fs.ln.Addr().String() }

// readQuery consumes frames until a Query arrives.
func readQuery(conn net.Conn) (proto.Query, error) {
	for {
		kind, payload, err := proto.ReadFrame(conn)
		if err != nil {
			return proto.Query{}, err
		}
		if kind != proto.KindQuery {
			continue
		}
		var q proto.Query
		return q, proto.Decode(payload, &q)
	}
}

// answer serves one canned single-epoch table for query id.
func answer(conn net.Conn, id int64, rows [][]float64) {
	proto.WriteFrame(conn, proto.KindHeader, proto.Header{ID: id, Columns: []string{"A.temp"}})
	proto.WriteFrame(conn, proto.KindRows, proto.Rows{ID: id, Rows: rows})
	proto.WriteFrame(conn, proto.KindEpochEnd, proto.EpochEnd{ID: id, RowCount: len(rows), Complete: true})
	proto.WriteFrame(conn, proto.KindDone, proto.Done{ID: id, Epochs: 1})
}

// serveQueries answers every query with a canned table until the
// connection dies.
func serveQueries(conn net.Conn) {
	for {
		q, err := readQuery(conn)
		if err != nil {
			return
		}
		answer(conn, q.ID, [][]float64{{21.5}})
	}
}

// A broken connection fails the in-flight query, and with Reconnect set
// the next submission transparently re-dials.
func TestReconnectAfterConnectionDrop(t *testing.T) {
	fs := newFakeServer(t,
		func(conn net.Conn) { readQuery(conn) }, // crash mid-query: close without answering
		serveQueries,
	)
	c, err := client.DialWith(client.DialConfig{
		Addr: fs.addr(), Reconnect: true,
		BackoffBase: time.Millisecond, BackoffMax: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Hello.Session != 1 {
		t.Fatalf("first session = %d, want 1", c.Hello.Session)
	}

	if _, err := c.Query(`SELECT ...`); err == nil {
		t.Fatal("query on crashing connection succeeded")
	}
	tb, err := c.Query(`SELECT ...`)
	if err != nil {
		t.Fatalf("query after reconnect: %v", err)
	}
	if len(tb.Rows) != 1 || tb.Rows[0][0] != 21.5 {
		t.Fatalf("reconnected query returned %v", tb.Rows)
	}
	if c.Hello.Session != 2 {
		t.Fatalf("session after reconnect = %d, want 2", c.Hello.Session)
	}
}

// Without Reconnect a dead connection stays dead: the original error
// keeps surfacing instead of a silent re-dial.
func TestNoReconnectByDefault(t *testing.T) {
	fs := newFakeServer(t, func(conn net.Conn) { readQuery(conn) }, serveQueries)
	c, err := client.Dial(fs.addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Query(`SELECT ...`); err == nil {
		t.Fatal("query on crashing connection succeeded")
	}
	if _, err := c.Query(`SELECT ...`); err == nil {
		t.Fatal("poisoned client silently re-dialed")
	}
}

// Reconnect gives up after MaxAttempts when the server stays down.
func TestReconnectGivesUp(t *testing.T) {
	fs := newFakeServer(t, func(conn net.Conn) { readQuery(conn) })
	c, err := client.DialWith(client.DialConfig{
		Addr: fs.addr(), Reconnect: true, MaxAttempts: 2,
		BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Query(`SELECT ...`) // kills connection 1
	fs.ln.Close()         // server gone for good
	if _, err := c.Query(`SELECT ...`); err == nil {
		t.Fatal("query succeeded with the server down")
	}
}

// A query with a deadline surfaces a typed *TimeoutError instead of
// blocking forever, cancels server-side, and leaves the connection
// usable: a later frame flood for the dead query must not wedge the
// demux loop.
func TestQueryTimeoutTypedError(t *testing.T) {
	sawCancel := make(chan int64, 1)
	fs := newFakeServer(t, func(conn net.Conn) {
		q1, err := readQuery(conn)
		if err != nil {
			return
		}
		// Stall q1 until the client cancels it.
		for {
			kind, payload, err := proto.ReadFrame(conn)
			if err != nil {
				return
			}
			if kind == proto.KindCancel {
				var c proto.Cancel
				proto.Decode(payload, &c)
				sawCancel <- c.ID
				break
			}
		}
		// Flood the canceled query with more frames than its demux
		// buffer holds, then finish it; a wedged demux loop would never
		// reach the next query.
		for i := 0; i < 400; i++ {
			proto.WriteFrame(conn, proto.KindRows, proto.Rows{ID: q1.ID, Rows: [][]float64{{1}}})
		}
		proto.WriteFrame(conn, proto.KindDone, proto.Done{ID: q1.ID})
		serveQueries(conn)
	})
	c, err := client.DialWith(client.DialConfig{Addr: fs.addr(), QueryTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	st, err := c.Stream(`SELECT ...`, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = st.Next()
	var te *client.TimeoutError
	if !errors.As(err, &te) || !te.Timeout() {
		t.Fatalf("got %v, want *TimeoutError", err)
	}
	select {
	case <-sawCancel:
	case <-time.After(2 * time.Second):
		t.Fatal("server never saw the cancel")
	}
	// Next on a timed-out stream keeps returning the timeout.
	if _, err := st.Next(); !errors.As(err, &te) {
		t.Fatalf("second Next: got %v, want *TimeoutError", err)
	}

	tb, err := c.Query(`SELECT ...`)
	if err != nil {
		t.Fatalf("query after timeout+flood: %v", err)
	}
	if len(tb.Rows) != 1 {
		t.Fatalf("post-flood query returned %v", tb.Rows)
	}
}

// Options.Timeout overrides the client-wide QueryTimeout default.
func TestPerQueryTimeoutOverride(t *testing.T) {
	fs := newFakeServer(t, func(conn net.Conn) {
		q, err := readQuery(conn)
		if err != nil {
			return
		}
		time.Sleep(150 * time.Millisecond)
		answer(conn, q.ID, [][]float64{{3}})
	})
	c, err := client.DialWith(client.DialConfig{Addr: fs.addr(), QueryTimeout: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	tb, err := c.QueryOpts(`SELECT ...`, client.Options{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatalf("generous per-query override still timed out: %v", err)
	}
	if len(tb.Rows) != 1 || tb.Rows[0][0] != 3 {
		t.Fatalf("got %v", tb.Rows)
	}
}

// Close stops reconnecting: a closed client never dials again.
func TestCloseDisablesReconnect(t *testing.T) {
	fs := newFakeServer(t, serveQueries)
	c, err := client.DialWith(client.DialConfig{
		Addr: fs.addr(), Reconnect: true, BackoffBase: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, err := c.Query(`SELECT ...`); !errors.Is(err, io.ErrClosedPipe) {
		t.Fatalf("query after Close: %v, want ErrClosedPipe", err)
	}
}
