package sensjoin_test

import (
	"fmt"
	"log"

	"sensjoin"
)

// ExampleNetwork_Execute runs the paper's Q1 on a small simulated
// network and compares SENS-Join against the external join.
func ExampleNetwork_Execute() {
	net, err := sensjoin.NewNetwork(sensjoin.Config{Nodes: 200, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	const q1 = `
		SELECT MIN(distance(A.x, A.y, B.x, B.y))
		FROM Sensors A, Sensors B
		WHERE A.temp - B.temp > 4.0
		ONCE`
	res, err := net.Execute(q1, sensjoin.SENSJoin())
	if err != nil {
		log.Fatal(err)
	}
	sens := net.TotalPackets(sensjoin.SENSJoin())
	net.ResetStats()
	if _, err := net.Execute(q1, sensjoin.ExternalJoin()); err != nil {
		log.Fatal(err)
	}
	ext := net.TotalPackets(sensjoin.ExternalJoin())
	fmt.Printf("rows: %d\n", len(res.Rows))
	fmt.Printf("sens-join cheaper: %v\n", sens < ext)
	// Output:
	// rows: 1
	// sens-join cheaper: true
}

// ExampleNetwork_GroundTruth shows the oracle that every join method is
// tested against.
func ExampleNetwork_GroundTruth() {
	net, err := sensjoin.NewNetwork(sensjoin.Config{Nodes: 100, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	const q = `
		SELECT COUNT(A.temp) FROM Sensors A, Sensors B
		WHERE A.temp - B.temp > 5 ONCE`
	truth, err := net.GroundTruth(q)
	if err != nil {
		log.Fatal(err)
	}
	res, err := net.Execute(q, sensjoin.SENSJoin())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("oracle and protocol agree: %v\n", truth.Rows[0][0] == res.Rows[0][0])
	// Output:
	// oracle and protocol agree: true
}

// ExampleNetwork_Advise uses the cost model to pick a join method
// before transmitting anything.
func ExampleNetwork_Advise() {
	net, err := sensjoin.NewNetwork(sensjoin.Config{Nodes: 150, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	selective := `SELECT A.hum, B.hum FROM Sensors A, Sensors B
		WHERE A.temp - B.temp > 10 ONCE`
	adv, err := net.Advise(selective)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recommended: %s\n", adv.Use)
	// Output:
	// recommended: sens-join
}

// ExampleNetwork_ExecuteWithRecovery demonstrates the paper's §IV-F
// error handling: detect the loss, repair the tree, re-execute.
func ExampleNetwork_ExecuteWithRecovery() {
	net, err := sensjoin.NewNetwork(sensjoin.Config{Nodes: 120, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	const q = `SELECT A.temp, B.temp FROM Sensors A, Sensors B
		WHERE A.temp - B.temp > 5 ONCE`
	victim := 30
	net.FailLink(victim, net.RoutingParent(victim))
	res, err := net.ExecuteWithRecovery(q, sensjoin.SENSJoin(), 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("complete after recovery: %v (executions > 1: %v)\n",
		res.Complete, res.Executions > 1)
	// Output:
	// complete after recovery: true (executions > 1: true)
}
