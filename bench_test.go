// Benchmarks regenerating every table and figure of the paper's
// evaluation (§VI), one testing.B benchmark per experiment. Run with:
//
//	go test -bench=. -benchmem
//
// Each iteration executes the complete experiment (topology, snapshot,
// protocol simulation, base-station join) at a reduced scale so the
// default benchtime stays reasonable; cmd/experiments runs the paper's
// full 1500-node setting. Besides ns/op, every benchmark reports the
// headline quantity of its figure (packets, savings, reduction factors)
// via b.ReportMetric, so the benchmark output doubles as a compact
// reproduction table.
package sensjoin_test

import (
	"strconv"
	"strings"
	"testing"

	"sensjoin/internal/bench"
	"sensjoin/internal/workload"
)

// benchConfig is the reduced-scale default for benchmarks.
func benchConfig() bench.Config {
	return bench.Config{
		Nodes:     300,
		Seed:      42,
		Fractions: []float64{0.01, 0.05, 0.25, 0.60, 0.80},
	}
}

// lastFloat extracts the first float in a cell like "66.4%" or "3.4x".
func lastFloat(cell string) float64 {
	cell = strings.TrimRight(cell, "%x")
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		return 0
	}
	return v
}

func reportSavings(b *testing.B, tbl *bench.Table, fracCol, savingsCol int) {
	b.Helper()
	for _, row := range tbl.Rows {
		frac := lastFloat(row[fracCol])
		if frac == 5.0 || len(tbl.Rows) == 1 {
			b.ReportMetric(lastFloat(row[savingsCol]), "savings@5%")
		}
	}
}

func BenchmarkFig10aOverall33(b *testing.B) {
	var tbl *bench.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = bench.RunOverallSavings(benchConfig(), workload.Ratio33())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSavings(b, tbl, 1, 4)
}

func BenchmarkFig10bOverall60(b *testing.B) {
	var tbl *bench.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = bench.RunOverallSavings(benchConfig(), workload.Ratio60())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSavings(b, tbl, 1, 4)
}

func BenchmarkFig11aPerNode33(b *testing.B) {
	var tbl *bench.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = bench.RunPerNodeSavings(benchConfig(), workload.Ratio33())
		if err != nil {
			b.Fatal(err)
		}
	}
	// The last bin holds the most loaded (near-root) nodes.
	last := tbl.Rows[len(tbl.Rows)-1]
	b.ReportMetric(lastFloat(last[4]), "rootload-reduction-x")
}

func BenchmarkFig11bPerNode60(b *testing.B) {
	var tbl *bench.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = bench.RunPerNodeSavings(benchConfig(), workload.Ratio60())
		if err != nil {
			b.Fatal(err)
		}
	}
	last := tbl.Rows[len(tbl.Rows)-1]
	b.ReportMetric(lastFloat(last[4]), "rootload-reduction-x")
}

func BenchmarkFig12Ratio3JA(b *testing.B) {
	var tbl *bench.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = bench.RunRatioSweep(benchConfig(), workload.RatioSweep3JA(), "E3 / Fig. 12")
		if err != nil {
			b.Fatal(err)
		}
	}
	// Savings at the lowest ratio (3/5) and the highest (3/3 = 100%).
	b.ReportMetric(lastFloat(tbl.Rows[len(tbl.Rows)-1][3]), "savings@60%-ratio")
	b.ReportMetric(lastFloat(tbl.Rows[0][3]), "savings@100%-ratio")
}

func BenchmarkFig13Ratio1JA(b *testing.B) {
	var tbl *bench.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = bench.RunRatioSweep(benchConfig(), workload.RatioSweep1JA(), "E4 / Fig. 13")
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(lastFloat(tbl.Rows[len(tbl.Rows)-1][3]), "savings@20%-ratio")
	b.ReportMetric(lastFloat(tbl.Rows[0][3]), "savings@100%-ratio")
}

func BenchmarkFig14NetworkSize(b *testing.B) {
	sizes := []int{200, 300, 400}
	var tbl *bench.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = bench.RunNetworkSize(benchConfig(), sizes, workload.Ratio33())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(lastFloat(tbl.Rows[0][3]), "savings@small")
	b.ReportMetric(lastFloat(tbl.Rows[len(tbl.Rows)-1][3]), "savings@large")
}

func BenchmarkPacketSize124(b *testing.B) {
	var tbl *bench.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = bench.RunPacketSize(benchConfig(), workload.Ratio33())
		if err != nil {
			b.Fatal(err)
		}
	}
	// Row 1 is the 124-byte setting; column 6 is the max-node reduction.
	b.ReportMetric(lastFloat(tbl.Rows[1][6]), "rootload-reduction-x@124B")
}

func BenchmarkFig15Breakdown(b *testing.B) {
	var tbl *bench.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = bench.RunStepBreakdown(benchConfig(), nil, workload.Ratio60())
		if err != nil {
			b.Fatal(err)
		}
	}
	// Fixed collection cost (row 1, column 1 — first sens run).
	b.ReportMetric(lastFloat(tbl.Rows[1][1]), "ja-collect-packets")
}

func BenchmarkCompressionComparison(b *testing.B) {
	var tbl *bench.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = bench.RunCompressionComparison(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	// Quadtree packets relative to raw (last row, "vs raw" column).
	b.ReportMetric(lastFloat(tbl.Rows[3][2]), "quadtree-vs-raw-%")
	b.ReportMetric(lastFloat(tbl.Rows[2][2]), "zlib-vs-raw-%")
	b.ReportMetric(lastFloat(tbl.Rows[1][2]), "bwz-vs-raw-%")
}

func BenchmarkFig16QuadInfluence(b *testing.B) {
	var tbl *bench.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = bench.RunQuadInfluence(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(lastFloat(tbl.Rows[1][2]), "noquad-total-packets")
	b.ReportMetric(lastFloat(tbl.Rows[2][2]), "sens-total-packets")
}

func BenchmarkAblationTreecutDmax(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunTreecutAblation(benchConfig(), workload.Ratio33()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationFilterMemLimit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunFilterLimitAblation(benchConfig(), workload.Ratio33()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkX1IncrementalFilter(b *testing.B) {
	var tbl *bench.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = bench.RunIncrementalFilter(benchConfig(), 6, 30)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Steady-state saving of the last round.
	last := tbl.Rows[len(tbl.Rows)-1]
	b.ReportMetric(lastFloat(last[3]), "filter-bytes-saved-%")
}

func BenchmarkX2RelatedWork(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunRelatedWork(benchConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkX3Lifetime(b *testing.B) {
	var tbl *bench.Table
	var err error
	for i := 0; i < b.N; i++ {
		tbl, err = bench.RunLifetime(benchConfig())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(lastFloat(tbl.Rows[1][4]), "lifetime-extension-x@33%")
}
