// Query advisor: EXPLAIN plus the cost model (paper §IV-E / [20]).
//
// Before spending any energy, a user can ask the library two questions:
// what will this query do (Explain), and which join method should run it
// (Advise, the paper's join-location analysis as a planner). The example
// walks three queries across the selectivity spectrum and then verifies
// the recommendation by actually running both methods.
//
// Run with: go run ./examples/advisor
package main

import (
	"fmt"
	"log"

	"sensjoin"
)

func main() {
	net, err := sensjoin.NewNetwork(sensjoin.Config{Nodes: 400, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}

	queries := map[string]string{
		"rare extremes (selective)": `
			SELECT A.hum, B.hum FROM Sensors A, Sensors B
			WHERE A.temp - B.temp > 7.5 ONCE`,
		"moderate contrast": `
			SELECT A.hum, B.hum FROM Sensors A, Sensors B
			WHERE A.temp - B.temp > 3 ONCE`,
		"dense similarity (unselective)": `
			SELECT A.hum, B.hum FROM Sensors A, Sensors B
			WHERE abs(A.temp - B.temp) < 0.5 ONCE`,
	}

	for name, src := range queries {
		fmt.Printf("=== %s ===\n", name)
		adv, err := net.Advise(src)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("model: external ~%.0f packets, sens-join ~%.0f packets -> use %s\n",
			adv.PredictedExternal, adv.PredictedSENS, adv.Use)
		fmt.Printf("expected fraction %.1f%%, break-even near %.0f%%\n",
			100*adv.ExpectedFraction, 100*adv.BreakEvenFraction)

		// Verify against reality.
		net.ResetStats()
		if _, err := net.Execute(src, sensjoin.ExternalJoin()); err != nil {
			log.Fatal(err)
		}
		ext := net.TotalPackets(sensjoin.ExternalJoin())
		net.ResetStats()
		if _, err := net.Execute(src, sensjoin.SENSJoin()); err != nil {
			log.Fatal(err)
		}
		sens := net.TotalPackets(sensjoin.SENSJoin())
		actual := "external-join"
		if sens < ext {
			actual = "sens-join"
		}
		verdict := "correct"
		if actual != adv.Use {
			verdict = "WRONG (near break-even)"
		}
		fmt.Printf("actual: external %d, sens-join %d -> %s wins (model was %s)\n\n",
			ext, sens, actual, verdict)
	}

	// A peek at the plan of the selective query.
	plan, err := net.Explain(queries["rare extremes (selective)"])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== plan of the selective query ===")
	fmt.Println(plan)
}
