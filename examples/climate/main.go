// Climate correlation study: the paper's Q2 and the break-even tradeoff.
//
// A researcher investigates how humidity and pressure co-vary with
// temperature while excluding spatial correlation: pairs of nodes with
// similar temperature at least 100 m apart (paper §I, Example 2).
//
// The example deliberately shows both regimes of the paper's Fig. 10:
//
//   - Q2 as written is a similarity join. On a dense network most nodes
//     find an equal-temperature partner, the result fraction lands past
//     the 60-80% break-even, and the external join wins — exactly the
//     regime the paper says to avoid SENS-Join in.
//   - A selective variant (large temperature contrast, Q1-style) puts
//     the fraction in the single digits, where SENS-Join saves most of
//     the communication and unburdens the relay nodes that decide the
//     network's lifetime.
//
// Run with: go run ./examples/climate
package main

import (
	"fmt"
	"log"
	"sort"

	"sensjoin"
)

func main() {
	net, err := sensjoin.NewNetwork(sensjoin.Config{Nodes: 800, Seed: 21})
	if err != nil {
		log.Fatal(err)
	}

	const q2 = `
		SELECT abs(A.hum - B.hum), abs(A.pres - B.pres)
		FROM Sensors A, Sensors B
		WHERE abs(A.temp - B.temp) < 0.3
		AND distance(A.x, A.y, B.x, B.y) > 100
		ONCE`

	const q2selective = `
		SELECT abs(A.hum - B.hum), abs(A.pres - B.pres)
		FROM Sensors A, Sensors B
		WHERE A.temp - B.temp > 10
		AND distance(A.x, A.y, B.x, B.y) > 100
		ONCE`

	fmt.Println("--- Q2 (similarity join, dense field) ---")
	runBoth(net, q2)

	fmt.Println("\n--- selective variant (strong temperature contrast) ---")
	runBoth(net, q2selective)
}

func runBoth(net *sensjoin.Network, src string) {
	net.ResetStats()
	res, err := net.Execute(src, sensjoin.SENSJoin())
	if err != nil {
		log.Fatal(err)
	}
	sens := net.TotalPackets(sensjoin.SENSJoin())
	sensLoads := topLoads(net.PerNodePackets(sensjoin.SENSJoin()))

	net.ResetStats()
	if _, err := net.Execute(src, sensjoin.ExternalJoin()); err != nil {
		log.Fatal(err)
	}
	ext := net.TotalPackets(sensjoin.ExternalJoin())
	extLoads := topLoads(net.PerNodePackets(sensjoin.ExternalJoin()))

	fmt.Printf("%d pairs, %.1f%% of nodes contributing\n", len(res.Rows), 100*res.Fraction())
	if len(res.Rows) > 0 {
		var dh, dp float64
		for _, row := range res.Rows {
			dh += row[0]
			dp += row[1]
		}
		n := float64(len(res.Rows))
		fmt.Printf("matched pairs differ on average by %.2f%%RH and %.2f hPa\n", dh/n, dp/n)
	}
	fmt.Printf("total packets: external %d vs sens-join %d", ext, sens)
	if sens < ext {
		fmt.Printf("  -> SENS-Join saves %.0f%%\n", 100*(1-float64(sens)/float64(ext)))
	} else {
		fmt.Printf("  -> past break-even, external join wins (paper Fig. 10)\n")
	}
	fmt.Printf("most loaded node: external %d vs sens-join %d packets (%.1fx)\n",
		extLoads[0], sensLoads[0], float64(extLoads[0])/float64(sensLoads[0]))
}

func topLoads(perNode []int64) []int64 {
	s := append([]int64(nil), perNode[1:]...) // skip the powered base station
	sort.Slice(s, func(i, j int) bool { return s[i] > s[j] })
	return s
}
