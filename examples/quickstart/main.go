// Quickstart: run the paper's Q1 on a simulated sensor network.
//
// Q1 asks for the minimal distance between two points whose temperatures
// differ by more than a threshold — the motivating query of the paper's
// introduction. The example executes it with SENS-Join and with the
// external join and compares the communication costs.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sensjoin"
)

func main() {
	// A 500-node network at the paper's density (50 m radio range).
	net, err := sensjoin.NewNetwork(sensjoin.Config{Nodes: 500, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d nodes on %.0fx%.0f m, routing tree depth %d\n\n",
		net.Nodes(), net.Area().Width(), net.Area().Height(), net.TreeDepth())

	// The paper's Q1, with a threshold matched to the synthetic climate
	// (the original 10 degC would be empty on this mild field).
	const q1 = `
		SELECT MIN(distance(A.x, A.y, B.x, B.y))
		FROM Sensors A, Sensors B
		WHERE A.temp - B.temp > 6.0
		ONCE`

	res, err := net.Execute(q1, sensjoin.SENSJoin())
	if err != nil {
		log.Fatal(err)
	}
	if len(res.Rows) == 0 {
		fmt.Println("no pair of nodes differs by more than 6 degC")
	} else {
		fmt.Printf("minimal distance between a hot and a cold spot: %.1f m\n", res.Rows[0][0])
	}
	fmt.Printf("%d of %d nodes contributed (%.1f%% — SENS-Join's sweet spot)\n\n",
		res.ContributingNodes, res.MemberNodes, 100*res.Fraction())

	sens := net.TotalPackets(sensjoin.SENSJoin())
	fmt.Println("SENS-Join cost by protocol step:")
	fmt.Print(net.PhaseTable())

	net.ResetStats()
	if _, err := net.Execute(q1, sensjoin.ExternalJoin()); err != nil {
		log.Fatal(err)
	}
	ext := net.TotalPackets(sensjoin.ExternalJoin())
	fmt.Printf("\nexternal join: %d packets\nSENS-Join:     %d packets  (%.0f%% saved)\n",
		ext, sens, 100*(1-float64(sens)/float64(ext)))
}
