// Continuous monitoring: SAMPLE PERIOD queries (paper §III) and the
// incremental filter mode (§VIII future work).
//
// The query reports, every 60 simulated seconds, pairs of far-apart
// nodes whose temperatures differ by more than a threshold — an alarm
// for developing hot spots. Each round is an independent execution on
// the current snapshot; the fields drift between rounds.
//
// The second half demonstrates the paper's follow-on idea: with
// temporally correlated fields (Config.QuietFields), consecutive rounds'
// join filters barely change, and ContinuousSENSJoin transmits only the
// deltas — every round still returning the exact snapshot result.
//
// Run with: go run ./examples/monitoring
package main

import (
	"fmt"
	"log"
	"strings"

	"sensjoin"
)

const alarm = `
	SELECT A.x, A.y, B.x, B.y, A.temp - B.temp
	FROM Sensors A, Sensors B
	WHERE A.temp - B.temp > 5.5
	AND distance(A.x, A.y, B.x, B.y) > 200
	ONCE`

const rounds = 8
const period = 60.0

func main() {
	net, err := sensjoin.NewNetwork(sensjoin.Config{Nodes: 400, Seed: 33})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("monitoring %d nodes for %d rounds (%.0f s period)\n\n", net.Nodes(), rounds, period)
	fmt.Println("round  sim-time  alarms  contributing  packets")
	var total int64
	for i := 0; i < rounds; i++ {
		net.ResetStats()
		res, err := net.Execute(alarm, sensjoin.SENSJoin())
		if err != nil {
			log.Fatal(err)
		}
		packets := net.TotalPackets(sensjoin.SENSJoin())
		total += packets
		fmt.Printf("%5d  %7.0fs  %6d  %12d  %7d\n",
			i+1, net.Clock(), len(res.Rows), res.ContributingNodes, packets)
		net.AdvanceClock(period)
	}
	fmt.Printf("total: %d packets over %d rounds\n", total, rounds)

	// The incremental mode (paper §VIII): with temporally correlated
	// fields, the filter phase shrinks to deltas after round one.
	quiet, err := sensjoin.NewNetwork(sensjoin.Config{Nodes: 400, Seed: 33, QuietFields: true})
	if err != nil {
		log.Fatal(err)
	}
	// The quiet fields have a narrower spread; 4.5 degC puts ~12% of the
	// nodes in the result, squarely in SENS-Join territory.
	quietAlarm := strings.Replace(alarm, "5.5", "4.5", 1)
	fmt.Println("\nincremental filters on temporally correlated fields:")
	fmt.Println("round  plain-filter-packets  incremental-filter-packets")
	plain := sensjoin.SENSJoin()
	incr := sensjoin.ContinuousSENSJoin()
	for i := 0; i < rounds; i++ {
		quiet.ResetStats()
		if _, err := quiet.Execute(quietAlarm, plain); err != nil {
			log.Fatal(err)
		}
		p1 := filterPackets(quiet)
		quiet.ResetStats()
		if _, err := quiet.Execute(quietAlarm, incr); err != nil {
			log.Fatal(err)
		}
		p2 := filterPackets(quiet)
		fmt.Printf("%5d  %20d  %26d\n", i+1, p1, p2)
		quiet.AdvanceClock(period)
	}
}

// filterPackets extracts the Filter-Dissemination share from the phase
// table (the public stats expose per-phase totals via PhaseTable; for a
// numeric value we reuse TotalPackets minus the other phases).
func filterPackets(net *sensjoin.Network) int64 {
	return net.PhasePackets("filter-dissem")
}
