// Heterogeneous network: joining across different sensor relations
// (paper §III: "If the network is heterogeneous, groups of nodes form
// different relations").
//
// The deployment is split into an indoor zone (the south-west quadrant,
// say a machine hall) and an outdoor zone. A maintenance engineer wants
// pairs of indoor/outdoor nodes whose temperatures are close — places
// where the hall's insulation leaks. SENS-Join handles this general
// cross-relation join like any other: the relation flags inside the
// quadtree keys keep the two relations apart during the pre-computation.
//
// Run with: go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"

	"sensjoin"
)

func main() {
	net, err := sensjoin.NewNetwork(sensjoin.Config{Nodes: 600, Seed: 77})
	if err != nil {
		log.Fatal(err)
	}
	side := net.Area().Width()

	// Membership by position: indoor = south-west quadrant.
	indoor := func(x, y float64) bool { return x < side/2 && y < side/2 }
	positions := make(map[int][2]float64)
	// The public API exposes positions only implicitly (x/y attributes);
	// membership functions usually come from deployment knowledge. Here
	// we reconstruct them from a ground-truth read of each node's x/y.
	truth, err := groundPositions(net)
	if err != nil {
		log.Fatal(err)
	}
	for id, p := range truth {
		positions[id] = p
	}

	err = net.DefineRelation("Indoor", func(node int) bool {
		p := positions[node]
		return indoor(p[0], p[1])
	})
	if err != nil {
		log.Fatal(err)
	}
	err = net.DefineRelation("Outdoor", func(node int) bool {
		p := positions[node]
		return !indoor(p[0], p[1])
	})
	if err != nil {
		log.Fatal(err)
	}

	const q = `
		SELECT A.x, A.y, B.x, B.y, abs(A.temp - B.temp)
		FROM Indoor A, Outdoor B
		WHERE abs(A.temp - B.temp) < 0.05
		AND distance(A.x, A.y, B.x, B.y) < 120
		ONCE`

	res, err := net.Execute(q, sensjoin.SENSJoin())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d suspected insulation leaks (nearby indoor/outdoor pairs with equal temperature)\n", len(res.Rows))
	for i, row := range res.Rows {
		if i >= 5 {
			fmt.Printf("... (%d more)\n", len(res.Rows)-5)
			break
		}
		fmt.Printf("  indoor (%4.0f,%4.0f) ~ outdoor (%4.0f,%4.0f), dT = %.3f degC\n",
			row[0], row[1], row[2], row[3], row[4])
	}
	fmt.Printf("\nmembers: %d nodes across both relations, %d contributed\n",
		res.MemberNodes, res.ContributingNodes)
	fmt.Printf("cost: %d packets (SENS-Join)\n", net.TotalPackets(sensjoin.SENSJoin()))
}

// groundPositions reads each node's coordinates via a plain collection
// query — the same x/y attributes any query can select.
func groundPositions(net *sensjoin.Network) (map[int][2]float64, error) {
	res, err := net.GroundTruth("SELECT S.x, S.y FROM Sensors S ONCE")
	if err != nil {
		return nil, err
	}
	out := make(map[int][2]float64, len(res.Rows))
	// Rows are ordered by node id (1..N) by construction of the oracle.
	for i, row := range res.Rows {
		out[i+1] = [2]float64{row[0], row[1]}
	}
	return out, nil
}
