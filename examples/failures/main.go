// Failure handling: link failures, routing-tree repair, re-execution
// (paper §IV-F).
//
// The example cuts the routing-tree link above a well-connected relay
// mid-deployment, shows that the execution detects the data loss, and
// then recovers the way the paper prescribes: the tree protocol
// re-establishes the routing structure and the query is simply
// re-executed.
//
// Run with: go run ./examples/failures
package main

import (
	"fmt"
	"log"

	"sensjoin"
)

const query = `
	SELECT A.temp, B.temp, distance(A.x, A.y, B.x, B.y)
	FROM Sensors A, Sensors B
	WHERE A.temp - B.temp > 5.0 ONCE`

func main() {
	net, err := sensjoin.NewNetwork(sensjoin.Config{Nodes: 300, Seed: 99})
	if err != nil {
		log.Fatal(err)
	}

	// Healthy run first.
	res, err := net.Execute(query, sensjoin.SENSJoin())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("healthy run: %d rows, complete=%v\n", len(res.Rows), res.Complete)

	// Cut the tree edge above node 42's parent chain: every descendant
	// behind the failed link goes silent.
	victim := 42
	parent := net.RoutingParent(victim)
	net.FailLink(victim, parent)
	fmt.Printf("\ncutting routing link %d -> %d\n", victim, parent)

	res, err = net.Execute(query, sensjoin.SENSJoin())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("degraded run: %d rows, complete=%v (loss detected)\n", len(res.Rows), res.Complete)

	// Paper §IV-F: rely on the tree protocol to re-establish routing,
	// then re-execute. ExecuteWithRecovery does both.
	rec, err := net.ExecuteWithRecovery(query, sensjoin.SENSJoin(), 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrecovered after %d execution(s): %d rows, complete=%v\n",
		rec.Executions, len(rec.Rows), rec.Complete)

	// The recovered result matches the oracle on the repaired network.
	truth, err := net.GroundTruth(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("oracle agrees: %d rows (match=%v)\n", len(truth.Rows), len(truth.Rows) == len(rec.Rows))

	// Node death: a dead relay is healed around the same way.
	net.RestoreLink(victim, parent)
	net.RepairRouting()
	net.KillNode(victim)
	net.RepairRouting()
	res, err = net.Execute(query, sensjoin.SENSJoin())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter node %d died and the tree re-formed: %d rows, complete=%v (surviving %d members)\n",
		victim, len(res.Rows), res.Complete, res.MemberNodes)
}
