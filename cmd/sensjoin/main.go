// Command sensjoin runs one query on a simulated sensor network and
// prints the result, the per-phase communication costs, and (optionally)
// a comparison against the external join.
//
// Usage:
//
//	sensjoin [-nodes 300] [-seed 1] [-method sens|external|noquad]
//	         [-compare] [-rows 10] [-flood] [-audit] [-trace run.jsonl]
//	         [-metrics out.prom] "SELECT ... ONCE"
//
// Example (the paper's Q1):
//
//	sensjoin -nodes 500 -compare \
//	  "SELECT MIN(distance(A.x, A.y, B.x, B.y)) FROM Sensors A, Sensors B
//	   WHERE A.temp - B.temp > 10.0 ONCE"
package main

import (
	"compress/gzip"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"sensjoin"
)

func main() {
	nodes := flag.Int("nodes", 300, "sensor node count")
	seed := flag.Int64("seed", 1, "placement and field seed")
	method := flag.String("method", "sens", "join method: sens, external, noquad, mediated, semi, or incremental")
	explain := flag.Bool("explain", false, "print the execution plan instead of running")
	advise := flag.Bool("advise", false, "print the cost model's method recommendation")
	compare := flag.Bool("compare", false, "also run the external join and report savings")
	maxRows := flag.Int("rows", 10, "result rows to print (0 = all)")
	flood := flag.Bool("flood", false, "include query dissemination in the run")
	traceFile := flag.String("trace", "", "write the execution journal as JSON Lines to this file (plus a Chrome trace alongside) and print the phase breakdown")
	audit := flag.Bool("audit", false, "self-audit the execution against its journal; violations exit nonzero")
	metricsFile := flag.String("metrics", "", `write live instrument values in Prometheus text format to this file after the run ("-" = stderr)`)
	flag.Parse()

	src := strings.Join(flag.Args(), " ")
	if strings.TrimSpace(src) == "" {
		fmt.Fprintln(os.Stderr, "usage: sensjoin [flags] \"SELECT ... ONCE\"")
		flag.PrintDefaults()
		os.Exit(2)
	}

	net, err := sensjoin.NewNetwork(sensjoin.Config{Nodes: *nodes, Seed: *seed})
	if err != nil {
		fail(err)
	}
	fmt.Printf("network: %d nodes, %.0fx%.0f m, avg degree %.1f, tree depth %d\n",
		net.Nodes(), net.Area().Width(), net.Area().Height(), net.AvgDegree(), net.TreeDepth())

	if *explain {
		plan, err := net.Explain(src)
		if err != nil {
			fail(err)
		}
		fmt.Println(plan)
		return
	}
	if *advise {
		a, err := net.Advise(src)
		if err != nil {
			fail(err)
		}
		fmt.Printf("recommendation: %s\n", a.Use)
		fmt.Printf("  predicted packets: external %.0f, sens-join %.0f\n", a.PredictedExternal, a.PredictedSENS)
		fmt.Printf("  expected result fraction: %.1f%%, break-even near %.0f%%\n",
			100*a.ExpectedFraction, 100*a.BreakEvenFraction)
		return
	}

	var m sensjoin.Method
	switch *method {
	case "sens":
		m = sensjoin.SENSJoin()
	case "external":
		m = sensjoin.ExternalJoin()
	case "noquad":
		m = sensjoin.SENSJoinNoQuad()
	case "mediated":
		m = sensjoin.MediatedJoin()
	case "semi":
		m = sensjoin.SemiJoinMethod()
	case "incremental":
		m = sensjoin.ContinuousSENSJoin()
	default:
		fail(fmt.Errorf("unknown method %q", *method))
	}

	if *traceFile != "" {
		net.EnableJournal()
	}
	if *metricsFile != "" {
		net.EnableMetrics()
	}
	if *flood {
		if err := net.DisseminateQuery(src); err != nil {
			fail(err)
		}
	}
	var res *sensjoin.Result
	if *audit {
		var violations []string
		res, violations, err = net.ExecuteAudited(src, m)
		if err != nil {
			fail(err)
		}
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "audit violation:", v)
		}
		if len(violations) > 0 {
			fail(fmt.Errorf("%d audit violation(s)", len(violations)))
		}
		fmt.Println("audit: conservation, reconciliation, slot order, filter soundness — clean")
	} else {
		res, err = net.Execute(src, m)
		if err != nil {
			fail(err)
		}
	}
	if *traceFile != "" {
		if err := writeJournal(net, *traceFile); err != nil {
			fail(err)
		}
	}

	fmt.Printf("\nresult: %d row(s), %d of %d member nodes contributing (%.1f%%), response %.1fs\n",
		len(res.Rows), res.ContributingNodes, res.MemberNodes, 100*res.Fraction(), res.ResponseTime)
	fmt.Println(strings.Join(res.Columns, " | "))
	for i, row := range res.Rows {
		if *maxRows > 0 && i >= *maxRows {
			fmt.Printf("... (%d more)\n", len(res.Rows)-i)
			break
		}
		cells := make([]string, len(row))
		for j, v := range row {
			cells[j] = fmt.Sprintf("%.4g", v)
		}
		fmt.Println(strings.Join(cells, " | "))
	}

	fmt.Printf("\ncommunication (%s):\n%s", m.Name(), net.PhaseTable())
	total := net.TotalPackets(m)
	fmt.Printf("total: %d packets, %.1f mJ estimated radio energy\n", total, 1000*net.TotalEnergy())

	if *compare && *method != "external" {
		net.ResetStats()
		if _, err := net.Execute(src, sensjoin.ExternalJoin()); err != nil {
			fail(err)
		}
		ext := net.TotalPackets(sensjoin.ExternalJoin())
		fmt.Printf("\nexternal join: %d packets -> savings %.1f%%\n",
			ext, 100*(1-float64(total)/float64(ext)))
	}

	if *metricsFile != "" {
		if err := writeMetricsOut(net, *metricsFile); err != nil {
			fail(err)
		}
	}
}

// writeMetricsOut dumps the live instruments in Prometheus text format
// to path ("-" = stderr).
func writeMetricsOut(net *sensjoin.Network, path string) error {
	if path == "-" {
		return net.WriteMetrics(os.Stderr)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := net.WriteMetrics(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeJournal exports the execution journal as JSON Lines plus a Chrome
// trace_event file (gzipped when path ends in ".gz") and prints the
// per-phase breakdown.
func writeJournal(net *sensjoin.Network, path string) error {
	if err := writeMaybeGz(path, net.WriteTrace); err != nil {
		return err
	}
	chrome := strings.TrimSuffix(path, ".gz")
	if strings.HasSuffix(path, ".gz") {
		chrome += ".chrome.json.gz"
	} else {
		chrome += ".chrome.json"
	}
	if err := writeMaybeGz(chrome, net.WriteChromeTrace); err != nil {
		return err
	}
	fmt.Printf("\njournal -> %s (+ %s)\n%s", path, chrome, net.PhaseBreakdown())
	return nil
}

// writeMaybeGz creates path and streams write into it, through gzip
// when the path ends in ".gz".
func writeMaybeGz(path string, write func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var w io.Writer = f
	var gz *gzip.Writer
	if strings.HasSuffix(path, ".gz") {
		gz = gzip.NewWriter(f)
		w = gz
	}
	if err := write(w); err != nil {
		f.Close()
		return err
	}
	if gz != nil {
		if err := gz.Close(); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sensjoin:", err)
	os.Exit(1)
}
