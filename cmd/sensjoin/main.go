// Command sensjoin runs one query on a simulated sensor network and
// prints the result, the per-phase communication costs, and (optionally)
// a comparison against the external join.
//
// Usage:
//
//	sensjoin [-nodes 300] [-seed 1] [-method sens|external|noquad]
//	         [-compare] [-rows 10] [-flood] [-audit] [-trace run.jsonl]
//	         "SELECT ... ONCE"
//
// Example (the paper's Q1):
//
//	sensjoin -nodes 500 -compare \
//	  "SELECT MIN(distance(A.x, A.y, B.x, B.y)) FROM Sensors A, Sensors B
//	   WHERE A.temp - B.temp > 10.0 ONCE"
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sensjoin"
)

func main() {
	nodes := flag.Int("nodes", 300, "sensor node count")
	seed := flag.Int64("seed", 1, "placement and field seed")
	method := flag.String("method", "sens", "join method: sens, external, noquad, mediated, semi, or incremental")
	explain := flag.Bool("explain", false, "print the execution plan instead of running")
	advise := flag.Bool("advise", false, "print the cost model's method recommendation")
	compare := flag.Bool("compare", false, "also run the external join and report savings")
	maxRows := flag.Int("rows", 10, "result rows to print (0 = all)")
	flood := flag.Bool("flood", false, "include query dissemination in the run")
	traceFile := flag.String("trace", "", "write the execution journal as JSON Lines to this file (plus a Chrome trace alongside) and print the phase breakdown")
	audit := flag.Bool("audit", false, "self-audit the execution against its journal; violations exit nonzero")
	flag.Parse()

	src := strings.Join(flag.Args(), " ")
	if strings.TrimSpace(src) == "" {
		fmt.Fprintln(os.Stderr, "usage: sensjoin [flags] \"SELECT ... ONCE\"")
		flag.PrintDefaults()
		os.Exit(2)
	}

	net, err := sensjoin.NewNetwork(sensjoin.Config{Nodes: *nodes, Seed: *seed})
	if err != nil {
		fail(err)
	}
	fmt.Printf("network: %d nodes, %.0fx%.0f m, avg degree %.1f, tree depth %d\n",
		net.Nodes(), net.Area().Width(), net.Area().Height(), net.AvgDegree(), net.TreeDepth())

	if *explain {
		plan, err := net.Explain(src)
		if err != nil {
			fail(err)
		}
		fmt.Println(plan)
		return
	}
	if *advise {
		a, err := net.Advise(src)
		if err != nil {
			fail(err)
		}
		fmt.Printf("recommendation: %s\n", a.Use)
		fmt.Printf("  predicted packets: external %.0f, sens-join %.0f\n", a.PredictedExternal, a.PredictedSENS)
		fmt.Printf("  expected result fraction: %.1f%%, break-even near %.0f%%\n",
			100*a.ExpectedFraction, 100*a.BreakEvenFraction)
		return
	}

	var m sensjoin.Method
	switch *method {
	case "sens":
		m = sensjoin.SENSJoin()
	case "external":
		m = sensjoin.ExternalJoin()
	case "noquad":
		m = sensjoin.SENSJoinNoQuad()
	case "mediated":
		m = sensjoin.MediatedJoin()
	case "semi":
		m = sensjoin.SemiJoinMethod()
	case "incremental":
		m = sensjoin.ContinuousSENSJoin()
	default:
		fail(fmt.Errorf("unknown method %q", *method))
	}

	if *traceFile != "" {
		net.EnableJournal()
	}
	if *flood {
		if err := net.DisseminateQuery(src); err != nil {
			fail(err)
		}
	}
	var res *sensjoin.Result
	if *audit {
		var violations []string
		res, violations, err = net.ExecuteAudited(src, m)
		if err != nil {
			fail(err)
		}
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "audit violation:", v)
		}
		if len(violations) > 0 {
			fail(fmt.Errorf("%d audit violation(s)", len(violations)))
		}
		fmt.Println("audit: conservation, reconciliation, slot order, filter soundness — clean")
	} else {
		res, err = net.Execute(src, m)
		if err != nil {
			fail(err)
		}
	}
	if *traceFile != "" {
		if err := writeJournal(net, *traceFile); err != nil {
			fail(err)
		}
	}

	fmt.Printf("\nresult: %d row(s), %d of %d member nodes contributing (%.1f%%), response %.1fs\n",
		len(res.Rows), res.ContributingNodes, res.MemberNodes, 100*res.Fraction(), res.ResponseTime)
	fmt.Println(strings.Join(res.Columns, " | "))
	for i, row := range res.Rows {
		if *maxRows > 0 && i >= *maxRows {
			fmt.Printf("... (%d more)\n", len(res.Rows)-i)
			break
		}
		cells := make([]string, len(row))
		for j, v := range row {
			cells[j] = fmt.Sprintf("%.4g", v)
		}
		fmt.Println(strings.Join(cells, " | "))
	}

	fmt.Printf("\ncommunication (%s):\n%s", m.Name(), net.PhaseTable())
	total := net.TotalPackets(m)
	fmt.Printf("total: %d packets, %.1f mJ estimated radio energy\n", total, 1000*net.TotalEnergy())

	if *compare && *method != "external" {
		net.ResetStats()
		if _, err := net.Execute(src, sensjoin.ExternalJoin()); err != nil {
			fail(err)
		}
		ext := net.TotalPackets(sensjoin.ExternalJoin())
		fmt.Printf("\nexternal join: %d packets -> savings %.1f%%\n",
			ext, 100*(1-float64(total)/float64(ext)))
	}
}

// writeJournal exports the execution journal as JSON Lines plus a Chrome
// trace_event file and prints the per-phase breakdown.
func writeJournal(net *sensjoin.Network, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := net.WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	cf, err := os.Create(path + ".chrome.json")
	if err != nil {
		return err
	}
	if err := net.WriteChromeTrace(cf); err != nil {
		cf.Close()
		return err
	}
	if err := cf.Close(); err != nil {
		return err
	}
	fmt.Printf("\njournal -> %s (+ %s.chrome.json)\n%s", path, path, net.PhaseBreakdown())
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sensjoin:", err)
	os.Exit(1)
}
