// Command sensjoinctl is the command-line client for sensjoind.
//
// Usage:
//
//	sensjoinctl [-addr 127.0.0.1:7077] [-method sens|external]
//	            [-at 0] [-rounds 1] [-nodes 0] [-seed 0] [-rows 10]
//	            [-trace id] "SELECT ... ONCE"
//
// One-shot queries print one table; periodic queries print one table
// per epoch (-rounds many). Facts about the execution (cache hit,
// shared execution, trace ID when span-sampled) go to stderr; tables
// go to stdout. A query or connection failure exits nonzero.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"sensjoin/pkg/client"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7077", "sensjoind address")
	method := flag.String("method", "", "join method: sens (default) or external")
	at := flag.Float64("at", 0, "snapshot time of the first epoch")
	rounds := flag.Int("rounds", 1, "epochs to stream for a periodic query")
	nodes := flag.Int("nodes", 0, "deployment node-count override (0 = server default)")
	seed := flag.Int64("seed", 0, "deployment seed override (0 = server default)")
	maxRows := flag.Int("rows", 10, "result rows to print per epoch (0 = all)")
	traceID := flag.String("trace", "", "client-chosen trace ID (empty = server assigns)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: sensjoinctl [flags] \"SELECT ...\"")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*addr, flag.Arg(0), client.Options{
		Method: *method, At: *at, Rounds: *rounds, Nodes: *nodes, Seed: *seed,
		TraceID: *traceID,
	}, *maxRows); err != nil {
		fmt.Fprintln(os.Stderr, "sensjoinctl:", err)
		os.Exit(1)
	}
}

func run(addr, src string, o client.Options, maxRows int) error {
	c, err := client.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()
	fmt.Fprintf(os.Stderr, "session %d on %d nodes (seed %d)\n",
		c.Hello.Session, c.Hello.Nodes, c.Hello.Seed)

	st, err := c.Stream(src, o)
	if err != nil {
		return err
	}
	defer st.Close()
	first := true
	for {
		t, err := st.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if first {
			facts := []string{}
			if t.CacheHit {
				facts = append(facts, "prepared-cache hit")
			}
			if t.Shared {
				facts = append(facts, fmt.Sprintf("shared execution (cluster of %d)", t.ClusterSize))
			}
			if t.Sampled {
				facts = append(facts, fmt.Sprintf("span-sampled as %s", t.TraceID))
			}
			if len(facts) > 0 {
				fmt.Fprintln(os.Stderr, strings.Join(facts, ", "))
			}
			first = false
		}
		printTable(t, maxRows)
	}
}

func printTable(t *client.Table, maxRows int) {
	fmt.Printf("epoch %d (t=%g): %d row(s), %d/%d contributing nodes, complete=%t\n",
		t.Epoch, t.Time, len(t.Rows), t.Contributing, t.Members, t.Complete)
	fmt.Println(strings.Join(t.Columns, "\t"))
	n := len(t.Rows)
	if maxRows > 0 && n > maxRows {
		n = maxRows
	}
	for _, row := range t.Rows[:n] {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = fmt.Sprintf("%.3f", v)
		}
		fmt.Println(strings.Join(cells, "\t"))
	}
	if n < len(t.Rows) {
		fmt.Printf("... (%d more rows)\n", len(t.Rows)-n)
	}
}
