// Command sensjoind is the sensjoin query daemon: a long-running
// server that executes queries on simulated sensor-network deployments
// for many concurrent client sessions.
//
// Usage:
//
//	sensjoind [-listen 127.0.0.1:7077] [-http 127.0.0.1:7078]
//	          [-nodes 150] [-seed 1] [-packet 0]
//	          [-max-sessions 256] [-max-concurrent 0] [-max-queue 0]
//	          [-batch-window 25ms] [-idle-timeout 5m] [-trace-sample 0]
//
// -listen is the query protocol port (see PROTOCOL.md, pkg/client).
// -http serves observability: /metrics (Prometheus), /healthz,
// /debug/vars, /debug/pprof/ and the /debug/queries flight recorder
// ("" disables it). -trace-sample sets the fraction of queries whose
// full span tree is captured and served at /debug/queries?trace=<id>.
//
// SIGINT/SIGTERM drain the server gracefully (in-flight queries finish,
// continuous queries end their epoch loops early) and exit 0.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sensjoin/internal/metrics"
	"sensjoin/internal/server"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7077", "query protocol listen address")
	httpAddr := flag.String("http", "", "observability HTTP listen address (e.g. 127.0.0.1:7078; empty = off)")
	nodes := flag.Int("nodes", 150, "default deployment: sensor node count")
	seed := flag.Int64("seed", 1, "default deployment: placement and field seed")
	packet := flag.Int("packet", 0, "radio maximum packet size in bytes (0 = paper default)")
	maxSessions := flag.Int("max-sessions", 256, "maximum concurrently open client sessions")
	maxConcurrent := flag.Int("max-concurrent", 0, "maximum concurrently executing queries (0 = GOMAXPROCS)")
	maxQueue := flag.Int("max-queue", 0, "admitted-but-waiting query bound beyond -max-concurrent (0 = 4x)")
	batchWindow := flag.Duration("batch-window", 25*time.Millisecond, "grouping window for compatible continuous queries")
	idleTimeout := flag.Duration("idle-timeout", 5*time.Minute, "close sessions idle for this long")
	queryTimeout := flag.Duration("query-timeout", 5*time.Minute, "per-epoch execution deadline; expiry answers a timeout error and frees the slot")
	traceSample := flag.Float64("trace-sample", 0, "fraction of queries (0..1) whose span tree is captured into /debug/queries")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "sensjoind takes no positional arguments")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*listen, *httpAddr, server.Config{
		Nodes: *nodes, Seed: *seed, MaxPacket: *packet,
		MaxSessions: *maxSessions, MaxConcurrent: *maxConcurrent, MaxQueue: *maxQueue,
		BatchWindow: *batchWindow, IdleTimeout: *idleTimeout, QueryTimeout: *queryTimeout,
		TraceSample: *traceSample,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "sensjoind:", err)
		os.Exit(1)
	}
}

func run(listen, httpAddr string, cfg server.Config) error {
	reg := metrics.New()
	cfg.Registry = reg

	srv, err := server.Listen(listen, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sensjoind: serving queries on %s (nodes=%d seed=%d)\n",
		srv.Addr(), cfg.Nodes, cfg.Seed)

	var obs *server.ObsHTTP
	if httpAddr != "" {
		ln, err := net.Listen("tcp", httpAddr)
		if err != nil {
			srv.Close()
			return err
		}
		metrics.PublishExpvar("sensjoind", reg)
		obs = server.StartObsHTTP(ln, reg, srv, cfg.Logf)
		fmt.Fprintf(os.Stderr, "sensjoind: observability on http://%s/ (metrics, pprof, debug/queries)\n", ln.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	fmt.Fprintf(os.Stderr, "sensjoind: %v: draining\n", got)
	err = srv.Close()
	if obs != nil {
		obs.Stop()
	}
	fmt.Fprintln(os.Stderr, "sensjoind: bye")
	return err
}
