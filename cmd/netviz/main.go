// Command netviz dumps a simulated deployment: node positions, the
// routing tree, depth and degree distributions. The output is plain text
// (or DOT with -dot for rendering with graphviz).
//
// Usage:
//
//	netviz [-nodes 300] [-seed 1] [-dot] [-loads] [-timeline] [-heatmap]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sensjoin/internal/core"
	"sensjoin/internal/routing"
	"sensjoin/internal/stats"
	"sensjoin/internal/topology"
	"sensjoin/internal/trace"
)

func main() {
	nodes := flag.Int("nodes", 300, "sensor node count")
	seed := flag.Int64("seed", 1, "placement seed")
	dot := flag.Bool("dot", false, "emit graphviz DOT of the routing tree")
	loads := flag.Bool("loads", false, "run a default join with both methods and show the per-node load distribution")
	timeline := flag.Bool("timeline", false, "run a default join and render its execution timeline from the journal")
	heatmap := flag.Bool("heatmap", false, "run a default join with both methods and render a spatial per-node radio-energy heatmap")
	flag.Parse()

	r, err := core.NewRunner(core.SetupConfig{Nodes: *nodes, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, "netviz:", err)
		os.Exit(1)
	}
	dep, tree := r.Dep, r.Tree

	if *dot {
		emitDot(dep, tree)
		return
	}
	if *loads {
		emitLoads(r)
		return
	}
	if *timeline {
		emitTimeline(r)
		return
	}
	if *heatmap {
		emitHeatmap(r)
		return
	}

	fmt.Printf("deployment: %d nodes on %.0fx%.0f m, range %.0f m, avg degree %.1f\n",
		dep.N(), dep.Area.Width(), dep.Area.Height(), dep.Range, dep.AvgDegree())
	fmt.Printf("routing tree: max depth %d, root descendants %d\n\n",
		tree.MaxDepth, tree.Descendants[topology.BaseStation])

	depthCount := make([]int, tree.MaxDepth+1)
	for i := 0; i < dep.N(); i++ {
		if tree.Depth[i] >= 0 {
			depthCount[tree.Depth[i]]++
		}
	}
	fmt.Println("depth  nodes  histogram")
	for d, c := range depthCount {
		bar := ""
		for i := 0; i < c*60/dep.N()+1 && i < 60; i++ {
			bar += "#"
		}
		fmt.Printf("%5d  %5d  %s\n", d, c, bar)
	}

	fmt.Println("\nnode   pos(x,y)        depth  parent  children  descendants")
	limit := dep.N()
	if limit > 25 {
		limit = 25
	}
	for i := 0; i < limit; i++ {
		fmt.Printf("%4d   (%6.1f,%6.1f)  %5d  %6d  %8d  %11d\n",
			i, dep.Pos[i].X, dep.Pos[i].Y, tree.Depth[i], tree.Parent[i],
			len(tree.Children[i]), tree.Descendants[i])
	}
	if dep.N() > limit {
		fmt.Printf("... (%d more nodes)\n", dep.N()-limit)
	}
}

func emitDot(dep *topology.Deployment, tree *routing.Tree) {
	fmt.Println("digraph routing {")
	fmt.Println("  node [shape=point];")
	for i := 0; i < dep.N(); i++ {
		fmt.Printf("  n%d [pos=\"%.1f,%.1f!\"];\n", i, dep.Pos[i].X, dep.Pos[i].Y)
		if p := tree.Parent[i]; p != routing.NoParent {
			fmt.Printf("  n%d -> n%d;\n", i, p)
		}
	}
	fmt.Println("}")
}

// emitTimeline journals a default SENS-Join execution and renders the
// phase timeline with transmission density.
func emitTimeline(r *core.Runner) {
	const src = `SELECT A.hum, B.hum FROM Sensors A, Sensors B
		WHERE A.temp - B.temp > 6 ONCE`
	rec := r.EnableTrace()
	if _, err := r.Run(src, core.NewSENSJoin(), 0); err != nil {
		fmt.Fprintln(os.Stderr, "netviz:", err)
		os.Exit(1)
	}
	j := rec.Journal()
	fmt.Println(trace.Timeline(j, 72))
	fmt.Println(trace.PhaseBreakdown(j))
}

// emitLoads races both methods on a default selective join and prints
// the per-node packet distribution by tree depth — the Fig. 11 view.
func emitLoads(r *core.Runner) {
	const src = `SELECT A.hum, B.hum FROM Sensors A, Sensors B
		WHERE A.temp - B.temp > 6 ONCE`
	show := func(name string, m core.Method) {
		r.Stats.Reset()
		if _, err := r.Run(src, m, 0); err != nil {
			fmt.Fprintln(os.Stderr, "netviz:", err)
			os.Exit(1)
		}
		per := r.Stats.PerNodeTx(m.Phases()...)
		byDepth := make(map[int][]int64)
		for i := 1; i < len(per); i++ {
			d := r.Tree.Depth[i]
			byDepth[d] = append(byDepth[d], per[i])
		}
		fmt.Printf("\n%s — packets per node by depth (avg [max]):\n", name)
		for d := 1; d <= r.Tree.MaxDepth; d++ {
			nodes := byDepth[d]
			if len(nodes) == 0 {
				continue
			}
			var sum, max int64
			for _, p := range nodes {
				sum += p
				if p > max {
					max = p
				}
			}
			avg := float64(sum) / float64(len(nodes))
			bar := strings.Repeat("#", int(avg)+1)
			fmt.Printf("depth %2d (%3d nodes): %6.1f [%4d] %s\n", d, len(nodes), avg, max, bar)
		}
	}
	show("external-join", core.External{})
	show("sens-join", core.NewSENSJoin())
}

// emitHeatmap races both methods on the default join and renders each
// per-node radio-energy distribution (CC2420-class model) as a spatial
// ASCII heatmap — the geographic view of the Fig. 11 hotspot story: the
// external join concentrates energy drain around the base station,
// SENS-Join flattens it.
func emitHeatmap(r *core.Runner) {
	const src = `SELECT A.hum, B.hum FROM Sensors A, Sensors B
		WHERE A.temp - B.temp > 6 ONCE`
	const gw, gh = 60, 20
	ramp := []byte(" .:-=+*#%@")
	model := stats.CC2420Model()
	area := r.Dep.Area
	show := func(name string, m core.Method) {
		r.Stats.Reset()
		if _, err := r.Run(src, m, 0); err != nil {
			fmt.Fprintln(os.Stderr, "netviz:", err)
			os.Exit(1)
		}
		energy := r.Stats.PerNodeEnergy(model, m.Phases()...)
		var sum [gh][gw]float64
		var cnt [gh][gw]int
		cell := func(i int) (int, int) {
			gx := int((r.Dep.Pos[i].X - area.MinX) / area.Width() * gw)
			gy := int((r.Dep.Pos[i].Y - area.MinY) / area.Height() * gh)
			if gx >= gw {
				gx = gw - 1
			}
			if gy >= gh {
				gy = gh - 1
			}
			return gx, gy
		}
		var max float64
		for i := 1; i < len(energy); i++ {
			gx, gy := cell(i)
			sum[gy][gx] += energy[i]
			cnt[gy][gx]++
		}
		for y := 0; y < gh; y++ {
			for x := 0; x < gw; x++ {
				if cnt[y][x] > 0 && sum[y][x]/float64(cnt[y][x]) > max {
					max = sum[y][x] / float64(cnt[y][x])
				}
			}
		}
		node, peak := stats.MaxLoadNode(energy)
		p := stats.Percentiles(energy, 0.5, 0.99)
		fmt.Printf("\n%s — mean radio energy per grid cell (peak cell %.2f mJ; B = base station):\n",
			name, 1000*max)
		bx, by := cell(int(topology.BaseStation))
		for y := 0; y < gh; y++ {
			row := make([]byte, gw)
			for x := 0; x < gw; x++ {
				row[x] = ' '
				if cnt[y][x] > 0 {
					mean := sum[y][x] / float64(cnt[y][x])
					idx := int(mean / max * float64(len(ramp)-1))
					if idx >= len(ramp) {
						idx = len(ramp) - 1
					}
					row[x] = ramp[idx]
				}
				if x == bx && y == by {
					row[x] = 'B'
				}
			}
			fmt.Println(string(row))
		}
		fmt.Printf("hotspot node %d: %.2f mJ (%d descendants); p50 %.3f mJ, p99 %.3f mJ, gini %.2f\n",
			node, 1000*peak, r.Tree.Descendants[node], 1000*p[0], 1000*p[1], stats.Gini(energy))
	}
	show("external-join", core.External{})
	show("sens-join", core.NewSENSJoin())
}
