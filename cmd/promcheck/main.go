// Command promcheck fetches a Prometheus text exposition over HTTP,
// validates it with the in-repo validator (internal/metrics), and
// optionally requires specific metric families to be present. CI uses
// it to smoke-test `experiments -serve`.
//
// Usage:
//
//	promcheck [-retries 20] [-interval 250ms] [-require fam1,fam2] URL
//	promcheck -raw [-contains substr] URL
//
// Exit status 0 means the endpoint answered with a well-formed
// exposition containing every required family. Retries cover server
// start-up races: the first successful HTTP fetch is the one validated.
// -raw skips Prometheus validation and only requires HTTP 200 (plus an
// optional -contains substring) — CI uses it to poke /progress,
// /debug/pprof/ and /quit without a curl dependency.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"sensjoin/internal/metrics"
)

func main() {
	retries := flag.Int("retries", 20, "fetch attempts before giving up")
	interval := flag.Duration("interval", 250*time.Millisecond, "delay between fetch attempts")
	require := flag.String("require", "", "comma-separated metric family names that must be present")
	raw := flag.Bool("raw", false, "fetch only: require HTTP 200, skip Prometheus validation")
	contains := flag.String("contains", "", "with -raw: require this substring in the response body")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: promcheck [flags] URL")
		flag.PrintDefaults()
		os.Exit(2)
	}
	url := flag.Arg(0)

	body, err := fetch(url, *retries, *interval)
	if err != nil {
		fail(err)
	}
	if *raw {
		if *contains != "" && !strings.Contains(body, *contains) {
			fail(fmt.Errorf("%s: body does not contain %q", url, *contains))
		}
		fmt.Printf("promcheck: %s ok — %d bytes\n", url, len(body))
		return
	}
	families, err := metrics.ValidateProm(strings.NewReader(body))
	if err != nil {
		fail(fmt.Errorf("%s: invalid exposition: %w", url, err))
	}
	var missing []string
	if *require != "" {
		for _, fam := range strings.Split(*require, ",") {
			fam = strings.TrimSpace(fam)
			if fam == "" {
				continue
			}
			if _, ok := families[fam]; !ok {
				missing = append(missing, fam)
			}
		}
	}
	if len(missing) > 0 {
		fail(fmt.Errorf("%s: missing required families: %s", url, strings.Join(missing, ", ")))
	}
	fmt.Printf("promcheck: %s ok — %d families valid\n", url, len(families))
}

func fetch(url string, retries int, interval time.Duration) (string, error) {
	var lastErr error
	for attempt := 0; attempt < retries; attempt++ {
		if attempt > 0 {
			time.Sleep(interval)
		}
		resp, err := http.Get(url)
		if err != nil {
			lastErr = err
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			lastErr = fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
			continue
		}
		return string(body), nil
	}
	return "", fmt.Errorf("%s: no successful fetch after %d attempts: %w", url, retries, lastErr)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "promcheck:", err)
	os.Exit(1)
}
