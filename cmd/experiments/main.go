// Command experiments regenerates every table and figure of the paper's
// evaluation (§VI) plus the ablations documented in DESIGN.md.
//
// Usage:
//
//	experiments [-nodes 1500] [-seed 42] [-packet 48] [-only E1a,E8]
//	            [-parallel N] [-csv] [-json] [-audit] [-trace run.jsonl]
//	            [-loss 0.05,0.10] [-cpuprofile cpu.out] [-memprofile mem.out]
//	            [-serve :9137] [-progress] [-hold]
//	            [-scale 10000,100000] [-mqo -mqo-n 1,2,4,8,16 -mqo-json BENCH_mqo.json]
//
// Output is a sequence of aligned text tables, one per experiment, with
// notes comparing the measured shape to the paper's claims; -csv and
// -json switch the representation. Tables go to stdout in experiment
// order and are byte-identical for every -parallel value; per-experiment
// wall-clock lines go to stderr so timing noise never pollutes diffable
// output. Absolute packet counts depend on this simulator;
// EXPERIMENTS.md records the paper-vs-measured comparison.
//
// -serve starts a live observability server (see serve.go): Prometheus
// /metrics, JSON /progress, expvar and /debug/pprof. -progress prints
// per-cell completion lines to stderr. Neither changes stdout by a byte.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"sensjoin/internal/bench"
	"sensjoin/internal/metrics"
	"sensjoin/internal/trace"
	"sensjoin/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	nodes := flag.Int("nodes", 1500, "sensor node count (paper default 1500)")
	seed := flag.Int64("seed", 42, "placement and field seed")
	packet := flag.Int("packet", 48, "maximum packet size in bytes")
	only := flag.String("only", "", "comma-separated experiment ids to run (e.g. E1a,E8); empty = all")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	jsonOut := flag.Bool("json", false, "emit one JSON document with tables, packet totals and timings")
	parallel := flag.Int("parallel", runtime.NumCPU(), "worker count for experiment/sweep-cell fan-out; 1 = sequential")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file")
	audit := flag.Bool("audit", false, "self-audit every execution against its journal; violations fail the experiment")
	traceFile := flag.String("trace", "", "instead of the suite, journal one calibrated SENS-Join run: JSONL to this file, Chrome trace alongside, breakdown to stdout")
	loss := flag.String("loss", "", "comma-separated packet loss rates (e.g. 0.05,0.10): adds the L1 loss-resilience sweep with hop-by-hop reliable transport")
	serveAddr := flag.String("serve", "", "serve live observability on this address (e.g. :9137 or 127.0.0.1:0): /metrics, /progress, /debug/vars, /debug/pprof/")
	progress := flag.Bool("progress", false, "print per-cell sweep completion lines to stderr")
	hold := flag.Bool("hold", false, "with -serve: keep serving after the suite finishes until GET /quit or interrupt")
	scale := flag.String("scale", "", "comma-separated node counts (e.g. 10000,100000): instead of the suite, run the X7 scale experiment")
	shards := flag.String("shards", "1,8", "with -scale: comma-separated simulator shard counts per size")
	scaleJSON := flag.String("scale-json", "", "with -scale: also write the machine-readable result to this file")
	mqo := flag.Bool("mqo", false, "instead of the suite, run the X8 multi-query optimization experiment")
	mqoNs := flag.String("mqo-n", "1,2,4,8,16", "with -mqo: comma-separated concurrent query counts")
	mqoJSON := flag.String("mqo-json", "", "with -mqo: also write the machine-readable result to this file")
	churn := flag.Bool("churn", false, "instead of the suite, run the X10 churn-resilience experiment")
	churnRates := flag.String("churn-rates", "0,0.01,0.05", "with -churn: comma-separated per-epoch churn rates")
	churnRounds := flag.Int("churn-rounds", 20, "with -churn: query rounds per cell")
	churnNodes := flag.Int("churn-nodes", 150, "with -churn: deployment node count")
	churnJSON := flag.String("churn-json", "", "with -churn: also write the machine-readable result to this file")
	serveLoad := flag.Bool("serve-load", false, "instead of the suite, run the X9 sensjoind serving-load experiment")
	serveNodes := flag.Int("serve-nodes", 150, "with -serve-load: deployment node count")
	serveClients := flag.Int("serve-clients", 0, "with -serve-load: concurrent client sessions (0 = 2x GOMAXPROCS)")
	serveSeconds := flag.Float64("serve-seconds", 3, "with -serve-load: measured load window in seconds")
	serveLoadJSON := flag.String("serve-load-json", "", "with -serve-load: also write the machine-readable result to this file")
	flag.Parse()

	var lossRates []float64
	if *loss != "" {
		for _, s := range strings.Split(*loss, ",") {
			var rate float64
			if _, err := fmt.Sscanf(strings.TrimSpace(s), "%g", &rate); err != nil {
				return fmt.Errorf("-loss: cannot parse rate %q: %w", s, err)
			}
			if rate < 0 || rate >= 1 {
				return fmt.Errorf("-loss: rate %g out of range [0, 1)", rate)
			}
			lossRates = append(lossRates, rate)
		}
	}

	cfg := bench.Config{Nodes: *nodes, Seed: *seed, MaxPacket: *packet, Parallel: *parallel, Audit: *audit}

	// Observability: a registry when serving, a progress tracker when
	// serving or -progress (live lines only with -progress). Tables are
	// byte-identical with or without either.
	var obs *obsServer
	if *serveAddr != "" || *progress {
		var progW io.Writer
		if *progress {
			progW = os.Stderr
		}
		cfg.Progress = bench.NewProgress(progW)
	}
	if *serveAddr != "" {
		cfg.Metrics = metrics.New()
		var err error
		if obs, err = startServe(*serveAddr, cfg.Metrics, cfg.Progress); err != nil {
			return err
		}
		defer obs.stop()
	}

	if *traceFile != "" {
		return writeTrace(cfg, *traceFile)
	}
	if *scale != "" {
		return runScale(*scale, *shards, *seed, *scaleJSON, *cpuprofile)
	}
	if *mqo {
		return runMQO(*nodes, *seed, *packet, *mqoNs, *mqoJSON)
	}
	if *churn {
		return runChurn(*churnNodes, *seed, *packet, *parallel, *churnRates, *churnRounds, *churnJSON)
	}
	if *serveLoad {
		return runServeLoad(*serveNodes, *seed, *serveClients, *serveSeconds, *serveLoadJSON)
	}

	type entry struct {
		id  string
		run func() (*bench.Table, error)
	}
	entries := []entry{
		{"E1a", func() (*bench.Table, error) { return bench.RunOverallSavings(cfg, workload.Ratio33()) }},
		{"E1b", func() (*bench.Table, error) { return bench.RunOverallSavings(cfg, workload.Ratio60()) }},
		{"E2a", func() (*bench.Table, error) { return bench.RunPerNodeSavings(cfg, workload.Ratio33()) }},
		{"E2b", func() (*bench.Table, error) { return bench.RunPerNodeSavings(cfg, workload.Ratio60()) }},
		{"E3", func() (*bench.Table, error) {
			return bench.RunRatioSweep(cfg, workload.RatioSweep3JA(), "E3 / Fig. 12")
		}},
		{"E4", func() (*bench.Table, error) {
			return bench.RunRatioSweep(cfg, workload.RatioSweep1JA(), "E4 / Fig. 13")
		}},
		{"E5", func() (*bench.Table, error) { return bench.RunNetworkSize(cfg, nil, workload.Ratio33()) }},
		{"E6", func() (*bench.Table, error) { return bench.RunPacketSize(cfg, workload.Ratio33()) }},
		{"E7", func() (*bench.Table, error) { return bench.RunStepBreakdown(cfg, nil, workload.Ratio60()) }},
		{"E8", func() (*bench.Table, error) { return bench.RunCompressionComparison(cfg) }},
		{"E9", func() (*bench.Table, error) { return bench.RunQuadInfluence(cfg) }},
		{"A1", func() (*bench.Table, error) { return bench.RunTreecutAblation(cfg, workload.Ratio33()) }},
		{"A2", func() (*bench.Table, error) { return bench.RunFilterLimitAblation(cfg, workload.Ratio33()) }},
		{"X1", func() (*bench.Table, error) { return bench.RunIncrementalFilter(cfg, 0, 0) }},
		{"X2", func() (*bench.Table, error) { return bench.RunRelatedWork(cfg) }},
		{"X3", func() (*bench.Table, error) { return bench.RunLifetime(cfg) }},
		{"X4", func() (*bench.Table, error) { return bench.RunResponseTime(cfg) }},
		{"X5", func() (*bench.Table, error) { return bench.RunMemory(cfg) }},
		{"X6", func() (*bench.Table, error) { return bench.RunEnergyLifetime(cfg) }},
	}
	if len(lossRates) > 0 {
		entries = append(entries, entry{"L1", func() (*bench.Table, error) {
			return bench.RunLossResilience(cfg, lossRates)
		}})
	}

	selected := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			selected[strings.TrimSpace(id)] = true
		}
	}
	var active []entry
	for _, e := range entries {
		if len(selected) > 0 && !selected[e.id] {
			continue
		}
		active = append(active, e)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	// Run everything first (whole experiments fan out on top of the
	// per-experiment sweep-cell fan-out), then print in declaration
	// order: stdout stays byte-identical for every -parallel value.
	type result struct {
		tbl     *bench.Table
		elapsed time.Duration
	}
	cfg.Progress.Begin("suite", len(active))
	jobs := make([]func() (result, error), len(active))
	for i, e := range active {
		jobs[i] = func() (result, error) {
			t0 := time.Now()
			tbl, err := e.run()
			cfg.Progress.CellDone("suite", err == nil)
			if err != nil {
				return result{}, fmt.Errorf("%s failed: %w", e.id, err)
			}
			return result{tbl: tbl, elapsed: time.Since(t0)}, nil
		}
	}
	start := time.Now()
	results, err := bench.Fanout(*parallel, jobs)
	if err != nil {
		return err
	}
	total := time.Since(start)

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}

	if *jsonOut {
		doc := jsonDoc{
			Nodes: cfg.Nodes, Seed: cfg.Seed, MaxPacket: cfg.MaxPacket,
			Parallel: *parallel, Total: total.Seconds(),
		}
		for i := range active {
			tbl := results[i].tbl
			doc.Experiments = append(doc.Experiments, jsonExperiment{
				ID: tbl.ID, Title: tbl.Title, Header: tbl.Header,
				Rows: tbl.Rows, Notes: tbl.Notes,
				TxPackets: tbl.TxPackets,
				Elapsed:   results[i].elapsed.Seconds(),
			})
			doc.TxPackets += tbl.TxPackets
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			return err
		}
		if obs != nil && *hold {
			obs.hold()
		}
		return nil
	}

	fmt.Printf("SENS-Join experiment suite — %d nodes, seed %d, %dB packets\n\n", *nodes, *seed, *packet)
	for i, e := range active {
		tbl := results[i].tbl
		if *csv {
			fmt.Printf("# %s — %s\n%s\n", tbl.ID, tbl.Title, tbl.CSV())
		} else {
			fmt.Println(tbl)
		}
		fmt.Fprintf(os.Stderr, "(%s in %.1fs)\n", e.id, results[i].elapsed.Seconds())
	}
	fmt.Fprintf(os.Stderr, "total: %.1fs (parallel %d)\n", total.Seconds(), *parallel)
	if obs != nil && *hold {
		obs.hold()
	}
	return nil
}

// intList parses a comma-separated list of positive integers.
func intList(flagName, s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("%s: bad value %q", flagName, part)
		}
		out = append(out, v)
	}
	return out, nil
}

// runScale executes the X7 scale experiment: the table goes to stdout,
// per-point progress to stderr, and -scale-json writes the raw artifact.
func runScale(sizes, shards string, seed int64, jsonPath, cpuprofile string) error {
	ns, err := intList("-scale", sizes)
	if err != nil {
		return err
	}
	sh, err := intList("-shards", shards)
	if err != nil {
		return err
	}
	if cpuprofile != "" {
		f, err := os.Create(cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	res, err := bench.RunScale(bench.ScaleConfig{Sizes: ns, Shards: sh, Seed: seed})
	if err != nil {
		return err
	}
	fmt.Println(res.Table())
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return err
		}
	}
	return nil
}

// runMQO executes the X8 shared-execution experiment: the table goes to
// stdout and -mqo-json writes the raw artifact.
func runMQO(nodes int, seed int64, packet int, nsList, jsonPath string) error {
	ns, err := intList("-mqo-n", nsList)
	if err != nil {
		return err
	}
	res, err := bench.RunMQO(bench.MQOConfig{Nodes: nodes, Seed: seed, MaxPacket: packet, Ns: ns})
	if err != nil {
		return err
	}
	fmt.Println(res.Table())
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return err
		}
	}
	return nil
}

// runChurn executes the X10 churn-resilience experiment: the table goes
// to stdout and -churn-json writes the raw artifact.
func runChurn(nodes int, seed int64, packet, parallel int, ratesList string, rounds int, jsonPath string) error {
	var rates []float64
	for _, s := range strings.Split(ratesList, ",") {
		var rate float64
		if _, err := fmt.Sscanf(strings.TrimSpace(s), "%g", &rate); err != nil {
			return fmt.Errorf("-churn-rates: cannot parse rate %q: %w", s, err)
		}
		if rate < 0 || rate >= 1 {
			return fmt.Errorf("-churn-rates: rate %g out of range [0, 1)", rate)
		}
		rates = append(rates, rate)
	}
	res, err := bench.RunChurnResilience(bench.ChurnBenchConfig{
		Nodes: nodes, Seed: seed, MaxPacket: packet, Parallel: parallel,
		Rates: rates, Rounds: rounds,
	})
	if err != nil {
		return err
	}
	fmt.Println(res.Table())
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return err
		}
	}
	return nil
}

// runServeLoad executes the X9 serving experiment: the table goes to
// stdout and -serve-load-json writes the raw artifact.
func runServeLoad(nodes int, seed int64, clients int, seconds float64, jsonPath string) error {
	res, err := bench.RunServeLoad(bench.ServeConfig{
		Nodes: nodes, Seed: seed, Clients: clients,
		Duration: time.Duration(seconds * float64(time.Second)),
	})
	if err != nil {
		return err
	}
	fmt.Println(res.Table())
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return err
		}
	}
	return nil
}

// writeTrace journals one calibrated SENS-Join run, writes it as JSON
// Lines plus a Chrome trace_event file (gzipped when path ends in
// ".gz"), and prints the per-phase response-time breakdown.
func writeTrace(cfg bench.Config, path string) error {
	j, violations, err := bench.RunTraced(cfg)
	if err != nil {
		return err
	}
	if err := trace.ExportJSONL(path, j); err != nil {
		return err
	}
	chrome := trace.ChromePathFor(path)
	if err := trace.ExportChrome(chrome, j); err != nil {
		return err
	}
	fmt.Printf("journal: %d events -> %s (+ %s)\n\n", len(j.Events), path, chrome)
	fmt.Println(trace.PhaseBreakdown(j))
	for _, v := range violations {
		fmt.Fprintf(os.Stderr, "audit violation: %s\n", v)
	}
	if len(violations) > 0 {
		return fmt.Errorf("%d audit violation(s)", len(violations))
	}
	return nil
}

// jsonExperiment is one experiment in -json output.
type jsonExperiment struct {
	ID        string     `json:"id"`
	Title     string     `json:"title"`
	Header    []string   `json:"header"`
	Rows      [][]string `json:"rows"`
	Notes     []string   `json:"notes,omitempty"`
	TxPackets int64      `json:"tx_packets"`
	Elapsed   float64    `json:"elapsed_sec"`
}

type jsonDoc struct {
	Nodes       int              `json:"nodes"`
	Seed        int64            `json:"seed"`
	MaxPacket   int              `json:"max_packet"`
	Parallel    int              `json:"parallel"`
	Experiments []jsonExperiment `json:"experiments"`
	TxPackets   int64            `json:"tx_packets"`
	Total       float64          `json:"total_sec"`
}
