// Command experiments regenerates every table and figure of the paper's
// evaluation (§VI) plus the ablations documented in DESIGN.md.
//
// Usage:
//
//	experiments [-nodes 1500] [-seed 42] [-packet 48] [-only E1a,E8]
//
// Output is a sequence of aligned text tables, one per experiment, with
// notes comparing the measured shape to the paper's claims. Absolute
// packet counts depend on this simulator; EXPERIMENTS.md records the
// paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sensjoin/internal/bench"
	"sensjoin/internal/workload"
)

func main() {
	nodes := flag.Int("nodes", 1500, "sensor node count (paper default 1500)")
	seed := flag.Int64("seed", 42, "placement and field seed")
	packet := flag.Int("packet", 48, "maximum packet size in bytes")
	only := flag.String("only", "", "comma-separated experiment ids to run (e.g. E1a,E8); empty = all")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	flag.Parse()

	cfg := bench.Config{Nodes: *nodes, Seed: *seed, MaxPacket: *packet}

	type entry struct {
		id  string
		run func() (*bench.Table, error)
	}
	entries := []entry{
		{"E1a", func() (*bench.Table, error) { return bench.RunOverallSavings(cfg, workload.Ratio33()) }},
		{"E1b", func() (*bench.Table, error) { return bench.RunOverallSavings(cfg, workload.Ratio60()) }},
		{"E2a", func() (*bench.Table, error) { return bench.RunPerNodeSavings(cfg, workload.Ratio33()) }},
		{"E2b", func() (*bench.Table, error) { return bench.RunPerNodeSavings(cfg, workload.Ratio60()) }},
		{"E3", func() (*bench.Table, error) {
			return bench.RunRatioSweep(cfg, workload.RatioSweep3JA(), "E3 / Fig. 12")
		}},
		{"E4", func() (*bench.Table, error) {
			return bench.RunRatioSweep(cfg, workload.RatioSweep1JA(), "E4 / Fig. 13")
		}},
		{"E5", func() (*bench.Table, error) { return bench.RunNetworkSize(cfg, nil, workload.Ratio33()) }},
		{"E6", func() (*bench.Table, error) { return bench.RunPacketSize(cfg, workload.Ratio33()) }},
		{"E7", func() (*bench.Table, error) { return bench.RunStepBreakdown(cfg, nil, workload.Ratio60()) }},
		{"E8", func() (*bench.Table, error) { return bench.RunCompressionComparison(cfg) }},
		{"E9", func() (*bench.Table, error) { return bench.RunQuadInfluence(cfg) }},
		{"A1", func() (*bench.Table, error) { return bench.RunTreecutAblation(cfg, workload.Ratio33()) }},
		{"A2", func() (*bench.Table, error) { return bench.RunFilterLimitAblation(cfg, workload.Ratio33()) }},
		{"X1", func() (*bench.Table, error) { return bench.RunIncrementalFilter(cfg, 0, 0) }},
		{"X2", func() (*bench.Table, error) { return bench.RunRelatedWork(cfg) }},
		{"X3", func() (*bench.Table, error) { return bench.RunLifetime(cfg) }},
		{"X4", func() (*bench.Table, error) { return bench.RunResponseTime(cfg) }},
		{"X5", func() (*bench.Table, error) { return bench.RunMemory(cfg) }},
	}

	selected := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			selected[strings.TrimSpace(id)] = true
		}
	}

	fmt.Printf("SENS-Join experiment suite — %d nodes, seed %d, %dB packets\n\n", *nodes, *seed, *packet)
	start := time.Now()
	for _, e := range entries {
		if len(selected) > 0 && !selected[e.id] {
			continue
		}
		t0 := time.Now()
		tbl, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.id, err)
			os.Exit(1)
		}
		if *csv {
			fmt.Printf("# %s — %s\n%s\n", tbl.ID, tbl.Title, tbl.CSV())
		} else {
			fmt.Println(tbl)
			fmt.Printf("(%s in %.1fs)\n\n", e.id, time.Since(t0).Seconds())
		}
	}
	fmt.Printf("total: %.1fs\n", time.Since(start).Seconds())
}
