// Live observability server for the experiment suite (-serve).
//
// Endpoints:
//
//	/metrics      Prometheus text exposition (version 0.0.4)
//	/progress     JSON per-experiment sweep-cell completion
//	/debug/vars   expvar (includes the full registry snapshot)
//	/debug/pprof/ CPU/heap/goroutine profiles
//	/quit         with -hold: release the server and exit
//
// Everything the server prints goes to stderr; stdout stays reserved
// for the byte-identical experiment tables.
package main

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"sensjoin/internal/bench"
	"sensjoin/internal/metrics"
	"sensjoin/internal/server"
)

// obsServer serves the live observability endpoints while the suite
// runs (and afterwards with -hold).
type obsServer struct {
	srv      *http.Server
	addr     net.Addr
	quit     chan struct{}
	quitOnce sync.Once
}

// startServe listens on addr and serves reg and prog. The returned
// server is already running; call stop when done (hold first to wait
// for /quit or an interrupt).
func startServe(addr string, reg *metrics.Registry, prog *bench.Progress) (*obsServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("-serve: %w", err)
	}
	o := &obsServer{quit: make(chan struct{})}

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		snap := prog.Snapshot()
		if snap == nil {
			snap = []bench.ExpProgress{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(map[string]any{"experiments": snap}); err != nil {
			// Headers are gone; all we can do is log instead of
			// silently truncating the response.
			fmt.Fprintf(os.Stderr, "-serve: /progress: %v\n", err)
		}
	})
	mux.HandleFunc("/quit", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "bye")
		o.quitOnce.Do(func() { close(o.quit) })
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintln(w, "sensjoin experiments: /metrics /progress /debug/vars /debug/pprof/ /quit")
	})

	// Expose the registry through expvar too. PublishExpvar is safe
	// against double starts (expvar.Publish itself panics on
	// re-registration) and retargets the existing var on later calls.
	metrics.PublishExpvar("sensjoin", reg)

	// Hardened server config: header/idle timeouts defeat slowloris
	// clients; WriteTimeout stays 0 so /debug/pprof/profile can stream
	// its whole profiling window.
	o.srv = server.Hardened(mux)
	o.addr = ln.Addr()
	server.ServeHTTP(o.srv, ln, func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "-serve: "+format+"\n", args...)
	})
	fmt.Fprintf(os.Stderr, "serving observability on http://%s/ (metrics, progress, pprof)\n", o.addr)
	return o, nil
}

// hold blocks until /quit is hit or the process is interrupted.
func (o *obsServer) hold() {
	fmt.Fprintf(os.Stderr, "holding: GET http://%s/quit (or interrupt) to exit\n", o.addr)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case <-o.quit:
	case <-sig:
	}
}

// stop shuts the server down, letting in-flight requests finish.
func (o *obsServer) stop() {
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	o.srv.Shutdown(ctx)
}
