package server

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"time"

	"sensjoin/internal/metrics"
	"sensjoin/internal/trace"
)

// Hardened wraps a handler in an http.Server with conservative
// timeouts, so a client that opens a connection and never finishes its
// request headers (slowloris) or goes idle cannot pin a goroutine and a
// file descriptor forever. WriteTimeout deliberately stays zero:
// /debug/pprof/profile legitimately streams for its whole profiling
// window.
func Hardened(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// ServeHTTP runs srv on ln in the background, logging (rather than
// dropping) the terminal Serve error.
func ServeHTTP(srv *http.Server, ln net.Listener, logf func(format string, args ...any)) {
	go func() {
		if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			logf("http: serve: %v", err)
		}
	}()
}

// ObsHTTP is a running observability HTTP server.
type ObsHTTP struct {
	srv *http.Server
}

// StartObsHTTP serves the standard observability mux on ln with the
// hardened server configuration. A non-nil s additionally serves its
// flight recorder at /debug/queries. A nil logf uses the standard
// logger.
func StartObsHTTP(ln net.Listener, reg *metrics.Registry, s *Server, logf func(format string, args ...any)) *ObsHTTP {
	if logf == nil {
		logf = Config{}.withDefaults().Logf
	}
	mux := ObsMux(reg)
	if s != nil {
		s.AttachDebug(mux)
	}
	srv := Hardened(mux)
	ServeHTTP(srv, ln, logf)
	return &ObsHTTP{srv: srv}
}

// Stop shuts the observability server down, letting in-flight requests
// finish briefly.
func (o *ObsHTTP) Stop() {
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	o.srv.Shutdown(ctx)
}

// ObsMux builds the standard observability mux: Prometheus exposition,
// a health probe, expvar and pprof.
func ObsMux(reg *metrics.Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintln(w, "sensjoind: /metrics /healthz /debug/vars /debug/pprof/ /debug/queries")
	})
	return mux
}

// AttachDebug registers the server's query-level debug endpoints on
// mux:
//
//	/debug/queries              JSON array of recent QueryRecords,
//	                            newest first (the flight recorder)
//	/debug/queries?trace=<id>   the retained span tree of one sampled
//	                            query, one trace.Event JSON per line
func (s *Server) AttachDebug(mux *http.ServeMux) {
	mux.HandleFunc("/debug/queries", func(w http.ResponseWriter, r *http.Request) {
		if id := r.URL.Query().Get("trace"); id != "" {
			spans, ok := s.flight.Spans(id)
			if !ok {
				http.Error(w, "trace ID not in the flight recorder", http.StatusNotFound)
				return
			}
			// The canonical journal JSONL (one event per line, kind
			// named in "ev") — the same form WriteJSONL/ReadJSONL and
			// the audit tooling speak.
			w.Header().Set("Content-Type", "application/jsonl")
			trace.WriteJSONL(w, &trace.Journal{Events: spans})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.flight.Records())
	})
}
