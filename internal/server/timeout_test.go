package server

import (
	"errors"
	"testing"
	"time"

	"sensjoin/pkg/client"
)

// A query that exceeds QueryTimeout must answer with CodeTimeout AND
// release its execution slot. With MaxConcurrent=1 a leaked slot would
// deadlock every later query, so three sequential timeouts passing is
// the release proof; run with -race.
func TestQueryTimeoutReleasesSlot(t *testing.T) {
	s, reg := startTestServer(t, Config{
		MaxConcurrent: 1,
		QueryTimeout:  time.Nanosecond, // expires before any real epoch finishes
	})
	c, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 3
	for i := 0; i < n; i++ {
		_, err := c.Query(testQueries[0])
		var se *client.ServerError
		if !errors.As(err, &se) || se.Code != "timeout" {
			t.Fatalf("query %d: got %v, want ServerError code %q", i, err, "timeout")
		}
	}
	snap := reg.Snapshot()
	if v := snap["sensjoind_query_timeouts_total"].(int64); v != n {
		t.Fatalf("timeout counter = %d, want %d", v, n)
	}
	if v := snap["sensjoind_active_queries"].(int64); v != 0 {
		t.Fatalf("active-query gauge stuck at %d after timeouts", v)
	}
}

// Shared (grouped) continuous queries hit the same deadline: every
// member gets the timeout error, none hangs.
func TestSharedRoundTimeout(t *testing.T) {
	s, reg := startTestServer(t, Config{QueryTimeout: time.Nanosecond})
	c, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	src := `SELECT A.temp FROM Sensors A, Sensors B WHERE A.temp = B.temp SAMPLE PERIOD 30`
	st, err := c.Stream(src, client.Options{Rounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	_, err = st.Next()
	var se *client.ServerError
	if !errors.As(err, &se) || se.Code != "timeout" {
		t.Fatalf("got %v, want ServerError code %q", err, "timeout")
	}
	if v := reg.Snapshot()["sensjoind_query_timeouts_total"].(int64); v == 0 {
		t.Fatal("timeout counter not incremented for shared round")
	}
}

// A generous deadline must not disturb normal execution.
func TestQueryTimeoutGenerousDeadlinePasses(t *testing.T) {
	s, _ := startTestServer(t, Config{QueryTimeout: time.Minute})
	c, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	tb, err := c.Query(testQueries[0])
	if err != nil {
		t.Fatal(err)
	}
	if got, want := clientKey(tb), reference(t, testQueries[0], 0); got != want {
		t.Fatalf("bounded execution changed the result:\ngot:  %s\nwant: %s", got, want)
	}
}
