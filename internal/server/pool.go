package server

import (
	"fmt"
	"sync"

	"sensjoin/internal/core"
	"sensjoin/internal/relation"
)

// pool owns the runners of one deployment (nodes, seed). Runners are
// not concurrency-safe, so concurrent executions each check one out;
// the shared deployment cache (core/cache.go) makes a fresh runner
// cheap when the pool runs dry, and the free list just avoids paying
// even that on the steady-state path.
type pool struct {
	key  poolKey
	cfg  core.SetupConfig
	cat  relation.Catalog
	free chan *core.Runner
}

type poolKey struct {
	nodes int
	seed  int64
}

func (k poolKey) String() string { return fmt.Sprintf("%d/%d", k.nodes, k.seed) }

// maxPools bounds the distinct deployments one server will simulate;
// each holds a cached deployment + routing tree, so an unbounded map
// would let clients exhaust memory.
const maxPools = 8

func newPool(k poolKey, maxPacket, capacity int) (*pool, error) {
	cfg := core.SetupConfig{Nodes: k.nodes, Seed: k.seed}
	if maxPacket > 0 {
		cfg.Radio.MaxPacket = maxPacket
	}
	// Build one runner eagerly: it validates the config, warms the
	// shared deployment cache, and donates the catalog.
	r, err := core.NewRunner(cfg)
	if err != nil {
		return nil, err
	}
	p := &pool{key: k, cfg: cfg, cat: r.Catalog, free: make(chan *core.Runner, capacity)}
	p.put(r)
	return p, nil
}

// get checks out a runner, building a fresh one when the free list is
// empty.
func (p *pool) get() (*core.Runner, error) {
	select {
	case r := <-p.free:
		return r, nil
	default:
		return core.NewRunner(p.cfg)
	}
}

// put returns a runner; beyond capacity it is simply dropped.
func (p *pool) put(r *core.Runner) {
	select {
	case p.free <- r:
	default:
	}
}

// poolFor returns (creating on first use) the pool for a deployment.
func (s *Server) poolFor(nodes int, seed int64) (*pool, error) {
	if nodes == 0 {
		nodes = s.cfg.Nodes
	}
	if seed == 0 {
		seed = s.cfg.Seed
	}
	k := poolKey{nodes: nodes, seed: seed}
	s.poolMu.Lock()
	defer s.poolMu.Unlock()
	if p, ok := s.pools[k]; ok {
		return p, nil
	}
	if len(s.pools) >= maxPools {
		return nil, fmt.Errorf("server: %d distinct deployments already simulated; not adding %v", len(s.pools), k)
	}
	p, err := newPool(k, s.cfg.MaxPacket, s.cfg.MaxConcurrent)
	if err != nil {
		return nil, err
	}
	s.pools[k] = p
	return p, nil
}

// preparedCache maps queries to their compiled plans in two key spaces:
// by exact source text (hit skips even the parse) and by canonical
// fingerprint (differently spelled but canonically equal queries share
// one Prepared; hit skips analysis and kernel compilation). Both keys
// are scoped by deployment, since a Prepared binds a catalog.
type preparedCache struct {
	mu    sync.Mutex
	bySrc map[string]*core.Prepared
	byFP  map[string]*core.Prepared
	met   *serverMetrics
}

// maxCacheEntries bounds the cache; overflowing resets it wholesale (a
// serving workload has a small set of live shapes, so an overflow means
// adversarial or generated queries — starting over is cheap and keeps
// the code free of eviction-order bookkeeping).
const maxCacheEntries = 4096

func newPreparedCache(met *serverMetrics) *preparedCache {
	return &preparedCache{
		bySrc: make(map[string]*core.Prepared),
		byFP:  make(map[string]*core.Prepared),
		met:   met,
	}
}

// lookup returns the prepared form of src for pool p, preparing and
// caching it on miss. The second return reports a cache hit.
func (c *preparedCache) lookup(p *pool, src string) (*core.Prepared, bool, error) {
	srcKey := p.key.String() + "\x00" + src
	c.mu.Lock()
	if prep, ok := c.bySrc[srcKey]; ok {
		c.mu.Unlock()
		c.met.cacheHits.Inc()
		return prep, true, nil
	}
	c.mu.Unlock()

	prep, err := core.Prepare(p.cat, src)
	if err != nil {
		return nil, false, err
	}
	fpKey := p.key.String() + "\x00" + prep.Fingerprint()

	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.bySrc) >= maxCacheEntries || len(c.byFP) >= maxCacheEntries {
		c.bySrc = make(map[string]*core.Prepared)
		c.byFP = make(map[string]*core.Prepared)
	}
	hit := false
	if canon, ok := c.byFP[fpKey]; ok {
		// A canonically equal query was prepared before; its compiled
		// plan computes the identical table, so alias this spelling to
		// it. (This request still paid the parse, but the cache now
		// serves the new spelling without one.)
		prep = canon
		hit = true
		c.met.cacheHits.Inc()
	} else {
		c.byFP[fpKey] = prep
		c.met.cacheMisses.Inc()
	}
	c.bySrc[srcKey] = prep
	return prep, hit, nil
}
