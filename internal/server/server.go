// Package server implements sensjoind: a long-running daemon that
// executes sensjoin queries for many concurrent client sessions over
// the length-prefixed wire protocol of internal/proto.
//
// Architecture (one box per concern):
//
//   - Sessions: one TCP connection each, a read loop dispatching frames
//     and a write loop serializing responses through a bounded queue.
//     Queries pipeline: a session may have many in flight, demultiplexed
//     by client-chosen IDs.
//   - Admission control: a global bound on admitted queries (queued +
//     executing) rejects excess load with an explicit over-capacity
//     error instead of letting latency and memory grow without bound; a
//     global execution semaphore sizes the actual parallelism.
//   - Runner pools: core.Runner is not concurrency-safe, so concurrent
//     executions check runners out of a per-deployment free list; the
//     shared deployment cache (core/cache.go) makes overflow runners
//     cheap.
//   - Prepared-query cache: compiled plans keyed by canonical query
//     fingerprint (and by exact source), shared by all sessions — see
//     pool.go.
//   - Shared execution: compatible continuous queries arriving within a
//     batch window run as one core.QueryGroup protocol round per epoch —
//     see group.go.
//
// Everything is instrumented through the sensjoind_* families of the
// metrics registry (see metrics.go).
package server

import (
	"bufio"
	"errors"
	"fmt"
	"log/slog"
	"math/rand"
	"net"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sensjoin/internal/core"
	"sensjoin/internal/metrics"
	"sensjoin/internal/proto"
	"sensjoin/internal/query"
	"sensjoin/internal/trace"
)

// Config tunes a Server; zero values select the documented defaults.
type Config struct {
	// Nodes/Seed describe the default deployment (defaults 150 / 1).
	Nodes int
	Seed  int64
	// MaxPacket overrides the radio's maximum packet size (0 = paper
	// default).
	MaxPacket int
	// MaxSessions bounds concurrently open sessions (default 256).
	MaxSessions int
	// MaxConcurrent bounds concurrently executing queries (default
	// GOMAXPROCS, at least 2).
	MaxConcurrent int
	// MaxQueue bounds admitted-but-waiting queries beyond MaxConcurrent;
	// excess submissions are rejected with CodeOverCapacity (default
	// 4*MaxConcurrent).
	MaxQueue int
	// MaxRounds caps one periodic query's epochs (default 1000).
	MaxRounds int
	// IdleTimeout closes sessions with no inbound frame for this long
	// (default 5m).
	IdleTimeout time.Duration
	// QueryTimeout bounds one epoch's execution. Expiry frees the
	// execution slot, answers the query with CodeTimeout and abandons
	// the runner — a wedged execution can no longer starve the semaphore
	// (default 5m).
	QueryTimeout time.Duration
	// BatchWindow is how long the first compatible continuous query
	// waits for companions before its group starts (default 25ms).
	BatchWindow time.Duration
	// DrainTimeout bounds how long Close waits for in-flight queries
	// (default 10s).
	DrainTimeout time.Duration
	// TraceSample is the fraction of queries (0..1) whose full span
	// tree is captured into the flight recorder; 0 disables span
	// capture (the flight recorder still records every query's
	// operational facts).
	TraceSample float64
	// FlightSize bounds the flight recorder's ring of recent queries
	// (default 256).
	FlightSize int
	// Registry receives the sensjoind_* instruments (nil = private
	// registry, metrics effectively off).
	Registry *metrics.Registry
	// Logger receives structured operational logs (nil = a text handler
	// on stderr, or one writing through Logf when that is set — so
	// embedders that silence Logf silence everything).
	Logger *slog.Logger
	// Logf receives printf-style operational log lines (nil = derived
	// from Logger). Kept for embedders; new code should prefer Logger.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Nodes <= 0 {
		c.Nodes = 150
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 256
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = max(2, runtime.GOMAXPROCS(0))
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 4 * c.MaxConcurrent
	}
	if c.MaxRounds <= 0 {
		c.MaxRounds = 1000
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 5 * time.Minute
	}
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = 5 * time.Minute
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 25 * time.Millisecond
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.FlightSize <= 0 {
		c.FlightSize = 256
	}
	if c.Logger == nil {
		if c.Logf != nil {
			// Route structured logs through the embedder's Logf so its
			// silencing (bench passes a no-op) covers them too.
			c.Logger = slog.New(slog.NewTextHandler(logfWriter{c.Logf}, nil))
		} else {
			c.Logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
		}
	}
	if c.Logf == nil {
		lg := c.Logger
		c.Logf = func(format string, args ...any) {
			lg.Info(fmt.Sprintf(format, args...))
		}
	}
	return c
}

// logfWriter adapts a printf-style log hook into an io.Writer for the
// slog text handler.
type logfWriter struct{ logf func(format string, args ...any) }

func (w logfWriter) Write(p []byte) (int, error) {
	w.logf("%s", strings.TrimRight(string(p), "\n"))
	return len(p), nil
}

// Server is a running sensjoind instance.
type Server struct {
	cfg  Config
	met  *serverMetrics
	ln   net.Listener
	logf func(format string, args ...any)
	log  *slog.Logger

	flight   *FlightRecorder
	traceSeq atomic.Int64

	execSem chan struct{}
	queued  atomic.Int64

	mu       sync.Mutex // sessions, closed, queryWG admission
	closed   bool
	sessions map[int64]*session
	nextSID  int64

	closing chan struct{}
	sessWG  sync.WaitGroup // accept loop + session read/write loops
	queryWG sync.WaitGroup // in-flight queries (admission to finish)

	poolMu sync.Mutex
	pools  map[poolKey]*pool

	prep *preparedCache
	hub  *groupHub
}

// Listen starts a server on addr ("host:port"; ":0" picks a free port).
// The default deployment is built (or fetched from the shared cache)
// before Listen returns, so a reachable server is ready to execute.
func Listen(addr string, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		met:      newServerMetrics(cfg.Registry),
		logf:     cfg.Logf,
		log:      cfg.Logger,
		flight:   newFlightRecorder(cfg.FlightSize),
		execSem:  make(chan struct{}, cfg.MaxConcurrent),
		sessions: make(map[int64]*session),
		closing:  make(chan struct{}),
		pools:    make(map[poolKey]*pool),
	}
	s.prep = newPreparedCache(s.met)
	s.hub = newGroupHub(s)
	if _, err := s.poolFor(0, 0); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	s.sessWG.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the listening address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Flight returns the server's flight recorder: the ring of recent
// query executions behind /debug/queries.
func (s *Server) Flight() *FlightRecorder { return s.flight }

// assignTrace returns the query's trace ID (client-supplied or
// server-assigned) and whether this execution is sampled for full span
// capture.
func (s *Server) assignTrace(ss *session, q proto.Query) (string, bool) {
	id := q.TraceID
	if id == "" {
		id = fmt.Sprintf("q-%d-%d-%d", ss.id, q.ID, s.traceSeq.Add(1))
	}
	sampled := s.cfg.TraceSample >= 1 ||
		(s.cfg.TraceSample > 0 && rand.Float64() < s.cfg.TraceSample)
	return id, sampled
}

// Close drains and stops the server: no new sessions or queries are
// admitted, in-flight queries get up to DrainTimeout to finish (the
// epoch loops of continuous queries end early), then every session is
// torn down.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.closing)
	err := s.ln.Close()

	done := make(chan struct{})
	go func() {
		s.queryWG.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(s.cfg.DrainTimeout):
		s.logf("sensjoind: drain timeout after %v; dropping in-flight queries", s.cfg.DrainTimeout)
	}

	s.mu.Lock()
	open := make([]*session, 0, len(s.sessions))
	for _, ss := range s.sessions {
		open = append(open, ss)
	}
	s.mu.Unlock()
	for _, ss := range open {
		ss.teardown()
	}
	s.sessWG.Wait()
	return err
}

func (s *Server) isClosing() bool {
	select {
	case <-s.closing:
		return true
	default:
		return false
	}
}

func (s *Server) acceptLoop() {
	defer s.sessWG.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if s.isClosing() || errors.Is(err, net.ErrClosed) {
				return
			}
			s.logf("sensjoind: accept: %v", err)
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			refuse(conn, proto.CodeShutdown, "server is shutting down")
			continue
		}
		if len(s.sessions) >= s.cfg.MaxSessions {
			s.mu.Unlock()
			s.met.rejected.Inc()
			refuse(conn, proto.CodeOverCapacity,
				fmt.Sprintf("session limit %d reached", s.cfg.MaxSessions))
			continue
		}
		s.nextSID++
		ss := &session{
			s:      s,
			id:     s.nextSID,
			conn:   conn,
			out:    make(chan outFrame, 256),
			quit:   make(chan struct{}),
			active: make(map[int64]*runningQuery),
		}
		s.sessions[ss.id] = ss
		s.mu.Unlock()
		s.met.sessions.Inc()
		s.met.sessionsTotal.Inc()
		s.sessWG.Add(2)
		go ss.readLoop()
		go ss.writeLoop()
	}
}

// refuse answers a connection the server will not serve with a
// session-level Error frame, then closes it.
func refuse(conn net.Conn, code, msg string) {
	conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	proto.WriteFrame(conn, proto.KindError, proto.Error{Code: code, Msg: msg})
	conn.Close()
}

// outFrame is one queued response frame.
type outFrame struct {
	kind byte
	msg  any
}

// runningQuery is the cancel handle of one in-flight query.
type runningQuery struct {
	cancel     chan struct{}
	cancelOnce sync.Once
}

func (rq *runningQuery) doCancel() { rq.cancelOnce.Do(func() { close(rq.cancel) }) }

func (rq *runningQuery) canceled() bool {
	select {
	case <-rq.cancel:
		return true
	default:
		return false
	}
}

// session is one client connection.
type session struct {
	s    *Server
	id   int64
	conn net.Conn
	out  chan outFrame
	quit chan struct{}

	killOnce sync.Once
	mu       sync.Mutex
	active   map[int64]*runningQuery
}

// teardown kills the session exactly once: the connection closes (which
// unblocks the read loop), the write loop exits, every in-flight query
// is canceled, and the server forgets the session.
func (ss *session) teardown() {
	ss.killOnce.Do(func() {
		close(ss.quit)
		ss.conn.Close()
		ss.mu.Lock()
		for _, rq := range ss.active {
			rq.doCancel()
		}
		ss.mu.Unlock()
		ss.s.mu.Lock()
		delete(ss.s.sessions, ss.id)
		ss.s.mu.Unlock()
		ss.s.met.sessions.Dec()
	})
}

// send queues a response frame. It returns false (and on persistent
// backpressure kills the session) when the frame cannot be delivered.
func (ss *session) send(kind byte, msg any) bool {
	f := outFrame{kind: kind, msg: msg}
	select {
	case ss.out <- f:
		return true
	case <-ss.quit:
		return false
	default:
	}
	t := time.NewTimer(10 * time.Second)
	defer t.Stop()
	select {
	case ss.out <- f:
		return true
	case <-ss.quit:
		return false
	case <-t.C:
		ss.s.logf("sensjoind: session %d: client not draining responses; dropping session", ss.id)
		ss.teardown()
		return false
	}
}

func (ss *session) sendErr(id int64, code, msg string) bool {
	return ss.send(proto.KindError, proto.Error{ID: id, Code: code, Msg: msg})
}

func (ss *session) writeLoop() {
	defer ss.s.sessWG.Done()
	bw := bufio.NewWriter(ss.conn)
	for {
		select {
		case f := <-ss.out:
			ss.conn.SetWriteDeadline(time.Now().Add(30 * time.Second))
			if err := proto.WriteFrame(bw, f.kind, f.msg); err != nil {
				ss.teardown()
				return
			}
			if len(ss.out) == 0 {
				if err := bw.Flush(); err != nil {
					ss.teardown()
					return
				}
			}
		case <-ss.quit:
			bw.Flush()
			return
		}
	}
}

func (ss *session) readLoop() {
	defer ss.s.sessWG.Done()
	defer ss.teardown()
	br := bufio.NewReader(ss.conn)

	ss.conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	kind, payload, err := proto.ReadFrame(br)
	if err != nil {
		return
	}
	var hello proto.Hello
	if kind != proto.KindHello || proto.Decode(payload, &hello) != nil {
		ss.sendErr(0, proto.CodeProto, "expected Hello")
		return
	}
	if hello.Version != proto.Version {
		ss.sendErr(0, proto.CodeProto,
			fmt.Sprintf("protocol version %d not supported (server speaks %d)", hello.Version, proto.Version))
		return
	}
	if !ss.send(proto.KindHelloOK, proto.HelloOK{
		Version: proto.Version, Session: ss.id,
		Nodes: ss.s.cfg.Nodes, Seed: ss.s.cfg.Seed,
	}) {
		return
	}

	for {
		ss.conn.SetReadDeadline(time.Now().Add(ss.s.cfg.IdleTimeout))
		kind, payload, err := proto.ReadFrame(br)
		if err != nil {
			return
		}
		switch kind {
		case proto.KindQuery:
			var q proto.Query
			if proto.Decode(payload, &q) != nil {
				ss.sendErr(0, proto.CodeProto, "bad Query payload")
				return
			}
			if !ss.submit(q) {
				return
			}
		case proto.KindCancel:
			var c proto.Cancel
			if proto.Decode(payload, &c) != nil {
				ss.sendErr(0, proto.CodeProto, "bad Cancel payload")
				return
			}
			ss.mu.Lock()
			rq := ss.active[c.ID]
			ss.mu.Unlock()
			if rq != nil {
				rq.doCancel()
			}
		case proto.KindBye:
			return
		default:
			ss.sendErr(0, proto.CodeProto, fmt.Sprintf("unexpected frame kind %d", kind))
			return
		}
	}
}

// submit admits one query. A false return is a protocol violation that
// ends the session; admission rejections answer with an Error frame and
// keep the session alive.
func (ss *session) submit(q proto.Query) bool {
	s := ss.s
	if q.ID <= 0 {
		ss.sendErr(q.ID, proto.CodeProto, "query ID must be positive")
		return false
	}
	ss.mu.Lock()
	_, dup := ss.active[q.ID]
	ss.mu.Unlock()
	if dup {
		ss.sendErr(q.ID, proto.CodeProto, fmt.Sprintf("query ID %d already in flight", q.ID))
		return false
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ss.sendErr(q.ID, proto.CodeShutdown, "server is shutting down")
		return true
	}
	if s.queued.Load() >= int64(s.cfg.MaxQueue+s.cfg.MaxConcurrent) {
		s.mu.Unlock()
		s.met.rejected.Inc()
		ss.sendErr(q.ID, proto.CodeOverCapacity,
			fmt.Sprintf("admission limit %d reached; retry later", s.cfg.MaxQueue+s.cfg.MaxConcurrent))
		return true
	}
	s.queryWG.Add(1) // under s.mu: Close sets closed before waiting
	s.met.queueDepth.Set(s.queued.Add(1))
	s.mu.Unlock()
	s.met.queries.Inc()

	rq := &runningQuery{cancel: make(chan struct{})}
	ss.mu.Lock()
	ss.active[q.ID] = rq
	ss.mu.Unlock()
	go s.runQuery(ss, q, rq)
	return true
}

// finish releases a query's admission slot; called exactly once per
// admitted query.
func (ss *session) finish(id int64) {
	ss.mu.Lock()
	delete(ss.active, id)
	ss.mu.Unlock()
	ss.s.met.queueDepth.Set(ss.s.queued.Add(-1))
	ss.s.queryWG.Done()
}

// acquire takes an execution slot, giving up on cancel or session
// death. Server drain does NOT abort it: admitted queries run.
func (s *Server) acquire(ss *session, rq *runningQuery) bool {
	select {
	case s.execSem <- struct{}{}:
		s.met.activeQueries.Inc()
		return true
	case <-rq.cancel:
		return false
	case <-ss.quit:
		return false
	}
}

func (s *Server) release() {
	<-s.execSem
	s.met.activeQueries.Dec()
}

// runQuery plans one admitted query and routes it to independent or
// shared execution.
func (s *Server) runQuery(ss *session, q proto.Query, rq *runningQuery) {
	handedOff := false
	defer func() {
		if !handedOff {
			ss.finish(q.ID)
		}
	}()

	method := q.Method
	if method == "" {
		method = "sens"
	}
	if method != "sens" && method != "external" {
		ss.sendErr(q.ID, proto.CodeParse, fmt.Sprintf("unknown method %q (want sens or external)", method))
		return
	}
	pl, err := s.poolFor(q.Nodes, q.Seed)
	if err != nil {
		s.met.rejected.Inc()
		ss.sendErr(q.ID, proto.CodeOverCapacity, err.Error())
		return
	}
	prep, hit, err := s.prep.lookup(pl, q.Src)
	if err != nil {
		ss.sendErr(q.ID, proto.CodeParse, err.Error())
		return
	}
	rounds := 1
	if prep.Mode() == query.Periodic {
		rounds = q.Rounds
		if rounds <= 0 {
			rounds = 1
		}
		rounds = min(rounds, s.cfg.MaxRounds)
	}

	if prep.Mode() == query.Periodic && method == "sens" && prep.Shareable() {
		handedOff = true
		s.hub.enqueue(&groupSub{
			ss: ss, q: q, prep: prep, hit: hit, rq: rq, rounds: rounds,
		}, pl)
		return
	}
	s.runIndependent(ss, q, pl, prep, hit, rq, rounds, method)
}

// methodInstance builds a fresh method value for one query.
func methodInstance(name string, continuous bool) core.Method {
	if name == "external" {
		return core.External{}
	}
	if continuous {
		return core.NewContinuousSENSJoin()
	}
	return core.NewSENSJoin()
}

// runIndependent executes a query on its own runner: the one-shot path
// and any continuous query shared execution cannot take.
func (s *Server) runIndependent(ss *session, q proto.Query, pl *pool,
	prep *core.Prepared, hit bool, rq *runningQuery, rounds int, method string) {
	traceID, sampled := s.assignTrace(ss, q)
	rec := QueryRecord{
		TraceID: traceID, Session: ss.id, ID: q.ID, Src: q.Src, Method: method,
		ClusterSize: 1, CacheHit: hit, Sampled: sampled,
	}
	var spans []trace.Event
	wallStart := time.Now()
	defer func() {
		rec.TotalSeconds = time.Since(wallStart).Seconds()
		s.flight.Record(rec, spans)
		s.log.Debug("query finished",
			"trace", traceID, "session", ss.id, "id", q.ID,
			"epochs", rec.Epochs, "rows", rec.Rows, "complete", rec.Complete,
			"err", rec.Error, "seconds", rec.TotalSeconds)
	}()

	r, err := pl.get()
	if err != nil {
		rec.Error = proto.CodeExec + ": " + err.Error()
		ss.sendErr(q.ID, proto.CodeExec, err.Error())
		return
	}
	var tr *trace.Recorder
	var mark int
	if sampled {
		s.met.tracedQueries.Inc()
		tr = r.EnableTrace()
		tr.SetTag(traceID)
		mark = tr.Mark()
	}
	// capture copies the sampled span tree out of the runner's recorder
	// and feeds the per-phase histograms. It must NOT run while the
	// runner is still executing (the timeout path abandons one
	// mid-flight), so that path nils tr first.
	capture := func() {
		if tr == nil {
			return
		}
		j := tr.JournalSince(mark)
		spans = append([]trace.Event(nil), j.Events...)
		rec.Phases = phaseBreakdown(spans)
		s.met.observePhases(rec.Phases)
		tr = nil
	}
	defer capture()

	m := methodInstance(method, prep.Mode() == query.Periodic)
	headerSent := false
	for e := 0; e < rounds; e++ {
		if rq.canceled() || (e > 0 && s.isClosing()) {
			break
		}
		if !s.acquire(ss, rq) {
			break
		}
		t := q.At + float64(e)*prep.Period()
		start := time.Now()
		res, err, timedOut := s.runBounded(r, prep, m, t)
		s.release()
		s.met.querySeconds.Observe(time.Since(start).Seconds())
		if timedOut {
			s.met.queryTimeouts.Inc()
			tr = nil // the abandoned epoch still writes the recorder
			rec.Error = proto.CodeTimeout
			rec.IncompleteReason = "execution deadline exceeded"
			ss.sendErr(q.ID, proto.CodeTimeout,
				fmt.Sprintf("epoch %d exceeded the %v execution deadline", e, s.cfg.QueryTimeout))
			return // runner abandoned mid-execution: do not return it to the pool
		}
		if err != nil {
			rec.Error = proto.CodeExec + ": " + err.Error()
			capture()
			ss.sendErr(q.ID, proto.CodeExec, err.Error())
			return // runner possibly mid-execution: do not return it to the pool
		}
		if !headerSent {
			if !ss.send(proto.KindHeader, proto.Header{
				ID: q.ID, Columns: res.Columns, CacheHit: hit, ClusterSize: 1,
				TraceID: traceID, Sampled: sampled,
			}) {
				return
			}
			headerSent = true
		}
		if !ss.emitEpoch(q.ID, e, t, res) {
			return
		}
		rec.Epochs++
		rec.Rows += len(res.Rows)
		rec.Complete = res.Complete
		rec.IncompleteReason = ""
		if !res.Complete && len(res.MissingSubtrees) > 0 {
			rec.IncompleteReason = fmt.Sprintf("%d missing subtree(s)", len(res.MissingSubtrees))
		}
	}
	capture()
	if sampled {
		tr2 := r.Trace
		r.DisableTrace()
		tr2.Truncate(0) // drop the retained journal before pooling
	}
	pl.put(r)
	ss.send(proto.KindDone, proto.Done{ID: q.ID, Epochs: rec.Epochs})
}

// runBounded executes one epoch on r, bounded by QueryTimeout. On
// expiry the execution goroutine cannot be killed — it is abandoned
// together with its runner, and the caller must not return r to the
// pool; what the deadline reclaims is the execution slot and the
// client's query.
func (s *Server) runBounded(r *core.Runner, prep *core.Prepared, m core.Method, t float64) (*core.Result, error, bool) {
	type epochResult struct {
		res *core.Result
		err error
	}
	done := make(chan epochResult, 1) // buffered: an abandoned epoch still exits
	go func() {
		res, err := r.RunPrepared(prep, m, t)
		done <- epochResult{res: res, err: err}
	}()
	timer := time.NewTimer(s.cfg.QueryTimeout)
	defer timer.Stop()
	select {
	case out := <-done:
		return out.res, out.err, false
	case <-timer.C:
		return nil, nil, true
	}
}

// emitEpoch streams one epoch's table as Rows chunks plus an EpochEnd.
func (ss *session) emitEpoch(id int64, epoch int, t float64, res *core.Result) bool {
	const chunk = 512
	for i := 0; i < len(res.Rows); i += chunk {
		j := min(i+chunk, len(res.Rows))
		rows := make([][]float64, j-i)
		for k, row := range res.Rows[i:j] {
			rows[k] = row
		}
		if !ss.send(proto.KindRows, proto.Rows{ID: id, Epoch: epoch, Rows: rows}) {
			return false
		}
	}
	return ss.send(proto.KindEpochEnd, proto.EpochEnd{
		ID: id, Epoch: epoch, Time: t,
		RowCount: len(res.Rows), Complete: res.Complete,
		Contributing: res.ContributingNodes, Members: res.MemberNodes,
		ResponseTime: res.ResponseTime,
	})
}
