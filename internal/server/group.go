package server

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"sensjoin/internal/core"
	"sensjoin/internal/proto"
	"sensjoin/internal/trace"
)

// Shared execution of continuous queries. A continuous SENS-Join query
// arriving at the daemon waits one BatchWindow for companions; every
// compatible query that arrives within the window for the same
// (deployment, period, start time) joins the same core.QueryGroup and
// the whole group runs ONE shared protocol round per epoch on a private
// runner. Each member still receives exactly its own result table (the
// group's correctness contract), so sharing is invisible to clients
// except through the Header's Shared/ClusterSize facts and the lower
// network cost per query.
//
// Queries arriving after a window closed simply form a new group: the
// incremental filter state of a running group is epoch-aligned, so late
// joiners cannot splice into it.

// groupSub is one query's membership in a pending batch.
type groupSub struct {
	ss   *session
	q    proto.Query
	prep *core.Prepared
	hit  bool
	rq   *runningQuery
	// rounds is the epoch budget requested by the client (capped).
	rounds int

	// dead stops emission (send failure); the admission slot is still
	// released exactly once at batch end.
	dead       bool
	headerSent bool
	epochs     int
}

// groupHub collects compatible continuous queries into batches.
type groupHub struct {
	s       *Server
	mu      sync.Mutex
	pending map[string]*batch
}

type batch struct {
	pool   *pool
	at     float64
	period float64
	subs   []*groupSub
}

func newGroupHub(s *Server) *groupHub {
	return &groupHub{s: s, pending: make(map[string]*batch)}
}

// enqueue adds a query to the open batch for its (deployment, period,
// start) — opening one, and arming its window timer, if none is open.
func (h *groupHub) enqueue(sub *groupSub, pl *pool) {
	period := sub.prep.Period()
	key := fmt.Sprintf("%s|%x|%x", pl.key, math.Float64bits(sub.q.At), math.Float64bits(period))
	h.mu.Lock()
	b := h.pending[key]
	if b == nil {
		b = &batch{pool: pl, at: sub.q.At, period: period}
		h.pending[key] = b
		time.AfterFunc(h.s.cfg.BatchWindow, func() {
			h.mu.Lock()
			delete(h.pending, key)
			h.mu.Unlock()
			h.run(b)
		})
	}
	b.subs = append(b.subs, sub)
	h.mu.Unlock()
}

// acquireGroup takes an execution slot for one shared round. Unlike the
// per-query acquire it only gives up when the server drains — a group
// outlives any single member's cancelation.
func (s *Server) acquireGroup() bool {
	select {
	case s.execSem <- struct{}{}:
		s.met.activeQueries.Inc()
		return true
	case <-s.closing:
		return false
	}
}

// run executes one batch to completion: every member's epochs stream
// from shared rounds, and every member's admission slot is released.
func (h *groupHub) run(b *batch) {
	s := h.s
	qg := core.NewQueryGroup(core.Options{})
	var members []*groupSub
	var idx []int
	for _, sub := range b.subs {
		i, err := qg.Add(sub.q.Src)
		if err != nil {
			// Pre-validation (Shareable) makes this unreachable in
			// practice, but a group must never strand a member's slot.
			sub.ss.sendErr(sub.q.ID, proto.CodeExec, err.Error())
			sub.ss.finish(sub.q.ID)
			continue
		}
		members = append(members, sub)
		idx = append(idx, i)
	}
	if len(members) == 0 {
		return
	}
	defer func() {
		for _, sub := range members {
			if !sub.dead {
				sub.ss.send(proto.KindDone, proto.Done{ID: sub.q.ID, Epochs: sub.epochs})
			}
			sub.ss.finish(sub.q.ID)
		}
	}()
	s.met.sharedQueries.Add(int64(len(members)))
	clusterSize := make(map[int]int)
	for k := range members {
		clusterSize[qg.ClusterOf(idx[k])]++
	}

	// Trace identity: the group's shared protocol rounds (radio traffic,
	// phase brackets) carry the group's trace ID as the recorder's
	// ambient tag, while each member's per-epoch result fan-out spans
	// carry that member's own ID — so a member's span tree holds exactly
	// its own slice of the shared execution.
	groupID := fmt.Sprintf("g-%d", s.traceSeq.Add(1))
	sampled := s.cfg.TraceSample >= 1 ||
		(s.cfg.TraceSample > 0 && rand.Float64() < s.cfg.TraceSample)
	memberTrace := make([]string, len(members))
	recs := make([]QueryRecord, len(members))
	for k, sub := range members {
		id := sub.q.TraceID
		if id == "" {
			id = fmt.Sprintf("q-%d-%d-%d", sub.ss.id, sub.q.ID, s.traceSeq.Add(1))
		}
		memberTrace[k] = id
		cs := clusterSize[qg.ClusterOf(idx[k])]
		recs[k] = QueryRecord{
			TraceID: id, Group: groupID, Session: sub.ss.id, ID: sub.q.ID,
			Src: sub.q.Src, Method: "sens", Shared: cs > 1, ClusterSize: cs,
			CacheHit: sub.hit, Sampled: sampled,
		}
	}
	var (
		tr         *trace.Recorder
		mark       int
		spans      []trace.Event
		groupPhase []PhaseLatency
	)
	capture := func() {
		if tr == nil {
			return
		}
		j := tr.JournalSince(mark)
		spans = append([]trace.Event(nil), j.Events...)
		groupPhase = phaseBreakdown(spans)
		s.met.observePhases(groupPhase)
		tr = nil
	}
	wallStart := time.Now()
	defer func() {
		capture()
		total := time.Since(wallStart).Seconds()
		if sampled {
			// The group's own record carries the shared radio timeline.
			s.flight.Record(QueryRecord{
				TraceID: groupID, Src: fmt.Sprintf("<shared group of %d>", len(members)),
				Method: "sens", Shared: true, ClusterSize: len(members),
				Epochs: maxEpochs(members), Complete: true,
				Phases: groupPhase, TotalSeconds: total, Sampled: true,
			}, spans)
		}
		for k := range members {
			recs[k].Phases = groupPhase
			recs[k].TotalSeconds = total
			s.flight.Record(recs[k], filterByTrace(spans, memberTrace[k]))
		}
	}()

	// A private runner: the group's incremental filter state spans
	// epochs, so its executions must not interleave with other queries.
	// The shared deployment cache makes this cheap.
	r, err := core.NewRunner(b.pool.cfg)
	if err != nil {
		for k, sub := range members {
			recs[k].Error = proto.CodeExec + ": " + err.Error()
			sub.ss.sendErr(sub.q.ID, proto.CodeExec, err.Error())
			sub.dead = true
		}
		return
	}
	if sampled {
		s.met.tracedQueries.Add(int64(len(members)))
		tr = r.EnableTrace()
		tr.SetTag(groupID)
		mark = tr.Mark()
		for k := range members {
			qg.SetMemberTag(idx[k], memberTrace[k])
		}
	}
	maxRounds := 0
	for _, sub := range members {
		maxRounds = max(maxRounds, sub.rounds)
	}

	for e := 0; e < maxRounds; e++ {
		if s.isClosing() && e > 0 {
			break
		}
		wanted := false
		for _, sub := range members {
			if !sub.dead && !sub.rq.canceled() && e < sub.rounds {
				wanted = true
				break
			}
		}
		if !wanted {
			break
		}
		if !s.acquireGroup() {
			break
		}
		t := b.at + float64(e)*b.period
		start := time.Now()
		results, err, timedOut := s.runRoundBounded(qg, r, t)
		s.release()
		s.met.querySeconds.Observe(time.Since(start).Seconds())
		s.met.sharedRounds.Inc()
		if timedOut {
			s.met.queryTimeouts.Inc()
			tr = nil // the abandoned round still writes the recorder
			for k, sub := range members {
				if !sub.dead {
					recs[k].Error = proto.CodeTimeout
					recs[k].IncompleteReason = "execution deadline exceeded"
					sub.ss.sendErr(sub.q.ID, proto.CodeTimeout,
						fmt.Sprintf("shared round %d exceeded the %v execution deadline", e, s.cfg.QueryTimeout))
					sub.dead = true
				}
			}
			return // the group's private runner is abandoned with the round
		}
		if err != nil {
			for k, sub := range members {
				if !sub.dead {
					recs[k].Error = proto.CodeExec + ": " + err.Error()
					sub.ss.sendErr(sub.q.ID, proto.CodeExec, err.Error())
					sub.dead = true
				}
			}
			return
		}
		for k, sub := range members {
			if sub.dead || sub.rq.canceled() || e >= sub.rounds {
				continue
			}
			res := results[idx[k]]
			if !sub.headerSent {
				cs := clusterSize[qg.ClusterOf(idx[k])]
				if !sub.ss.send(proto.KindHeader, proto.Header{
					ID: sub.q.ID, Columns: res.Columns, CacheHit: sub.hit,
					Shared: cs > 1, ClusterSize: cs,
					TraceID: memberTrace[k], Sampled: sampled,
				}) {
					sub.dead = true
					continue
				}
				sub.headerSent = true
			}
			if !sub.ss.emitEpoch(sub.q.ID, e, t, res) {
				sub.dead = true
				continue
			}
			sub.epochs++
			recs[k].Epochs++
			recs[k].Rows += len(res.Rows)
			recs[k].Complete = res.Complete
		}
	}
}

// maxEpochs is the largest epoch count any member streamed.
func maxEpochs(members []*groupSub) int {
	n := 0
	for _, sub := range members {
		n = max(n, sub.epochs)
	}
	return n
}

// runRoundBounded executes one shared round, bounded by QueryTimeout
// exactly like runBounded; on expiry the round's goroutine and the
// group's private runner are abandoned.
func (s *Server) runRoundBounded(qg *core.QueryGroup, r *core.Runner, t float64) ([]*core.Result, error, bool) {
	type roundResult struct {
		results []*core.Result
		err     error
	}
	done := make(chan roundResult, 1)
	go func() {
		results, err := qg.RunRound(r, t)
		done <- roundResult{results: results, err: err}
	}()
	timer := time.NewTimer(s.cfg.QueryTimeout)
	defer timer.Stop()
	select {
	case out := <-done:
		return out.results, out.err, false
	case <-timer.C:
		return nil, nil, true
	}
}
