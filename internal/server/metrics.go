package server

import (
	"sync"

	"sensjoin/internal/core"
	"sensjoin/internal/metrics"
)

// serverMetrics holds the sensjoind_* instruments. All families are
// registered eagerly at server start so the exposition is complete (and
// promcheck -require passes) before the first query arrives.
type serverMetrics struct {
	sessions      *metrics.Gauge
	sessionsTotal *metrics.Counter
	queries       *metrics.Counter
	rejected      *metrics.Counter
	cacheHits     *metrics.Counter
	cacheMisses   *metrics.Counter
	queueDepth    *metrics.Gauge
	activeQueries *metrics.Gauge
	querySeconds  *metrics.Histogram
	queryTimeouts *metrics.Counter
	sharedQueries *metrics.Counter
	sharedRounds  *metrics.Counter
	tracedQueries *metrics.Counter

	// phaseSeconds holds one sensjoind_query_phase_seconds instrument
	// per protocol phase label, created lazily for phases beyond the
	// eagerly registered standard set.
	reg     *metrics.Registry
	phaseMu sync.Mutex
	phases  map[string]*metrics.Histogram
}

func newServerMetrics(reg *metrics.Registry) *serverMetrics {
	if reg == nil {
		reg = metrics.New() // throwaway: keeps every hook unconditional
	}
	secs := []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5}
	m := &serverMetrics{
		reg:    reg,
		phases: make(map[string]*metrics.Histogram),
		sessions:      reg.Gauge("sensjoind_sessions", "currently open client sessions"),
		sessionsTotal: reg.Counter("sensjoind_sessions_total", "client sessions accepted since start"),
		queries:       reg.Counter("sensjoind_queries_total", "queries admitted since start"),
		rejected:      reg.Counter("sensjoind_rejected_total", "queries rejected by admission control"),
		cacheHits:     reg.Counter("sensjoind_prepared_cache_hits_total", "prepared-query cache hits"),
		cacheMisses:   reg.Counter("sensjoind_prepared_cache_misses_total", "prepared-query cache misses (full prepare paid)"),
		queueDepth:    reg.Gauge("sensjoind_queue_depth", "admitted queries queued or executing"),
		activeQueries: reg.Gauge("sensjoind_active_queries", "queries currently executing (holding an execution slot)"),
		querySeconds:  reg.Histogram("sensjoind_query_seconds", "wall-clock seconds per epoch execution", secs),
		queryTimeouts: reg.Counter("sensjoind_query_timeouts_total", "epochs that exceeded the execution deadline"),
		sharedQueries: reg.Counter("sensjoind_shared_queries_total", "continuous queries routed into shared (grouped) execution"),
		sharedRounds:  reg.Counter("sensjoind_shared_rounds_total", "shared protocol rounds executed by query groups"),
		tracedQueries: reg.Counter("sensjoind_traced_queries_total", "queries whose span tree was sampled into the flight recorder"),
	}
	// Pre-register the standard phase labels so the family is complete
	// on the exposition before the first sampled query.
	for _, ph := range []string{
		core.PhaseQueryDissem, core.PhaseJACollect, core.PhaseFilterDissem,
		core.PhaseFinalCollect, core.PhaseExternal,
	} {
		m.phaseSeconds(ph)
	}
	return m
}

// phaseBounds buckets simulated per-phase protocol latencies, which
// run from tens of milliseconds (a one-hop wave) to tens of seconds
// (a deep tree's slotted collection).
var phaseBounds = []float64{0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50}

// phaseSeconds returns (registering on first use) the
// sensjoind_query_phase_seconds instrument for one phase label.
func (m *serverMetrics) phaseSeconds(phase string) *metrics.Histogram {
	m.phaseMu.Lock()
	defer m.phaseMu.Unlock()
	h, ok := m.phases[phase]
	if !ok {
		h = m.reg.Histogram("sensjoind_query_phase_seconds",
			"simulated protocol seconds per phase of a sampled query",
			phaseBounds, metrics.L{Key: "phase", Value: phase})
		m.phases[phase] = h
	}
	return h
}

// observePhases feeds a sampled query's phase breakdown into the
// per-phase histograms.
func (m *serverMetrics) observePhases(phases []PhaseLatency) {
	for _, p := range phases {
		m.phaseSeconds(p.Phase).Observe(p.Seconds)
	}
}
