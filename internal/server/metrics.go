package server

import "sensjoin/internal/metrics"

// serverMetrics holds the sensjoind_* instruments. All families are
// registered eagerly at server start so the exposition is complete (and
// promcheck -require passes) before the first query arrives.
type serverMetrics struct {
	sessions      *metrics.Gauge
	sessionsTotal *metrics.Counter
	queries       *metrics.Counter
	rejected      *metrics.Counter
	cacheHits     *metrics.Counter
	cacheMisses   *metrics.Counter
	queueDepth    *metrics.Gauge
	activeQueries *metrics.Gauge
	querySeconds  *metrics.Histogram
	queryTimeouts *metrics.Counter
	sharedQueries *metrics.Counter
	sharedRounds  *metrics.Counter
}

func newServerMetrics(reg *metrics.Registry) *serverMetrics {
	if reg == nil {
		reg = metrics.New() // throwaway: keeps every hook unconditional
	}
	secs := []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5}
	return &serverMetrics{
		sessions:      reg.Gauge("sensjoind_sessions", "currently open client sessions"),
		sessionsTotal: reg.Counter("sensjoind_sessions_total", "client sessions accepted since start"),
		queries:       reg.Counter("sensjoind_queries_total", "queries admitted since start"),
		rejected:      reg.Counter("sensjoind_rejected_total", "queries rejected by admission control"),
		cacheHits:     reg.Counter("sensjoind_prepared_cache_hits_total", "prepared-query cache hits"),
		cacheMisses:   reg.Counter("sensjoind_prepared_cache_misses_total", "prepared-query cache misses (full prepare paid)"),
		queueDepth:    reg.Gauge("sensjoind_queue_depth", "admitted queries queued or executing"),
		activeQueries: reg.Gauge("sensjoind_active_queries", "queries currently executing (holding an execution slot)"),
		querySeconds:  reg.Histogram("sensjoind_query_seconds", "wall-clock seconds per epoch execution", secs),
		queryTimeouts: reg.Counter("sensjoind_query_timeouts_total", "epochs that exceeded the execution deadline"),
		sharedQueries: reg.Counter("sensjoind_shared_queries_total", "continuous queries routed into shared (grouped) execution"),
		sharedRounds:  reg.Counter("sensjoind_shared_rounds_total", "shared protocol rounds executed by query groups"),
	}
}
