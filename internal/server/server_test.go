package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"testing"
	"time"

	"sensjoin/internal/core"
	"sensjoin/internal/metrics"
	"sensjoin/pkg/client"
)

const (
	testNodes = 100
	testSeed  = 3
)

// startTestServer runs an in-process sensjoind on a free port.
func startTestServer(t *testing.T, cfg Config) (*Server, *metrics.Registry) {
	t.Helper()
	reg := metrics.New()
	cfg.Nodes = testNodes
	cfg.Seed = testSeed
	cfg.Registry = reg
	cfg.Logf = t.Logf
	if cfg.BatchWindow == 0 {
		cfg.BatchWindow = 10 * time.Millisecond
	}
	s, err := Listen("127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, reg
}

// clientKey order-normalizes a client-side table exactly like the
// server-side referenceKey, so equal keys mean byte-identical row sets.
func clientKey(tb *client.Table) string {
	rows := make([]string, len(tb.Rows))
	for i, row := range tb.Rows {
		s := ""
		for _, v := range row {
			s += fmt.Sprintf("%x|", v)
		}
		rows[i] = s
	}
	sort.Strings(rows)
	key := fmt.Sprintf("cols=%v contrib=%d members=%d complete=%t;", tb.Columns, tb.Contributing, tb.Members, tb.Complete)
	for _, s := range rows {
		key += s + "\n"
	}
	return key
}

func referenceKey(res *core.Result) string {
	rows := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		s := ""
		for _, v := range row {
			s += fmt.Sprintf("%x|", v)
		}
		rows[i] = s
	}
	sort.Strings(rows)
	key := fmt.Sprintf("cols=%v contrib=%d members=%d complete=%t;", res.Columns, res.ContributingNodes, res.MemberNodes, res.Complete)
	for _, s := range rows {
		key += s + "\n"
	}
	return key
}

// reference executes src directly through the library at time t.
func reference(t *testing.T, src string, at float64) string {
	t.Helper()
	r, err := core.NewRunner(core.SetupConfig{Nodes: testNodes, Seed: testSeed})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(src, core.NewSENSJoin(), at)
	if err != nil {
		t.Fatal(err)
	}
	return referenceKey(res)
}

var testQueries = []string{
	`SELECT A.temp, B.hum FROM Sensors A, Sensors B WHERE A.temp - B.temp > 5.0 ONCE`,
	`SELECT A.temp FROM Sensors A, Sensors B WHERE A.temp = B.temp AND A.hum < 70 ONCE`,
	`SELECT MIN(distance(A.x, A.y, B.x, B.y)) FROM Sensors A, Sensors B WHERE A.temp - B.temp > 6.0 ONCE`,
	`SELECT * FROM Sensors A, Sensors B WHERE A.temp - B.temp > 7.0 AND A.pres < 1015 ONCE`,
}

// The daemon must return result tables byte-identical to direct library
// execution.
func TestServerMatchesDirect(t *testing.T) {
	s, _ := startTestServer(t, Config{})
	c, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for _, src := range testQueries {
		tb, err := c.Query(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if got, want := clientKey(tb), reference(t, src, 0); got != want {
			t.Fatalf("table differs from direct execution for %s:\nserver: %s\ndirect: %s", src, got, want)
		}
	}
}

// Many concurrent sessions mixing one-shot and continuous queries; run
// with -race. Every result must match direct execution and the session
// gauge must return to zero.
func TestServerConcurrentSessions(t *testing.T) {
	s, reg := startTestServer(t, Config{})
	wantOnce := make([]string, len(testQueries))
	for i, src := range testQueries {
		wantOnce[i] = reference(t, src, 0)
	}
	contSrc := `SELECT A.temp FROM Sensors A, Sensors B WHERE A.temp = B.temp SAMPLE PERIOD 30`

	const sessions = 8
	var wg sync.WaitGroup
	errs := make([]error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := client.Dial(s.Addr().String())
			if err != nil {
				errs[i] = err
				return
			}
			defer c.Close()
			for k, src := range testQueries {
				tb, err := c.Query(src)
				if err != nil {
					errs[i] = fmt.Errorf("session %d: %s: %w", i, src, err)
					return
				}
				if clientKey(tb) != wantOnce[k] {
					errs[i] = fmt.Errorf("session %d: table differs for %s", i, src)
					return
				}
			}
			st, err := c.Stream(contSrc, client.Options{Rounds: 3})
			if err != nil {
				errs[i] = err
				return
			}
			epochs := 0
			for {
				tb, err := st.Next()
				if err == io.EOF {
					break
				}
				if err != nil {
					errs[i] = fmt.Errorf("session %d: continuous: %w", i, err)
					return
				}
				if tb.Epoch != epochs {
					errs[i] = fmt.Errorf("session %d: epoch %d out of order (want %d)", i, tb.Epoch, epochs)
					return
				}
				epochs++
			}
			if epochs != 3 {
				errs[i] = fmt.Errorf("session %d: got %d epochs, want 3", i, epochs)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for reg.Snapshot()["sensjoind_sessions"] != any(int64(0)) {
		if time.Now().After(deadline) {
			t.Fatalf("session gauge stuck at %v", reg.Snapshot()["sensjoind_sessions"])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Same canonical shape with different literals must produce distinct,
// correct tables — and repeated spellings must hit the prepared cache.
func TestServerPreparedCache(t *testing.T) {
	s, reg := startTestServer(t, Config{})
	c, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	q5 := `SELECT A.temp FROM Sensors A, Sensors B WHERE A.temp - B.temp > 5.0 ONCE`
	q7 := `SELECT A.temp FROM Sensors A, Sensors B WHERE A.temp - B.temp > 7.0 ONCE`
	t5, err := c.Query(q5)
	if err != nil {
		t.Fatal(err)
	}
	t7, err := c.Query(q7)
	if err != nil {
		t.Fatal(err)
	}
	if t5.CacheHit || t7.CacheHit {
		t.Fatal("first submission of each literal variant must miss the cache")
	}
	if clientKey(t5) != reference(t, q5, 0) || clientKey(t7) != reference(t, q7, 0) {
		t.Fatal("cached-shape tables differ from direct execution")
	}
	if len(t5.Rows) == len(t7.Rows) {
		t.Logf("note: both thresholds yield %d rows (legal, but weakens the test)", len(t5.Rows))
	}

	// Exact resubmission: src-keyed hit.
	again, err := c.Query(q5)
	if err != nil {
		t.Fatal(err)
	}
	if !again.CacheHit {
		t.Fatal("resubmitted query text must hit the prepared cache")
	}
	// Different spelling, same canonical query: fingerprint-keyed hit.
	flipped, err := c.Query(`SELECT X.temp FROM Sensors X, Sensors Y WHERE 5.0 < X.temp - Y.temp ONCE`)
	if err != nil {
		t.Fatal(err)
	}
	if !flipped.CacheHit {
		t.Fatal("canonically equal spelling must hit the prepared cache")
	}
	if clientKey(flipped) != clientKey(t5) {
		t.Fatal("canonically equal spelling computed a different table")
	}

	snap := reg.Snapshot()
	if hits := snap["sensjoind_prepared_cache_hits_total"].(int64); hits < 2 {
		t.Fatalf("cache hits = %d, want >= 2", hits)
	}
	if misses := snap["sensjoind_prepared_cache_misses_total"].(int64); misses != 2 {
		t.Fatalf("cache misses = %d, want exactly 2 (two distinct canonical shapes)", misses)
	}
}

// Compatible continuous queries submitted within one batch window must
// share execution and still each get their own correct table stream.
func TestServerSharedContinuous(t *testing.T) {
	s, reg := startTestServer(t, Config{BatchWindow: 150 * time.Millisecond})
	src := `SELECT A.temp FROM Sensors A, Sensors B WHERE A.temp = B.temp SAMPLE PERIOD 30`

	const n = 3
	var wg sync.WaitGroup
	tables := make([][]*client.Table, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := client.Dial(s.Addr().String())
			if err != nil {
				errs[i] = err
				return
			}
			defer c.Close()
			st, err := c.Stream(src, client.Options{Rounds: 2})
			if err != nil {
				errs[i] = err
				return
			}
			for {
				tb, err := st.Next()
				if err == io.EOF {
					return
				}
				if err != nil {
					errs[i] = err
					return
				}
				tables[i] = append(tables[i], tb)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if len(tables[i]) != 2 {
			t.Fatalf("client %d: got %d epochs, want 2", i, len(tables[i]))
		}
		if !tables[i][0].Shared || tables[i][0].ClusterSize != n {
			t.Fatalf("client %d: Shared=%t ClusterSize=%d, want shared cluster of %d",
				i, tables[i][0].Shared, tables[i][0].ClusterSize, n)
		}
		for e := 0; e < 2; e++ {
			if clientKey(tables[i][e]) != clientKey(tables[0][e]) {
				t.Fatalf("client %d epoch %d: table differs across cluster members", i, e)
			}
		}
	}
	if v := reg.Snapshot()["sensjoind_shared_queries_total"].(int64); v < n {
		t.Fatalf("sensjoind_shared_queries_total = %d, want >= %d", v, n)
	}
}

// Submissions beyond the admission bound must be rejected with an
// explicit over-capacity error, not queued without bound.
func TestServerOverCapacity(t *testing.T) {
	s, reg := startTestServer(t, Config{MaxConcurrent: 1, MaxQueue: 1})
	c, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Pipeline the whole flood over one session: the server reads the
	// Query frames far faster than it can execute them, so admission
	// must start rejecting once 2 (MaxConcurrent+MaxQueue) are in.
	const flood = 24
	var wg sync.WaitGroup
	var mu sync.Mutex
	rejected, succeeded := 0, 0
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.Query(testQueries[0])
			mu.Lock()
			defer mu.Unlock()
			if se, ok := err.(*client.ServerError); ok && se.Code == "over-capacity" {
				rejected++
			} else if err == nil {
				succeeded++
			}
		}()
	}
	wg.Wait()
	if rejected == 0 {
		t.Fatal("a 24-query flood against capacity 2 produced no over-capacity rejection")
	}
	if succeeded == 0 {
		t.Fatal("admission control rejected everything; admitted queries must still run")
	}
	if v := reg.Snapshot()["sensjoind_rejected_total"].(int64); int(v) < rejected {
		t.Fatalf("sensjoind_rejected_total = %d, want >= %d", v, rejected)
	}
}

// Close must drain promptly and leave no session behind.
func TestServerGracefulClose(t *testing.T) {
	s, reg := startTestServer(t, Config{DrainTimeout: 5 * time.Second})
	c, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Query(testQueries[0]); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("close took %v with no in-flight work", d)
	}
	if v := reg.Snapshot()["sensjoind_sessions"].(int64); v != 0 {
		t.Fatalf("sessions gauge = %d after close", v)
	}
	if _, err := c.Query(testQueries[1]); err == nil {
		t.Fatal("query against a closed server succeeded")
	}
}
