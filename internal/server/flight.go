package server

import (
	"sync"

	"sensjoin/internal/trace"
)

// The flight recorder is sensjoind's answer to "what did my query just
// do": a bounded in-memory ring of the most recent query executions,
// each with its operational facts and — for sampled queries — the full
// span tree of the simulated protocol execution. It is served on the
// observability port as /debug/queries (see AttachDebug) and read
// directly by the X9 serve-load experiment for per-phase latency
// percentiles.

// PhaseLatency is one protocol phase's simulated duration within a
// query execution (the span between its phase-start and phase-end
// events, summed over epochs).
type PhaseLatency struct {
	Phase   string
	Seconds float64
}

// QueryRecord is one query's entry in the flight recorder.
type QueryRecord struct {
	// TraceID identifies the query; for sampled queries the span tree
	// is retained under it.
	TraceID string
	// Group is the shared-execution group's trace ID, set only when the
	// query ran inside a core.QueryGroup; the group's own record (same
	// TraceID) holds the shared radio timeline.
	Group string `json:",omitempty"`
	// Session/ID locate the query on the wire (0/0 for group records).
	Session int64
	ID      int64
	Src     string
	Method  string
	// Shared/ClusterSize/CacheHit mirror the Header facts.
	Shared      bool `json:",omitempty"`
	ClusterSize int  `json:",omitempty"`
	CacheHit    bool
	// Epochs counts epochs actually emitted; Rows sums their rows.
	Epochs int
	Rows   int
	// Complete reports the last epoch's completeness;
	// IncompleteReason explains a false value.
	Complete         bool
	IncompleteReason string `json:",omitempty"`
	// Error is the terminal error code+message, empty on success.
	Error string `json:",omitempty"`
	// Phases is the per-phase simulated-latency breakdown (sampled
	// queries only).
	Phases []PhaseLatency `json:",omitempty"`
	// TotalSeconds is wall-clock time from first epoch start to finish.
	TotalSeconds float64
	// Sampled reports that a span tree was captured and retained.
	Sampled bool
}

// flightEntry pairs a record with its retained span events.
type flightEntry struct {
	rec   QueryRecord
	spans []trace.Event
}

// FlightRecorder is a fixed-capacity ring of recent query executions.
// All methods are safe for concurrent use.
type FlightRecorder struct {
	mu   sync.Mutex
	ring []flightEntry
	next int // ring index of the next write
	size int // live entries, ≤ len(ring)
}

func newFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = 256
	}
	return &FlightRecorder{ring: make([]flightEntry, capacity)}
}

// Record appends one finished query. spans may be nil (unsampled).
func (f *FlightRecorder) Record(rec QueryRecord, spans []trace.Event) {
	f.mu.Lock()
	f.ring[f.next] = flightEntry{rec: rec, spans: spans}
	f.next = (f.next + 1) % len(f.ring)
	if f.size < len(f.ring) {
		f.size++
	}
	f.mu.Unlock()
}

// Records returns the retained records, newest first.
func (f *FlightRecorder) Records() []QueryRecord {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]QueryRecord, 0, f.size)
	for i := 1; i <= f.size; i++ {
		out = append(out, f.ring[(f.next-i+len(f.ring))%len(f.ring)].rec)
	}
	return out
}

// Spans returns the retained span tree of the newest record with the
// given trace ID, and whether one was found.
func (f *FlightRecorder) Spans(traceID string) ([]trace.Event, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i := 1; i <= f.size; i++ {
		e := &f.ring[(f.next-i+len(f.ring))%len(f.ring)]
		if e.rec.TraceID == traceID {
			return e.spans, true
		}
	}
	return nil, false
}

// phaseBreakdown folds a journal's phase-start/phase-end brackets into
// per-phase simulated durations, summed over epochs, in first-seen
// order. Unpaired brackets (a timed-out epoch's open phase) contribute
// nothing.
func phaseBreakdown(events []trace.Event) []PhaseLatency {
	open := map[string]float64{}
	total := map[string]float64{}
	var order []string
	for _, ev := range events {
		switch ev.Kind {
		case trace.KindPhaseStart:
			open[ev.Phase] = ev.At
		case trace.KindPhaseEnd:
			start, ok := open[ev.Phase]
			if !ok {
				continue
			}
			delete(open, ev.Phase)
			if _, seen := total[ev.Phase]; !seen {
				order = append(order, ev.Phase)
			}
			total[ev.Phase] += ev.At - start
		}
	}
	out := make([]PhaseLatency, 0, len(order))
	for _, ph := range order {
		out = append(out, PhaseLatency{Phase: ph, Seconds: total[ph]})
	}
	return out
}

// filterByTrace returns the events carrying exactly the given trace
// tag — a group member's own slice of a shared journal.
func filterByTrace(events []trace.Event, tag string) []trace.Event {
	var out []trace.Event
	for _, ev := range events {
		if ev.Trace == tag {
			out = append(out, ev)
		}
	}
	return out
}
