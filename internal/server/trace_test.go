package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sensjoin/internal/trace"
	"sensjoin/pkg/client"
)

// The flight recorder is written by every finishing query and read by
// the debug endpoint under full concurrency; this test hammers both
// sides (run under -race in CI) and checks the ring stays bounded and
// newest-first.
func TestFlightRecorderConcurrent(t *testing.T) {
	const capacity = 64
	f := newFlightRecorder(capacity)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := fmt.Sprintf("t-%d-%d", w, i)
				f.Record(QueryRecord{TraceID: id, Session: int64(w), ID: int64(i)},
					[]trace.Event{{Trace: id}})
			}
		}(w)
	}
	for rdr := 0; rdr < 4; rdr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				recs := f.Records()
				if len(recs) > capacity {
					panic("ring over capacity")
				}
				if len(recs) > 0 {
					f.Spans(recs[0].TraceID)
				}
			}
		}()
	}
	wg.Wait()
	recs := f.Records()
	if len(recs) != capacity {
		t.Fatalf("retained %d records, want the full ring of %d", len(recs), capacity)
	}
	for _, rec := range recs {
		spans, ok := f.Spans(rec.TraceID)
		if !ok || len(spans) != 1 || spans[0].Trace != rec.TraceID {
			t.Fatalf("record %s: spans not retained with it", rec.TraceID)
		}
	}
}

// One sampled query end to end: the trace ID round-trips client →
// server → Header, the flight recorder holds the phase breakdown, the
// span tree is served over HTTP, and every event in it carries the
// query's trace ID.
func TestServerTraceEndToEnd(t *testing.T) {
	s, reg := startTestServer(t, Config{TraceSample: 1})
	c, err := client.Dial(s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const traceID = "my-trace-1"
	tb, err := c.QueryOpts(`SELECT A.temp FROM Sensors A, Sensors B WHERE A.temp - B.temp > 8 ONCE`,
		client.Options{TraceID: traceID})
	if err != nil {
		t.Fatal(err)
	}
	if tb.TraceID != traceID {
		t.Fatalf("Table.TraceID = %q, want the client-chosen %q", tb.TraceID, traceID)
	}
	if !tb.Sampled {
		t.Fatal("Table.Sampled = false under TraceSample 1")
	}

	// The flight recorder has the record, with a phase breakdown.
	var rec *QueryRecord
	for _, r := range s.Flight().Records() {
		if r.TraceID == traceID {
			rec = &r
			break
		}
	}
	if rec == nil {
		t.Fatal("query not in the flight recorder")
	}
	if rec.Epochs != 1 || !rec.Sampled || !rec.Complete {
		t.Fatalf("record = %+v, want 1 complete sampled epoch", rec)
	}
	if len(rec.Phases) == 0 {
		t.Fatal("record has no phase breakdown")
	}
	for _, p := range rec.Phases {
		if p.Seconds < 0 {
			t.Fatalf("phase %s has negative duration %v", p.Phase, p.Seconds)
		}
	}

	// The span tree is non-empty, served over HTTP as JSONL, and every
	// event — radio and span alike — carries the query's trace ID.
	mux := ObsMux(reg)
	s.AttachDebug(mux)
	hs := httptest.NewServer(mux)
	defer hs.Close()

	resp, err := http.Get(hs.URL + "/debug/queries?trace=" + traceID)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET ?trace=: status %d: %s", resp.StatusCode, body)
	}
	j, err := trace.ReadJSONL(strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("span tree is not canonical journal JSONL: %v", err)
	}
	if len(j.Events) < 10 {
		t.Fatalf("span tree has %d events, want a full protocol execution", len(j.Events))
	}
	radio, phases := 0, 0
	for _, ev := range j.Events {
		if ev.Trace != traceID {
			t.Fatalf("event %+v carries trace %q, want %q", ev, ev.Trace, traceID)
		}
		if ev.Kind.Radio() {
			radio++
		}
		if ev.Kind == trace.KindPhaseStart {
			phases++
		}
	}
	if radio == 0 || phases == 0 {
		t.Fatalf("span tree has %d radio events and %d phase starts, want both > 0", radio, phases)
	}

	// The record list endpoint includes the query.
	resp, err = http.Get(hs.URL + "/debug/queries")
	if err != nil {
		t.Fatal(err)
	}
	var recs []QueryRecord
	if err := json.NewDecoder(resp.Body).Decode(&recs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	found := false
	for _, r := range recs {
		found = found || r.TraceID == traceID
	}
	if !found {
		t.Fatal("/debug/queries does not list the query")
	}

	// The per-phase histogram family observed the sampled query.
	snap := reg.Snapshot()
	total := int64(0)
	for k, v := range snap {
		if strings.HasPrefix(k, `sensjoind_query_phase_seconds{phase="`) && strings.HasSuffix(k, `_count`) {
			total += v.(int64)
		}
	}
	if total == 0 {
		t.Fatal("sensjoind_query_phase_seconds observed nothing")
	}
}

// Shared (grouped) execution: each member keeps its own trace identity.
// The group's shared protocol rounds live under the group's trace ID,
// and a member's span tree holds exactly its own per-epoch result
// fan-out — nothing from its cluster mates.
func TestServerGroupTracePropagation(t *testing.T) {
	s, _ := startTestServer(t, Config{TraceSample: 1, BatchWindow: 150 * time.Millisecond})
	src := `SELECT A.temp FROM Sensors A, Sensors B WHERE A.temp = B.temp SAMPLE PERIOD 30`

	const n = 3
	const rounds = 2
	var wg sync.WaitGroup
	traceIDs := make([]string, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := client.Dial(s.Addr().String())
			if err != nil {
				errs[i] = err
				return
			}
			defer c.Close()
			st, err := c.Stream(src, client.Options{Rounds: rounds})
			if err != nil {
				errs[i] = err
				return
			}
			for {
				tb, err := st.Next()
				if err == io.EOF {
					return
				}
				if err != nil {
					errs[i] = err
					return
				}
				if !tb.Shared {
					errs[i] = fmt.Errorf("member %d not shared", i)
					return
				}
				traceIDs[i] = tb.TraceID
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	seen := map[string]bool{}
	var groupID string
	for i, id := range traceIDs {
		if id == "" {
			t.Fatalf("member %d got no trace ID", i)
		}
		if seen[id] {
			t.Fatalf("trace ID %q assigned to two members", id)
		}
		seen[id] = true

		var rec *QueryRecord
		for _, r := range s.Flight().Records() {
			if r.TraceID == id {
				rec = &r
				break
			}
		}
		if rec == nil {
			t.Fatalf("member %d not in the flight recorder", i)
		}
		if rec.Group == "" || !rec.Shared || rec.ClusterSize != n {
			t.Fatalf("member record = %+v, want shared cluster of %d with a group ID", rec, n)
		}
		if groupID == "" {
			groupID = rec.Group
		} else if rec.Group != groupID {
			t.Fatalf("members span two groups: %q and %q", rec.Group, groupID)
		}
		if len(rec.Phases) == 0 {
			t.Fatalf("member %d record has no phase breakdown", i)
		}

		// The member's span tree: exactly its own rows fan-out.
		spans, ok := s.Flight().Spans(id)
		if !ok {
			t.Fatalf("member %d has no retained spans", i)
		}
		if len(spans) != rounds {
			t.Fatalf("member %d has %d spans, want one fan-out per epoch (%d)", i, len(spans), rounds)
		}
		for _, ev := range spans {
			if ev.Kind != trace.KindFanout {
				t.Fatalf("member %d span tree contains a %s event; want only fan-out", i, ev.Kind)
			}
			if ev.Trace != id {
				t.Fatalf("member %d span tagged %q", i, ev.Trace)
			}
		}
	}

	// The group's own record holds the shared radio timeline.
	groupSpans, ok := s.Flight().Spans(groupID)
	if !ok || len(groupSpans) == 0 {
		t.Fatalf("group %q has no retained spans", groupID)
	}
	radio := 0
	for _, ev := range groupSpans {
		if ev.Kind.Radio() {
			radio++
		}
	}
	if radio == 0 {
		t.Fatal("group span tree has no radio events")
	}
}
