package workload

import (
	"math"
	"strings"
	"testing"

	"sensjoin/internal/core"
	"sensjoin/internal/query"
)

func runner(t *testing.T, nodes int) *core.Runner {
	t.Helper()
	r, err := core.NewRunner(core.SetupConfig{Nodes: nodes, Seed: 101})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestPresetRatios(t *testing.T) {
	if r := Ratio33().Ratio(); math.Abs(r-1.0/3) > 1e-9 {
		t.Fatalf("Ratio33 ratio = %g", r)
	}
	if r := Ratio60().Ratio(); math.Abs(r-0.6) > 1e-9 {
		t.Fatalf("Ratio60 ratio = %g", r)
	}
}

// The built queries must parse and their analysis must exhibit exactly
// the advertised join-attribute and shipped-attribute counts.
func TestPresetAnalysis(t *testing.T) {
	presets := []Preset{Ratio33(), Ratio60()}
	presets = append(presets, RatioSweep3JA()...)
	presets = append(presets, RatioSweep1JA()...)
	for _, p := range presets {
		src := p.Build(1.5)
		q, err := query.Parse(src)
		if err != nil {
			t.Fatalf("%s: parse: %v", p.Name, err)
		}
		a, err := query.Analyze(q)
		if err != nil {
			t.Fatalf("%s: analyze: %v", p.Name, err)
		}
		for alias := 0; alias < 2; alias++ {
			if got := len(a.JoinAttrs[alias]); got != p.JoinAttrs {
				t.Fatalf("%s alias %d: %d join attrs, want %d (%v)",
					p.Name, alias, got, p.JoinAttrs, a.JoinAttrs[alias])
			}
			if got := len(a.ShippedAttrs[alias]); got != p.TotalAttrs {
				t.Fatalf("%s alias %d: %d shipped attrs, want %d (%v)",
					p.Name, alias, got, p.TotalAttrs, a.ShippedAttrs[alias])
			}
		}
	}
}

func TestSweepSizes(t *testing.T) {
	if got := len(RatioSweep3JA()); got != 3 {
		t.Fatalf("RatioSweep3JA has %d presets, want 3", got)
	}
	if got := len(RatioSweep1JA()); got != 5 {
		t.Fatalf("RatioSweep1JA has %d presets, want 5", got)
	}
}

func TestBuildQueryShape(t *testing.T) {
	src := Ratio60().Build(2.5)
	for _, want := range []string{"A.temp - B.temp > 2.5", "distance(A.x, A.y, B.x, B.y) > 100", "ONCE"} {
		if !strings.Contains(src, want) {
			t.Fatalf("query %q missing %q", src, want)
		}
	}
	if strings.Contains(Ratio33().Build(1), "distance") {
		t.Fatal("Ratio33 must not have a distance condition")
	}
}

// Fraction must match the ground-truth contributing fraction from the
// actual join machinery.
func TestFractionMatchesGroundTruth(t *testing.T) {
	r := runner(t, 120)
	for _, p := range []Preset{Ratio33(), Ratio60()} {
		for _, delta := range []float64{0.5, 2, 5} {
			want := Fraction(r, p, delta)
			x, err := r.ExecSQL(p.Build(delta), 0)
			if err != nil {
				t.Fatal(err)
			}
			truth, err := core.GroundTruth(x)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(want-truth.Fraction()) > 1e-9 {
				t.Fatalf("%s delta=%g: Fraction=%g, ground truth=%g",
					p.Name, delta, want, truth.Fraction())
			}
		}
	}
}

func TestFractionMonotone(t *testing.T) {
	r := runner(t, 150)
	p := Ratio33()
	prev := 2.0
	for _, delta := range []float64{0, 0.5, 1, 2, 4, 8, 100} {
		f := Fraction(r, p, delta)
		if f > prev+1e-12 {
			t.Fatalf("fraction increased with delta at %g: %g > %g", delta, f, prev)
		}
		prev = f
	}
	if Fraction(r, p, 1000) != 0 {
		t.Fatal("impossible delta should yield zero fraction")
	}
}

func TestCalibrate(t *testing.T) {
	r := runner(t, 300)
	for _, p := range []Preset{Ratio33(), Ratio60()} {
		for _, target := range []float64{0.05, 0.25, 0.6} {
			delta, frac := Calibrate(r, p, target)
			if delta < 0 {
				t.Fatalf("negative delta %g", delta)
			}
			// With 300 nodes the fraction is quantized in steps of
			// 1/300; allow a generous band.
			if math.Abs(frac-target) > 0.05 {
				t.Fatalf("%s target %.2f: calibrated fraction %.3f (delta %g)",
					p.Name, target, frac, delta)
			}
		}
	}
}

func TestCalibratedQueryRunsAtTargetFraction(t *testing.T) {
	r := runner(t, 200)
	p := Ratio33()
	delta, want := Calibrate(r, p, 0.10)
	res, err := r.Run(p.Build(delta), core.External{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Fraction()-want) > 1e-9 {
		t.Fatalf("simulated fraction %.3f != calibrated %.3f", res.Fraction(), want)
	}
}
