// Package workload builds the experiment queries of the paper's §VI and
// calibrates their selectivity.
//
// The evaluation queries are range self-joins in the style of Q1/Q2:
//
//	SELECT A.att_1, ..., B.att_1, ...
//	FROM Sensors A, Sensors B
//	WHERE A.temp - B.temp > delta [AND distance(A.x,A.y,B.x,B.y) > 100]
//	ONCE
//
// Two knobs reproduce the paper's parameter space: the ratio of join
// attributes to attributes overall (1/3 = "33%", 3/5 = "60%", plus the
// sweeps of Figs. 12 and 13), and the fraction of nodes contributing to
// the result, controlled by delta and calibrated against the exact
// snapshot semantics.
package workload

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"sensjoin/internal/core"
	"sensjoin/internal/field"
	"sensjoin/internal/geom"
	"sensjoin/internal/topology"
)

// Preset describes one experiment query family.
type Preset struct {
	// Name labels the preset in tables (e.g. "33% join attrs").
	Name string
	// JoinAttrs is the number of join attributes (1 or 3).
	JoinAttrs int
	// TotalAttrs is the number of attributes per relation overall
	// (shipped attributes).
	TotalAttrs int
	// selects lists the non-join SELECT attributes per relation.
	selects []string
	// distance is true when the preset adds the Q2-style
	// distance(A,B) > 100 join condition (3 join attributes).
	distance bool
}

// Build renders the preset's query for a given delta.
func (p Preset) Build(delta float64) string {
	var sel []string
	appendBoth := func(attr string) {
		sel = append(sel, "A."+attr, "B."+attr)
	}
	appendBoth("temp")
	for _, a := range p.selects {
		appendBoth(a)
	}
	var conds []string
	// Exact round-trip formatting: the calibrated delta must survive the
	// query text unchanged, or boundary nodes flip sides.
	conds = append(conds, fmt.Sprintf("A.temp - B.temp > %s",
		strconv.FormatFloat(delta, 'g', -1, 64)))
	if p.distance {
		conds = append(conds, "distance(A.x, A.y, B.x, B.y) > 100")
	}
	return fmt.Sprintf("SELECT %s FROM Sensors A, Sensors B WHERE %s ONCE",
		strings.Join(sel, ", "), strings.Join(conds, " AND "))
}

// Ratio returns the join-attributes-to-total ratio.
func (p Preset) Ratio() float64 { return float64(p.JoinAttrs) / float64(p.TotalAttrs) }

// CountQuery renders an aggregate variant of the Q1 band join: COUNT
// folds matching pairs at the base station without materializing rows,
// keeping the result computation linear in the match count — the form
// the scale experiment uses at very large deployments.
func CountQuery(delta float64) string {
	return fmt.Sprintf("SELECT COUNT(A.temp) FROM Sensors A, Sensors B WHERE A.temp - B.temp > %s ONCE",
		strconv.FormatFloat(delta, 'g', -1, 64))
}

// Ratio33 is the paper's first default: one join attribute (temp) out of
// three shipped attributes (temp, hum, pres).
func Ratio33() Preset {
	return Preset{
		Name: "33% join attrs", JoinAttrs: 1, TotalAttrs: 3,
		selects: []string{"hum", "pres"},
	}
}

// Ratio60 is the paper's second default: three join attributes (temp, x,
// y via the distance condition) out of five shipped attributes.
func Ratio60() Preset {
	return Preset{
		Name: "60% join attrs", JoinAttrs: 3, TotalAttrs: 5,
		selects: []string{"hum", "pres"}, distance: true,
	}
}

// extraAttrs is the pool of non-join attributes for the ratio sweeps.
var extraAttrs = []string{"hum", "pres", "light", "x"}

// RatioSweep3JA builds the Fig. 12 presets: three join attributes and
// total attributes from 3 to 5.
func RatioSweep3JA() []Preset {
	var out []Preset
	for total := 3; total <= 5; total++ {
		out = append(out, Preset{
			Name:      fmt.Sprintf("3/%d join attrs", total),
			JoinAttrs: 3, TotalAttrs: total,
			selects: extraAttrs[:total-3], distance: true,
		})
	}
	return out
}

// RatioSweep1JA builds the Fig. 13 presets: one join attribute and total
// attributes from 1 to 5.
func RatioSweep1JA() []Preset {
	var out []Preset
	for total := 1; total <= 5; total++ {
		out = append(out, Preset{
			Name:      fmt.Sprintf("1/%d join attrs", total),
			JoinAttrs: 1, TotalAttrs: total,
			selects: extraAttrs[:total-1],
		})
	}
	return out
}

// nodeSample is one node's calibration view.
type nodeSample struct {
	temp float64
	pos  geom.Point
}

// snapshotKey identifies a calibration snapshot by the identity of the
// deployment and environment it was read from. Both are immutable after
// construction (see their type docs) and shared across runners by
// core's deployment cache, so pointer identity is a sound cache key:
// equal pointers imply an identical snapshot.
type snapshotKey struct {
	dep *topology.Deployment
	env *field.Environment
}

// sampleCache memoizes sampleNodes per snapshot; calibCache memoizes
// Calibrate results. Both are concurrency-safe and only ever store
// values that are pure functions of their key, so racing fills are
// harmless duplicates.
var (
	sampleCache sync.Map // snapshotKey -> []nodeSample
	calibCache  sync.Map // calibKey -> calibResult
)

type calibKey struct {
	snap   snapshotKey
	preset string
	target float64
}

type calibResult struct {
	delta, frac float64
}

// presetKey renders every field that influences calibration, so distinct
// presets never collide.
func (p Preset) presetKey() string {
	return fmt.Sprintf("%s|%d|%d|%t|%s",
		p.Name, p.JoinAttrs, p.TotalAttrs, p.distance, strings.Join(p.selects, ","))
}

// sampleNodes reads the calibration snapshot (t = 0) once per
// deployment/environment pair; repeated calls return the shared,
// read-only sample slice.
func sampleNodes(r *core.Runner) []nodeSample {
	key := snapshotKey{dep: r.Dep, env: r.Env}
	if v, ok := sampleCache.Load(key); ok {
		return v.([]nodeSample)
	}
	out := make([]nodeSample, 0, r.Dep.N()-1)
	for i := 1; i < r.Dep.N(); i++ {
		out = append(out, nodeSample{
			temp: r.Env.Read("temp", r.Dep.Pos[i], 0),
			pos:  r.Dep.Pos[i],
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].temp < out[j].temp })
	v, _ := sampleCache.LoadOrStore(key, out)
	return v.([]nodeSample)
}

// Fraction computes, exactly and without simulating, the fraction of
// nodes that contribute to the result of p.Build(delta) on the runner's
// snapshot: a node contributes as A when some node with a sufficiently
// lower temperature (and, for distance presets, at distance > 100 m)
// exists, symmetrically as B.
func Fraction(r *core.Runner, p Preset, delta float64) float64 {
	nodes := sampleNodes(r)
	return fractionOf(nodes, p, delta)
}

func fractionOf(nodes []nodeSample, p Preset, delta float64) float64 {
	n := len(nodes)
	if n == 0 {
		return 0
	}
	contributes := make([]bool, n)
	// Sorted by temperature: node i can act as A against any j with
	// temps[j] < temps[i] - delta, i.e. a prefix; and as B against a
	// suffix.
	hasPartner := func(i int, lo, hi int) bool {
		for j := lo; j < hi; j++ {
			if !p.distance || geom.Dist(nodes[i].pos, nodes[j].pos) > 100 {
				return true
			}
		}
		return false
	}
	// upTo[i]: number of nodes with temp < temps[i] - delta.
	for i := 0; i < n; i++ {
		cut := sort.Search(n, func(j int) bool { return nodes[j].temp >= nodes[i].temp-delta })
		if cut > 0 && hasPartner(i, 0, cut) {
			contributes[i] = true
		}
	}
	for i := 0; i < n; i++ {
		if contributes[i] {
			continue
		}
		cut := sort.Search(n, func(j int) bool { return nodes[j].temp > nodes[i].temp+delta })
		if cut < n && hasPartner(i, cut, n) {
			contributes[i] = true
		}
	}
	c := 0
	for _, b := range contributes {
		if b {
			c++
		}
	}
	return float64(c) / float64(n)
}

// Calibrate finds the delta whose contributing fraction is closest to
// target, by bisection (the fraction is non-increasing in delta). It
// returns the delta and the fraction actually achieved. Results are
// memoized per (snapshot, preset, target): sweep cells over the same
// deployment skip the 60-iteration search entirely.
func Calibrate(r *core.Runner, p Preset, target float64) (delta, frac float64) {
	ck := calibKey{snap: snapshotKey{dep: r.Dep, env: r.Env}, preset: p.presetKey(), target: target}
	if v, ok := calibCache.Load(ck); ok {
		res := v.(calibResult)
		return res.delta, res.frac
	}
	delta, frac = calibrate(r, p, target)
	calibCache.Store(ck, calibResult{delta: delta, frac: frac})
	return delta, frac
}

func calibrate(r *core.Runner, p Preset, target float64) (delta, frac float64) {
	nodes := sampleNodes(r)
	lo, hi := 0.0, 0.0
	// Find an upper bound with fraction below target.
	span := nodes[len(nodes)-1].temp - nodes[0].temp
	hi = span + 1
	if fractionOf(nodes, p, hi) > target {
		return hi, fractionOf(nodes, p, hi) // cannot go lower
	}
	for iter := 0; iter < 60; iter++ {
		mid := (lo + hi) / 2
		if fractionOf(nodes, p, mid) > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	// Prefer the boundary whose fraction is closest to the target.
	fLo, fHi := fractionOf(nodes, p, lo), fractionOf(nodes, p, hi)
	if target-fHi <= fLo-target {
		return hi, fHi
	}
	return lo, fLo
}
