package topology

import (
	"testing"
	"testing/quick"

	"sensjoin/internal/geom"
)

func smallConfig(seed int64) Config {
	return Config{
		Nodes: 200,
		Area:  geom.Square(400),
		Range: 50,
		Seed:  seed,
	}
}

func TestGenerateConnected(t *testing.T) {
	d, err := Generate(smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != 201 {
		t.Fatalf("N = %d, want 201", d.N())
	}
	if !d.Connected() {
		t.Fatal("Generate returned a disconnected deployment")
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	if _, err := Generate(Config{Nodes: 0, Area: geom.Square(100), Range: 50}); err == nil {
		t.Fatal("expected error for zero nodes")
	}
	if _, err := Generate(Config{Nodes: 10, Area: geom.Square(100), Range: 0}); err == nil {
		t.Fatal("expected error for zero range")
	}
}

func TestGenerateFailsWhenTooSparse(t *testing.T) {
	_, err := Generate(Config{
		Nodes: 5, Area: geom.Square(10000), Range: 10,
		Seed: 1, MaxRetries: 3,
	})
	if err == nil {
		t.Fatal("expected failure for a hopelessly sparse deployment")
	}
}

func TestBaseStationPlacement(t *testing.T) {
	dc, err := Generate(Config{Nodes: 100, Area: geom.Square(300), Range: 60, Base: BaseCorner, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if dc.Pos[0] != (geom.Point{X: 0, Y: 0}) {
		t.Fatalf("corner base at %+v, want (0,0)", dc.Pos[0])
	}
	dm, err := Generate(Config{Nodes: 100, Area: geom.Square(300), Range: 60, Base: BaseCenter, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if dm.Pos[0] != (geom.Point{X: 150, Y: 150}) {
		t.Fatalf("center base at %+v, want (150,150)", dm.Pos[0])
	}
}

func TestNeighborsSymmetricAndInRange(t *testing.T) {
	d, err := Generate(smallConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	for i, nbs := range d.Neighbors {
		for _, j := range nbs {
			if geom.Dist(d.Pos[i], d.Pos[j]) > d.Range+1e-9 {
				t.Fatalf("neighbor %d of %d out of range", j, i)
			}
			if !d.IsNeighbor(j, NodeID(i)) {
				t.Fatalf("asymmetric neighborhood: %d has %d but not vice versa", i, j)
			}
		}
	}
}

func TestNeighborsSorted(t *testing.T) {
	d, err := Generate(smallConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	for i, nbs := range d.Neighbors {
		for k := 1; k < len(nbs); k++ {
			if nbs[k] <= nbs[k-1] {
				t.Fatalf("neighbors of %d not strictly sorted: %v", i, nbs)
			}
		}
	}
}

func TestIsNeighborNegative(t *testing.T) {
	d, err := Generate(smallConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	// Find some non-neighbor pair.
	for i := 0; i < d.N(); i++ {
		for j := 0; j < d.N(); j++ {
			if i != j && geom.Dist(d.Pos[i], d.Pos[j]) > d.Range {
				if d.IsNeighbor(NodeID(i), NodeID(j)) {
					t.Fatalf("IsNeighbor(%d,%d) true for out-of-range pair", i, j)
				}
				return
			}
		}
	}
}

func TestDeterministicPlacement(t *testing.T) {
	d1, err := Generate(smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Generate(smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := range d1.Pos {
		if d1.Pos[i] != d2.Pos[i] {
			t.Fatalf("placement not deterministic at node %d", i)
		}
	}
}

func TestGridNeighborMatchesBruteForce(t *testing.T) {
	// The grid-accelerated neighbor construction must agree exactly with
	// the O(n^2) definition.
	f := func(seed int64) bool {
		cfg := Config{Nodes: 60, Area: geom.Square(250), Range: 50, Seed: seed % 1000}
		d := place(cfg, cfg.Seed, 1)
		r2 := d.Range * d.Range
		for i := 0; i < d.N(); i++ {
			want := []NodeID{}
			for j := 0; j < d.N(); j++ {
				if i != j && geom.Dist2(d.Pos[i], d.Pos[j]) <= r2 {
					want = append(want, NodeID(j))
				}
			}
			got := d.Neighbors[i]
			if len(got) != len(want) {
				return false
			}
			for k := range got {
				if got[k] != want[k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestAvgDegreePaperDensity(t *testing.T) {
	// Paper setting: 1500 nodes, 1050x1050 m, 50 m range. Expected average
	// neighborhood size around 6-15 (paper §IV-B cites [3], [8]).
	d, err := Generate(Config{Nodes: 1500, Area: geom.Square(1050), Range: 50, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	deg := d.AvgDegree()
	if deg < 6 || deg > 15 {
		t.Fatalf("average degree %g outside the paper's 6-15 band", deg)
	}
}

func TestScaledAreaKeepsDensity(t *testing.T) {
	a1000 := ScaledArea(1000)
	a2500 := ScaledArea(2500)
	d1 := 1000 / a1000.Area()
	d2 := 2500 / a2500.Area()
	if d1/d2 < 0.99 || d1/d2 > 1.01 {
		t.Fatalf("densities differ: %g vs %g", d1, d2)
	}
	ref := ScaledArea(1500)
	if ref.Width() < 1049 || ref.Width() > 1051 {
		t.Fatalf("ScaledArea(1500) side = %g, want 1050", ref.Width())
	}
}

func TestLineTopology(t *testing.T) {
	d := Line(5, 40, 50)
	if d.N() != 6 {
		t.Fatalf("N = %d, want 6", d.N())
	}
	for i := 0; i < 6; i++ {
		want := 2
		if i == 0 || i == 5 {
			want = 1
		}
		if len(d.Neighbors[i]) != want {
			t.Fatalf("node %d has %d neighbors, want %d", i, len(d.Neighbors[i]), want)
		}
	}
	if !d.Connected() {
		t.Fatal("line must be connected")
	}
}

func TestGridTopology(t *testing.T) {
	d := Grid(4, 3, 40, 50)
	if d.N() != 12 {
		t.Fatalf("N = %d, want 12", d.N())
	}
	if !d.Connected() {
		t.Fatal("grid must be connected")
	}
	// Interior node (1,1) = index 5 has 4 lattice neighbors at spacing
	// 40 < range 50 < diagonal ~56.6.
	if len(d.Neighbors[5]) != 4 {
		t.Fatalf("interior node has %d neighbors, want 4", len(d.Neighbors[5]))
	}
	// Corner has 2.
	if len(d.Neighbors[0]) != 2 {
		t.Fatalf("corner has %d neighbors, want 2", len(d.Neighbors[0]))
	}
}

func TestStarTopology(t *testing.T) {
	d := Star(8, 40, 50)
	if d.N() != 9 {
		t.Fatalf("N = %d, want 9", d.N())
	}
	// Every spoke sees the hub.
	for i := 1; i <= 8; i++ {
		if !d.IsNeighbor(NodeID(i), BaseStation) {
			t.Fatalf("spoke %d cannot reach the hub", i)
		}
	}
	if !d.Connected() {
		t.Fatal("star must be connected")
	}
}
