package topology

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"sensjoin/internal/geom"
)

// randomDeployment builds positions without the connectivity check —
// neighbor construction is what is being measured.
func randomDeployment(n int, seed int64) *Deployment {
	rng := rand.New(rand.NewSource(seed))
	area := ScaledArea(n)
	pos := make([]geom.Point, n+1)
	pos[0] = area.Corner()
	for i := 1; i <= n; i++ {
		pos[i] = area.Lerp(rng.Float64(), rng.Float64())
	}
	return &Deployment{Pos: pos, Range: 50, Area: area}
}

// TestBuildNeighborsParallelMatches: the counting-sort layout and the
// parallel scan must reproduce the sequential neighbor lists exactly.
func TestBuildNeighborsParallelMatches(t *testing.T) {
	d1 := randomDeployment(20_000, 3)
	d2 := randomDeployment(20_000, 3)
	d1.buildNeighborsParallel(1)
	d2.buildNeighborsParallel(4)
	if !reflect.DeepEqual(d1.Neighbors, d2.Neighbors) {
		t.Fatal("parallel neighbor lists differ from sequential")
	}
}

// BenchmarkBuildNeighbors measures the flat counting-sort grid at the
// issue's reference sizes.
func BenchmarkBuildNeighbors(b *testing.B) {
	for _, n := range []int{10_000, 100_000} {
		d := randomDeployment(n, 42)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				d.buildNeighborsParallel(1)
			}
		})
	}
}

// TestRepairConnects: a sparse placement that rejection sampling would
// reject must come back fully connected under Repair, with the same
// result for any worker count.
func TestRepairConnects(t *testing.T) {
	cfg := Config{
		Nodes: 2000, Area: ScaledArea(6000), Range: 50, Seed: 5, Repair: true,
	}
	d1, err := GenerateParallel(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !d1.Connected() {
		t.Fatal("repaired deployment is not connected")
	}
	d4, err := GenerateParallel(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(d1.Neighbors, d4.Neighbors) {
		t.Fatal("repaired deployment differs across worker counts")
	}
}
