// Package topology places sensor nodes and derives the communication
// graph of a deployment.
//
// The paper's setting (§VI, "General setting"): nodes are distributed
// uniformly at random over a square area, the communication range is 50 m,
// links are bidirectional (unit-disk model), and a powered base station
// serves as access point. Node 0 is always the base station.
package topology

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"sensjoin/internal/geom"
)

// NodeID identifies a node. The base station is node 0.
type NodeID int

// BaseStation is the id of the base station.
const BaseStation NodeID = 0

// BasePlacement selects where the base station sits.
type BasePlacement int

const (
	// BaseCorner puts the base station in the lower-left corner,
	// maximizing routing-tree depth (the common data-collection layout).
	BaseCorner BasePlacement = iota
	// BaseCenter puts the base station at the center of the area.
	BaseCenter
)

// Config describes a deployment to generate.
type Config struct {
	// Nodes is the number of sensor nodes, excluding the base station.
	Nodes int
	// Area is the deployment region.
	Area geom.Rect
	// Range is the communication radius in meters (paper: 50 m).
	Range float64
	// Base selects the base-station placement.
	Base BasePlacement
	// Seed makes placement reproducible.
	Seed int64
	// MaxRetries bounds re-sampling attempts when the random placement
	// is disconnected. Zero means a sensible default.
	MaxRetries int
	// Repair, instead of re-sampling a disconnected placement,
	// deterministically relocates every node outside the base station's
	// component into the radio disk of a reachable node. Rejection
	// sampling is hopeless at scale — a boundary node of a
	// constant-density placement is isolated with probability
	// ~e^(-deg/2), so the chance that all of them connect vanishes as n
	// grows — while the repair perturbs only the few affected nodes.
	Repair bool
}

// Deployment is a concrete placement with its communication graph.
//
// Immutability contract: a Deployment is fully built by Generate (or the
// test constructors) and never mutated afterwards — no code may write to
// Pos, Neighbors or the scalar fields once the value is returned. This
// makes a Deployment safe to share across concurrently running
// simulations (core's deployment cache relies on it); all mutable link
// state, such as failure injection, lives in netsim.Network.
type Deployment struct {
	// Pos holds node positions; Pos[0] is the base station.
	Pos []geom.Point
	// Range is the communication radius.
	Range float64
	// Area is the deployment region.
	Area geom.Rect
	// Neighbors lists, per node, the ids within communication range,
	// sorted ascending.
	Neighbors [][]NodeID
}

// Generate places nodes per cfg and returns a connected deployment.
// It re-samples with derived seeds until the unit-disk graph is connected.
func Generate(cfg Config) (*Deployment, error) {
	return GenerateParallel(cfg, 1)
}

// GenerateParallel is Generate with the neighbor-list scan spread over
// the given number of workers. The resulting deployment is identical for
// any worker count (workers only split disjoint per-node writes), so
// callers may pick the count freely without affecting reproducibility.
// The worker count is deliberately not part of Config: configs act as
// cache keys for shared deployments.
func GenerateParallel(cfg Config, workers int) (*Deployment, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("topology: need at least one node, got %d", cfg.Nodes)
	}
	if cfg.Range <= 0 {
		return nil, fmt.Errorf("topology: non-positive range %g", cfg.Range)
	}
	retries := cfg.MaxRetries
	if retries == 0 {
		retries = 50
	}
	if cfg.Repair {
		d := place(cfg, cfg.Seed, workers)
		d.repair(cfg.Seed, workers)
		return d, nil
	}
	for attempt := 0; attempt < retries; attempt++ {
		d := place(cfg, cfg.Seed+int64(attempt)*1_000_003, workers)
		if d.Connected() {
			return d, nil
		}
	}
	return nil, fmt.Errorf("topology: no connected placement of %d nodes in %.0fx%.0f after %d attempts (density too low?)",
		cfg.Nodes, cfg.Area.Width(), cfg.Area.Height(), retries)
}

// repair relocates every node the base station cannot reach into the
// radio disk of a reachable node (chosen by a seeded RNG, so the result
// is deterministic), then rebuilds the neighbor lists. One pass
// suffices: each relocated node lands within range of an
// already-reachable node, and may itself anchor later relocations.
func (d *Deployment) repair(seed int64, workers int) {
	reach := make([]bool, d.N())
	queue := []NodeID{BaseStation}
	reach[BaseStation] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range d.Neighbors[u] {
			if !reach[v] {
				reach[v] = true
				queue = append(queue, v)
			}
		}
	}
	var anchors []NodeID
	var moved bool
	for id := 0; id < d.N(); id++ {
		if reach[id] {
			anchors = append(anchors, NodeID(id))
		}
	}
	rng := rand.New(rand.NewSource(seed ^ 0x5eed1e55))
	for id := 0; id < d.N(); id++ {
		if reach[id] {
			continue
		}
		a := d.Pos[anchors[rng.Intn(len(anchors))]]
		angle := 2 * math.Pi * rng.Float64()
		// sqrt for an area-uniform radius; 0.95 keeps a margin so the
		// link survives floating-point distance rounding.
		radius := 0.95 * d.Range * math.Sqrt(rng.Float64())
		p := geom.Point{X: a.X + radius*math.Cos(angle), Y: a.Y + radius*math.Sin(angle)}
		// Clamping into the area only moves the point closer to the
		// in-area anchor, so it stays within range.
		p.X = math.Min(math.Max(p.X, d.Area.MinX), d.Area.MaxX)
		p.Y = math.Min(math.Max(p.Y, d.Area.MinY), d.Area.MaxY)
		d.Pos[id] = p
		anchors = append(anchors, NodeID(id))
		moved = true
	}
	if moved {
		d.buildNeighborsParallel(workers)
	}
}

func place(cfg Config, seed int64, workers int) *Deployment {
	rng := rand.New(rand.NewSource(seed))
	pos := make([]geom.Point, cfg.Nodes+1)
	switch cfg.Base {
	case BaseCenter:
		pos[0] = cfg.Area.Center()
	default:
		pos[0] = cfg.Area.Corner()
	}
	for i := 1; i <= cfg.Nodes; i++ {
		pos[i] = cfg.Area.Lerp(rng.Float64(), rng.Float64())
	}
	d := &Deployment{Pos: pos, Range: cfg.Range, Area: cfg.Area}
	d.buildNeighborsParallel(workers)
	return d
}

// buildNeighbors fills the neighbor lists using a uniform grid so that
// construction is O(n) at constant density rather than O(n^2).
func (d *Deployment) buildNeighbors() { d.buildNeighborsParallel(1) }

// buildNeighborsParallel builds the grid as a flat counting-sort bucket
// layout — cell index per node, prefix sums, one contiguous node array —
// instead of a map of slices: two passes over the nodes and three fixed
// allocations, independent of the cell count. The 3×3 scan then runs
// over node chunks on the given workers; every worker writes only its
// own nodes' neighbor lists, and each list is insertion-sorted the same
// way regardless of worker count, so the result is bit-identical to the
// sequential build.
func (d *Deployment) buildNeighborsParallel(workers int) {
	n := len(d.Pos)
	d.Neighbors = make([][]NodeID, n)
	cell := d.Range
	cols := int(d.Area.Width()/cell) + 2
	rows := int(d.Area.Height()/cell) + 2
	ncells := cols * rows
	cellOf := make([]int32, n)
	starts := make([]int32, ncells+1)
	for i, p := range d.Pos {
		cx := int((p.X - d.Area.MinX) / cell)
		cy := int((p.Y - d.Area.MinY) / cell)
		if cx < 0 {
			cx = 0
		}
		if cy < 0 {
			cy = 0
		}
		if cx >= cols {
			cx = cols - 1
		}
		if cy >= rows {
			cy = rows - 1
		}
		ci := int32(cy*cols + cx)
		cellOf[i] = ci
		starts[ci+1]++
	}
	for c := 0; c < ncells; c++ {
		starts[c+1] += starts[c]
	}
	cellNodes := make([]NodeID, n)
	cursor := make([]int32, ncells)
	copy(cursor, starts[:ncells])
	// Ascending node order here means every cell's bucket lists ids
	// ascending, like the append order of the old map grid.
	for i := range d.Pos {
		ci := cellOf[i]
		cellNodes[cursor[ci]] = NodeID(i)
		cursor[ci]++
	}
	r2 := d.Range * d.Range
	scan := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			p := d.Pos[i]
			ci := int(cellOf[i])
			cx, cy := ci%cols, ci/cols
			for dy := -1; dy <= 1; dy++ {
				gy := cy + dy
				if gy < 0 || gy >= rows {
					continue
				}
				for dx := -1; dx <= 1; dx++ {
					gx := cx + dx
					if gx < 0 || gx >= cols {
						continue
					}
					c := gy*cols + gx
					for _, j := range cellNodes[starts[c]:starts[c+1]] {
						if int(j) == i {
							continue
						}
						if geom.Dist2(p, d.Pos[j]) <= r2 {
							d.Neighbors[i] = append(d.Neighbors[i], j)
						}
					}
				}
			}
			sortIDs(d.Neighbors[i])
		}
	}
	if workers <= 1 || n < 4096 {
		scan(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			scan(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

func sortIDs(ids []NodeID) {
	// Insertion sort: neighbor lists are short (typically 6-15 entries).
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// N returns the total number of nodes including the base station.
func (d *Deployment) N() int { return len(d.Pos) }

// Connected reports whether every node can reach the base station.
func (d *Deployment) Connected() bool {
	seen := make([]bool, d.N())
	queue := []NodeID{BaseStation}
	seen[BaseStation] = true
	count := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range d.Neighbors[u] {
			if !seen[v] {
				seen[v] = true
				count++
				queue = append(queue, v)
			}
		}
	}
	return count == d.N()
}

// AvgDegree returns the mean neighborhood size over all nodes.
func (d *Deployment) AvgDegree() float64 {
	var sum int
	for _, nb := range d.Neighbors {
		sum += len(nb)
	}
	return float64(sum) / float64(d.N())
}

// IsNeighbor reports whether a and b are within communication range.
func (d *Deployment) IsNeighbor(a, b NodeID) bool {
	for _, v := range d.Neighbors[a] {
		if v == b {
			return true
		}
		if v > b {
			return false
		}
	}
	return false
}

// Line builds a path deployment: the base station at one end and n
// sensor nodes spaced `spacing` meters apart with the given range, so
// node i talks exactly to i-1 and i+1 when spacing < range < 2*spacing.
// Deterministic topologies like this make protocol behaviour exactly
// predictable in tests.
func Line(n int, spacing, rng float64) *Deployment {
	pos := make([]geom.Point, n+1)
	for i := range pos {
		pos[i] = geom.Point{X: float64(i) * spacing, Y: 1}
	}
	d := &Deployment{
		Pos:   pos,
		Range: rng,
		Area:  geom.Rect{MinX: 0, MinY: 0, MaxX: float64(n)*spacing + 1, MaxY: 2},
	}
	d.buildNeighbors()
	return d
}

// Grid builds a cols x rows lattice deployment with the given spacing;
// the base station replaces the corner node at (0,0).
func Grid(cols, rows int, spacing, rng float64) *Deployment {
	pos := make([]geom.Point, 0, cols*rows)
	for y := 0; y < rows; y++ {
		for x := 0; x < cols; x++ {
			pos = append(pos, geom.Point{X: float64(x) * spacing, Y: float64(y) * spacing})
		}
	}
	d := &Deployment{
		Pos:   pos,
		Range: rng,
		Area: geom.Rect{
			MinX: 0, MinY: 0,
			MaxX: float64(cols-1)*spacing + 1, MaxY: float64(rows-1)*spacing + 1,
		},
	}
	d.buildNeighbors()
	return d
}

// Star builds a hub-and-spokes deployment: the base station at the
// center with n nodes on a circle of the given radius (all within range
// of the hub, none of each other when the radius exceeds half the
// range... depending on n).
func Star(n int, radius, rng float64) *Deployment {
	pos := make([]geom.Point, n+1)
	pos[0] = geom.Point{X: 0, Y: 0}
	for i := 1; i <= n; i++ {
		ang := 2 * math.Pi * float64(i-1) / float64(n)
		pos[i] = geom.Point{X: radius * math.Cos(ang), Y: radius * math.Sin(ang)}
	}
	d := &Deployment{
		Pos:   pos,
		Range: rng,
		Area:  geom.Rect{MinX: -radius, MinY: -radius, MaxX: radius, MaxY: radius},
	}
	d.buildNeighbors()
	return d
}

// ScaledArea returns a square area for n nodes that keeps the node density
// of the paper's default setting (1500 nodes on 1050x1050 m).
func ScaledArea(n int) geom.Rect {
	const refNodes, refSide = 1500.0, 1050.0
	side := refSide * math.Sqrt(float64(n)/refNodes)
	return geom.Square(side)
}
