package bench

import (
	"strings"
	"testing"

	"sensjoin/internal/workload"
)

// smallConfig keeps unit tests fast; full-scale runs live in
// cmd/experiments and the repository-root benchmarks.
func smallConfig() Config {
	return Config{
		Nodes:     250,
		Seed:      7,
		Fractions: []float64{0.05, 0.40, 0.90},
	}
}

func TestTableFormatting(t *testing.T) {
	tbl := &Table{
		ID:     "T1",
		Title:  "demo",
		Header: []string{"a", "long-column"},
	}
	tbl.AddRow("1", "2")
	tbl.AddRow("333", "4")
	tbl.Note("hello %d", 5)
	out := tbl.String()
	for _, want := range []string{"T1", "demo", "long-column", "333", "note: hello 5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestHelpers(t *testing.T) {
	if savings(100, 25) != 0.75 {
		t.Fatalf("savings = %g", savings(100, 25))
	}
	if savings(0, 10) != 0 {
		t.Fatal("savings with zero baseline should be 0")
	}
	if fmtFactor(100, 10) != "10.0x" {
		t.Fatalf("fmtFactor = %s", fmtFactor(100, 10))
	}
	if fmtFactor(1, 0) != "inf" {
		t.Fatal("fmtFactor by zero should be inf")
	}
	if fmtFrac(0.125) != "12.5%" {
		t.Fatalf("fmtFrac = %s", fmtFrac(0.125))
	}
}

func TestOverallSavingsShape(t *testing.T) {
	tbl, err := RunOverallSavings(smallConfig(), workload.Ratio33())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tbl.Rows))
	}
	// At the lowest fraction SENS-Join must win.
	if tbl.Rows[0][5] != "sens-join" {
		t.Fatalf("low fraction winner = %s:\n%s", tbl.Rows[0][5], tbl)
	}
}

func TestPerNodeSavingsShape(t *testing.T) {
	tbl, err := RunPerNodeSavings(smallConfig(), workload.Ratio33())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("no descendant bins")
	}
	if len(tbl.Notes) == 0 || !strings.Contains(tbl.Notes[0], "most-loaded") {
		t.Fatalf("missing most-loaded note: %v", tbl.Notes)
	}
}

func TestRatioSweepShape(t *testing.T) {
	tbl, err := RunRatioSweep(smallConfig(), workload.RatioSweep1JA(), "E4")
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tbl.Rows))
	}
}

func TestNetworkSizeShape(t *testing.T) {
	tbl, err := RunNetworkSize(smallConfig(), []int{150, 250}, workload.Ratio33())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tbl.Rows))
	}
}

func TestStepBreakdownShape(t *testing.T) {
	tbl, err := RunStepBreakdown(smallConfig(), []float64{0.05, 0.25}, workload.Ratio60())
	if err != nil {
		t.Fatal(err)
	}
	// 1 external row + 2 sens rows.
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d, want 3:\n%s", len(tbl.Rows), tbl)
	}
	if !strings.Contains(tbl.Notes[0], "independent") {
		t.Fatalf("expected fixed collection cost, got: %v", tbl.Notes)
	}
}

func TestCompressionComparisonShape(t *testing.T) {
	tbl, err := RunCompressionComparison(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tbl.Rows))
	}
	// Quadtree (last row) must beat raw (first row).
	if tbl.Rows[3][0] != "quadtree" {
		t.Fatalf("unexpected row order:\n%s", tbl)
	}
}

func TestQuadInfluenceShape(t *testing.T) {
	tbl, err := RunQuadInfluence(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tbl.Rows))
	}
}

func TestAblations(t *testing.T) {
	if _, err := RunTreecutAblation(smallConfig(), workload.Ratio33()); err != nil {
		t.Fatal(err)
	}
	if _, err := RunFilterLimitAblation(smallConfig(), workload.Ratio33()); err != nil {
		t.Fatal(err)
	}
}

func TestPacketSizeShape(t *testing.T) {
	tbl, err := RunPacketSize(smallConfig(), workload.Ratio33())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tbl.Rows))
	}
}

func TestIncrementalFilterShape(t *testing.T) {
	tbl, err := RunIncrementalFilter(smallConfig(), 4, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tbl.Rows))
	}
	// Round 1 must be identical by design (0% saved).
	if tbl.Rows[0][3] != "0.0%" {
		t.Fatalf("round 1 saved %s, want 0.0%%", tbl.Rows[0][3])
	}
}

func TestRelatedWorkShape(t *testing.T) {
	tbl, err := RunRelatedWork(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// 4 methods x 2 settings.
	if len(tbl.Rows) != 8 {
		t.Fatalf("rows = %d, want 8:\n%s", len(tbl.Rows), tbl)
	}
}

func TestLifetimeShape(t *testing.T) {
	tbl, err := RunLifetime(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tbl.Rows))
	}
	// SENS-Join rows carry an extension factor > 1x.
	for _, row := range tbl.Rows {
		if row[1] == "sens-join" && row[4] == "-" {
			t.Fatalf("missing extension factor: %v", row)
		}
	}
}

func TestResponseTimeShape(t *testing.T) {
	tbl, err := RunResponseTime(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tbl.Rows))
	}
	// Every ratio must respect the paper's ~2x bound (allow slack for
	// the filter phase on tiny networks).
	for _, row := range tbl.Rows {
		r := strings.TrimSuffix(row[3], "x")
		if r >= "3" {
			t.Fatalf("response ratio %s exceeds bound: %v", row[3], row)
		}
	}
}

func TestMemoryShape(t *testing.T) {
	tbl, err := RunMemory(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tbl.Rows))
	}
}

func TestTableCSV(t *testing.T) {
	tbl := &Table{ID: "T", Title: "demo", Header: []string{"a", "b"}}
	tbl.AddRow(`x"y`, "2")
	tbl.Note("n")
	csv := tbl.CSV()
	for _, want := range []string{`"a","b"`, `"x""y","2"`, "# n"} {
		if !strings.Contains(csv, want) {
			t.Fatalf("CSV missing %q:\n%s", want, csv)
		}
	}
}
