package bench

import (
	"fmt"
	"runtime"
	"time"

	"sensjoin/internal/core"
	"sensjoin/internal/field"
	"sensjoin/internal/routing"
	"sensjoin/internal/topology"
	"sensjoin/internal/workload"
)

// ScaleConfig parameterizes the X7 scale experiment.
type ScaleConfig struct {
	// Sizes lists the node counts to measure (e.g. 10k..1M).
	Sizes []int
	// Shards lists the simulator shard counts per size (1 = classic
	// engine).
	Shards []int
	// Seed drives placement and field generation.
	Seed int64
	// SetupWorkers parallelizes deployment generation, tree
	// construction and plan building (0 = GOMAXPROCS).
	SetupWorkers int
	// Fraction is the calibrated result-fraction target (0 = 1%).
	Fraction float64
}

// ScalePoint is one measured (size, shards, method) cell.
type ScalePoint struct {
	Nodes        int     `json:"nodes"`
	Shards       int     `json:"shards"`
	Method       string  `json:"method"`
	WallSec      float64 `json:"wall_sec"`
	Events       int64   `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	BytesPerNode float64 `json:"bytes_per_node"`
	ResponseTime float64 `json:"response_time_sec"`
	Rows         int     `json:"rows"`
	Complete     bool    `json:"complete"`
	PeakRSSMB    float64 `json:"peak_rss_mb"`
}

// ScaleSetup records the per-size setup cost (placement + neighbor
// grid + routing tree), which the parallel setup path targets.
type ScaleSetup struct {
	Nodes    int     `json:"nodes"`
	WallSec  float64 `json:"wall_sec"`
	MaxDepth int     `json:"max_depth"`
}

// ScaleResult is the machine-readable X7 artifact (BENCH_scale.json).
type ScaleResult struct {
	GOMAXPROCS int          `json:"gomaxprocs"`
	Seed       int64        `json:"seed"`
	Setup      []ScaleSetup `json:"setup"`
	Points     []ScalePoint `json:"points"`
}

// RunScale measures X7: wall-clock, simulator event throughput, radio
// bytes per node and peak RSS for both join methods as the deployment
// grows, at each configured shard count. Timings are wall-clock and
// machine-dependent, so X7 is deliberately not part of All(): its table
// is not byte-reproducible, only its protocol observables are (and
// TestShardCountDeterminism pins those).
func RunScale(cfg ScaleConfig) (*ScaleResult, error) {
	if len(cfg.Sizes) == 0 {
		return nil, fmt.Errorf("bench: scale run needs at least one size")
	}
	if len(cfg.Shards) == 0 {
		cfg.Shards = []int{1}
	}
	if cfg.Fraction == 0 {
		cfg.Fraction = 0.01
	}
	if cfg.SetupWorkers == 0 {
		cfg.SetupWorkers = runtime.GOMAXPROCS(0)
	}
	res := &ScaleResult{GOMAXPROCS: runtime.GOMAXPROCS(0), Seed: cfg.Seed}
	for _, n := range cfg.Sizes {
		t0 := time.Now()
		// Repair instead of rejection sampling: at constant density the
		// probability that every boundary node connects vanishes with n.
		dep, err := topology.GenerateParallel(topology.Config{
			Nodes: n, Area: topology.ScaledArea(n), Range: 50, Seed: cfg.Seed,
			Repair: true,
		}, cfg.SetupWorkers)
		if err != nil {
			return nil, fmt.Errorf("bench: scale setup at n=%d: %w", n, err)
		}
		env := field.StandardEnvironment(dep.Area, cfg.Seed+1000)
		tree := routing.BuildTreeParallel(dep.Neighbors, topology.BaseStation, cfg.SetupWorkers)
		res.Setup = append(res.Setup, ScaleSetup{
			Nodes: n, WallSec: time.Since(t0).Seconds(), MaxDepth: tree.MaxDepth,
		})

		// One calibration per size: the workload cache keys on the
		// (dep, env) pair, shared by every shard count's runner.
		src := ""
		for _, shards := range cfg.Shards {
			r := core.NewRunnerFromSetup(dep, env, tree, core.SetupConfig{
				Shards: shards, ShardWorkers: 0, SetupWorkers: cfg.SetupWorkers,
			})
			if src == "" {
				delta, _ := workload.Calibrate(r, workload.Ratio33(), cfg.Fraction)
				// An aggregate COUNT folds matches inline at the base
				// station: the result computation stays O(matches)
				// without materializing rows, which matters at 1M nodes.
				src = workload.CountQuery(delta)
			}
			for _, m := range []core.Method{core.External{}, core.NewSENSJoin()} {
				r.Stats.Reset()
				steps0 := r.Sim.Steps()
				t1 := time.Now()
				out, err := r.Run(src, m, 0)
				wall := time.Since(t1).Seconds()
				if err != nil {
					return nil, fmt.Errorf("bench: scale n=%d shards=%d %s: %w", n, shards, m.Name(), err)
				}
				events := r.Sim.Steps() - steps0
				p := ScalePoint{
					Nodes: n, Shards: shards, Method: m.Name(),
					WallSec: wall, Events: events,
					BytesPerNode: float64(r.Stats.TotalTxBytes(m.Phases()...)) / float64(n),
					ResponseTime: out.ResponseTime,
					Rows:         len(out.Rows),
					Complete:     out.Complete,
					PeakRSSMB:    peakRSSMB(),
				}
				if wall > 0 {
					p.EventsPerSec = float64(events) / wall
				}
				res.Points = append(res.Points, p)
			}
		}
	}
	return res, nil
}

// Table renders the scale result in the suite's table format.
func (r *ScaleResult) Table() *Table {
	t := &Table{
		ID:     "X7",
		Title:  "scale: wall-clock, event throughput and memory vs network size",
		Header: []string{"nodes", "shards", "method", "wall(s)", "events", "events/s", "B/node", "resp(s)", "peakRSS(MB)"},
	}
	for _, p := range r.Points {
		t.AddRow(
			fmtInt(int64(p.Nodes)), fmtInt(int64(p.Shards)), p.Method,
			fmt.Sprintf("%.2f", p.WallSec), fmtInt(p.Events),
			fmt.Sprintf("%.0f", p.EventsPerSec),
			fmt.Sprintf("%.1f", p.BytesPerNode),
			fmt.Sprintf("%.2f", p.ResponseTime),
			fmt.Sprintf("%.0f", p.PeakRSSMB),
		)
	}
	for _, s := range r.Setup {
		t.Note("setup n=%d: %.2fs (placement + neighbor grid + tree, depth %d)", s.Nodes, s.WallSec, s.MaxDepth)
	}
	t.Note("GOMAXPROCS=%d; wall-clock cells are machine-dependent, protocol observables are not", r.GOMAXPROCS)
	t.Note("peak RSS is the process high-water mark (monotone across rows)")
	return t
}
