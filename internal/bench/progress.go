package bench

import (
	"fmt"
	"io"
	"sync"
)

// ExpProgress is one experiment's sweep-cell completion state, as
// reported by the /progress endpoint of `experiments -serve`.
type ExpProgress struct {
	// ID is the short experiment identifier ("E1a", "X4", ...); the
	// pseudo-id "experiments" tracks whole-experiment completion of a
	// full suite run.
	ID string `json:"id"`
	// Done counts finished cells (including failed ones).
	Done int `json:"done"`
	// Total is the cell count of the current (or last) sweep.
	Total int `json:"total"`
	// Failed counts cells that returned an error.
	Failed int `json:"failed"`
}

// Progress tracks sweep-cell completion across experiments. Attach one
// to Config.Progress; every Fanout cell reports into it. All methods
// are safe for concurrent use and no-ops on a nil receiver. Progress
// never writes to stdout — the optional live line goes to w (stderr in
// cmd/experiments), keeping rendered tables byte-identical.
type Progress struct {
	mu    sync.Mutex
	w     io.Writer
	order []string
	exps  map[string]*ExpProgress
}

// NewProgress returns a tracker; w, if non-nil, receives one
// "progress: <id> <done>/<total>" line per completed cell.
func NewProgress(w io.Writer) *Progress {
	return &Progress{w: w, exps: map[string]*ExpProgress{}}
}

func (p *Progress) entry(id string) *ExpProgress {
	e := p.exps[id]
	if e == nil {
		e = &ExpProgress{ID: id}
		p.exps[id] = e
		p.order = append(p.order, id)
	}
	return e
}

// Begin (re)announces a sweep of total cells under id.
func (p *Progress) Begin(id string, total int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	e := p.entry(id)
	e.Done, e.Failed, e.Total = 0, 0, total
}

// CellDone records one completed cell under id.
func (p *Progress) CellDone(id string, ok bool) {
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	e := p.entry(id)
	e.Done++
	if !ok {
		e.Failed++
	}
	if p.w != nil {
		fmt.Fprintf(p.w, "progress: %-12s %d/%d\n", id, e.Done, e.Total)
	}
}

// Snapshot returns the completion state of every sweep seen so far, in
// first-seen order.
func (p *Progress) Snapshot() []ExpProgress {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]ExpProgress, 0, len(p.order))
	for _, id := range p.order {
		out = append(out, *p.exps[id])
	}
	return out
}
