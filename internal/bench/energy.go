package bench

import (
	"fmt"

	"sensjoin/internal/core"
	"sensjoin/internal/metrics"
	"sensjoin/internal/stats"
	"sensjoin/internal/workload"
)

// energyBounds are the histogram bucket edges (Joules) for the live
// per-node energy distribution exported under
// sensjoin_bench_node_energy_joules.
var energyBounds = []float64{1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1}

// energyByDescendants bins per-node energy by the node's descendant
// count — the float-valued sibling of stats.LoadByDescendants, with the
// same trailing overflow bin.
func energyByDescendants(energy []float64, desc []int, boundaries []int) (mean []float64, count []int) {
	nbins := len(boundaries) + 1
	mean = make([]float64, nbins)
	count = make([]int, nbins)
	sums := make([]float64, nbins)
	for i := 1; i < len(energy); i++ { // skip the powered base station
		b := len(boundaries)
		for j, up := range boundaries {
			if desc[i] <= up {
				b = j
				break
			}
		}
		sums[b] += energy[i]
		count[b]++
	}
	for b := range sums {
		if count[b] > 0 {
			mean[b] = sums[b] / float64(count[b])
		}
	}
	return mean, count
}

// RunEnergyLifetime measures the extension experiment X6: the per-node
// energy distribution under a CC2420-class radio model, promoted from
// the raw stats.EnergyModel helpers to a reported artifact. It breaks
// mean per-node energy down by descendant count (the Fig. 11 hotspot
// axis, in Joules instead of packets), summarizes each method's
// distribution (percentiles, maximum, Gini coefficient, hotspot node)
// and estimates the network lifetime — rounds until the first node
// death under a fixed radio budget — for the external join and
// SENS-Join. With Config.Metrics set, every node's energy is also
// observed into a live histogram labeled by method.
func RunEnergyLifetime(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	const batteryJ = 50.0 // radio share of a small battery; scale only
	preset := workload.Ratio33()
	r, err := cfg.runner()
	if err != nil {
		return nil, err
	}
	delta, actual := workload.Calibrate(r, preset, cfg.DefaultFraction)
	src := preset.Build(delta)
	model := stats.CC2420Model()

	t := &Table{
		ID: "X6 / energy & lifetime",
		Title: fmt.Sprintf("per-node energy and network lifetime (%s, f=%.1f%%, %d nodes, %.0f J budget)",
			preset.Name, 100*actual, cfg.Nodes, batteryJ),
		Header: []string{"descendants <=", "nodes", "external mJ", "sens mJ", "reduction"},
	}

	type summary struct {
		name         string
		energy       []float64
		rounds, dead int
	}
	bounds := []int{0, 2, 5, 10, 20, 50, 100, 1 << 30}
	var sums []summary
	var perDesc [][]float64
	var counts []int
	for _, m := range []core.Method{core.External{}, core.NewSENSJoin()} {
		r.Stats.Reset()
		if _, err := r.Run(src, m, 0); err != nil {
			return nil, err
		}
		energy := r.Stats.PerNodeEnergy(model, m.Phases()...)
		if cfg.Metrics != nil {
			h := cfg.Metrics.Histogram("sensjoin_bench_node_energy_joules",
				"per-node radio energy for one query round", energyBounds,
				metrics.L{Key: "method", Value: m.Name()})
			for i := 1; i < len(energy); i++ {
				h.Observe(energy[i])
			}
		}
		rounds, dead := stats.LifetimeRounds(energy, batteryJ)
		mean, cnt := energyByDescendants(energy, r.Tree.Descendants, bounds)
		perDesc = append(perDesc, mean)
		if counts == nil {
			counts = cnt
		}
		sums = append(sums, summary{name: m.Name(), energy: energy, rounds: rounds, dead: dead})
		t.AddTx(r.Stats.TotalTx(m.Phases()...))
	}

	mJ := func(v float64) string { return fmt.Sprintf("%.2f", 1000*v) }
	for i, up := range bounds {
		if counts[i] == 0 {
			continue
		}
		label := fmtInt(int64(up))
		if up == 1<<30 {
			label = "max"
		}
		red := "-"
		if perDesc[1][i] > 0 {
			red = fmt.Sprintf("%.1fx", perDesc[0][i]/perDesc[1][i])
		}
		t.AddRow(label, fmtInt(int64(counts[i])), mJ(perDesc[0][i]), mJ(perDesc[1][i]), red)
	}

	for _, s := range sums {
		p := stats.Percentiles(s.energy, 0.5, 0.9, 0.99)
		node, max := stats.MaxLoadNode(s.energy)
		t.Note("%s: p50 %s / p90 %s / p99 %s / max %s mJ, gini %.2f, hotspot node %d (%d descendants)",
			s.name, mJ(p[0]), mJ(p[1]), mJ(p[2]), mJ(max),
			stats.Gini(s.energy), node, r.Tree.Descendants[node])
	}
	ext, sens := sums[0], sums[1]
	t.Note("lifetime at %.0f J: external %d rounds (node %d dies first) vs sens-join %d rounds (node %d) = %.1fx extension — the paper's conclusion quantified",
		batteryJ, ext.rounds, ext.dead, sens.rounds, sens.dead,
		float64(sens.rounds)/float64(ext.rounds))
	return t, nil
}
