package bench

import (
	"encoding/json"
	"testing"
)

// The X10 contract: same config, same artifact — regardless of the
// worker count, and with the rate-0 cells unaffected by the churn
// machinery existing at all.
func TestChurnBenchDeterministic(t *testing.T) {
	cfg := ChurnBenchConfig{Nodes: 80, Rounds: 3, Rates: []float64{0, 0.05}}
	render := func(parallel int) string {
		c := cfg
		c.Parallel = parallel
		res, err := RunChurnResilience(c)
		if err != nil {
			t.Fatal(err)
		}
		if res.ViolationsTotal != 0 {
			t.Fatalf("audit violations in the churn bench: %d", res.ViolationsTotal)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return res.Table().String() + string(b)
	}
	seq := render(1)
	if par := render(4); par != seq {
		t.Fatalf("churn bench not worker-independent:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
	}
	if again := render(1); again != seq {
		t.Fatalf("churn bench not replayable:\n--- first ---\n%s\n--- second ---\n%s", seq, again)
	}
}

// Rate-0 X10 cells must match a plain run of the same workload with no
// churn code in the loop: the baseline leg of the ladder is the seed
// behaviour, byte for byte.
func TestChurnBenchZeroRateMatchesSeed(t *testing.T) {
	res, err := RunChurnResilience(ChurnBenchConfig{Nodes: 80, Rounds: 2, Rates: []float64{0}})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Points {
		if p.Deaths+p.Moves+p.Rejoins != 0 {
			t.Fatalf("rate-0 cell %s/%s reports churn activity", p.Method, p.Transport)
		}
		if p.Repairs != 0 {
			t.Fatalf("rate-0 cell %s/%s repaired %d times", p.Method, p.Transport, p.Repairs)
		}
		if p.CompleteExact != p.Rounds {
			t.Fatalf("rate-0 cell %s/%s incomplete: %d/%d", p.Method, p.Transport, p.CompleteExact, p.Rounds)
		}
	}
	if res.ViolationsTotal != 0 {
		t.Fatalf("rate-0 bench produced %d violations", res.ViolationsTotal)
	}
}
