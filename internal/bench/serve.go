package bench

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"sensjoin/internal/core"
	"sensjoin/internal/metrics"
	"sensjoin/internal/server"
	"sensjoin/pkg/client"
)

// X9 (serving): sustained query throughput through sensjoind. The
// experiment starts an in-process daemon, hammers it from many
// concurrent client sessions with a small set of repeated query shapes
// (varying only in literals, like a real serving workload), and
// checks every returned table byte-for-byte against direct library
// execution. It reports the sustained QPS and the prepared-cache hit
// rate — the daemon's two headline claims.

// ServeConfig parameterizes X9; zero values select defaults.
type ServeConfig struct {
	// Nodes/Seed describe the deployment (defaults 150 / 5).
	Nodes int
	Seed  int64
	// Clients is the concurrent session count (default 2*GOMAXPROCS).
	Clients int
	// Shapes is the number of distinct query shapes cycled through
	// (default 4).
	Shapes int
	// Duration is the measured load window (default 3s).
	Duration time.Duration
	// TraceSample is the fraction of queries span-sampled for the
	// per-phase latency breakdown (default 0.25; the flight recorder
	// supplies the percentiles).
	TraceSample float64
}

func (c ServeConfig) withDefaults() ServeConfig {
	if c.Nodes <= 0 {
		c.Nodes = 150
	}
	if c.Seed == 0 {
		c.Seed = 5
	}
	if c.Clients <= 0 {
		c.Clients = 2 * runtime.GOMAXPROCS(0)
	}
	if c.Shapes <= 0 {
		c.Shapes = 4
	}
	if c.Duration <= 0 {
		c.Duration = 3 * time.Second
	}
	if c.TraceSample == 0 {
		c.TraceSample = 0.25
	}
	return c
}

// ServeResult is the machine-readable X9 artifact (BENCH_serve.json).
type ServeResult struct {
	Nodes   int
	Seed    int64
	Clients int
	Shapes  int
	// Queries completed within the window, and the wall-clock seconds
	// they took.
	Queries int
	Seconds float64
	QPS     float64
	// Cache counters from the daemon's registry.
	CacheHits    int64
	CacheMisses  int64
	CacheHitRate float64
	// ByteIdentical reports that EVERY returned table matched direct
	// library execution byte for byte (order-normalized).
	ByteIdentical bool
	// Mismatches counts tables that differed (0 when ByteIdentical).
	Mismatches int
	// Rejected counts admission-control rejections (the load loop does
	// not retry, so rejections reduce Queries but never fail the run).
	Rejected int64
	// Traced counts queries whose span tree was sampled; PhaseLatencies
	// summarizes their per-phase simulated protocol seconds.
	Traced         int64
	PhaseLatencies map[string]PhaseQuantiles `json:",omitempty"`
}

// PhaseQuantiles summarizes one protocol phase's simulated latency
// across the sampled queries of a serve-load run.
type PhaseQuantiles struct {
	Count int
	P50   float64
	P95   float64
	P99   float64
}

// Table renders the X9 result for stdout.
func (r *ServeResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# X9 serve-load: sustained QPS through sensjoind (nodes=%d seed=%d)\n", r.Nodes, r.Seed)
	fmt.Fprintf(&b, "%-8s %-7s %-8s %-8s %-8s %-15s %-15s %s\n",
		"clients", "shapes", "queries", "seconds", "qps", "cache_hit_rate", "byte_identical", "rejected")
	fmt.Fprintf(&b, "%-8d %-7d %-8d %-8.2f %-8.0f %-15.4f %-15t %d\n",
		r.Clients, r.Shapes, r.Queries, r.Seconds, r.QPS, r.CacheHitRate, r.ByteIdentical, r.Rejected)
	if len(r.PhaseLatencies) > 0 {
		phases := make([]string, 0, len(r.PhaseLatencies))
		for ph := range r.PhaseLatencies {
			phases = append(phases, ph)
		}
		sort.Strings(phases)
		fmt.Fprintf(&b, "# per-phase simulated seconds (%d sampled queries)\n", r.Traced)
		fmt.Fprintf(&b, "%-16s %-8s %-10s %-10s %-10s\n", "phase", "count", "p50", "p95", "p99")
		for _, ph := range phases {
			q := r.PhaseLatencies[ph]
			fmt.Fprintf(&b, "%-16s %-8d %-10.4f %-10.4f %-10.4f\n", ph, q.Count, q.P50, q.P95, q.P99)
		}
	}
	return b.String()
}

// serveShapes builds the workload: one canonical shape per index,
// distinct literals so each is its own cache entry.
func serveShapes(n int) []string {
	out := make([]string, n)
	for i := range out {
		switch i % 4 {
		case 0:
			out[i] = fmt.Sprintf(`SELECT A.temp, B.hum FROM Sensors A, Sensors B WHERE A.temp - B.temp > %.1f ONCE`, 5.0+0.5*float64(i))
		case 1:
			out[i] = fmt.Sprintf(`SELECT A.temp FROM Sensors A, Sensors B WHERE A.temp = B.temp AND A.hum < %.1f ONCE`, 70.0-float64(i))
		case 2:
			out[i] = fmt.Sprintf(`SELECT MIN(distance(A.x, A.y, B.x, B.y)) FROM Sensors A, Sensors B WHERE A.temp - B.temp > %.1f ONCE`, 6.0+0.5*float64(i))
		default:
			out[i] = fmt.Sprintf(`SELECT * FROM Sensors A, Sensors B WHERE A.temp - B.temp > %.1f AND A.pres < 1015 ONCE`, 7.0+0.5*float64(i))
		}
	}
	return out
}

// clientTableKey order-normalizes a client-side table with the exact
// rendering of tableKey, so equal keys mean byte-identical row sets.
func clientTableKey(tb *client.Table) string {
	rows := make([]string, len(tb.Rows))
	for i, row := range tb.Rows {
		s := ""
		for _, v := range row {
			s += fmt.Sprintf("%x|", v)
		}
		rows[i] = s
	}
	sort.Strings(rows)
	key := fmt.Sprintf("cols=%v contrib=%d members=%d complete=%t;", tb.Columns, tb.Contributing, tb.Members, tb.Complete)
	for _, s := range rows {
		key += s + "\n"
	}
	return key
}

// RunServeLoad measures X9.
func RunServeLoad(cfg ServeConfig) (*ServeResult, error) {
	cfg = cfg.withDefaults()
	shapes := serveShapes(cfg.Shapes)

	// Ground truth: every shape executed directly through the library.
	ref := make(map[string]string, len(shapes))
	r, err := core.NewRunner(core.SetupConfig{Nodes: cfg.Nodes, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	for _, src := range shapes {
		res, err := r.Run(src, core.NewSENSJoin(), 0)
		if err != nil {
			return nil, err
		}
		ref[src] = tableKey(res)
	}

	reg := metrics.New()
	srv, err := server.Listen("127.0.0.1:0", server.Config{
		Nodes: cfg.Nodes, Seed: cfg.Seed, Registry: reg,
		// The load loop keeps at most one query in flight per client;
		// admit them all so rejections measure real overload only.
		MaxQueue: cfg.Clients + 1,
		// Span-sample a fraction of queries and keep the whole window
		// in the flight recorder: it supplies PhaseLatencies below.
		TraceSample: cfg.TraceSample,
		FlightSize:  1 << 16,
		Logf:        func(string, ...any) {},
	})
	if err != nil {
		return nil, err
	}
	defer srv.Close()

	var (
		wg         sync.WaitGroup
		mu         sync.Mutex
		queries    int
		mismatches int
		workerErr  error
	)
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	for w := 0; w < cfg.Clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := client.Dial(srv.Addr().String())
			if err != nil {
				mu.Lock()
				workerErr = err
				mu.Unlock()
				return
			}
			defer c.Close()
			n, bad := 0, 0
			for i := 0; time.Now().Before(deadline); i++ {
				src := shapes[(w+i)%len(shapes)]
				tb, err := c.Query(src)
				if err != nil {
					if se, ok := err.(*client.ServerError); ok && se.Code == "over-capacity" {
						continue // counted server-side; do not retry-spin
					}
					mu.Lock()
					workerErr = fmt.Errorf("client %d: %w", w, err)
					mu.Unlock()
					return
				}
				n++
				if clientTableKey(tb) != ref[src] {
					bad++
				}
			}
			mu.Lock()
			queries += n
			mismatches += bad
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	if workerErr != nil {
		return nil, workerErr
	}

	snap := reg.Snapshot()
	out := &ServeResult{
		Nodes: cfg.Nodes, Seed: cfg.Seed, Clients: cfg.Clients, Shapes: cfg.Shapes,
		Queries: queries, Seconds: elapsed,
		CacheHits:     snap["sensjoind_prepared_cache_hits_total"].(int64),
		CacheMisses:   snap["sensjoind_prepared_cache_misses_total"].(int64),
		Rejected:      snap["sensjoind_rejected_total"].(int64),
		Mismatches:    mismatches,
		ByteIdentical: mismatches == 0,
	}
	if elapsed > 0 {
		out.QPS = float64(queries) / elapsed
	}
	if total := out.CacheHits + out.CacheMisses; total > 0 {
		out.CacheHitRate = float64(out.CacheHits) / float64(total)
	}
	if v, ok := snap["sensjoind_traced_queries_total"]; ok {
		out.Traced = v.(int64)
	}
	out.PhaseLatencies = phaseQuantiles(srv.Flight().Records())
	return out, nil
}

// phaseQuantiles folds the flight recorder's sampled records into
// per-phase latency percentiles.
func phaseQuantiles(records []server.QueryRecord) map[string]PhaseQuantiles {
	byPhase := map[string][]float64{}
	for _, rec := range records {
		for _, p := range rec.Phases {
			byPhase[p.Phase] = append(byPhase[p.Phase], p.Seconds)
		}
	}
	if len(byPhase) == 0 {
		return nil
	}
	out := make(map[string]PhaseQuantiles, len(byPhase))
	for ph, xs := range byPhase {
		sort.Float64s(xs)
		out[ph] = PhaseQuantiles{
			Count: len(xs),
			P50:   quantile(xs, 0.50),
			P95:   quantile(xs, 0.95),
			P99:   quantile(xs, 0.99),
		}
	}
	return out
}

// quantile reads the q-quantile (nearest-rank) from an ascending slice.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
