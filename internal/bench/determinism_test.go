package bench

import (
	"strings"
	"testing"
)

// renderAll runs every experiment at cfg and renders the tables to one
// string, the same representation cmd/experiments prints.
func renderAll(t *testing.T, cfg Config) string {
	t.Helper()
	tables, err := All(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, tbl := range tables {
		b.WriteString(tbl.String())
	}
	return b.String()
}

// TestAllDeterministicAcrossParallelism is the harness's core
// correctness claim: the rendered tables are byte-identical whether the
// experiments run sequentially or fanned out over many workers, and
// across repeated runs (the shared deployment cache and the memoized
// calibration must not leak state between runs).
func TestAllDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full experiment suite three times")
	}
	cfg := smallConfig()

	cfg.Parallel = 1
	seq := renderAll(t, cfg)

	cfg.Parallel = 8
	par := renderAll(t, cfg)
	if seq != par {
		t.Fatalf("tables differ between Parallel=1 and Parallel=8:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
	}

	again := renderAll(t, cfg)
	if par != again {
		t.Fatal("tables differ between repeated Parallel=8 runs")
	}
}

// The loss-sweep table must be byte-identical across worker counts and
// repeated runs too: per-(rate, method) seeded loss streams make each
// cell independent of scheduling.
func TestLossResilienceDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the loss sweep three times")
	}
	render := func(parallel int) string {
		cfg := smallConfig()
		cfg.Parallel = parallel
		tbl, err := RunLossResilience(cfg, []float64{0.05, 0.10})
		if err != nil {
			t.Fatal(err)
		}
		return tbl.String()
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Fatalf("loss table differs between Parallel=1 and Parallel=8:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
	}
	if again := render(8); par != again {
		t.Fatal("loss table differs between repeated Parallel=8 runs")
	}
}
