package bench

import (
	"bytes"
	"strings"
	"testing"

	"sensjoin/internal/metrics"
)

// renderAll runs every experiment at cfg and renders the tables to one
// string, the same representation cmd/experiments prints.
func renderAll(t *testing.T, cfg Config) string {
	t.Helper()
	tables, err := All(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, tbl := range tables {
		b.WriteString(tbl.String())
	}
	return b.String()
}

// TestAllDeterministicAcrossParallelism is the harness's core
// correctness claim: the rendered tables are byte-identical whether the
// experiments run sequentially or fanned out over many workers, and
// across repeated runs (the shared deployment cache and the memoized
// calibration must not leak state between runs).
func TestAllDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full experiment suite three times")
	}
	cfg := smallConfig()

	cfg.Parallel = 1
	seq := renderAll(t, cfg)

	cfg.Parallel = 8
	par := renderAll(t, cfg)
	if seq != par {
		t.Fatalf("tables differ between Parallel=1 and Parallel=8:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
	}

	again := renderAll(t, cfg)
	if par != again {
		t.Fatal("tables differ between repeated Parallel=8 runs")
	}
}

// The loss-sweep table must be byte-identical across worker counts and
// repeated runs too: per-(rate, method) seeded loss streams make each
// cell independent of scheduling.
func TestLossResilienceDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the loss sweep three times")
	}
	render := func(parallel int) string {
		cfg := smallConfig()
		cfg.Parallel = parallel
		tbl, err := RunLossResilience(cfg, []float64{0.05, 0.10})
		if err != nil {
			t.Fatal(err)
		}
		return tbl.String()
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Fatalf("loss table differs between Parallel=1 and Parallel=8:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
	}
	if again := render(8); par != again {
		t.Fatal("loss table differs between repeated Parallel=8 runs")
	}
}

// TestObservabilityDoesNotChangeTables is the observability layer's core
// contract: attaching the live metrics registry and the progress tracker
// must leave every rendered table byte-identical — instruments observe
// the simulation, they never perturb it. It also checks that the
// registry actually saw the run (all layers reported) and that the
// progress tracker converged with nothing in flight.
func TestObservabilityDoesNotChangeTables(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full experiment suite twice")
	}
	cfg := smallConfig()
	cfg.Parallel = 4
	plain := renderAll(t, cfg)

	var stderr bytes.Buffer
	cfg.Metrics = metrics.New()
	cfg.Progress = NewProgress(&stderr)
	observed := renderAll(t, cfg)
	if plain != observed {
		t.Fatalf("tables differ with observability enabled:\n--- plain ---\n%s\n--- observed ---\n%s", plain, observed)
	}

	var prom bytes.Buffer
	if err := cfg.Metrics.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	text := prom.String()
	for _, family := range []string{
		"sensjoin_netsim_events_total",
		"sensjoin_netsim_tx_packets_total",
		"sensjoin_core_runs_total",
		"sensjoin_core_phase_transitions_total",
		"sensjoin_routing_tree_depth",
		"sensjoin_bench_cells_done_total",
		"sensjoin_bench_node_energy_joules",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("family %s missing from exposition", family)
		}
	}
	if _, err := metrics.ValidateProm(strings.NewReader(text)); err != nil {
		t.Errorf("exposition invalid: %v", err)
	}
	for _, e := range cfg.Progress.Snapshot() {
		if e.Done != e.Total || e.Failed != 0 {
			t.Errorf("progress %s: done %d of %d, %d failed", e.ID, e.Done, e.Total, e.Failed)
		}
	}
	if stderr.Len() == 0 {
		t.Error("progress writer saw no output")
	}
}

// The X6 energy/lifetime table must be byte-identical across worker
// counts and repeated runs, like every other table.
func TestEnergyLifetimeDeterministicAcrossParallelism(t *testing.T) {
	render := func(parallel int) string {
		cfg := smallConfig()
		cfg.Parallel = parallel
		tbl, err := RunEnergyLifetime(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return tbl.String()
	}
	seq := render(1)
	par := render(8)
	if seq != par {
		t.Fatalf("energy table differs between Parallel=1 and Parallel=8:\n--- sequential ---\n%s\n--- parallel ---\n%s", seq, par)
	}
	if again := render(8); par != again {
		t.Fatal("energy table differs between repeated Parallel=8 runs")
	}
}
