package bench

import (
	"sync/atomic"

	"sensjoin/internal/metrics"
)

// harnessMetrics are the experiment-harness instruments. The zero value
// (all instruments nil) is a complete no-op, so Config can carry it by
// value and metrics-off runs pay nothing.
type harnessMetrics struct {
	cellsStarted  *metrics.Counter
	cellsDone     *metrics.Counter
	cellsInflight *metrics.Gauge
	expInflight   *metrics.Gauge
}

func newHarnessMetrics(reg *metrics.Registry) harnessMetrics {
	return harnessMetrics{
		cellsStarted:  reg.Counter("sensjoin_bench_cells_started_total", "sweep cells started"),
		cellsDone:     reg.Counter("sensjoin_bench_cells_done_total", "sweep cells completed"),
		cellsInflight: reg.Gauge("sensjoin_bench_cells_inflight", "sweep cells currently executing"),
		expInflight:   reg.Gauge("sensjoin_bench_experiments_inflight", "experiments currently executing"),
	}
}

// fanoutBusy is the live busy-worker gauge for Fanout. Fanout is a
// generic package-level function with no Config in scope, so the gauge
// travels through an atomic pointer; a nil load is a no-op gauge.
var fanoutBusy atomic.Pointer[metrics.Gauge]
