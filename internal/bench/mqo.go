package bench

import (
	"fmt"
	"sort"

	"sensjoin/internal/core"
	"sensjoin/internal/netsim"
	"sensjoin/internal/stats"
	"sensjoin/internal/workload"
)

// X8: multi-query optimization. N concurrent continuous queries run
// once under a shared core.QueryGroup and once as N independent
// continuous executions; the experiment reports total transmissions,
// radio bytes and CC2420 energy for both, at two overlap levels:
//
//	high — all N queries are Q1-style band joins differing only in
//	       delta: one shared cluster serves all of them;
//	low  — the queries alternate between the 33% and 60% presets
//	       (different join attributes), so the group degrades to two
//	       clusters and the sharing win shrinks accordingly.
//
// Every per-query result table of the shared run is compared against
// its independent counterpart (rows order-normalized — best-effort
// delivery reorders arrivals; the byte-identical guarantee under
// reliable transport is enforced by the differential test in
// internal/core).

// MQOConfig parameterizes the X8 experiment.
type MQOConfig struct {
	// Nodes is the deployment size (default 1500).
	Nodes int
	// Seed drives placement and fields.
	Seed int64
	// MaxPacket is the radio packet size in bytes.
	MaxPacket int
	// Ns lists the concurrent query counts (default 1,2,4,8,16).
	Ns []int
	// Epochs is the number of continuous rounds per cell (default 3).
	Epochs int
	// Period is the epoch period in seconds (default 30).
	Period float64
	// Fraction is the calibrated result-fraction target (default 5%).
	Fraction float64
}

func (c MQOConfig) withDefaults() MQOConfig {
	if c.Nodes == 0 {
		c.Nodes = 1500
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.MaxPacket == 0 {
		c.MaxPacket = 48
	}
	if len(c.Ns) == 0 {
		c.Ns = []int{1, 2, 4, 8, 16}
	}
	if c.Epochs == 0 {
		c.Epochs = 3
	}
	if c.Period == 0 {
		c.Period = 30
	}
	if c.Fraction == 0 {
		c.Fraction = 0.05
	}
	return c
}

// MQOPoint is one measured (N, overlap) cell.
type MQOPoint struct {
	N               int     `json:"n"`
	Overlap         string  `json:"overlap"`
	Clusters        int     `json:"clusters"`
	SharedTx        int64   `json:"shared_tx"`
	IndepTx         int64   `json:"indep_tx"`
	TxRatio         float64 `json:"tx_ratio"`
	SharedBytes     int64   `json:"shared_bytes"`
	IndepBytes      int64   `json:"indep_bytes"`
	SharedEnergyJ   float64 `json:"shared_energy_j"`
	IndepEnergyJ    float64 `json:"indep_energy_j"`
	TablesIdentical bool    `json:"tables_identical"`
}

// MQOResult is the machine-readable X8 artifact (BENCH_mqo.json).
type MQOResult struct {
	Nodes  int        `json:"nodes"`
	Seed   int64      `json:"seed"`
	Epochs int        `json:"epochs"`
	Points []MQOPoint `json:"points"`
}

// mqoQueries builds the N query texts of one overlap level.
func mqoQueries(r *core.Runner, cfg MQOConfig, n int, overlap string) []string {
	d33, _ := workload.Calibrate(r, workload.Ratio33(), cfg.Fraction)
	d60, _ := workload.Calibrate(r, workload.Ratio60(), cfg.Fraction)
	out := make([]string, n)
	for j := 0; j < n; j++ {
		spread := 1 + 0.02*float64(j)
		if overlap == "low" && j%2 == 1 {
			out[j] = workload.Ratio60().Build(d60 * spread)
		} else {
			out[j] = workload.Ratio33().Build(d33 * spread)
		}
	}
	return out
}

// mqoRunner builds one measurement runner with the low-noise drifting
// environment (temporal correlation at cell granularity is what the
// incremental filter machinery exploits).
func mqoRunner(cfg MQOConfig) (*core.Runner, error) {
	radio := netsim.DefaultRadio()
	radio.MaxPacket = cfg.MaxPacket
	r, err := core.NewRunner(core.SetupConfig{Nodes: cfg.Nodes, Seed: cfg.Seed, Radio: radio})
	if err != nil {
		return nil, err
	}
	r.Env = quietEnv(r, cfg.Seed)
	return r, nil
}

// tableKey order-normalizes one result table: rows render with exact
// round-trip float formatting and sort lexicographically, so two tables
// compare equal iff their row SETS are identical byte for byte.
func tableKey(res *core.Result) string {
	rows := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		s := ""
		for _, v := range row {
			s += fmt.Sprintf("%x|", v)
		}
		rows[i] = s
	}
	sort.Strings(rows)
	key := fmt.Sprintf("cols=%v contrib=%d members=%d complete=%t;", res.Columns, res.ContributingNodes, res.MemberNodes, res.Complete)
	for _, s := range rows {
		key += s + "\n"
	}
	return key
}

// RunMQO measures X8.
func RunMQO(cfg MQOConfig) (*MQOResult, error) {
	cfg = cfg.withDefaults()
	model := stats.CC2420Model()
	res := &MQOResult{Nodes: cfg.Nodes, Seed: cfg.Seed, Epochs: cfg.Epochs}

	energyOf := func(r *core.Runner) float64 {
		total := 0.0
		for _, e := range r.Stats.PerNodeEnergy(model, core.SENSPhases...) {
			total += e
		}
		return total
	}

	for _, overlap := range []string{"high", "low"} {
		for _, n := range cfg.Ns {
			// Shared leg: one runner, one QueryGroup, Epochs rounds.
			rs, err := mqoRunner(cfg)
			if err != nil {
				return nil, err
			}
			srcs := mqoQueries(rs, cfg, n, overlap)
			g := core.NewQueryGroup(core.Options{})
			for _, s := range srcs {
				if _, err := g.Add(s); err != nil {
					return nil, fmt.Errorf("bench: mqo n=%d %s: %w", n, overlap, err)
				}
			}
			sharedKeys := make(map[[2]int]string)
			for e := 0; e < cfg.Epochs; e++ {
				out, err := g.RunRound(rs, float64(e)*cfg.Period)
				if err != nil {
					return nil, fmt.Errorf("bench: mqo shared n=%d %s epoch %d: %w", n, overlap, e, err)
				}
				for q, rr := range out {
					sharedKeys[[2]int{e, q}] = tableKey(rr)
				}
			}
			p := MQOPoint{
				N: n, Overlap: overlap, Clusters: g.Clusters(),
				SharedTx:      rs.Stats.TotalTx(core.SENSPhases...),
				SharedBytes:   rs.Stats.TotalTxBytes(core.SENSPhases...),
				SharedEnergyJ: energyOf(rs),
			}

			// Independent leg: one fresh runner + continuous SENS-Join per
			// query, same deployment/environment/epochs.
			identical := true
			for q, s := range srcs {
				ri, err := mqoRunner(cfg)
				if err != nil {
					return nil, err
				}
				m := core.NewContinuousSENSJoin()
				for e := 0; e < cfg.Epochs; e++ {
					out, err := ri.Run(s, m, float64(e)*cfg.Period)
					if err != nil {
						return nil, fmt.Errorf("bench: mqo independent n=%d %s q=%d epoch %d: %w", n, overlap, q, e, err)
					}
					if tableKey(out) != sharedKeys[[2]int{e, q}] {
						identical = false
					}
				}
				p.IndepTx += ri.Stats.TotalTx(core.SENSPhases...)
				p.IndepBytes += ri.Stats.TotalTxBytes(core.SENSPhases...)
				p.IndepEnergyJ += energyOf(ri)
			}
			p.TablesIdentical = identical
			if p.IndepTx > 0 {
				p.TxRatio = float64(p.SharedTx) / float64(p.IndepTx)
			}
			res.Points = append(res.Points, p)
		}
	}
	return res, nil
}

// Table renders the X8 result in the suite's table format.
func (r *MQOResult) Table() *Table {
	t := &Table{
		ID:     "X8",
		Title:  "multi-query optimization: shared vs independent execution of N continuous joins",
		Header: []string{"n", "overlap", "clusters", "sharedTx", "indepTx", "tx%", "sharedKB", "indepKB", "sharedJ", "indepJ", "tables"},
	}
	for _, p := range r.Points {
		tables := "identical"
		if !p.TablesIdentical {
			tables = "DIFFER"
		}
		t.AddRow(
			fmtInt(int64(p.N)), p.Overlap, fmtInt(int64(p.Clusters)),
			fmtInt(p.SharedTx), fmtInt(p.IndepTx),
			fmt.Sprintf("%.0f%%", 100*p.TxRatio),
			fmt.Sprintf("%.1f", float64(p.SharedBytes)/1024),
			fmt.Sprintf("%.1f", float64(p.IndepBytes)/1024),
			fmt.Sprintf("%.3f", p.SharedEnergyJ),
			fmt.Sprintf("%.3f", p.IndepEnergyJ),
			tables,
		)
	}
	t.Note("n=%d nodes, %d epochs per cell; stats cover the SENS-Join phases of all queries and epochs", r.Nodes, r.Epochs)
	t.Note("tables compare order-normalized per-query results; byte-identity under reliable transport is test-enforced")
	return t
}
