// Package bench regenerates every table and figure of the paper's
// evaluation (§VI). Each experiment has a Run function returning a Table
// of the same rows/series the paper reports; cmd/experiments prints the
// full set and bench_test.go at the repository root wraps each in a
// testing.B benchmark.
package bench

import (
	"fmt"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	// ID is the experiment identifier (e.g. "E1a / Fig. 10(a)").
	ID string
	// Title describes what is measured.
	Title string
	// Header names the columns.
	Header []string
	// Rows holds formatted cells.
	Rows [][]string
	// Notes carries observations (savings, break-even, ratios).
	Notes []string
	// TxPackets totals the packet transmissions the experiment's
	// measured runs charged, for machine-readable output (-json).
	TxPackets int64
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddTx accumulates measured packet transmissions into the experiment's
// total.
func (t *Table) AddTx(n int64) { t.TxPackets += n }

// Note appends a formatted observation line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// shortID strips a table id like "E1a / Fig. 10(a)" to its short
// experiment identifier ("E1a") for progress and metric labels.
func shortID(id string) string {
	if i := strings.Index(id, " /"); i >= 0 {
		return id[:i]
	}
	return id
}

func fmtInt(v int64) string    { return fmt.Sprintf("%d", v) }
func fmtFrac(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
func fmtFactor(a, b int64) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1fx", float64(a)/float64(b))
}

// savings returns 1 - sens/ext as a fraction.
func savings(ext, sens int64) float64 {
	if ext == 0 {
		return 0
	}
	return 1 - float64(sens)/float64(ext)
}

// CSV renders the table as RFC-4180-ish CSV (quoted cells, one header
// row); notes become trailing comment lines.
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteByte('"')
			b.WriteString(strings.ReplaceAll(c, `"`, `""`))
			b.WriteByte('"')
		}
		b.WriteByte('\n')
	}
	writeCSVRow(t.Header)
	for _, row := range t.Rows {
		writeCSVRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}
