package bench

import (
	"bufio"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// peakRSSMB reports the process's peak resident set size in MiB. On
// Linux it reads VmHWM from /proc/self/status — the kernel's high-water
// mark, which includes every allocation the scale run made so far.
// Elsewhere (or if the file is unreadable) it falls back to the Go
// heap's high-water mark, an underestimate that ignores non-heap memory.
func peakRSSMB() float64 {
	if f, err := os.Open("/proc/self/status"); err == nil {
		defer f.Close()
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "VmHWM:") {
				continue
			}
			fields := strings.Fields(line) // "VmHWM: <n> kB"
			if len(fields) >= 2 {
				if kb, err := strconv.ParseFloat(fields[1], 64); err == nil {
					return kb / 1024
				}
			}
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.HeapSys) / (1024 * 1024)
}
