package bench

import (
	"fmt"

	"sensjoin/internal/core"
	"sensjoin/internal/netsim"
	"sensjoin/internal/workload"
)

// X10: churn resilience. Each cell runs many rounds of one calibrated
// join under a seeded churn & mobility injector — per-epoch node
// deaths, rejoins and waypoint mobility — at a given rate, crossed with
// the method and the transport: reliable transport with mid-round tree
// repair versus plain best-effort delivery. Every round is audited
// (including the churn-safety pass: a round is either oracle-exact or
// explicitly flagged incomplete with provenance), so the experiment
// measures graceful degradation, not silent wrongness: completeness %,
// mid-round repairs and their latency, and the transmission overhead
// churn induces over the churn-free baseline.
//
// Rate-0 cells attach no injector at all, so their tables are
// byte-identical to the seed experiments by construction; per-cell
// churn seeds make every cell independent of execution order and the
// -parallel worker count.

// ChurnBenchConfig parameterizes the X10 experiment.
type ChurnBenchConfig struct {
	// Nodes is the deployment size (default 150 — churn rounds re-plan
	// and audit every round, so X10 runs smaller than the suite).
	Nodes int
	// Seed drives placement, fields and the per-cell churn streams.
	Seed int64
	// MaxPacket is the radio packet size in bytes.
	MaxPacket int
	// Rates are the per-node churn-event probabilities per epoch
	// (default 0, 0.01, 0.05).
	Rates []float64
	// Rounds is the number of query rounds per cell (default 20).
	Rounds int
	// Epoch is the churn epoch in simulated seconds; each round covers
	// one epoch of churn (default 30).
	Epoch float64
	// Fraction is the calibrated result-fraction target (default 5%).
	Fraction float64
	// Parallel is the cell fan-out worker count.
	Parallel int
}

func (c ChurnBenchConfig) withDefaults() ChurnBenchConfig {
	if c.Nodes == 0 {
		c.Nodes = 150
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.MaxPacket == 0 {
		c.MaxPacket = 48
	}
	if len(c.Rates) == 0 {
		c.Rates = []float64{0, 0.01, 0.05}
	}
	if c.Rounds == 0 {
		c.Rounds = 20
	}
	if c.Epoch == 0 {
		c.Epoch = 30
	}
	if c.Fraction == 0 {
		c.Fraction = 0.05
	}
	return c
}

// ChurnPoint is one measured (rate, method, transport) cell.
type ChurnPoint struct {
	Rate              float64        `json:"rate"`
	Method            string         `json:"method"`
	Transport         string         `json:"transport"`
	Rounds            int            `json:"rounds"`
	CompleteExact     int            `json:"complete_exact_rounds"`
	CompletenessPct   float64        `json:"completeness_pct"`
	Repairs           int            `json:"repairs"`
	RepairFailures    int            `json:"repair_failures"`
	MeanRepairLatency float64        `json:"mean_repair_latency_s"`
	TxPackets         int64          `json:"tx_packets"`
	ExtraTxPct        float64        `json:"extra_tx_pct"`
	Deaths            int            `json:"churn_deaths"`
	Rejoins           int            `json:"churn_rejoins"`
	Moves             int            `json:"churn_moves"`
	IncompleteReasons map[string]int `json:"incomplete_reasons,omitempty"`
	Violations        int            `json:"violations"`
}

// ChurnResult is the machine-readable X10 artifact (BENCH_churn.json).
// ViolationsTotal and RepairsTotal are the summary fields CI greps.
type ChurnResult struct {
	Nodes           int          `json:"nodes"`
	Seed            int64        `json:"seed"`
	Rounds          int          `json:"rounds"`
	Epoch           float64      `json:"epoch_s"`
	Points          []ChurnPoint `json:"points"`
	ViolationsTotal int          `json:"violations_total"`
	RepairsTotal    int          `json:"repairs_total"`
}

// churnTransports are the two transport legs of every cell.
const (
	churnReliable   = "reliable+repair"
	churnBestEffort = "best-effort"
)

// RunChurnResilience executes the X10 churn-resilience ladder.
func RunChurnResilience(cfg ChurnBenchConfig) (*ChurnResult, error) {
	cfg = cfg.withDefaults()
	preset := workload.Ratio33()

	type spec struct {
		rate     float64
		method   core.Method
		reliable bool
	}
	var specs []spec
	for _, rate := range cfg.Rates {
		for _, reliable := range []bool{true, false} {
			for _, m := range []core.Method{core.NewSENSJoin(), core.External{}} {
				specs = append(specs, spec{rate: rate, method: m, reliable: reliable})
			}
		}
	}

	run := func(s spec) (ChurnPoint, error) {
		radio := netsim.DefaultRadio()
		radio.MaxPacket = cfg.MaxPacket
		r, err := core.NewRunner(core.SetupConfig{Nodes: cfg.Nodes, Seed: cfg.Seed, Radio: radio})
		if err != nil {
			return ChurnPoint{}, err
		}
		r.AutoAudit = true // bound the journal across rounds
		transport := churnBestEffort
		if s.reliable {
			r.EnableReliableTransport(netsim.ReliableConfig{})
			r.EnableMidRoundRepair()
			transport = churnReliable
		}
		var ch *netsim.Churn
		if s.rate > 0 {
			// One churn stream per cell: independent of execution order
			// and worker count.
			seed := cfg.Seed + int64(s.rate*100000)
			if s.method.Name() != "external-join" {
				seed += 7
			}
			if s.reliable {
				seed += 13
			}
			ch = r.AttachChurn(netsim.ChurnConfig{Seed: seed, Rate: s.rate, Epoch: cfg.Epoch})
		}
		delta, _ := workload.Calibrate(r, preset, cfg.Fraction)
		src := preset.Build(delta)

		p := ChurnPoint{
			Rate: s.rate, Method: s.method.Name(), Transport: transport,
			Rounds: cfg.Rounds, IncompleteReasons: map[string]int{},
		}
		repairLatSum, repairLatN := 0.0, 0
		for round := 0; round < cfg.Rounds; round++ {
			horizon := r.Sim.Now() + cfg.Epoch
			if ch != nil {
				// One epoch of churn per round period. Ticks the round's own
				// event windows reach fire mid-round (between phases or
				// inside the reliable drain); the rest fire in the idle tail
				// below, so every leg sees the same churn process whether
				// its rounds drain the heap or run bounded windows.
				ch.Cover(horizon)
			}
			x, err := r.ExecSQL(src, 0)
			if err != nil {
				return ChurnPoint{}, err
			}
			// Pre-round oracle: GroundTruth reflects aliveness at call
			// time, and churn only acts once the round's clock advances.
			truth, err := core.GroundTruth(x)
			if err != nil {
				return ChurnPoint{}, err
			}
			res, violations, err := r.AuditRun(src, s.method, 0)
			if err != nil {
				return ChurnPoint{}, fmt.Errorf("bench: churn %s/%s rate %g round %d: %w",
					s.method.Name(), transport, s.rate, round, err)
			}
			p.Violations += len(violations)
			if res.Complete && tableKey(res) == tableKey(truth) {
				p.CompleteExact++
			}
			if !res.Complete {
				reason := res.IncompleteReason
				if reason == "" {
					reason = "unexplained" // the churn audit flags this too
				}
				p.IncompleteReasons[reason]++
			}
			p.Repairs += res.Repairs
			if res.Repairs > 0 {
				repairLatSum += res.RepairLatency
				repairLatN++
				if !res.Complete {
					p.RepairFailures++
				}
			}
			if ch != nil {
				// Idle tail: advance to the period boundary so churn ticks
				// beyond the round's last event window still happen.
				r.Sim.RunUntil(horizon)
			}
		}
		phases := append(append([]string(nil), s.method.Phases()...), core.PhaseRecovery)
		p.TxPackets = r.Stats.TotalTx(phases...)
		p.CompletenessPct = 100 * float64(p.CompleteExact) / float64(cfg.Rounds)
		if repairLatN > 0 {
			p.MeanRepairLatency = repairLatSum / float64(repairLatN)
		}
		if ch != nil {
			p.Deaths, p.Rejoins, p.Moves = ch.Deaths, ch.Rejoins, ch.Moves
		}
		if len(p.IncompleteReasons) == 0 {
			p.IncompleteReasons = nil
		}
		return p, nil
	}

	jobs := make([]func() (ChurnPoint, error), len(specs))
	for i, s := range specs {
		jobs[i] = func() (ChurnPoint, error) { return run(s) }
	}
	points, err := Fanout(cfg.Parallel, jobs)
	if err != nil {
		return nil, err
	}

	// Transmission overhead relative to the churn-free cell of the same
	// (method, transport) leg.
	base := map[[2]string]int64{}
	for _, p := range points {
		if p.Rate == 0 {
			base[[2]string{p.Method, p.Transport}] = p.TxPackets
		}
	}
	res := &ChurnResult{Nodes: cfg.Nodes, Seed: cfg.Seed, Rounds: cfg.Rounds, Epoch: cfg.Epoch}
	for _, p := range points {
		if b := base[[2]string{p.Method, p.Transport}]; b > 0 && p.Rate > 0 {
			p.ExtraTxPct = 100 * (float64(p.TxPackets)/float64(b) - 1)
		}
		res.Points = append(res.Points, p)
		res.ViolationsTotal += p.Violations
		res.RepairsTotal += p.Repairs
	}
	return res, nil
}

// Table renders the X10 result in the suite's table format.
func (r *ChurnResult) Table() *Table {
	t := &Table{
		ID:     "X10",
		Title:  "churn resilience: completeness and repair under node churn & mobility",
		Header: []string{"rate", "method", "transport", "complete", "repairs", "repairLat", "tx", "extraTx", "deaths", "moves", "incomplete", "viol"},
	}
	for _, p := range r.Points {
		reasons := "-"
		if len(p.IncompleteReasons) > 0 {
			reasons = ""
			for _, k := range []string{core.ReasonLoss, core.ReasonDeadSubtree, core.ReasonPartition, "unexplained"} {
				if n := p.IncompleteReasons[k]; n > 0 {
					if reasons != "" {
						reasons += " "
					}
					reasons += fmt.Sprintf("%s:%d", k, n)
				}
			}
		}
		repairLat := "-"
		if p.Repairs > 0 {
			repairLat = fmt.Sprintf("%.1fs", p.MeanRepairLatency)
		}
		t.AddRow(
			fmt.Sprintf("%g%%", 100*p.Rate), p.Method, p.Transport,
			fmt.Sprintf("%d/%d (%.0f%%)", p.CompleteExact, p.Rounds, p.CompletenessPct),
			fmtInt(int64(p.Repairs)), repairLat,
			fmtInt(p.TxPackets), fmt.Sprintf("%+.0f%%", p.ExtraTxPct),
			fmtInt(int64(p.Deaths)), fmtInt(int64(p.Moves)),
			reasons, fmtInt(int64(p.Violations)),
		)
		t.AddTx(p.TxPackets)
	}
	t.Note("n=%d nodes, %d rounds per cell, one %gs churn epoch per round; every round audited (churn-safety pass included)", r.Nodes, r.Rounds, r.Epoch)
	t.Note("complete counts rounds that were both complete and oracle-exact against the pre-round ground truth")
	t.Note("total audit violations: %d; total mid-round repairs: %d", r.ViolationsTotal, r.RepairsTotal)
	return t
}
