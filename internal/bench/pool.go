package bench

import "sync"

// Worker-pool scheduler for the experiment harness.
//
// Experiments — and the sweep cells inside them — are embarrassingly
// parallel: every job owns a private core.Runner whose expensive
// artifacts (deployment, environment, routing tree) come from core's
// immutable shared cache, and all simulation observables (packet
// counts, response times) are functions of the job's own deterministic
// simulation only. Fanout therefore runs jobs concurrently but returns
// results strictly in declaration order, so rendered tables are
// byte-identical regardless of worker count or GOMAXPROCS.

// Fanout runs jobs with at most workers goroutines and returns their
// results in declaration order. workers <= 1 runs the jobs sequentially
// on the calling goroutine. On failure the first error in declaration
// order is returned together with the results of the jobs declared
// before it (matching what a sequential early-exit loop would have
// produced); later jobs may or may not have run.
func Fanout[T any](workers int, jobs []func() (T, error)) ([]T, error) {
	out := make([]T, len(jobs))
	errs := make([]error, len(jobs))
	busy := fanoutBusy.Load() // nil when metrics are off; methods no-op
	if workers <= 1 {
		for i, job := range jobs {
			busy.Inc()
			out[i], errs[i] = job()
			busy.Dec()
			if errs[i] != nil {
				return out[:i], errs[i]
			}
		}
		return out, nil
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, job := range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			busy.Inc()
			defer busy.Dec()
			out[i], errs[i] = job()
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return out[:i], err
		}
	}
	return out, nil
}

// cellJobs adapts a per-item function to a Fanout job list, preserving
// item order. Each cell reports start/completion to the harness
// instruments and the progress tracker under the short experiment id;
// with observability off both hooks are no-ops.
func cellJobs[I, R any](cfg Config, id string, items []I, run func(I) (R, error)) []func() (R, error) {
	cfg.Progress.Begin(id, len(items))
	out := make([]func() (R, error), len(items))
	for i, item := range items {
		out[i] = func() (R, error) {
			cfg.hm.cellsStarted.Inc()
			cfg.hm.cellsInflight.Inc()
			r, err := run(item)
			cfg.hm.cellsInflight.Dec()
			cfg.hm.cellsDone.Inc()
			cfg.Progress.CellDone(id, err == nil)
			return r, err
		}
	}
	return out
}
