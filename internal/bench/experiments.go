package bench

import (
	"fmt"

	"sensjoin/internal/compress"
	"sensjoin/internal/core"
	"sensjoin/internal/field"
	"sensjoin/internal/geom"
	"sensjoin/internal/metrics"
	"sensjoin/internal/netsim"
	"sensjoin/internal/stats"
	"sensjoin/internal/topology"
	"sensjoin/internal/trace"
	"sensjoin/internal/workload"
)

// Config parameterizes the experiments. The zero value reproduces the
// paper's default setting: 1500 nodes on 1050x1050 m, 50 m range, 48-byte
// packets, 5% of the nodes in the result.
type Config struct {
	// Nodes is the sensor node count.
	Nodes int
	// Seed drives placement and fields.
	Seed int64
	// MaxPacket is the maximum packet size in bytes.
	MaxPacket int
	// Fractions is the swept fraction of nodes in the result (Fig. 10).
	Fractions []float64
	// DefaultFraction is the fraction used where the paper fixes 5%.
	DefaultFraction float64
	// Parallel is the worker count for experiment and sweep-cell
	// fan-out (see pool.go); 0 or 1 runs everything sequentially.
	// Output is byte-identical for every value.
	Parallel int
	// Audit makes every execution self-audit against its journal
	// (conservation, reconciliation, slot order, filter soundness);
	// violations turn into experiment errors. Tables are unchanged —
	// tracing is observation, not interference.
	Audit bool
	// Metrics attaches every runner (event loop, radio, reliable
	// transport, protocol spans), the shared deployment cache and the
	// harness itself to live instruments on this registry (see
	// internal/metrics and `experiments -serve`). Nil — the default —
	// keeps every hook a no-op and the radio hot path allocation-free.
	// Rendered tables are byte-identical either way.
	Metrics *metrics.Registry
	// Progress receives per-experiment sweep-cell completion updates
	// (the -progress flag and the /progress endpoint); nil disables.
	// Progress output never touches stdout.
	Progress *Progress

	// hm holds the harness instruments; the zero value is a no-op.
	hm harnessMetrics
}

func (c Config) withDefaults() Config {
	if c.Nodes == 0 {
		c.Nodes = 1500
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.MaxPacket == 0 {
		c.MaxPacket = 48
	}
	if len(c.Fractions) == 0 {
		c.Fractions = []float64{0.01, 0.03, 0.05, 0.09, 0.25, 0.40, 0.60, 0.80, 0.90}
	}
	if c.DefaultFraction == 0 {
		c.DefaultFraction = 0.05
	}
	if c.Metrics != nil {
		c.hm = newHarnessMetrics(c.Metrics)
		core.SetCacheMetrics(c.Metrics)
		g := c.Metrics.Gauge("sensjoin_bench_workers_busy", "Fanout jobs currently executing")
		fanoutBusy.Store(g)
	}
	return c
}

func (c Config) runner() (*core.Runner, error) {
	radio := netsim.DefaultRadio()
	radio.MaxPacket = c.MaxPacket
	r, err := core.NewRunner(core.SetupConfig{Nodes: c.Nodes, Seed: c.Seed, Radio: radio})
	if err != nil {
		return nil, err
	}
	r.AutoAudit = c.Audit
	if c.Metrics != nil {
		r.EnableMetrics(c.Metrics)
	}
	return r, nil
}

// RunTraced executes one calibrated SENS-Join query at the default
// fraction with the execution journal enabled and returns the journal
// plus any audit violations (none on a correct run). The journal backs
// `experiments -trace`.
func RunTraced(cfg Config) (*trace.Journal, []trace.Violation, error) {
	cfg = cfg.withDefaults()
	r, err := cfg.runner()
	if err != nil {
		return nil, nil, err
	}
	r.AutoAudit = false // keep the journal; AuditRun below audits explicitly
	rec := r.EnableTrace()
	preset := workload.Ratio33()
	delta, _ := workload.Calibrate(r, preset, cfg.DefaultFraction)
	_, violations, err := r.AuditRun(preset.Build(delta), core.NewSENSJoin(), 0)
	if err != nil {
		return nil, nil, err
	}
	return rec.Journal(), violations, nil
}

// runTotal executes one method and returns its total packet count over
// its own phases.
func runTotal(r *core.Runner, src string, m core.Method) (int64, *core.Result, error) {
	r.Stats.Reset()
	res, err := r.Run(src, m, 0)
	if err != nil {
		return 0, nil, err
	}
	return r.Stats.TotalTx(m.Phases()...), res, nil
}

// RunOverallSavings reproduces Fig. 10: overall transmissions of the
// external join and SENS-Join while the fraction of nodes in the result
// sweeps; one call per join-attribute preset (33% for 10(a), 60% for
// 10(b)).
func RunOverallSavings(cfg Config, preset workload.Preset) (*Table, error) {
	cfg = cfg.withDefaults()
	id := "E1a / Fig. 10(a)"
	if preset.Ratio() > 0.5 {
		id = "E1b / Fig. 10(b)"
	}
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("overall transmissions vs result fraction (%s, %d nodes)", preset.Name, cfg.Nodes),
		Header: []string{"target f", "actual f", "external", "sens-join", "savings", "winner"},
	}
	// Each fraction is an independent sweep cell with a private runner;
	// the shared deployment cache makes the extra runners cheap and the
	// cells' observables identical to a sequential shared-runner sweep.
	type cell struct {
		actual    float64
		ext, sens int64
	}
	cells, err := Fanout(cfg.Parallel, cellJobs(cfg, shortID(id), cfg.Fractions, func(f float64) (cell, error) {
		r, err := cfg.runner()
		if err != nil {
			return cell{}, err
		}
		delta, actual := workload.Calibrate(r, preset, f)
		src := preset.Build(delta)
		ext, _, err := runTotal(r, src, core.External{})
		if err != nil {
			return cell{}, err
		}
		sens, _, err := runTotal(r, src, core.NewSENSJoin())
		if err != nil {
			return cell{}, err
		}
		return cell{actual: actual, ext: ext, sens: sens}, nil
	}))
	if err != nil {
		return nil, err
	}
	var bestSavings float64
	var breakEven float64 = -1
	for i, f := range cfg.Fractions {
		c := cells[i]
		s := savings(c.ext, c.sens)
		if s > bestSavings {
			bestSavings = s
		}
		winner := "sens-join"
		if c.sens >= c.ext {
			winner = "external"
			if breakEven < 0 {
				breakEven = c.actual
			}
		}
		t.AddRow(fmtFrac(f), fmtFrac(c.actual), fmtInt(c.ext), fmtInt(c.sens), fmtFrac(s), winner)
		t.AddTx(c.ext + c.sens)
	}
	t.Note("max savings %.0f%% (paper: up to 80%% at 33%%, ~67%% at 60%%)", 100*bestSavings)
	if breakEven >= 0 {
		t.Note("break-even near f = %.0f%% (paper: 60-80%%)", 100*breakEven)
	} else {
		t.Note("no break-even within the swept range")
	}
	return t, nil
}

// RunPerNodeSavings reproduces Fig. 11: per-node transmissions versus the
// node's descendant count in the routing tree, at the default fraction.
func RunPerNodeSavings(cfg Config, preset workload.Preset) (*Table, error) {
	cfg = cfg.withDefaults()
	r, err := cfg.runner()
	if err != nil {
		return nil, err
	}
	id := "E2a / Fig. 11(a)"
	if preset.Ratio() > 0.5 {
		id = "E2b / Fig. 11(b)"
	}
	delta, actual := workload.Calibrate(r, preset, cfg.DefaultFraction)
	src := preset.Build(delta)

	extTotal, _, err := runTotal(r, src, core.External{})
	if err != nil {
		return nil, err
	}
	extPer := r.Stats.PerNodeTx(core.ExternalPhases...)
	sensTotal, _, err := runTotal(r, src, core.NewSENSJoin())
	if err != nil {
		return nil, err
	}
	sensPer := r.Stats.PerNodeTx(core.SENSPhases...)

	bounds := []int{0, 2, 5, 10, 20, 50, 100, 1 << 30}
	extMean, counts := stats.LoadByDescendants(extPer, r.Tree.Descendants, bounds)
	sensMean, _ := stats.LoadByDescendants(sensPer, r.Tree.Descendants, bounds)

	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("per-node transmissions vs descendants (%s, f=%.1f%%)", preset.Name, 100*actual),
		Header: []string{"descendants <=", "nodes", "external avg", "sens avg", "reduction"},
	}
	for i, up := range bounds {
		if counts[i] == 0 {
			continue
		}
		label := fmtInt(int64(up))
		if up == 1<<30 {
			label = "max"
		}
		red := "-"
		if sensMean[i] > 0 {
			red = fmt.Sprintf("%.1fx", extMean[i]/sensMean[i])
		}
		t.AddRow(label, fmtInt(int64(counts[i])),
			fmt.Sprintf("%.1f", extMean[i]), fmt.Sprintf("%.1f", sensMean[i]), red)
	}
	// Most-loaded node comparison (the network-lifetime metric).
	maxExt := maxOf(extPer)
	maxSens := maxOf(sensPer)
	t.Note("most-loaded node: external %d vs sens %d packets = %s reduction (paper: >10x at 33%%, >75%% at 60%%)",
		maxExt, maxSens, fmtFactor(maxExt, maxSens))
	t.AddTx(extTotal + sensTotal)
	return t, nil
}

func maxOf(v []int64) int64 {
	var m int64
	for i := 1; i < len(v); i++ { // skip the powered base station
		if v[i] > m {
			m = v[i]
		}
	}
	return m
}

// RunRatioSweep reproduces Figs. 12 and 13: total transmissions as the
// ratio of join attributes to attributes overall varies, at the default
// fraction.
func RunRatioSweep(cfg Config, presets []workload.Preset, id string) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:     id,
		Title:  fmt.Sprintf("transmissions vs join-attribute ratio (f=%.0f%%, %d nodes)", 100*cfg.DefaultFraction, cfg.Nodes),
		Header: []string{"ratio", "external", "sens-join", "savings"},
	}
	type cell struct {
		ext, sens int64
	}
	cells, err := Fanout(cfg.Parallel, cellJobs(cfg, shortID(id), presets, func(p workload.Preset) (cell, error) {
		r, err := cfg.runner()
		if err != nil {
			return cell{}, err
		}
		delta, _ := workload.Calibrate(r, p, cfg.DefaultFraction)
		src := p.Build(delta)
		ext, _, err := runTotal(r, src, core.External{})
		if err != nil {
			return cell{}, err
		}
		sens, _, err := runTotal(r, src, core.NewSENSJoin())
		if err != nil {
			return cell{}, err
		}
		return cell{ext: ext, sens: sens}, nil
	}))
	if err != nil {
		return nil, err
	}
	prev := 2.0 // presets are ordered high ratio -> low; savings must grow
	monotone := true
	for i, p := range presets {
		c := cells[i]
		s := savings(c.ext, c.sens)
		t.AddRow(p.Name, fmtInt(c.ext), fmtInt(c.sens), fmtFrac(s))
		t.AddTx(c.ext + c.sens)
		if prev <= 1.0 && s < prev-0.02 {
			monotone = false
		}
		prev = s
	}
	if monotone {
		t.Note("savings shrink as the join-attribute ratio grows, but stay positive even at 100%% (quadtree effect) — matches the paper")
	} else {
		t.Note("savings not monotone across ratios — deviation from the paper")
	}
	return t, nil
}

// RunNetworkSize reproduces Fig. 14: total transmissions as the network
// grows at constant density.
func RunNetworkSize(cfg Config, sizes []int, preset workload.Preset) (*Table, error) {
	cfg = cfg.withDefaults()
	if len(sizes) == 0 {
		sizes = []int{1000, 1500, 2000, 2500}
	}
	t := &Table{
		ID:     "E5 / Fig. 14",
		Title:  fmt.Sprintf("transmissions vs network size (%s, f=%.0f%%)", preset.Name, 100*cfg.DefaultFraction),
		Header: []string{"nodes", "external", "sens-join", "savings"},
	}
	type cell struct {
		ext, sens int64
	}
	cells, err := Fanout(cfg.Parallel, cellJobs(cfg, "E5", sizes, func(n int) (cell, error) {
		c := cfg
		c.Nodes = n
		r, err := c.runner()
		if err != nil {
			return cell{}, err
		}
		delta, _ := workload.Calibrate(r, preset, cfg.DefaultFraction)
		src := preset.Build(delta)
		ext, _, err := runTotal(r, src, core.External{})
		if err != nil {
			return cell{}, err
		}
		sens, _, err := runTotal(r, src, core.NewSENSJoin())
		if err != nil {
			return cell{}, err
		}
		return cell{ext: ext, sens: sens}, nil
	}))
	if err != nil {
		return nil, err
	}
	var firstS, lastS float64
	for i, n := range sizes {
		c := cells[i]
		s := savings(c.ext, c.sens)
		t.AddRow(fmtInt(int64(n)), fmtInt(c.ext), fmtInt(c.sens), fmtFrac(s))
		t.AddTx(c.ext + c.sens)
		if i == 0 {
			firstS = s
		}
		lastS = s
	}
	t.Note("savings at %d nodes: %.1f%%; at %d nodes: %.1f%% (paper: slightly superlinear growth)",
		sizes[0], 100*firstS, sizes[len(sizes)-1], 100*lastS)
	return t, nil
}

// RunPacketSize reproduces the §VI-A packet-size experiment: with
// 124-byte packets the external join gains more in total packets, but
// SENS-Join still unburdens the nodes near the root by an order of
// magnitude.
func RunPacketSize(cfg Config, preset workload.Preset) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:     "E6 / §VI-A packet size",
		Title:  fmt.Sprintf("influence of the maximum packet size (%s, f=%.0f%%)", preset.Name, 100*cfg.DefaultFraction),
		Header: []string{"packet", "external", "sens-join", "savings", "max-node ext", "max-node sens", "max-node reduction"},
	}
	for _, size := range []int{48, 124} {
		c := cfg
		c.MaxPacket = size
		r, err := c.runner()
		if err != nil {
			return nil, err
		}
		delta, _ := workload.Calibrate(r, preset, cfg.DefaultFraction)
		src := preset.Build(delta)
		ext, _, err := runTotal(r, src, core.External{})
		if err != nil {
			return nil, err
		}
		extPer := r.Stats.PerNodeTx(core.ExternalPhases...)
		sens, _, err := runTotal(r, src, core.NewSENSJoin())
		if err != nil {
			return nil, err
		}
		sensPer := r.Stats.PerNodeTx(core.SENSPhases...)
		me, ms := maxOf(extPer), maxOf(sensPer)
		t.AddRow(fmt.Sprintf("%dB", size), fmtInt(ext), fmtInt(sens),
			fmtFrac(savings(ext, sens)), fmtInt(me), fmtInt(ms), fmtFactor(me, ms))
		t.AddTx(ext + sens)
	}
	t.Note("paper: at 124B the external join profits more overall, but near-root nodes still see ~an order of magnitude fewer packets with SENS-Join")
	return t, nil
}

// RunStepBreakdown reproduces Fig. 15: SENS-Join's cost per step for
// several result fractions, against the external join.
func RunStepBreakdown(cfg Config, fractions []float64, preset workload.Preset) (*Table, error) {
	cfg = cfg.withDefaults()
	if len(fractions) == 0 {
		fractions = []float64{0.03, 0.05, 0.09, 0.25}
	}
	r, err := cfg.runner()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "E7 / Fig. 15",
		Title:  fmt.Sprintf("cost per SENS-Join step (%s, %d nodes)", preset.Name, cfg.Nodes),
		Header: []string{"run", "ja-collect", "filter-dissem", "final-collect", "total"},
	}
	// External reference at the default fraction.
	delta, _ := workload.Calibrate(r, preset, cfg.DefaultFraction)
	ext, _, err := runTotal(r, preset.Build(delta), core.External{})
	if err != nil {
		return nil, err
	}
	t.AddRow(fmt.Sprintf("external (f=%.0f%%)", 100*cfg.DefaultFraction), "-", "-", "-", fmtInt(ext))
	t.AddTx(ext)

	var jaCosts []int64
	for _, f := range fractions {
		delta, actual := workload.Calibrate(r, preset, f)
		src := preset.Build(delta)
		r.Stats.Reset()
		if _, err := r.Run(src, core.NewSENSJoin(), 0); err != nil {
			return nil, err
		}
		ja := r.Stats.TotalTx(core.PhaseJACollect)
		fd := r.Stats.TotalTx(core.PhaseFilterDissem)
		fc := r.Stats.TotalTx(core.PhaseFinalCollect)
		jaCosts = append(jaCosts, ja)
		t.AddRow(fmt.Sprintf("sens-join (f=%.0f%%)", 100*actual),
			fmtInt(ja), fmtInt(fd), fmtInt(fc), fmtInt(ja+fd+fc))
		t.AddTx(ja + fd + fc)
	}
	fixed := true
	for _, c := range jaCosts[1:] {
		if c != jaCosts[0] {
			fixed = false
		}
	}
	if fixed {
		t.Note("Join-Attribute-Collection cost is independent of the result fraction — matches the paper")
	} else {
		t.Note("Join-Attribute-Collection cost varies: %v — deviation from the paper", jaCosts)
	}
	return t, nil
}

// RunCompressionComparison reproduces the §VI-B in-text experiment:
// Join-Attribute-Collection packets for the raw representation, zlib,
// the bzip2-like BWZ, and the quadtree (temperature + coordinates, i.e.
// three join attributes).
func RunCompressionComparison(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	r, err := cfg.runner()
	if err != nil {
		return nil, err
	}
	preset := workload.Ratio60() // join attrs: temp, x, y
	delta, _ := workload.Calibrate(r, preset, cfg.DefaultFraction)
	src := preset.Build(delta)

	t := &Table{
		ID:     "E8 / §VI-B compression",
		Title:  fmt.Sprintf("collection packets by representation (3 join attrs, %d nodes)", cfg.Nodes),
		Header: []string{"representation", "ja-collect packets", "vs raw"},
	}
	reps := []core.Rep{
		core.RawRep{},
		core.CompressedRep{Codec: compress.BWZ{}},
		core.CompressedRep{Codec: compress.Zlib{}},
		core.QuadRep{},
	}
	var raw int64
	for _, rep := range reps {
		r.Stats.Reset()
		m := &core.SENSJoin{Options: core.Options{Rep: rep}}
		if _, err := r.Run(src, m, 0); err != nil {
			return nil, err
		}
		ja := r.Stats.TotalTx(core.PhaseJACollect)
		if _, ok := rep.(core.RawRep); ok {
			raw = ja
		}
		rel := "-"
		if raw > 0 {
			rel = fmt.Sprintf("%.0f%%", 100*float64(ja)/float64(raw))
		}
		name := rep.Name()
		if name == "raw" {
			name = "none (raw tuples)"
		}
		t.AddRow(name, fmtInt(ja), rel)
		t.AddTx(ja)
	}
	t.Note("paper (1500 nodes): none 5619, bzip2 5666 (101%%), zlib 4571 (81%%), quadtree 2762 (49%%)")
	return t, nil
}

// RunQuadInfluence reproduces Fig. 16: external join vs SENS_No-Quad vs
// SENS-Join at a ~4%% result fraction.
func RunQuadInfluence(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	r, err := cfg.runner()
	if err != nil {
		return nil, err
	}
	preset := workload.Ratio60()
	delta, actual := workload.Calibrate(r, preset, 0.04)
	src := preset.Build(delta)

	t := &Table{
		ID:     "E9 / Fig. 16",
		Title:  fmt.Sprintf("influence of the quadtree representation (f=%.1f%%, %d nodes)", 100*actual, cfg.Nodes),
		Header: []string{"method", "ja-collect", "total"},
	}
	ext, _, err := runTotal(r, src, core.External{})
	if err != nil {
		return nil, err
	}
	t.AddRow("external join", "-", fmtInt(ext))
	t.AddTx(ext)

	var noquadJA, quadJA int64
	for _, m := range []core.Method{
		&core.SENSJoin{Options: core.Options{Rep: core.RawRep{}}},
		core.NewSENSJoin(),
	} {
		r.Stats.Reset()
		if _, err := r.Run(src, m, 0); err != nil {
			return nil, err
		}
		ja := r.Stats.TotalTx(core.PhaseJACollect)
		total := r.Stats.TotalTx(core.SENSPhases...)
		name := "SENS_No-Quad"
		if m.Name() == "sens-join" {
			name = "SENS-Join"
			quadJA = ja
		} else {
			noquadJA = ja
		}
		t.AddRow(name, fmtInt(ja), fmtInt(total))
		t.AddTx(total)
	}
	t.Note("collection saves %.0f%% vs external without the quadtree (paper: ~38%%) and the quadtree roughly halves it again (here %.0f%% of no-quad)",
		100*(1-float64(noquadJA)/float64(ext)), 100*float64(quadJA)/float64(noquadJA))
	return t, nil
}

// RunTreecutAblation sweeps the Treecut threshold Dmax (design-choice
// discussion of §IV-E; 0 disables the mechanism).
func RunTreecutAblation(cfg Config, preset workload.Preset) (*Table, error) {
	cfg = cfg.withDefaults()
	r, err := cfg.runner()
	if err != nil {
		return nil, err
	}
	delta, _ := workload.Calibrate(r, preset, cfg.DefaultFraction)
	src := preset.Build(delta)
	t := &Table{
		ID:     "A1 / §IV-E Dmax",
		Title:  fmt.Sprintf("Treecut threshold ablation (%s, f=%.0f%%)", preset.Name, 100*cfg.DefaultFraction),
		Header: []string{"Dmax", "ja-collect", "total"},
	}
	type cell struct {
		label     string
		ja, total int64
	}
	cells, err := Fanout(cfg.Parallel, cellJobs(cfg, "A1", []int{-1, 10, 30, 60, 120}, func(dmax int) (cell, error) {
		opt := core.Options{Dmax: dmax}
		label := fmtInt(int64(dmax))
		if dmax < 0 {
			opt = core.Options{DisableTreecut: true}
			label = "off"
		}
		cr, err := cfg.runner()
		if err != nil {
			return cell{}, err
		}
		if _, err := cr.Run(src, &core.SENSJoin{Options: opt}, 0); err != nil {
			return cell{}, err
		}
		return cell{label: label, ja: cr.Stats.TotalTx(core.PhaseJACollect), total: cr.Stats.TotalTx(core.SENSPhases...)}, nil
	}))
	if err != nil {
		return nil, err
	}
	for _, c := range cells {
		t.AddRow(c.label, fmtInt(c.ja), fmtInt(c.total))
		t.AddTx(c.total)
	}
	t.Note("the paper argues Dmax ~30B (below the packet payload) balances treecut savings against foregone filtering")
	return t, nil
}

// RunFilterLimitAblation sweeps the Selective-Filter-Forwarding memory
// limit (§IV-C; "off" disables pruning entirely).
func RunFilterLimitAblation(cfg Config, preset workload.Preset) (*Table, error) {
	cfg = cfg.withDefaults()
	r, err := cfg.runner()
	if err != nil {
		return nil, err
	}
	delta, _ := workload.Calibrate(r, preset, cfg.DefaultFraction)
	src := preset.Build(delta)
	t := &Table{
		ID:     "A2 / §IV-C filter memory",
		Title:  fmt.Sprintf("Selective Filter Forwarding ablation (%s, f=%.0f%%)", preset.Name, 100*cfg.DefaultFraction),
		Header: []string{"limit", "filter-dissem", "total"},
	}
	type cell struct {
		label     string
		fd, total int64
	}
	cells, err := Fanout(cfg.Parallel, cellJobs(cfg, "A2", []int{-1, 50, 500, 5000}, func(limit int) (cell, error) {
		opt := core.Options{FilterMemLimit: limit}
		label := fmtInt(int64(limit)) + "B"
		if limit < 0 {
			opt = core.Options{DisableSelectiveForwarding: true}
			label = "off"
		}
		cr, err := cfg.runner()
		if err != nil {
			return cell{}, err
		}
		if _, err := cr.Run(src, &core.SENSJoin{Options: opt}, 0); err != nil {
			return cell{}, err
		}
		return cell{label: label, fd: cr.Stats.TotalTx(core.PhaseFilterDissem), total: cr.Stats.TotalTx(core.SENSPhases...)}, nil
	}))
	if err != nil {
		return nil, err
	}
	for _, c := range cells {
		t.AddRow(c.label, fmtInt(c.fd), fmtInt(c.total))
		t.AddTx(c.total)
	}
	t.Note("the paper argues the 500B limit barely hurts: the structure only outgrows it near the root, where pruning saves little anyway")
	return t, nil
}

// RunIncrementalFilter measures the extension experiment X1: filter
// dissemination bytes per round of a continuous query, full re-send vs
// incremental deltas (the paper's §VIII future work). A low-noise,
// slowly drifting environment provides the temporal correlation the idea
// exploits.
func RunIncrementalFilter(cfg Config, rounds int, period float64) (*Table, error) {
	cfg = cfg.withDefaults()
	if rounds <= 0 {
		rounds = 8
	}
	if period <= 0 {
		period = 30
	}
	preset := workload.Ratio60()

	run := func(m core.Method) ([]int64, int64, error) {
		r, err := cfg.runner()
		if err != nil {
			return nil, 0, err
		}
		r.Env = quietEnv(r, cfg.Seed)
		delta, _ := workload.Calibrate(r, preset, cfg.DefaultFraction)
		src := preset.Build(delta)
		var perRound []int64
		var prev int64
		for round := 0; round < rounds; round++ {
			if _, err := r.Run(src, m, float64(round)*period); err != nil {
				return nil, 0, err
			}
			cur := r.Stats.TotalTxBytes(core.PhaseFilterDissem)
			perRound = append(perRound, cur-prev)
			prev = cur
		}
		return perRound, r.Stats.TotalTx(m.Phases()...), nil
	}

	full, fullTx, err := run(core.NewSENSJoin())
	if err != nil {
		return nil, err
	}
	incr, incrTx, err := run(core.NewContinuousSENSJoin())
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "X1 / §VIII future work",
		Title:  fmt.Sprintf("incremental filter dissemination, bytes per round (%d nodes, %.0f s period)", cfg.Nodes, period),
		Header: []string{"round", "full filter", "incremental", "saved"},
	}
	var sumFull, sumIncr int64
	for i := 0; i < rounds; i++ {
		t.AddRow(fmtInt(int64(i+1)), fmtInt(full[i]), fmtInt(incr[i]), fmtFrac(savings(full[i], incr[i])))
		sumFull += full[i]
		sumIncr += incr[i]
	}
	t.Note("total filter bytes: full %d vs incremental %d (%.0f%% saved); round 1 is identical by design",
		sumFull, sumIncr, 100*savings(sumFull, sumIncr))
	t.AddTx(fullTx + incrTx)
	return t, nil
}

// quietEnv builds the temporal-correlation-friendly environment.
func quietEnv(r *core.Runner, seed int64) *field.Environment {
	return field.QuietEnvironment(r.Dep.Area, seed+1000)
}

// RunRelatedWork measures the extension experiment X2: the specialized
// join methods of §II (mediated join of Coman et al., in-network
// semi-join) against the external join and SENS-Join, in the paper's
// general setting and in the mediated join's niche (members confined to
// a small far region, highly selective join). It verifies the paper's
// statement that the external join beats the specialized methods on
// arbitrary placements.
func RunRelatedWork(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:     "X2 / §II related work",
		Title:  fmt.Sprintf("specialized join methods vs external and SENS-Join (%d nodes)", cfg.Nodes),
		Header: []string{"setting", "method", "packets", "vs external"},
	}
	methods := []core.Method{core.External{}, core.Mediated{}, core.SemiJoin{}, core.NewSENSJoin()}

	// General setting: arbitrary placements, default fraction.
	r, err := cfg.runner()
	if err != nil {
		return nil, err
	}
	preset := workload.Ratio33()
	delta, _ := workload.Calibrate(r, preset, cfg.DefaultFraction)
	src := preset.Build(delta)
	var extGeneral int64
	for _, m := range methods {
		pk, _, err := runTotal(r, src, m)
		if err != nil {
			return nil, err
		}
		if m.Name() == "external-join" {
			extGeneral = pk
		}
		t.AddRow("general", m.Name(), fmtInt(pk), fmt.Sprintf("%.0f%%", 100*float64(pk)/float64(extGeneral)))
		t.AddTx(pk)
	}

	// Niche setting: members clustered in a far region, selective join.
	r2, err := cfg.runner()
	if err != nil {
		return nil, err
	}
	far := r2.Dep.Area.Lerp(0.85, 0.85)
	radius := r2.Dep.Area.Width() / 8
	r2.Member = func(id topology.NodeID, rel string) bool {
		return geom.Dist(r2.Dep.Pos[id], far) < radius
	}
	nicheSrc := "SELECT A.temp, B.temp FROM Sensors A, Sensors B WHERE A.temp - B.temp > 5 ONCE"
	var extNiche int64
	for _, m := range methods {
		r2.Stats.Reset()
		if _, err := r2.Run(nicheSrc, m, 0); err != nil {
			return nil, err
		}
		pk := r2.Stats.TotalTx(m.Phases()...)
		if m.Name() == "external-join" {
			extNiche = pk
		}
		t.AddRow("niche (clustered, selective)", m.Name(), fmtInt(pk), fmt.Sprintf("%.0f%%", 100*float64(pk)/float64(extNiche)))
		t.AddTx(pk)
	}
	t.Note("paper §VI: the external join outperforms the specialized methods on arbitrary placements; they only win with small, close regions and high selectivity")
	return t, nil
}

// RunLifetime measures the extension experiment X3: the network
// lifetime under repeated query rounds. The paper's conclusion claims
// the per-node savings "prolong the lifetime of the network
// significantly"; this experiment quantifies it. Lifetime is rounds
// until the first (most loaded) sensor node depletes a fixed radio
// energy budget under a CC2420-class model; the extension factor is
// budget-independent.
func RunLifetime(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	const batteryJ = 50.0 // radio share of a small battery; scale only
	t := &Table{
		ID:     "X3 / network lifetime",
		Title:  fmt.Sprintf("rounds until first node death (%.0f J radio budget, %d nodes)", batteryJ, cfg.Nodes),
		Header: []string{"workload", "method", "bottleneck J/round", "lifetime rounds", "extension"},
	}
	model := stats.CC2420Model()
	for _, preset := range []workload.Preset{workload.Ratio33(), workload.Ratio60()} {
		r, err := cfg.runner()
		if err != nil {
			return nil, err
		}
		delta, _ := workload.Calibrate(r, preset, cfg.DefaultFraction)
		src := preset.Build(delta)
		var extRounds int
		for _, m := range []core.Method{core.External{}, core.NewSENSJoin()} {
			r.Stats.Reset()
			if _, err := r.Run(src, m, 0); err != nil {
				return nil, err
			}
			energy := r.Stats.PerNodeEnergy(model, m.Phases()...)
			rounds, dead := stats.LifetimeRounds(energy, batteryJ)
			_ = dead
			ext := "-"
			if m.Name() == "external-join" {
				extRounds = rounds
			} else if extRounds > 0 {
				ext = fmt.Sprintf("%.1fx", float64(rounds)/float64(extRounds))
			}
			bottleneck := 0.0
			for i := 1; i < len(energy); i++ {
				if energy[i] > bottleneck {
					bottleneck = energy[i]
				}
			}
			t.AddRow(preset.Name, m.Name(), fmt.Sprintf("%.4f", bottleneck), fmtInt(int64(rounds)), ext)
			t.AddTx(r.Stats.TotalTx(m.Phases()...))
		}
	}
	t.Note("paper conclusion: the most-loaded-node savings prolong the network lifetime significantly")
	return t, nil
}

// RunResponseTime measures the extension experiment X4: simulated
// response times of SENS-Join vs the external join across result
// fractions. The paper (§VII) bounds SENS-Join's response time by about
// twice the external join's: the pre-computation adds one collection
// wave (of smaller data) plus the filter dissemination.
func RunResponseTime(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	preset := workload.Ratio33()
	t := &Table{
		ID:     "X4 / §VII response time",
		Title:  fmt.Sprintf("simulated response time (%s, %d nodes)", preset.Name, cfg.Nodes),
		Header: []string{"fraction", "external (s)", "sens-join (s)", "ratio"},
	}
	type cell struct {
		actual      float64
		extT, sensT float64
		ext, sens   int64
	}
	cells, err := Fanout(cfg.Parallel, cellJobs(cfg, "X4", []float64{0.01, 0.05, 0.25, 0.60}, func(f float64) (cell, error) {
		r, err := cfg.runner()
		if err != nil {
			return cell{}, err
		}
		delta, actual := workload.Calibrate(r, preset, f)
		src := preset.Build(delta)
		ext, extRes, err := runTotal(r, src, core.External{})
		if err != nil {
			return cell{}, err
		}
		sens, sensRes, err := runTotal(r, src, core.NewSENSJoin())
		if err != nil {
			return cell{}, err
		}
		return cell{actual: actual, extT: extRes.ResponseTime, sensT: sensRes.ResponseTime, ext: ext, sens: sens}, nil
	}))
	if err != nil {
		return nil, err
	}
	worst := 0.0
	for _, c := range cells {
		ratio := c.sensT / c.extT
		if ratio > worst {
			worst = ratio
		}
		t.AddRow(fmtFrac(c.actual), fmt.Sprintf("%.1f", c.extT),
			fmt.Sprintf("%.1f", c.sensT), fmt.Sprintf("%.2fx", ratio))
		t.AddTx(c.ext + c.sens)
	}
	t.Note("worst ratio %.2fx (paper §VII: upper bounded by ~2x)", worst)
	return t, nil
}

// RunMemory measures the extension experiment X5: the per-node memory
// high-water marks of SENS-Join against the paper's bounds (§IV-B: Dmax
// per child for proxies; §IV-C: the configured limit for the subtree
// structure; §VII discusses the trade-off).
func RunMemory(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	r, err := cfg.runner()
	if err != nil {
		return nil, err
	}
	preset := workload.Ratio60()
	delta, actual := workload.Calibrate(r, preset, cfg.DefaultFraction)
	src := preset.Build(delta)
	m := core.NewSENSJoin()
	r.Stats.Reset()
	if _, err := r.Run(src, m, 0); err != nil {
		return nil, err
	}
	maxChildren := 0
	for _, ch := range r.Tree.Children {
		if len(ch) > maxChildren {
			maxChildren = len(ch)
		}
	}
	t := &Table{
		ID:     "X5 / §VII memory",
		Title:  fmt.Sprintf("per-node memory high-water marks (%s, f=%.1f%%, %d nodes)", preset.Name, 100*actual, cfg.Nodes),
		Header: []string{"store", "max observed", "bound"},
	}
	rep := m.Memory
	t.AddRow("Treecut proxy (complete tuples)", fmt.Sprintf("%d B", rep.MaxProxyBytes),
		fmt.Sprintf("Dmax x children = %d B", 30*maxChildren))
	t.AddRow("subtree join-attr structure", fmt.Sprintf("%d B", rep.MaxSubtreeBytes), "500 B limit")
	t.AddRow("received filter (transient)", fmt.Sprintf("%d B", rep.MaxFilterBytes), "-")
	t.AddRow("nodes over the structure limit", fmtInt(int64(rep.OverflowNodes)), "-")
	t.Note("both stores stay within the paper's bounds; a SunSPOT-class node (512 KB RAM) uses a tiny fraction")
	t.AddTx(r.Stats.TotalTx(core.SENSPhases...))
	return t, nil
}

// All runs every experiment at the given configuration, in paper order.
// Whole experiments fan out over cfg.Parallel workers (on top of the
// per-experiment sweep-cell fan-out); the returned tables are in
// declaration order and byte-identical for every worker count.
func All(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	jobs := []func() (*Table, error){
		func() (*Table, error) { return RunOverallSavings(cfg, workload.Ratio33()) },
		func() (*Table, error) { return RunOverallSavings(cfg, workload.Ratio60()) },
		func() (*Table, error) { return RunPerNodeSavings(cfg, workload.Ratio33()) },
		func() (*Table, error) { return RunPerNodeSavings(cfg, workload.Ratio60()) },
		func() (*Table, error) { return RunRatioSweep(cfg, workload.RatioSweep3JA(), "E3 / Fig. 12") },
		func() (*Table, error) { return RunRatioSweep(cfg, workload.RatioSweep1JA(), "E4 / Fig. 13") },
		func() (*Table, error) { return RunNetworkSize(cfg, nil, workload.Ratio33()) },
		func() (*Table, error) { return RunPacketSize(cfg, workload.Ratio33()) },
		func() (*Table, error) { return RunStepBreakdown(cfg, nil, workload.Ratio60()) },
		func() (*Table, error) { return RunCompressionComparison(cfg) },
		func() (*Table, error) { return RunQuadInfluence(cfg) },
		func() (*Table, error) { return RunTreecutAblation(cfg, workload.Ratio33()) },
		func() (*Table, error) { return RunFilterLimitAblation(cfg, workload.Ratio33()) },
		func() (*Table, error) { return RunIncrementalFilter(cfg, 0, 0) },
		func() (*Table, error) { return RunRelatedWork(cfg) },
		func() (*Table, error) { return RunLifetime(cfg) },
		func() (*Table, error) { return RunResponseTime(cfg) },
		func() (*Table, error) { return RunMemory(cfg) },
		func() (*Table, error) { return RunEnergyLifetime(cfg) },
	}
	// Whole-experiment completion reports under the pseudo-id
	// "experiments"; the fanned-out sweeps inside report their own cells.
	cfg.Progress.Begin("experiments", len(jobs))
	wrapped := make([]func() (*Table, error), len(jobs))
	for i, job := range jobs {
		wrapped[i] = func() (*Table, error) {
			cfg.hm.expInflight.Inc()
			t, err := job()
			cfg.hm.expInflight.Dec()
			cfg.Progress.CellDone("experiments", err == nil)
			return t, err
		}
	}
	return Fanout(cfg.Parallel, wrapped)
}

// RunLossResilience measures the robustness extension experiment L1:
// SENS-Join and the external join under packet loss with hop-by-hop
// reliable transport (ACKs, bounded retransmissions, duplicate
// suppression) and scoped recovery. For each loss rate it reports the
// total packets over the method's phases plus recovery, how many of
// them were retransmissions and ACKs, the recovery rounds, the
// completeness verdict and the result size against the oracle. Loss
// draws are seeded per rate, so the table is byte-identical for every
// -parallel value.
func RunLossResilience(cfg Config, rates []float64) (*Table, error) {
	cfg = cfg.withDefaults()
	if len(rates) == 0 {
		rates = []float64{0.01, 0.05, 0.10, 0.20}
	}
	preset := workload.Ratio33()
	t := &Table{
		ID: "L1 / loss resilience",
		Title: fmt.Sprintf("reliable transport under packet loss (%s, f=%.0f%%, %d nodes)",
			preset.Name, 100*cfg.DefaultFraction, cfg.Nodes),
		Header: []string{"loss", "method", "packets", "retx", "acks", "overhead", "recovery", "complete", "rows"},
	}
	type mrow struct {
		pk, retx, ack int64
		rounds        int
		complete      bool
		rows, truth   int
	}
	type cell struct{ ext, sens mrow }
	run := func(rate float64, m core.Method) (mrow, error) {
		r, err := cfg.runner()
		if err != nil {
			return mrow{}, err
		}
		r.EnableReliableTransport(netsim.ReliableConfig{})
		// One loss stream per (rate, method): draws never depend on what
		// ran before, which keeps cells order- and worker-independent.
		seed := cfg.Seed + int64(rate*100000)
		if m.Name() != "external-join" {
			seed += 7
		}
		r.Net.SetLossRate(rate, seed)
		delta, _ := workload.Calibrate(r, preset, cfg.DefaultFraction)
		src := preset.Build(delta)
		x, err := r.ExecSQL(src, 0)
		if err != nil {
			return mrow{}, err
		}
		truth, err := core.GroundTruth(x)
		if err != nil {
			return mrow{}, err
		}
		res, err := r.Run(src, m, 0)
		if err != nil {
			return mrow{}, err
		}
		phases := append(append([]string(nil), m.Phases()...), core.PhaseRecovery)
		return mrow{
			pk:       r.Stats.TotalTx(phases...),
			retx:     r.Stats.TotalRetx(phases...),
			ack:      r.Stats.TotalAck(phases...),
			rounds:   res.RecoveryRounds,
			complete: res.Complete,
			rows:     len(res.Rows),
			truth:    len(truth.Rows),
		}, nil
	}
	cells, err := Fanout(cfg.Parallel, cellJobs(cfg, "L1", rates, func(rate float64) (cell, error) {
		ext, err := run(rate, core.External{})
		if err != nil {
			return cell{}, err
		}
		sens, err := run(rate, core.NewSENSJoin())
		if err != nil {
			return cell{}, err
		}
		return cell{ext: ext, sens: sens}, nil
	}))
	if err != nil {
		return nil, err
	}
	allComplete, allExact := true, true
	for i, rate := range rates {
		c := cells[i]
		for _, mc := range []struct {
			name string
			r    mrow
		}{{"external-join", c.ext}, {"sens-join", c.sens}} {
			payload := mc.r.pk - mc.r.retx - mc.r.ack
			overhead := "-"
			if payload > 0 {
				overhead = fmt.Sprintf("%.1f%%", 100*float64(mc.r.retx+mc.r.ack)/float64(payload))
			}
			complete := "yes"
			if !mc.r.complete {
				complete = "NO"
				allComplete = false
			}
			if mc.r.complete && mc.r.rows != mc.r.truth {
				allExact = false
			}
			t.AddRow(fmtFrac(rate), mc.name, fmtInt(mc.r.pk), fmtInt(mc.r.retx), fmtInt(mc.r.ack),
				overhead, fmtInt(int64(mc.r.rounds)), complete, fmtInt(int64(mc.r.rows)))
			t.AddTx(mc.r.pk)
		}
	}
	if allComplete && allExact {
		t.Note("every run complete and oracle-exact: reliable transport plus scoped recovery rides out the loss")
	} else if allExact {
		t.Note("some runs stayed incomplete after recovery; every complete run was oracle-exact")
	} else {
		t.Note("a complete run deviated from the oracle — investigate")
	}
	return t, nil
}
