package bench

import (
	"fmt"
	"hash/fnv"
	"strings"
	"testing"

	"sensjoin/internal/core"
)

// shardSummary runs both join methods on a runner built with the given
// shard count and renders every table-visible observable to one string:
// per-phase packet totals, an FNV hash of the per-node transmission
// vector, and the result fields the experiment tables report.
func shardSummary(t *testing.T, nodes int, shards int) string {
	t.Helper()
	r, err := core.NewRunner(core.SetupConfig{
		Nodes: nodes, Seed: 7,
		Shards: shards, ShardWorkers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	src := "SELECT A.temp, B.temp FROM Sensors A, Sensors B WHERE A.temp - B.temp > 3 ONCE"
	var b strings.Builder
	for _, m := range []core.Method{core.External{}, core.NewSENSJoin()} {
		total, res, err := runTotal(r, src, m)
		if err != nil {
			t.Fatal(err)
		}
		h := fnv.New64a()
		for _, v := range r.Stats.PerNodeTx(m.Phases()...) {
			fmt.Fprintf(h, "%d,", v)
		}
		fmt.Fprintf(&b, "%s total=%d pernode=%x rt=%.9f rows=%d contrib=%d complete=%v\n",
			m.Name(), total, h.Sum64(), res.ResponseTime, len(res.Rows),
			res.ContributingNodes, res.Complete)
		for _, ph := range m.Phases() {
			fmt.Fprintf(&b, "  %s=%d\n", ph, r.Stats.TotalTx(ph))
		}
	}
	return b.String()
}

// TestShardCountDeterminism is the tentpole's acceptance bar: every
// protocol observable the experiment tables are built from must be
// byte-identical for shards ∈ {0, 1, 2, 4, 8}. ShardWorkers=4 forces
// real goroutines per window even on one CPU, so -race exercises the
// cross-region hand-off.
func TestShardCountDeterminism(t *testing.T) {
	const nodes = 500
	want := shardSummary(t, nodes, 0)
	for _, shards := range []int{1, 2, 4, 8} {
		if got := shardSummary(t, nodes, shards); got != want {
			t.Fatalf("shards=%d diverged:\n got:\n%s\nwant:\n%s", shards, got, want)
		}
	}
}
