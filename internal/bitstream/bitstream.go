// Package bitstream provides MSB-first bit-level readers and writers.
//
// The quadtree wire format of SENS-Join (paper §V-C, Fig. 9) is a dense
// bitstring of index nodes, quadrant masks and relative point encodings;
// this package is the substrate it is serialized with. Bits are packed
// most-significant-bit first so that a lexicographic comparison of the
// produced bytes matches a lexicographic comparison of the bit sequences.
package bitstream

import "fmt"

// Writer accumulates bits MSB-first into a byte slice. Pending bits are
// buffered in a uint64 accumulator and flushed to the byte buffer a
// whole byte at a time, so WriteBits costs a few shifts instead of one
// buffer access per bit.
// The zero value is ready to use.
type Writer struct {
	buf   []byte
	nbits int
	// acc holds the trailing pend (< 8) bits, MSB-first in its low bits.
	acc  uint64
	pend int
	// tail is set while buf ends in a materialized partial byte (see
	// Bytes); the next write peels it off and resumes from acc.
	tail bool
}

// NewWriter returns an empty writer with capacity for sizeHint bits.
func NewWriter(sizeHint int) *Writer {
	return &Writer{buf: make([]byte, 0, (sizeHint+7)/8)}
}

// unmaterialize drops the partial byte a Bytes call appended; its bits
// still live in acc.
func (w *Writer) unmaterialize() {
	if w.tail {
		w.buf = w.buf[:len(w.buf)-1]
		w.tail = false
	}
}

// WriteBit appends a single bit (any non-zero value counts as 1).
func (w *Writer) WriteBit(b uint) {
	w.unmaterialize()
	bit := uint64(0)
	if b != 0 {
		bit = 1
	}
	w.acc = w.acc<<1 | bit
	w.pend++
	w.nbits++
	if w.pend == 8 {
		w.buf = append(w.buf, byte(w.acc))
		w.acc, w.pend = 0, 0
	}
}

// WriteBits appends the n least-significant bits of v, most significant
// of those first. n must be in [0, 64].
func (w *Writer) WriteBits(v uint64, n int) {
	if n < 0 || n > 64 {
		panic(fmt.Sprintf("bitstream: WriteBits with n=%d", n))
	}
	w.unmaterialize()
	// Chunks of at most 32 bits keep acc within 64 bits (pend < 8).
	for n > 32 {
		n -= 32
		w.writeChunk(uint64(uint32(v>>uint(n))), 32)
	}
	if n > 0 {
		w.writeChunk(v&(1<<uint(n)-1), n)
	}
}

// writeChunk appends the n (<= 32) low bits of v, flushing whole bytes.
func (w *Writer) writeChunk(v uint64, n int) {
	acc := w.acc<<uint(n) | v
	k := w.pend + n
	for k >= 8 {
		k -= 8
		w.buf = append(w.buf, byte(acc>>uint(k)))
	}
	w.acc = acc & (1<<uint(k) - 1)
	w.pend = k
	w.nbits += n
}

// WriteBool appends 1 for true, 0 for false.
func (w *Writer) WriteBool(b bool) {
	if b {
		w.WriteBit(1)
	} else {
		w.WriteBit(0)
	}
}

// Len returns the number of bits written so far.
func (w *Writer) Len() int { return w.nbits }

// ByteLen returns the number of bytes needed to hold the written bits.
func (w *Writer) ByteLen() int { return (w.nbits + 7) / 8 }

// Bytes returns the packed bits; trailing bits of the last byte are zero.
// The returned slice aliases the writer's buffer.
func (w *Writer) Bytes() []byte {
	if w.pend > 0 && !w.tail {
		w.buf = append(w.buf, byte(w.acc<<uint(8-w.pend)))
		w.tail = true
	}
	return w.buf
}

// Reset clears the writer for reuse, keeping the allocated buffer.
func (w *Writer) Reset() {
	w.buf = w.buf[:0]
	w.nbits = 0
	w.acc, w.pend = 0, 0
	w.tail = false
}

// Reader consumes bits MSB-first from a byte slice.
type Reader struct {
	buf   []byte
	pos   int // bit position
	nbits int // total available bits
	err   error
}

// NewReader returns a reader over the first nbits bits of buf.
// If nbits is negative, all of buf (8*len) is available.
func NewReader(buf []byte, nbits int) *Reader {
	if nbits < 0 || nbits > 8*len(buf) {
		nbits = 8 * len(buf)
	}
	return &Reader{buf: buf, nbits: nbits}
}

// Reset points the reader at the first nbits bits of buf, clearing any
// recorded error. If nbits is negative, all of buf (8*len) is available.
// It allows a zero-value or stack-allocated Reader to be reused without
// heap allocation.
func (r *Reader) Reset(buf []byte, nbits int) {
	if nbits < 0 || nbits > 8*len(buf) {
		nbits = 8 * len(buf)
	}
	r.buf = buf
	r.nbits = nbits
	r.pos = 0
	r.err = nil
}

// ErrShortRead is recorded when a read runs past the end of the stream.
var ErrShortRead = fmt.Errorf("bitstream: read past end of stream")

// ReadBit returns the next bit, or 0 with a recorded error when exhausted.
func (r *Reader) ReadBit() uint {
	if r.pos >= r.nbits {
		r.err = ErrShortRead
		return 0
	}
	b := uint(r.buf[r.pos/8]>>(7-uint(r.pos%8))) & 1
	r.pos++
	return b
}

// ReadBits returns the next n bits as the low bits of a uint64.
func (r *Reader) ReadBits(n int) uint64 {
	if n < 0 || n > 64 {
		panic(fmt.Sprintf("bitstream: ReadBits with n=%d", n))
	}
	var v uint64
	for i := 0; i < n; i++ {
		v = v<<1 | uint64(r.ReadBit())
	}
	return v
}

// ReadBool returns the next bit as a boolean.
func (r *Reader) ReadBool() bool { return r.ReadBit() != 0 }

// Remaining reports how many bits are left to read.
func (r *Reader) Remaining() int { return r.nbits - r.pos }

// Pos returns the current bit position.
func (r *Reader) Pos() int { return r.pos }

// Err returns the first error encountered (only ErrShortRead is possible).
func (r *Reader) Err() error { return r.err }
