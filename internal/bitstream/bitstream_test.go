package bitstream

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadSingleBits(t *testing.T) {
	w := NewWriter(16)
	bits := []uint{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1}
	for _, b := range bits {
		w.WriteBit(b)
	}
	if w.Len() != len(bits) {
		t.Fatalf("Len = %d, want %d", w.Len(), len(bits))
	}
	r := NewReader(w.Bytes(), w.Len())
	for i, want := range bits {
		if got := r.ReadBit(); got != want {
			t.Fatalf("bit %d = %d, want %d", i, got, want)
		}
	}
	if r.Remaining() != 0 {
		t.Fatalf("Remaining = %d, want 0", r.Remaining())
	}
	if r.Err() != nil {
		t.Fatalf("unexpected error: %v", r.Err())
	}
}

func TestMSBFirstPacking(t *testing.T) {
	w := NewWriter(8)
	w.WriteBits(0b1011, 4)
	w.WriteBits(0b0110, 4)
	got := w.Bytes()
	if len(got) != 1 || got[0] != 0b10110110 {
		t.Fatalf("Bytes = %08b, want 10110110", got[0])
	}
}

func TestWriteBitsZeroWidth(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(123, 0)
	if w.Len() != 0 {
		t.Fatalf("Len = %d, want 0", w.Len())
	}
}

func TestReadPastEnd(t *testing.T) {
	w := NewWriter(4)
	w.WriteBits(0b101, 3)
	r := NewReader(w.Bytes(), w.Len())
	r.ReadBits(3)
	if r.Err() != nil {
		t.Fatalf("premature error: %v", r.Err())
	}
	if got := r.ReadBit(); got != 0 {
		t.Fatalf("past-end bit = %d, want 0", got)
	}
	if r.Err() != ErrShortRead {
		t.Fatalf("Err = %v, want ErrShortRead", r.Err())
	}
}

func TestNegativeNBitsUsesWholeBuffer(t *testing.T) {
	r := NewReader([]byte{0xff, 0x00}, -1)
	if r.Remaining() != 16 {
		t.Fatalf("Remaining = %d, want 16", r.Remaining())
	}
}

func TestReset(t *testing.T) {
	w := NewWriter(8)
	w.WriteBits(0xff, 8)
	w.Reset()
	if w.Len() != 0 || len(w.Bytes()) != 0 {
		t.Fatalf("Reset did not clear writer: len=%d bytes=%d", w.Len(), len(w.Bytes()))
	}
	w.WriteBits(0b1, 1)
	if w.Bytes()[0] != 0x80 {
		t.Fatalf("after reset, first bit = %08b, want 10000000", w.Bytes()[0])
	}
}

func TestWriteBool(t *testing.T) {
	w := NewWriter(2)
	w.WriteBool(true)
	w.WriteBool(false)
	r := NewReader(w.Bytes(), w.Len())
	if !r.ReadBool() || r.ReadBool() {
		t.Fatal("bool roundtrip failed")
	}
}

func TestWriteBitsPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n=65")
		}
	}()
	w := NewWriter(0)
	w.WriteBits(0, 65)
}

// Property: any sequence of (value, width) writes reads back identically.
func TestQuickRoundtrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%50) + 1
		widths := make([]int, count)
		vals := make([]uint64, count)
		w := NewWriter(64 * count)
		for i := 0; i < count; i++ {
			widths[i] = rng.Intn(65)
			vals[i] = rng.Uint64()
			if widths[i] < 64 {
				vals[i] &= (1 << uint(widths[i])) - 1
			}
			w.WriteBits(vals[i], widths[i])
		}
		r := NewReader(w.Bytes(), w.Len())
		for i := 0; i < count; i++ {
			if got := r.ReadBits(widths[i]); got != vals[i] {
				return false
			}
		}
		return r.Err() == nil && r.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: bit length of the writer equals the sum of written widths and
// ByteLen is its ceiling.
func TestQuickLengths(t *testing.T) {
	f := func(widths []uint8) bool {
		w := NewWriter(0)
		total := 0
		for _, ww := range widths {
			n := int(ww % 65)
			w.WriteBits(0, n)
			total += n
		}
		return w.Len() == total && w.ByteLen() == (total+7)/8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Accumulator boundary cases: widths that straddle the pending-bit
// count, full 64-bit writes at every phase offset, and interleaved
// Bytes() calls that materialize the partial tail mid-stream.
func TestAccumulatorBoundaries(t *testing.T) {
	widths := []int{1, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64}
	for phase := 0; phase < 8; phase++ {
		w := NewWriter(0)
		var wantBits []uint
		push := func(v uint64, n int) {
			w.WriteBits(v, n)
			for i := n - 1; i >= 0; i-- {
				wantBits = append(wantBits, uint(v>>uint(i))&1)
			}
		}
		for i := 0; i < phase; i++ {
			push(uint64(i)&1, 1)
		}
		for i, n := range widths {
			v := uint64(0xDEADBEEFCAFEF00D) >> uint(i)
			push(v, n)
			// Materializing the tail mid-stream must not disturb
			// subsequent writes.
			if got := w.Bytes(); len(got) != w.ByteLen() {
				t.Fatalf("phase %d: Bytes len %d, ByteLen %d", phase, len(got), w.ByteLen())
			}
		}
		if w.Len() != len(wantBits) {
			t.Fatalf("phase %d: Len %d, want %d", phase, w.Len(), len(wantBits))
		}
		r := NewReader(w.Bytes(), w.Len())
		for i, want := range wantBits {
			if got := r.ReadBit(); got != want&1 {
				t.Fatalf("phase %d: bit %d = %d, want %d", phase, i, got, want&1)
			}
		}
		if r.Err() != nil {
			t.Fatalf("phase %d: %v", phase, r.Err())
		}
	}
}

// A full 64-bit value written at a non-zero phase exercises the 32-bit
// chunking path; the packed bytes must match the bit-at-a-time writer.
func TestWriteBits64MatchesBitAtATime(t *testing.T) {
	vals := []uint64{0, 1, 0xFFFFFFFFFFFFFFFF, 0x8000000000000001, 0x0123456789ABCDEF}
	for phase := 0; phase < 8; phase++ {
		fast := NewWriter(0)
		slow := NewWriter(0)
		for i := 0; i < phase; i++ {
			fast.WriteBit(1)
			slow.WriteBit(1)
		}
		for _, v := range vals {
			fast.WriteBits(v, 64)
			for i := 63; i >= 0; i-- {
				slow.WriteBit(uint(v>>uint(i)) & 1)
			}
		}
		if fast.Len() != slow.Len() {
			t.Fatalf("phase %d: Len %d vs %d", phase, fast.Len(), slow.Len())
		}
		fb, sb := fast.Bytes(), slow.Bytes()
		if len(fb) != len(sb) {
			t.Fatalf("phase %d: %d bytes vs %d", phase, len(fb), len(sb))
		}
		for i := range fb {
			if fb[i] != sb[i] {
				t.Fatalf("phase %d: byte %d: %02x vs %02x", phase, i, fb[i], sb[i])
			}
		}
	}
}

// Reset must clear the accumulator and the materialized tail.
func TestResetClearsAccumulator(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(0x7F, 7)
	_ = w.Bytes() // materialize the partial tail
	w.Reset()
	if w.Len() != 0 || w.ByteLen() != 0 || len(w.Bytes()) != 0 {
		t.Fatalf("Reset left state: Len=%d ByteLen=%d Bytes=%d", w.Len(), w.ByteLen(), len(w.Bytes()))
	}
	w.WriteBits(0xA5, 8)
	if got := w.Bytes(); len(got) != 1 || got[0] != 0xA5 {
		t.Fatalf("after Reset: got % x, want a5", got)
	}
}
