package bitstream

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadSingleBits(t *testing.T) {
	w := NewWriter(16)
	bits := []uint{1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1}
	for _, b := range bits {
		w.WriteBit(b)
	}
	if w.Len() != len(bits) {
		t.Fatalf("Len = %d, want %d", w.Len(), len(bits))
	}
	r := NewReader(w.Bytes(), w.Len())
	for i, want := range bits {
		if got := r.ReadBit(); got != want {
			t.Fatalf("bit %d = %d, want %d", i, got, want)
		}
	}
	if r.Remaining() != 0 {
		t.Fatalf("Remaining = %d, want 0", r.Remaining())
	}
	if r.Err() != nil {
		t.Fatalf("unexpected error: %v", r.Err())
	}
}

func TestMSBFirstPacking(t *testing.T) {
	w := NewWriter(8)
	w.WriteBits(0b1011, 4)
	w.WriteBits(0b0110, 4)
	got := w.Bytes()
	if len(got) != 1 || got[0] != 0b10110110 {
		t.Fatalf("Bytes = %08b, want 10110110", got[0])
	}
}

func TestWriteBitsZeroWidth(t *testing.T) {
	w := NewWriter(0)
	w.WriteBits(123, 0)
	if w.Len() != 0 {
		t.Fatalf("Len = %d, want 0", w.Len())
	}
}

func TestReadPastEnd(t *testing.T) {
	w := NewWriter(4)
	w.WriteBits(0b101, 3)
	r := NewReader(w.Bytes(), w.Len())
	r.ReadBits(3)
	if r.Err() != nil {
		t.Fatalf("premature error: %v", r.Err())
	}
	if got := r.ReadBit(); got != 0 {
		t.Fatalf("past-end bit = %d, want 0", got)
	}
	if r.Err() != ErrShortRead {
		t.Fatalf("Err = %v, want ErrShortRead", r.Err())
	}
}

func TestNegativeNBitsUsesWholeBuffer(t *testing.T) {
	r := NewReader([]byte{0xff, 0x00}, -1)
	if r.Remaining() != 16 {
		t.Fatalf("Remaining = %d, want 16", r.Remaining())
	}
}

func TestReset(t *testing.T) {
	w := NewWriter(8)
	w.WriteBits(0xff, 8)
	w.Reset()
	if w.Len() != 0 || len(w.Bytes()) != 0 {
		t.Fatalf("Reset did not clear writer: len=%d bytes=%d", w.Len(), len(w.Bytes()))
	}
	w.WriteBits(0b1, 1)
	if w.Bytes()[0] != 0x80 {
		t.Fatalf("after reset, first bit = %08b, want 10000000", w.Bytes()[0])
	}
}

func TestWriteBool(t *testing.T) {
	w := NewWriter(2)
	w.WriteBool(true)
	w.WriteBool(false)
	r := NewReader(w.Bytes(), w.Len())
	if !r.ReadBool() || r.ReadBool() {
		t.Fatal("bool roundtrip failed")
	}
}

func TestWriteBitsPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n=65")
		}
	}()
	w := NewWriter(0)
	w.WriteBits(0, 65)
}

// Property: any sequence of (value, width) writes reads back identically.
func TestQuickRoundtrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		count := int(n%50) + 1
		widths := make([]int, count)
		vals := make([]uint64, count)
		w := NewWriter(64 * count)
		for i := 0; i < count; i++ {
			widths[i] = rng.Intn(65)
			vals[i] = rng.Uint64()
			if widths[i] < 64 {
				vals[i] &= (1 << uint(widths[i])) - 1
			}
			w.WriteBits(vals[i], widths[i])
		}
		r := NewReader(w.Bytes(), w.Len())
		for i := 0; i < count; i++ {
			if got := r.ReadBits(widths[i]); got != vals[i] {
				return false
			}
		}
		return r.Err() == nil && r.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: bit length of the writer equals the sum of written widths and
// ByteLen is its ceiling.
func TestQuickLengths(t *testing.T) {
	f := func(widths []uint8) bool {
		w := NewWriter(0)
		total := 0
		for _, ww := range widths {
			n := int(ww % 65)
			w.WriteBits(0, n)
			total += n
		}
		return w.Len() == total && w.ByteLen() == (total+7)/8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
