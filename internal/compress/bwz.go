package compress

import (
	"encoding/binary"
	"fmt"

	"sensjoin/internal/bitstream"
)

// BWZ is the bzip2-style block compressor: per block, a Burrows-Wheeler
// Transform, move-to-front, zero run-length coding, and canonical Huffman
// coding with the code-length table serialized in the header. Like bzip2
// it pays a per-block table overhead, which is why it loses to "no
// compression" on the small payloads sensor nodes forward (paper §VI-B).
type BWZ struct {
	// BlockSize bounds the bytes per BWT block; 0 means the 16 KiB
	// default.
	BlockSize int
}

const bwzDefaultBlock = 16 * 1024

var bwzMagic = [4]byte{'B', 'W', 'Z', '1'}

// Name implements Codec.
func (BWZ) Name() string { return "bwz(bzip2-like)" }

// Compress implements Codec.
func (z BWZ) Compress(data []byte) []byte {
	block := z.BlockSize
	if block <= 0 {
		block = bwzDefaultBlock
	}
	out := append([]byte(nil), bwzMagic[:]...)
	out = binary.AppendUvarint(out, uint64(len(data)))
	for start := 0; start < len(data); start += block {
		end := start + block
		if end > len(data) {
			end = len(data)
		}
		out = appendBlock(out, data[start:end])
	}
	return out
}

func appendBlock(out, data []byte) []byte {
	last, primary := bwt(data)
	syms := rle0Encode(mtfEncode(last))
	freq := make([]int, alphabetLen)
	for _, s := range syms {
		freq[s]++
	}
	lengths := huffCodeLengths(freq)
	enc := newHuffEncoder(lengths)
	w := bitstream.NewWriter(len(syms) * 8)
	for _, s := range syms {
		enc.encode(w, int(s))
	}
	out = binary.AppendUvarint(out, uint64(len(data)))
	out = binary.AppendUvarint(out, uint64(primary))
	out = appendLengthTable(out, lengths)
	out = binary.AppendUvarint(out, uint64(w.Len()))
	return append(out, w.Bytes()...)
}

// appendLengthTable serializes the code-length table: lengths are 4-bit
// values; a zero nibble is followed by a byte-sized run count of zero
// lengths, which keeps sparse alphabets cheap.
func appendLengthTable(out []byte, lengths []byte) []byte {
	w := bitstream.NewWriter(len(lengths) * 4)
	for i := 0; i < len(lengths); {
		if lengths[i] == 0 {
			run := 0
			for i < len(lengths) && lengths[i] == 0 && run < 255 {
				run++
				i++
			}
			w.WriteBits(0, 4)
			w.WriteBits(uint64(run), 8)
			continue
		}
		w.WriteBits(uint64(lengths[i]), 4)
		i++
	}
	out = binary.AppendUvarint(out, uint64(w.Len()))
	return append(out, w.Bytes()...)
}

func readLengthTable(data []byte, pos int) (lengths []byte, next int, err error) {
	bits, n := binary.Uvarint(data[pos:])
	if n <= 0 {
		return nil, 0, fmt.Errorf("compress: bwz bad length-table size")
	}
	pos += n
	byteLen := (int(bits) + 7) / 8
	if pos+byteLen > len(data) {
		return nil, 0, fmt.Errorf("compress: bwz truncated length table")
	}
	r := bitstream.NewReader(data[pos:pos+byteLen], int(bits))
	lengths = make([]byte, 0, alphabetLen)
	for r.Remaining() >= 4 && len(lengths) < alphabetLen {
		v := byte(r.ReadBits(4))
		if v == 0 {
			run := int(r.ReadBits(8))
			if r.Err() != nil || run == 0 {
				return nil, 0, fmt.Errorf("compress: bwz bad zero run in length table")
			}
			for j := 0; j < run && len(lengths) < alphabetLen; j++ {
				lengths = append(lengths, 0)
			}
			continue
		}
		lengths = append(lengths, v)
	}
	if r.Err() != nil {
		return nil, 0, r.Err()
	}
	for len(lengths) < alphabetLen {
		lengths = append(lengths, 0)
	}
	return lengths, pos + byteLen, nil
}

// Decompress implements Codec.
func (z BWZ) Decompress(data []byte) ([]byte, error) {
	if len(data) < 4 || [4]byte(data[:4]) != bwzMagic {
		return nil, fmt.Errorf("compress: not a bwz stream")
	}
	pos := 4
	origLen, n := binary.Uvarint(data[pos:])
	if n <= 0 {
		return nil, fmt.Errorf("compress: bwz bad length header")
	}
	pos += n
	out := make([]byte, 0, origLen)
	for uint64(len(out)) < origLen {
		blockLen, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return nil, fmt.Errorf("compress: bwz bad block length")
		}
		pos += n
		primary, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return nil, fmt.Errorf("compress: bwz bad primary index")
		}
		pos += n
		lengths, next, err := readLengthTable(data, pos)
		if err != nil {
			return nil, err
		}
		pos = next
		bits, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return nil, fmt.Errorf("compress: bwz bad stream size")
		}
		pos += n
		byteLen := (int(bits) + 7) / 8
		if pos+byteLen > len(data) {
			return nil, fmt.Errorf("compress: bwz truncated block")
		}
		dec := newHuffDecoder(lengths)
		r := bitstream.NewReader(data[pos:pos+byteLen], int(bits))
		pos += byteLen
		var syms []uint16
		for {
			s, err := dec.decode(r)
			if err != nil {
				return nil, err
			}
			syms = append(syms, uint16(s))
			if s == symEOB {
				break
			}
		}
		mtf := rle0Decode(syms)
		if uint64(len(mtf)) != blockLen {
			return nil, fmt.Errorf("compress: bwz block length mismatch: %d vs %d", len(mtf), blockLen)
		}
		if primary >= uint64(len(mtf)) && len(mtf) > 0 {
			return nil, fmt.Errorf("compress: bwz primary index out of range")
		}
		out = append(out, unbwt(mtfDecode(mtf), int(primary))...)
	}
	if uint64(len(out)) != origLen {
		return nil, fmt.Errorf("compress: bwz decompressed %d bytes, want %d", len(out), origLen)
	}
	return out, nil
}
