package compress

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"sensjoin/internal/bitstream"
)

func TestBWTKnown(t *testing.T) {
	// Classic example: "banana" rotations sorted ->
	// abanan, anaban, ananab, banana, nabana, nanaba
	// last column: nnbaaa, primary row of "banana" = 3.
	last, primary := bwt([]byte("banana"))
	if string(last) != "nnbaaa" {
		t.Fatalf("bwt(banana) last = %q, want nnbaaa", last)
	}
	if primary != 3 {
		t.Fatalf("primary = %d, want 3", primary)
	}
	if got := unbwt(last, primary); string(got) != "banana" {
		t.Fatalf("unbwt = %q", got)
	}
}

func TestBWTEdgeCases(t *testing.T) {
	if last, _ := bwt(nil); last != nil {
		t.Fatal("bwt(nil) should be nil")
	}
	if out := unbwt(nil, 0); out != nil {
		t.Fatal("unbwt(nil) should be nil")
	}
	last, p := bwt([]byte{42})
	if len(last) != 1 || last[0] != 42 || p != 0 {
		t.Fatal("single byte bwt wrong")
	}
	// Periodic input (all rotations equal).
	in := bytes.Repeat([]byte{7}, 100)
	last, p = bwt(in)
	if got := unbwt(last, p); !bytes.Equal(got, in) {
		t.Fatal("periodic input roundtrip failed")
	}
	// Two-period input.
	in = bytes.Repeat([]byte{1, 2}, 50)
	last, p = bwt(in)
	if got := unbwt(last, p); !bytes.Equal(got, in) {
		t.Fatal("period-2 input roundtrip failed")
	}
}

func TestQuickBWTRoundtrip(t *testing.T) {
	f := func(data []byte) bool {
		last, p := bwt(data)
		return bytes.Equal(unbwt(last, p), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMTFKnown(t *testing.T) {
	// After MTF, a run of equal bytes becomes 0s.
	in := []byte{5, 5, 5, 5}
	out := mtfEncode(in)
	if out[0] != 5 || out[1] != 0 || out[2] != 0 || out[3] != 0 {
		t.Fatalf("mtf = %v", out)
	}
	if got := mtfDecode(out); !bytes.Equal(got, in) {
		t.Fatalf("mtf roundtrip = %v", got)
	}
}

func TestQuickMTFRoundtrip(t *testing.T) {
	f := func(data []byte) bool {
		return bytes.Equal(mtfDecode(mtfEncode(data)), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRLE0Known(t *testing.T) {
	// 3 zeros = bijective base-2 "11" = RUNA RUNA.
	syms := rle0Encode([]byte{0, 0, 0})
	if len(syms) != 3 || syms[0] != symRunA || syms[1] != symRunA || syms[2] != symEOB {
		t.Fatalf("rle0(000) = %v", syms)
	}
	// A literal byte b becomes b+2.
	syms = rle0Encode([]byte{9})
	if len(syms) != 2 || syms[0] != 11 || syms[1] != symEOB {
		t.Fatalf("rle0(9) = %v", syms)
	}
}

func TestQuickRLE0Roundtrip(t *testing.T) {
	f := func(data []byte, zeroRuns uint8) bool {
		// Salt with zero runs to exercise the run coder.
		in := append([]byte(nil), data...)
		for i := 0; i < int(zeroRuns); i++ {
			in = append(in, 0)
		}
		return bytes.Equal(rle0Decode(rle0Encode(in)), in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHuffmanRoundtrip(t *testing.T) {
	freq := make([]int, alphabetLen)
	freq[symEOB] = 1
	freq[10] = 100
	freq[11] = 50
	freq[200] = 1
	lengths := huffCodeLengths(freq)
	if lengths[10] > lengths[200] {
		t.Fatal("frequent symbol must not have a longer code")
	}
	if lengths[12] != 0 {
		t.Fatal("unused symbol must have no code")
	}
	enc := newHuffEncoder(lengths)
	dec := newHuffDecoder(lengths)
	syms := []int{10, 11, 10, 200, 10, symEOB}
	w := newTestWriter()
	for _, s := range syms {
		enc.encode(w.w, s)
	}
	r := w.reader()
	for _, want := range syms {
		got, err := dec.decode(r)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("decoded %d, want %d", got, want)
		}
	}
}

func TestHuffmanSingleSymbol(t *testing.T) {
	freq := make([]int, alphabetLen)
	freq[symEOB] = 5
	lengths := huffCodeLengths(freq)
	if lengths[symEOB] != 1 {
		t.Fatalf("single symbol length = %d, want 1", lengths[symEOB])
	}
	enc := newHuffEncoder(lengths)
	dec := newHuffDecoder(lengths)
	w := newTestWriter()
	enc.encode(w.w, symEOB)
	got, err := dec.decode(w.reader())
	if err != nil || got != symEOB {
		t.Fatalf("single-symbol roundtrip: %d, %v", got, err)
	}
}

func TestHuffmanLengthLimit(t *testing.T) {
	// Fibonacci-like frequencies force deep trees; lengths must be
	// clamped to maxCodeLen.
	freq := make([]int, alphabetLen)
	a, b := 1, 1
	for i := 0; i < 40; i++ {
		freq[i] = a
		a, b = b, a+b
		if a > 1<<40 {
			break
		}
	}
	lengths := huffCodeLengths(freq)
	for sym, l := range lengths {
		if l > maxCodeLen {
			t.Fatalf("symbol %d has length %d > %d", sym, l, maxCodeLen)
		}
	}
	// Codes must still decode correctly.
	enc := newHuffEncoder(lengths)
	dec := newHuffDecoder(lengths)
	w := newTestWriter()
	for sym := 0; sym < 30; sym++ {
		if lengths[sym] > 0 {
			enc.encode(w.w, sym)
		}
	}
	r := w.reader()
	for sym := 0; sym < 30; sym++ {
		if lengths[sym] > 0 {
			got, err := dec.decode(r)
			if err != nil || got != sym {
				t.Fatalf("decode %d: got %d err %v", sym, got, err)
			}
		}
	}
}

func TestZlibRoundtrip(t *testing.T) {
	z := Zlib{}
	data := bytes.Repeat([]byte("sensor reading 23.4C "), 50)
	c := z.Compress(data)
	if len(c) >= len(data) {
		t.Fatal("zlib should compress repetitive text")
	}
	got, err := z.Decompress(c)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("zlib roundtrip failed: %v", err)
	}
	if _, err := z.Decompress([]byte("garbage")); err == nil {
		t.Fatal("zlib must reject garbage")
	}
}

func TestIdentity(t *testing.T) {
	id := Identity{}
	data := []byte{1, 2, 3}
	c := id.Compress(data)
	if !bytes.Equal(c, data) {
		t.Fatal("identity changed data")
	}
	c[0] = 99
	if data[0] != 1 {
		t.Fatal("identity must copy, not alias")
	}
	got, err := id.Decompress([]byte{4, 5})
	if err != nil || !bytes.Equal(got, []byte{4, 5}) {
		t.Fatal("identity decompress wrong")
	}
}

func TestBWZRoundtripStructured(t *testing.T) {
	z := BWZ{}
	data := bytes.Repeat([]byte{0x17, 0x18, 0x17, 0x19, 0x17, 0x18}, 400)
	c := z.Compress(data)
	if len(c) >= len(data) {
		t.Fatalf("bwz should compress structured data: %d -> %d", len(data), len(c))
	}
	got, err := z.Decompress(c)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("bwz roundtrip failed: %v", err)
	}
}

func TestBWZSmallPayloadOverhead(t *testing.T) {
	// The experiment's point: on tiny payloads the block overhead makes
	// the output larger than the input.
	z := BWZ{}
	data := []byte{0x12, 0x34, 0x56, 0x78, 0x9a, 0xbc}
	c := z.Compress(data)
	if len(c) <= len(data) {
		t.Fatalf("bwz on 6 bytes should expand, got %d bytes", len(c))
	}
	got, err := z.Decompress(c)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatal("small payload roundtrip failed")
	}
}

func TestBWZEmpty(t *testing.T) {
	z := BWZ{}
	c := z.Compress(nil)
	got, err := z.Decompress(c)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty roundtrip: %v %v", got, err)
	}
}

func TestBWZMultiBlock(t *testing.T) {
	z := BWZ{BlockSize: 64}
	rng := rand.New(rand.NewSource(5))
	data := make([]byte, 1000)
	for i := range data {
		data[i] = byte(rng.Intn(8) * 16)
	}
	c := z.Compress(data)
	got, err := z.Decompress(c)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("multi-block roundtrip failed: %v", err)
	}
}

func TestBWZRejectsGarbage(t *testing.T) {
	z := BWZ{}
	if _, err := z.Decompress([]byte("nope")); err == nil {
		t.Fatal("bad magic must fail")
	}
	if _, err := z.Decompress(nil); err == nil {
		t.Fatal("empty input must fail")
	}
	// Truncated valid stream.
	c := z.Compress(bytes.Repeat([]byte{1, 2, 3}, 100))
	if _, err := z.Decompress(c[:len(c)/2]); err == nil {
		t.Fatal("truncated stream must fail")
	}
}

func TestQuickBWZRoundtrip(t *testing.T) {
	z := BWZ{BlockSize: 256}
	f := func(data []byte) bool {
		got, err := z.Decompress(z.Compress(data))
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestCodecNames(t *testing.T) {
	for _, c := range []Codec{Zlib{}, BWZ{}, Identity{}} {
		if c.Name() == "" {
			t.Fatal("codec must have a name")
		}
	}
}

// testWriter wraps a bitstream writer for the huffman tests.
type testWriter struct{ w *bitstream.Writer }

func newTestWriter() *testWriter { return &testWriter{w: bitstream.NewWriter(256)} }

func (t *testWriter) reader() *bitstream.Reader {
	return bitstream.NewReader(t.w.Bytes(), t.w.Len())
}
