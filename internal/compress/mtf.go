package compress

// mtfEncode applies the move-to-front transform: each byte is replaced
// by its current index in a recency list, and moved to the front. After
// a BWT, runs of equal bytes become runs of zeros.
func mtfEncode(data []byte) []byte {
	var table [256]byte
	for i := range table {
		table[i] = byte(i)
	}
	out := make([]byte, len(data))
	for i, b := range data {
		var j int
		for table[j] != b {
			j++
		}
		out[i] = byte(j)
		copy(table[1:j+1], table[:j])
		table[0] = b
	}
	return out
}

// mtfDecode inverts mtfEncode.
func mtfDecode(data []byte) []byte {
	var table [256]byte
	for i := range table {
		table[i] = byte(i)
	}
	out := make([]byte, len(data))
	for i, j := range data {
		b := table[j]
		out[i] = b
		copy(table[1:int(j)+1], table[:j])
		table[0] = b
	}
	return out
}

// RLE0 symbols: zero runs are written in bijective base 2 using runA (+1)
// and runB (+2) digits, as in bzip2; a literal byte b becomes symbol b+2.
const (
	symRunA   = 0
	symRunB   = 1
	symOffset = 2
	// symEOB terminates a block's symbol stream.
	symEOB      = 258
	alphabetLen = 259
)

// rle0Encode converts MTF output into the RLE0 symbol stream.
func rle0Encode(data []byte) []uint16 {
	out := make([]uint16, 0, len(data)/2+8)
	run := 0
	flush := func() {
		for n := run; n > 0; {
			if n&1 == 1 {
				out = append(out, symRunA)
				n = (n - 1) / 2
			} else {
				out = append(out, symRunB)
				n = (n - 2) / 2
			}
		}
		run = 0
	}
	for _, b := range data {
		if b == 0 {
			run++
			continue
		}
		flush()
		out = append(out, uint16(b)+symOffset)
	}
	flush()
	return append(out, symEOB)
}

// rle0Decode inverts rle0Encode; the input must end with symEOB.
func rle0Decode(syms []uint16) []byte {
	var out []byte
	run, digit := 0, 1
	flush := func() {
		for i := 0; i < run; i++ {
			out = append(out, 0)
		}
		run, digit = 0, 1
	}
	for _, s := range syms {
		switch s {
		case symRunA:
			run += digit
			digit <<= 1
		case symRunB:
			run += 2 * digit
			digit <<= 1
		case symEOB:
			flush()
			return out
		default:
			flush()
			out = append(out, byte(s-symOffset))
		}
	}
	flush()
	return out
}
