// Package compress provides the general-purpose compression baselines of
// the paper's §VI-B experiment: the quadtree representation is compared
// against zlib (LZ77 + Huffman) and bzip2 (Burrows-Wheeler Transform +
// MTF + Huffman).
//
// zlib wraps the standard library. The Go standard library only ships a
// bzip2 *decompressor*, so BWZ is our own BWT + move-to-front + run
// length + canonical-Huffman block compressor — the same pipeline family
// as bzip2, with the same characteristic per-block table overhead that
// makes it lose on small payloads (exactly the behaviour the experiment
// demonstrates).
package compress

import (
	"bytes"
	"compress/zlib"
	"fmt"
	"io"
)

// Codec compresses and decompresses byte slices.
type Codec interface {
	// Name identifies the codec in experiment output.
	Name() string
	// Compress returns the compressed form of data.
	Compress(data []byte) []byte
	// Decompress inverts Compress.
	Decompress(data []byte) ([]byte, error)
}

// Zlib is the stdlib zlib codec (the library form of gzip, as the paper
// puts it).
type Zlib struct {
	// Level is the zlib compression level; 0 means best compression,
	// matching the paper's "highly optimized" upper-bound framing.
	Level int
}

// Name implements Codec.
func (Zlib) Name() string { return "zlib" }

// Compress implements Codec.
func (z Zlib) Compress(data []byte) []byte {
	level := z.Level
	if level == 0 {
		level = zlib.BestCompression
	}
	var buf bytes.Buffer
	w, err := zlib.NewWriterLevel(&buf, level)
	if err != nil {
		panic(fmt.Sprintf("compress: zlib level %d: %v", level, err))
	}
	if _, err := w.Write(data); err != nil {
		panic(fmt.Sprintf("compress: zlib write: %v", err))
	}
	if err := w.Close(); err != nil {
		panic(fmt.Sprintf("compress: zlib close: %v", err))
	}
	return buf.Bytes()
}

// Decompress implements Codec.
func (Zlib) Decompress(data []byte) ([]byte, error) {
	r, err := zlib.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("compress: zlib open: %w", err)
	}
	defer r.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("compress: zlib read: %w", err)
	}
	return out, nil
}

// Identity passes data through unchanged; the "no compression" baseline.
type Identity struct{}

// Name implements Codec.
func (Identity) Name() string { return "none" }

// Compress implements Codec.
func (Identity) Compress(data []byte) []byte {
	return append([]byte(nil), data...)
}

// Decompress implements Codec.
func (Identity) Decompress(data []byte) ([]byte, error) {
	return append([]byte(nil), data...), nil
}
