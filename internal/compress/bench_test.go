package compress

import (
	"math/rand"
	"testing"
)

// sensorPayload mimics the wire image of raw join-attribute tuples:
// 2-byte fixed-point values with spatial correlation between consecutive
// tuples (the workload of the paper's §VI-B comparison).
func sensorPayload(n int) []byte {
	rng := rand.New(rand.NewSource(7))
	out := make([]byte, 0, n)
	temp, x, y := 200, 500, 500
	for len(out) < n {
		temp += rng.Intn(5) - 2
		x += rng.Intn(21) - 10
		y += rng.Intn(21) - 10
		for _, v := range []int{temp, x, y} {
			out = append(out, byte(v), byte(v>>8))
		}
	}
	return out[:n]
}

func benchCodec(b *testing.B, c Codec, size int) {
	data := sensorPayload(size)
	b.ReportAllocs()
	b.ResetTimer()
	var compressed []byte
	for i := 0; i < b.N; i++ {
		compressed = c.Compress(data)
	}
	b.ReportMetric(float64(len(compressed))/float64(len(data)), "ratio")
}

func BenchmarkZlibSmall(b *testing.B)  { benchCodec(b, Zlib{}, 64) }
func BenchmarkZlibMedium(b *testing.B) { benchCodec(b, Zlib{}, 4096) }
func BenchmarkBWZSmall(b *testing.B)   { benchCodec(b, BWZ{}, 64) }
func BenchmarkBWZMedium(b *testing.B)  { benchCodec(b, BWZ{}, 4096) }

func BenchmarkBWZDecompress(b *testing.B) {
	z := BWZ{}
	c := z.Compress(sensorPayload(4096))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := z.Decompress(c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBWT(b *testing.B) {
	data := sensorPayload(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bwt(data)
	}
}
