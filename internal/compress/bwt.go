package compress

import "sort"

// bwt computes the Burrows-Wheeler Transform of data: the last column of
// the sorted matrix of all rotations, plus the row index of the original
// string. Rotation order is computed by prefix doubling in O(n log^2 n).
func bwt(data []byte) (last []byte, primary int) {
	n := len(data)
	if n == 0 {
		return nil, 0
	}
	// rank[i] is the sort key of the rotation starting at i, refined
	// doubling the compared prefix length each round.
	rank := make([]int, n)
	for i, b := range data {
		rank[i] = int(b)
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	tmp := make([]int, n)
	for k := 1; ; k <<= 1 {
		key := func(i int) (int, int) {
			return rank[i], rank[(i+k)%n]
		}
		sort.Slice(idx, func(a, b int) bool {
			r1a, r2a := key(idx[a])
			r1b, r2b := key(idx[b])
			if r1a != r1b {
				return r1a < r1b
			}
			return r2a < r2b
		})
		tmp[idx[0]] = 0
		for i := 1; i < n; i++ {
			r1p, r2p := key(idx[i-1])
			r1c, r2c := key(idx[i])
			tmp[idx[i]] = tmp[idx[i-1]]
			if r1p != r1c || r2p != r2c {
				tmp[idx[i]]++
			}
		}
		copy(rank, tmp)
		if rank[idx[n-1]] == n-1 || k >= n {
			break
		}
	}
	last = make([]byte, n)
	for i, rot := range idx {
		// Rotation starting at rot: its last character is data[rot-1].
		last[i] = data[(rot+n-1)%n]
		if rot == 0 {
			primary = i
		}
	}
	return last, primary
}

// unbwt inverts the Burrows-Wheeler Transform.
func unbwt(last []byte, primary int) []byte {
	n := len(last)
	if n == 0 {
		return nil
	}
	// LF mapping: row i of the sorted matrix corresponds to the rotation
	// obtained by prepending last[i]; LF[i] is that rotation's row.
	var count [256]int
	for _, b := range last {
		count[b]++
	}
	var c [256]int
	sum := 0
	for v := 0; v < 256; v++ {
		c[v] = sum
		sum += count[v]
	}
	lf := make([]int, n)
	var occ [256]int
	for i, b := range last {
		lf[i] = c[b] + occ[b]
		occ[b]++
	}
	out := make([]byte, n)
	row := primary
	for k := n - 1; k >= 0; k-- {
		out[k] = last[row]
		row = lf[row]
	}
	return out
}
