package compress

import (
	"container/heap"
	"fmt"

	"sensjoin/internal/bitstream"
)

// maxCodeLen bounds canonical Huffman code lengths so lengths fit in 4
// bits on the wire.
const maxCodeLen = 15

// huffCodeLengths computes code lengths for the given symbol frequencies
// (zero-frequency symbols get length 0). Lengths exceeding maxCodeLen are
// avoided by flattening the frequency distribution and rebuilding.
func huffCodeLengths(freq []int) []byte {
	lengths := make([]byte, len(freq))
	f := append([]int(nil), freq...)
	for {
		buildLengths(f, lengths)
		maxLen := byte(0)
		for _, l := range lengths {
			if l > maxLen {
				maxLen = l
			}
		}
		if maxLen <= maxCodeLen {
			return lengths
		}
		// Flatten: halving (and clamping at 1) shortens the deepest
		// codes; a couple of iterations suffice in practice.
		for i, v := range f {
			if v > 0 {
				f[i] = v/2 + 1
			}
		}
	}
}

type huffNode struct {
	weight int
	sym    int // -1 for internal
	l, r   *huffNode
}

type huffHeap []*huffNode

func (h huffHeap) Len() int { return len(h) }
func (h huffHeap) Less(i, j int) bool {
	if h[i].weight != h[j].weight {
		return h[i].weight < h[j].weight
	}
	return h[i].sym < h[j].sym // deterministic ties
}
func (h huffHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *huffHeap) Push(x any)   { *h = append(*h, x.(*huffNode)) }
func (h *huffHeap) Pop() any {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

func buildLengths(freq []int, lengths []byte) {
	for i := range lengths {
		lengths[i] = 0
	}
	h := &huffHeap{}
	for sym, f := range freq {
		if f > 0 {
			heap.Push(h, &huffNode{weight: f, sym: sym})
		}
	}
	switch h.Len() {
	case 0:
		return
	case 1:
		// A single symbol still needs one bit on the wire.
		lengths[(*h)[0].sym] = 1
		return
	}
	for h.Len() > 1 {
		a := heap.Pop(h).(*huffNode)
		b := heap.Pop(h).(*huffNode)
		heap.Push(h, &huffNode{weight: a.weight + b.weight, sym: -1, l: a, r: b})
	}
	root := heap.Pop(h).(*huffNode)
	var walk func(n *huffNode, depth byte)
	walk = func(n *huffNode, depth byte) {
		if n.sym >= 0 {
			lengths[n.sym] = depth
			return
		}
		walk(n.l, depth+1)
		walk(n.r, depth+1)
	}
	walk(root, 0)
}

// canonicalCodes assigns canonical codes (shorter codes first, then by
// symbol order) to the given lengths.
func canonicalCodes(lengths []byte) []uint32 {
	codes := make([]uint32, len(lengths))
	var countPerLen [maxCodeLen + 1]uint32
	for _, l := range lengths {
		if l > 0 {
			countPerLen[l]++
		}
	}
	// Standard DEFLATE recurrence.
	var nextCode [maxCodeLen + 1]uint32
	code := uint32(0)
	for l := 1; l <= maxCodeLen; l++ {
		code = (code + countPerLen[l-1]) << 1
		nextCode[l] = code
	}
	for sym, l := range lengths {
		if l > 0 {
			codes[sym] = nextCode[l]
			nextCode[l]++
		}
	}
	return codes
}

// huffEncoder writes symbols with canonical codes.
type huffEncoder struct {
	lengths []byte
	codes   []uint32
}

func newHuffEncoder(lengths []byte) *huffEncoder {
	return &huffEncoder{lengths: lengths, codes: canonicalCodes(lengths)}
}

func (e *huffEncoder) encode(w *bitstream.Writer, sym int) {
	l := e.lengths[sym]
	if l == 0 {
		panic(fmt.Sprintf("compress: symbol %d has no code", sym))
	}
	w.WriteBits(uint64(e.codes[sym]), int(l))
}

// huffDecoder reads canonical codes bit by bit using the per-length
// first-code table.
type huffDecoder struct {
	// firstCode[l] locates the canonical block of codes of length l;
	// syms lists symbols in canonical order (by length, then symbol).
	firstCode [maxCodeLen + 1]uint32
	countLen  [maxCodeLen + 1]int
	syms      []int
}

func newHuffDecoder(lengths []byte) *huffDecoder {
	d := &huffDecoder{}
	total := 0
	for _, l := range lengths {
		if l > 0 {
			d.countLen[l]++
			total++
		}
	}
	// Same recurrence as canonicalCodes: firstCode[l] is the canonical
	// code assigned to the first symbol of length l.
	code := uint32(0)
	for l := 1; l <= maxCodeLen; l++ {
		code = (code + uint32(d.countLen[l-1])) << 1
		d.firstCode[l] = code
	}
	d.syms = make([]int, 0, total)
	for l := 1; l <= maxCodeLen; l++ {
		for sym, sl := range lengths {
			if int(sl) == l {
				d.syms = append(d.syms, sym)
			}
		}
	}
	return d
}

func (d *huffDecoder) decode(r *bitstream.Reader) (int, error) {
	code := uint32(0)
	base := 0
	for l := 1; l <= maxCodeLen; l++ {
		code = code<<1 | uint32(r.ReadBit())
		if r.Err() != nil {
			return 0, r.Err()
		}
		if d.countLen[l] > 0 && code < d.firstCode[l]+uint32(d.countLen[l]) && code >= d.firstCode[l] {
			return d.syms[base+int(code-d.firstCode[l])], nil
		}
		base += d.countLen[l]
	}
	return 0, fmt.Errorf("compress: invalid Huffman code")
}
