package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// randomQuery generates a random two-relation join from a small grammar:
// 1-3 join conditions (difference, band, distance, attribute equality),
// optional local predicates, and a random SELECT list. It exercises the
// "any number and any kind of join conditions" requirement end to end.
func randomQuery(rng *rand.Rand) string {
	attrs := []string{"temp", "hum", "pres", "light"}
	pick := func() string { return attrs[rng.Intn(len(attrs))] }

	var conds []string
	nConds := 1 + rng.Intn(3)
	for i := 0; i < nConds; i++ {
		switch rng.Intn(5) {
		case 0: // difference
			conds = append(conds, fmt.Sprintf("A.%s - B.%s > %.2f", pick(), pick(), rng.Float64()*8))
		case 1: // band
			a := pick()
			conds = append(conds, fmt.Sprintf("abs(A.%s - B.%s) < %.2f", a, a, rng.Float64()*2))
		case 2: // distance
			op := ">"
			if rng.Intn(2) == 0 {
				op = "<"
			}
			conds = append(conds, fmt.Sprintf("distance(A.x, A.y, B.x, B.y) %s %.0f", op, 50+rng.Float64()*200))
		case 3: // arithmetic combination
			conds = append(conds, fmt.Sprintf("A.%s + B.%s < %.1f", pick(), pick(), 20+rng.Float64()*1000))
		default: // disjunction across relations
			conds = append(conds, fmt.Sprintf("(A.%s > B.%s OR abs(A.%s - B.%s) < %.2f)",
				pick(), pick(), pick(), pick(), rng.Float64()))
		}
	}
	// Occasionally a local predicate.
	if rng.Intn(3) == 0 {
		conds = append(conds, fmt.Sprintf("A.light > %.0f", rng.Float64()*600))
	}
	if rng.Intn(4) == 0 {
		conds = append(conds, fmt.Sprintf("B.hum < %.0f", 30+rng.Float64()*60))
	}

	var sel []string
	nSel := 1 + rng.Intn(3)
	for i := 0; i < nSel; i++ {
		sel = append(sel, "A."+pick(), "B."+pick())
	}
	return fmt.Sprintf("SELECT %s FROM Sensors A, Sensors B WHERE %s ONCE",
		strings.Join(sel, ", "), strings.Join(conds, " AND "))
}

// Random queries on random topologies: SENS-Join must always match the
// oracle exactly, never report incomplete, and quantization must never
// lose result rows. This is the repository's strongest end-to-end
// property test.
func TestFuzzRandomQueriesMatchOracle(t *testing.T) {
	const iterations = 40
	for i := 0; i < iterations; i++ {
		rng := rand.New(rand.NewSource(int64(1000 + i)))
		r := testRunner(t, 60+rng.Intn(60), int64(500+i))
		src := randomQuery(rng)
		x, err := r.ExecSQL(src, 0)
		if err != nil {
			t.Fatalf("iter %d: parse %q: %v", i, src, err)
		}
		truth, err := GroundTruth(x)
		if err != nil {
			t.Fatalf("iter %d: oracle: %v", i, err)
		}
		res, err := r.Run(src, NewSENSJoin(), 0)
		if err != nil {
			t.Fatalf("iter %d: run %q: %v", i, src, err)
		}
		if !res.Complete {
			t.Fatalf("iter %d: incomplete without failures (%q)", i, src)
		}
		if len(res.Rows) != len(truth.Rows) {
			t.Fatalf("iter %d: %d rows vs oracle %d for %q", i, len(res.Rows), len(truth.Rows), src)
		}
		sameRows(t, truth.Rows, res.Rows, "oracle", "sens")
	}
}

// The same property under the external join and the raw-representation
// variant, with fewer iterations (they share most machinery).
func TestFuzzVariantsMatchOracle(t *testing.T) {
	for i := 0; i < 12; i++ {
		rng := rand.New(rand.NewSource(int64(2000 + i)))
		r := testRunner(t, 50+rng.Intn(40), int64(700+i))
		src := randomQuery(rng)
		x, err := r.ExecSQL(src, 0)
		if err != nil {
			t.Fatal(err)
		}
		truth, err := GroundTruth(x)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range []Method{External{}, &SENSJoin{Options: Options{Rep: RawRep{}}}} {
			res, err := r.Run(src, m, 0)
			if err != nil {
				t.Fatalf("iter %d %s: %v", i, m.Name(), err)
			}
			sameRows(t, truth.Rows, res.Rows, "oracle", m.Name())
		}
	}
}
