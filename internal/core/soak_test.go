package core

import (
	"math/rand"
	"testing"

	"sensjoin/internal/netsim"
	"sensjoin/internal/topology"
)

// Soak: a long continuous-monitoring run with random link failures,
// repairs, node deaths/revivals and packet loss injected between rounds.
// Every round must terminate, a round claiming Complete must match the
// oracle exactly, and the incremental mode's cross-round state must
// never corrupt a result — the strongest end-to-end robustness check in
// the repository.
func TestSoakContinuousWithChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	r := testRunner(t, 200, 1001)
	r.AutoAudit = true // every round self-audits; violations fail the round
	rng := rand.New(rand.NewSource(77))
	m := NewContinuousSENSJoin()
	src := qBand(0.4)

	type failure struct{ a, b topology.NodeID }
	var downLinks []failure
	var deadNodes []topology.NodeID

	const rounds = 30
	completeRounds := 0
	for round := 0; round < rounds; round++ {
		tm := float64(round) * 45

		// Chaos: flip some state between rounds.
		switch rng.Intn(6) {
		case 0: // cut a random tree edge
			v := topology.NodeID(1 + rng.Intn(r.Dep.N()-1))
			if p := r.Tree.Parent[v]; p >= 0 {
				r.Net.LinkDown(v, p)
				downLinks = append(downLinks, failure{v, p})
			}
		case 1: // restore a failed link
			if len(downLinks) > 0 {
				f := downLinks[len(downLinks)-1]
				downLinks = downLinks[:len(downLinks)-1]
				r.Net.LinkUp(f.a, f.b)
			}
		case 2: // kill a node
			v := topology.NodeID(1 + rng.Intn(r.Dep.N()-1))
			r.Net.KillNode(v)
			deadNodes = append(deadNodes, v)
		case 3: // revive a node
			if len(deadNodes) > 0 {
				r.Net.ReviveNode(deadNodes[len(deadNodes)-1])
				deadNodes = deadNodes[:len(deadNodes)-1]
			}
		case 4: // transient packet loss
			r.Net.SetLossRate(0.02, int64(round))
		default: // calm round
			r.Net.SetLossRate(0, 0)
		}
		r.RebuildTree() // the tree protocol heals between rounds

		res, err := r.Run(src, m, tm)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if res.Complete {
			completeRounds++
			// A complete claim must be the exact oracle result for the
			// surviving network.
			x, err := r.ExecSQL(src, tm)
			if err != nil {
				t.Fatal(err)
			}
			truth, err := GroundTruth(x)
			if err != nil {
				t.Fatal(err)
			}
			sameRows(t, truth.Rows, res.Rows, "oracle", "soak-round")
		}
	}
	if completeRounds < rounds/3 {
		t.Fatalf("only %d of %d rounds complete — chaos should not dominate", completeRounds, rounds)
	}
	if m.Rounds() != rounds {
		t.Fatalf("Rounds = %d, want %d", m.Rounds(), rounds)
	}
	t.Logf("soak: %d/%d rounds complete under chaos", completeRounds, rounds)
}

// The same soak against the external join: the baseline must be equally
// robust (termination + honest completeness).
func TestSoakExternalWithLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	r := testRunner(t, 150, 1003)
	r.AutoAudit = true
	for round := 0; round < 15; round++ {
		r.Net.SetLossRate(0.01*float64(round%4), int64(round))
		res, err := r.Run(qBand(0.4), External{}, float64(round)*30)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if res.Complete && round%4 != 0 {
			// Loss was active; completeness is possible but must then be
			// genuine (spot-check row count against the oracle).
			x, _ := r.ExecSQL(qBand(0.4), float64(round)*30)
			truth, err := GroundTruth(x)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Rows) != len(truth.Rows) {
				t.Fatalf("round %d: complete but %d rows vs oracle %d", round, len(res.Rows), len(truth.Rows))
			}
		}
	}
}

// Soak with reliable transport: chaos plus loss injected *during* the
// rounds (global rate changes and per-link bursts scheduled mid-round).
// Reliable delivery and scoped recovery must keep most rounds complete,
// every complete round must be oracle-exact, and every round must pass
// all audit passes (AutoAudit turns violations into errors).
func TestSoakReliableWithChaosLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	r := testRunner(t, 150, 1005)
	r.AutoAudit = true
	r.EnableReliableTransport(netsim.ReliableConfig{})
	rng := rand.New(rand.NewSource(79))
	m := NewContinuousSENSJoin()
	src := qBand(0.4)

	var deadNodes []topology.NodeID
	const rounds = 20
	completeRounds := 0
	for round := 0; round < rounds; round++ {
		tm := float64(round) * 60
		r.Net.SetLossRate(0.02+0.02*float64(rng.Intn(4)), int64(1000+round))

		// Mid-round chaos: schedule loss changes to hit while the round's
		// phases are in flight, not just between rounds.
		now := r.Sim.Now()
		r.Sim.Schedule(now+2+rng.Float64()*20, func() {
			r.Net.SetLossRate(0.05+0.05*float64(rng.Intn(3)), int64(2000+round))
		})
		// A per-link loss burst on a random tree edge, healed a little
		// later the same round.
		v := topology.NodeID(1 + rng.Intn(r.Dep.N()-1))
		if p := r.Tree.Parent[v]; p >= 0 {
			r.Sim.Schedule(now+5+rng.Float64()*10, func() {
				r.Net.SetLinkLossRate(v, p, 0.9)
				r.Net.SetLinkLossRate(p, v, 0.9)
			})
			r.Sim.Schedule(now+40+rng.Float64()*20, func() {
				r.Net.SetLinkLossRate(v, p, 0)
				r.Net.SetLinkLossRate(p, v, 0)
			})
		}
		if round%5 == 3 { // occasionally kill a node for a round
			d := topology.NodeID(1 + rng.Intn(r.Dep.N()-1))
			r.Net.KillNode(d)
			deadNodes = append(deadNodes, d)
		} else if len(deadNodes) > 0 {
			r.Net.ReviveNode(deadNodes[len(deadNodes)-1])
			deadNodes = deadNodes[:len(deadNodes)-1]
		}
		r.RebuildTreeAvoidingFailures()

		res, err := r.Run(src, m, tm)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if res.Complete {
			completeRounds++
			x, err := r.ExecSQL(src, tm)
			if err != nil {
				t.Fatal(err)
			}
			truth, err := GroundTruth(x)
			if err != nil {
				t.Fatal(err)
			}
			sameRows(t, truth.Rows, res.Rows, "oracle", "reliable-soak-round")
		}
	}
	if completeRounds < rounds/2 {
		t.Fatalf("only %d of %d rounds complete — reliable transport should ride out loss", completeRounds, rounds)
	}
	t.Logf("reliable soak: %d/%d rounds complete under chaos loss", completeRounds, rounds)
}
