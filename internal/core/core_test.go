package core

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"sensjoin/internal/compress"
	"sensjoin/internal/topology"
)

// testRunner builds a small reproducible deployment.
func testRunner(t *testing.T, nodes int, seed int64) *Runner {
	t.Helper()
	r, err := NewRunner(SetupConfig{Nodes: nodes, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

const q1 = `SELECT MIN(distance(A.x, A.y, B.x, B.y))
FROM Sensors A, Sensors B
WHERE A.temp - B.temp > 10.0 ONCE`

const q2 = `SELECT abs(A.hum - B.hum), abs(A.pres - B.pres)
FROM Sensors A, Sensors B
WHERE abs(A.temp - B.temp) < 0.3
AND distance(A.x, A.y, B.x, B.y) > 100 ONCE`

// qBand is a tunable band self-join used across tests.
func qBand(theta float64) string {
	return fmt.Sprintf(`SELECT A.temp, A.hum, B.temp, B.hum
FROM Sensors A, Sensors B
WHERE abs(A.temp - B.temp) < %g AND distance(A.x, A.y, B.x, B.y) > 50 ONCE`, theta)
}

// canonRows sorts rows lexicographically for order-independent
// comparison, rounding to tolerate float noise.
func canonRows(rows []Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		s := ""
		for _, v := range r {
			s += fmt.Sprintf("%.9g|", v)
		}
		out[i] = s
	}
	sort.Strings(out)
	return out
}

func sameRows(t *testing.T, a, b []Row, labelA, labelB string) {
	t.Helper()
	ca, cb := canonRows(a), canonRows(b)
	if len(ca) != len(cb) {
		t.Fatalf("%s has %d rows, %s has %d", labelA, len(ca), labelB, len(cb))
	}
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatalf("row %d differs:\n  %s: %s\n  %s: %s", i, labelA, ca[i], labelB, cb[i])
		}
	}
}

// The central correctness property: SENS-Join, every representation
// variant, and the external join all produce exactly the ground-truth
// result.
func TestMethodsAgreeWithGroundTruth(t *testing.T) {
	queries := map[string]string{
		"q1":       q1,
		"q2":       q2,
		"band-0.2": qBand(0.2),
		"band-2":   qBand(2),
	}
	methods := []Method{
		External{},
		NewSENSJoin(),
		&SENSJoin{Options: Options{Rep: RawRep{}}},
		&SENSJoin{Options: Options{DisableTreecut: true}},
		&SENSJoin{Options: Options{DisableSelectiveForwarding: true}},
	}
	for name, src := range queries {
		r := testRunner(t, 120, 7)
		x, err := r.ExecSQL(src, 0)
		if err != nil {
			t.Fatal(err)
		}
		truth, err := GroundTruth(x)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range methods {
			res, err := r.Run(src, m, 0)
			if err != nil {
				t.Fatalf("%s / %s: %v", name, m.Name(), err)
			}
			if !res.Complete {
				t.Fatalf("%s / %s: incomplete without failures", name, m.Name())
			}
			sameRows(t, truth.Rows, res.Rows, "truth", name+"/"+m.Name())
			if res.ContributingNodes != truth.ContributingNodes {
				t.Fatalf("%s / %s: contributing %d, truth %d",
					name, m.Name(), res.ContributingNodes, truth.ContributingNodes)
			}
			if res.MemberNodes != truth.MemberNodes {
				t.Fatalf("%s / %s: members %d, truth %d", name, m.Name(), res.MemberNodes, truth.MemberNodes)
			}
		}
	}
}

func TestCompressedRepsAgree(t *testing.T) {
	r := testRunner(t, 80, 3)
	x, err := r.ExecSQL(qBand(0.5), 0)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := GroundTruth(x)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{
		&SENSJoin{Options: Options{Rep: CompressedRep{Codec: compress.Zlib{}}}},
		&SENSJoin{Options: Options{Rep: CompressedRep{Codec: compress.BWZ{}}}},
	} {
		res, err := r.Run(qBand(0.5), m, 0)
		if err != nil {
			t.Fatal(err)
		}
		sameRows(t, truth.Rows, res.Rows, "truth", m.Name())
	}
}

func TestAggregatesQ1(t *testing.T) {
	r := testRunner(t, 150, 11)
	res, err := r.Run(q1, NewSENSJoin(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) > 1 {
		t.Fatalf("aggregate query returned %d rows", len(res.Rows))
	}
	if len(res.Rows) == 1 {
		min := res.Rows[0][0]
		if min < 0 || min > 2000 {
			t.Fatalf("MIN(distance) = %g implausible", min)
		}
	}
}

func TestSENSJoinCheaperAtLowSelectivity(t *testing.T) {
	// The headline claim at small result fractions: SENS-Join transmits
	// far fewer packets than the external join.
	r := testRunner(t, 400, 5)
	src := qBand(0.15)
	if _, err := r.Run(src, External{}, 0); err != nil {
		t.Fatal(err)
	}
	ext := r.Stats.TotalTx(ExternalPhases...)
	r.Stats.Reset()
	res, err := r.Run(src, NewSENSJoin(), 0)
	if err != nil {
		t.Fatal(err)
	}
	sens := r.Stats.TotalTx(SENSPhases...)
	if res.Fraction() > 0.3 {
		t.Skipf("selectivity drifted: fraction=%.2f", res.Fraction())
	}
	if sens >= ext {
		t.Fatalf("SENS-Join (%d packets) not cheaper than external (%d) at fraction %.2f",
			sens, ext, res.Fraction())
	}
	t.Logf("external=%d sens=%d savings=%.0f%% fraction=%.2f",
		ext, sens, 100*(1-float64(sens)/float64(ext)), res.Fraction())
}

func TestExternalMoreExpensiveBreakdown(t *testing.T) {
	// Join-Attribute-Collection must be the dominant fixed cost and the
	// other phases must scale with the result fraction.
	r := testRunner(t, 300, 9)
	if _, err := r.Run(qBand(0.1), NewSENSJoin(), 0); err != nil {
		t.Fatal(err)
	}
	jaSmall := r.Stats.TotalTx(PhaseJACollect)
	finalSmall := r.Stats.TotalTx(PhaseFinalCollect)
	r.Stats.Reset()
	if _, err := r.Run(qBand(3.0), NewSENSJoin(), 0); err != nil {
		t.Fatal(err)
	}
	jaBig := r.Stats.TotalTx(PhaseJACollect)
	finalBig := r.Stats.TotalTx(PhaseFinalCollect)
	// Fig. 15: the collection step's cost is independent of the result
	// fraction (identical join attributes => identical keys collected).
	if jaSmall != jaBig {
		t.Fatalf("ja-collect cost varies with selectivity: %d vs %d", jaSmall, jaBig)
	}
	if finalBig <= finalSmall {
		t.Fatalf("final-collect did not grow with selectivity: %d vs %d", finalSmall, finalBig)
	}
}

func TestTreecutReducesCollectionPackets(t *testing.T) {
	r := testRunner(t, 300, 13)
	src := qBand(0.2)
	if _, err := r.Run(src, &SENSJoin{Options: Options{DisableTreecut: true}}, 0); err != nil {
		t.Fatal(err)
	}
	without := r.Stats.TotalTx(SENSPhases...)
	r.Stats.Reset()
	if _, err := r.Run(src, NewSENSJoin(), 0); err != nil {
		t.Fatal(err)
	}
	with := r.Stats.TotalTx(SENSPhases...)
	if with > without {
		t.Fatalf("treecut increased total cost: %d with vs %d without", with, without)
	}
	t.Logf("treecut: %d -> %d packets", without, with)
}

func TestSelectiveForwardingPrunesFilter(t *testing.T) {
	r := testRunner(t, 300, 17)
	src := qBand(0.1) // selective: few nodes join, many subtrees prune
	if _, err := r.Run(src, &SENSJoin{Options: Options{DisableSelectiveForwarding: true}}, 0); err != nil {
		t.Fatal(err)
	}
	without := r.Stats.TotalTx(PhaseFilterDissem)
	r.Stats.Reset()
	if _, err := r.Run(src, NewSENSJoin(), 0); err != nil {
		t.Fatal(err)
	}
	with := r.Stats.TotalTx(PhaseFilterDissem)
	if with >= without {
		t.Fatalf("selective forwarding did not reduce filter packets: %d vs %d", with, without)
	}
	t.Logf("filter dissemination: %d -> %d packets", without, with)
}

func TestQuadRepBeatsRawRep(t *testing.T) {
	r := testRunner(t, 400, 19)
	src := qBand(0.2)
	if _, err := r.Run(src, &SENSJoin{Options: Options{Rep: RawRep{}}}, 0); err != nil {
		t.Fatal(err)
	}
	raw := r.Stats.TotalTx(PhaseJACollect)
	r.Stats.Reset()
	if _, err := r.Run(src, NewSENSJoin(), 0); err != nil {
		t.Fatal(err)
	}
	quad := r.Stats.TotalTx(PhaseJACollect)
	if quad >= raw {
		t.Fatalf("quadtree (%d) not cheaper than raw (%d) in collection", quad, raw)
	}
	t.Logf("collection packets: raw=%d quad=%d", raw, quad)
}

func TestResponseTimeAtMostTwiceExternal(t *testing.T) {
	// Paper §VII: SENS-Join's response time is upper bounded by about
	// twice the external join's (pre-computation + final collection).
	r := testRunner(t, 200, 23)
	src := qBand(0.3)
	ext, err := r.Run(src, External{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	sens, err := r.Run(src, NewSENSJoin(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if sens.ResponseTime <= ext.ResponseTime {
		t.Fatalf("SENS-Join (%gs) should be slower than external (%gs)", sens.ResponseTime, ext.ResponseTime)
	}
	if sens.ResponseTime > 2.6*ext.ResponseTime {
		t.Fatalf("SENS-Join response time %gs exceeds ~2x external %gs", sens.ResponseTime, ext.ResponseTime)
	}
}

func TestFractionAndMembers(t *testing.T) {
	r := testRunner(t, 100, 29)
	res, err := r.Run(qBand(0.5), External{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.MemberNodes != 100 {
		t.Fatalf("homogeneous network: members = %d, want 100", res.MemberNodes)
	}
	f := res.Fraction()
	if f < 0 || f > 1 {
		t.Fatalf("fraction = %g out of range", f)
	}
	if math.IsNaN(f) {
		t.Fatal("fraction is NaN")
	}
}

func TestLocalPredicatesFilterMembership(t *testing.T) {
	r := testRunner(t, 100, 31)
	src := `SELECT A.temp, B.temp FROM Sensors A, Sensors B
		WHERE A.light > 400 AND B.light > 400 AND abs(A.temp - B.temp) < 1 ONCE`
	x, err := r.ExecSQL(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := GroundTruth(x)
	if err != nil {
		t.Fatal(err)
	}
	if truth.MemberNodes >= 100 {
		t.Skip("local predicate did not filter anything in this field")
	}
	res, err := r.Run(src, NewSENSJoin(), 0)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, truth.Rows, res.Rows, "truth", "sens")
	if res.MemberNodes != truth.MemberNodes {
		t.Fatalf("members %d != truth %d", res.MemberNodes, truth.MemberNodes)
	}
}

func TestThreeWayJoin(t *testing.T) {
	r := testRunner(t, 60, 37)
	src := `SELECT A.temp, B.temp, C.temp FROM Sensors A, Sensors B, Sensors C
		WHERE abs(A.temp - B.temp) < 0.2 AND abs(B.temp - C.temp) < 0.2
		AND distance(A.x, A.y, B.x, B.y) > 100 ONCE`
	x, err := r.ExecSQL(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := GroundTruth(x)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{External{}, NewSENSJoin()} {
		res, err := r.Run(src, m, 0)
		if err != nil {
			t.Fatal(err)
		}
		sameRows(t, truth.Rows, res.Rows, "truth", m.Name())
	}
}

func TestSENSJoinRejectsSingleRelation(t *testing.T) {
	r := testRunner(t, 30, 41)
	if _, err := r.Run("SELECT A.temp FROM Sensors A ONCE", NewSENSJoin(), 0); err == nil {
		t.Fatal("single-relation query must be rejected by SENS-Join")
	}
}

func TestSENSJoinRejectsCrossJoinWithoutJoinAttrs(t *testing.T) {
	r := testRunner(t, 30, 43)
	if _, err := r.Run("SELECT A.temp, B.temp FROM Sensors A, Sensors B ONCE", NewSENSJoin(), 0); err == nil {
		t.Fatal("join-attribute-free query must be rejected")
	}
}

func TestExternalHandlesSingleRelation(t *testing.T) {
	r := testRunner(t, 50, 47)
	res, err := r.Run("SELECT A.temp FROM Sensors A WHERE A.temp > 0 ONCE", External{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("collection query returned nothing")
	}
}

func TestQueryDissemination(t *testing.T) {
	r := testRunner(t, 100, 53)
	x, err := r.ExecSQL(qBand(0.5), 0)
	if err != nil {
		t.Fatal(err)
	}
	DisseminateQuery(x)
	// Flooding: every node rebroadcasts exactly once.
	if got := r.Stats.TotalTx(PhaseQueryDissem); got < int64(r.Dep.N()) {
		t.Fatalf("flood transmissions = %d, want >= %d", got, r.Dep.N())
	}
	for i := 0; i < r.Dep.N(); i++ {
		p, _ := r.Stats.NodeTx(topology.NodeID(i), PhaseQueryDissem)
		if p == 0 {
			t.Fatalf("node %d never rebroadcast the query", i)
		}
	}
}

func TestStarExpansion(t *testing.T) {
	r := testRunner(t, 40, 59)
	res, err := r.Run("SELECT * FROM Sensors ONCE", External{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The standard schema has 6 attributes.
	if len(res.Columns) != 6 {
		t.Fatalf("SELECT * expanded to %d columns, want 6", len(res.Columns))
	}
	if len(res.Rows) != 40 {
		t.Fatalf("SELECT * returned %d rows, want 40", len(res.Rows))
	}
}

func TestDeterministicExecution(t *testing.T) {
	run := func() (int64, int) {
		r := testRunner(t, 150, 61)
		res, err := r.Run(qBand(0.4), NewSENSJoin(), 0)
		if err != nil {
			t.Fatal(err)
		}
		return r.Stats.TotalTx(SENSPhases...), len(res.Rows)
	}
	tx1, rows1 := run()
	tx2, rows2 := run()
	if tx1 != tx2 || rows1 != rows2 {
		t.Fatalf("non-deterministic: tx %d/%d rows %d/%d", tx1, tx2, rows1, rows2)
	}
}

func TestFourWayJoin(t *testing.T) {
	// Four aliases exercise relation-flag widths beyond the paper's
	// two-relation presentation (the flag prefix level gets fanout 16).
	r := testRunner(t, 40, 67)
	src := `SELECT A.temp, B.temp, C.temp, D.temp
		FROM Sensors A, Sensors B, Sensors C, Sensors D
		WHERE A.temp - B.temp > 2 AND abs(B.temp - C.temp) < 0.4
		AND C.temp - D.temp > 1 ONCE`
	x, err := r.ExecSQL(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := GroundTruth(x)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []Method{External{}, NewSENSJoin()} {
		res, err := r.Run(src, m, 0)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		sameRows(t, truth.Rows, res.Rows, "truth", m.Name())
	}
}
