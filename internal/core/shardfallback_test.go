package core

import (
	"fmt"
	"testing"

	"sensjoin/internal/netsim"
)

// The sharded engine is incompatible with tracing, reliable transport
// and the loss models; DESIGN.md promises the runner falls back to the
// classic engine automatically. These tests pin that promise for every
// enable order — including feature enables that bypass core.Runner and
// talk to netsim directly, which used to panic mid-run.
func TestShardFeatureFallbackOrderings(t *testing.T) {
	const src = `SELECT A.temp, B.hum FROM Sensors A, Sensors B WHERE A.temp - B.temp > 8.0 ONCE`
	mk := func(shards int) *Runner {
		r, err := NewRunner(SetupConfig{Nodes: 150, Seed: 7, Shards: shards, Private: true, SetupWorkers: 1})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	// Reference rows from the classic engine, no features.
	ref, err := mk(0).Run(src, NewSENSJoin(), 0)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		// enable applies the feature(s) to a sharded runner.
		enable func(r *Runner)
		// lossy features change delivery outcomes, so only the fallback
		// itself (no panic, sharding off, run completes) is checked.
		lossy bool
	}{
		{"trace", func(r *Runner) { r.EnableTrace() }, false},
		{"reliable", func(r *Runner) { r.EnableReliableTransport(netsim.ReliableConfig{}) }, false},
		{"loss", func(r *Runner) { r.Net.SetLossRate(0.05, 1) }, true},
		{"link-loss", func(r *Runner) { r.Net.SetLinkLossRate(1, 2, 0.5) }, true},
		{"trace-then-reliable", func(r *Runner) {
			r.EnableTrace()
			r.EnableReliableTransport(netsim.ReliableConfig{})
		}, false},
		{"reliable-then-trace", func(r *Runner) {
			r.EnableReliableTransport(netsim.ReliableConfig{})
			r.EnableTrace()
		}, false},
		{"loss-then-trace-then-reliable", func(r *Runner) {
			r.Net.SetLossRate(0.05, 1)
			r.EnableTrace()
			r.EnableReliableTransport(netsim.ReliableConfig{})
		}, true},
		// Direct netsim enables, bypassing the Runner wrappers.
		{"netsim-reliable-direct", func(r *Runner) { r.Net.EnableReliable(netsim.ReliableConfig{}) }, false},
		{"netsim-tracer-direct", func(r *Runner) {
			r.Net.SetTracer(func(netsim.TraceEvent) {})
		}, false},
		{"netsim-linkloss-direct", func(r *Runner) { r.Net.SetLinkLossRate(3, 4, 1.0) }, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("panic: %v", p)
				}
			}()
			r := mk(4)
			tc.enable(r)
			if r.Sim.Sharded() {
				t.Fatalf("simulator still sharded after enabling %s", tc.name)
			}
			res, err := r.Run(src, NewSENSJoin(), 0)
			if err != nil {
				t.Fatal(err)
			}
			if tc.lossy {
				return
			}
			if fmt.Sprint(res.Rows) != fmt.Sprint(ref.Rows) {
				t.Fatalf("rows differ from classic engine:\n got %v\nwant %v", res.Rows, ref.Rows)
			}
		})
	}
}

// A feature enabled on a fresh network followed by BindSharding (the
// construction-time order) must also fall back instead of panicking.
func TestShardBindAfterFeatureFallsBack(t *testing.T) {
	r, err := NewRunner(SetupConfig{Nodes: 150, Seed: 7, Private: true, SetupWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	r.Net.EnableReliable(netsim.ReliableConfig{})
	r.Sim.EnableSharding(make([]int32, r.Dep.N()), 2, 1e-3, 2)
	r.Net.BindSharding() // used to panic
	if r.Sim.Sharded() {
		t.Fatal("BindSharding kept sharding on with reliable transport enabled")
	}
}
