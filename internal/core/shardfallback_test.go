package core

import (
	"fmt"
	"testing"

	"sensjoin/internal/netsim"
)

// The sharded engine is incompatible with reliable transport and the
// loss models; DESIGN.md promises the runner falls back to the classic
// engine automatically. Tracing, by contrast, composes with sharding
// (per-region buffers, canonical journal order) and must NOT fall back.
// These tests pin both promises for every enable order — including
// feature enables that bypass core.Runner and talk to netsim directly,
// which used to panic mid-run.
func TestShardFeatureFallbackOrderings(t *testing.T) {
	const src = `SELECT A.temp, B.hum FROM Sensors A, Sensors B WHERE A.temp - B.temp > 8.0 ONCE`
	mk := func(shards int) *Runner {
		r, err := NewRunner(SetupConfig{Nodes: 150, Seed: 7, Shards: shards, Private: true, SetupWorkers: 1})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	// Reference rows from the classic engine, no features.
	ref, err := mk(0).Run(src, NewSENSJoin(), 0)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		// enable applies the feature(s) to a sharded runner.
		enable func(r *Runner)
		// lossy features change delivery outcomes, so only the fallback
		// itself (no panic, sharding off, run completes) is checked.
		lossy bool
		// keepSharded marks features that compose with the sharded
		// engine: after enable the simulator must STILL be sharded.
		keepSharded bool
	}{
		{"trace", func(r *Runner) { r.EnableTrace() }, false, true},
		{"reliable", func(r *Runner) { r.EnableReliableTransport(netsim.ReliableConfig{}) }, false, false},
		{"loss", func(r *Runner) { r.Net.SetLossRate(0.05, 1) }, true, false},
		{"link-loss", func(r *Runner) { r.Net.SetLinkLossRate(1, 2, 0.5) }, true, false},
		{"trace-then-reliable", func(r *Runner) {
			r.EnableTrace()
			r.EnableReliableTransport(netsim.ReliableConfig{})
		}, false, false},
		{"reliable-then-trace", func(r *Runner) {
			r.EnableReliableTransport(netsim.ReliableConfig{})
			r.EnableTrace()
		}, false, false},
		{"loss-then-trace-then-reliable", func(r *Runner) {
			r.Net.SetLossRate(0.05, 1)
			r.EnableTrace()
			r.EnableReliableTransport(netsim.ReliableConfig{})
		}, true, false},
		// Direct netsim enables, bypassing the Runner wrappers.
		{"netsim-reliable-direct", func(r *Runner) { r.Net.EnableReliable(netsim.ReliableConfig{}) }, false, false},
		{"netsim-tracer-direct", func(r *Runner) {
			r.Net.SetTracer(func(netsim.TraceEvent) {})
		}, false, true},
		{"netsim-linkloss-direct", func(r *Runner) { r.Net.SetLinkLossRate(3, 4, 1.0) }, true, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("panic: %v", p)
				}
			}()
			r := mk(4)
			tc.enable(r)
			if r.Sim.Sharded() != tc.keepSharded {
				t.Fatalf("after enabling %s: sharded = %t, want %t", tc.name, r.Sim.Sharded(), tc.keepSharded)
			}
			res, err := r.Run(src, NewSENSJoin(), 0)
			if err != nil {
				t.Fatal(err)
			}
			if tc.lossy {
				return
			}
			if fmt.Sprint(res.Rows) != fmt.Sprint(ref.Rows) {
				t.Fatalf("rows differ from classic engine:\n got %v\nwant %v", res.Rows, ref.Rows)
			}
		})
	}
}

// A feature enabled on a fresh network followed by BindSharding (the
// construction-time order) must also fall back instead of panicking.
func TestShardBindAfterFeatureFallsBack(t *testing.T) {
	r, err := NewRunner(SetupConfig{Nodes: 150, Seed: 7, Private: true, SetupWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	r.Net.EnableReliable(netsim.ReliableConfig{})
	r.Sim.EnableSharding(make([]int32, r.Dep.N()), 2, 1e-3, 2)
	r.Net.BindSharding() // used to panic
	if r.Sim.Sharded() {
		t.Fatal("BindSharding kept sharding on with reliable transport enabled")
	}
}
