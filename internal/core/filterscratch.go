package core

import (
	"slices"
	"sync"

	"sensjoin/internal/query"
	"sensjoin/internal/zorder"
)

// filterScratch holds the reusable buffers of the base station's filter
// computation (computeFilter / computeFilterBand). The hot loop of the
// pre-computation join visits O(pairs · conds) cell lookups; with the
// seed implementation every lookup deinterleaved a key and allocated
// fresh bound slices, and marking went through a map[Key]bool. The
// scratch replaces all of that with index-based buffers over a sorted,
// duplicate-free key universe:
//
//   - uniq is the sorted unique key set; all other buffers are indexed
//     by position in uniq, so "marked" is a []bool and alias partitions
//     are []int32 index lists.
//   - bounds caches the per-dimension cell interval of every unique key,
//     computed once per filter call (O(m·d) deinterleaves) instead of
//     once per visited pair per referenced attribute.
//
// Scratches are pooled; a scratch must not be shared between goroutines
// while in use.
type filterScratch struct {
	uniq     []zorder.Key
	aliasIdx [][]int32
	marked   []bool
	assign   []int32
	bounds   []query.Interval // len(uniq) × len(dims), row-major by key
	coords   []uint32
	checks   [][]int32
	rights   []bandEntry
}

// bandEntry pairs a right-hand key (by uniq index) with its cell
// coordinate in the band dimension.
type bandEntry struct {
	idx   int32
	coord int
}

var filterPool = sync.Pool{New: func() any { return new(filterScratch) }}

func getFilterScratch() *filterScratch  { return filterPool.Get().(*filterScratch) }
func putFilterScratch(s *filterScratch) { filterPool.Put(s) }

// setUniq fills s.uniq with the sorted, duplicate-free form of keys and
// returns it. The result stays valid until the next setUniq call.
func (s *filterScratch) setUniq(keys []zorder.Key) []zorder.Key {
	s.uniq = append(s.uniq[:0], keys...)
	slices.Sort(s.uniq)
	s.uniq = slices.Compact(s.uniq)
	return s.uniq
}

// fillAliases partitions uniq into per-alias index lists by relation
// flag. It reports false when some alias has no keys (nothing joins).
func (s *filterScratch) fillAliases(p *plan, uniq []zorder.Key, n int) bool {
	for len(s.aliasIdx) < n {
		s.aliasIdx = append(s.aliasIdx, nil)
	}
	ok := true
	for i := 0; i < n; i++ {
		buf := s.aliasIdx[i][:0]
		flag := zorder.FlagFor(i, n)
		for idx, k := range uniq {
			if p.grid.Flags(k)&flag != 0 {
				buf = append(buf, int32(idx))
			}
		}
		s.aliasIdx[i] = buf
		if len(buf) == 0 {
			ok = false
		}
	}
	return ok
}

// fillBounds precomputes the per-dimension cell interval of every key in
// uniq into s.bounds (row-major: bounds[i*nd+di] is key i, dimension di).
func (s *filterScratch) fillBounds(p *plan, uniq []zorder.Key) {
	nd := len(p.grid.Dims)
	need := len(uniq) * nd
	if cap(s.bounds) < need {
		s.bounds = make([]query.Interval, need)
	} else {
		s.bounds = s.bounds[:need]
	}
	if cap(s.coords) < nd {
		s.coords = make([]uint32, nd)
	} else {
		s.coords = s.coords[:nd]
	}
	for i, k := range uniq {
		_, coords := p.grid.DeinterleaveInto(k, s.coords)
		for di, d := range p.grid.Dims {
			lo, hi := d.Bounds(coords[di])
			s.bounds[i*nd+di] = query.Interval{Lo: lo, Hi: hi}
		}
	}
}

// boundsEnv returns a tri-state evaluation environment resolving
// attribute references through the precomputed bounds of the keys
// currently assigned per alias in assign. The environment is built (and
// boxed) once per filter call, not once per visited pair.
func (s *filterScratch) boundsEnv(p *plan, assign []int32) query.BoundsEnv {
	nd := len(p.grid.Dims)
	return query.CellEnv{Lookup: func(rel int, name string) query.Interval {
		di, ok := p.dimIndex[name]
		if !ok {
			// A join condition referencing a non-join attribute cannot
			// happen (Analyze defines join attrs from join conditions),
			// but stay sound.
			return query.Everything()
		}
		return s.bounds[int(assign[rel])*nd+di]
	}}
}

// markedBuf returns a zeroed m-entry marking buffer.
func (s *filterScratch) markedBuf(m int) []bool {
	if cap(s.marked) < m {
		s.marked = make([]bool, m)
	} else {
		s.marked = s.marked[:m]
		clear(s.marked)
	}
	return s.marked
}

// assignBuf returns an n-entry assignment buffer.
func (s *filterScratch) assignBuf(n int) []int32 {
	if cap(s.assign) < n {
		s.assign = make([]int32, n)
	} else {
		s.assign = s.assign[:n]
	}
	return s.assign
}

// fillChecks groups join conditions by the highest alias they reference:
// checks[l] lists the conditions that become checkable once alias l is
// bound (early pruning in the backtracking join).
func (s *filterScratch) fillChecks(conds []query.BoolExpr, n int) [][]int32 {
	for len(s.checks) < n {
		s.checks = append(s.checks, nil)
	}
	checks := s.checks[:n]
	for l := range checks {
		checks[l] = checks[l][:0]
	}
	for ci, c := range conds {
		max := 0
		c.VisitNums(func(e query.NumExpr) {
			if at, ok := e.(query.Attr); ok && at.Ref.Rel > max {
				max = at.Ref.Rel
			}
		})
		checks[max] = append(checks[max], int32(ci))
	}
	return checks
}

// collectMarked materializes the marked subset of uniq. uniq is sorted
// and duplicate-free, so the result is already canonical; nil when
// nothing is marked, matching quadtree.NormalizeKeys of an empty set.
func collectMarked(uniq []zorder.Key, marked []bool) []zorder.Key {
	count := 0
	for _, m := range marked {
		if m {
			count++
		}
	}
	if count == 0 {
		return nil
	}
	out := make([]zorder.Key, 0, count)
	for i, k := range uniq {
		if marked[i] {
			out = append(out, k)
		}
	}
	return out
}
