package core

import (
	"testing"

	"sensjoin/internal/netsim"
	"sensjoin/internal/topology"
)

// Churn & mid-round repair tests: the repair path heals severed
// subtrees inside one execution, the incompleteness classifier covers
// every branch through the reliable scoped-recovery path, and sustained
// churn rounds audit clean (no silent wrong answers).

// TestRepairHealsSeveredSubtreeMidRound severs a loaded tree edge while
// the round is in flight. With mid-round repair armed the orphaned
// subtree is re-parented onto a surviving path and its traffic replayed
// by the recovery wave: the round ends complete and oracle-exact, with
// the repair visible in the result.
func TestRepairHealsSeveredSubtreeMidRound(t *testing.T) {
	r := testRunner(t, 150, 73)
	r.EnableReliableTransport(netsim.ReliableConfig{})
	r.EnableMidRoundRepair()
	child, parent := failLink(r)
	x, err := r.ExecSQL(qBand(0.5), 0)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := GroundTruth(x)
	if err != nil {
		t.Fatal(err)
	}
	r.Sim.Schedule(0.5, func() { r.Net.LinkDown(child, parent) })
	res, err := r.Run(qBand(0.5), NewSENSJoin(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Repairs == 0 {
		t.Fatal("severed tree edge did not trigger a mid-round repair")
	}
	if !res.Complete {
		t.Fatalf("repair did not restore completeness (reason %q, missing %v)",
			res.IncompleteReason, res.MissingSubtrees)
	}
	if res.RepairLatency <= 0 {
		t.Fatalf("RepairLatency = %g, want > 0", res.RepairLatency)
	}
	sameRows(t, truth.Rows, res.Rows, "truth", "repaired")
	// The runner follows the swap: the repaired tree no longer routes the
	// orphan through the severed link.
	if r.Tree.Parent[child] == parent {
		t.Fatalf("runner tree still parents %d on %d across the downed link", child, parent)
	}
}

// TestRepairDisabledStaysIncomplete is the control: same severed edge,
// repair off — the round must honestly report the missing subtree.
func TestRepairDisabledStaysIncomplete(t *testing.T) {
	r := testRunner(t, 150, 73)
	r.EnableReliableTransport(netsim.ReliableConfig{})
	child, parent := failLink(r)
	r.Sim.Schedule(0.5, func() { r.Net.LinkDown(child, parent) })
	res, err := r.Run(qBand(0.5), NewSENSJoin(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Fatal("severed subtree with repair disabled cannot be complete")
	}
	if res.Repairs != 0 {
		t.Fatalf("Repairs = %d with repair disabled", res.Repairs)
	}
	if res.IncompleteReason == "" || len(res.MissingSubtrees) == 0 {
		t.Fatalf("incomplete result lacks provenance: reason %q, missing %v",
			res.IncompleteReason, res.MissingSubtrees)
	}
}

// TestRecoveryReasonPartition: the victim leaf is alive but every link
// to it is down — scoped recovery must classify the missing subtree as
// a partition, not loss.
func TestRecoveryReasonPartition(t *testing.T) {
	r := lineRunner(t, 4) // chain 0-1-2-3-4
	r.EnableReliableTransport(netsim.ReliableConfig{})
	victim := topology.NodeID(4)
	r.Net.LinkDown(victim, r.Tree.Parent[victim])
	res, err := r.Run(qBand(10), NewSENSJoin(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Fatal("partitioned leaf cannot be complete")
	}
	if res.IncompleteReason != ReasonPartition {
		t.Fatalf("IncompleteReason = %q, want %q", res.IncompleteReason, ReasonPartition)
	}
	if len(res.MissingSubtrees) != 1 || res.MissingSubtrees[0] != victim {
		t.Fatalf("MissingSubtrees = %v, want [%d]", res.MissingSubtrees, victim)
	}
}

// TestRecoveryReasonDeadSubtree: a relay dies mid-round; its subtree is
// missing because it is dead, and the verdict must say so.
func TestRecoveryReasonDeadSubtree(t *testing.T) {
	r := lineRunner(t, 4)
	r.EnableReliableTransport(netsim.ReliableConfig{})
	victim := topology.NodeID(2)
	r.Sim.Schedule(0.5, func() { r.Net.KillNode(victim) })
	res, err := r.Run(qBand(10), NewSENSJoin(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Fatal("dead relay cannot leave the round complete")
	}
	if res.IncompleteReason != ReasonDeadSubtree {
		t.Fatalf("IncompleteReason = %q, want %q", res.IncompleteReason, ReasonDeadSubtree)
	}
	if len(res.MissingSubtrees) == 0 {
		t.Fatal("dead subtree not named in MissingSubtrees")
	}
}

// TestRecoveryReasonLoss: both directions of a tree edge are jammed at
// 100% loss. The link is physically up and the subtree alive and
// connected, so the only honest classification is loss.
func TestRecoveryReasonLoss(t *testing.T) {
	r := lineRunner(t, 4)
	r.EnableReliableTransport(netsim.ReliableConfig{})
	r.Net.SetLinkLossRate(1, 2, 1.0)
	r.Net.SetLinkLossRate(2, 1, 1.0)
	res, err := r.Run(qBand(10), NewSENSJoin(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Fatal("fully jammed tree edge cannot leave the round complete")
	}
	if res.IncompleteReason != ReasonLoss {
		t.Fatalf("IncompleteReason = %q, want %q", res.IncompleteReason, ReasonLoss)
	}
	if len(res.MissingSubtrees) != 1 || res.MissingSubtrees[0] != 2 {
		t.Fatalf("MissingSubtrees = %v, want [2]", res.MissingSubtrees)
	}
}

// TestChurnRoundsAuditClean drives several query rounds under live
// churn with repair armed, auditing every round (including the
// churn-safety pass): zero violations, and every incomplete round must
// carry a reason and name its missing subtrees.
func TestChurnRoundsAuditClean(t *testing.T) {
	r := testRunner(t, 150, 101)
	r.AutoAudit = true
	r.EnableReliableTransport(netsim.ReliableConfig{})
	r.EnableMidRoundRepair()
	ch := r.AttachChurn(netsim.ChurnConfig{Seed: 17, Rate: 0.01, Epoch: 10})
	complete := 0
	const rounds = 6
	for i := 0; i < rounds; i++ {
		ch.Cover(r.Sim.Now() + 60)
		res, violations, err := r.AuditRun(qBand(0.5), NewSENSJoin(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(violations) != 0 {
			t.Fatalf("round %d: audit violations under churn: %v", i, violations)
		}
		if res.Complete {
			complete++
		} else if res.IncompleteReason == "" || len(res.MissingSubtrees) == 0 {
			t.Fatalf("round %d: incomplete without provenance: reason %q, missing %v",
				i, res.IncompleteReason, res.MissingSubtrees)
		}
	}
	if complete == 0 {
		t.Fatalf("no round completed across %d churn rounds", rounds)
	}
	if ch.Deaths == 0 {
		t.Fatal("churn produced no deaths; the test exercised nothing")
	}
}

// TestSoakChurn is the chaos soak: sustained churn over many rounds
// with reliable transport, mid-round repair and full auditing. Asserts
// the graceful-degradation contract in bulk — complete rounds are
// oracle-exact, incomplete rounds carry provenance, at least one
// mid-round repair succeeded, and completeness stays above a floor.
func TestSoakChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode")
	}
	r := testRunner(t, 200, 131)
	r.AutoAudit = true
	r.EnableReliableTransport(netsim.ReliableConfig{})
	r.EnableMidRoundRepair()
	// Churn budget leans toward mobility (small DeathShare): moved nodes
	// sever links mid-round but their data is recoverable over repaired
	// paths, which is exactly the behaviour the soak wants to prove.
	ch := r.AttachChurn(netsim.ChurnConfig{Seed: 29, Rate: 0.006, Epoch: 8, DeathShare: 0.05, Speed: 3})
	const rounds = 12
	complete, repairs := 0, 0
	for i := 0; i < rounds; i++ {
		ch.Cover(r.Sim.Now() + 80)
		res, violations, err := r.AuditRun(qBand(0.5), NewSENSJoin(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(violations) != 0 {
			t.Fatalf("round %d: audit violations: %v", i, violations)
		}
		repairs += res.Repairs
		if res.Complete {
			complete++
		} else if res.IncompleteReason == "" || len(res.MissingSubtrees) == 0 {
			t.Fatalf("round %d: incomplete without provenance", i)
		}
	}
	t.Logf("churn soak: %d/%d rounds complete, %d mid-round repairs, %d deaths, %d moves",
		complete, rounds, repairs, ch.Deaths, ch.Moves)
	if repairs == 0 {
		t.Fatalf("no mid-round repair across %d churn rounds", rounds)
	}
	if complete*2 < rounds {
		t.Fatalf("completeness collapsed: %d/%d rounds complete", complete, rounds)
	}
}
