package core

import (
	"math"
	"sort"

	"sensjoin/internal/query"
	"sensjoin/internal/topology"
)

// Predicate-indexed exact-join kernel.
//
// The base station's final join (paper §IV-D) was an O(∏|Rᵢ|) nested
// loop over the complete tuples. Almost every workload condition is an
// equality or a band constraint (see query.ShapeOf), so the kernel
// replaces the inner scans with per-level probe structures: hash
// partitioning on an equality attribute, or a sorted array probed with a
// binary-searched value window for a band constraint. Levels with no
// indexable condition fall back to the scan the seed used.
//
// Exactness: the probe structures only restrict *candidate* enumeration.
// Every conjunct — including the one backing an index — is still
// evaluated through its compiled closure at the first level where all
// its relations are bound, so a combination is emitted iff the nested
// loop would emit it. Band windows are widened by one ulp on each side
// (and band interval constants by one ulp at plan time) so that
// floating-point rounding of "a - b OP c" can never push a true match
// outside the window; hash probing relies on Go map float64 keys
// matching == semantics exactly (±0 collide, NaN never matches).
//
// Determinism: the nested loop emitted rows in lexicographic order of
// the per-level tuple indexes. Index probing enumerates in a different
// order, so each match records its rank — the combination's position in
// that lexicographic order — and matches are replayed in rank order
// through the identical emission code (row slab, aggregation,
// contributing-node set). Output is therefore byte-identical to the
// seed's, including the order of floating-point accumulation in
// SUM/AVG. When the planner keeps the original scan order (no indexable
// condition, or rank arithmetic would overflow), rows stream directly
// without the rank buffer, exactly like the seed.

// accessPath is a join level's candidate enumeration strategy.
type accessPath int8

const (
	pathScan accessPath = iota
	pathHash
	pathBand
)

func (p accessPath) String() string {
	switch p {
	case pathHash:
		return "hash"
	case pathBand:
		return "band"
	default:
		return "scan"
	}
}

// joinPlanInfo records the kernel's planning decision for tests.
type joinPlanInfo struct {
	// Order lists the FROM indexes in probe order.
	Order []int
	// Paths[i] is the access path of Order[i].
	Paths []string
	// Streamed reports whether rows streamed in enumeration order
	// (pure scan plan) instead of the rank-ordered replay.
	Streamed bool
}

// joinPlanHook, when non-nil, receives every kernel plan. Tests use it
// to assert which access path ran; it must stay nil outside tests.
var joinPlanHook func(joinPlanInfo)

// levelPlan is one join level's planned access.
type levelPlan struct {
	level int
	path  accessPath
	// For hash/band paths: the conjunct backing the index, its attribute
	// on this level (self) and on an earlier-bound level (other).
	self, other query.AttrRef
	// Band geometry: value(L) ± value(R) ∈ [lo, hi], pre-widened by one
	// ulp per side; selfIsL orients the window formula.
	sum     bool
	selfIsL bool
	lo, hi  float64
	// conds lists conjunct indexes to evaluate at this level: every
	// conjunct whose relations are all bound once this level is.
	conds []int
}

// joinPlan is the kernel's full decision.
type joinPlan struct {
	order []levelPlan
	// strides give each level's rank weight in the original nested-loop
	// order: rank = Σ tupleIndex[level] * strides[level].
	strides []uint64
	// stream is set when enumeration order equals nested-loop order, so
	// emission can skip the rank buffer.
	stream bool
}

func (p joinPlan) info() joinPlanInfo {
	in := joinPlanInfo{Streamed: p.stream}
	for _, lp := range p.order {
		in.Order = append(in.Order, lp.level)
		in.Paths = append(in.Paths, lp.path.String())
	}
	return in
}

// planJoin decides join order and per-level access paths. lens holds
// the candidate tuple count per FROM index; condRels the referenced
// relations per conjunct. The order heuristic is a deterministic greedy
// selectivity estimate: start at the smallest relation, then prefer a
// level reachable through an equality (assumed most selective), then a
// band, then the smallest remaining relation; all ties break toward the
// lower FROM index.
func planJoin(n int, lens []int, shape query.JoinShape, condRels [][]int) joinPlan {
	strides, ok := rankStrides(n, lens)
	if !ok || !shape.Indexable() || n < 2 {
		return scanPlan(n, strides, condRels)
	}

	chosen := make([]bool, n)
	order := make([]levelPlan, 0, n)
	// Start level: smallest relation (scan — nothing is bound yet).
	start := 0
	for i := 1; i < n; i++ {
		if lens[i] < lens[start] {
			start = i
		}
	}
	order = append(order, levelPlan{level: start, path: pathScan})
	chosen[start] = true

	for pos := 1; pos < n; pos++ {
		best := levelPlan{level: -1, path: pathScan}
		for level := 0; level < n; level++ {
			if chosen[level] {
				continue
			}
			lp := bestAccess(level, chosen, shape)
			if best.level < 0 || betterAccess(lp, best, lens) {
				best = lp
			}
		}
		order = append(order, best)
		chosen[best.level] = true
	}

	plan := joinPlan{order: order, strides: strides}
	assignConds(plan.order, condRels)
	plan.stream = pureScan(plan.order)
	return plan
}

// scanPlan is the seed-equivalent fallback: original level order, scans
// everywhere, rows streamed in enumeration order.
func scanPlan(n int, strides []uint64, condRels [][]int) joinPlan {
	plan := joinPlan{order: make([]levelPlan, n), strides: strides, stream: true}
	for i := range plan.order {
		plan.order[i] = levelPlan{level: i, path: pathScan}
	}
	assignConds(plan.order, condRels)
	return plan
}

// rankStrides computes the lexicographic rank weights, refusing (ok
// false) when the cross-product size would overflow rank arithmetic.
func rankStrides(n int, lens []int) ([]uint64, bool) {
	strides := make([]uint64, n)
	total := uint64(1)
	for i := n - 1; i >= 0; i-- {
		strides[i] = total
		l := uint64(lens[i])
		if l == 0 {
			l = 1
		}
		if total > math.MaxInt64/l {
			return strides, false
		}
		total *= l
	}
	return strides, true
}

// bestAccess picks the best index access for level given the bound set:
// hash over the first connecting equality, else a band window, else a
// scan.
func bestAccess(level int, bound []bool, shape query.JoinShape) levelPlan {
	for _, eq := range shape.Eq {
		if eq.L.Rel == level && bound[eq.R.Rel] {
			return levelPlan{level: level, path: pathHash, self: eq.L, other: eq.R}
		}
		if eq.R.Rel == level && bound[eq.L.Rel] {
			return levelPlan{level: level, path: pathHash, self: eq.R, other: eq.L}
		}
	}
	for _, b := range shape.Band {
		lp := levelPlan{level: level, path: pathBand, sum: b.Sum,
			lo: nextDown(b.Lo), hi: nextUp(b.Hi)}
		if b.L.Rel == level && bound[b.R.Rel] {
			lp.self, lp.other, lp.selfIsL = b.L, b.R, true
			return lp
		}
		if b.R.Rel == level && bound[b.L.Rel] {
			lp.self, lp.other, lp.selfIsL = b.R, b.L, false
			return lp
		}
	}
	return levelPlan{level: level, path: pathScan}
}

// betterAccess orders candidate levels: indexed beats scan, hash beats
// band, then fewer tuples, then lower FROM index.
func betterAccess(a, b levelPlan, lens []int) bool {
	rank := func(p accessPath) int {
		switch p {
		case pathHash:
			return 0
		case pathBand:
			return 1
		default:
			return 2
		}
	}
	if ra, rb := rank(a.path), rank(b.path); ra != rb {
		return ra < rb
	}
	if lens[a.level] != lens[b.level] {
		return lens[a.level] < lens[b.level]
	}
	return a.level < b.level
}

// assignConds attaches each conjunct to the first position where all its
// relations are bound (identical pruning to the seed's max-rel rule when
// the order is the identity).
func assignConds(order []levelPlan, condRels [][]int) {
	posOf := make(map[int]int, len(order))
	for pos, lp := range order {
		posOf[lp.level] = pos
	}
	for ci, rels := range condRels {
		at := 0
		for _, r := range rels {
			if p := posOf[r]; p > at {
				at = p
			}
		}
		order[at].conds = append(order[at].conds, ci)
	}
}

func pureScan(order []levelPlan) bool {
	for pos, lp := range order {
		if lp.path != pathScan || lp.level != pos {
			return false
		}
	}
	return true
}

func nextDown(x float64) float64 {
	if math.IsNaN(x) {
		return math.Inf(-1)
	}
	return math.Nextafter(x, math.Inf(-1))
}

func nextUp(x float64) float64 {
	if math.IsNaN(x) {
		return math.Inf(1)
	}
	return math.Nextafter(x, math.Inf(1))
}

// bandWindow computes the conservative candidate window for this level's
// attribute given the bound-side value o. An empty window (lo > hi)
// means no candidates; NaN arithmetic degrades to an unbounded side.
func (lp *levelPlan) bandWindow(o float64) (lo, hi float64) {
	if math.IsNaN(o) {
		return 1, 0 // NaN never satisfies a band comparison
	}
	switch {
	case lp.sum: // self ∈ [Lo - o, Hi - o]
		lo, hi = lp.lo-o, lp.hi-o
	case lp.selfIsL: // self - o ∈ [Lo, Hi]
		lo, hi = o+lp.lo, o+lp.hi
	default: // o - self ∈ [Lo, Hi]
		lo, hi = o-lp.hi, o-lp.lo
	}
	lo, hi = nextDown(lo), nextUp(hi)
	return lo, hi
}

// probeEntry is one tuple of a band-sorted level.
type probeEntry struct {
	v  float64
	ti int32
}

// kernelProbe is a built per-position probe structure.
type kernelProbe struct {
	hmap      map[float64][]int32
	sorted    []probeEntry
	probeSlot int // global slot of the bound-side attribute
}

// joinKernel computes the exact join over the per-alias candidate lists
// and evaluates the SELECT clause, returning rows (ordered and limited)
// and the contributing-node set. See the package comment above for the
// exactness and determinism argument.
func joinKernel(x *Exec, byAlias [][]finalTuple) ([]Row, map[topology.NodeID]bool) {
	n := len(byAlias)

	// The compiled program — slot layout, condition/SELECT/GROUP BY
	// closures, join shape — depends only on the query, so prepared
	// executions reuse a cached one; ad-hoc executions compile here.
	prog := x.prog
	if prog == nil {
		prog = compileKernel(x.Query, x.Analysis)
	}
	slotsOf := prog.slotsOf
	compiledConds := prog.compiledConds
	condRels := prog.condRels
	selects := prog.selects
	groupBy := prog.groupBy

	// Extract each candidate tuple's referenced values once (one map
	// lookup per tuple per attribute, not per combination).
	lens := make([]int, n)
	pre := make([][]float64, n)
	for level, ts := range byAlias {
		lens[level] = len(ts)
		slots := slotsOf[level]
		flat := make([]float64, len(ts)*len(slots))
		for ti, t := range ts {
			for k, s := range slots {
				flat[ti*len(slots)+k] = t.vals[s.name]
			}
		}
		pre[level] = flat
	}

	// Locate an attribute's position within a level's slot list (it was
	// resolved during condition compilation, so it exists).
	kIndexOf := func(level int, name string) int {
		for k, s := range slotsOf[level] {
			if s.name == name {
				return k
			}
		}
		return -1
	}
	slotFor := func(ref query.AttrRef) int {
		return slotsOf[ref.Rel][kIndexOf(ref.Rel, ref.Name)].slot
	}

	plan := planJoin(n, lens, prog.shape, condRels)
	if joinPlanHook != nil {
		joinPlanHook(plan.info())
	}

	// Build the probe structures the plan calls for.
	probes := make([]kernelProbe, n)
	for pos := range plan.order {
		lp := &plan.order[pos]
		level := lp.level
		stride := len(slotsOf[level])
		flat := pre[level]
		switch lp.path {
		case pathHash:
			k := kIndexOf(level, lp.self.Name)
			m := make(map[float64][]int32, lens[level])
			for ti := 0; ti < lens[level]; ti++ {
				v := flat[ti*stride+k]
				m[v] = append(m[v], int32(ti))
			}
			probes[pos] = kernelProbe{hmap: m, probeSlot: slotFor(lp.other)}
		case pathBand:
			k := kIndexOf(level, lp.self.Name)
			entries := make([]probeEntry, 0, lens[level])
			for ti := 0; ti < lens[level]; ti++ {
				v := flat[ti*stride+k]
				if math.IsNaN(v) {
					continue // NaN never satisfies a band comparison
				}
				entries = append(entries, probeEntry{v: v, ti: int32(ti)})
			}
			sort.Slice(entries, func(i, j int) bool {
				if entries[i].v != entries[j].v {
					return entries[i].v < entries[j].v
				}
				return entries[i].ti < entries[j].ti
			})
			probes[pos] = kernelProbe{sorted: entries, probeSlot: slotFor(lp.other)}
		}
	}

	// Result rows are carved from grow-only slabs: one allocation per
	// few thousand rows instead of one per row. Carved rows stay valid
	// because full slabs are abandoned, never reused.
	var slab []float64
	width := len(selects)
	newRow := func() Row {
		if len(slab) < width {
			slab = make([]float64, 4096*max(width, 1))
		}
		row := Row(slab[:width:width])
		slab = slab[width:]
		return row
	}

	var rows []Row
	contrib := make(map[topology.NodeID]bool)
	agg := newAggState(x.Query.Select)
	aggregated := hasAggregates(x.Query.Select)
	grouped := len(x.Query.GroupBy) > 0
	groups := make(map[string]*aggState)
	var groupKeys []string
	vals := make([]float64, prog.nslots)

	// emit runs the seed's per-combination body: fill the slot vector,
	// evaluate SELECT, record contributors, aggregate or append.
	emit := func(assign []int32) {
		for level := 0; level < n; level++ {
			slots := slotsOf[level]
			flat := pre[level]
			base := int(assign[level]) * len(slots)
			for k, s := range slots {
				vals[s.slot] = flat[base+k]
			}
		}
		row := newRow()
		for i, f := range selects {
			row[i] = f(vals)
		}
		for level := range byAlias {
			contrib[byAlias[level][assign[level]].node] = true
		}
		switch {
		case grouped:
			key := groupKeyOfCompiled(groupBy, vals)
			g := groups[key]
			if g == nil {
				g = newAggState(x.Query.Select)
				groups[key] = g
				groupKeys = append(groupKeys, key)
			}
			g.add(row)
		case aggregated:
			agg.add(row)
		default:
			rows = append(rows, row)
		}
	}

	// Enumerate matches. Streaming plans emit inline (enumeration order
	// is nested-loop order); indexed plans record (combination, rank)
	// and replay below.
	assign := make([]int32, n)
	var combos []int32
	var ranks []uint64
	var recurse func(pos int, rank uint64)
	recurse = func(pos int, rank uint64) {
		if pos == n {
			if plan.stream {
				emit(assign)
			} else {
				combos = append(combos, assign...)
				ranks = append(ranks, rank)
			}
			return
		}
		lp := &plan.order[pos]
		level := lp.level
		slots := slotsOf[level]
		flat := pre[level]
		stride := len(slots)
		try := func(ti int32) {
			base := int(ti) * stride
			for k, s := range slots {
				vals[s.slot] = flat[base+k]
			}
			for _, ci := range lp.conds {
				if !compiledConds[ci](vals) {
					return
				}
			}
			assign[level] = ti
			recurse(pos+1, rank+uint64(ti)*plan.strides[level])
		}
		switch lp.path {
		case pathHash:
			for _, ti := range probes[pos].hmap[vals[probes[pos].probeSlot]] {
				try(ti)
			}
		case pathBand:
			lo, hi := lp.bandWindow(vals[probes[pos].probeSlot])
			s := probes[pos].sorted
			i := sort.Search(len(s), func(i int) bool { return s[i].v >= lo })
			for ; i < len(s) && s[i].v <= hi; i++ {
				try(s[i].ti)
			}
		default:
			for ti := 0; ti < lens[level]; ti++ {
				try(int32(ti))
			}
		}
	}
	recurse(0, 0)

	if !plan.stream {
		// Replay in nested-loop order: ranks are distinct, so this order
		// is total and exactly the seed's emission order.
		perm := make([]int, len(ranks))
		for i := range perm {
			perm[i] = i
		}
		sort.Slice(perm, func(i, j int) bool { return ranks[perm[i]] < ranks[perm[j]] })
		for _, m := range perm {
			emit(combos[m*n : m*n+n])
		}
	}

	switch {
	case grouped:
		// Deterministic group order: sorted by group key; an ORDER BY
		// re-sorts below.
		sort.Strings(groupKeys)
		for _, key := range groupKeys {
			rows = append(rows, groups[key].rows()...)
		}
	case aggregated:
		rows = agg.rows()
	}
	return applyOrderLimit(x.Query, rows), contrib
}
