package core

import (
	"math"
	"sort"

	"sensjoin/internal/query"
	"sensjoin/internal/zorder"
)

// Band-join fast path for the base station's pre-computation join.
//
// The generic filter computation enumerates all key pairs. The
// experiment queries — and most real sensor joins — contain a
// *difference* or *band* condition over one join attribute
// (A.temp - B.temp > c, abs(A.temp - B.temp) < c). Such a condition
// restricts the partners of a key to a contiguous window in that
// dimension's cell order, so sorting the right-hand keys once replaces
// the inner scan with a binary-searched window. The window is computed
// conservatively (a superset of the possibly-matching cells); every
// candidate pair still passes through the full tri-state condition
// check, so the fast path returns exactly the generic filter.

// bandKind classifies the recognized index condition.
type bandKind int

const (
	bandDiffGT bandKind = iota // left.d - right.d > c (or >=)
	bandAbsLT                  // |left.d - right.d| < c (or <=)
)

// bandCond is a recognized index condition between two aliases.
type bandCond struct {
	kind  bandKind
	dim   int // grid dimension index
	c     float64
	left  int // alias on the positive side of the difference
	right int
}

// detectBandCond recognizes difference/band conditions usable as an
// index. It handles Cmp{Sub(Attr,Attr), Const} and Cmp{Abs(Sub), Const}
// shapes in both orientations.
func detectBandCond(p *plan, cond query.BoolExpr) (bandCond, bool) {
	// Constant folding lets conditions like "A.t - B.t > 2 + 1" match.
	cond = query.FoldBool(cond)
	cmp, ok := cond.(query.Cmp)
	if !ok {
		return bandCond{}, false
	}
	// Normalize to expr OP const.
	expr, cnst := cmp.L, cmp.R
	op := cmp.Op
	if _, isConst := expr.(query.Const); isConst {
		expr, cnst = cmp.R, cmp.L
		op = flipCmp(op)
	}
	k, isConst := cnst.(query.Const)
	if !isConst {
		return bandCond{}, false
	}
	attrsOf := func(e query.NumExpr) (l, r query.Attr, ok bool) {
		a, isArith := e.(query.Arith)
		if !isArith || a.Op != query.OpSub {
			return
		}
		l, ok1 := a.L.(query.Attr)
		r, ok2 := a.R.(query.Attr)
		if !ok1 || !ok2 || l.Ref.Name != r.Ref.Name || l.Ref.Rel == r.Ref.Rel {
			return query.Attr{}, query.Attr{}, false
		}
		return l, r, true
	}
	switch e := expr.(type) {
	case query.Arith: // difference condition
		l, r, ok := attrsOf(e)
		if !ok {
			return bandCond{}, false
		}
		dim, ok := p.dimIndex[l.Ref.Name]
		if !ok {
			return bandCond{}, false
		}
		switch op {
		case query.CmpGT, query.CmpGE:
			return bandCond{kind: bandDiffGT, dim: dim, c: k.V, left: l.Ref.Rel, right: r.Ref.Rel}, true
		case query.CmpLT, query.CmpLE:
			// l - r < c  ==  r - l > -c
			return bandCond{kind: bandDiffGT, dim: dim, c: -k.V, left: r.Ref.Rel, right: l.Ref.Rel}, true
		}
	case query.Abs: // band condition
		l, r, ok := attrsOf(e.X)
		if !ok {
			return bandCond{}, false
		}
		dim, ok := p.dimIndex[l.Ref.Name]
		if !ok {
			return bandCond{}, false
		}
		if op == query.CmpLT || op == query.CmpLE {
			return bandCond{kind: bandAbsLT, dim: dim, c: k.V, left: l.Ref.Rel, right: r.Ref.Rel}, true
		}
	}
	return bandCond{}, false
}

func flipCmp(op query.CmpOp) query.CmpOp {
	switch op {
	case query.CmpLT:
		return query.CmpGT
	case query.CmpLE:
		return query.CmpGE
	case query.CmpGT:
		return query.CmpLT
	case query.CmpGE:
		return query.CmpLE
	}
	return op
}

// computeFilterBand is the windowed two-relation filter computation.
// It requires a recognized index condition; callers fall back to the
// generic path otherwise.
func computeFilterBand(p *plan, keys []zorder.Key, bc bandCond) []zorder.Key {
	x := p.x
	n := len(x.Query.From)
	conds := x.Analysis.JoinConds
	for _, c := range x.Analysis.ConstPreds {
		if !c.Truth(emptyBounds{}).Possible() {
			return nil
		}
	}
	// Same pooled index-based scratch as the generic path (see
	// filterscratch.go): marking by position in the sorted unique key
	// universe, cell bounds precomputed once per call.
	s := getFilterScratch()
	defer putFilterScratch(s)
	uniq := s.setUniq(keys)
	if !s.fillAliases(p, uniq, n) {
		return nil
	}
	s.fillBounds(p, uniq)
	marked := s.markedBuf(len(uniq))
	assign := s.assignBuf(n)
	benv := s.boundsEnv(p, assign)

	dim := p.grid.Dims[bc.dim]
	nd := len(p.grid.Dims)
	coordOf := func(idx int32) int {
		_, coords := p.grid.DeinterleaveInto(uniq[idx], s.coords[:nd])
		return int(coords[bc.dim])
	}
	// Right keys sorted by their cell coordinate in the index dimension.
	rightIdx := s.aliasIdx[bc.right]
	if cap(s.rights) < len(rightIdx) {
		s.rights = make([]bandEntry, len(rightIdx))
	} else {
		s.rights = s.rights[:len(rightIdx)]
	}
	rights := s.rights
	for i, idx := range rightIdx {
		rights[i] = bandEntry{idx: idx, coord: coordOf(idx)}
	}
	sort.Slice(rights, func(i, j int) bool { return rights[i].coord < rights[j].coord })
	maxCell := int(dim.Size) - 1

	// Window half-width in cells, with one cell of slack on each side so
	// the window is a superset of the possibly-true pairs (cells are
	// closed intervals; boundary cells are handled separately).
	cells := bc.c / dim.Res

	lowerBound := func(coord int) int {
		return sort.Search(len(rights), func(i int) bool { return rights[i].coord >= coord })
	}
	upperBound := func(coord int) int {
		return sort.Search(len(rights), func(i int) bool { return rights[i].coord > coord })
	}

	tryPair := func(li, ri int32) {
		if marked[li] && marked[ri] {
			return
		}
		assign[bc.left], assign[bc.right] = li, ri
		for _, c := range conds {
			if !c.Truth(benv).Possible() {
				return
			}
		}
		marked[li] = true
		marked[ri] = true
	}

	for _, li := range s.aliasIdx[bc.left] {
		ca := coordOf(li)
		var lo, hi int // candidate index range [lo, hi) in rights
		switch bc.kind {
		case bandDiffGT:
			// possible when hi(left) - lo(right) > c; interior cells:
			// (ca - cb + 1) * res > c  =>  cb < ca + 1 - c/res.
			bound := int(math.Ceil(float64(ca) + 1 - cells))
			if ca == maxCell {
				bound = maxCell // unbounded left cell: everyone qualifies
			}
			lo, hi = 0, upperBound(bound+1)
		case bandAbsLT:
			span := int(math.Ceil(cells)) + 1
			lo, hi = lowerBound(ca-span), upperBound(ca+span)
		}
		for i := lo; i < hi; i++ {
			tryPair(li, rights[i].idx)
		}
		// Boundary cells of the right side extend to infinity and can
		// match regardless of the window; include them explicitly.
		for i := 0; i < len(rights) && rights[i].coord == 0; i++ {
			tryPair(li, rights[i].idx)
		}
		for i := len(rights) - 1; i >= 0 && rights[i].coord == maxCell; i-- {
			tryPair(li, rights[i].idx)
		}
	}

	return collectMarked(uniq, marked)
}
