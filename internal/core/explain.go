package core

import (
	"fmt"
	"strings"

	"sensjoin/internal/quadtree"
	"sensjoin/internal/zorder"
)

// Explain renders the execution plan of a query: how the WHERE clause
// splits into local predicates and join conditions, which attributes
// form the join-attribute tuple, how the quantization grid and quadtree
// level schedule look, what the pre-computation will transport, and the
// filter the base station would compute on the current snapshot.
func Explain(x *Exec) (string, error) {
	p, err := buildPlan(x)
	if err != nil {
		return "", err
	}
	a := x.Analysis
	var b strings.Builder

	fmt.Fprintf(&b, "query: %s\n\n", x.Query.String())
	fmt.Fprintf(&b, "relations (%d):\n", len(x.Query.From))
	for i, ref := range x.Query.From {
		members := 0
		flag := zorder.FlagFor(i, len(x.Query.From))
		for _, nd := range p.nodes {
			if nd != nil && nd.flags&flag != 0 {
				members++
			}
		}
		fmt.Fprintf(&b, "  [%d] %s AS %s — %d member nodes\n", i, ref.Relation, ref.Alias, members)
		if pred := a.LocalPredicate(i); pred != nil {
			fmt.Fprintf(&b, "      local predicate: %s (evaluated on the node)\n", pred.String())
		}
		fmt.Fprintf(&b, "      join attrs: %v   shipped attrs: %v (%d bytes/tuple)\n",
			a.JoinAttrs[i], a.ShippedAttrs[i], 2*len(a.ShippedAttrs[i]))
	}

	fmt.Fprintf(&b, "\njoin conditions (%d):\n", len(a.JoinConds))
	for _, c := range a.JoinConds {
		idx := ""
		if len(x.Query.From) == 2 {
			if bc, ok := detectBandCond(p, c); ok {
				kind := "difference"
				if bc.kind == bandAbsLT {
					kind = "band"
				}
				idx = fmt.Sprintf("  [indexable: %s on %q]", kind, p.dims[bc.dim])
			}
		}
		fmt.Fprintf(&b, "  %s%s\n", c.String(), idx)
	}
	for _, c := range a.ConstPreds {
		fmt.Fprintf(&b, "  constant: %s\n", c.String())
	}

	if p.grid == nil {
		b.WriteString("\nno join attributes: SENS-Join not applicable (use the external join)\n")
		return b.String(), nil
	}

	fmt.Fprintf(&b, "\nquantization grid (%d bits/key, %d relation-flag bits):\n",
		p.grid.TotalBits, p.grid.FlagBits)
	for _, d := range p.grid.Dims {
		fmt.Fprintf(&b, "  %-6s [%g, %g] step %g -> %d cells, %d bits\n",
			d.Name, d.Min, d.Max, d.Res, d.Size, d.Bits)
	}
	fmt.Fprintf(&b, "  quadtree level schedule: %v\n", p.grid.Levels())

	// Snapshot-dependent estimates.
	var keys []zorder.Key
	for _, nd := range p.nodes {
		if nd != nil {
			keys = append(keys, nd.key)
		}
	}
	keys = quadtree.NormalizeKeys(keys)
	enc := p.codec().Encode(keys)
	fmt.Fprintf(&b, "\npre-computation on the current snapshot:\n")
	fmt.Fprintf(&b, "  members: %d nodes, %d distinct join-attribute keys\n", p.members, len(keys))
	fmt.Fprintf(&b, "  raw join-attribute tuples: %d bytes; quadtree: %d bytes (%.0f%%)\n",
		p.members*p.rawTupleBytes, enc.ByteLen(),
		100*float64(enc.ByteLen())/float64(maxInt(1, p.members*p.rawTupleBytes)))
	filter := computeFilter(p, keys, true)
	fmt.Fprintf(&b, "  join filter: %d keys (%.1f%% of distinct), %d bytes encoded\n",
		len(filter), 100*float64(len(filter))/float64(maxInt(1, len(keys))),
		p.codec().Encode(filter).ByteLen())
	return b.String(), nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
