package core

import (
	"sensjoin/internal/netsim"
	"sensjoin/internal/routing"
	"sensjoin/internal/topology"
	"sensjoin/internal/trace"
)

// Mid-round tree repair. Scoped recovery (recovery.go) alone can
// re-request a missing subtree, but when churn severed the subtree's
// tree edge the re-request travels into a void: the old path no longer
// exists. With Exec.Repair armed, every recovery round first re-parents
// the orphaned nodes onto the surviving tree (routing.Repair — the
// incremental generalization of RebuildTreeAvoidingFailures) and then
// replays the collection for exactly those subtrees over the repaired
// paths. Detection rides on the reliable transport's give-up signal:
// exhausted directed links mark tree edges as broken alongside links the
// simulator itself reports down or dead.

// repairExec probes for damage and, when any tree edge is broken or a
// rejoined node is attachable, swaps in an incrementally repaired tree.
// Returns whether a repair happened. The swap is propagated to the
// owning Runner (x.onTreeSwap) so everything that re-reads the tree —
// recovery rounds, audits of later runs, the depth gauge — follows.
func repairExec(x *Exec) bool {
	bad := x.Net.ExhaustedLinks()
	exhausted := func(a, b topology.NodeID) bool {
		return bad[netsim.Link{From: a, To: b}] > 0 || bad[netsim.Link{From: b, To: a}] > 0
	}
	broken := func(parent, child topology.NodeID) bool {
		return !x.Net.LinkOK(parent, child) || exhausted(parent, child)
	}
	var avoid func(parent, child topology.NodeID) bool
	if len(bad) > 0 {
		avoid = exhausted
	}
	nt, reattached := routing.Repair(x.Tree, x.Net.LiveNeighbors(), broken, avoid)
	if nt == x.Tree {
		return false
	}
	if x.repairs == 0 {
		x.repairAt = x.Sim.Now()
	}
	x.repairs++
	x.Tree = nt
	if x.onTreeSwap != nil {
		x.onTreeSwap(nt)
	}
	// The exhaustion record is consumed, exactly like
	// RebuildTreeAvoidingFailures: the next probe trusts the links again
	// unless they fail again.
	x.Net.ClearExhaustedLinks()
	x.span(trace.KindRepair, topology.BaseStation, -1, PhaseRecovery, len(reattached))
	if x.Metrics != nil {
		x.Metrics.Repairs.Inc()
		x.Metrics.Reattached.Add(int64(len(reattached)))
	}
	return true
}

// EnableMidRoundRepair arms mid-round incremental tree repair for every
// execution this runner starts: scoped recovery re-parents severed
// subtrees and replays their traffic instead of reporting them missing.
// Requires reliable transport to matter (recovery only runs there).
// Off by default — the paper's loss tables and the plain recovery tests
// keep their re-execute-everything semantics.
func (r *Runner) EnableMidRoundRepair() { r.repair = true }

// AttachChurn wires a churn & mobility injector to this runner's
// network and, when tracing or metrics are enabled, into the journal and
// the sensjoin_churn_* instrument family. Call Cover on the returned
// injector before each execution window. Attaching churn reverts a
// sharded runner to the classic engine (netsim.NewChurn does), which is
// what makes same-seed churn runs replay bit-identically at any
// shard/worker count.
func (r *Runner) AttachChurn(cfg netsim.ChurnConfig) *netsim.Churn {
	ch := netsim.NewChurn(r.Net, cfg)
	if r.reg != nil {
		ch.SetMetrics(netsim.NewChurnMetrics(r.reg))
	}
	// The journal hook reads r.Trace at event time, so AttachChurn and
	// EnableTrace compose in either order.
	ch.OnEvent = func(ev netsim.ChurnEvent) {
		if r.Trace == nil {
			return
		}
		var k trace.Kind
		switch ev.Kind {
		case netsim.ChurnDeath:
			k = trace.KindChurnDeath
		case netsim.ChurnRejoin:
			k = trace.KindChurnRejoin
		default:
			k = trace.KindChurnMove
		}
		r.Trace.Span(ev.At, k, ev.Node, -1, "", ev.Arg)
	}
	r.churn = ch
	return ch
}

// Churn returns the attached churn injector, nil when none.
func (r *Runner) Churn() *netsim.Churn { return r.churn }
