package core

import (
	"fmt"
	"reflect"
	"testing"

	"sensjoin/internal/query"
	"sensjoin/internal/zorder"
)

// filterKeysOf runs the base-station filter computation directly on the
// runner's snapshot, with or without the band index.
func filterKeysOf(t *testing.T, r *Runner, src string, useIndex bool) []zorder.Key {
	t.Helper()
	x, err := r.ExecSQL(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := buildPlan(x)
	if err != nil {
		t.Fatal(err)
	}
	var keys []zorder.Key
	for _, nd := range p.nodes {
		if nd != nil {
			keys = append(keys, nd.key)
		}
	}
	return computeFilter(p, keys, useIndex)
}

// The fast path must return exactly the generic filter on every query
// shape it recognizes.
func TestBandFilterEqualsGeneric(t *testing.T) {
	r := testRunner(t, 250, 7)
	queries := []string{
		// Difference conditions in all orientations.
		"A.temp - B.temp > 3",
		"A.temp - B.temp >= 3",
		"B.temp - A.temp > 2.5",
		"A.temp - B.temp < -4", // == B - A > 4
		"A.temp - B.temp <= -4",
		"3 < A.temp - B.temp", // constant on the left
		// Band conditions.
		"abs(A.temp - B.temp) < 0.2",
		"abs(A.temp - B.temp) <= 0.05",
		"abs(A.temp - B.temp) < 0.2 AND distance(A.x, A.y, B.x, B.y) > 100",
		// Index condition plus extra conditions that must be re-checked.
		"A.temp - B.temp > 2 AND A.hum - B.hum > 1",
		"A.temp - B.temp > 100",  // empty filter
		"A.temp - B.temp > -100", // everything matches
	}
	for _, cond := range queries {
		src := fmt.Sprintf("SELECT A.temp, B.temp, A.hum, B.hum FROM Sensors A, Sensors B WHERE %s ONCE", cond)
		fast := filterKeysOf(t, r, src, true)
		slow := filterKeysOf(t, r, src, false)
		if !reflect.DeepEqual(fast, slow) {
			t.Fatalf("filter mismatch for %q: fast %d keys, generic %d keys", cond, len(fast), len(slow))
		}
	}
}

func TestBandDetectRecognizesShapes(t *testing.T) {
	r := testRunner(t, 30, 9)
	x, err := r.ExecSQL("SELECT A.temp, B.temp FROM Sensors A, Sensors B WHERE A.temp - B.temp > 3 ONCE", 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := buildPlan(x)
	if err != nil {
		t.Fatal(err)
	}
	bc, ok := detectBandCond(p, x.Analysis.JoinConds[0])
	if !ok {
		t.Fatal("difference condition not recognized")
	}
	if bc.kind != bandDiffGT || bc.c != 3 || bc.left != 0 || bc.right != 1 {
		t.Fatalf("detected %+v", bc)
	}
}

func TestBandDetectRejectsNonIndexable(t *testing.T) {
	r := testRunner(t, 30, 11)
	cases := []string{
		"A.temp * B.temp > 3",                // not a difference
		"A.temp - A.hum > 3",                 // same alias twice
		"A.temp - B.hum > 3",                 // different attributes
		"abs(A.temp - B.temp) > 3",           // abs with > is not a band
		"A.temp - B.temp > B.hum",            // non-constant bound
		"distance(A.x, A.y, B.x, B.y) > 100", // not a difference at all
	}
	for _, cond := range cases {
		src := fmt.Sprintf("SELECT A.temp, B.temp FROM Sensors A, Sensors B WHERE %s AND A.temp - B.temp + A.hum > -1e9 ONCE", cond)
		x, err := r.ExecSQL(src, 0)
		if err != nil {
			t.Fatalf("%q: %v", cond, err)
		}
		p, err := buildPlan(x)
		if err != nil {
			t.Fatal(err)
		}
		if bc, ok := detectBandCond(p, x.Analysis.JoinConds[0]); ok {
			t.Fatalf("%q wrongly recognized as %+v", cond, bc)
		}
	}
}

func TestFlipCmp(t *testing.T) {
	pairs := map[query.CmpOp]query.CmpOp{
		query.CmpLT: query.CmpGT,
		query.CmpGT: query.CmpLT,
		query.CmpLE: query.CmpGE,
		query.CmpGE: query.CmpLE,
		query.CmpEQ: query.CmpEQ,
	}
	for in, want := range pairs {
		if got := flipCmp(in); got != want {
			t.Fatalf("flipCmp(%v) = %v", in, got)
		}
	}
}

// End-to-end: the engine with and without the band index returns the
// same result and the same packet counts (the filter is identical, so
// the protocol behaves identically).
func TestBandIndexTransparentToProtocol(t *testing.T) {
	r := testRunner(t, 200, 13)
	src := qBand(0.3)
	res1, err := r.Run(src, NewSENSJoin(), 0)
	if err != nil {
		t.Fatal(err)
	}
	tx1 := r.Stats.TotalTx(SENSPhases...)
	r.Stats.Reset()
	res2, err := r.Run(src, &SENSJoin{Options: Options{DisableBandIndex: true}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	tx2 := r.Stats.TotalTx(SENSPhases...)
	sameRows(t, res1.Rows, res2.Rows, "indexed", "generic")
	if tx1 != tx2 {
		t.Fatalf("packet counts differ: %d vs %d", tx1, tx2)
	}
}

func BenchmarkFilterGeneric(b *testing.B) {
	benchFilter(b, false)
}

func BenchmarkFilterBandIndexed(b *testing.B) {
	benchFilter(b, true)
}

func benchFilter(b *testing.B, useIndex bool) {
	r, err := NewRunner(SetupConfig{Nodes: 800, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	x, err := r.ExecSQL("SELECT A.temp, B.temp FROM Sensors A, Sensors B WHERE abs(A.temp - B.temp) < 0.2 AND distance(A.x, A.y, B.x, B.y) > 100 ONCE", 0)
	if err != nil {
		b.Fatal(err)
	}
	p, err := buildPlan(x)
	if err != nil {
		b.Fatal(err)
	}
	var keys []zorder.Key
	for _, nd := range p.nodes {
		if nd != nil {
			keys = append(keys, nd.key)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		computeFilter(p, keys, useIndex)
	}
}

func TestBandDetectAfterConstantFolding(t *testing.T) {
	r := testRunner(t, 30, 15)
	x, err := r.ExecSQL("SELECT A.temp, B.temp FROM Sensors A, Sensors B WHERE A.temp - B.temp > 2 + 1 ONCE", 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := buildPlan(x)
	if err != nil {
		t.Fatal(err)
	}
	bc, ok := detectBandCond(p, x.Analysis.JoinConds[0])
	if !ok {
		t.Fatal("folded difference condition not recognized")
	}
	if bc.c != 3 {
		t.Fatalf("threshold = %g, want 3", bc.c)
	}
}
