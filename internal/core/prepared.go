package core

import (
	"sensjoin/internal/query"
	"sensjoin/internal/relation"
)

// Prepared-query support: the analysis and compilation work of a query
// — parse, star expansion, Analyze, the join-kernel's expression
// compilation and shape classification — depends only on the query text
// and the catalog, not on the snapshot being joined. A Prepared hoists
// all of it out of the per-execution path so a serving layer can pay it
// once per distinct query shape and reuse it across every execution and
// every concurrent session (all cached state is immutable after
// Prepare).

// kernelSlot binds an attribute name of one FROM entry to its dense
// slot in the kernel's value vector.
type kernelSlot struct {
	name string
	slot int
}

// kernelProg is the compiled, execution-independent part of the join
// kernel: the slot layout, the compiled condition/SELECT/GROUP BY
// closures and the classified join shape. It is immutable after
// compileKernel and safe to share across concurrent executions — the
// closures are pure functions of the slot vector.
type kernelProg struct {
	// slotsOf[level] lists the referenced attributes of FROM entry
	// `level` with their assigned global slots.
	slotsOf [][]kernelSlot
	// nslots is the total slot count (the kernel's vector length).
	nslots int
	// compiledConds aligns with Analysis.JoinConds.
	compiledConds []query.CompiledBool
	// condRels[i] lists the FROM entries condition i references.
	condRels [][]int
	selects  []query.CompiledNum
	groupBy  []query.CompiledNum
	// shape classifies the join conditions for access-path planning.
	shape query.JoinShape
}

// compileKernel lowers the query's expressions once, assigning each
// distinct (rel, attr) reference a dense slot; enumeration then reads
// float slots instead of paying a string-map lookup per reference per
// tuple combination. Pulled out of joinKernel so prepared queries pay
// it once instead of per execution.
func compileKernel(q *query.Query, a *query.Analysis) *kernelProg {
	n := len(q.From)
	p := &kernelProg{slotsOf: make([][]kernelSlot, n)}
	resolve := func(ref query.AttrRef) int {
		for _, s := range p.slotsOf[ref.Rel] {
			if s.name == ref.Name {
				return s.slot
			}
		}
		p.slotsOf[ref.Rel] = append(p.slotsOf[ref.Rel], kernelSlot{ref.Name, p.nslots})
		p.nslots++
		return p.nslots - 1
	}
	conds := a.JoinConds
	p.compiledConds = make([]query.CompiledBool, len(conds))
	p.condRels = make([][]int, len(conds))
	for i, c := range conds {
		p.compiledConds[i] = query.CompileBool(c, resolve)
		seen := make(map[int]bool)
		c.VisitNums(func(e query.NumExpr) {
			if at, ok := e.(query.Attr); ok && !seen[at.Ref.Rel] {
				seen[at.Ref.Rel] = true
				p.condRels[i] = append(p.condRels[i], at.Ref.Rel)
			}
		})
	}
	p.selects = make([]query.CompiledNum, len(q.Select))
	for i, it := range q.Select {
		p.selects[i] = query.CompileNum(it.Expr, resolve)
	}
	p.groupBy = make([]query.CompiledNum, len(q.GroupBy))
	for i, e := range q.GroupBy {
		p.groupBy[i] = query.CompileNum(e, resolve)
	}
	p.shape = query.ShapeOf(conds)
	return p
}

// Prepared is a fully analyzed and compiled query, bound to a catalog.
// It is immutable and safe for concurrent use by any number of
// executions.
type Prepared struct {
	src         string
	fingerprint string
	query       *query.Query
	analysis    *query.Analysis
	prog        *kernelProg
}

// Prepare parses, binds and compiles src against cat.
func Prepare(cat relation.Catalog, src string) (*Prepared, error) {
	q, err := query.Parse(src)
	if err != nil {
		return nil, err
	}
	for _, r := range q.From {
		if _, err := cat.Lookup(r.Relation); err != nil {
			return nil, err
		}
	}
	if err := expandStar(q, cat); err != nil {
		return nil, err
	}
	a, err := query.Analyze(q)
	if err != nil {
		return nil, err
	}
	return &Prepared{
		src:         src,
		fingerprint: query.Fingerprint(q),
		query:       q,
		analysis:    a,
		prog:        compileKernel(q, a),
	}, nil
}

// Prepare compiles src against this runner's catalog.
func (r *Runner) Prepare(src string) (*Prepared, error) {
	return Prepare(r.Catalog, src)
}

// Src returns the original query text.
func (p *Prepared) Src() string { return p.src }

// Fingerprint returns the canonical cache key (see query.Fingerprint):
// two prepared queries with equal fingerprints compute identical result
// tables on the same snapshot.
func (p *Prepared) Fingerprint() string { return p.fingerprint }

// Mode reports whether the query is one-shot or periodic.
func (p *Prepared) Mode() query.Mode { return p.query.Mode }

// Period returns the SAMPLE PERIOD in seconds (0 for one-shot queries).
func (p *Prepared) Period() float64 { return p.query.Period }

// Relations returns the FROM-entry count.
func (p *Prepared) Relations() int { return len(p.query.From) }

// Shareable reports whether the query is eligible for shared (grouped)
// execution via QueryGroup: a join with at least one join attribute.
func (p *Prepared) Shareable() bool {
	if len(p.query.From) < 2 {
		return false
	}
	for _, attrs := range p.analysis.JoinAttrs {
		if len(attrs) > 0 {
			return true
		}
	}
	return false
}

// ExecPrepared assembles an execution context from an already prepared
// query, skipping parse, star expansion, analysis and kernel
// compilation.
func (r *Runner) ExecPrepared(p *Prepared, t float64) (*Exec, error) {
	x := &Exec{
		Sim: r.Sim, Net: r.Net, Tree: r.Tree, Stats: r.Stats,
		Dep: r.Dep, Env: r.Env, Catalog: r.Catalog,
		Query: p.query, Analysis: p.analysis, Time: t,
		prog: p.prog,
	}
	x.Member = r.Member
	x.Trace = r.Trace
	x.Metrics = r.Metrics
	x.Workers = r.workers
	return x, nil
}

// RunPrepared executes a prepared query like Run. With AutoAudit set it
// falls back to the audited source path (the audit needs the journal
// bracketing Run provides).
func (r *Runner) RunPrepared(p *Prepared, m Method, t float64) (*Result, error) {
	if r.AutoAudit {
		return r.Run(p.src, m, t)
	}
	if r.Metrics != nil {
		r.Metrics.Runs.Inc()
	}
	x, err := r.ExecPrepared(p, t)
	if err != nil {
		return nil, err
	}
	return m.Run(x)
}
