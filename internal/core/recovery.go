package core

import (
	"sort"

	"sensjoin/internal/netsim"
	"sensjoin/internal/routing"
	"sensjoin/internal/topology"
	"sensjoin/internal/trace"
)

// Scoped recovery (reliable-transport mode). The paper's §IV-F error
// handling re-executes the whole query when anything was lost; with
// hop-by-hop reliable transport almost everything arrives, so the base
// station instead tracks *which* subtrees are missing and re-requests
// only those: a re-request travels hop-by-hop down the tree path to each
// missing subtree's root, the subtree ships its complete tuples
// unconditionally (the filter stands down — a subtree in recovery may
// never have received it), relays forward toward the base station
// immediately, and the round repeats up to maxRecoveryRounds times.
// Whole-query re-execution (Runner.RunWithRecovery) remains the fallback
// for when the tree itself changed.

// maxRecoveryRounds bounds the scoped re-request rounds per execution.
const maxRecoveryRounds = 3

// contributorSet computes (with simulator omniscience) the nodes whose
// tuples the exact result needs. A result holding every contributor's
// tuple joins to exactly the ground truth: extra non-contributing tuples
// produce no rows, and no row of the true result lacks its inputs.
func contributorSet(x *Exec, p *plan) map[topology.NodeID]bool {
	var tuples []finalTuple
	for id := 1; id < x.Dep.N(); id++ {
		if p.nodes[id] != nil {
			tuples = append(tuples, p.tuple(topology.NodeID(id)))
		}
	}
	_, contrib := exactJoin(x, tuples)
	return contrib
}

// memberSet returns every member node — what the external join needs.
func memberSet(p *plan) map[topology.NodeID]bool {
	out := make(map[topology.NodeID]bool)
	for id, nd := range p.nodes {
		if nd != nil {
			out[topology.NodeID(id)] = true
		}
	}
	return out
}

// minimalRoots returns the missing nodes with no missing proper ancestor
// — the subtree roots recovery re-requests — in ascending order.
func minimalRoots(tree *routing.Tree, missing map[topology.NodeID]bool) []topology.NodeID {
	var roots []topology.NodeID
	for v := range missing {
		above := false
		for u := tree.Parent[v]; u != routing.NoParent; u = tree.Parent[u] {
			if missing[u] {
				above = true
				break
			}
		}
		if !above {
			roots = append(roots, v)
		}
	}
	sort.Slice(roots, func(i, k int) bool { return roots[i] < roots[k] })
	return roots
}

// classifyMissing explains why nodes are still missing: a dead node (or
// dead ancestor on its tree path) is a dead subtree, an alive node with
// no live path to the base station is a partition, anything else is
// plain loss. Dead subtrees dominate partitions dominate loss.
func classifyMissing(x *Exec, missing []topology.NodeID) string {
	if len(missing) == 0 {
		return ReasonLoss
	}
	reach := liveReach(x.Net)
	reason := ReasonLoss
	for _, v := range missing {
		if !x.Net.Alive(v) {
			return ReasonDeadSubtree
		}
		if !reach[v] {
			for u := x.Tree.Parent[v]; u != routing.NoParent; u = x.Tree.Parent[u] {
				if !x.Net.Alive(u) {
					return ReasonDeadSubtree
				}
			}
			reason = ReasonPartition
		}
	}
	return reason
}

// liveReach marks the nodes reachable from the base station over live
// links (any path, not just tree edges).
func liveReach(net *netsim.Network) []bool {
	nb := net.LiveNeighbors()
	reach := make([]bool, len(nb))
	reach[topology.BaseStation] = true
	queue := []topology.NodeID{topology.BaseStation}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range nb[u] {
			if !reach[v] {
				reach[v] = true
				queue = append(queue, v)
			}
		}
	}
	return reach
}

// runScopedRecovery drives the recovery rounds: needed lists the nodes
// whose tuples the result requires, have the tuples that already
// arrived (mutated in place as rounds recover data), standDown extra
// subtree roots that must ship everything because filter dissemination
// to them was never confirmed. Returns the rounds run and the nodes
// still missing afterwards (ascending).
func runScopedRecovery(x *Exec, p *plan, needed map[topology.NodeID]bool,
	have map[topology.NodeID]finalTuple, standDown []topology.NodeID) (int, []topology.NodeID) {
	missing := make(map[topology.NodeID]bool)
	for id := range needed {
		if _, ok := have[id]; !ok {
			missing[id] = true
		}
	}
	for _, r := range standDown {
		missing[r] = true
	}
	rounds := 0
	for len(missing) > 0 && rounds < maxRecoveryRounds {
		rounds++
		if x.Repair {
			// Mid-round repair: re-parent severed subtrees onto the
			// surviving tree first, so the re-requests below travel live
			// paths and the recovery wave IS the replay of the affected
			// phase traffic for the re-attached subtrees.
			repairExec(x)
		}
		roots := minimalRoots(x.Tree, missing)
		for _, r := range roots {
			x.span(trace.KindRerequest, r, -1, PhaseRecovery, rounds)
		}
		for _, t := range recoverRound(x, p, roots) {
			if _, ok := have[t.node]; !ok {
				have[t.node] = t
			}
		}
		missing = make(map[topology.NodeID]bool)
		for id := range needed {
			if _, ok := have[id]; !ok {
				missing[id] = true
			}
		}
	}
	left := make([]topology.NodeID, 0, len(missing))
	for id := range missing {
		left = append(left, id)
	}
	sort.Slice(left, func(i, k int) bool { return left[i] < left[k] })
	if x.Repair && x.repairs > 0 && len(left) > 0 && x.Metrics != nil {
		// Repair ran but could not restore completeness before the retry
		// budget drained; the result carries the per-subtree provenance.
		x.Metrics.RepairFailures.Inc()
	}
	return rounds, left
}

// recoverRound executes one scoped re-collection: re-requests travel
// hop-by-hop down the tree path to every root, the missing subtrees run
// a leaves-first collection wave shipping complete tuples
// unconditionally, and nodes on the return paths outside the subtrees
// relay upward immediately. All traffic is charged under PhaseRecovery;
// it returns the tuples that reached the base station.
func recoverRound(x *Exec, p *plan, roots []topology.NodeID) []finalTuple {
	tree := x.Tree
	n := x.Net.N()
	isRoot := make([]bool, n)
	for _, r := range roots {
		if r > 0 && int(r) < n {
			isRoot[r] = true
		}
	}
	inSub := make([]bool, n)
	rootOf := make([]topology.NodeID, n)
	for i := 1; i < n; i++ {
		if !tree.Reachable(topology.NodeID(i)) {
			continue
		}
		for v := topology.NodeID(i); v != routing.NoParent; v = tree.Parent[v] {
			if isRoot[v] {
				inSub[i] = true
				rootOf[i] = v // the nearest missing root above (roots are minimal, so unique)
				break
			}
		}
	}
	// A subtree ships only if its root actually received the re-request —
	// a node cannot know to retransmit without being asked.
	reqArrived := make([]bool, n)

	inbox := make([][]finalTuple, n)
	for i := 0; i < n; i++ {
		id := topology.NodeID(i)
		x.Net.SetHandler(id, func(m netsim.Message) {
			switch m.Kind {
			case kindRerequest:
				rest := m.Payload.([]topology.NodeID)
				if len(rest) == 0 {
					reqArrived[id] = true
					return
				}
				x.Net.Send(netsim.Message{
					Kind: kindRerequest, Src: id, Dst: rest[0],
					Phase: PhaseRecovery, Size: 2 + 2*len(rest[1:]), Payload: rest[1:],
				})
			case kindRecover:
				tuples := m.Payload.([]finalTuple)
				if id == topology.BaseStation || inSub[id] {
					inbox[id] = append(inbox[id], tuples...)
					return
				}
				// A relay on the path to the base station: recovery has no
				// slot schedule above the subtree, forward immediately.
				size := 0
				for _, t := range tuples {
					size += t.bytes
				}
				x.Net.Send(netsim.Message{
					Kind: kindRecover, Src: id, Dst: tree.Parent[id],
					Phase: PhaseRecovery, Size: size, Payload: tuples,
				})
			}
		})
	}

	// Re-requests: one per root, forwarded hop-by-hop along the tree path
	// (each hop carries the remaining path, 2 bytes per id).
	maxHops := 0
	for _, r := range roots {
		if r == topology.BaseStation || !tree.Reachable(r) {
			continue
		}
		var path []topology.NodeID // base station → root, excluding the base station
		for v := r; v != topology.BaseStation && v != routing.NoParent; v = tree.Parent[v] {
			path = append(path, v)
		}
		for i, k := 0, len(path)-1; i < k; i, k = i+1, k-1 {
			path[i], path[k] = path[k], path[i]
		}
		if len(path) > maxHops {
			maxHops = len(path)
		}
		x.Net.Send(netsim.Message{
			Kind: kindRerequest, Src: topology.BaseStation, Dst: path[0],
			Phase: PhaseRecovery, Size: 2 + 2*len(path[1:]), Payload: path[1:],
		})
	}

	// The collection wave starts once the deepest re-request had time to
	// arrive; inside the subtrees the usual leaves-first slot schedule
	// applies.
	reqSlot := x.Net.SlotFor(2 + 2*tree.MaxDepth)
	waveStart := x.Sim.Now() + float64(maxHops+1)*reqSlot
	slot := collectionSlot(x, p)
	for i := 1; i < n; i++ {
		id := topology.NodeID(i)
		if !inSub[id] {
			continue
		}
		deadline := waveStart + float64(tree.MaxDepth-tree.Depth[id])*slot
		x.Sim.Schedule(deadline, func() {
			if !reqArrived[rootOf[id]] {
				return // the re-request never made it down; retry next round
			}
			tuples := inbox[id]
			if p.nodes[id] != nil {
				tuples = append(tuples, p.tuple(id))
			}
			if len(tuples) == 0 {
				return
			}
			size := 0
			for _, t := range tuples {
				size += t.bytes
			}
			x.Net.Send(netsim.Message{
				Kind: kindRecover, Src: id, Dst: tree.Parent[id],
				Phase: PhaseRecovery, Size: size, Payload: tuples,
			})
		})
	}
	x.Sim.Run()
	return inbox[topology.BaseStation]
}

// finishReliable recomputes the result from the (possibly recovered)
// tuple set and fills the completeness fields. start is the execution's
// begin time; the response time includes recovery.
func finishReliable(x *Exec, p *plan, res *Result,
	have map[topology.NodeID]finalTuple, missing []topology.NodeID, rounds int, start float64) {
	ids := make([]topology.NodeID, 0, len(have))
	for id := range have {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, k int) bool { return ids[i] < ids[k] })
	tuples := make([]finalTuple, 0, len(ids))
	for _, id := range ids {
		tuples = append(tuples, have[id])
	}
	rows, contrib := exactJoin(x, tuples)
	res.Rows = rows
	res.ContributingNodes = len(contrib)
	res.Complete = len(missing) == 0
	res.RecoveryRounds = rounds
	res.MissingSubtrees = nil
	res.IncompleteReason = ""
	res.Repairs = x.repairs
	if x.repairs > 0 {
		res.RepairLatency = x.repairAt - start
		if x.Metrics != nil {
			x.Metrics.RepairSeconds.Observe(res.RepairLatency)
		}
	}
	if len(missing) > 0 {
		annotateIncomplete(x, missing, res)
	}
	res.ResponseTime = x.Sim.Now() - start
}

// annotateIncomplete surfaces which subtrees are missing and why on an
// incomplete result. The non-reliable path calls it without recovering
// anything — completeness verdicts keep the paper's re-execute-everything
// semantics there.
func annotateIncomplete(x *Exec, missing []topology.NodeID, res *Result) {
	if len(missing) > 0 {
		set := make(map[topology.NodeID]bool, len(missing))
		for _, id := range missing {
			set[id] = true
		}
		res.MissingSubtrees = minimalRoots(x.Tree, set)
	}
	res.IncompleteReason = classifyMissing(x, missing)
}

// missingFrom returns the needed nodes absent from have, ascending.
func missingFrom(needed map[topology.NodeID]bool, have map[topology.NodeID]finalTuple) []topology.NodeID {
	var out []topology.NodeID
	for id := range needed {
		if _, ok := have[id]; !ok {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, k int) bool { return out[i] < out[k] })
	return out
}

// tupleIndex indexes tuples by owner, keeping the first per node.
func tupleIndex(tuples []finalTuple) map[topology.NodeID]finalTuple {
	out := make(map[topology.NodeID]finalTuple, len(tuples))
	for _, t := range tuples {
		if _, ok := out[t.node]; !ok {
			out[t.node] = t
		}
	}
	return out
}
