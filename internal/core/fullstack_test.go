package core

import (
	"testing"

	"sensjoin/internal/routing"
	"sensjoin/internal/topology"
)

// The full protocol stack end to end: the collection-tree protocol forms
// the routing tree via beaconing, the query is flooded, the join
// executes over the beacon-built tree, and the result matches the
// oracle. This exercises the same sequence a real deployment runs
// (paper §III, "Query Processing").
func TestFullStackBeaconFloodExecute(t *testing.T) {
	r := testRunner(t, 200, 301)

	// 1. Tree formation by beaconing (replacing the instant BFS tree).
	proto := routing.NewProtocol(r.Net, 10)
	proto.RunRound()
	r.Sim.Run()
	tree, err := proto.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if tree.ReachableCount() != r.Dep.N() {
		t.Fatalf("beacon tree reaches %d of %d nodes", tree.ReachableCount(), r.Dep.N())
	}
	r.Tree = tree
	beacons := r.Stats.TotalTx(routing.PhaseBeacon)
	if beacons < int64(r.Dep.N()) {
		t.Fatalf("beacon traffic %d below node count", beacons)
	}

	// 2. Query dissemination by flooding.
	src := qBand(0.4)
	x, err := r.ExecSQL(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	DisseminateQuery(x)
	if r.Stats.TotalTx(PhaseQueryDissem) < int64(r.Dep.N()) {
		t.Fatal("query flood did not reach the network")
	}

	// 3. Execution over the beacon-built tree.
	truth, err := GroundTruth(x)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(src, NewSENSJoin(), 0)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, truth.Rows, res.Rows, "truth", "full-stack")
	if !res.Complete {
		t.Fatal("full-stack run incomplete")
	}

	// 4. Tree maintenance is common-mode: method comparisons exclude
	// beacon and flood phases by construction.
	sens := r.Stats.TotalTx(SENSPhases...)
	all := r.Stats.TotalTx()
	if sens >= all {
		t.Fatal("phase filtering broken: method total includes maintenance")
	}
}

// After a mid-run link failure, a beacon round repairs the tree and the
// re-execution over the repaired tree is complete — §IV-F with the real
// protocol rather than the instant rebuild.
func TestFullStackRepairViaBeacons(t *testing.T) {
	r := testRunner(t, 150, 303)
	proto := routing.NewProtocol(r.Net, 10)
	proto.RunRound()
	r.Sim.Run()
	tree, err := proto.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	r.Tree = tree

	src := qBand(0.4)
	child, parent := failLink(r)
	r.Net.LinkDown(child, parent)
	res, err := r.Run(src, NewSENSJoin(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Fatal("loss not detected over beacon tree")
	}

	// Repair: next beacon round re-routes around the dead link. The
	// query engine took over the radio handlers, so the protocol
	// re-registers first.
	proto.Reinstall()
	proto.RunRound()
	r.Sim.Run()
	repaired, err := proto.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if repaired.Reachable(child) && repaired.Parent[child] == parent {
		t.Fatal("beacon round did not reroute the victim")
	}
	r.Tree = repaired
	res, err = r.Run(src, NewSENSJoin(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("re-execution over the repaired beacon tree incomplete")
	}
}

// Handlers installed by one engine must not leak into the next: running
// methods back-to-back on one runner keeps each one's accounting clean.
func TestHandlerIsolationAcrossRuns(t *testing.T) {
	r := testRunner(t, 100, 307)
	src := qBand(0.4)
	if _, err := r.Run(src, External{}, 0); err != nil {
		t.Fatal(err)
	}
	extTotal := r.Stats.TotalTx()
	if r.Stats.TotalTx(SENSPhases...) != 0 {
		t.Fatal("external run charged SENS phases")
	}
	if _, err := r.Run(src, NewSENSJoin(), 0); err != nil {
		t.Fatal(err)
	}
	if r.Stats.TotalTx(ExternalPhases...) != extTotal {
		t.Fatal("SENS run charged external phases")
	}
	_ = topology.BaseStation
}
