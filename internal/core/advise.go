package core

import (
	"sensjoin/internal/costmodel"
	"sensjoin/internal/quadtree"
	"sensjoin/internal/topology"
	"sensjoin/internal/zorder"
)

// Advice is the cost model's method recommendation for a concrete query
// on a concrete deployment (paper §IV-E, "Join Locations", based on the
// theoretical analysis of [20]).
type Advice struct {
	// Use names the recommended method ("sens-join" or "external-join").
	Use string
	// PredictedExternal and PredictedSENS are the model's packet
	// estimates.
	PredictedExternal float64
	PredictedSENS     float64
	// ExpectedFraction is the snapshot's true contributing fraction the
	// prediction used.
	ExpectedFraction float64
	// BreakEvenFraction estimates where the methods cost the same.
	BreakEvenFraction float64
}

// Advise predicts, without transmitting anything, whether SENS-Join or
// the external join is cheaper for the query on the current snapshot.
// It feeds the routing tree's shape and the measured snapshot statistics
// (tuple sizes, actual filter size, actual contributing fraction) into
// the analytical model.
func Advise(x *Exec) (*Advice, error) {
	p, err := buildPlan(x)
	if err != nil {
		return nil, err
	}
	member := make([]bool, x.Dep.N())
	tupleBytes := 0
	for id, nd := range p.nodes {
		if nd != nil {
			member[id] = true
			if nd.tupleBytes > tupleBytes {
				tupleBytes = nd.tupleBytes
			}
		}
	}
	parent := make([]int, x.Dep.N())
	for i, pa := range x.Tree.Parent {
		parent[i] = int(pa)
	}
	tree := costmodel.SubtreeMembersOf(parent, member)

	params := costmodel.Params{
		Members:       p.members,
		TupleBytes:    tupleBytes,
		JoinAttrBytes: p.rawTupleBytes,
		QuadFactor:    0.6,
		Payload:       x.Net.Radio.Payload(),
		Dmax:          30,
	}
	if p.grid != nil {
		// Ground the model in the snapshot: actual quadtree compression,
		// actual filter size, actual contributing fraction.
		var keys []zorder.Key
		for _, nd := range p.nodes {
			if nd != nil {
				keys = append(keys, nd.key)
			}
		}
		keys = quadtree.NormalizeKeys(keys)
		if p.members > 0 && p.rawTupleBytes > 0 {
			params.QuadFactor = float64(p.codec().Encode(keys).ByteLen()) /
				float64(p.members*p.rawTupleBytes)
		}
		filter := computeFilter(p, keys, true)
		params.FilterBytes = p.codec().Encode(filter).ByteLen()
		truth, _ := exactJoinContribution(x, p)
		if p.members > 0 {
			params.Fraction = float64(truth) / float64(p.members)
		}
	}

	rec := costmodel.Advise(tree, params)
	a := &Advice{
		PredictedExternal: rec.ExternalPackets,
		PredictedSENS:     rec.SENSPackets,
		ExpectedFraction:  params.Fraction,
		BreakEvenFraction: rec.BreakEvenFraction,
		Use:               "external-join",
	}
	if rec.UseSENS {
		a.Use = "sens-join"
	}
	return a, nil
}

// exactJoinContribution counts contributing nodes (the oracle's
// fraction, used to ground the model).
func exactJoinContribution(x *Exec, p *plan) (int, error) {
	var tuples []finalTuple
	for id, nd := range p.nodes {
		if nd != nil {
			tuples = append(tuples, p.tuple(topology.NodeID(id)))
		}
	}
	_, contrib := exactJoin(x, tuples)
	return len(contrib), nil
}
