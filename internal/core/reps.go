package core

import (
	"encoding/binary"
	"fmt"

	"sensjoin/internal/compress"
	"sensjoin/internal/quadtree"
	"sensjoin/internal/zorder"
)

// Rep determines how join-attribute tuples are represented on the wire
// during the pre-computation (paper §V). The default is the quadtree;
// RawRep is the SENS_No-Quad baseline of Fig. 16; CompressedRep wraps a
// general-purpose compressor for the §VI-B comparison.
type Rep interface {
	// Name identifies the representation in experiment output.
	Name() string
	// SetBytes returns the wire size of a set of join-attribute keys
	// (used for the filter and for the Selective-Filter-Forwarding
	// memory bound).
	SetBytes(p *plan, keys []zorder.Key) int
	// PayloadBytes returns the wire size of a Join-Attribute-Collection
	// payload: the key set plus, for multiset representations, the raw
	// tuple stream it stands for.
	PayloadBytes(p *plan, pl *jaPayload) int
}

// jaPayload is the in-flight content of a Join-Attribute-Collection
// message.
type jaPayload struct {
	// keys is the deduplicated key set (the quadtree's content).
	keys []zorder.Key
	// rawCount is the number of join-attribute tuples the payload
	// represents including duplicates (what the raw baseline ships).
	rawCount int
	// covered counts the member nodes this payload covers; it is
	// simulator-side observability (failure detection), not wire data.
	covered int
	// needFull asks the parent to transmit a full filter this round
	// (incremental mode resynchronization); it rides in the header.
	needFull bool
}

// QuadRep is the paper's quadtree representation.
type QuadRep struct{}

// Name implements Rep.
func (QuadRep) Name() string { return "quadtree" }

// SetBytes implements Rep.
func (QuadRep) SetBytes(p *plan, keys []zorder.Key) int {
	return p.codec().Encode(keys).ByteLen()
}

// PayloadBytes implements Rep.
func (q QuadRep) PayloadBytes(p *plan, pl *jaPayload) int {
	return q.SetBytes(p, pl.keys)
}

// RawRep ships join-attribute tuples as plain values, two bytes per
// attribute, without deduplication: the SENS_No-Quad baseline.
type RawRep struct{}

// Name implements Rep.
func (RawRep) Name() string { return "raw" }

// SetBytes implements Rep.
func (RawRep) SetBytes(p *plan, keys []zorder.Key) int {
	return len(keys) * p.rawTupleBytes
}

// PayloadBytes implements Rep.
func (RawRep) PayloadBytes(p *plan, pl *jaPayload) int {
	return pl.rawCount * p.rawTupleBytes
}

// CompressedRep runs a general-purpose compressor over the raw tuple
// stream at every forwarding node (decompress children, concatenate,
// recompress — the repeated work the paper's §V-D argues against).
type CompressedRep struct {
	Codec compress.Codec
}

// Name implements Rep.
func (c CompressedRep) Name() string { return c.Codec.Name() }

// SetBytes implements Rep.
func (c CompressedRep) SetBytes(p *plan, keys []zorder.Key) int {
	return len(c.Codec.Compress(rawKeyBytes(p, keys, len(keys))))
}

// PayloadBytes implements Rep.
func (c CompressedRep) PayloadBytes(p *plan, pl *jaPayload) int {
	return len(c.Codec.Compress(rawKeyBytes(p, pl.keys, pl.rawCount)))
}

// rawKeyBytes materializes the raw wire image of a tuple stream: per
// tuple, each dimension's cell coordinate as a 2-byte little-endian
// value (the native fixed-point form a sensor ADC reports). count >
// len(keys) repeats keys round-robin to model duplicates.
func rawKeyBytes(p *plan, keys []zorder.Key, count int) []byte {
	if len(keys) == 0 || count <= 0 {
		return nil
	}
	out := make([]byte, 0, count*p.rawTupleBytes)
	for i := 0; i < count; i++ {
		k := keys[i%len(keys)]
		_, coords := p.grid.Deinterleave(k)
		for _, c := range coords {
			out = binary.LittleEndian.AppendUint16(out, uint16(c))
		}
	}
	return out
}

// codec returns the quadtree codec for the plan's grid, built lazily.
func (p *plan) codec() *quadtree.Codec {
	if p.qt == nil {
		c, err := quadtree.NewCodec(p.grid.Levels())
		if err != nil {
			panic(fmt.Sprintf("core: grid produced an invalid level schedule: %v", err))
		}
		p.qt = c
	}
	return p.qt
}
