package core

import (
	"reflect"
	"testing"

	"sensjoin/internal/field"
	"sensjoin/internal/zorder"
)

// quietEnvironment builds fields with negligible measurement noise and
// slow drift, so consecutive snapshots are temporally correlated at cell
// granularity.
func quietEnvironment(r *Runner, seed int64) *field.Environment {
	e := field.NewEnvironment()
	e.Add(field.New(field.Config{
		Name: "temp", Base: 20, Amplitude: 4, CorrLength: 160,
		Bumps: 24, Noise: 0.002, DriftSpeed: 0.01, AmpPeriod: 72000,
	}, r.Dep.Area, seed))
	e.Add(field.New(field.Config{
		Name: "hum", Base: 55, Amplitude: 6, CorrLength: 200,
		Bumps: 18, Noise: 0.01, DriftSpeed: 0.01, AmpPeriod: 72000,
	}, r.Dep.Area, seed+1))
	e.Add(field.New(field.Config{
		Name: "pres", Base: 1013, Amplitude: 3, CorrLength: 400,
		Bumps: 10, Noise: 0.01, DriftSpeed: 0.01, AmpPeriod: 72000,
	}, r.Dep.Area, seed+2))
	return e
}

func TestDiffKeys(t *testing.T) {
	a := []zorder.Key{1, 3, 5, 7}
	b := []zorder.Key{3, 7, 9}
	if got := diffKeys(a, b); !reflect.DeepEqual(got, []zorder.Key{1, 5}) {
		t.Fatalf("diffKeys = %v", got)
	}
	if got := diffKeys(nil, b); len(got) != 0 {
		t.Fatalf("diffKeys(nil, b) = %v", got)
	}
	if got := diffKeys(a, nil); !reflect.DeepEqual(got, a) {
		t.Fatalf("diffKeys(a, nil) = %v", got)
	}
}

func TestContStateEnsure(t *testing.T) {
	c := newContState(5)
	c.Rounds = 3
	if got := c.ensure(5); got != c {
		t.Fatal("same size must keep state")
	}
	got := c.ensure(8)
	if got == c || got.n != 8 || got.Rounds != 0 {
		t.Fatal("resize must reset state")
	}
	var nilState *contState
	if nilState.ensure(4) == nil {
		t.Fatal("nil state must allocate")
	}
}

// Every round of the incremental method must return exactly the oracle
// result for that round's snapshot, while the fields drift.
func TestIncrementalCorrectEveryRound(t *testing.T) {
	r := testRunner(t, 150, 201)
	m := NewContinuousSENSJoin()
	src := qBand(0.4)
	for round := 0; round < 5; round++ {
		tm := float64(round) * 60
		x, err := r.ExecSQL(src, tm)
		if err != nil {
			t.Fatal(err)
		}
		truth, err := GroundTruth(x)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run(src, m, tm)
		if err != nil {
			t.Fatal(err)
		}
		sameRows(t, truth.Rows, res.Rows, "truth", "incremental")
		if !res.Complete {
			t.Fatalf("round %d incomplete", round)
		}
	}
	if m.Rounds() != 5 {
		t.Fatalf("Rounds = %d, want 5", m.Rounds())
	}
}

// With slow drift the filter changes little between rounds, so the
// incremental mode must transmit substantially fewer filter bytes than
// re-sending the full filter every round. The standard environment's
// measurement noise (sigma = half a temperature cell) would re-randomize
// the keys every round, so this test uses a low-noise field: temporal
// correlation at cell granularity is exactly the precondition the
// paper's future-work idea states.
func TestIncrementalSavesFilterBytes(t *testing.T) {
	src := qBand(0.5)
	const rounds = 6
	const period = 30.0 // short period => high temporal correlation

	run := func(m Method) int64 {
		r := testRunner(t, 300, 203)
		r.Env = quietEnvironment(r, 203)
		for round := 0; round < rounds; round++ {
			if _, err := r.Run(src, m, float64(round)*period); err != nil {
				t.Fatal(err)
			}
		}
		return r.Stats.TotalTxBytes(PhaseFilterDissem)
	}
	full := run(NewSENSJoin())
	incr := run(NewContinuousSENSJoin())
	if incr >= full {
		t.Fatalf("incremental filter bytes %d not below full %d", incr, full)
	}
	t.Logf("filter bytes over %d rounds: full=%d incremental=%d (%.0f%% saved)",
		rounds, full, incr, 100*(1-float64(incr)/float64(full)))
}

// A routing change between rounds desynchronizes caches; the protocol
// must stay correct (assume-all fallback + resync) and recover to delta
// mode afterwards.
func TestIncrementalSurvivesTreeChange(t *testing.T) {
	r := testRunner(t, 150, 207)
	m := NewContinuousSENSJoin()
	src := qBand(0.4)

	runRound := func(round int) {
		tm := float64(round) * 30
		x, err := r.ExecSQL(src, tm)
		if err != nil {
			t.Fatal(err)
		}
		truth, err := GroundTruth(x)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run(src, m, tm)
		if err != nil {
			t.Fatal(err)
		}
		sameRows(t, truth.Rows, res.Rows, "truth", "round")
	}

	runRound(0)
	runRound(1)
	// Cut a tree edge and repair: many nodes change parents.
	child, parent := failLink(r)
	r.Net.LinkDown(child, parent)
	r.RebuildTree()
	runRound(2) // desync round: assume-all fallbacks, still exact
	runRound(3) // resynced via need-full
	runRound(4)
}

// First round of the incremental method must cost the same as plain
// SENS-Join (full filters everywhere).
func TestIncrementalFirstRoundEqualsPlain(t *testing.T) {
	src := qBand(0.4)
	r1 := testRunner(t, 200, 209)
	if _, err := r1.Run(src, NewSENSJoin(), 0); err != nil {
		t.Fatal(err)
	}
	plain := r1.Stats.TotalTx(SENSPhases...)
	r2 := testRunner(t, 200, 209)
	if _, err := r2.Run(src, NewContinuousSENSJoin(), 0); err != nil {
		t.Fatal(err)
	}
	incr := r2.Stats.TotalTx(SENSPhases...)
	if plain != incr {
		t.Fatalf("first round differs: plain %d vs incremental %d", plain, incr)
	}
}

// An identical snapshot in consecutive rounds produces (nearly) empty
// deltas: the filter phase cost must collapse after round one.
func TestIncrementalIdenticalSnapshotCollapses(t *testing.T) {
	src := qBand(0.5)
	r := testRunner(t, 300, 211)
	m := NewContinuousSENSJoin()
	if _, err := r.Run(src, m, 0); err != nil {
		t.Fatal(err)
	}
	firstBytes := r.Stats.TotalTxBytes(PhaseFilterDissem)
	r.Stats.Reset()
	if _, err := r.Run(src, m, 0); err != nil { // same time = same snapshot
		t.Fatal(err)
	}
	secondBytes := r.Stats.TotalTxBytes(PhaseFilterDissem)
	if secondBytes*3 > firstBytes {
		t.Fatalf("identical snapshot: second round %dB vs first %dB — deltas not collapsing",
			secondBytes, firstBytes)
	}
	t.Logf("filter bytes: first round %d, identical second round %d", firstBytes, secondBytes)
}
