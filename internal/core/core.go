// Package core implements the paper's join methods: SENS-Join (§IV) with
// Treecut, Selective Filter Forwarding and the quadtree representation,
// and the state-of-the-art external join baseline (§I, §VI), plus the
// SENS_No-Quad and compression-backed variants used in the §VI-B
// experiments.
//
// The methods execute on the discrete-event simulator (package netsim)
// over a routing tree (package routing); every protocol message is
// packetized and charged to the stats collector, which is the observable
// the paper's evaluation reports.
package core

import (
	"fmt"

	"sensjoin/internal/field"
	"sensjoin/internal/netsim"
	"sensjoin/internal/query"
	"sensjoin/internal/relation"
	"sensjoin/internal/routing"
	"sensjoin/internal/stats"
	"sensjoin/internal/topology"
	"sensjoin/internal/trace"
)

// Accounting phase labels. Experiment totals sum the method's phases;
// query dissemination and tree beaconing are common-mode and reported
// separately.
const (
	PhaseQueryDissem  = "query-dissem"
	PhaseJACollect    = "ja-collect"
	PhaseFilterDissem = "filter-dissem"
	PhaseFinalCollect = "final-collect"
	PhaseExternal     = "extern-collect"
	// PhaseRecovery charges scoped-recovery traffic (re-requests and
	// re-collected tuples under reliable transport). It is deliberately
	// NOT part of any Method.Phases(): the paper's loss-free tables stay
	// unchanged, and the loss experiment adds it explicitly.
	PhaseRecovery = "scoped-recovery"
)

// SENSPhases lists the phases whose sum is the cost of a SENS-Join
// execution.
var SENSPhases = []string{PhaseJACollect, PhaseFilterDissem, PhaseFinalCollect}

// ExternalPhases lists the phases whose sum is the cost of an external
// join execution.
var ExternalPhases = []string{PhaseExternal}

// Message kinds on the wire.
const (
	kindFullTuples = iota + 10
	kindJoinAttrs
	kindFilter
	kindFinal
	kindResult
	kindQuery
	kindRerequest
	kindRecover
)

// Incompleteness reasons surfaced in Result.IncompleteReason.
const (
	// ReasonLoss: data was lost in transit; a re-execution (or another
	// recovery round) can still succeed.
	ReasonLoss = "loss"
	// ReasonDeadSubtree: a missing subtree hangs off a dead node (or its
	// members died); its data cannot be recovered by any retry.
	ReasonDeadSubtree = "dead-subtree"
	// ReasonPartition: missing nodes are alive but no live path connects
	// them to the base station.
	ReasonPartition = "partition"
)

// Exec bundles everything one query execution needs.
type Exec struct {
	Sim   *netsim.Sim
	Net   *netsim.Network
	Tree  *routing.Tree
	Stats *stats.Collector

	Dep     *topology.Deployment
	Env     *field.Environment
	Catalog relation.Catalog
	// Member decides relation membership (nil = homogeneous).
	Member relation.Membership

	Query    *query.Query
	Analysis *query.Analysis

	// Time is the sampling instant of this execution's snapshot.
	Time float64

	// Trace records protocol-level span events (phase transitions,
	// Treecut exits, prune decisions, ...). A nil recorder is a no-op,
	// so instrumentation points need no guards; guard only work that
	// exists solely to feed it (x.Trace.Enabled()).
	Trace *trace.Recorder
	// Metrics mirrors span events into live instruments; nil is a no-op.
	Metrics *CoreMetrics
	// phaseOpen pairs phase-start times with their ends for the duration
	// histograms; per-execution state, so concurrent runs never share it.
	phaseOpen map[string]float64

	// Workers parallelizes the per-node setup work of buildPlan without
	// changing its output (0/1 = sequential). Set from
	// SetupConfig.SetupWorkers by Runner.Exec.
	Workers int

	// prog is the pre-compiled kernel program of a prepared query; nil
	// makes joinKernel compile on the fly (identical results — the
	// prepared program is the same computation hoisted out of the
	// per-execution path).
	prog *kernelProg

	// Repair arms mid-round incremental tree repair inside scoped
	// recovery (opt-in via Runner.EnableMidRoundRepair): when churn
	// severs a subtree while a phase is in flight, the recovery loop
	// re-parents only the orphaned nodes and replays their collection
	// over the repaired tree instead of giving the subtree up.
	Repair bool
	// onTreeSwap propagates a mid-round tree swap to the owning Runner
	// (set by Runner.Exec); nil-safe.
	onTreeSwap func(*routing.Tree)
	// repairs / repairAt record mid-round repair activity for the Result.
	repairs  int
	repairAt float64
}

// span appends a protocol event at the acting node's current time —
// under sharding that is the node's region clock, so spans emitted from
// parallel region workers carry their true simulated timestamps.
func (x *Exec) span(k trace.Kind, node, peer topology.NodeID, phase string, arg int) {
	at := x.Sim.NodeNow(node)
	x.Trace.Span(at, k, node, peer, phase, arg)
	x.Metrics.observeSpan(x, at, k, phase)
}

// NewExec validates and assembles an execution context.
func NewExec(sim *netsim.Sim, net *netsim.Network, tree *routing.Tree, coll *stats.Collector,
	dep *topology.Deployment, env *field.Environment, cat relation.Catalog,
	q *query.Query, t float64) (*Exec, error) {
	for _, r := range q.From {
		if _, err := cat.Lookup(r.Relation); err != nil {
			return nil, err
		}
	}
	if err := expandStar(q, cat); err != nil {
		return nil, err
	}
	a, err := query.Analyze(q)
	if err != nil {
		return nil, err
	}
	return &Exec{
		Sim: sim, Net: net, Tree: tree, Stats: coll,
		Dep: dep, Env: env, Catalog: cat,
		Query: q, Analysis: a, Time: t,
	}, nil
}

// Row is one output row of a query result.
type Row []float64

// Result is a query execution's outcome.
type Result struct {
	// Columns names the output columns.
	Columns []string
	// Rows holds the result; for aggregate queries it is a single row.
	Rows []Row
	// ContributingNodes counts distinct nodes whose tuple appears in at
	// least one (pre-aggregation) result row.
	ContributingNodes int
	// MemberNodes counts nodes that belong to at least one input
	// relation and pass its local predicates.
	MemberNodes int
	// Complete is false when network failures caused data loss during
	// the execution.
	Complete bool
	// MissingSubtrees lists the minimal roots (no missing ancestor) of
	// the subtrees whose data is still missing; empty when Complete.
	MissingSubtrees []topology.NodeID
	// IncompleteReason classifies an incomplete result: ReasonLoss,
	// ReasonDeadSubtree or ReasonPartition. Empty when Complete.
	IncompleteReason string
	// RecoveryRounds counts the scoped-recovery rounds this execution
	// ran (reliable transport only).
	RecoveryRounds int
	// Repairs counts the mid-round incremental tree repairs this
	// execution performed (Runner.EnableMidRoundRepair).
	Repairs int
	// RepairLatency is the simulated seconds from query start to the
	// first mid-round repair; 0 when Repairs is 0.
	RepairLatency float64
	// ResponseTime is the simulated seconds from query start to result.
	ResponseTime float64
}

// Fraction returns the fraction of member nodes that contribute to the
// result — the paper's main workload parameter.
func (r *Result) Fraction() float64 {
	if r.MemberNodes == 0 {
		return 0
	}
	return float64(r.ContributingNodes) / float64(r.MemberNodes)
}

// Method is a join execution strategy.
type Method interface {
	// Name identifies the method in experiment output.
	Name() string
	// Phases lists the accounting phases the method charges.
	Phases() []string
	// Run executes the query and returns its result. Communication is
	// charged to x.Stats.
	Run(x *Exec) (*Result, error)
}

// columnsOf derives output column names from the SELECT list.
func columnsOf(q *query.Query) []string {
	cols := make([]string, len(q.Select))
	for i, s := range q.Select {
		if s.As != "" {
			cols[i] = s.As
		} else {
			cols[i] = s.String()
		}
	}
	return cols
}

// DisseminateQuery floods the query through the network: the base
// station broadcasts it, every node rebroadcasts once. The cost is
// charged under PhaseQueryDissem; it is identical for every join method.
func DisseminateQuery(x *Exec) {
	size := len(x.Query.String())
	seen := make([]bool, x.Net.N())
	var handler func(id topology.NodeID) netsim.Handler
	handler = func(id topology.NodeID) netsim.Handler {
		return func(m netsim.Message) {
			if m.Kind != kindQuery || seen[id] {
				return
			}
			seen[id] = true
			x.Net.Send(netsim.Message{
				Kind: kindQuery, Src: id, Dst: netsim.BroadcastID,
				Phase: PhaseQueryDissem, Size: size,
			})
		}
	}
	for i := 0; i < x.Net.N(); i++ {
		x.Net.SetHandler(topology.NodeID(i), handler(topology.NodeID(i)))
	}
	seen[topology.BaseStation] = true
	x.Net.Send(netsim.Message{
		Kind: kindQuery, Src: topology.BaseStation, Dst: netsim.BroadcastID,
		Phase: PhaseQueryDissem, Size: size,
	})
	x.Sim.Run()
}

// aggState folds rows into aggregate results.
type aggState struct {
	items []query.SelectItem
	count int64
	acc   []float64
}

func newAggState(items []query.SelectItem) *aggState {
	s := &aggState{items: items, acc: make([]float64, len(items))}
	return s
}

func hasAggregates(items []query.SelectItem) bool {
	for _, it := range items {
		if it.Agg != query.AggNone {
			return true
		}
	}
	return false
}

func (s *aggState) add(row Row) {
	s.count++
	for i, it := range s.items {
		v := row[i]
		switch it.Agg {
		case query.AggMin:
			if s.count == 1 || v < s.acc[i] {
				s.acc[i] = v
			}
		case query.AggMax:
			if s.count == 1 || v > s.acc[i] {
				s.acc[i] = v
			}
		case query.AggSum, query.AggAvg:
			s.acc[i] += v
		case query.AggCount:
			s.acc[i]++
		default:
			s.acc[i] = v // last value; mixed aggregate/plain is unusual
		}
	}
}

func (s *aggState) rows() []Row {
	if s.count == 0 {
		return nil
	}
	out := make(Row, len(s.items))
	copy(out, s.acc)
	for i, it := range s.items {
		if it.Agg == query.AggAvg {
			out[i] /= float64(s.count)
		}
	}
	return []Row{out}
}

// validateAliasCount guards methods that require a join.
func validateAliasCount(x *Exec) error {
	if len(x.Query.From) < 2 {
		return fmt.Errorf("core: %q has %d relation(s); join methods need at least two (use the external join for plain collection)",
			x.Query.String(), len(x.Query.From))
	}
	return nil
}
