package core

import (
	"fmt"
	"reflect"
	"testing"

	"sensjoin/internal/netsim"
)

// qTempBand builds compatible Q1-style band joins: identical SELECT
// list, relations and (absent) local predicates, differing only in the
// join-condition delta — the shape one shared cluster serves.
func qTempBand(delta float64) string {
	return fmt.Sprintf(
		"SELECT A.temp, A.hum, B.temp, B.hum FROM Sensors A, Sensors B WHERE A.temp - B.temp > %g ONCE", delta)
}

func mustAdd(t *testing.T, g *QueryGroup, src string) int {
	t.Helper()
	idx, err := g.Add(src)
	if err != nil {
		t.Fatalf("Add(%q): %v", src, err)
	}
	return idx
}

// Compatible queries — including canonically equal spellings of the
// local predicates — must share a cluster; different local predicates
// or different join attributes must split.
func TestQueryGroupClustering(t *testing.T) {
	g := NewQueryGroup(Options{})
	a := mustAdd(t, g, "SELECT A.temp, B.temp FROM Sensors A, Sensors B WHERE A.temp - B.temp > 3 AND A.hum > 2 + 1 ONCE")
	b := mustAdd(t, g, "SELECT A.temp, B.temp FROM Sensors A, Sensors B WHERE A.temp - B.temp > 5 AND 3 < A.hum ONCE")
	c := mustAdd(t, g, "SELECT A.temp, B.temp FROM Sensors A, Sensors B WHERE A.temp - B.temp > 3 AND A.hum > 4 ONCE")
	d := mustAdd(t, g, qBand(0.4)) // adds a distance condition: join attrs {temp,x,y}

	if g.ClusterOf(a) != g.ClusterOf(b) {
		t.Errorf("canonically equal local predicates must cluster: %d vs %d", g.ClusterOf(a), g.ClusterOf(b))
	}
	if g.ClusterOf(a) == g.ClusterOf(c) {
		t.Error("different local predicates must not cluster")
	}
	if g.ClusterOf(a) == g.ClusterOf(d) {
		t.Error("different join attributes must not cluster")
	}
	if g.Clusters() != 3 {
		t.Errorf("Clusters = %d, want 3", g.Clusters())
	}
	if g.Len() != 4 {
		t.Errorf("Len = %d, want 4", g.Len())
	}
}

func TestQueryGroupRejectsNonJoins(t *testing.T) {
	g := NewQueryGroup(Options{})
	if _, err := g.Add("SELECT A.temp FROM Sensors A ONCE"); err == nil {
		t.Error("single-relation query must be rejected")
	}
	if _, err := g.Add("SELECT A.temp, B.temp FROM Sensors A, Sensors B ONCE"); err == nil {
		t.Error("cross join without join attributes must be rejected")
	}
	if _, err := g.RunRound(nil, 0); err == nil {
		t.Error("empty group must not run")
	}
}

// Every per-query table of a shared round must equal the ground truth
// for that query, across epochs and across clusters.
func TestQueryGroupMatchesGroundTruth(t *testing.T) {
	r := testRunner(t, 150, 301)
	g := NewQueryGroup(Options{})
	srcs := []string{qTempBand(2), qTempBand(2.5), qTempBand(3), qBand(0.4)}
	for _, s := range srcs {
		mustAdd(t, g, s)
	}
	if g.Clusters() != 2 {
		t.Fatalf("Clusters = %d, want 2", g.Clusters())
	}
	for round := 0; round < 3; round++ {
		tm := float64(round) * 30
		res, err := g.RunRound(r, tm)
		if err != nil {
			t.Fatal(err)
		}
		for i, s := range srcs {
			x, err := r.ExecSQL(s, tm)
			if err != nil {
				t.Fatal(err)
			}
			truth, err := GroundTruth(x)
			if err != nil {
				t.Fatal(err)
			}
			sameRows(t, truth.Rows, res[i].Rows, "truth", fmt.Sprintf("shared q%d round %d", i, round))
			if !res[i].Complete {
				t.Errorf("round %d query %d incomplete", round, i)
			}
			if res[i].MemberNodes != truth.MemberNodes || res[i].ContributingNodes != truth.ContributingNodes {
				t.Errorf("round %d query %d: members/contributors %d/%d, want %d/%d", round, i,
					res[i].MemberNodes, res[i].ContributingNodes, truth.MemberNodes, truth.ContributingNodes)
			}
		}
	}
	if g.Rounds() != 3 {
		t.Fatalf("Rounds = %d, want 3", g.Rounds())
	}
}

// The differential guarantee of the ISSUE: under reliable transport the
// per-query tables of a shared run are byte-identical to N independent
// continuous runs — at loss 0 and at 5% loss.
func TestQueryGroupByteIdenticalToIndependent(t *testing.T) {
	srcs := []string{qTempBand(2), qTempBand(2.5), qTempBand(3), qBand(0.4)}
	const epochs = 3
	const nodes = 150

	type key struct{ epoch, q int }
	runShared := func(loss float64) map[key]*Result {
		r := testRunner(t, nodes, 307)
		r.EnableReliableTransport(netsim.ReliableConfig{})
		if loss > 0 {
			r.Net.SetLossRate(loss, 911)
		}
		g := NewQueryGroup(Options{})
		for _, s := range srcs {
			mustAdd(t, g, s)
		}
		out := make(map[key]*Result)
		for e := 0; e < epochs; e++ {
			res, err := g.RunRound(r, float64(e)*30)
			if err != nil {
				t.Fatal(err)
			}
			for q, rr := range res {
				out[key{e, q}] = rr
			}
		}
		return out
	}
	runIndependent := func(loss float64) map[key]*Result {
		out := make(map[key]*Result)
		for q, s := range srcs {
			r := testRunner(t, nodes, 307)
			r.EnableReliableTransport(netsim.ReliableConfig{})
			if loss > 0 {
				r.Net.SetLossRate(loss, 911+int64(q))
			}
			m := NewContinuousSENSJoin()
			for e := 0; e < epochs; e++ {
				res, err := r.Run(s, m, float64(e)*30)
				if err != nil {
					t.Fatal(err)
				}
				out[key{e, q}] = res
			}
		}
		return out
	}

	for _, loss := range []float64{0, 0.05} {
		shared := runShared(loss)
		indep := runIndependent(loss)
		for e := 0; e < epochs; e++ {
			for q := range srcs {
				k := key{e, q}
				s, ind := shared[k], indep[k]
				if !reflect.DeepEqual(s.Columns, ind.Columns) {
					t.Fatalf("loss %g epoch %d query %d: columns %v vs %v", loss, e, q, s.Columns, ind.Columns)
				}
				if !reflect.DeepEqual(s.Rows, ind.Rows) {
					t.Fatalf("loss %g epoch %d query %d: %d shared rows vs %d independent rows (or byte difference)",
						loss, e, q, len(s.Rows), len(ind.Rows))
				}
				if s.ContributingNodes != ind.ContributingNodes || s.MemberNodes != ind.MemberNodes || s.Complete != ind.Complete {
					t.Fatalf("loss %g epoch %d query %d: contrib/members/complete %d/%d/%t vs %d/%d/%t",
						loss, e, q, s.ContributingNodes, s.MemberNodes, s.Complete,
						ind.ContributingNodes, ind.MemberNodes, ind.Complete)
				}
			}
		}
	}
}

// A shared round over compatible queries must transmit less than the
// same queries run independently — the point of the optimization.
func TestQueryGroupSharesTraffic(t *testing.T) {
	srcs := []string{qTempBand(2), qTempBand(2.5), qTempBand(3), qTempBand(3.5)}
	const epochs = 2

	r1 := testRunner(t, 200, 309)
	g := NewQueryGroup(Options{})
	for _, s := range srcs {
		mustAdd(t, g, s)
	}
	for e := 0; e < epochs; e++ {
		if _, err := g.RunRound(r1, float64(e)*30); err != nil {
			t.Fatal(err)
		}
	}
	sharedTx := r1.Stats.TotalTx(SENSPhases...)

	var indepTx int64
	for _, s := range srcs {
		r := testRunner(t, 200, 309)
		m := NewContinuousSENSJoin()
		for e := 0; e < epochs; e++ {
			if _, err := r.Run(s, m, float64(e)*30); err != nil {
				t.Fatal(err)
			}
		}
		indepTx += r.Stats.TotalTx(SENSPhases...)
	}
	if sharedTx*2 > indepTx {
		t.Fatalf("shared %d transmissions vs independent %d: not below 50%%", sharedTx, indepTx)
	}
	t.Logf("transmissions over %d epochs, %d queries: shared=%d independent=%d (%.0f%%)",
		epochs, len(srcs), sharedTx, indepTx, 100*float64(sharedTx)/float64(indepTx))
}

// AuditRound over a mixed group: all passes clean, per cluster.
func TestQueryGroupAuditClean(t *testing.T) {
	r := testRunner(t, 150, 311)
	g := NewQueryGroup(Options{})
	for _, s := range []string{qTempBand(2), qTempBand(3), qBand(0.4)} {
		mustAdd(t, g, s)
	}
	for round := 0; round < 2; round++ {
		res, violations, err := g.AuditRound(r, float64(round)*30)
		if err != nil {
			t.Fatal(err)
		}
		if len(violations) > 0 {
			t.Fatalf("round %d: %d violation(s), first: %s", round, len(violations), violations[0])
		}
		for i, rr := range res {
			if rr == nil || !rr.Complete {
				t.Fatalf("round %d query %d incomplete", round, i)
			}
		}
	}
}
