package core

import (
	"fmt"

	"sensjoin/internal/netsim"
	"sensjoin/internal/quadtree"
	"sensjoin/internal/topology"
	"sensjoin/internal/trace"
	"sensjoin/internal/zorder"
)

// Options tune the SENS-Join method. The zero value selects the paper's
// defaults.
type Options struct {
	// Dmax is the Treecut threshold in bytes (paper §IV-B: 30).
	Dmax int
	// FilterMemLimit bounds the stored subtree join-attribute structure
	// in bytes (paper §IV-C: 500); larger subtrees forward the filter
	// unpruned.
	FilterMemLimit int
	// Rep selects the join-attribute representation (default QuadRep).
	Rep Rep
	// DisableTreecut turns the Treecut mechanism off (ablation).
	DisableTreecut bool
	// DisableSelectiveForwarding makes every node forward the whole
	// filter (ablation).
	DisableSelectiveForwarding bool
	// DisableBandIndex forces the generic pairwise filter computation
	// at the base station instead of the band-join fast path.
	DisableBandIndex bool
}

func (o Options) withDefaults() Options {
	if o.Dmax == 0 {
		o.Dmax = 30
	}
	if o.FilterMemLimit == 0 {
		o.FilterMemLimit = 500
	}
	if o.Rep == nil {
		o.Rep = QuadRep{}
	}
	return o
}

// SENSJoin is the paper's method (§IV): a pre-computation collects
// join-attribute tuples at the base station (with Treecut), the base
// station joins them over quantized cells and disseminates the join
// filter (with Selective Filter Forwarding), and only matching complete
// tuples travel to the base station for the exact final join.
type SENSJoin struct {
	Options Options
	// cont holds the cross-round state of the incremental
	// filter-dissemination mode (NewContinuousSENSJoin); nil for
	// independent executions.
	cont *contState
	// Memory reports the per-node memory high-water marks of the last
	// execution (the paper's §VII memory-requirements trade-off).
	Memory MemoryReport
}

// MemoryReport captures what SENS-Join stores on the nodes: Treecut
// proxies hold complete tuples (bounded by Dmax per child, §IV-B) and
// Selective Filter Forwarding keeps the subtree's join-attribute
// structure (bounded by the memory limit, §IV-C).
type MemoryReport struct {
	// MaxProxyBytes is the largest complete-tuple store of any proxy.
	MaxProxyBytes int
	// MaxSubtreeBytes is the largest stored subtree structure.
	MaxSubtreeBytes int
	// OverflowNodes counts nodes whose subtree structure exceeded the
	// limit (they forward the filter unpruned instead of storing).
	OverflowNodes int
	// MaxFilterBytes is the largest filter payload any node received.
	MaxFilterBytes int
}

// NewSENSJoin returns the method with the paper's default parameters.
func NewSENSJoin() *SENSJoin { return &SENSJoin{} }

// Name implements Method.
func (s *SENSJoin) Name() string {
	o := s.Options.withDefaults()
	if _, ok := o.Rep.(QuadRep); !ok {
		return "sens-join[" + o.Rep.Name() + "]"
	}
	if s.cont != nil {
		return "sens-join[incremental]"
	}
	return "sens-join"
}

// Rounds reports the completed executions of a continuous method.
func (s *SENSJoin) Rounds() int {
	if s.cont == nil {
		return 0
	}
	return s.cont.Rounds
}

// Phases implements Method.
func (*SENSJoin) Phases() []string { return SENSPhases }

// sensNode is the per-node protocol state (Fig. 1's local variables).
type sensNode struct {
	// Phase A inboxes.
	fullsIn  []finalTuple
	keysIn   []zorder.Key
	rawIn    int
	coverIn  int
	allFull  bool
	children []topology.NodeID
	// Outcome of phase A.
	cut            bool
	activeChildren int
	subtreeKeys    []zorder.Key
	overflow       bool
	proxied        []finalTuple
	// Phase B outcome.
	gotFilter      bool
	ownMatch       bool
	matchedProxy   []finalTuple
	childNeedsFull bool
	// Phase C inbox.
	finalsIn []finalTuple
	// Memory accounting, folded into MemoryReport after the run. Keeping
	// it per node means handlers never touch method-level state, which is
	// what lets sharded regions run them in parallel.
	memProxyBytes   int
	memSubtreeBytes int
	memFilterBytes  int
}

// Run implements Method.
func (s *SENSJoin) Run(x *Exec) (*Result, error) {
	if err := validateAliasCount(x); err != nil {
		return nil, err
	}
	o := s.Options.withDefaults()
	p, err := buildPlan(x)
	if err != nil {
		return nil, err
	}
	if p.grid == nil {
		return nil, fmt.Errorf("core: query %q has no join attributes; SENS-Join needs join conditions", x.Query.String())
	}
	tree := x.Tree
	n := x.Net.N()
	start := x.Sim.Now()
	slotA, slotC := sensSlots(x, p)
	if s.cont != nil {
		s.cont = s.cont.ensure(n)
		s.cont.scratch.reset()
	}
	s.Memory = MemoryReport{}

	// One flat allocation instead of n small ones; at scale the per-node
	// pointer chase and allocator traffic dominate setup.
	states := make([]sensNode, n)
	for i := range states {
		states[i].allFull = true
	}

	// Under reliable transport a filter transfer that exhausts its
	// retransmissions means the subtree below the addressee may run
	// phase C without a filter: record the stand-down so recovery
	// re-collects that subtree unconditionally.
	var standDown []topology.NodeID
	if x.Net.Reliable() {
		x.Net.OnGiveUp(func(m netsim.Message, attempts int) {
			if m.Kind != kindFilter {
				return
			}
			standDown = append(standDown, m.Dst)
			x.span(trace.KindStandDown, m.Dst, m.Src, PhaseFilterDissem, attempts)
		})
		defer x.Net.OnGiveUp(nil)
	}

	// Message handling is shared by all phases.
	for i := 0; i < n; i++ {
		id := topology.NodeID(i)
		st := &states[id]
		x.Net.SetHandler(id, func(m netsim.Message) {
			if st.cut {
				return // the node exited the query after Treecut
			}
			switch m.Kind {
			case kindFullTuples:
				st.fullsIn = append(st.fullsIn, m.Payload.([]finalTuple)...)
			case kindJoinAttrs:
				pl := m.Payload.(*jaPayload)
				st.keysIn = quadtree.UnionKeys(st.keysIn, pl.keys)
				st.rawIn += pl.rawCount
				st.coverIn += pl.covered
				st.allFull = false
				st.activeChildren++
				st.children = append(st.children, m.Src)
				st.childNeedsFull = st.childNeedsFull || pl.needFull
			case kindFilter:
				// Filters travel down the tree: only the broadcast of
				// this node's parent applies; broadcasts overheard from
				// other neighbors concern their subtrees.
				if m.Src == x.Tree.Parent[id] {
					s.onFilter(x, p, o, id, st, m.Src, m.Payload.(*filterMsg))
				}
			case kindFinal:
				st.finalsIn = append(st.finalsIn, m.Payload.([]finalTuple)...)
			}
		})
	}

	// Phase A: Join-Attribute-Collection, leaves first (Fig. 2).
	x.span(trace.KindPhaseStart, topology.BaseStation, -1, PhaseJACollect, 0)
	for i := 1; i < n; i++ {
		id := topology.NodeID(i)
		if !tree.Reachable(id) {
			continue
		}
		deadline := start + float64(tree.MaxDepth-tree.Depth[id])*slotA
		x.Sim.ScheduleNode(id, id, deadline, func() {
			s.forwardJoinAttrValues(x, p, o, id, &states[id])
		})
	}

	// The base station closes phase A, computes the filter and starts
	// phase B (Fig. 3); phase C deadlines are derived afterwards.
	var result *Result
	var gotTuples []finalTuple
	tA := start + float64(tree.MaxDepth+1)*slotA
	x.Sim.ScheduleNode(topology.BaseStation, topology.BaseStation, tA, func() {
		x.span(trace.KindPhaseEnd, topology.BaseStation, -1, PhaseJACollect, 0)
		x.span(trace.KindPhaseStart, topology.BaseStation, -1, PhaseFilterDissem, 0)
		bs := &states[topology.BaseStation]
		bsKeys := bs.keysIn
		for _, t := range bs.fullsIn {
			bsKeys = quadtree.UnionKeys(bsKeys, []zorder.Key{p.keyOf(t)})
		}
		completeA := bs.coverIn+len(bs.fullsIn) == p.members
		filter := computeFilter(p, bsKeys, !o.DisableBandIndex)
		filterBytes := o.Rep.SetBytes(p, filter)
		x.Metrics.observeFilter(len(filter), filterBytes)

		if len(filter) > 0 && bs.activeChildren > 0 {
			msg := s.buildFilterMsg(p, o, topology.BaseStation, filter, bs.childNeedsFull)
			s.sendFilter(x, p, o, topology.BaseStation, bs, msg)
		}

		// Phase C schedule: after the filter has fully propagated. tB is
		// computed from tA, the statically known time of this event, not
		// from the clock — under sharding there is no global "now" inside
		// a run (the values are identical: the classic engine sets the
		// clock to exactly tA here).
		slotB := x.Net.SlotFor(filterBytes + 32)
		tB := tA + float64(tree.MaxDepth+1)*slotB
		if x.Trace.Enabled() || x.Metrics != nil {
			// Scheduled first so the phase boundary precedes the deepest
			// nodes' phase-C transmissions at the same instant. Node-affine
			// to the base station: this runs inside an event handler, where
			// a sharded engine needs to know the executing region.
			x.Sim.ScheduleNode(topology.BaseStation, topology.BaseStation, tB, func() {
				x.span(trace.KindPhaseEnd, topology.BaseStation, -1, PhaseFilterDissem, 0)
				x.span(trace.KindPhaseStart, topology.BaseStation, -1, PhaseFinalCollect, 0)
			})
		}
		for i := 1; i < n; i++ {
			id := topology.NodeID(i)
			if !tree.Reachable(id) {
				continue
			}
			deadline := tB + float64(tree.MaxDepth-tree.Depth[id])*slotC
			x.Sim.ScheduleNode(topology.BaseStation, id, deadline, func() {
				s.forwardCompleteTuples(x, p, id, &states[id])
			})
		}
		tEnd := tB + float64(tree.MaxDepth+1)*slotC
		x.Sim.ScheduleNode(topology.BaseStation, topology.BaseStation, tEnd, func() {
			x.span(trace.KindPhaseEnd, topology.BaseStation, -1, PhaseFinalCollect, 0)
			bsT := &states[topology.BaseStation]
			tuples := append(append([]finalTuple(nil), bsT.fullsIn...), bsT.finalsIn...)
			gotTuples = tuples
			rows, contrib := exactJoin(x, tuples)
			result = &Result{
				Columns:           columnsOf(x.Query),
				Rows:              rows,
				ContributingNodes: len(contrib),
				MemberNodes:       p.members,
				Complete:          completeA && finalComplete(p, filter, tuples),
				ResponseTime:      tEnd - start,
			}
			if s.cont != nil {
				s.cont.Rounds++
			}
		})
	})
	x.Sim.Run()

	// Fold the per-node memory accounting into the report.
	for i := range states {
		st := &states[i]
		if st.memProxyBytes > s.Memory.MaxProxyBytes {
			s.Memory.MaxProxyBytes = st.memProxyBytes
		}
		if st.memSubtreeBytes > s.Memory.MaxSubtreeBytes {
			s.Memory.MaxSubtreeBytes = st.memSubtreeBytes
		}
		if st.memFilterBytes > s.Memory.MaxFilterBytes {
			s.Memory.MaxFilterBytes = st.memFilterBytes
		}
		if st.overflow {
			s.Memory.OverflowNodes++
		}
	}

	// Reliable transport: the base station knows which subtrees are
	// missing; re-request only those instead of re-executing the query.
	if x.Net.Reliable() {
		needed := contributorSet(x, p)
		have := tupleIndex(gotTuples)
		rounds, missing := runScopedRecovery(x, p, needed, have, standDown)
		finishReliable(x, p, result, have, missing, rounds, start)
	} else if result != nil && !result.Complete {
		annotateIncomplete(x, missingFrom(contributorSet(x, p), tupleIndex(gotTuples)), result)
	}
	return result, nil
}

// sendFilter disseminates a filter message to the node's active
// children: one local broadcast normally (the paper's model), one
// reliable unicast per child when hop-by-hop reliable transport is on —
// ACKs need a single addressee, and an unconfirmed child is exactly the
// stand-down signal scoped recovery keys on.
func (s *SENSJoin) sendFilter(x *Exec, p *plan, o Options, id topology.NodeID, st *sensNode, msg *filterMsg) {
	size := filterMsgSize(p, o, msg)
	if !x.Net.Reliable() {
		x.Net.Send(netsim.Message{
			Kind: kindFilter, Src: id, Dst: netsim.BroadcastID,
			Phase: PhaseFilterDissem, Size: size, Payload: msg,
		})
		return
	}
	for _, c := range st.children {
		x.Net.Send(netsim.Message{
			Kind: kindFilter, Src: id, Dst: c,
			Phase: PhaseFilterDissem, Size: size, Payload: msg,
		})
	}
}

// forwardJoinAttrValues is Fig. 2 at one node's phase-A deadline.
func (s *SENSJoin) forwardJoinAttrValues(x *Exec, p *plan, o Options, id topology.NodeID, st *sensNode) {
	nd := p.nodes[id]
	ownBytes := 0
	if nd != nil {
		ownBytes = nd.tupleBytes
	}
	fullBytes := 0
	for _, t := range st.fullsIn {
		fullBytes += t.bytes
	}

	// Treecut (Fig. 2, lines 12-18): while the subtree's data is small
	// and entirely made of complete tuples, keep sending complete tuples.
	if !o.DisableTreecut && st.allFull && fullBytes+ownBytes <= o.Dmax {
		tuples := st.fullsIn
		if nd != nil {
			tuples = append(append([]finalTuple(nil), tuples...), p.tuple(id))
		}
		st.cut = true
		x.span(trace.KindTreecut, id, x.Tree.Parent[id], PhaseJACollect, len(tuples))
		if len(tuples) == 0 {
			return
		}
		x.Net.Send(netsim.Message{
			Kind: kindFullTuples, Src: id, Dst: x.Tree.Parent[id],
			Phase: PhaseJACollect, Size: fullBytes + ownBytes, Payload: tuples,
		})
		return
	}

	// Act as proxy (lines 20-27): store complete tuples and the
	// subtree's join-attribute structure, forward join-attribute tuples.
	st.proxied = st.fullsIn
	if len(st.proxied) > 0 {
		x.span(trace.KindProxy, id, -1, PhaseJACollect, len(st.proxied))
	}
	st.memProxyBytes = fullBytes
	if sb := o.Rep.SetBytes(p, st.keysIn); sb <= o.FilterMemLimit {
		st.subtreeKeys = st.keysIn
		st.memSubtreeBytes = sb
	} else {
		st.overflow = true
	}
	keys := st.keysIn
	for _, t := range st.proxied {
		keys = quadtree.UnionKeys(keys, []zorder.Key{p.keyOf(t)})
	}
	raw := st.rawIn + len(st.proxied)
	covered := st.coverIn + len(st.proxied)
	if nd != nil {
		keys = quadtree.UnionKeys(keys, []zorder.Key{nd.key})
		raw++
		covered++
	}
	if len(keys) == 0 {
		return // nothing anywhere in the subtree
	}
	pl := &jaPayload{keys: keys, rawCount: raw, covered: covered}
	if s.cont != nil && int(id) < s.cont.n {
		pl.needFull = s.cont.needFull[id]
	}
	x.Net.Send(netsim.Message{
		Kind: kindJoinAttrs, Src: id, Dst: x.Tree.Parent[id],
		Phase: PhaseJACollect, Size: o.Rep.PayloadBytes(p, pl), Payload: pl,
	})
}

// onFilter is Fig. 3: intersect the filter with the stored subtree
// structure and forward only if the intersection is non-empty. In
// incremental mode the filter first has to be reconstructed from the
// cached previous round plus the received delta; on a cache mismatch the
// node falls back to assume-all for this round (see incremental.go).
func (s *SENSJoin) onFilter(x *Exec, p *plan, o Options, id topology.NodeID, st *sensNode, from topology.NodeID, msg *filterMsg) {
	if st.gotFilter {
		return // duplicate delivery
	}
	st.gotFilter = true

	filter, ok := s.applyFilterMsg(id, from, msg)
	if !ok {
		// Assume-all: ship everything this round (false positives only)
		// and cascade the conservative mode to the subtree.
		if p.nodes[id] != nil {
			st.ownMatch = true
		}
		st.matchedProxy = st.proxied
		if st.activeChildren > 0 {
			all := &filterMsg{mode: fmAssumeAll}
			s.sendFilter(x, p, o, id, st, all)
		}
		return
	}

	st.memFilterBytes = o.Rep.SetBytes(p, filter)
	if nd := p.nodes[id]; nd != nil {
		if quadtree.ContainsKey(filter, nd.key) {
			st.ownMatch = true
		} else {
			x.span(trace.KindSuppress, id, id, PhaseFilterDissem, 0)
		}
	}
	for _, t := range st.proxied {
		if quadtree.ContainsKey(filter, p.keyOf(t)) {
			st.matchedProxy = append(st.matchedProxy, t)
		} else {
			x.span(trace.KindSuppress, id, t.node, PhaseFilterDissem, 0)
		}
	}
	if st.activeChildren == 0 {
		return
	}
	sub := filter
	if !o.DisableSelectiveForwarding {
		if st.overflow {
			sub = filter // cannot prune: structure was too large to keep
		} else {
			sub = quadtree.IntersectKeys(filter, st.subtreeKeys)
			if pruned := len(filter) - len(sub); pruned > 0 {
				x.span(trace.KindPrune, id, -1, PhaseFilterDissem, pruned)
			}
		}
	}
	if len(sub) == 0 {
		return
	}
	out := s.buildFilterMsg(p, o, id, sub, st.childNeedsFull)
	s.sendFilter(x, p, o, id, st, out)
}

// forwardCompleteTuples is the Final-Result-Computation step at one
// node's phase-C deadline.
func (s *SENSJoin) forwardCompleteTuples(x *Exec, p *plan, id topology.NodeID, st *sensNode) {
	if st.cut {
		return
	}
	tuples := st.finalsIn
	tuples = append(tuples, st.matchedProxy...)
	if st.ownMatch {
		tuples = append(tuples, p.tuple(id))
	}
	if len(tuples) == 0 {
		return
	}
	size := 0
	for _, t := range tuples {
		size += t.bytes
	}
	x.Net.Send(netsim.Message{
		Kind: kindFinal, Src: id, Dst: x.Tree.Parent[id],
		Phase: PhaseFinalCollect, Size: size, Payload: tuples,
	})
}

// keyOf computes the join-attribute key of a complete tuple (the
// projection a proxy performs in Fig. 2, line 22).
func (p *plan) keyOf(t finalTuple) zorder.Key {
	vals := make([]float64, len(p.dims))
	for i, name := range p.dims {
		vals[i] = t.vals[name]
	}
	return p.grid.Encode(t.flags, vals)
}

// finalComplete checks (with simulator omniscience) that every member
// node whose key is in the filter delivered its tuple to the base
// station; a false result means failures lost data and the query should
// be re-executed (§IV-F).
func finalComplete(p *plan, filter []zorder.Key, got []finalTuple) bool {
	have := make(map[topology.NodeID]bool, len(got))
	for _, t := range got {
		have[t.node] = true
	}
	for id, nd := range p.nodes {
		if nd == nil {
			continue
		}
		if quadtree.ContainsKey(filter, nd.key) && !have[topology.NodeID(id)] {
			return false
		}
	}
	return true
}

// sensSlots sizes the TAG-style transmission slots. The phase-A slot
// covers the pre-computation's worst case (raw join-attribute tuples,
// with headroom for compressed representations that can expand); the
// phase-C slot covers complete tuples, like the external join's wave.
// This is why SENS-Join's response time stays within roughly twice the
// external join's (paper §VII).
func sensSlots(x *Exec, p *plan) (slotA, slotC float64) {
	boundA := p.members*p.rawTupleBytes + p.members*p.rawTupleBytes/2 + 256
	return x.Net.SlotFor(boundA), collectionSlot(x, p)
}
