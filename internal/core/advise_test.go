package core

import (
	"fmt"
	"math"
	"testing"
)

// The cost model's predictions must track the simulator: within a
// moderate relative error for both methods across the fraction sweep,
// and — the part that matters for planning — picking the actual winner.
func TestAdviseTracksSimulator(t *testing.T) {
	r := testRunner(t, 300, 601)
	for _, theta := range []float64{0.5, 3, 5, 7, 9} {
		src := fmt.Sprintf(`SELECT A.temp, A.hum, B.temp, B.hum
			FROM Sensors A, Sensors B WHERE A.temp - B.temp > %g ONCE`, theta)
		x, err := r.ExecSQL(src, 0)
		if err != nil {
			t.Fatal(err)
		}
		adv, err := Advise(x)
		if err != nil {
			t.Fatal(err)
		}
		ext, _, err := runPackets(r, src, External{})
		if err != nil {
			t.Fatal(err)
		}
		sens, _, err := runPackets(r, src, NewSENSJoin())
		if err != nil {
			t.Fatal(err)
		}
		relErr := func(pred float64, act int64) float64 {
			return math.Abs(pred-float64(act)) / float64(act)
		}
		if e := relErr(adv.PredictedExternal, ext); e > 0.25 {
			t.Fatalf("theta=%g: external prediction %.0f vs actual %d (%.0f%% off)",
				theta, adv.PredictedExternal, ext, 100*e)
		}
		if e := relErr(adv.PredictedSENS, sens); e > 0.45 {
			t.Fatalf("theta=%g: sens prediction %.0f vs actual %d (%.0f%% off)",
				theta, adv.PredictedSENS, sens, 100*e)
		}
		wantSENS := sens < ext
		gotSENS := adv.Use == "sens-join"
		// Near the break-even both answers are defensible; only flag
		// disagreements when the margin exceeds 15%.
		margin := math.Abs(float64(sens)-float64(ext)) / float64(ext)
		if margin > 0.15 && wantSENS != gotSENS {
			t.Fatalf("theta=%g: model picked %s but simulator says sens=%d ext=%d",
				theta, adv.Use, sens, ext)
		}
		t.Logf("theta=%g f=%.2f: ext %d (pred %.0f), sens %d (pred %.0f), pick=%s break-even=%.2f",
			theta, adv.ExpectedFraction, ext, adv.PredictedExternal, sens, adv.PredictedSENS, adv.Use, adv.BreakEvenFraction)
	}
}

func TestAdviseFields(t *testing.T) {
	r := testRunner(t, 120, 603)
	x, err := r.ExecSQL(qBand(0.2), 0)
	if err != nil {
		t.Fatal(err)
	}
	adv, err := Advise(x)
	if err != nil {
		t.Fatal(err)
	}
	if adv.PredictedExternal <= 0 || adv.PredictedSENS <= 0 {
		t.Fatal("predictions must be positive")
	}
	if adv.ExpectedFraction < 0 || adv.ExpectedFraction > 1 {
		t.Fatalf("fraction %g out of range", adv.ExpectedFraction)
	}
	if adv.BreakEvenFraction <= 0 || adv.BreakEvenFraction > 1 {
		t.Fatalf("break-even %g out of range", adv.BreakEvenFraction)
	}
}
