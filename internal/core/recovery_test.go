package core

import (
	"testing"

	"sensjoin/internal/netsim"
	"sensjoin/internal/topology"
	"sensjoin/internal/trace"
)

// Under reliable transport and substantial loss, both methods must
// deliver the exact ground truth with a complete verdict, with the
// retransmissions visible in the per-phase accounting and every audit
// pass clean (AutoAudit turns violations into errors).
func TestReliableLossExactAndComplete(t *testing.T) {
	for _, loss := range []float64{0.05, 0.10} {
		for _, m := range []Method{NewSENSJoin(), External{}} {
			r := testRunner(t, 300, 91)
			r.AutoAudit = true
			r.EnableReliableTransport(netsim.ReliableConfig{})
			r.Net.SetLossRate(loss, 424242)
			x, err := r.ExecSQL(qBand(0.4), 0)
			if err != nil {
				t.Fatal(err)
			}
			truth, err := GroundTruth(x)
			if err != nil {
				t.Fatal(err)
			}
			res, err := r.Run(qBand(0.4), m, 0)
			if err != nil {
				t.Fatalf("%s at loss %g: %v", m.Name(), loss, err)
			}
			if !res.Complete {
				t.Fatalf("%s at loss %g: incomplete (reason %q, missing %v)",
					m.Name(), loss, res.IncompleteReason, res.MissingSubtrees)
			}
			sameRows(t, truth.Rows, res.Rows, "truth", m.Name())
			if r.Stats.TotalRetx() == 0 {
				t.Fatalf("%s at loss %g: no retransmissions recorded", m.Name(), loss)
			}
			if r.Stats.TotalAck() == 0 {
				t.Fatalf("%s at loss %g: no ACKs recorded", m.Name(), loss)
			}
		}
	}
}

// A permanently jammed down-link makes filter dissemination to a subtree
// impossible: the transfer gives up, the subtree stands down and scoped
// recovery re-requests it every round. With the link never healing the
// result stays incomplete, but the verdict must say exactly what is
// missing — and the whole run must still audit clean.
func TestFilterStandDownForcesSubtreeRecovery(t *testing.T) {
	// 12-node chain: long enough that only the tail is Treecut and a real
	// filter travels down through nodes 1..9.
	r := NewRunnerFromDeployment(topology.Line(12, 40, 50), netsim.RadioConfig{}, 5)
	r.EnableReliableTransport(netsim.ReliableConfig{})
	rec := r.EnableTrace()
	// Jam the down-direction of the 1→2 tree edge only: phase A (child to
	// parent) is untouched, the filter and every re-request give up.
	r.Net.SetLinkLossRate(1, 2, 1.0)
	// Explicit AuditRun (not AutoAudit) keeps the journal for inspection.
	res, violations, err := r.AuditRun(qBand(10), NewSENSJoin(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Fatalf("audit violations on a jammed-link run: %v", violations)
	}
	if res.Complete {
		t.Fatal("subtree behind a jammed link cannot be complete")
	}
	if res.RecoveryRounds != maxRecoveryRounds {
		t.Fatalf("RecoveryRounds = %d, want %d", res.RecoveryRounds, maxRecoveryRounds)
	}
	if len(res.MissingSubtrees) != 1 || res.MissingSubtrees[0] != 2 {
		t.Fatalf("MissingSubtrees = %v, want [2]", res.MissingSubtrees)
	}
	if res.IncompleteReason != ReasonLoss {
		t.Fatalf("IncompleteReason = %q, want %q", res.IncompleteReason, ReasonLoss)
	}
	standDown := false
	for _, ev := range rec.Journal().Events {
		if ev.Kind == trace.KindStandDown {
			standDown = true
		}
	}
	if !standDown {
		t.Fatal("filter give-up did not journal a stand-down")
	}
}

// Scoped recovery after a transient outage: a link is down while the
// subtree should report and comes back before recovery runs, so the
// re-request path works and the round recovers exactly the missing data.
func TestScopedRecoveryHealsTransientOutage(t *testing.T) {
	r := testRunner(t, 150, 95)
	r.AutoAudit = true
	r.EnableReliableTransport(netsim.ReliableConfig{})
	child, parent := failLink(r)
	// The up-link dies at query start and heals shortly after: the
	// subtree misses its collection slots, recovery re-requests it.
	r.Net.SetLinkLossRate(child, parent, 1.0)
	healed := false
	var heal func()
	heal = func() {
		// Heal once the outage has bitten (the subtree's transfer
		// exhausted its retransmissions); the subtree's slot has passed
		// by then, so only scoped recovery can bring its data in.
		if r.Net.GiveUps > 0 {
			r.Net.SetLinkLossRate(child, parent, 0)
			healed = true
			return
		}
		r.Sim.Schedule(r.Sim.Now()+5, heal)
	}
	r.Sim.Schedule(5, heal)
	x, err := r.ExecSQL(qBand(10), 0)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := GroundTruth(x)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(qBand(10), NewSENSJoin(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !healed {
		t.Fatal("link never exhausted a transfer; outage did not bite")
	}
	if res.RecoveryRounds == 0 {
		t.Fatal("expected at least one scoped-recovery round")
	}
	if !res.Complete {
		t.Fatalf("recovery did not complete the result (reason %q, missing %v)",
			res.IncompleteReason, res.MissingSubtrees)
	}
	sameRows(t, truth.Rows, res.Rows, "truth", "recovered")
	if r.Stats.TotalTx(PhaseRecovery) == 0 {
		t.Fatal("recovery traffic was not charged under its phase")
	}
}

// Satellite (b): the give-up path of RunWithRecovery must report the
// attempt count consistently and surface why the result stayed
// incomplete.
func TestRunWithRecoveryGiveUpSurfacesReason(t *testing.T) {
	r := testRunner(t, 100, 79)
	var victim topology.NodeID = -1
	for i := 1; i < r.Dep.N(); i++ {
		if r.Tree.Depth[i] >= 2 && r.Tree.Descendants[i] == 0 {
			victim = topology.NodeID(i)
			break
		}
	}
	if victim < 0 {
		t.Skip("no leaf victim found")
	}
	for _, nb := range r.Dep.Neighbors[victim] {
		r.Net.LinkDown(victim, nb)
	}
	// qBand(10) joins everything, so the partitioned node is a needed
	// contributor on every attempt.
	res, attempts, err := r.RunWithRecovery(qBand(10), NewSENSJoin(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want exactly the maximum 2", attempts)
	}
	if res == nil || res.Complete {
		t.Fatal("partitioned contributor cannot yield a complete result")
	}
	if res.IncompleteReason != ReasonPartition {
		t.Fatalf("IncompleteReason = %q, want %q", res.IncompleteReason, ReasonPartition)
	}
	found := false
	for _, id := range res.MissingSubtrees {
		if id == victim {
			found = true
		}
	}
	if !found {
		t.Fatalf("MissingSubtrees = %v does not name the victim %d", res.MissingSubtrees, victim)
	}
}

// A dead relay takes its subtree's data with it; the verdict must call
// that a dead subtree, not a recoverable loss.
func TestIncompleteReasonDeadSubtree(t *testing.T) {
	r := testRunner(t, 120, 83)
	var victim topology.NodeID = -1
	for i := 1; i < r.Dep.N(); i++ {
		if r.Tree.Depth[i] == 1 && r.Tree.Descendants[i] > 5 {
			victim = topology.NodeID(i)
			break
		}
	}
	if victim < 0 {
		t.Skip("no suitable relay")
	}
	r.Sim.Schedule(0.5, func() { r.Net.KillNode(victim) })
	res, err := r.Run(qBand(10), NewSENSJoin(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Fatal("mid-execution relay death must surface as incomplete")
	}
	if res.IncompleteReason != ReasonDeadSubtree {
		t.Fatalf("IncompleteReason = %q, want %q", res.IncompleteReason, ReasonDeadSubtree)
	}
}
