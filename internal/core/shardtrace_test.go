package core

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"sensjoin/internal/metrics"
	"sensjoin/internal/trace"
)

const shardTraceSrc = `SELECT A.temp, B.hum FROM Sensors A, Sensors B WHERE A.temp - B.temp > 8.0 ONCE`

// shardTraceJournal runs one traced query on a runner with the given
// shard count and returns the run's journal plus its JSONL rendering.
func shardTraceJournal(t *testing.T, shards int, m Method) (*trace.Journal, []byte) {
	t.Helper()
	r, err := NewRunner(SetupConfig{Nodes: 300, Seed: 3, Shards: shards, Private: true, SetupWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	rec := r.EnableTrace()
	mark := rec.Mark()
	if _, err := r.Run(shardTraceSrc, m, 0); err != nil {
		t.Fatal(err)
	}
	if shards > 1 && !r.Sim.Sharded() {
		t.Fatalf("shards=%d: simulator fell back to the classic engine under tracing", shards)
	}
	j := rec.JournalSince(mark)
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, j); err != nil {
		t.Fatal(err)
	}
	return j, buf.Bytes()
}

// The tentpole contract of sharded tracing: for any shard count the
// recorded journal is BYTE-identical — per-sender message ids, region
// clocks for timestamps and the canonical journal order remove every
// trace of worker interleaving.
func TestShardTraceDeterministicJournal(t *testing.T) {
	for _, m := range []Method{NewSENSJoin(), External{}} {
		_, ref := shardTraceJournal(t, 0, m)
		if len(ref) == 0 {
			t.Fatalf("%s: classic journal is empty", m.Name())
		}
		for _, shards := range []int{2, 8} {
			_, got := shardTraceJournal(t, shards, m)
			if !bytes.Equal(ref, got) {
				t.Fatalf("%s: journal at shards=%d differs from the classic engine (%d vs %d bytes)",
					m.Name(), shards, len(got), len(ref))
			}
		}
	}
}

// A sharded, traced execution must pass every audit pass. AuditRun
// covers conservation, reconciliation, slot order, reliability and
// filter soundness; churn safety — sixth — runs directly on the merged
// journal with the run's own verdict (churn itself forces the classic
// engine, so this is the only way to exercise the pass on a sharded
// journal).
func TestShardTraceAuditsClean(t *testing.T) {
	for _, shards := range []int{2, 8} {
		r, err := NewRunner(SetupConfig{Nodes: 300, Seed: 3, Shards: shards, Private: true, SetupWorkers: 1})
		if err != nil {
			t.Fatal(err)
		}
		rec := r.EnableTrace()
		mark := rec.Mark()
		res, violations, err := r.AuditRun(shardTraceSrc, NewSENSJoin(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if !r.Sim.Sharded() {
			t.Fatalf("shards=%d: AuditRun fell back to the classic engine", shards)
		}
		j := rec.JournalSince(mark)
		violations = append(violations, trace.ChurnSafety(j, trace.ChurnVerdict{
			Complete:    res.Complete,
			OracleExact: true,
		})...)
		if len(violations) > 0 {
			t.Fatalf("shards=%d: %d violation(s), first: %s", shards, len(violations), violations[0])
		}
		if !res.Complete {
			t.Fatalf("shards=%d: run incomplete: %s", shards, res.IncompleteReason)
		}
	}
}

// Metrics, like tracing, must compose with the sharded engine rather
// than force a fallback: a metered sharded run stays sharded, counts
// real traffic, and returns the same rows as the classic engine.
func TestShardMetricsStaysSharded(t *testing.T) {
	classic, err := NewRunner(SetupConfig{Nodes: 300, Seed: 3, Private: true, SetupWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := classic.Run(shardTraceSrc, NewSENSJoin(), 0)
	if err != nil {
		t.Fatal(err)
	}

	reg := metrics.New()
	r, err := NewRunner(SetupConfig{Nodes: 300, Seed: 3, Shards: 4, Private: true, SetupWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	r.EnableMetrics(reg)
	if !r.Sim.Sharded() {
		t.Fatal("EnableMetrics reverted the sharded engine")
	}
	res, err := r.Run(shardTraceSrc, NewSENSJoin(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Sim.Sharded() {
		t.Fatal("simulator fell back to the classic engine during a metered run")
	}
	// Row ORDER may differ between engines (same-time arrival ties at
	// the base station resolve differently); the row multiset may not.
	if got, want := sortedRows(res.Rows), sortedRows(ref.Rows); !equalStrings(got, want) {
		t.Fatalf("metered sharded rows differ from classic: %d vs %d rows", len(res.Rows), len(ref.Rows))
	}
	snap := reg.Snapshot()
	tx, _ := snap["sensjoin_netsim_tx_packets_total"].(int64)
	if tx <= 0 {
		t.Fatalf("sensjoin_netsim_tx_packets_total = %d, want > 0", tx)
	}
}

func sortedRows(rows []Row) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprint(r)
	}
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
