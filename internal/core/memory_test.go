package core

import (
	"testing"
)

// The paper's memory bounds (§IV-B, §IV-C, §VII): a proxy stores at most
// Dmax bytes per child, and the stored subtree structure never exceeds
// the configured limit.
func TestMemoryBoundsHold(t *testing.T) {
	r := testRunner(t, 400, 701)
	m := NewSENSJoin()
	if _, err := r.Run(qBand(0.5), m, 0); err != nil {
		t.Fatal(err)
	}
	rep := m.Memory
	// Upper bound on children per node in this deployment.
	maxChildren := 0
	for _, ch := range r.Tree.Children {
		if len(ch) > maxChildren {
			maxChildren = len(ch)
		}
	}
	if rep.MaxProxyBytes > 30*maxChildren {
		t.Fatalf("proxy store %dB exceeds Dmax x children = %d", rep.MaxProxyBytes, 30*maxChildren)
	}
	if rep.MaxSubtreeBytes > 500 {
		t.Fatalf("stored subtree structure %dB exceeds the 500B limit", rep.MaxSubtreeBytes)
	}
	if rep.MaxProxyBytes == 0 {
		t.Fatal("no proxy recorded: treecut never engaged?")
	}
	t.Logf("memory: proxy max %dB, subtree max %dB, overflow nodes %d, filter max %dB",
		rep.MaxProxyBytes, rep.MaxSubtreeBytes, rep.OverflowNodes, rep.MaxFilterBytes)
}

func TestMemoryOverflowCountedWithTinyLimit(t *testing.T) {
	r := testRunner(t, 300, 703)
	m := &SENSJoin{Options: Options{FilterMemLimit: 8}}
	if _, err := r.Run(qBand(0.5), m, 0); err != nil {
		t.Fatal(err)
	}
	if m.Memory.OverflowNodes == 0 {
		t.Fatal("an 8-byte limit must overflow somewhere")
	}
	if m.Memory.MaxSubtreeBytes > 8 {
		t.Fatalf("stored %dB despite 8B limit", m.Memory.MaxSubtreeBytes)
	}
}
