package core

import (
	"testing"

	"sensjoin/internal/stats"
	"sensjoin/internal/topology"
	"sensjoin/internal/trace"
)

// Clean executions of every join method must pass all audit passes with
// zero violations — conservation, reconciliation, slot ordering and (for
// filter-based methods) filter soundness.
func TestAuditRunCleanMethods(t *testing.T) {
	for _, m := range []Method{NewSENSJoin(), External{}, Mediated{}, SemiJoin{}} {
		t.Run(m.Name(), func(t *testing.T) {
			r := testRunner(t, 120, 42)
			res, violations, err := r.AuditRun(qBand(0.4), m, 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(violations) != 0 {
				t.Fatalf("clean %s run: %d violation(s), first: %s", m.Name(), len(violations), violations[0])
			}
			if res == nil || !res.Complete {
				t.Fatalf("clean %s run incomplete", m.Name())
			}
			if len(r.Trace.Journal().Events) == 0 {
				t.Fatal("audited run recorded no events")
			}
		})
	}
}

// Audited results must be identical to unaudited ones: tracing is
// observation, not interference.
func TestAuditRunMatchesPlainRun(t *testing.T) {
	plain := testRunner(t, 120, 42)
	audited := testRunner(t, 120, 42)
	want, err := plain.Run(qBand(0.4), NewSENSJoin(), 0)
	if err != nil {
		t.Fatal(err)
	}
	got, violations, err := audited.AuditRun(qBand(0.4), NewSENSJoin(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Fatalf("violations: %v", violations)
	}
	sameRows(t, want.Rows, got.Rows, "plain", "audited")
	if want.ResponseTime != got.ResponseTime {
		t.Fatalf("ResponseTime %g != %g — tracing changed timing", got.ResponseTime, want.ResponseTime)
	}
	if plain.Stats.TotalTxBytes() != audited.Stats.TotalTxBytes() {
		t.Fatalf("TotalTxBytes %d != %d — tracing changed traffic",
			audited.Stats.TotalTxBytes(), plain.Stats.TotalTxBytes())
	}
}

// Fault-injected executions (packet loss, failed links, dead nodes) must
// still audit clean: the auditors understand the fault model, so losses
// explain gaps instead of raising violations.
func TestAuditRunWithFaultsPasses(t *testing.T) {
	r := testRunner(t, 120, 43)
	r.Net.SetLossRate(0.05, 7)
	r.Net.LinkDown(5, r.Tree.Parent[5])
	r.Net.KillNode(17)
	r.RebuildTree()
	for _, m := range []Method{NewSENSJoin(), External{}} {
		_, violations, err := r.AuditRun(qBand(0.4), m, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(violations) != 0 {
			t.Fatalf("faulty %s run: %d violation(s), first: %s", m.Name(), len(violations), violations[0])
		}
	}
}

// AutoAudit routes Run through the audited path and truncates each
// journal segment afterwards, so continuous soaks stay bounded.
func TestAutoAuditContinuousRoundsBounded(t *testing.T) {
	r := testRunner(t, 100, 44)
	r.AutoAudit = true
	m := NewContinuousSENSJoin()
	for round := 0; round < 3; round++ {
		if _, err := r.Run(qBand(0.4), m, float64(round)*30); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	if n := r.Trace.Mark(); n != 0 {
		t.Fatalf("journal holds %d events after auto-audited rounds; want 0 (truncated)", n)
	}
}

// Planted violations on journals from real executions must be flagged:
// the auditors work end-to-end, not just on synthetic event lists.
func TestAuditFlagsPlantedViolations(t *testing.T) {
	r := testRunner(t, 100, 45)
	rec := r.EnableTrace()
	before := r.Stats.Snapshot()
	if _, err := r.Run(qBand(0.4), NewSENSJoin(), 0); err != nil {
		t.Fatal(err)
	}
	after := r.Stats.Snapshot()
	j := rec.Journal()

	// Plant 1: erase one delivery — conservation must see the tx with a
	// missing outcome.
	tampered := &trace.Journal{Events: make([]trace.Event, 0, len(j.Events))}
	dropped := false
	for _, ev := range j.Events {
		if !dropped && ev.Kind == trace.KindRx {
			dropped = true
			continue
		}
		tampered.Events = append(tampered.Events, ev)
	}
	if !dropped {
		t.Fatal("no rx event to erase")
	}
	if v := trace.Conservation(tampered); len(v) == 0 {
		t.Fatal("erased delivery not flagged by conservation audit")
	}
	if v := trace.Conservation(j); len(v) != 0 {
		t.Fatalf("untampered journal flagged: %v", v)
	}

	// Plant 2: a stats collector that missed the run — reconciliation
	// must flag every phase with traffic.
	if v := trace.Reconcile(j, before, after); len(v) != 0 {
		t.Fatalf("honest stats flagged: %v", v)
	}
	if v := trace.Reconcile(j, before, before); len(v) == 0 {
		t.Fatal("stats that missed the run not flagged by reconciliation audit")
	}

	// Plant 3: swap a tx to the base station's identity at time zero —
	// the root transmitting before its children violates slot order.
	planted := &trace.Journal{Events: append([]trace.Event{{
		Kind: trace.KindTx, Node: topology.BaseStation, Phase: PhaseJACollect, At: 0, MsgID: -1,
	}}, j.Events...)}
	// Strip spans so the whole journal is one slot-order segment.
	var flat []trace.Event
	for _, ev := range planted.Events {
		if ev.Kind.Radio() {
			flat = append(flat, ev)
		}
	}
	if v := trace.SlotOrder(&trace.Journal{Events: flat}, r.Tree, []string{PhaseJACollect}); len(v) == 0 {
		t.Fatal("root-before-children tx not flagged by slot-order audit")
	}
}

// An incomplete run followed by tree repair must leave a recovery span
// in the journal.
func TestRunWithRecoveryEmitsRecoverySpan(t *testing.T) {
	r := testRunner(t, 100, 46)
	rec := r.EnableTrace()
	// Kill a mid-tree node so the first attempt is incomplete.
	var victim topology.NodeID = -1
	for id := 1; id < r.Dep.N(); id++ {
		if r.Tree.Depth[id] == 1 {
			victim = topology.NodeID(id)
			break
		}
	}
	if victim < 0 {
		t.Skip("no depth-1 node")
	}
	r.Net.KillNode(victim)
	res, attempts, err := r.RunWithRecovery(qBand(0.4), NewSENSJoin(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete && attempts == 1 {
		t.Skip("victim's death did not make the run incomplete")
	}
	found := false
	for _, ev := range rec.Journal().Events {
		if ev.Kind == trace.KindRecovery {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no recovery span after tree repair")
	}
}

// compile-time check that stats.Snapshot stays usable from this package.
var _ = stats.Snapshot{}
