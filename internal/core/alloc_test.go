package core

import (
	"testing"

	"sensjoin/internal/zorder"
)

// filterFixture builds a plan and its key set for allocation tests.
func filterFixture(t *testing.T, src string) (*plan, []zorder.Key) {
	t.Helper()
	r, err := NewRunner(SetupConfig{Nodes: 400, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	x, err := r.ExecSQL(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := buildPlan(x)
	if err != nil {
		t.Fatal(err)
	}
	var keys []zorder.Key
	for _, nd := range p.nodes {
		if nd != nil {
			keys = append(keys, nd.key)
		}
	}
	return p, keys
}

// The filter computations run once per query at the base station but
// dominated the experiment harness before they were moved onto pooled
// scratch buffers (measured: millions of allocations per call for the
// generic path at scale). These regression bounds are far above the
// current steady-state counts (tens of allocations) and far below the
// pre-optimization ones, so a reintroduced per-pair or per-level
// allocation trips them immediately.
func TestComputeFilterAllocs(t *testing.T) {
	src := "SELECT A.temp, B.temp FROM Sensors A, Sensors B WHERE abs(A.temp - B.temp) < 0.2 AND distance(A.x, A.y, B.x, B.y) > 100 ONCE"
	p, keys := filterFixture(t, src)

	computeFilter(p, keys, false) // warm the scratch pool
	allocs := testing.AllocsPerRun(10, func() {
		computeFilter(p, keys, false)
	})
	if allocs > 100 {
		t.Errorf("computeFilter (generic): %.0f allocs/run, want <= 100", allocs)
	}

	computeFilter(p, keys, true)
	allocs = testing.AllocsPerRun(10, func() {
		computeFilter(p, keys, true)
	})
	if allocs > 100 {
		t.Errorf("computeFilter (band index): %.0f allocs/run, want <= 100", allocs)
	}
}
