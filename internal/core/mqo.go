package core

import (
	"fmt"
	"sort"
	"strings"

	"sensjoin/internal/netsim"
	"sensjoin/internal/quadtree"
	"sensjoin/internal/query"
	"sensjoin/internal/topology"
	"sensjoin/internal/trace"
	"sensjoin/internal/zorder"
)

// Multi-query optimization: shared execution of concurrent continuous
// joins. With N continuous queries over one deployment, independent
// execution repeats the three SENS-Join phases N times per epoch even
// when the queries overlap heavily. A QueryGroup instead clusters
// *compatible* queries — same FROM shape, join attributes, shipped
// attributes and (canonically equal) local predicates, so every member
// induces the identical per-node plan — and runs each cluster as ONE
// protocol round per epoch:
//
//   - one Join-Attribute-Collection wave (phase A) feeds all members;
//   - one filter broadcast carries the UNION of the per-query filters
//     plus an m-bit membership mask per key (m = cluster size), so a
//     node knows exactly which queries want its tuple;
//   - one collection wave (phase C) ships a tuple matching k queries
//     once, tagged with a compact query-membership bitmap, and the base
//     station fans it back out to per-query result tables through the
//     exact-join kernel.
//
// The incremental symmetric-difference machinery of incremental.go is
// reused unchanged for the union filter: across epochs only the union's
// drift re-disseminates, shared by the whole cluster (the masks are
// small — m bits per key — and ship fully each epoch).
//
// Correctness: cluster members share the node set, flags, quantized
// keys and tuple sizes by construction of the compatibility key, so one
// phase-A wave is exact for all of them. The union filter is a superset
// of every member's filter, and a per-key mask bit j is set iff the key
// is in member j's filter; a tuple reaches member j's table iff its
// mask has bit j, which makes each table exactly what member j's own
// filter would have collected (supersets add no rows to an exact join).
// Assume-all fallbacks set the full mask — a further superset per
// query. Under reliable transport the per-query tables are
// byte-identical to independent runs (the recovered tuple set is sorted
// by node id before the final join); under best-effort delivery the row
// SETS are identical but arrival order may differ.

// maxClusterQueries bounds one cluster so the membership mask fits a
// uint64. Further compatible queries open a new cluster.
const maxClusterQueries = 64

// QueryGroup is a set of concurrent continuous queries executed with
// shared dissemination and collection.
type QueryGroup struct {
	// Options tune the underlying SENS-Join; the zero value selects the
	// paper's defaults.
	Options Options

	queries  []*groupQuery
	clusters []*qgCluster
	rounds   int
}

// groupQuery is one registered query.
type groupQuery struct {
	src     string
	q       *query.Query
	cluster *qgCluster
	bit     int // index within the cluster (mask bit)
	idx     int // index within the group (result slot)
	// tag is the member's own trace ID: shared-round journal events
	// carry the group's ambient tag, except each member's fan-out span,
	// which carries this one (SetMemberTag).
	tag string
}

// qgCluster is a set of compatible queries sharing one protocol round
// per epoch. Its SENSJoin owns the cluster's incremental filter state.
type qgCluster struct {
	key     string
	members []*groupQuery
	sens    *SENSJoin
}

// NewQueryGroup returns an empty group with the given method options.
func NewQueryGroup(o Options) *QueryGroup {
	return &QueryGroup{Options: o}
}

// Add registers a continuous query with the group and returns its index
// (the result slot in RunRound's output). Compatible queries — same
// relations, join attributes, shipped attributes and canonically equal
// local predicates — land in the same cluster.
func (g *QueryGroup) Add(src string) (int, error) {
	q, err := query.Parse(src)
	if err != nil {
		return 0, err
	}
	if len(q.From) < 2 {
		return 0, fmt.Errorf("core: %q has %d relation(s); shared execution needs joins", src, len(q.From))
	}
	a, err := query.Analyze(q)
	if err != nil {
		return 0, err
	}
	joinAttrs := 0
	for i := range q.From {
		joinAttrs += len(a.JoinAttrs[i])
	}
	if joinAttrs == 0 {
		return 0, fmt.Errorf("core: query %q has no join attributes; SENS-Join needs join conditions", src)
	}
	gq := &groupQuery{src: src, q: q, idx: len(g.queries)}
	key := compatKey(q, a)
	for _, c := range g.clusters {
		if c.key == key && len(c.members) < maxClusterQueries {
			gq.cluster = c
			gq.bit = len(c.members)
			c.members = append(c.members, gq)
			break
		}
	}
	if gq.cluster == nil {
		c := &qgCluster{key: key, members: []*groupQuery{gq}, sens: NewContinuousSENSJoin()}
		c.sens.Options = g.Options
		gq.cluster = c
		g.clusters = append(g.clusters, c)
	}
	g.queries = append(g.queries, gq)
	return gq.idx, nil
}

// compatKey renders everything that shapes the per-node plan: two
// queries with equal keys induce identical node flags, quantized keys
// and tuple sizes, which is what lets one collection wave serve both.
// Join conditions are deliberately absent — they only shape the
// per-query filter the base station computes, and the shared broadcast
// carries the union.
func compatKey(q *query.Query, a *query.Analysis) string {
	var b strings.Builder
	fmt.Fprintf(&b, "from=%d star=%t;", len(q.From), q.Star)
	for i, ref := range q.From {
		fmt.Fprintf(&b, "[%d]rel=%s ja=%v sh=%v lp=", i, ref.Relation, a.JoinAttrs[i], a.ShippedAttrs[i])
		preds := make([]string, 0, len(a.LocalPreds[i]))
		for _, pr := range a.LocalPreds[i] {
			preds = append(preds, query.Canonical(pr).String())
		}
		sort.Strings(preds)
		b.WriteString(strings.Join(preds, "&"))
		b.WriteByte(';')
	}
	return b.String()
}

// Len returns the number of registered queries.
func (g *QueryGroup) Len() int { return len(g.queries) }

// Clusters returns the number of shared-execution clusters.
func (g *QueryGroup) Clusters() int { return len(g.clusters) }

// ClusterOf returns the cluster ordinal of query idx (clusters are
// numbered in first-registration order).
func (g *QueryGroup) ClusterOf(idx int) int {
	for ci, c := range g.clusters {
		if c == g.queries[idx].cluster {
			return ci
		}
	}
	return -1
}

// Rounds reports completed shared rounds.
func (g *QueryGroup) Rounds() int { return g.rounds }

// SetMemberTag attributes query idx's per-member journal events (its
// result fan-out at the base station) to the given trace ID. The shared
// round's common events carry whatever ambient tag the recorder holds.
func (g *QueryGroup) SetMemberTag(idx int, tag string) {
	g.queries[idx].tag = tag
}

// groupFilterMsg is the merged filter broadcast: the (possibly delta)
// union filter plus one m-bit membership mask per key. The masks align
// with the RECONSTRUCTED key list at the receiver — the sender's full
// current key set — and ship fully every epoch (m bits per key; only
// the key set itself is delta-compressed). masks is nil for assume-all.
type groupFilterMsg struct {
	fm    *filterMsg
	masks []uint64
}

// groupTuple is a complete tuple in flight with its query-membership
// bitmap; the bitmap adds perTupleMaskBytes(m) wire bytes.
type groupTuple struct {
	t    finalTuple
	mask uint64
}

// groupNode extends the per-node SENS-Join state with mask bookkeeping.
type groupNode struct {
	sensNode
	// ownMask marks the queries whose filter contains the node's key
	// (full mask under assume-all); zero suppresses the tuple.
	ownMask uint64
	// proxyG holds the proxied tuples that matched, with their masks.
	proxyG []groupTuple
	// gfinals is the phase-C inbox.
	gfinals []groupTuple
}

// maskAll returns the m-bit all-ones mask (m <= 64; at m == 64 the
// shift wraps to 0 and the subtraction yields all ones, as intended).
func maskAll(m int) uint64 { return uint64(1)<<uint(m) - 1 }

// maskBytes is the wire size of n per-key masks of m bits each.
func maskBytes(n, m int) int { return (n*m + 7) / 8 }

// perTupleMaskBytes is the wire size of one tuple's membership bitmap.
func perTupleMaskBytes(m int) int { return (m + 7) / 8 }

// findKey locates k in the sorted key set, or -1.
func findKey(keys []zorder.Key, k zorder.Key) int {
	i := sort.Search(len(keys), func(j int) bool { return keys[j] >= k })
	if i < len(keys) && keys[i] == k {
		return i
	}
	return -1
}

// realignMasks projects the masks of filter onto its subset sub (both
// sorted): the pruned broadcast keeps each surviving key's mask.
func realignMasks(filter []zorder.Key, masks []uint64, sub []zorder.Key) []uint64 {
	out := make([]uint64, len(sub))
	fi := 0
	for i, k := range sub {
		for fi < len(filter) && filter[fi] < k {
			fi++
		}
		if fi < len(filter) && filter[fi] == k {
			out[i] = masks[fi]
		}
	}
	return out
}

// RunRound executes one shared epoch of every registered query at
// snapshot time t and returns the per-query results, indexed by the
// query indices Add returned. Incompatible clusters run sequentially;
// within a cluster all members share one protocol round.
func (g *QueryGroup) RunRound(r *Runner, t float64) ([]*Result, error) {
	if len(g.queries) == 0 {
		return nil, fmt.Errorf("core: empty query group")
	}
	if r.Metrics != nil {
		r.Metrics.MQOGroups.Set(int64(len(g.clusters)))
	}
	results := make([]*Result, len(g.queries))
	for _, c := range g.clusters {
		if err := g.runCluster(r, c, t, results); err != nil {
			return nil, err
		}
	}
	g.rounds++
	return results, nil
}

// runCluster is SENSJoin.Run generalized to m cluster members: one
// phase-A wave, one masked union-filter dissemination, one bitmap-
// tagged collection wave, then a per-member exact join at the base
// station.
func (g *QueryGroup) runCluster(r *Runner, c *qgCluster, t float64, results []*Result) error {
	m := len(c.members)
	fullMask := maskAll(m)
	s := c.sens
	o := s.Options.withDefaults()

	execs := make([]*Exec, m)
	for j, gq := range c.members {
		x, err := r.Exec(gq.q, t)
		if err != nil {
			return err
		}
		execs[j] = x
	}
	x0 := execs[0]
	p0, err := buildPlan(x0)
	if err != nil {
		return err
	}
	if p0.grid == nil {
		return fmt.Errorf("core: query %q has no join attributes; SENS-Join needs join conditions", x0.Query.String())
	}
	plans := make([]*plan, m)
	plans[0] = p0
	for j := 1; j < m; j++ {
		plans[j] = p0.forExec(execs[j])
	}

	tree := x0.Tree
	n := x0.Net.N()
	start := x0.Sim.Now()
	slotA, _ := sensSlots(x0, p0)
	// The collection slot must also cover the per-tuple membership
	// bitmaps riding on a worst-case packet.
	maxTuple := 0
	for _, nd := range p0.nodes {
		if nd != nil && nd.tupleBytes > maxTuple {
			maxTuple = nd.tupleBytes
		}
	}
	slotC := x0.Net.SlotFor(p0.members*maxTuple + p0.members*perTupleMaskBytes(m) + 64)
	s.cont = s.cont.ensure(n)
	s.cont.scratch.reset()
	s.Memory = MemoryReport{}

	states := make([]groupNode, n)
	for i := range states {
		states[i].allFull = true
	}

	var standDown []topology.NodeID
	if x0.Net.Reliable() {
		x0.Net.OnGiveUp(func(msg netsim.Message, attempts int) {
			if msg.Kind != kindFilter {
				return
			}
			standDown = append(standDown, msg.Dst)
			x0.span(trace.KindStandDown, msg.Dst, msg.Src, PhaseFilterDissem, attempts)
		})
		defer x0.Net.OnGiveUp(nil)
	}

	for i := 0; i < n; i++ {
		id := topology.NodeID(i)
		st := &states[id]
		x0.Net.SetHandler(id, func(msg netsim.Message) {
			if st.cut {
				return
			}
			switch msg.Kind {
			case kindFullTuples:
				st.fullsIn = append(st.fullsIn, msg.Payload.([]finalTuple)...)
			case kindJoinAttrs:
				pl := msg.Payload.(*jaPayload)
				st.keysIn = quadtree.UnionKeys(st.keysIn, pl.keys)
				st.rawIn += pl.rawCount
				st.coverIn += pl.covered
				st.allFull = false
				st.activeChildren++
				st.children = append(st.children, msg.Src)
				st.childNeedsFull = st.childNeedsFull || pl.needFull
			case kindFilter:
				if msg.Src == tree.Parent[id] {
					g.onGroupFilter(x0, p0, o, s, id, st, msg.Src, msg.Payload.(*groupFilterMsg), m, fullMask)
				}
			case kindFinal:
				st.gfinals = append(st.gfinals, msg.Payload.([]groupTuple)...)
			}
		})
	}

	// Phase A: one Join-Attribute-Collection wave serves every member.
	x0.span(trace.KindPhaseStart, topology.BaseStation, -1, PhaseJACollect, 0)
	for i := 1; i < n; i++ {
		id := topology.NodeID(i)
		if !tree.Reachable(id) {
			continue
		}
		deadline := start + float64(tree.MaxDepth-tree.Depth[id])*slotA
		x0.Sim.ScheduleNode(id, id, deadline, func() {
			s.forwardJoinAttrValues(x0, p0, o, id, &states[id].sensNode)
		})
	}

	var completeA bool
	filters := make([][]zorder.Key, m)
	tA := start + float64(tree.MaxDepth+1)*slotA
	var tEnd float64
	x0.Sim.ScheduleNode(topology.BaseStation, topology.BaseStation, tA, func() {
		x0.span(trace.KindPhaseEnd, topology.BaseStation, -1, PhaseJACollect, 0)
		x0.span(trace.KindPhaseStart, topology.BaseStation, -1, PhaseFilterDissem, 0)
		bs := &states[topology.BaseStation]
		bsKeys := bs.keysIn
		for _, tt := range bs.fullsIn {
			bsKeys = quadtree.UnionKeys(bsKeys, []zorder.Key{p0.keyOf(tt)})
		}
		completeA = bs.coverIn+len(bs.fullsIn) == p0.members

		// One filter per member over the shared key collection, then the
		// union plus per-key membership masks.
		var union []zorder.Key
		for j := range execs {
			filters[j] = computeFilter(plans[j], bsKeys, !o.DisableBandIndex)
			union = quadtree.UnionKeys(union, filters[j])
		}
		masks := maskAlign(union, filters)
		filterBytes := o.Rep.SetBytes(p0, union) + maskBytes(len(union), m)
		x0.Metrics.observeFilter(len(union), filterBytes)

		if len(union) > 0 && bs.activeChildren > 0 {
			fm := s.buildFilterMsg(p0, o, topology.BaseStation, union, bs.childNeedsFull)
			g.sendGroupFilter(x0, p0, o, topology.BaseStation, &bs.sensNode, &groupFilterMsg{fm: fm, masks: masks}, m)
		}

		slotB := x0.Net.SlotFor(filterBytes + 32)
		tB := tA + float64(tree.MaxDepth+1)*slotB
		if x0.Trace.Enabled() || x0.Metrics != nil {
			// Node-affine to the base station: this runs inside an event
			// handler, where a sharded engine needs the executing region.
			x0.Sim.ScheduleNode(topology.BaseStation, topology.BaseStation, tB, func() {
				x0.span(trace.KindPhaseEnd, topology.BaseStation, -1, PhaseFilterDissem, 0)
				x0.span(trace.KindPhaseStart, topology.BaseStation, -1, PhaseFinalCollect, 0)
			})
		}
		for i := 1; i < n; i++ {
			id := topology.NodeID(i)
			if !tree.Reachable(id) {
				continue
			}
			deadline := tB + float64(tree.MaxDepth-tree.Depth[id])*slotC
			x0.Sim.ScheduleNode(topology.BaseStation, id, deadline, func() {
				g.forwardGroupTuples(x0, p0, id, &states[id], m)
			})
		}
		tEnd = tB + float64(tree.MaxDepth+1)*slotC
		x0.Sim.ScheduleNode(topology.BaseStation, topology.BaseStation, tEnd, func() {
			x0.span(trace.KindPhaseEnd, topology.BaseStation, -1, PhaseFinalCollect, 0)
			bsT := &states[topology.BaseStation]
			dedup := 0
			for _, gt := range bsT.gfinals {
				if gt.mask&(gt.mask-1) != 0 {
					dedup++ // shipped once, wanted by >= 2 queries
				}
			}
			x0.Metrics.observeMQODedup(dedup)
			// Fan the shared stream back out: member j's table is the
			// Treecut tuples (which bypass the filter for every member)
			// plus the collected tuples whose bitmap has bit j.
			for j := range execs {
				bit := uint64(1) << uint(j)
				tuples := append([]finalTuple(nil), bsT.fullsIn...)
				for _, gt := range bsT.gfinals {
					if gt.mask&bit != 0 {
						tuples = append(tuples, gt.t)
					}
				}
				rows, contrib := exactJoin(execs[j], tuples)
				// One fan-out span per member, tagged with the member's
				// own trace ID: the only shared-round events attributed
				// to an individual query rather than the group.
				x0.Trace.SpanTagged(tEnd, trace.KindFanout, topology.BaseStation, -1,
					PhaseFinalCollect, len(rows), c.members[j].tag)
				results[c.members[j].idx] = &Result{
					Columns:           columnsOf(execs[j].Query),
					Rows:              rows,
					ContributingNodes: len(contrib),
					MemberNodes:       p0.members,
					Complete:          completeA && finalComplete(plans[j], filters[j], tuples),
					ResponseTime:      tEnd - start,
				}
			}
			s.cont.Rounds++
		})
	})
	x0.Sim.Run()

	for i := range states {
		st := &states[i]
		if st.memProxyBytes > s.Memory.MaxProxyBytes {
			s.Memory.MaxProxyBytes = st.memProxyBytes
		}
		if st.memSubtreeBytes > s.Memory.MaxSubtreeBytes {
			s.Memory.MaxSubtreeBytes = st.memSubtreeBytes
		}
		if st.memFilterBytes > s.Memory.MaxFilterBytes {
			s.Memory.MaxFilterBytes = st.memFilterBytes
		}
		if st.overflow {
			s.Memory.OverflowNodes++
		}
	}

	bsT := &states[topology.BaseStation]
	if x0.Net.Reliable() {
		// One scoped recovery over the union of the members' needs, then
		// a per-member exact finish from the shared (recovered) have-set:
		// extra tuples add no rows, and the node-id sort makes the tables
		// byte-identical to independent reliable runs.
		needs := make([]map[topology.NodeID]bool, m)
		unionNeed := make(map[topology.NodeID]bool)
		for j := range execs {
			needs[j] = contributorSet(execs[j], plans[j])
			for id := range needs[j] {
				unionNeed[id] = true
			}
		}
		have := tupleIndex(bsT.fullsIn)
		for _, gt := range bsT.gfinals {
			if _, ok := have[gt.t.node]; !ok {
				have[gt.t.node] = gt.t
			}
		}
		rounds, _ := runScopedRecovery(x0, p0, unionNeed, have, standDown)
		for j := range execs {
			finishReliable(execs[j], plans[j], results[c.members[j].idx],
				have, missingFrom(needs[j], have), rounds, start)
		}
	} else {
		for j := range execs {
			res := results[c.members[j].idx]
			if res != nil && !res.Complete {
				haveJ := tupleIndex(bsT.fullsIn)
				bit := uint64(1) << uint(j)
				for _, gt := range bsT.gfinals {
					if gt.mask&bit != 0 {
						if _, ok := haveJ[gt.t.node]; !ok {
							haveJ[gt.t.node] = gt.t
						}
					}
				}
				annotateIncomplete(execs[j], missingFrom(contributorSet(execs[j], plans[j]), haveJ), res)
			}
		}
	}
	return nil
}

// onGroupFilter is SENSJoin.onFilter over the merged broadcast: the
// union filter is reconstructed through the shared incremental state,
// and the per-key masks replace the boolean match with a query set.
func (g *QueryGroup) onGroupFilter(x *Exec, p *plan, o Options, s *SENSJoin,
	id topology.NodeID, st *groupNode, from topology.NodeID, gm *groupFilterMsg, m int, fullMask uint64) {
	if st.gotFilter {
		return
	}
	st.gotFilter = true

	filter, ok := s.applyFilterMsg(id, from, gm.fm)
	if ok && len(gm.masks) != len(filter) {
		// The masks always describe the sender's full key set; a length
		// mismatch means the reconstruction diverged — be conservative.
		ok = false
	}
	if !ok {
		if p.nodes[id] != nil {
			st.ownMask = fullMask
		}
		for _, tt := range st.proxied {
			st.proxyG = append(st.proxyG, groupTuple{t: tt, mask: fullMask})
		}
		if st.activeChildren > 0 {
			all := &groupFilterMsg{fm: &filterMsg{mode: fmAssumeAll}}
			g.sendGroupFilter(x, p, o, id, &st.sensNode, all, m)
		}
		return
	}

	masks := gm.masks
	st.memFilterBytes = o.Rep.SetBytes(p, filter) + maskBytes(len(filter), m)
	if nd := p.nodes[id]; nd != nil {
		if i := findKey(filter, nd.key); i >= 0 {
			st.ownMask = masks[i] // present keys always carry a non-zero mask
		} else {
			x.span(trace.KindSuppress, id, id, PhaseFilterDissem, 0)
		}
	}
	for _, tt := range st.proxied {
		if i := findKey(filter, p.keyOf(tt)); i >= 0 {
			st.proxyG = append(st.proxyG, groupTuple{t: tt, mask: masks[i]})
		} else {
			x.span(trace.KindSuppress, id, tt.node, PhaseFilterDissem, 0)
		}
	}
	if st.activeChildren == 0 {
		return
	}
	sub, subMasks := filter, masks
	if !o.DisableSelectiveForwarding && !st.overflow {
		sub = quadtree.IntersectKeys(filter, st.subtreeKeys)
		if pruned := len(filter) - len(sub); pruned > 0 {
			x.span(trace.KindPrune, id, -1, PhaseFilterDissem, pruned)
		}
		subMasks = realignMasks(filter, masks, sub)
	}
	if len(sub) == 0 {
		return
	}
	out := s.buildFilterMsg(p, o, id, sub, st.childNeedsFull)
	g.sendGroupFilter(x, p, o, id, &st.sensNode, &groupFilterMsg{fm: out, masks: subMasks}, m)
}

// sendGroupFilter transmits a merged filter message like sendFilter,
// charging the mask bytes on top of the (possibly delta) key set.
func (g *QueryGroup) sendGroupFilter(x *Exec, p *plan, o Options, id topology.NodeID, st *sensNode, gm *groupFilterMsg, m int) {
	size := filterMsgSize(p, o, gm.fm)
	bitmap := 0
	if gm.fm.mode != fmAssumeAll {
		bitmap = maskBytes(len(gm.masks), m)
		size += bitmap
	}
	x.Metrics.observeMQOBroadcast(bitmap)
	if !x.Net.Reliable() {
		x.Net.Send(netsim.Message{
			Kind: kindFilter, Src: id, Dst: netsim.BroadcastID,
			Phase: PhaseFilterDissem, Size: size, Payload: gm,
		})
		return
	}
	for _, ch := range st.children {
		x.Net.Send(netsim.Message{
			Kind: kindFilter, Src: id, Dst: ch,
			Phase: PhaseFilterDissem, Size: size, Payload: gm,
		})
	}
}

// forwardGroupTuples is the phase-C step: a tuple wanted by k >= 1
// member queries ships once with its membership bitmap.
func (g *QueryGroup) forwardGroupTuples(x *Exec, p *plan, id topology.NodeID, st *groupNode, m int) {
	if st.cut {
		return
	}
	tuples := st.gfinals
	tuples = append(tuples, st.proxyG...)
	if st.ownMask != 0 {
		tuples = append(tuples, groupTuple{t: p.tuple(id), mask: st.ownMask})
	}
	if len(tuples) == 0 {
		return
	}
	size := 0
	for _, gt := range tuples {
		size += gt.t.bytes
	}
	bitmap := len(tuples) * perTupleMaskBytes(m)
	size += bitmap
	x.Metrics.observeMQOBitmap(bitmap)
	x.Net.Send(netsim.Message{
		Kind: kindFinal, Src: id, Dst: x.Tree.Parent[id],
		Phase: PhaseFinalCollect, Size: size, Payload: tuples,
	})
}

// AuditRound executes one shared epoch under the journal and audits
// every cluster's segment with the standard passes. Filter soundness is
// necessarily per cluster: the union filter only suppresses a key no
// MEMBER of that cluster wants, so suppress decisions are checked
// against the union of the cluster's own ground-truth contributors — a
// node another cluster's query needs may be legitimately suppressed
// here.
func (g *QueryGroup) AuditRound(r *Runner, t float64) ([]*Result, []trace.Violation, error) {
	if len(g.queries) == 0 {
		return nil, nil, fmt.Errorf("core: empty query group")
	}
	rec := r.EnableTrace()
	outerMark := rec.Mark()
	if r.Metrics != nil {
		r.Metrics.MQOGroups.Set(int64(len(g.clusters)))
	}
	results := make([]*Result, len(g.queries))
	var violations []trace.Violation
	for _, c := range g.clusters {
		mark := rec.Mark()
		before := r.Stats.Snapshot()
		if err := g.runCluster(r, c, t, results); err != nil {
			return nil, nil, err
		}
		after := r.Stats.Snapshot()
		j := rec.JournalSince(mark)
		violations = append(violations, trace.Conservation(j)...)
		violations = append(violations, trace.Reconcile(j, before, after)...)
		violations = append(violations, trace.SlotOrder(j, r.Tree, []string{PhaseJACollect, PhaseFinalCollect})...)
		violations = append(violations, trace.Reliability(j)...)
		if r.allAlive() {
			contrib := make(map[topology.NodeID]bool)
			for _, gq := range c.members {
				x, err := r.Exec(gq.q, t)
				if err != nil {
					return nil, nil, err
				}
				qc, err := groundTruthContributors(x)
				if err != nil {
					return nil, nil, err
				}
				for id := range qc {
					contrib[id] = true
				}
			}
			violations = append(violations, trace.FilterSoundness(j, contrib)...)
		}
	}
	g.rounds++
	if r.AutoAudit {
		rec.Truncate(outerMark)
	}
	return results, violations, nil
}
