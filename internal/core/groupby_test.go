package core

import (
	"math"
	"testing"
)

// Grouped, ordered and limited queries must return identical rows from
// SENS-Join, the external join and the oracle — including row ORDER,
// which the tie-broken sort makes deterministic across methods.
func TestGroupByAcrossMethods(t *testing.T) {
	r := testRunner(t, 150, 901)
	queries := []string{
		// Histogram: how many partner pairs per 1-degree bucket of the
		// hotter side's temperature.
		`SELECT A.temp - abs(A.temp - A.temp), COUNT(B.temp)
			FROM Sensors A, Sensors B
			WHERE A.temp - B.temp > 4
			GROUP BY A.temp - abs(A.temp - A.temp) ONCE`,
		// Average contrast per bucket, ordered by bucket.
		`SELECT A.temp, AVG(A.temp - B.temp), MAX(A.temp - B.temp)
			FROM Sensors A, Sensors B
			WHERE A.temp - B.temp > 4
			GROUP BY A.temp ORDER BY 1 ONCE`,
		// Top-5 hottest contrasts.
		`SELECT A.temp, B.temp FROM Sensors A, Sensors B
			WHERE A.temp - B.temp > 4 ORDER BY 1 DESC, 2 LIMIT 5 ONCE`,
	}
	for _, src := range queries {
		x, err := r.ExecSQL(src, 0)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		truth, err := GroundTruth(x)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range []Method{External{}, NewSENSJoin()} {
			res, err := r.Run(src, m, 0)
			if err != nil {
				t.Fatalf("%s: %v", m.Name(), err)
			}
			if len(res.Rows) != len(truth.Rows) {
				t.Fatalf("%s: %d rows, oracle %d (%q)", m.Name(), len(res.Rows), len(truth.Rows), src)
			}
			// Ordered queries must match row for row, in order.
			for i := range res.Rows {
				for j := range res.Rows[i] {
					if math.Abs(res.Rows[i][j]-truth.Rows[i][j]) > 1e-9 {
						t.Fatalf("%s row %d col %d: %g vs oracle %g",
							m.Name(), i, j, res.Rows[i][j], truth.Rows[i][j])
					}
				}
			}
		}
	}
}

func TestGroupByAggregation(t *testing.T) {
	r := testRunner(t, 100, 903)
	src := `SELECT A.temp, COUNT(B.temp), AVG(B.temp)
		FROM Sensors A, Sensors B
		WHERE A.temp - B.temp > 5
		GROUP BY A.temp ORDER BY 1 ONCE`
	x, err := r.ExecSQL(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := GroundTruth(x)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Skip("no groups at this threshold")
	}
	prev := math.Inf(-1)
	for _, row := range res.Rows {
		if row[0] < prev {
			t.Fatal("groups not ordered by the first column")
		}
		prev = row[0]
		if row[1] < 1 {
			t.Fatalf("group with zero count: %v", row)
		}
		// AVG(B.temp) of a group must satisfy A.temp - avg > 5? No: avg
		// of values each 5 below A.temp is itself 5 below.
		if row[0]-row[2] <= 5 {
			t.Fatalf("group avg violates the join condition: %v", row)
		}
	}
}

func TestLimitCountsRows(t *testing.T) {
	r := testRunner(t, 100, 907)
	src := `SELECT A.temp, B.temp FROM Sensors A, Sensors B
		WHERE A.temp - B.temp > 3 ORDER BY 1 LIMIT 7 ONCE`
	res, err := r.Run(src, NewSENSJoin(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) > 7 {
		t.Fatalf("LIMIT 7 returned %d rows", len(res.Rows))
	}
}

func TestGroupBySQLValidation(t *testing.T) {
	r := testRunner(t, 30, 909)
	// Non-aggregate item missing from GROUP BY must be rejected.
	src := `SELECT A.hum, COUNT(B.temp) FROM Sensors A, Sensors B
		WHERE A.temp - B.temp > 3 GROUP BY A.temp ONCE`
	if _, err := r.ExecSQL(src, 0); err == nil {
		t.Fatal("ungrouped non-aggregate item must be rejected")
	}
	// LIMIT without ORDER BY must be rejected at parse time.
	if _, err := r.ExecSQL(`SELECT A.temp FROM Sensors A LIMIT 3 ONCE`, 0); err == nil {
		t.Fatal("LIMIT without ORDER BY must be rejected")
	}
}

func TestGroupByAttrsAreShipped(t *testing.T) {
	// A grouping attribute outside SELECT/WHERE must still ship.
	r := testRunner(t, 60, 911)
	src := `SELECT COUNT(A.temp) FROM Sensors A, Sensors B
		WHERE A.temp - B.temp > 4 GROUP BY A.light ONCE`
	x, err := r.ExecSQL(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range x.Analysis.ShippedAttrs[0] {
		if a == "light" {
			found = true
		}
	}
	if !found {
		t.Fatalf("grouping attribute not shipped: %v", x.Analysis.ShippedAttrs[0])
	}
	truth, err := GroundTruth(x)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(src, NewSENSJoin(), 0)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, truth.Rows, res.Rows, "truth", "grouped-sens")
}
