package core

import (
	"sort"

	"sensjoin/internal/topology"
	"sensjoin/internal/trace"
)

// EnableTrace attaches a journal recorder to the runner (idempotent):
// radio events flow in through the network tracer and protocol spans
// through Exec.Trace. Returns the recorder for export/audit calls.
// Tracing composes with the sharded engine: the recorder goes
// concurrent (region workers emit spans in parallel) and the network
// buffers radio events per region, flushed at drain; the canonical
// journal order makes the result byte-identical to a classic run.
func (r *Runner) EnableTrace() *trace.Recorder {
	if r.Trace == nil {
		r.Trace = trace.New()
		r.Trace.SetConcurrent(r.Sim.Sharded())
		r.Net.SetTracer(r.Trace.Radio())
	}
	return r.Trace
}

// DisableTrace detaches the runner's recorder and tracer entirely, so a
// pooled runner stops paying journal cost once a sampled query is done.
func (r *Runner) DisableTrace() {
	r.Trace = nil
	r.Net.SetTracer(nil)
}

// AuditRun executes a query like Run and then audits the execution's
// journal segment: conservation (every delivery matches a transmission),
// reconciliation (journal totals equal the stats collector's, bit-exact),
// slot-schedule ordering (no parent transmits before its children in the
// collection phases), and — for filter-based methods on loss-free runs —
// filter soundness (no suppressed tuple contributes to the ground truth).
// Tracing is enabled on demand. With AutoAudit set, the audited journal
// segment is truncated afterwards so long soaks stay bounded.
func (r *Runner) AuditRun(src string, m Method, t float64) (*Result, []trace.Violation, error) {
	rec := r.EnableTrace()
	mark := rec.Mark()
	before := r.Stats.Snapshot()

	x, err := r.ExecSQL(src, t)
	if err != nil {
		return nil, nil, err
	}
	// The churn-safety oracle must be computed before the run: churn may
	// kill members mid-round, and GroundTruth reflects aliveness at call
	// time — the contract is "exact w.r.t. the snapshot the round
	// started from". The tree is captured pre-run for the same reason:
	// mid-round repair swaps r.Tree, but the slot-scheduled phases ran
	// on the tree the round started with (recovery traffic is not
	// slot-audited).
	var truth *Result
	tree := r.Tree
	if r.churn != nil {
		if truth, err = GroundTruth(x); err != nil {
			return nil, nil, err
		}
	}
	res, err := m.Run(x)
	if err != nil {
		return nil, nil, err
	}

	after := r.Stats.Snapshot()
	j := rec.JournalSince(mark)

	var violations []trace.Violation
	violations = append(violations, trace.Conservation(j)...)
	violations = append(violations, trace.Reconcile(j, before, after)...)
	violations = append(violations, trace.SlotOrder(j, tree, auditPhases(m))...)
	violations = append(violations, trace.Reliability(j)...)
	if r.churn != nil {
		violations = append(violations, trace.ChurnSafety(j, trace.ChurnVerdict{
			Complete:        res.Complete,
			OracleExact:     sameRowSet(truth.Rows, res.Rows),
			Reason:          res.IncompleteReason,
			MissingSubtrees: len(res.MissingSubtrees),
			Repairs:         res.Repairs,
		})...)
	}
	// Filter soundness needs the ground truth to be reachable: a dead
	// member transmits nothing (silently — no drop/lost events), so the
	// filter legitimately misses its keys and suppressing its join
	// partners is correct. Audit only when every node is alive; lossy
	// runs stand down inside FilterSoundness itself.
	if filterPhased(m) && r.allAlive() {
		contrib, err := groundTruthContributors(x)
		if err != nil {
			return nil, nil, err
		}
		violations = append(violations, trace.FilterSoundness(j, contrib)...)
	}
	if r.AutoAudit {
		rec.Truncate(mark)
	}
	return res, violations, nil
}

// sameRowSet compares two results order-insensitively (ORDER BY-less
// queries return rows in collection order, which recovery can permute).
func sameRowSet(a, b []Row) bool {
	if len(a) != len(b) {
		return false
	}
	ca, cb := canonRowOrder(a), canonRowOrder(b)
	for i := range ca {
		ra, rb := ca[i], cb[i]
		if len(ra) != len(rb) {
			return false
		}
		for c := range ra {
			if ra[c] != rb[c] {
				return false
			}
		}
	}
	return true
}

func canonRowOrder(rows []Row) []Row {
	out := append([]Row(nil), rows...)
	sort.Slice(out, func(i, k int) bool {
		a, b := out[i], out[k]
		for c := 0; c < len(a) && c < len(b); c++ {
			if a[c] != b[c] {
				return a[c] < b[c]
			}
		}
		return len(a) < len(b)
	})
	return out
}

// allAlive reports whether every node in the deployment is live.
func (r *Runner) allAlive() bool {
	for i := 0; i < r.Net.N(); i++ {
		if !r.Net.Alive(topology.NodeID(i)) {
			return false
		}
	}
	return true
}

// auditPhases selects the method's phases that follow the leaves-first
// TAG slot schedule; dissemination phases flood downstream and are not
// slot-ordered.
func auditPhases(m Method) []string {
	var out []string
	for _, p := range m.Phases() {
		switch p {
		case PhaseJACollect, PhaseFinalCollect, PhaseExternal:
			out = append(out, p)
		}
	}
	return out
}

// filterPhased reports whether the method disseminates a join filter
// (and so emits suppress/prune decisions worth auditing).
func filterPhased(m Method) bool {
	for _, p := range m.Phases() {
		if p == PhaseFilterDissem {
			return true
		}
	}
	return false
}

// groundTruthContributors computes, network-free, the set of nodes whose
// tuple appears in the exact query result — the oracle the filter
// soundness audit checks suppress decisions against.
func groundTruthContributors(x *Exec) (map[topology.NodeID]bool, error) {
	p, err := buildPlan(x)
	if err != nil {
		return nil, err
	}
	var tuples []finalTuple
	for id := 1; id < x.Dep.N(); id++ {
		if p.nodes[id] != nil {
			tuples = append(tuples, p.tuple(topology.NodeID(id)))
		}
	}
	_, contrib := exactJoin(x, tuples)
	return contrib, nil
}
