package core

import (
	"sensjoin/internal/topology"
	"sensjoin/internal/trace"
)

// EnableTrace attaches a journal recorder to the runner (idempotent):
// radio events flow in through the network tracer and protocol spans
// through Exec.Trace. Returns the recorder for export/audit calls.
func (r *Runner) EnableTrace() *trace.Recorder {
	if r.Trace == nil {
		r.disableSharding()
		r.Trace = trace.New()
		r.Net.SetTracer(r.Trace.Radio())
	}
	return r.Trace
}

// AuditRun executes a query like Run and then audits the execution's
// journal segment: conservation (every delivery matches a transmission),
// reconciliation (journal totals equal the stats collector's, bit-exact),
// slot-schedule ordering (no parent transmits before its children in the
// collection phases), and — for filter-based methods on loss-free runs —
// filter soundness (no suppressed tuple contributes to the ground truth).
// Tracing is enabled on demand. With AutoAudit set, the audited journal
// segment is truncated afterwards so long soaks stay bounded.
func (r *Runner) AuditRun(src string, m Method, t float64) (*Result, []trace.Violation, error) {
	rec := r.EnableTrace()
	mark := rec.Mark()
	before := r.Stats.Snapshot()

	x, err := r.ExecSQL(src, t)
	if err != nil {
		return nil, nil, err
	}
	res, err := m.Run(x)
	if err != nil {
		return nil, nil, err
	}

	after := r.Stats.Snapshot()
	j := rec.JournalSince(mark)

	var violations []trace.Violation
	violations = append(violations, trace.Conservation(j)...)
	violations = append(violations, trace.Reconcile(j, before, after)...)
	violations = append(violations, trace.SlotOrder(j, r.Tree, auditPhases(m))...)
	violations = append(violations, trace.Reliability(j)...)
	// Filter soundness needs the ground truth to be reachable: a dead
	// member transmits nothing (silently — no drop/lost events), so the
	// filter legitimately misses its keys and suppressing its join
	// partners is correct. Audit only when every node is alive; lossy
	// runs stand down inside FilterSoundness itself.
	if filterPhased(m) && r.allAlive() {
		contrib, err := groundTruthContributors(x)
		if err != nil {
			return nil, nil, err
		}
		violations = append(violations, trace.FilterSoundness(j, contrib)...)
	}
	if r.AutoAudit {
		rec.Truncate(mark)
	}
	return res, violations, nil
}

// allAlive reports whether every node in the deployment is live.
func (r *Runner) allAlive() bool {
	for i := 0; i < r.Net.N(); i++ {
		if !r.Net.Alive(topology.NodeID(i)) {
			return false
		}
	}
	return true
}

// auditPhases selects the method's phases that follow the leaves-first
// TAG slot schedule; dissemination phases flood downstream and are not
// slot-ordered.
func auditPhases(m Method) []string {
	var out []string
	for _, p := range m.Phases() {
		switch p {
		case PhaseJACollect, PhaseFinalCollect, PhaseExternal:
			out = append(out, p)
		}
	}
	return out
}

// filterPhased reports whether the method disseminates a join filter
// (and so emits suppress/prune decisions worth auditing).
func filterPhased(m Method) bool {
	for _, p := range m.Phases() {
		if p == PhaseFilterDissem {
			return true
		}
	}
	return false
}

// groundTruthContributors computes, network-free, the set of nodes whose
// tuple appears in the exact query result — the oracle the filter
// soundness audit checks suppress decisions against.
func groundTruthContributors(x *Exec) (map[topology.NodeID]bool, error) {
	p, err := buildPlan(x)
	if err != nil {
		return nil, err
	}
	var tuples []finalTuple
	for id := 1; id < x.Dep.N(); id++ {
		if p.nodes[id] != nil {
			tuples = append(tuples, p.tuple(topology.NodeID(id)))
		}
	}
	_, contrib := exactJoin(x, tuples)
	return contrib, nil
}
