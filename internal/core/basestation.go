package core

import (
	"sort"
	"strconv"
	"strings"

	"sensjoin/internal/quadtree"
	"sensjoin/internal/query"
	"sensjoin/internal/topology"
	"sensjoin/internal/zorder"
)

// computeFilter implements the base station's pre-computation join
// (paper §IV-A step 1a): it joins the collected join-attribute keys over
// cell intervals with tri-state logic and returns the keys that possibly
// participate in the result — the join filter. Quantization makes this a
// superset of the true participant set (false positives only, §V-B
// footnote 2).
func computeFilter(p *plan, keys []zorder.Key, useIndex bool) []zorder.Key {
	x := p.x
	n := len(x.Query.From)
	conds := x.Analysis.JoinConds
	// Band-join fast path: a difference or band condition between two
	// relations indexes the partner search (see bandjoin.go). The result
	// is identical to the generic enumeration.
	if useIndex && n == 2 {
		for _, cond := range conds {
			if bc, ok := detectBandCond(p, cond); ok {
				return computeFilterBand(p, keys, bc)
			}
		}
	}
	if len(conds) == 0 {
		// Cross join: every key participates (if every alias has keys).
		for i := 0; i < n; i++ {
			if len(keysOfAlias(p, keys, i)) == 0 {
				return nil
			}
		}
		return append([]zorder.Key(nil), keys...)
	}
	// Constant predicates: if any is definitely false, nothing joins.
	for _, c := range x.Analysis.ConstPreds {
		if !c.Truth(emptyBounds{}).Possible() {
			return nil
		}
	}

	byAlias := make([][]zorder.Key, n)
	for i := 0; i < n; i++ {
		byAlias[i] = keysOfAlias(p, keys, i)
		if len(byAlias[i]) == 0 {
			return nil
		}
	}

	marked := make(map[zorder.Key]bool, len(keys))
	assignment := make([]zorder.Key, n)

	// Backtracking n-way join over keys with early pruning: a condition
	// is checked as soon as all aliases it references are bound.
	condRels := make([][]int, len(conds))
	for ci, c := range conds {
		seen := map[int]bool{}
		c.VisitNums(func(e query.NumExpr) {
			if at, ok := e.(query.Attr); ok {
				seen[at.Ref.Rel] = true
			}
		})
		for r := range seen {
			condRels[ci] = append(condRels[ci], r)
		}
		sort.Ints(condRels[ci])
	}
	checkAt := func(level int) []int {
		var out []int
		for ci, rels := range condRels {
			max := 0
			for _, r := range rels {
				if r > max {
					max = r
				}
			}
			if max == level {
				out = append(out, ci)
			}
		}
		return out
	}
	checksPerLevel := make([][]int, n)
	for l := 0; l < n; l++ {
		checksPerLevel[l] = checkAt(l)
	}

	benv := query.CellEnv{Lookup: func(rel int, name string) query.Interval {
		return p.cellOf(assignment[rel], name)
	}}

	var recurse func(level int)
	recurse = func(level int) {
		if level == n {
			for _, k := range assignment {
				marked[k] = true
			}
			return
		}
		for _, k := range byAlias[level] {
			assignment[level] = k
			ok := true
			for _, ci := range checksPerLevel[level] {
				if !conds[ci].Truth(benv).Possible() {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			// Skip fully-marked assignments at the last level: marking
			// again adds nothing (the dominant saving for selective
			// queries).
			if level == n-1 {
				all := marked[k]
				if all {
					for _, kk := range assignment[:level] {
						if !marked[kk] {
							all = false
							break
						}
					}
				}
				if all {
					continue
				}
			}
			recurse(level + 1)
		}
	}
	recurse(0)

	out := make([]zorder.Key, 0, len(marked))
	for k := range marked {
		out = append(out, k)
	}
	return quadtree.NormalizeKeys(out)
}

// keysOfAlias filters keys whose flags include alias i.
func keysOfAlias(p *plan, keys []zorder.Key, i int) []zorder.Key {
	n := len(p.x.Query.From)
	flag := zorder.FlagFor(i, n)
	var out []zorder.Key
	for _, k := range keys {
		if p.grid.Flags(k)&flag != 0 {
			out = append(out, k)
		}
	}
	return out
}

// cellOf returns the value interval of a key's cell in dimension name.
func (p *plan) cellOf(k zorder.Key, name string) query.Interval {
	di, ok := p.dimIndex[name]
	if !ok {
		// A join condition referencing a non-join attribute cannot
		// happen (Analyze defines join attrs from join conditions), but
		// stay sound.
		return query.Everything()
	}
	_, lo, hi := p.grid.CellBounds(k)
	return query.Interval{Lo: lo[di], Hi: hi[di]}
}

// emptyBounds evaluates constant predicates (no attribute references).
type emptyBounds struct{}

// Range implements query.BoundsEnv.
func (emptyBounds) Range(query.AttrRef) query.Interval { return query.Everything() }

// exactJoin computes the final result (paper §IV-D): an exact n-way
// nested-loop join over the complete tuples at the base station, with
// early condition evaluation, followed by SELECT evaluation and optional
// aggregation. It returns the rows and the set of contributing nodes.
func exactJoin(x *Exec, tuples []finalTuple) ([]Row, map[topology.NodeID]bool) {
	n := len(x.Query.From)
	conds := x.Analysis.JoinConds
	for _, c := range x.Analysis.ConstPreds {
		if !c.Eval(query.TupleEnv{Lookup: func(int, string) float64 { return 0 }}) {
			return nil, nil
		}
	}
	byAlias := make([][]finalTuple, n)
	for i := 0; i < n; i++ {
		flag := zorder.FlagFor(i, n)
		for _, t := range tuples {
			if t.flags&flag != 0 {
				byAlias[i] = append(byAlias[i], t)
			}
		}
		if len(byAlias[i]) == 0 {
			return nil, nil
		}
	}

	assignment := make([]finalTuple, n)
	env := query.TupleEnv{Lookup: func(rel int, name string) float64 {
		return assignment[rel].vals[name]
	}}

	condsAtLevel := make([][]query.BoolExpr, n)
	for _, c := range conds {
		max := 0
		c.VisitNums(func(e query.NumExpr) {
			if at, ok := e.(query.Attr); ok && at.Ref.Rel > max {
				max = at.Ref.Rel
			}
		})
		condsAtLevel[max] = append(condsAtLevel[max], c)
	}

	var rows []Row
	contrib := make(map[topology.NodeID]bool)
	agg := newAggState(x.Query.Select)
	aggregated := hasAggregates(x.Query.Select)
	grouped := len(x.Query.GroupBy) > 0
	groups := make(map[string]*aggState)
	var groupKeys []string

	var recurse func(level int)
	recurse = func(level int) {
		if level == n {
			row := make(Row, len(x.Query.Select))
			for i, it := range x.Query.Select {
				row[i] = it.Expr.Eval(env)
			}
			for _, t := range assignment {
				contrib[t.node] = true
			}
			switch {
			case grouped:
				key := groupKeyOf(x.Query.GroupBy, env)
				g := groups[key]
				if g == nil {
					g = newAggState(x.Query.Select)
					groups[key] = g
					groupKeys = append(groupKeys, key)
				}
				g.add(row)
			case aggregated:
				agg.add(row)
			default:
				rows = append(rows, row)
			}
			return
		}
		for _, t := range byAlias[level] {
			assignment[level] = t
			ok := true
			for _, c := range condsAtLevel[level] {
				if !c.Eval(env) {
					ok = false
					break
				}
			}
			if ok {
				recurse(level + 1)
			}
		}
	}
	recurse(0)

	switch {
	case grouped:
		// Deterministic group order: sorted by group key; an ORDER BY
		// re-sorts below.
		sort.Strings(groupKeys)
		for _, key := range groupKeys {
			rows = append(rows, groups[key].rows()...)
		}
	case aggregated:
		rows = agg.rows()
	}
	return applyOrderLimit(x.Query, rows), contrib
}

// groupKeyOf renders the grouping expressions' exact values as a string
// key (round-trip float formatting keeps distinct values distinct).
func groupKeyOf(exprs []query.NumExpr, env query.Env) string {
	var b strings.Builder
	for _, e := range exprs {
		b.WriteString(strconv.FormatFloat(e.Eval(env), 'g', -1, 64))
		b.WriteByte('|')
	}
	return b.String()
}

// applyOrderLimit sorts by the ORDER BY keys (full-row lexicographic
// tie-break keeps the order identical across join methods) and applies
// LIMIT.
func applyOrderLimit(q *query.Query, rows []Row) []Row {
	if len(q.OrderBy) > 0 {
		sort.SliceStable(rows, func(i, j int) bool {
			a, b := rows[i], rows[j]
			for _, k := range q.OrderBy {
				av, bv := a[k.Col-1], b[k.Col-1]
				if av != bv {
					if k.Desc {
						return av > bv
					}
					return av < bv
				}
			}
			for c := range a { // tie-break: full row, ascending
				if a[c] != b[c] {
					return a[c] < b[c]
				}
			}
			return false
		})
	}
	if q.Limit > 0 && len(rows) > q.Limit {
		rows = rows[:q.Limit]
	}
	return rows
}

// GroundTruth computes the query result directly from the snapshot,
// bypassing the network entirely. It is the oracle for correctness tests
// and for calibrating workload selectivity.
func GroundTruth(x *Exec) (*Result, error) {
	p, err := buildPlan(x)
	if err != nil {
		return nil, err
	}
	var tuples []finalTuple
	for id := 1; id < x.Dep.N(); id++ {
		if p.nodes[id] != nil {
			tuples = append(tuples, p.tuple(topology.NodeID(id)))
		}
	}
	rows, contrib := exactJoin(x, tuples)
	return &Result{
		Columns:           columnsOf(x.Query),
		Rows:              rows,
		ContributingNodes: len(contrib),
		MemberNodes:       p.members,
		Complete:          true,
	}, nil
}
