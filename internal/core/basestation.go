package core

import (
	"sort"
	"strconv"
	"strings"

	"sensjoin/internal/query"
	"sensjoin/internal/topology"
	"sensjoin/internal/zorder"
)

// computeFilter implements the base station's pre-computation join
// (paper §IV-A step 1a): it joins the collected join-attribute keys over
// cell intervals with tri-state logic and returns the keys that possibly
// participate in the result — the join filter. Quantization makes this a
// superset of the true participant set (false positives only, §V-B
// footnote 2).
func computeFilter(p *plan, keys []zorder.Key, useIndex bool) []zorder.Key {
	x := p.x
	n := len(x.Query.From)
	conds := x.Analysis.JoinConds
	// Band-join fast path: a difference or band condition between two
	// relations indexes the partner search (see bandjoin.go). The result
	// is identical to the generic enumeration.
	if useIndex && n == 2 {
		for _, cond := range conds {
			if bc, ok := detectBandCond(p, cond); ok {
				return computeFilterBand(p, keys, bc)
			}
		}
	}
	if len(conds) == 0 {
		// Cross join: every key participates (if every alias has keys).
		for i := 0; i < n; i++ {
			if len(keysOfAlias(p, keys, i)) == 0 {
				return nil
			}
		}
		return append([]zorder.Key(nil), keys...)
	}
	// Constant predicates: if any is definitely false, nothing joins.
	for _, c := range x.Analysis.ConstPreds {
		if !c.Truth(emptyBounds{}).Possible() {
			return nil
		}
	}

	// Index-based evaluation over the sorted unique key universe: alias
	// partitions, marking and cell bounds all live in pooled scratch
	// buffers (see filterscratch.go). Marking is idempotent, so working
	// on the deduplicated universe yields the same filter as the seed's
	// map-based enumeration over the raw key stream.
	s := getFilterScratch()
	defer putFilterScratch(s)
	uniq := s.setUniq(keys)
	if !s.fillAliases(p, uniq, n) {
		return nil
	}
	s.fillBounds(p, uniq)
	marked := s.markedBuf(len(uniq))
	assign := s.assignBuf(n)
	benv := s.boundsEnv(p, assign)

	// Backtracking n-way join over keys with early pruning: a condition
	// is checked as soon as all aliases it references are bound.
	checks := s.fillChecks(conds, n)

	var recurse func(level int)
	recurse = func(level int) {
		if level == n {
			for _, idx := range assign {
				marked[idx] = true
			}
			return
		}
		for _, idx := range s.aliasIdx[level] {
			assign[level] = idx
			ok := true
			for _, ci := range checks[level] {
				if !conds[ci].Truth(benv).Possible() {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			// Skip fully-marked assignments at the last level: marking
			// again adds nothing (the dominant saving for selective
			// queries).
			if level == n-1 {
				all := marked[idx]
				if all {
					for _, prev := range assign[:level] {
						if !marked[prev] {
							all = false
							break
						}
					}
				}
				if all {
					continue
				}
			}
			recurse(level + 1)
		}
	}
	recurse(0)

	return collectMarked(uniq, marked)
}

// keysOfAlias filters keys whose flags include alias i.
func keysOfAlias(p *plan, keys []zorder.Key, i int) []zorder.Key {
	n := len(p.x.Query.From)
	flag := zorder.FlagFor(i, n)
	var out []zorder.Key
	for _, k := range keys {
		if p.grid.Flags(k)&flag != 0 {
			out = append(out, k)
		}
	}
	return out
}

// cellOf returns the value interval of a key's cell in dimension name.
func (p *plan) cellOf(k zorder.Key, name string) query.Interval {
	di, ok := p.dimIndex[name]
	if !ok {
		// A join condition referencing a non-join attribute cannot
		// happen (Analyze defines join attrs from join conditions), but
		// stay sound.
		return query.Everything()
	}
	_, lo, hi := p.grid.CellBounds(k)
	return query.Interval{Lo: lo[di], Hi: hi[di]}
}

// emptyBounds evaluates constant predicates (no attribute references).
type emptyBounds struct{}

// Range implements query.BoundsEnv.
func (emptyBounds) Range(query.AttrRef) query.Interval { return query.Everything() }

// exactJoin computes the final result (paper §IV-D): an exact n-way
// join over the complete tuples at the base station, followed by SELECT
// evaluation and optional aggregation. It returns the rows and the set
// of contributing nodes. Candidate enumeration runs on the
// predicate-indexed kernel (joinkernel.go); output is identical to the
// seed's nested loop, row for row and byte for byte.
func exactJoin(x *Exec, tuples []finalTuple) ([]Row, map[topology.NodeID]bool) {
	n := len(x.Query.From)
	for _, c := range x.Analysis.ConstPreds {
		if !c.Eval(query.TupleEnv{Lookup: func(int, string) float64 { return 0 }}) {
			return nil, nil
		}
	}
	byAlias := make([][]finalTuple, n)
	for i := 0; i < n; i++ {
		flag := zorder.FlagFor(i, n)
		for _, t := range tuples {
			if t.flags&flag != 0 {
				byAlias[i] = append(byAlias[i], t)
			}
		}
		if len(byAlias[i]) == 0 {
			return nil, nil
		}
	}
	return joinKernel(x, byAlias)
}

// groupKeyOf renders the grouping expressions' exact values as a string
// key (round-trip float formatting keeps distinct values distinct).
func groupKeyOf(exprs []query.NumExpr, env query.Env) string {
	var b strings.Builder
	for _, e := range exprs {
		b.WriteString(strconv.FormatFloat(e.Eval(env), 'g', -1, 64))
		b.WriteByte('|')
	}
	return b.String()
}

// groupKeyOfCompiled is groupKeyOf over compiled expressions.
func groupKeyOfCompiled(exprs []query.CompiledNum, vals []float64) string {
	var b strings.Builder
	for _, f := range exprs {
		b.WriteString(strconv.FormatFloat(f(vals), 'g', -1, 64))
		b.WriteByte('|')
	}
	return b.String()
}

// applyOrderLimit sorts by the ORDER BY keys (full-row lexicographic
// tie-break keeps the order identical across join methods) and applies
// LIMIT.
func applyOrderLimit(q *query.Query, rows []Row) []Row {
	if len(q.OrderBy) > 0 {
		sort.SliceStable(rows, func(i, j int) bool {
			a, b := rows[i], rows[j]
			for _, k := range q.OrderBy {
				av, bv := a[k.Col-1], b[k.Col-1]
				if av != bv {
					if k.Desc {
						return av > bv
					}
					return av < bv
				}
			}
			for c := range a { // tie-break: full row, ascending
				if a[c] != b[c] {
					return a[c] < b[c]
				}
			}
			return false
		})
	}
	if q.Limit > 0 && len(rows) > q.Limit {
		rows = rows[:q.Limit]
	}
	return rows
}

// GroundTruth computes the query result directly from the snapshot,
// bypassing the network entirely. It is the oracle for correctness tests
// and for calibrating workload selectivity.
func GroundTruth(x *Exec) (*Result, error) {
	p, err := buildPlan(x)
	if err != nil {
		return nil, err
	}
	var tuples []finalTuple
	for id := 1; id < x.Dep.N(); id++ {
		if p.nodes[id] != nil {
			tuples = append(tuples, p.tuple(topology.NodeID(id)))
		}
	}
	rows, contrib := exactJoin(x, tuples)
	return &Result{
		Columns:           columnsOf(x.Query),
		Rows:              rows,
		ContributingNodes: len(contrib),
		MemberNodes:       p.members,
		Complete:          true,
	}, nil
}

// maskAlign computes the per-key membership masks of a shared-execution
// union filter: bit j of masks[i] is set iff union[i] is in filters[j]
// (member j's own filter). All inputs are sorted; one merge walk per
// member.
func maskAlign(union []zorder.Key, filters [][]zorder.Key) []uint64 {
	masks := make([]uint64, len(union))
	for j, f := range filters {
		bit := uint64(1) << uint(j)
		fi := 0
		for i, k := range union {
			for fi < len(f) && f[fi] < k {
				fi++
			}
			if fi < len(f) && f[fi] == k {
				masks[i] |= bit
			}
		}
	}
	return masks
}
