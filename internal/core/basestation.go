package core

import (
	"sort"
	"strconv"
	"strings"

	"sensjoin/internal/query"
	"sensjoin/internal/topology"
	"sensjoin/internal/zorder"
)

// computeFilter implements the base station's pre-computation join
// (paper §IV-A step 1a): it joins the collected join-attribute keys over
// cell intervals with tri-state logic and returns the keys that possibly
// participate in the result — the join filter. Quantization makes this a
// superset of the true participant set (false positives only, §V-B
// footnote 2).
func computeFilter(p *plan, keys []zorder.Key, useIndex bool) []zorder.Key {
	x := p.x
	n := len(x.Query.From)
	conds := x.Analysis.JoinConds
	// Band-join fast path: a difference or band condition between two
	// relations indexes the partner search (see bandjoin.go). The result
	// is identical to the generic enumeration.
	if useIndex && n == 2 {
		for _, cond := range conds {
			if bc, ok := detectBandCond(p, cond); ok {
				return computeFilterBand(p, keys, bc)
			}
		}
	}
	if len(conds) == 0 {
		// Cross join: every key participates (if every alias has keys).
		for i := 0; i < n; i++ {
			if len(keysOfAlias(p, keys, i)) == 0 {
				return nil
			}
		}
		return append([]zorder.Key(nil), keys...)
	}
	// Constant predicates: if any is definitely false, nothing joins.
	for _, c := range x.Analysis.ConstPreds {
		if !c.Truth(emptyBounds{}).Possible() {
			return nil
		}
	}

	// Index-based evaluation over the sorted unique key universe: alias
	// partitions, marking and cell bounds all live in pooled scratch
	// buffers (see filterscratch.go). Marking is idempotent, so working
	// on the deduplicated universe yields the same filter as the seed's
	// map-based enumeration over the raw key stream.
	s := getFilterScratch()
	defer putFilterScratch(s)
	uniq := s.setUniq(keys)
	if !s.fillAliases(p, uniq, n) {
		return nil
	}
	s.fillBounds(p, uniq)
	marked := s.markedBuf(len(uniq))
	assign := s.assignBuf(n)
	benv := s.boundsEnv(p, assign)

	// Backtracking n-way join over keys with early pruning: a condition
	// is checked as soon as all aliases it references are bound.
	checks := s.fillChecks(conds, n)

	var recurse func(level int)
	recurse = func(level int) {
		if level == n {
			for _, idx := range assign {
				marked[idx] = true
			}
			return
		}
		for _, idx := range s.aliasIdx[level] {
			assign[level] = idx
			ok := true
			for _, ci := range checks[level] {
				if !conds[ci].Truth(benv).Possible() {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			// Skip fully-marked assignments at the last level: marking
			// again adds nothing (the dominant saving for selective
			// queries).
			if level == n-1 {
				all := marked[idx]
				if all {
					for _, prev := range assign[:level] {
						if !marked[prev] {
							all = false
							break
						}
					}
				}
				if all {
					continue
				}
			}
			recurse(level + 1)
		}
	}
	recurse(0)

	return collectMarked(uniq, marked)
}

// keysOfAlias filters keys whose flags include alias i.
func keysOfAlias(p *plan, keys []zorder.Key, i int) []zorder.Key {
	n := len(p.x.Query.From)
	flag := zorder.FlagFor(i, n)
	var out []zorder.Key
	for _, k := range keys {
		if p.grid.Flags(k)&flag != 0 {
			out = append(out, k)
		}
	}
	return out
}

// cellOf returns the value interval of a key's cell in dimension name.
func (p *plan) cellOf(k zorder.Key, name string) query.Interval {
	di, ok := p.dimIndex[name]
	if !ok {
		// A join condition referencing a non-join attribute cannot
		// happen (Analyze defines join attrs from join conditions), but
		// stay sound.
		return query.Everything()
	}
	_, lo, hi := p.grid.CellBounds(k)
	return query.Interval{Lo: lo[di], Hi: hi[di]}
}

// emptyBounds evaluates constant predicates (no attribute references).
type emptyBounds struct{}

// Range implements query.BoundsEnv.
func (emptyBounds) Range(query.AttrRef) query.Interval { return query.Everything() }

// exactJoin computes the final result (paper §IV-D): an exact n-way
// nested-loop join over the complete tuples at the base station, with
// early condition evaluation, followed by SELECT evaluation and optional
// aggregation. It returns the rows and the set of contributing nodes.
func exactJoin(x *Exec, tuples []finalTuple) ([]Row, map[topology.NodeID]bool) {
	n := len(x.Query.From)
	conds := x.Analysis.JoinConds
	for _, c := range x.Analysis.ConstPreds {
		if !c.Eval(query.TupleEnv{Lookup: func(int, string) float64 { return 0 }}) {
			return nil, nil
		}
	}
	byAlias := make([][]finalTuple, n)
	for i := 0; i < n; i++ {
		flag := zorder.FlagFor(i, n)
		for _, t := range tuples {
			if t.flags&flag != 0 {
				byAlias[i] = append(byAlias[i], t)
			}
		}
		if len(byAlias[i]) == 0 {
			return nil, nil
		}
	}

	// Compile every expression once, assigning each distinct (rel, attr)
	// reference a dense slot; the nested loop then reads float slots
	// instead of paying a string-map lookup per reference per tuple
	// combination.
	type slotRef struct {
		name string
		slot int
	}
	slotsOf := make([][]slotRef, n)
	nextSlot := 0
	resolve := func(ref query.AttrRef) int {
		for _, s := range slotsOf[ref.Rel] {
			if s.name == ref.Name {
				return s.slot
			}
		}
		slotsOf[ref.Rel] = append(slotsOf[ref.Rel], slotRef{ref.Name, nextSlot})
		nextSlot++
		return nextSlot - 1
	}

	condsAtLevel := make([][]query.CompiledBool, n)
	for _, c := range conds {
		max := 0
		c.VisitNums(func(e query.NumExpr) {
			if at, ok := e.(query.Attr); ok && at.Ref.Rel > max {
				max = at.Ref.Rel
			}
		})
		condsAtLevel[max] = append(condsAtLevel[max], query.CompileBool(c, resolve))
	}
	selects := make([]query.CompiledNum, len(x.Query.Select))
	for i, it := range x.Query.Select {
		selects[i] = query.CompileNum(it.Expr, resolve)
	}
	groupBy := make([]query.CompiledNum, len(x.Query.GroupBy))
	for i, e := range x.Query.GroupBy {
		groupBy[i] = query.CompileNum(e, resolve)
	}

	// Extract each candidate tuple's referenced values once (one map
	// lookup per tuple per attribute, not per combination).
	pre := make([][]float64, n) // pre[level]: len(slotsOf[level]) stride
	for level, ts := range byAlias {
		slots := slotsOf[level]
		flat := make([]float64, len(ts)*len(slots))
		for ti, t := range ts {
			for k, s := range slots {
				flat[ti*len(slots)+k] = t.vals[s.name]
			}
		}
		pre[level] = flat
	}

	assignment := make([]finalTuple, n)
	vals := make([]float64, nextSlot)

	// Result rows are carved from grow-only slabs: one allocation per
	// few thousand rows instead of one per row. Carved rows stay valid
	// because full slabs are abandoned, never reused.
	var slab []float64
	width := len(selects)
	newRow := func() Row {
		if len(slab) < width {
			slab = make([]float64, 4096*max(width, 1))
		}
		row := Row(slab[:width:width])
		slab = slab[width:]
		return row
	}

	var rows []Row
	contrib := make(map[topology.NodeID]bool)
	agg := newAggState(x.Query.Select)
	aggregated := hasAggregates(x.Query.Select)
	grouped := len(x.Query.GroupBy) > 0
	groups := make(map[string]*aggState)
	var groupKeys []string

	var recurse func(level int)
	recurse = func(level int) {
		if level == n {
			row := newRow()
			for i, f := range selects {
				row[i] = f(vals)
			}
			for _, t := range assignment {
				contrib[t.node] = true
			}
			switch {
			case grouped:
				key := groupKeyOfCompiled(groupBy, vals)
				g := groups[key]
				if g == nil {
					g = newAggState(x.Query.Select)
					groups[key] = g
					groupKeys = append(groupKeys, key)
				}
				g.add(row)
			case aggregated:
				agg.add(row)
			default:
				rows = append(rows, row)
			}
			return
		}
		slots := slotsOf[level]
		flat := pre[level]
		for ti, t := range byAlias[level] {
			assignment[level] = t
			for k, s := range slots {
				vals[s.slot] = flat[ti*len(slots)+k]
			}
			ok := true
			for _, c := range condsAtLevel[level] {
				if !c(vals) {
					ok = false
					break
				}
			}
			if ok {
				recurse(level + 1)
			}
		}
	}
	recurse(0)

	switch {
	case grouped:
		// Deterministic group order: sorted by group key; an ORDER BY
		// re-sorts below.
		sort.Strings(groupKeys)
		for _, key := range groupKeys {
			rows = append(rows, groups[key].rows()...)
		}
	case aggregated:
		rows = agg.rows()
	}
	return applyOrderLimit(x.Query, rows), contrib
}

// groupKeyOf renders the grouping expressions' exact values as a string
// key (round-trip float formatting keeps distinct values distinct).
func groupKeyOf(exprs []query.NumExpr, env query.Env) string {
	var b strings.Builder
	for _, e := range exprs {
		b.WriteString(strconv.FormatFloat(e.Eval(env), 'g', -1, 64))
		b.WriteByte('|')
	}
	return b.String()
}

// groupKeyOfCompiled is groupKeyOf over compiled expressions.
func groupKeyOfCompiled(exprs []query.CompiledNum, vals []float64) string {
	var b strings.Builder
	for _, f := range exprs {
		b.WriteString(strconv.FormatFloat(f(vals), 'g', -1, 64))
		b.WriteByte('|')
	}
	return b.String()
}

// applyOrderLimit sorts by the ORDER BY keys (full-row lexicographic
// tie-break keeps the order identical across join methods) and applies
// LIMIT.
func applyOrderLimit(q *query.Query, rows []Row) []Row {
	if len(q.OrderBy) > 0 {
		sort.SliceStable(rows, func(i, j int) bool {
			a, b := rows[i], rows[j]
			for _, k := range q.OrderBy {
				av, bv := a[k.Col-1], b[k.Col-1]
				if av != bv {
					if k.Desc {
						return av > bv
					}
					return av < bv
				}
			}
			for c := range a { // tie-break: full row, ascending
				if a[c] != b[c] {
					return a[c] < b[c]
				}
			}
			return false
		})
	}
	if q.Limit > 0 && len(rows) > q.Limit {
		rows = rows[:q.Limit]
	}
	return rows
}

// GroundTruth computes the query result directly from the snapshot,
// bypassing the network entirely. It is the oracle for correctness tests
// and for calibrating workload selectivity.
func GroundTruth(x *Exec) (*Result, error) {
	p, err := buildPlan(x)
	if err != nil {
		return nil, err
	}
	var tuples []finalTuple
	for id := 1; id < x.Dep.N(); id++ {
		if p.nodes[id] != nil {
			tuples = append(tuples, p.tuple(topology.NodeID(id)))
		}
	}
	rows, contrib := exactJoin(x, tuples)
	return &Result{
		Columns:           columnsOf(x.Query),
		Rows:              rows,
		ContributingNodes: len(contrib),
		MemberNodes:       p.members,
		Complete:          true,
	}, nil
}
