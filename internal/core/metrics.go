package core

import (
	"sensjoin/internal/metrics"
	"sensjoin/internal/trace"
)

// CoreMetrics is the protocol-level instrument set: phase transitions
// and durations, filter sizes, prune/suppress/Treecut decisions and
// recovery activity. One CoreMetrics is shared by every concurrent
// runner wired to the same registry; all maps are built once at
// construction and only read afterwards, so observation is race-free.
type CoreMetrics struct {
	transitions map[string]*metrics.Counter   // phase-start count per phase
	durations   map[string]*metrics.Histogram // phase duration seconds per phase

	Runs        *metrics.Counter
	Treecuts    *metrics.Counter
	Proxies     *metrics.Counter
	Prunes      *metrics.Counter
	Suppressed  *metrics.Counter
	Recoveries  *metrics.Counter
	Rerequests  *metrics.Counter
	StandDowns  *metrics.Counter
	FilterKeys  *metrics.Histogram
	FilterBytes *metrics.Histogram

	// Shared-execution (multi-query optimization) instruments.
	MQOGroups           *metrics.Gauge
	MQOMergedBroadcasts *metrics.Counter
	MQODedupTuples      *metrics.Counter
	MQOBitmapBytes      *metrics.Counter

	// Mid-round repair instruments (churn resilience).
	Repairs        *metrics.Counter
	RepairFailures *metrics.Counter
	Reattached     *metrics.Counter
	RepairSeconds  *metrics.Histogram
}

// metricPhases is the closed set of phase labels instrumented with their
// own series (a span with any other label is counted but not timed).
var metricPhases = []string{
	PhaseQueryDissem, PhaseJACollect, PhaseFilterDissem,
	PhaseFinalCollect, PhaseExternal, PhaseRecovery,
}

// NewMetrics registers the protocol instruments on r; a nil registry
// returns nil, which every hook treats as metrics-off.
func NewMetrics(r *metrics.Registry) *CoreMetrics {
	if r == nil {
		return nil
	}
	durBounds := []float64{0.1, 0.3, 1, 3, 10, 30, 100, 300}
	m := &CoreMetrics{
		transitions: make(map[string]*metrics.Counter, len(metricPhases)),
		durations:   make(map[string]*metrics.Histogram, len(metricPhases)),
		Runs:        r.Counter("sensjoin_core_runs_total", "query executions started"),
		Treecuts:    r.Counter("sensjoin_core_treecut_total", "nodes that exited the query via Treecut"),
		Proxies:     r.Counter("sensjoin_core_proxy_total", "proxy takeovers of subtree tuples"),
		Prunes:      r.Counter("sensjoin_core_prune_total", "selective-filter-forwarding prune decisions"),
		Suppressed:  r.Counter("sensjoin_core_suppress_total", "tuples suppressed by the filter in phase C"),
		Recoveries:  r.Counter("sensjoin_core_recovery_total", "tree-repair re-executions"),
		Rerequests:  r.Counter("sensjoin_core_rerequest_total", "scoped-recovery subtree re-requests"),
		StandDowns:  r.Counter("sensjoin_core_standdown_total", "subtrees falling back to ship-everything mode"),
		FilterKeys:  r.Histogram("sensjoin_core_filter_keys", "join filter size in quadtree keys", []float64{1, 4, 16, 64, 256, 1024, 4096, 16384}),
		FilterBytes: r.Histogram("sensjoin_core_filter_bytes", "join filter wire size in bytes", []float64{8, 32, 128, 512, 2048, 8192, 32768}),

		MQOGroups:           r.Gauge("sensjoin_mqo_groups", "shared-execution clusters of the active query group"),
		MQOMergedBroadcasts: r.Counter("sensjoin_mqo_merged_broadcasts_total", "merged (union + masks) filter transmissions"),
		MQODedupTuples:      r.Counter("sensjoin_mqo_dedup_tuples_total", "tuples shipped once while wanted by >= 2 queries"),
		MQOBitmapBytes:      r.Counter("sensjoin_mqo_bitmap_bytes_total", "wire bytes spent on query-membership bitmaps"),

		Repairs:        r.Counter("sensjoin_churn_repairs_total", "mid-round incremental tree repairs"),
		RepairFailures: r.Counter("sensjoin_churn_repair_failures_total", "executions whose repair could not restore completeness"),
		Reattached:     r.Counter("sensjoin_churn_reattached_nodes_total", "nodes re-parented by mid-round repair"),
		RepairSeconds:  r.Histogram("sensjoin_churn_repair_seconds", "simulated seconds from query start to first mid-round repair", durBounds),
	}
	for _, p := range metricPhases {
		m.transitions[p] = r.Counter("sensjoin_core_phase_transitions_total", "protocol phase starts", metrics.L{Key: "phase", Value: p})
		m.durations[p] = r.Histogram("sensjoin_core_phase_seconds", "protocol phase durations", durBounds, metrics.L{Key: "phase", Value: p})
	}
	return m
}

// observeSpan mirrors a protocol span event into the live instruments.
// at is the span's own timestamp (the acting node's clock). Phase
// durations pair each start with its end inside one execution; the
// pairing state lives on the Exec, and only the base station emits
// phase spans, so concurrent runs — and concurrent region workers —
// never share it.
func (m *CoreMetrics) observeSpan(x *Exec, at float64, k trace.Kind, phase string) {
	if m == nil {
		return
	}
	switch k {
	case trace.KindPhaseStart:
		m.transitions[phase].Inc()
		if x.phaseOpen == nil {
			x.phaseOpen = make(map[string]float64, 4)
		}
		x.phaseOpen[phase] = at
	case trace.KindPhaseEnd:
		if start, ok := x.phaseOpen[phase]; ok {
			m.durations[phase].Observe(at - start)
			delete(x.phaseOpen, phase)
		}
	case trace.KindTreecut:
		m.Treecuts.Inc()
	case trace.KindProxy:
		m.Proxies.Inc()
	case trace.KindPrune:
		m.Prunes.Inc()
	case trace.KindSuppress:
		m.Suppressed.Inc()
	case trace.KindRecovery:
		m.Recoveries.Inc()
	case trace.KindRerequest:
		m.Rerequests.Inc()
	case trace.KindStandDown:
		m.StandDowns.Inc()
	}
}

// observeFilter records the computed join filter's size.
func (m *CoreMetrics) observeFilter(keys, bytes int) {
	if m == nil {
		return
	}
	m.FilterKeys.Observe(float64(keys))
	m.FilterBytes.Observe(float64(bytes))
}

// observeMQOBroadcast counts one merged filter transmission and its
// membership-bitmap overhead.
func (m *CoreMetrics) observeMQOBroadcast(bitmapBytes int) {
	if m == nil {
		return
	}
	m.MQOMergedBroadcasts.Inc()
	m.MQOBitmapBytes.Add(int64(bitmapBytes))
}

// observeMQOBitmap charges phase-C per-tuple bitmap bytes.
func (m *CoreMetrics) observeMQOBitmap(bytes int) {
	if m == nil {
		return
	}
	m.MQOBitmapBytes.Add(int64(bytes))
}

// observeMQODedup counts tuples that shipped once while wanted by two
// or more queries of the cluster.
func (m *CoreMetrics) observeMQODedup(tuples int) {
	if m == nil {
		return
	}
	m.MQODedupTuples.Add(int64(tuples))
}
