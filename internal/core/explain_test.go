package core

import (
	"strings"
	"testing"
)

func TestExplainQ2Style(t *testing.T) {
	r := testRunner(t, 80, 501)
	x, err := r.ExecSQL(qBand(0.3), 0)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Explain(x)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"relations (2)",
		"join attrs: [temp x y]",
		"join conditions (2)",
		"[indexable: band on \"temp\"]",
		"quantization grid",
		"quadtree level schedule",
		"join filter",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Explain missing %q:\n%s", want, out)
		}
	}
}

func TestExplainLocalPredicates(t *testing.T) {
	r := testRunner(t, 60, 503)
	x, err := r.ExecSQL(`SELECT A.temp, B.temp FROM Sensors A, Sensors B
		WHERE A.light > 100 AND A.temp - B.temp > 3 ONCE`, 0)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Explain(x)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "local predicate: A.light > 100") {
		t.Fatalf("local predicate missing:\n%s", out)
	}
	if !strings.Contains(out, "[indexable: difference on \"temp\"]") {
		t.Fatalf("difference index missing:\n%s", out)
	}
}

func TestExplainNoJoinAttrs(t *testing.T) {
	r := testRunner(t, 40, 505)
	x, err := r.ExecSQL("SELECT A.temp, B.temp FROM Sensors A, Sensors B ONCE", 0)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Explain(x)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "SENS-Join not applicable") {
		t.Fatalf("missing inapplicability note:\n%s", out)
	}
}
