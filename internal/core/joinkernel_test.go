package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"sensjoin/internal/query"
	"sensjoin/internal/topology"
	"sensjoin/internal/zorder"
)

// exactJoinReference is the seed's nested-loop join, kept verbatim as
// the differential-test oracle for the predicate-indexed kernel.
func exactJoinReference(x *Exec, tuples []finalTuple) ([]Row, map[topology.NodeID]bool) {
	n := len(x.Query.From)
	conds := x.Analysis.JoinConds
	for _, c := range x.Analysis.ConstPreds {
		if !c.Eval(query.TupleEnv{Lookup: func(int, string) float64 { return 0 }}) {
			return nil, nil
		}
	}
	byAlias := make([][]finalTuple, n)
	for i := 0; i < n; i++ {
		flag := zorder.FlagFor(i, n)
		for _, t := range tuples {
			if t.flags&flag != 0 {
				byAlias[i] = append(byAlias[i], t)
			}
		}
		if len(byAlias[i]) == 0 {
			return nil, nil
		}
	}

	type slotRef struct {
		name string
		slot int
	}
	slotsOf := make([][]slotRef, n)
	nextSlot := 0
	resolve := func(ref query.AttrRef) int {
		for _, s := range slotsOf[ref.Rel] {
			if s.name == ref.Name {
				return s.slot
			}
		}
		slotsOf[ref.Rel] = append(slotsOf[ref.Rel], slotRef{ref.Name, nextSlot})
		nextSlot++
		return nextSlot - 1
	}

	condsAtLevel := make([][]query.CompiledBool, n)
	for _, c := range conds {
		max := 0
		c.VisitNums(func(e query.NumExpr) {
			if at, ok := e.(query.Attr); ok && at.Ref.Rel > max {
				max = at.Ref.Rel
			}
		})
		condsAtLevel[max] = append(condsAtLevel[max], query.CompileBool(c, resolve))
	}
	selects := make([]query.CompiledNum, len(x.Query.Select))
	for i, it := range x.Query.Select {
		selects[i] = query.CompileNum(it.Expr, resolve)
	}
	groupBy := make([]query.CompiledNum, len(x.Query.GroupBy))
	for i, e := range x.Query.GroupBy {
		groupBy[i] = query.CompileNum(e, resolve)
	}

	pre := make([][]float64, n)
	for level, ts := range byAlias {
		slots := slotsOf[level]
		flat := make([]float64, len(ts)*len(slots))
		for ti, t := range ts {
			for k, s := range slots {
				flat[ti*len(slots)+k] = t.vals[s.name]
			}
		}
		pre[level] = flat
	}

	assignment := make([]finalTuple, n)
	vals := make([]float64, nextSlot)

	var rows []Row
	contrib := make(map[topology.NodeID]bool)
	agg := newAggState(x.Query.Select)
	aggregated := hasAggregates(x.Query.Select)
	grouped := len(x.Query.GroupBy) > 0
	groups := make(map[string]*aggState)
	var groupKeys []string

	var recurse func(level int)
	recurse = func(level int) {
		if level == n {
			row := make(Row, len(selects))
			for i, f := range selects {
				row[i] = f(vals)
			}
			for _, t := range assignment {
				contrib[t.node] = true
			}
			switch {
			case grouped:
				key := groupKeyOfCompiled(groupBy, vals)
				g := groups[key]
				if g == nil {
					g = newAggState(x.Query.Select)
					groups[key] = g
					groupKeys = append(groupKeys, key)
				}
				g.add(row)
			case aggregated:
				agg.add(row)
			default:
				rows = append(rows, row)
			}
			return
		}
		slots := slotsOf[level]
		flat := pre[level]
		for ti, t := range byAlias[level] {
			assignment[level] = t
			for k, s := range slots {
				vals[s.slot] = flat[ti*len(slots)+k]
			}
			ok := true
			for _, c := range condsAtLevel[level] {
				if !c(vals) {
					ok = false
					break
				}
			}
			if ok {
				recurse(level + 1)
			}
		}
	}
	recurse(0)

	switch {
	case grouped:
		sort.Strings(groupKeys)
		for _, key := range groupKeys {
			rows = append(rows, groups[key].rows()...)
		}
	case aggregated:
		rows = agg.rows()
	}
	return applyOrderLimit(x.Query, rows), contrib
}

// kernelExec builds an Exec that exercises only the base-station join
// (no simulator, no catalog).
func kernelExec(t testing.TB, src string) *Exec {
	t.Helper()
	q, err := query.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	a, err := query.Analyze(q)
	if err != nil {
		t.Fatalf("analyze %q: %v", src, err)
	}
	return &Exec{Query: q, Analysis: a}
}

// kernelTuples synthesizes count tuples with the standard attributes,
// random alias membership and deterministic values.
func kernelTuples(rng *rand.Rand, count, nAliases int) []finalTuple {
	attrs := []string{"temp", "hum", "pres", "light", "x", "y", "bucket"}
	tuples := make([]finalTuple, 0, count)
	for i := 0; i < count; i++ {
		vals := make(map[string]float64, len(attrs))
		vals["temp"] = rng.Float64() * 40
		vals["hum"] = 30 + rng.Float64()*60
		vals["pres"] = 990 + rng.Float64()*40
		vals["light"] = rng.Float64() * 1000
		vals["x"] = rng.Float64() * 1000
		vals["y"] = rng.Float64() * 1000
		vals["bucket"] = math.Floor(vals["temp"])
		flags := uint64(rng.Intn(1<<nAliases-1) + 1)
		tuples = append(tuples, finalTuple{node: topology.NodeID(i + 1), flags: flags, vals: vals})
	}
	return tuples
}

func rowsEqual(a, b []Row) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if math.Float64bits(a[i][j]) != math.Float64bits(b[i][j]) {
				return false
			}
		}
	}
	return true
}

func contribEqual(a, b map[topology.NodeID]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// kernelRandomQuery generates joins over 2 or 3 relations mixing every
// conjunct class the kernel distinguishes: equalities, difference/band/
// sum constraints, residuals, plus GROUP BY, aggregates and ORDER BY.
func kernelRandomQuery(rng *rand.Rand, nAliases int) string {
	aliases := []string{"A", "B", "C"}[:nAliases]
	attrs := []string{"temp", "hum", "pres", "light", "bucket"}
	pick := func() string { return attrs[rng.Intn(len(attrs))] }
	pair := func() (string, string) {
		i := rng.Intn(nAliases)
		j := rng.Intn(nAliases - 1)
		if j >= i {
			j++
		}
		return aliases[i], aliases[j]
	}

	var conds []string
	for i, n := 0, 1+rng.Intn(3); i < n; i++ {
		l, r := pair()
		switch rng.Intn(7) {
		case 0:
			conds = append(conds, fmt.Sprintf("%s.bucket = %s.bucket", l, r))
		case 1:
			conds = append(conds, fmt.Sprintf("%s.%s - %s.%s > %.2f", l, pick(), r, pick(), rng.Float64()*20))
		case 2:
			a := pick()
			conds = append(conds, fmt.Sprintf("abs(%s.%s - %s.%s) < %.2f", l, a, r, a, rng.Float64()*3))
		case 3:
			conds = append(conds, fmt.Sprintf("%s.%s + %s.%s < %.1f", l, pick(), r, pick(), 30+rng.Float64()*100))
		case 4:
			conds = append(conds, fmt.Sprintf("distance(%s.x, %s.y, %s.x, %s.y) > %.0f", l, l, r, r, 100+rng.Float64()*500))
		case 5:
			conds = append(conds, fmt.Sprintf("%s.%s < %s.%s", l, pick(), r, pick()))
		default:
			conds = append(conds, fmt.Sprintf("(%s.temp > %s.temp OR %s.hum < %s.hum)", l, r, l, r))
		}
	}

	var sel []string
	for i, n := 0, 1+rng.Intn(2); i < n; i++ {
		sel = append(sel, aliases[rng.Intn(nAliases)]+"."+pick())
	}
	suffix := ""
	switch rng.Intn(4) {
	case 0: // aggregates: order of float accumulation must match
		for i := range sel {
			sel[i] = []string{"SUM", "AVG", "MIN", "COUNT"}[rng.Intn(4)] + "(" + sel[i] + ")"
		}
	case 1: // grouped
		g := aliases[0] + ".bucket"
		sel = append([]string{g}, "SUM("+sel[0]+")")
		suffix = " GROUP BY " + g
	case 2: // ordered and limited
		suffix = fmt.Sprintf(" ORDER BY 1 LIMIT %d", 1+rng.Intn(20))
	}
	var from []string
	for _, a := range aliases {
		from = append(from, "Sensors "+a)
	}
	return fmt.Sprintf("SELECT %s FROM %s WHERE %s%s ONCE",
		strings.Join(sel, ", "), strings.Join(from, ", "), strings.Join(conds, " AND "), suffix)
}

// The kernel must reproduce the nested loop exactly — same rows, same
// order, bit-identical floats (including SUM/AVG accumulation order),
// same contributing nodes — over randomized queries and tuple sets.
func TestJoinKernelMatchesNestedLoop(t *testing.T) {
	const iterations = 120
	for i := 0; i < iterations; i++ {
		rng := rand.New(rand.NewSource(int64(9000 + i)))
		nAliases := 2
		if i%4 == 3 {
			nAliases = 3
		}
		src := kernelRandomQuery(rng, nAliases)
		x := kernelExec(t, src)
		count := 30 + rng.Intn(120)
		if nAliases == 3 {
			count = 20 + rng.Intn(40)
		}
		tuples := kernelTuples(rng, count, nAliases)

		gotRows, gotContrib := exactJoin(x, tuples)
		wantRows, wantContrib := exactJoinReference(x, tuples)
		if !rowsEqual(gotRows, wantRows) {
			t.Fatalf("iter %d: %q\nkernel rows (%d) differ from nested loop (%d)",
				i, src, len(gotRows), len(wantRows))
		}
		if !contribEqual(gotContrib, wantContrib) {
			t.Fatalf("iter %d: %q\ncontrib %d nodes, want %d", i, src, len(gotContrib), len(wantContrib))
		}
	}
}

// Adversarial values: ±0, boundary-exact matches, +Inf and NaN must not
// change results relative to the nested loop.
func TestJoinKernelSpecialValues(t *testing.T) {
	queries := []string{
		"SELECT A.temp, B.temp FROM Sensors A, Sensors B WHERE A.temp = B.temp ONCE",
		"SELECT A.temp, B.temp FROM Sensors A, Sensors B WHERE A.temp - B.temp > 1 ONCE",
		"SELECT A.temp, B.temp FROM Sensors A, Sensors B WHERE abs(A.temp - B.temp) <= 1 ONCE",
		"SELECT A.temp, B.temp FROM Sensors A, Sensors B WHERE A.temp < B.temp ONCE",
	}
	specials := []float64{0, math.Copysign(0, -1), 1, -1, 2, 1.5,
		math.Inf(1), math.Inf(-1), math.NaN(), math.MaxFloat64, -math.MaxFloat64}
	var tuples []finalTuple
	id := 1
	for _, v := range specials {
		for alias := 0; alias < 2; alias++ {
			tuples = append(tuples, finalTuple{
				node:  topology.NodeID(id),
				flags: zorder.FlagFor(alias, 2),
				vals:  map[string]float64{"temp": v},
			})
			id++
		}
	}
	for _, src := range queries {
		x := kernelExec(t, src)
		gotRows, gotContrib := exactJoin(x, tuples)
		wantRows, wantContrib := exactJoinReference(x, tuples)
		if !rowsEqual(gotRows, wantRows) {
			t.Fatalf("%q: kernel %d rows, nested loop %d rows", src, len(gotRows), len(wantRows))
		}
		if !contribEqual(gotContrib, wantContrib) {
			t.Fatalf("%q: contrib differs", src)
		}
	}
}

// capturePlans records every kernel plan produced during fn.
func capturePlans(fn func()) []joinPlanInfo {
	var plans []joinPlanInfo
	joinPlanHook = func(p joinPlanInfo) { plans = append(plans, p) }
	defer func() { joinPlanHook = nil }()
	fn()
	return plans
}

// The planner must pick the expected access path per shape: hash for
// equalities, band windows for difference/band conditions, and the
// streaming scan for residual-only joins.
func TestJoinPlannerAccessPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tuples := kernelTuples(rng, 80, 2)
	cases := []struct {
		where    string
		paths    []string
		streamed bool
	}{
		{"A.bucket = B.bucket", []string{"scan", "hash"}, false},
		{"A.temp - B.temp > 5", []string{"scan", "band"}, false},
		{"abs(A.temp - B.temp) < 0.5", []string{"scan", "band"}, false},
		{"A.bucket = B.bucket AND A.temp - B.temp > 1", []string{"scan", "hash"}, false},
		{"distance(A.x, A.y, B.x, B.y) > 100", []string{"scan", "scan"}, true},
		{"(A.temp > B.temp OR A.hum < B.hum)", []string{"scan", "scan"}, true},
	}
	for _, c := range cases {
		src := "SELECT A.temp, B.temp FROM Sensors A, Sensors B WHERE " + c.where + " ONCE"
		x := kernelExec(t, src)
		plans := capturePlans(func() { exactJoin(x, tuples) })
		if len(plans) != 1 {
			t.Fatalf("%q: %d plans, want 1", c.where, len(plans))
		}
		p := plans[0]
		if strings.Join(p.Paths, ",") != strings.Join(c.paths, ",") {
			t.Errorf("%q: paths %v, want %v", c.where, p.Paths, c.paths)
		}
		if p.Streamed != c.streamed {
			t.Errorf("%q: streamed=%t, want %t", c.where, p.Streamed, c.streamed)
		}
	}
}

// A three-way chain must order levels so each probe connects to a bound
// level, and every level after the first must be indexed.
func TestJoinPlannerThreeWayChain(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	tuples := kernelTuples(rng, 40, 3)
	src := "SELECT A.temp FROM Sensors A, Sensors B, Sensors C " +
		"WHERE A.bucket = B.bucket AND abs(B.temp - C.temp) < 2 ONCE"
	x := kernelExec(t, src)
	plans := capturePlans(func() { exactJoin(x, tuples) })
	if len(plans) != 1 {
		t.Fatalf("%d plans, want 1", len(plans))
	}
	p := plans[0]
	for i, path := range p.Paths[1:] {
		if path == "scan" {
			t.Fatalf("position %d fell back to scan: %+v", i+1, p)
		}
	}
	// Exact row agreement under the permuted join order.
	gotRows, _ := exactJoin(x, tuples)
	wantRows, _ := exactJoinReference(x, tuples)
	if !rowsEqual(gotRows, wantRows) {
		t.Fatalf("3-way chain rows differ: kernel %d, nested loop %d", len(gotRows), len(wantRows))
	}
}

// benchTuples builds a realistic base-station tuple set: one tuple per
// node, all nodes in both aliases (the experiment workloads are
// self-joins).
func benchTuples(count int) []finalTuple {
	rng := rand.New(rand.NewSource(7))
	tuples := kernelTuples(rng, count, 2)
	for i := range tuples {
		tuples[i].flags = zorder.FlagFor(0, 2) | zorder.FlagFor(1, 2)
	}
	return tuples
}

func benchmarkJoin(b *testing.B, src string, count int,
	join func(*Exec, []finalTuple) ([]Row, map[topology.NodeID]bool)) {
	x := kernelExec(b, src)
	tuples := benchTuples(count)
	rows, _ := join(x, tuples)
	b.ReportMetric(float64(len(rows)), "rows")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		join(x, tuples)
	}
}

// qBenchBand is the paper-shaped band self-join (Q1 family) at a
// selectivity near the calibrated experiment range.
const qBenchBand = "SELECT A.temp, B.temp, A.hum, B.hum FROM Sensors A, Sensors B WHERE A.temp - B.temp > 32 ONCE"

// qBenchEqui joins on a quantized attribute (~40 distinct values over
// 1500 tuples).
const qBenchEqui = "SELECT A.temp, B.temp FROM Sensors A, Sensors B WHERE A.bucket = B.bucket AND A.temp - B.temp > 0.5 ONCE"

func BenchmarkExactJoin(b *testing.B) {
	b.Run("band-1500", func(b *testing.B) { benchmarkJoin(b, qBenchBand, 1500, exactJoin) })
	b.Run("equi-1500", func(b *testing.B) { benchmarkJoin(b, qBenchEqui, 1500, exactJoin) })
	b.Run("band-400", func(b *testing.B) { benchmarkJoin(b, qBenchBand, 400, exactJoin) })
}

// BenchmarkExactJoinReference measures the seed's nested loop on the
// same shapes, so one benchmark run shows the kernel's speedup.
func BenchmarkExactJoinReference(b *testing.B) {
	b.Run("band-1500", func(b *testing.B) { benchmarkJoin(b, qBenchBand, 1500, exactJoinReference) })
	b.Run("equi-1500", func(b *testing.B) { benchmarkJoin(b, qBenchEqui, 1500, exactJoinReference) })
	b.Run("band-400", func(b *testing.B) { benchmarkJoin(b, qBenchBand, 400, exactJoinReference) })
}
