package core

import (
	"fmt"
	"sync"
	"testing"
)

// A prepared execution is the same computation with the per-shape work
// hoisted, so rows must be identical to the ad-hoc path.
func TestPreparedMatchesAdHoc(t *testing.T) {
	r, err := NewRunner(SetupConfig{Nodes: 200, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []string{
		`SELECT A.temp, B.hum FROM Sensors A, Sensors B WHERE A.temp - B.temp > 8.0 ONCE`,
		`SELECT A.temp FROM Sensors A, Sensors B WHERE A.temp = B.temp AND A.hum < 60 ONCE`,
		`SELECT MIN(distance(A.x, A.y, B.x, B.y)) FROM Sensors A, Sensors B WHERE A.temp - B.temp > 10.0 ONCE`,
		`SELECT * FROM Sensors A, Sensors B WHERE A.temp - B.temp > 12.0 AND A.pres < 1010 ONCE`,
	} {
		want, err := r.Run(src, NewSENSJoin(), 0)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		p, err := r.Prepare(src)
		if err != nil {
			t.Fatalf("prepare %s: %v", src, err)
		}
		got, err := r.RunPrepared(p, NewSENSJoin(), 0)
		if err != nil {
			t.Fatalf("run prepared %s: %v", src, err)
		}
		if fmt.Sprint(got.Columns) != fmt.Sprint(want.Columns) ||
			fmt.Sprint(got.Rows) != fmt.Sprint(want.Rows) ||
			got.ContributingNodes != want.ContributingNodes {
			t.Fatalf("prepared result differs for %s", src)
		}
	}
}

// One Prepared shared by many concurrent executions (each on its own
// runner) must stay correct: all cached state is immutable, and every
// execution's rows must match the independent ad-hoc run. Run with
// -race.
func TestPreparedConcurrentSharing(t *testing.T) {
	const src = `SELECT A.temp, B.hum FROM Sensors A, Sensors B WHERE A.temp - B.temp > 8.0 ONCE`
	ref, err := NewRunner(SetupConfig{Nodes: 150, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Run(src, NewSENSJoin(), 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ref.Prepare(src)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := NewRunner(SetupConfig{Nodes: 150, Seed: 5})
			if err != nil {
				errs[i] = err
				return
			}
			for k := 0; k < 4; k++ {
				got, err := r.RunPrepared(p, NewSENSJoin(), 0)
				if err != nil {
					errs[i] = err
					return
				}
				if fmt.Sprint(got.Rows) != fmt.Sprint(want.Rows) {
					errs[i] = fmt.Errorf("worker %d iteration %d: rows differ", i, k)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// Same canonical shape, different literals: distinct fingerprints and
// distinct (correct) tables.
func TestPreparedLiteralsDistinct(t *testing.T) {
	r, err := NewRunner(SetupConfig{Nodes: 200, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	p1, err := r.Prepare(`SELECT A.temp FROM Sensors A, Sensors B WHERE A.temp - B.temp > 8.0 ONCE`)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := r.Prepare(`SELECT A.temp FROM Sensors A, Sensors B WHERE A.temp - B.temp > 12.0 ONCE`)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Fingerprint() == p2.Fingerprint() {
		t.Fatal("different literals share a fingerprint")
	}
	r1, err := r.RunPrepared(p1, NewSENSJoin(), 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := r.RunPrepared(p2, NewSENSJoin(), 0)
	if err != nil {
		t.Fatal(err)
	}
	w1, _ := r.Run(p1.Src(), NewSENSJoin(), 0)
	w2, _ := r.Run(p2.Src(), NewSENSJoin(), 0)
	if fmt.Sprint(r1.Rows) != fmt.Sprint(w1.Rows) || fmt.Sprint(r2.Rows) != fmt.Sprint(w2.Rows) {
		t.Fatal("prepared rows differ from ad-hoc rows")
	}
	if len(r1.Rows) == len(r2.Rows) {
		t.Logf("note: both thresholds yield %d rows (legal, but weakens the test)", len(r1.Rows))
	}
}
