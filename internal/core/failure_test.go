package core

import (
	"testing"

	"sensjoin/internal/netsim"
	"sensjoin/internal/topology"
)

// failLink finds a link whose loss affects the execution: the tree edge
// above a node with a reasonably large subtree.
func failLink(r *Runner) (child, parent topology.NodeID) {
	best := topology.NodeID(-1)
	bestDesc := -1
	for i := 1; i < r.Dep.N(); i++ {
		id := topology.NodeID(i)
		if r.Tree.Depth[id] >= 2 && r.Tree.Descendants[id] > bestDesc {
			best, bestDesc = id, r.Tree.Descendants[id]
		}
	}
	return best, r.Tree.Parent[best]
}

func TestLinkFailureDetected(t *testing.T) {
	for _, m := range []Method{External{}, NewSENSJoin()} {
		r := testRunner(t, 150, 71)
		child, parent := failLink(r)
		r.Net.LinkDown(child, parent)
		res, err := r.Run(qBand(0.5), m, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Complete {
			t.Fatalf("%s: lost subtree of %d nodes but result claims complete",
				m.Name(), r.Tree.Descendants[child]+1)
		}
	}
}

func TestRecoveryReexecutesAfterRepair(t *testing.T) {
	r := testRunner(t, 150, 73)
	child, parent := failLink(r)
	r.Net.LinkDown(child, parent)
	res, attempts, err := r.RunWithRecovery(qBand(0.5), NewSENSJoin(), 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if attempts < 2 {
		t.Fatalf("expected a re-execution, got %d attempt(s)", attempts)
	}
	if !res.Complete {
		t.Fatal("result still incomplete after tree repair")
	}
	// After repair the result matches ground truth on the repaired tree.
	x, err := r.ExecSQL(qBand(0.5), 0)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := GroundTruth(x)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, truth.Rows, res.Rows, "truth", "recovered")
}

func TestRecoveryGivesUpWhenPartitioned(t *testing.T) {
	r := testRunner(t, 100, 79)
	// Kill every neighbor link of some deep node: it becomes unreachable
	// and no repair can help.
	var victim topology.NodeID = -1
	for i := 1; i < r.Dep.N(); i++ {
		if r.Tree.Depth[i] >= 2 && r.Tree.Descendants[i] == 0 {
			victim = topology.NodeID(i)
			break
		}
	}
	if victim < 0 {
		t.Skip("no leaf victim found")
	}
	for _, nb := range r.Dep.Neighbors[victim] {
		r.Net.LinkDown(victim, nb)
	}
	res, attempts, err := r.RunWithRecovery(qBand(0.5), NewSENSJoin(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want the maximum 2", attempts)
	}
	// The partitioned node is excluded by the repaired tree, so the
	// final attempt is complete w.r.t. reachable nodes or reported
	// incomplete; either way the run must terminate (no infinite loop).
	_ = res
}

func TestNodeDeathDuringExecution(t *testing.T) {
	r := testRunner(t, 120, 83)
	// Pick a relay node and kill it mid-execution (after phase A began).
	var victim topology.NodeID = -1
	for i := 1; i < r.Dep.N(); i++ {
		if r.Tree.Depth[i] == 1 && r.Tree.Descendants[i] > 5 {
			victim = topology.NodeID(i)
			break
		}
	}
	if victim < 0 {
		t.Skip("no suitable relay")
	}
	r.Sim.Schedule(0.5, func() { r.Net.KillNode(victim) })
	res, err := r.Run(qBand(0.5), NewSENSJoin(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Fatal("mid-execution node death must surface as incomplete")
	}
	// Repair and re-run; the dead node stays dead, so completeness is
	// judged against the surviving members.
	r.Net.ReviveNode(victim)
	r.RebuildTree()
	res2, err := r.Run(qBand(0.5), NewSENSJoin(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Complete {
		t.Fatal("re-execution after revival should be complete")
	}
}

// lineRunner builds a path topology: base station at one end, nodes
// spaced 40 m apart with 50 m range, so the tree is a single chain and
// Treecut behaviour is exactly predictable.
func lineRunner(t *testing.T, n int) *Runner {
	t.Helper()
	return NewRunnerFromDeployment(topology.Line(n, 40, 50), netsim.RadioConfig{}, 5)
}

func TestTreecutOnLineTopology(t *testing.T) {
	// Query ships 4 attributes = 8 bytes per tuple; Dmax = 30. On a
	// chain (leaf = farthest node) the cut nodes accumulate 8, 16, 24
	// bytes; the node seeing 32 bytes becomes the proxy. So exactly 3
	// tuples ride each Treecut chain and deeper nodes exit the query:
	// they must never transmit in the filter or final phases.
	r := lineRunner(t, 12)
	src := qBand(10) // everything joins: every tuple must reach the BS
	x, err := r.ExecSQL(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := GroundTruth(x)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(src, NewSENSJoin(), 0)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, truth.Rows, res.Rows, "truth", "sens-line")

	// The three deepest nodes (12, 11, 10) are cut: each sends exactly
	// one phase-A message and nothing afterwards.
	n := r.Dep.N() - 1
	for _, id := range []topology.NodeID{topology.NodeID(n), topology.NodeID(n - 1), topology.NodeID(n - 2)} {
		if p, _ := r.Stats.NodeTx(id, PhaseJACollect); p != 1 {
			t.Fatalf("cut node %d sent %d collection packets, want 1", id, p)
		}
		if p, _ := r.Stats.NodeTx(id, PhaseFilterDissem); p != 0 {
			t.Fatalf("cut node %d forwarded the filter", id)
		}
		if p, _ := r.Stats.NodeTx(id, PhaseFinalCollect); p != 0 {
			t.Fatalf("cut node %d transmitted in the final phase", id)
		}
	}
	// The proxy (n-3) answers for its cut descendants in the final phase.
	proxy := topology.NodeID(n - 3)
	if p, _ := r.Stats.NodeTx(proxy, PhaseFinalCollect); p == 0 {
		t.Fatalf("proxy %d sent nothing in the final phase", proxy)
	}
}

func TestSelectiveForwardingPrunesSubtreesOnLine(t *testing.T) {
	// With a filter that matches nothing, no filter packet must travel
	// at all (the base station sees an empty filter).
	r := lineRunner(t, 12)
	src := `SELECT A.temp, B.temp FROM Sensors A, Sensors B
		WHERE A.temp - B.temp > 500 ONCE` // impossible
	res, err := r.Run(src, NewSENSJoin(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatal("impossible predicate produced rows")
	}
	if p := r.Stats.TotalTx(PhaseFilterDissem); p != 0 {
		t.Fatalf("empty filter still disseminated %d packets", p)
	}
	if p := r.Stats.TotalTx(PhaseFinalCollect); p != 0 {
		t.Fatalf("empty filter still collected %d final packets", p)
	}
}
