package core

import (
	"sync"

	"sensjoin/internal/field"
	"sensjoin/internal/metrics"
	"sensjoin/internal/routing"
	"sensjoin/internal/topology"
)

// Shared deployment cache.
//
// topology.Generate, field.StandardEnvironment and routing.BuildTree are
// pure functions of the topology configuration (nodes, area, range, base
// placement, seed): the same config always yields the same placement,
// fields and tree. The experiment harness builds hundreds of runners
// over a handful of distinct configs, so the three expensive artifacts
// are computed once per config and shared across runners.
//
// Sharing is safe because all three are immutable after construction —
// this is an audited contract, documented at the type definitions:
//
//   - topology.Deployment: Pos/Neighbors/Area/Range are built by
//     place/buildNeighbors and never written afterwards.
//   - field.Environment: its field and coupling maps are populated only
//     during StandardEnvironment/QuietEnvironment construction; Read is
//     a pure function of them (concurrent map reads are safe).
//   - routing.Tree: filled by BuildTree, read-only accessors only.
//     Runner.RebuildTree *replaces* the runner's tree pointer with a
//     newly built tree; it never mutates the shared one.
//
// All mutable simulation state — the event queue, link/node failure
// state, transmission counters — lives in the per-runner netsim.Sim,
// netsim.Network and stats.Collector, which are always fresh.
type sharedSetup struct {
	dep  *topology.Deployment
	env  *field.Environment
	tree *routing.Tree
}

var (
	setupMu    sync.Mutex
	setupCache = map[topology.Config]*sharedSetup{}
	// Cache instruments, guarded by setupMu like the cache itself; nil
	// (the default) disables them.
	cacheHits, cacheMisses *metrics.Counter
)

// SetCacheMetrics registers hit/miss counters for the shared deployment
// cache on reg (nil disables them again).
func SetCacheMetrics(reg *metrics.Registry) {
	setupMu.Lock()
	defer setupMu.Unlock()
	cacheHits = reg.Counter("sensjoin_core_setup_cache_hits_total", "shared deployment cache hits")
	cacheMisses = reg.Counter("sensjoin_core_setup_cache_misses_total", "shared deployment cache misses")
}

// sharedSetupFor returns the cached artifacts for tcfg, generating them
// on first use. tcfg must be fully normalized (defaults resolved) so
// that equal configurations hit the same entry. The environment seed is
// derived from the topology seed exactly as NewRunner historically did
// (seed+1000), keeping cached and uncached runners byte-identical.
func sharedSetupFor(tcfg topology.Config) (*sharedSetup, error) {
	setupMu.Lock()
	defer setupMu.Unlock()
	if s, ok := setupCache[tcfg]; ok {
		cacheHits.Inc()
		return s, nil
	}
	cacheMisses.Inc()
	dep, err := topology.Generate(tcfg)
	if err != nil {
		return nil, err
	}
	s := &sharedSetup{
		dep:  dep,
		env:  field.StandardEnvironment(dep.Area, tcfg.Seed+1000),
		tree: routing.BuildTree(dep.Neighbors, topology.BaseStation),
	}
	setupCache[tcfg] = s
	return s, nil
}

// ResetSetupCache drops all cached deployments. The cache is unbounded
// by design (an experiment session touches a handful of configs);
// long-lived embedders that sweep many distinct configurations can
// release the memory explicitly.
func ResetSetupCache() {
	setupMu.Lock()
	defer setupMu.Unlock()
	setupCache = map[topology.Config]*sharedSetup{}
}
