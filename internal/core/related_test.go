package core

import (
	"testing"

	"sensjoin/internal/geom"
	"sensjoin/internal/topology"
)

// All related-work baselines must return exactly the oracle result.
func TestRelatedMethodsAgreeWithOracle(t *testing.T) {
	r := testRunner(t, 150, 401)
	for _, src := range []string{qBand(0.3), qBand(2), q1} {
		x, err := r.ExecSQL(src, 0)
		if err != nil {
			t.Fatal(err)
		}
		truth, err := GroundTruth(x)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range []Method{Mediated{}, SemiJoin{}, SemiJoin{FilterSide: 1}} {
			res, err := r.Run(src, m, 0)
			if err != nil {
				t.Fatalf("%s: %v", m.Name(), err)
			}
			sameRows(t, truth.Rows, res.Rows, "truth", m.Name())
			if !res.Complete {
				t.Fatalf("%s: incomplete on healthy network", m.Name())
			}
		}
	}
}

// The paper's claim (§VI): in the general setting the external join
// outperforms the specialized methods — the mediator sits inside the
// network, so results must travel extra hops, and the semi-join floods
// the whole network with the filter relation's values.
func TestSpecializedMethodsLoseInGeneralSetting(t *testing.T) {
	r := testRunner(t, 300, 403)
	src := qBand(0.3)
	ext, _, err := runPackets(r, src, External{})
	if err != nil {
		t.Fatal(err)
	}
	med, _, err := runPackets(r, src, Mediated{})
	if err != nil {
		t.Fatal(err)
	}
	semi, _, err := runPackets(r, src, SemiJoin{})
	if err != nil {
		t.Fatal(err)
	}
	if med <= ext {
		t.Fatalf("mediated (%d) should lose to external (%d) on arbitrary placements", med, ext)
	}
	if semi <= ext {
		t.Fatalf("semi-join (%d) should lose to external (%d) on arbitrary placements", semi, ext)
	}
	t.Logf("general setting: external=%d mediated=%d semi=%d", ext, med, semi)
}

// ...and the niche where the mediated join wins: both relations confined
// to two small adjacent regions far from the base station, with a highly
// selective join. The result (few rows) travels to the base station
// instead of all the tuples.
func TestMediatedWinsInItsNiche(t *testing.T) {
	r := testRunner(t, 300, 405)
	// Members: only nodes in a small far-corner patch.
	far := r.Dep.Area.Lerp(0.85, 0.85)
	r.Member = func(id topology.NodeID, rel string) bool {
		return geom.Dist(r.Dep.Pos[id], far) < 120
	}
	src := `SELECT A.temp, B.temp FROM Sensors A, Sensors B
		WHERE A.temp - B.temp > 7 ONCE` // highly selective
	x, err := r.ExecSQL(src, 0)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := GroundTruth(x)
	if err != nil {
		t.Fatal(err)
	}
	if truth.MemberNodes < 5 {
		t.Skip("degenerate patch")
	}
	if len(truth.Rows) > truth.MemberNodes {
		t.Skipf("join not selective enough: %d rows", len(truth.Rows))
	}
	ext, _, err := runPackets(r, src, External{})
	if err != nil {
		t.Fatal(err)
	}
	med, res, err := runPackets(r, src, Mediated{})
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, truth.Rows, res.Rows, "truth", "mediated-niche")
	if med >= ext {
		t.Fatalf("mediated (%d) should beat external (%d) on clustered members with a selective join", med, ext)
	}
	t.Logf("niche setting: external=%d mediated=%d", ext, med)
}

func runPackets(r *Runner, src string, m Method) (int64, *Result, error) {
	r.Stats.Reset()
	res, err := r.Run(src, m, 0)
	if err != nil {
		return 0, nil, err
	}
	return r.Stats.TotalTx(m.Phases()...), res, nil
}

func TestSemiJoinRejectsThreeWay(t *testing.T) {
	r := testRunner(t, 40, 407)
	src := `SELECT A.temp FROM Sensors A, Sensors B, Sensors C
		WHERE abs(A.temp - B.temp) < 1 AND abs(B.temp - C.temp) < 1 ONCE`
	if _, err := r.Run(src, SemiJoin{}, 0); err == nil {
		t.Fatal("semi-join must reject three-way joins")
	}
}

func TestMediatedFailureDetection(t *testing.T) {
	r := testRunner(t, 150, 409)
	// Fail a link near the mediator region: the mediated join must
	// report incompleteness, not silently drop tuples.
	child, parent := failLink(r)
	r.Net.LinkDown(child, parent)
	// The mediated tree may route around this particular link; fail all
	// of the victim's links to force loss.
	for _, nb := range r.Dep.Neighbors[child] {
		r.Net.LinkDown(child, nb)
	}
	res, err := r.Run(qBand(0.5), Mediated{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete {
		t.Fatal("mediated join missed the lost node")
	}
}

func TestShortestPath(t *testing.T) {
	r := testRunner(t, 100, 411)
	x, err := r.ExecSQL(qBand(0.5), 0)
	if err != nil {
		t.Fatal(err)
	}
	path, err := shortestPath(x, 50, topology.BaseStation)
	if err != nil {
		t.Fatal(err)
	}
	if path[0] != 50 || path[len(path)-1] != topology.BaseStation {
		t.Fatalf("path endpoints wrong: %v", path)
	}
	// Consecutive hops must be live neighbors, and the length must equal
	// the BFS depth of node 50 plus one.
	for i := 0; i+1 < len(path); i++ {
		if !r.Net.LinkOK(path[i], path[i+1]) {
			t.Fatalf("hop %d-%d not a live link", path[i], path[i+1])
		}
	}
	if len(path) != r.Tree.Depth[50]+1 {
		t.Fatalf("path length %d, BFS depth %d", len(path), r.Tree.Depth[50])
	}
	// Unreachable target errors.
	for _, nb := range r.Dep.Neighbors[60] {
		r.Net.LinkDown(60, nb)
	}
	if _, err := shortestPath(x, 60, topology.BaseStation); err == nil {
		t.Fatal("partitioned path should fail")
	}
}

func TestMemberCentroidNode(t *testing.T) {
	r := testRunner(t, 100, 413)
	// Restrict members to a corner; the centroid node must be there.
	corner := r.Dep.Area.Lerp(0.9, 0.9)
	r.Member = func(id topology.NodeID, rel string) bool {
		return geom.Dist(r.Dep.Pos[id], corner) < 150
	}
	x, err := r.ExecSQL(qBand(0.5), 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := buildPlan(x)
	if err != nil {
		t.Fatal(err)
	}
	if p.members == 0 {
		t.Skip("no members in the corner")
	}
	med := memberCentroidNode(x, p)
	if geom.Dist(r.Dep.Pos[med], corner) > 200 {
		t.Fatalf("mediator %d at %+v, far from the member region", med, r.Dep.Pos[med])
	}
}
