package core

import (
	"sensjoin/internal/quadtree"
	"sensjoin/internal/topology"
	"sensjoin/internal/zorder"
)

// Incremental filter dissemination for continuous queries — the paper's
// stated follow-on work (§VIII: "we currently investigate if the
// filtering can be optimized for continuous queries by exploiting
// temporal correlations").
//
// Under a SAMPLE PERIOD query the filter of consecutive rounds is highly
// similar, because sensor values drift slowly. Every node therefore
// remembers the last filter it broadcast to its children; in the next
// round it transmits only the symmetric difference (adds and deletes)
// against that memory, and each child reconstructs the new filter from
// its cached copy. Sequence numbers guard the reconstruction: a child
// whose cache does not match the announced base (it was asleep after
// Treecut, its parent changed after tree repair, or a broadcast was
// lost) falls back to *assume-all* for the round — it ships its complete
// tuples unconditionally, which can only add false positives, never lose
// result tuples — and raises a need-full flag in the next collection
// phase so its parent transmits the full filter once to resynchronize.
//
// The first round degenerates to standard SENS-Join (full filters
// everywhere); steady-state rounds transmit only the drift.

// Filter message modes.
const (
	fmFull = iota
	fmDelta
	fmAssumeAll
)

// filterMsg is the Filter-Dissemination payload. Wire sizes: a full
// filter is the representation of keys; a delta is the representation of
// adds plus dels plus a 2-byte sequence header; assume-all is a 1-byte
// marker.
type filterMsg struct {
	mode    int
	seq     int
	baseSeq int
	keys    []zorder.Key // fmFull
	adds    []zorder.Key // fmDelta
	dels    []zorder.Key // fmDelta
}

// contState is the cross-round memory of the incremental mode, indexed
// by node id.
type contState struct {
	n int
	// Sender side: the content and sequence number of the node's last
	// filter broadcast.
	seq      []int
	prevSent [][]zorder.Key
	// Receiver side: the reconstructed filter cache, the sequence it
	// corresponds to, and the parent it was received from.
	cachedSeq    []int
	cached       [][]zorder.Key
	cachedParent []topology.NodeID
	// needFull is raised after a detected desynchronization and carried
	// to the parent in the next collection phase.
	needFull []bool
	// scratch is the arena for the per-epoch symmetric differences of
	// buildFilterMsg; reset once per round (see SENSJoin.Run).
	scratch diffScratch
	// Rounds counts completed executions.
	Rounds int
}

func newContState(n int) *contState {
	c := &contState{
		n:            n,
		seq:          make([]int, n),
		prevSent:     make([][]zorder.Key, n),
		cachedSeq:    make([]int, n),
		cached:       make([][]zorder.Key, n),
		cachedParent: make([]topology.NodeID, n),
		needFull:     make([]bool, n),
	}
	for i := range c.cachedSeq {
		c.cachedSeq[i] = -1
		c.cachedParent[i] = -1
	}
	return c
}

// ensure resizes (and resets) the state when the network changes.
func (c *contState) ensure(n int) *contState {
	if c == nil || c.n != n {
		return newContState(n)
	}
	return c
}

// NewContinuousSENSJoin returns SENS-Join with incremental filter
// dissemination across executions. Reuse the returned method for every
// round of a continuous query; each Run transmits filter deltas against
// the previous round.
func NewContinuousSENSJoin() *SENSJoin {
	return &SENSJoin{cont: newContState(0)}
}

// filterMsgSize computes the wire size of a filter message under the
// configured representation.
func filterMsgSize(p *plan, o Options, m *filterMsg) int {
	switch m.mode {
	case fmDelta:
		return o.Rep.SetBytes(p, m.adds) + o.Rep.SetBytes(p, m.dels) + 2
	case fmAssumeAll:
		return 1
	default:
		return o.Rep.SetBytes(p, m.keys)
	}
}

// buildFilterMsg chooses between a full filter and a delta against the
// node's previous broadcast, updating the sender-side state.
func (s *SENSJoin) buildFilterMsg(p *plan, o Options, id topology.NodeID, sub []zorder.Key, childNeedsFull bool) *filterMsg {
	if s.cont == nil {
		return &filterMsg{mode: fmFull, keys: sub}
	}
	c := s.cont
	full := &filterMsg{mode: fmFull, keys: sub, seq: c.seq[id] + 1}
	msg := full
	if !childNeedsFull && c.prevSent[id] != nil {
		delta := &filterMsg{
			mode:    fmDelta,
			seq:     c.seq[id] + 1,
			baseSeq: c.seq[id],
			adds:    c.scratch.diff(sub, c.prevSent[id]),
			dels:    c.scratch.diff(c.prevSent[id], sub),
		}
		if filterMsgSize(p, o, delta) < filterMsgSize(p, o, full) {
			msg = delta
		}
	}
	c.seq[id]++
	c.prevSent[id] = sub
	return msg
}

// applyFilterMsg reconstructs the round's filter at a receiving node.
// ok is false when the node must fall back to assume-all.
func (s *SENSJoin) applyFilterMsg(id topology.NodeID, from topology.NodeID, m *filterMsg) (filter []zorder.Key, ok bool) {
	if s.cont == nil {
		return m.keys, true
	}
	c := s.cont
	switch m.mode {
	case fmFull:
		c.cached[id] = m.keys
		c.cachedSeq[id] = m.seq
		c.cachedParent[id] = from
		c.needFull[id] = false
		return m.keys, true
	case fmDelta:
		if c.cachedParent[id] != from || c.cachedSeq[id] != m.baseSeq {
			c.needFull[id] = true
			return nil, false
		}
		f := quadtree.UnionKeys(c.cached[id], m.adds)
		f = diffKeys(f, m.dels)
		c.cached[id] = f
		c.cachedSeq[id] = m.seq
		c.needFull[id] = false
		return f, true
	default: // fmAssumeAll
		c.needFull[id] = true
		return nil, false
	}
}

// diffKeys returns a \ b over sorted key sets in a freshly allocated
// slice. Use it when the result outlives the round (applyFilterMsg
// caches its reconstruction across epochs); transient per-epoch
// differences go through diffScratch.diff instead.
func diffKeys(a, b []zorder.Key) []zorder.Key {
	return diffKeysInto(make([]zorder.Key, 0, len(a)), a, b)
}

func diffKeysInto(out, a, b []zorder.Key) []zorder.Key {
	i, j := 0, 0
	for i < len(a) {
		switch {
		case j >= len(b) || a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			j++
		default:
			i++
			j++
		}
	}
	return out
}

// diffScratch is a grow-only arena for the symmetric differences
// buildFilterMsg computes every epoch at every forwarding node. Deltas
// live only until their filterMsg is consumed within the round, so one
// arena reset per round replaces two slice allocations per node per
// epoch. Results are capped subslices: later diffs append past them and
// can never alias earlier ones, even when growth reallocates the
// backing array (the old array keeps the old subslices alive).
type diffScratch struct {
	buf []zorder.Key
}

// reset recycles the arena at the start of a round. Callers must not
// retain diffs across a reset.
func (d *diffScratch) reset() {
	d.buf = d.buf[:0]
}

// diff returns a \ b over sorted key sets, backed by the arena.
func (d *diffScratch) diff(a, b []zorder.Key) []zorder.Key {
	start := len(d.buf)
	d.buf = diffKeysInto(d.buf, a, b)
	return d.buf[start:len(d.buf):len(d.buf)]
}
