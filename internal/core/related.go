package core

import (
	"fmt"
	"math"

	"sensjoin/internal/geom"
	"sensjoin/internal/netsim"
	"sensjoin/internal/quadtree"
	"sensjoin/internal/query"
	"sensjoin/internal/routing"
	"sensjoin/internal/topology"
	"sensjoin/internal/zorder"
)

// Related-work baselines (paper §II). The paper states that "the
// external join outperforms the specialized join methods mentioned in
// Section II in each of our experiments" because those methods need very
// specific scenarios. These implementations let the harness verify that
// claim — and exhibit the niches where the specialized methods do win.

// Accounting phases of the related-work baselines.
const (
	PhaseMediatedCollect = "mediated-collect"
	PhaseMediatedResult  = "mediated-result"
	PhaseSemiCollectA    = "semi-collect-a"
	PhaseSemiFlood       = "semi-flood"
	PhaseSemiCollectB    = "semi-collect-b"
)

// MediatedPhases lists the phases of the mediated join.
var MediatedPhases = []string{PhaseMediatedCollect, PhaseMediatedResult}

// SemiJoinPhases lists the phases of the in-network semi-join.
var SemiJoinPhases = []string{PhaseSemiCollectA, PhaseSemiFlood, PhaseSemiCollectB}

// collectWave runs a TAG-style collection of complete tuples along an
// arbitrary tree: every member node ships its tuple toward the root,
// relays aggregate. It returns the tuples gathered at the root. Handlers
// are installed for the wave's duration.
func collectWave(x *Exec, p *plan, tree *routing.Tree, phase string, include func(topology.NodeID) bool) []finalTuple {
	n := x.Net.N()
	start := x.Sim.Now()
	slot := collectionSlot(x, p)
	inbox := make([][]finalTuple, n)
	for i := 0; i < n; i++ {
		id := topology.NodeID(i)
		x.Net.SetHandler(id, func(m netsim.Message) {
			if m.Kind != kindFinal {
				return
			}
			pl := m.Payload.([]finalTuple)
			if inbox[id] == nil {
				// Adopt the first child's slice: the sender abandons it
				// at Send (and its inbox reference right after), so
				// ownership transfers without copying — near the root
				// this saves re-copying whole subtrees.
				inbox[id] = pl
				return
			}
			inbox[id] = append(inbox[id], pl...)
		})
	}
	for i := 0; i < n; i++ {
		id := topology.NodeID(i)
		if id == tree.Root || !tree.Reachable(id) {
			continue
		}
		deadline := start + float64(tree.MaxDepth-tree.Depth[id])*slot
		x.Sim.ScheduleNode(id, id, deadline, func() {
			tuples := inbox[id]
			if p.nodes[id] != nil && (include == nil || include(id)) {
				tuples = append(tuples, p.tuple(id))
			}
			if len(tuples) == 0 {
				return
			}
			size := 0
			for _, t := range tuples {
				size += t.bytes
			}
			x.Net.Send(netsim.Message{
				Kind: kindFinal, Src: id, Dst: tree.Parent[id],
				Phase: phase, Size: size, Payload: tuples,
			})
			// The subtree's tuples now live in the in-flight payload
			// (soon adopted or copied by the parent); dropping this
			// reference keeps the wave's live memory proportional to
			// the frontier instead of O(nodes × depth).
			inbox[id] = nil
		})
	}
	x.Sim.RunUntil(start + float64(tree.MaxDepth+1)*slot)
	return inbox[tree.Root]
}

// shortestPath returns the hop path from a to b over live links.
func shortestPath(x *Exec, a, b topology.NodeID) ([]topology.NodeID, error) {
	nb := x.Net.LiveNeighbors()
	prev := make([]topology.NodeID, len(nb))
	for i := range prev {
		prev[i] = -2
	}
	prev[a] = -1
	queue := []topology.NodeID{a}
	for len(queue) > 0 && prev[b] == -2 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range nb[u] {
			if prev[v] == -2 {
				prev[v] = u
				queue = append(queue, v)
			}
		}
	}
	if prev[b] == -2 {
		return nil, fmt.Errorf("core: no path from %d to %d", a, b)
	}
	var path []topology.NodeID
	for v := b; v != -1; v = prev[v] {
		path = append(path, v)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, nil
}

// Mediated is the "mediated join" of Coman et al. ([8], §II): all input
// tuples travel to a mediator node inside the network (the member
// centroid), the join is computed there, and the result rows travel to
// the base station. It is only efficient when the input relations sit in
// small regions near each other (relative to the base station) and the
// join is highly selective — exactly the niche the paper describes.
type Mediated struct {
	// Mediator fixes the mediator node; 0 selects the node closest to
	// the member centroid.
	Mediator topology.NodeID
}

// Name implements Method.
func (Mediated) Name() string { return "mediated-join" }

// Phases implements Method.
func (Mediated) Phases() []string { return MediatedPhases }

// Run implements Method.
func (m Mediated) Run(x *Exec) (*Result, error) {
	if err := validateAliasCount(x); err != nil {
		return nil, err
	}
	p, err := buildPlan(x)
	if err != nil {
		return nil, err
	}
	start := x.Sim.Now()

	mediator := m.Mediator
	if mediator == 0 {
		mediator = memberCentroidNode(x, p)
	}
	medTree := routing.BuildTree(x.Net.LiveNeighbors(), mediator)

	// Phase 1: collect every member tuple at the mediator.
	tuples := collectWave(x, p, medTree, PhaseMediatedCollect, nil)
	if p.nodes[mediator] != nil {
		tuples = append(tuples, p.tuple(mediator))
	}

	// Phase 2: join at the mediator; ship the result rows to the base
	// station hop by hop.
	rows, contrib := exactJoin(x, tuples)
	if len(rows) > 0 && mediator != topology.BaseStation {
		path, err := shortestPath(x, mediator, topology.BaseStation)
		if err != nil {
			return nil, err
		}
		rowBytes := len(x.Query.Select) * 2
		size := len(rows) * rowBytes
		for i := 0; i+1 < len(path); i++ {
			x.Net.Send(netsim.Message{
				Kind: kindResult, Src: path[i], Dst: path[i+1],
				Phase: PhaseMediatedResult, Size: size, Payload: nil,
			})
		}
	}
	x.Sim.Run()
	return &Result{
		Columns:           columnsOf(x.Query),
		Rows:              rows,
		ContributingNodes: len(contrib),
		MemberNodes:       p.members,
		Complete:          len(tuples) == p.members,
		ResponseTime:      x.Sim.Now() - start,
	}, nil
}

// memberCentroidNode picks the member node nearest to the centroid of
// all member positions.
func memberCentroidNode(x *Exec, p *plan) topology.NodeID {
	var cx, cy float64
	count := 0
	for id, nd := range p.nodes {
		if nd != nil {
			cx += x.Dep.Pos[id].X
			cy += x.Dep.Pos[id].Y
			count++
		}
	}
	if count == 0 {
		return topology.BaseStation
	}
	c := geom.Point{X: cx / float64(count), Y: cy / float64(count)}
	best := topology.BaseStation
	bestD := math.Inf(1)
	for id, nd := range p.nodes {
		if nd == nil {
			continue
		}
		if d := geom.Dist2(x.Dep.Pos[id], c); d < bestD {
			bestD = d
			best = topology.NodeID(id)
		}
	}
	return best
}

// SemiJoin is the in-network semi-join in the style of Coman et al.'s
// second method and Yu et al. [9] (§II): the join-attribute values of
// one relation are collected and broadcast over the nodes of the other
// relation, which then ship only their matching tuples; the first
// relation's tuples are shipped in full. SENS-Join differs by filtering
// *both* relations and by its compact pre-computation.
type SemiJoin struct {
	// FilterSide is the FROM index whose join-attribute values act as
	// the filter (default 0: relation A filters relation B).
	FilterSide int
}

// Name implements Method.
func (SemiJoin) Name() string { return "semi-join" }

// Phases implements Method.
func (SemiJoin) Phases() []string { return SemiJoinPhases }

// Run implements Method.
func (s SemiJoin) Run(x *Exec) (*Result, error) {
	if err := validateAliasCount(x); err != nil {
		return nil, err
	}
	if len(x.Query.From) != 2 {
		return nil, fmt.Errorf("core: semi-join handles exactly two relations, got %d", len(x.Query.From))
	}
	p, err := buildPlan(x)
	if err != nil {
		return nil, err
	}
	if p.grid == nil {
		return nil, fmt.Errorf("core: query has no join attributes; semi-join needs join conditions")
	}
	start := x.Sim.Now()
	n := len(x.Query.From)
	aSide := s.FilterSide
	bSide := 1 - aSide
	aFlag := zorder.FlagFor(aSide, n)
	bFlag := zorder.FlagFor(bSide, n)

	// Phase 1: relation A's complete tuples to the base station (they
	// are all needed for the final join anyway).
	aTuples := collectWave(x, p, x.Tree, PhaseSemiCollectA, func(id topology.NodeID) bool {
		return p.nodes[id].flags&aFlag != 0
	})

	// The filter: A's join-attribute keys, re-flagged to the A side
	// only, deduplicated and quadtree-encoded for the flood.
	var aKeys []zorder.Key
	for _, t := range aTuples {
		if t.flags&aFlag != 0 {
			aKeys = append(aKeys, p.grid.WithFlags(p.keyOf(t), aFlag))
		}
	}
	aKeys = quadtree.NormalizeKeys(aKeys)
	floodSize := p.codec().Encode(aKeys).ByteLen()

	// Phase 2: flood A's join-attribute values over the whole network
	// (the semi-join has no subtree knowledge to prune with).
	if len(aKeys) > 0 {
		seen := make([]bool, x.Net.N())
		for i := 0; i < x.Net.N(); i++ {
			id := topology.NodeID(i)
			x.Net.SetHandler(id, func(m netsim.Message) {
				if m.Kind != kindFilter || seen[id] {
					return
				}
				seen[id] = true
				x.Net.Send(netsim.Message{
					Kind: kindFilter, Src: id, Dst: netsim.BroadcastID,
					Phase: PhaseSemiFlood, Size: floodSize,
				})
			})
		}
		seen[topology.BaseStation] = true
		x.Net.Send(netsim.Message{
			Kind: kindFilter, Src: topology.BaseStation, Dst: netsim.BroadcastID,
			Phase: PhaseSemiFlood, Size: floodSize,
		})
		x.Sim.Run()
	}

	// Phase 3: B nodes whose key possibly matches some A key ship their
	// tuples. Nodes that already shipped as members of A (self-joins)
	// are excluded: their tuples sit at the base station. The match
	// check mirrors the base station's tri-state join.
	matches := func(id topology.NodeID) bool {
		nd := p.nodes[id]
		if nd.flags&bFlag == 0 || nd.flags&aFlag != 0 {
			return false
		}
		return semiMatches(p, nd.key, aKeys, aSide, bSide)
	}
	bTuples := collectWave(x, p, x.Tree, PhaseSemiCollectB, matches)

	all := append(append([]finalTuple(nil), aTuples...), bTuples...)
	rows, contrib := exactJoin(x, all)
	aMembers := 0
	for _, nd := range p.nodes {
		if nd != nil && nd.flags&aFlag != 0 {
			aMembers++
		}
	}
	return &Result{
		Columns:           columnsOf(x.Query),
		Rows:              rows,
		ContributingNodes: len(contrib),
		MemberNodes:       p.members,
		Complete:          len(aTuples) == aMembers,
		ResponseTime:      x.Sim.Now() - start,
	}, nil
}

// semiMatches checks whether a B-side key possibly joins any A-side key
// under the query's join conditions (tri-state, like the base station).
func semiMatches(p *plan, bKey zorder.Key, aKeys []zorder.Key, aSide, bSide int) bool {
	x := p.x
	assignment := make([]zorder.Key, len(x.Query.From))
	benv := query.CellEnv{Lookup: func(rel int, name string) query.Interval {
		return p.cellOf(assignment[rel], name)
	}}
	assignment[bSide] = bKey
	for _, ak := range aKeys {
		assignment[aSide] = ak
		ok := true
		for _, c := range x.Analysis.JoinConds {
			if !c.Truth(benv).Possible() {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}
