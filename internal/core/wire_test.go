package core

import (
	"testing"

	"sensjoin/internal/topology"
	"sensjoin/internal/wire"
)

// The sizes the accounting charges must be achievable byte encodings:
// every complete tuple marshals to exactly its accounted size via the
// schema's fixed-point codecs, and the quadtree payload is already the
// literal wire bitstring.
func TestAccountedSizesAreEncodable(t *testing.T) {
	r := testRunner(t, 120, 801)
	x, err := r.ExecSQL(qBand(0.4), 0)
	if err != nil {
		t.Fatal(err)
	}
	p, err := buildPlan(x)
	if err != nil {
		t.Fatal(err)
	}
	schema := r.Catalog["Sensors"]
	for id := 1; id < r.Dep.N(); id++ {
		nd := p.nodes[id]
		if nd == nil {
			continue
		}
		shipped := p.shipped(nd.flags)
		tc := wire.TupleCodec{}
		vals := make([]float64, 0, len(shipped))
		for _, name := range shipped {
			def, err := schema.Attr(name)
			if err != nil {
				t.Fatal(err)
			}
			tc.Attrs = append(tc.Attrs, wire.AttrCodec{Min: def.Min, Max: def.Max})
			vals = append(vals, nd.vals[name])
		}
		b, err := tc.MarshalBatch([][]float64{vals})
		if err != nil {
			t.Fatal(err)
		}
		if len(b) != nd.tupleBytes {
			t.Fatalf("node %d: marshalled %d bytes, accounted %d", id, len(b), nd.tupleBytes)
		}
		// The fixed-point roundtrip stays within each attribute's native
		// step, far below the join-attribute quantization resolution.
		back, err := tc.UnmarshalBatch(b, 1)
		if err != nil {
			t.Fatal(err)
		}
		for j, v := range back[0] {
			if d := v - vals[j]; d > tc.Attrs[j].Step() || d < -tc.Attrs[j].Step() {
				t.Fatalf("node %d attr %d drifted by %g", id, j, d)
			}
		}
	}
	// Quadtree payloads: the accounted size IS the bitstring length.
	encoded := p.codec().Encode(keysOfPlan(p))
	if encoded.ByteLen() != (QuadRep{}).SetBytes(p, keysOfPlan(p)) {
		t.Fatal("quad accounting does not equal the literal encoding")
	}
	_ = topology.BaseStation
}

func keysOfPlan(p *plan) []uint64 {
	var keys []uint64
	for _, nd := range p.nodes {
		if nd != nil {
			keys = append(keys, nd.key)
		}
	}
	return keys
}
