package core

import (
	"fmt"

	"sensjoin/internal/field"
	"sensjoin/internal/metrics"
	"sensjoin/internal/netsim"
	"sensjoin/internal/query"
	"sensjoin/internal/relation"
	"sensjoin/internal/routing"
	"sensjoin/internal/stats"
	"sensjoin/internal/topology"
	"sensjoin/internal/trace"
)

// SetupConfig describes a simulated deployment for the Runner.
type SetupConfig struct {
	// Nodes is the sensor node count (paper default: 1500).
	Nodes int
	// Area is the deployment region; zero means an area scaled to the
	// paper's density for Nodes.
	Area topology.Config
	// Radio is the packet model; zero fields mean the paper defaults.
	Radio netsim.RadioConfig
	// Seed makes the run reproducible.
	Seed int64
	// Base selects base-station placement.
	Base topology.BasePlacement
	// Private opts out of the shared deployment cache (see cache.go):
	// the runner gets its own freshly generated Deployment, Environment
	// and Tree that callers may mutate. The default (shared) is correct
	// for all callers that treat them as read-only, which is everything
	// in this repository.
	Private bool
	// Shards > 1 partitions the simulator into that many spatial regions
	// executed in parallel under conservative time-window
	// synchronization (see netsim/shard.go). Results are bit-identical
	// for any shard count, and tracing and live metrics compose with it
	// (journals come out byte-identical to a classic run); enabling
	// reliable transport, the loss model or churn reverts the runner to
	// the classic engine.
	Shards int
	// ShardWorkers bounds the goroutines running one synchronization
	// window (0 = one per shard, capped by GOMAXPROCS).
	ShardWorkers int
	// SetupWorkers parallelizes the setup path — node placement's
	// neighbor scan, tree construction, per-node plan building — without
	// changing any output (0/1 = sequential). Only honored for Private
	// runners: shared deployments come from the cache.
	SetupWorkers int
}

// Runner owns a simulated deployment and executes queries on it with any
// join method. It is the integration point used by tests, the experiment
// harness and the public API.
type Runner struct {
	Dep     *topology.Deployment
	Env     *field.Environment
	Catalog relation.Catalog
	Sim     *netsim.Sim
	Net     *netsim.Network
	Tree    *routing.Tree
	Stats   *stats.Collector
	// Member decides relation membership (nil = homogeneous).
	Member relation.Membership

	// Trace records execution journals once EnableTrace is called; nil
	// keeps the radio hot path allocation-free.
	Trace *trace.Recorder
	// Metrics holds the protocol instruments once EnableMetrics is
	// called; nil keeps every hook a no-op.
	Metrics *CoreMetrics
	// treeDepth is the live tree-depth gauge (nil when metrics are off).
	treeDepth *metrics.Gauge
	// AutoAudit makes every Run audit itself: each execution's journal
	// segment is checked (conservation, reconciliation, slot order,
	// filter soundness, churn safety) and violations turn into errors.
	// The journal is truncated after each run to bound memory.
	AutoAudit bool
	// workers is SetupConfig.SetupWorkers, forwarded to each Exec.
	workers int
	// repair arms mid-round tree repair (EnableMidRoundRepair).
	repair bool
	// churn is the attached fault injector, nil without AttachChurn.
	churn *netsim.Churn
	// reg remembers the registry EnableMetrics wired, so features
	// enabled later (AttachChurn) can register their instruments too.
	reg *metrics.Registry
}

// NewRunner builds a connected deployment, its environment, the standard
// catalog, and a fresh simulator with routing tree.
func NewRunner(cfg SetupConfig) (*Runner, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("core: node count %d invalid", cfg.Nodes)
	}
	tcfg := cfg.Area
	if tcfg.Range == 0 {
		tcfg.Range = 50
	}
	if tcfg.Area.Width() == 0 {
		tcfg.Area = topology.ScaledArea(cfg.Nodes)
	}
	tcfg.Nodes = cfg.Nodes
	tcfg.Seed = cfg.Seed
	tcfg.Base = cfg.Base
	var (
		dep  *topology.Deployment
		env  *field.Environment
		tree *routing.Tree
	)
	if cfg.Private {
		var err error
		dep, err = topology.GenerateParallel(tcfg, cfg.SetupWorkers)
		if err != nil {
			return nil, err
		}
		env = field.StandardEnvironment(dep.Area, cfg.Seed+1000)
		tree = routing.BuildTreeParallel(dep.Neighbors, topology.BaseStation, cfg.SetupWorkers)
	} else {
		shared, err := sharedSetupFor(tcfg)
		if err != nil {
			return nil, err
		}
		dep, env, tree = shared.dep, shared.env, shared.tree
	}
	return NewRunnerFromSetup(dep, env, tree, cfg), nil
}

// NewRunnerFromSetup assembles a runner around already-built setup
// artifacts — the scale harness generates one deployment and reuses it
// across shard counts. Only the Radio, Shards, ShardWorkers and
// SetupWorkers fields of cfg apply.
func NewRunnerFromSetup(dep *topology.Deployment, env *field.Environment, tree *routing.Tree, cfg SetupConfig) *Runner {
	radio := cfg.Radio
	if radio.MaxPacket == 0 {
		radio = netsim.DefaultRadio()
	}
	schema := relation.StandardSchema(dep.Area)
	sim := netsim.NewSim()
	coll := stats.NewCollector(dep.N())
	net := netsim.NewNetwork(sim, dep, radio, coll)
	r := &Runner{
		Dep:     dep,
		Env:     env,
		Catalog: relation.Catalog{schema.Name: schema},
		Sim:     sim,
		Net:     net,
		Tree:    tree,
		Stats:   coll,
		workers: cfg.SetupWorkers,
	}
	if cfg.Shards > 1 {
		// Lookahead: the air time of one empty packet, the minimum
		// latency of any cross-node interaction.
		sim.EnableSharding(netsim.PartitionStrips(dep, cfg.Shards), cfg.Shards,
			radio.AirTime(1, 0), cfg.ShardWorkers)
		net.BindSharding()
	}
	return r
}

// disableSharding reverts this runner to the classic engine; called by
// every feature whose hot path is incompatible with parallel regions.
func (r *Runner) disableSharding() {
	r.Sim.DisableSharding()
	r.Net.BindSharding()
}

// NewRunnerFromDeployment wraps an existing deployment (tests use
// hand-built topologies such as lines and stars).
func NewRunnerFromDeployment(dep *topology.Deployment, radio netsim.RadioConfig, seed int64) *Runner {
	if radio.MaxPacket == 0 {
		radio = netsim.DefaultRadio()
	}
	schema := relation.StandardSchema(dep.Area)
	sim := netsim.NewSim()
	coll := stats.NewCollector(dep.N())
	return &Runner{
		Dep:     dep,
		Env:     field.StandardEnvironment(dep.Area, seed),
		Catalog: relation.Catalog{schema.Name: schema},
		Sim:     sim,
		Net:     netsim.NewNetwork(sim, dep, radio, coll),
		Tree:    routing.BuildTree(dep.Neighbors, topology.BaseStation),
		Stats:   coll,
	}
}

// Exec assembles an execution context for a parsed query at time t.
func (r *Runner) Exec(q *query.Query, t float64) (*Exec, error) {
	x, err := NewExec(r.Sim, r.Net, r.Tree, r.Stats, r.Dep, r.Env, r.Catalog, q, t)
	if err != nil {
		return nil, err
	}
	x.Member = r.Member
	x.Trace = r.Trace
	x.Metrics = r.Metrics
	x.Workers = r.workers
	x.Repair = r.repair
	x.onTreeSwap = func(t *routing.Tree) {
		r.Tree = t
		r.treeDepth.Set(int64(t.MaxDepth))
	}
	return x, nil
}

// ExecSQL parses src and assembles an execution context at time t.
func (r *Runner) ExecSQL(src string, t float64) (*Exec, error) {
	q, err := query.Parse(src)
	if err != nil {
		return nil, err
	}
	return r.Exec(q, t)
}

// Run executes a query with the given method at time t. With AutoAudit
// set, the execution's journal is audited and violations become errors.
func (r *Runner) Run(src string, m Method, t float64) (*Result, error) {
	if r.Metrics != nil {
		r.Metrics.Runs.Inc()
	}
	if r.AutoAudit {
		res, violations, err := r.AuditRun(src, m, t)
		if err != nil {
			return nil, err
		}
		if len(violations) > 0 {
			return nil, fmt.Errorf("core: %s audit: %d violation(s), first: %s",
				m.Name(), len(violations), violations[0])
		}
		return res, nil
	}
	x, err := r.ExecSQL(src, t)
	if err != nil {
		return nil, err
	}
	return m.Run(x)
}

// EnableMetrics wires the whole stack of this runner — event loop,
// radio, reliable transport and protocol spans — into live instruments
// on reg. Many runners may share one registry: counters accumulate
// across them (the experiment fan-out does exactly this). A nil
// registry disables everything again.
func (r *Runner) EnableMetrics(reg *metrics.Registry) {
	r.reg = reg
	r.Sim.SetMetrics(netsim.NewSimMetrics(reg))
	r.Net.SetMetrics(netsim.NewNetMetrics(reg))
	r.Metrics = NewMetrics(reg)
	r.treeDepth = reg.Gauge("sensjoin_routing_tree_depth", "routing tree depth (largest hop count)")
	r.treeDepth.Set(int64(r.Tree.MaxDepth))
	if r.churn != nil {
		r.churn.SetMetrics(netsim.NewChurnMetrics(reg))
	}
}

// RebuildTree re-forms the routing tree over the currently live links,
// standing in for the collection-tree protocol's repair (§IV-F). The
// equivalent beaconing protocol is in package routing; the experiment
// harness uses the instant rebuild for determinism.
func (r *Runner) RebuildTree() {
	r.Tree = routing.BuildTree(r.Net.LiveNeighbors(), topology.BaseStation)
	r.treeDepth.Set(int64(r.Tree.MaxDepth))
}

// RebuildTreeAvoidingFailures re-forms the tree like RebuildTree, but
// steers around directed links whose reliable-transport retransmissions
// exhausted since the last rebuild — persistent link failure detected by
// the transport itself. The exhaustion record is consumed: the next
// rebuild trusts the links again unless they fail again. Without
// reliable transport (no exhaustion records) it is plain RebuildTree.
func (r *Runner) RebuildTreeAvoidingFailures() {
	bad := r.Net.ExhaustedLinks()
	if len(bad) == 0 {
		r.RebuildTree()
		return
	}
	avoid := func(parent, child topology.NodeID) bool {
		return bad[netsim.Link{From: parent, To: child}] > 0 ||
			bad[netsim.Link{From: child, To: parent}] > 0
	}
	r.Tree = routing.BuildTreeAvoiding(r.Net.LiveNeighbors(), topology.BaseStation, avoid)
	r.treeDepth.Set(int64(r.Tree.MaxDepth))
	r.Net.ClearExhaustedLinks()
}

// EnableReliableTransport switches all unicast traffic to hop-by-hop
// reliable delivery (ACKs, bounded retransmissions, duplicate
// suppression; see netsim) and arms scoped recovery in the join methods.
func (r *Runner) EnableReliableTransport(cfg netsim.ReliableConfig) {
	r.disableSharding()
	r.Net.EnableReliable(cfg)
}

// RunWithRecovery executes the query and, when failures made the result
// incomplete, repairs the routing tree and re-executes — the paper's
// error handling (§IV-F: "we rely upon the tree protocol to re-establish
// the routing structure; afterwards, we simply re-execute the query").
// All attempts are charged to the collector. It returns the final result
// and the number of executions; on the give-up path the count is exactly
// maxAttempts and the result carries MissingSubtrees and
// IncompleteReason, with no trailing tree rebuild.
func (r *Runner) RunWithRecovery(src string, m Method, t float64, maxAttempts int) (*Result, int, error) {
	if maxAttempts <= 0 {
		maxAttempts = 3
	}
	for attempt := 1; ; attempt++ {
		res, err := r.Run(src, m, t)
		if err != nil {
			return nil, attempt, err
		}
		if res.Complete || attempt == maxAttempts {
			return res, attempt, nil
		}
		r.RebuildTreeAvoidingFailures()
		r.Trace.Span(r.Sim.Now(), trace.KindRecovery, topology.BaseStation, -1, "", attempt)
	}
}
