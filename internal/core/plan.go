package core

import (
	"fmt"
	"sort"
	"sync"

	"sensjoin/internal/quadtree"
	"sensjoin/internal/query"
	"sensjoin/internal/relation"
	"sensjoin/internal/topology"
	"sensjoin/internal/zorder"
)

// nodeData is the per-node view of one execution: which aliases the node
// contributes to, its sensor values, its quantized join-attribute key,
// and the wire size of its complete (shipped) tuple.
type nodeData struct {
	// flags has bit zorder.FlagFor(i, nAliases) set when the node
	// belongs to FROM entry i and passes its local predicates.
	flags uint64
	// vals maps attribute names to the sampled values (shipped and
	// join attributes).
	vals map[string]float64
	// key is the quantized join-attribute tuple (valid when flags != 0
	// and the query has join attributes).
	key zorder.Key
	// tupleBytes is the wire size of the node's complete tuple
	// restricted to the query's shipped attributes.
	tupleBytes int
}

// plan is the global, per-execution view shared by the join engines.
type plan struct {
	x    *Exec
	grid *zorder.Grid
	// dims lists the join-attribute dimension names in grid order.
	dims []string
	// dimIndex maps a dimension name to its grid index.
	dimIndex map[string]int
	// nodes[id] is nil for the base station and for nodes that belong
	// to no relation.
	nodes []*nodeData
	// shippedByFlags caches the sorted attribute union per flag mask.
	shippedByFlags map[uint64][]string
	// members counts nodes with non-zero flags.
	members int
	// rawTupleBytes is the wire size of one raw (unquantized)
	// join-attribute tuple: 2 bytes per dimension.
	rawTupleBytes int
	// qt is the lazily built quadtree codec for grid.
	qt *quadtree.Codec
}

// buildPlan samples the snapshot (each sensor read exactly once, §IV-D)
// and derives every node's flags, key and tuple size.
func buildPlan(x *Exec) (*plan, error) {
	n := len(x.Query.From)
	a := x.Analysis

	// Join-attribute dimensions: the union of join-attribute names over
	// all FROM entries, quantized per the first schema defining them.
	var dims []zorder.Dim
	dimIndex := make(map[string]int)
	var dimNames []string
	nameSet := make(map[string]bool)
	for i := range x.Query.From {
		for _, name := range a.JoinAttrs[i] {
			nameSet[name] = true
		}
	}
	for name := range nameSet {
		dimNames = append(dimNames, name)
	}
	sort.Strings(dimNames)
	for _, name := range dimNames {
		def, err := findAttrDef(x, name)
		if err != nil {
			return nil, err
		}
		d, err := zorder.NewDim(name, def.Min, def.Max, def.Res)
		if err != nil {
			return nil, err
		}
		dimIndex[name] = len(dims)
		dims = append(dims, d)
	}
	var grid *zorder.Grid
	if len(dims) > 0 {
		var err error
		grid, err = zorder.NewGrid(n, dims)
		if err != nil {
			return nil, err
		}
	}

	p := &plan{
		x:              x,
		grid:           grid,
		dims:           dimNames,
		dimIndex:       dimIndex,
		nodes:          make([]*nodeData, x.Dep.N()),
		shippedByFlags: make(map[uint64][]string),
		rawTupleBytes:  relation.TupleBytes(len(dimNames)),
	}
	if grid != nil {
		// Build the quadtree codec up front: under the sharded simulator
		// region workers reach it concurrently, so the lazy init in
		// codec() must never fire during a run.
		p.codec()
	}

	// Attributes any member node may need: shipped plus join attrs.
	needed := make(map[string]bool)
	for i := range x.Query.From {
		for _, name := range a.ShippedAttrs[i] {
			needed[name] = true
		}
	}
	for _, name := range dimNames {
		needed[name] = true
	}

	// fill samples one node; it writes only p.nodes[id] and reports
	// whether the node is a member. All reads (environment, catalog,
	// predicates, the pre-warmed shipped cache) are concurrency-safe, so
	// disjoint id ranges can run in parallel.
	fill := func(id int) (bool, error) {
		nid := topology.NodeID(id)
		if x.Net != nil && !x.Net.Alive(nid) {
			return false, nil // a dead node contributes no tuple
		}
		var flags uint64
		vals := make(map[string]float64, len(needed))
		read := func(name string) float64 {
			v, ok := vals[name]
			if !ok {
				v = x.Env.Read(name, x.Dep.Pos[id], x.Time)
				vals[name] = v
			}
			return v
		}
		for i, ref := range x.Query.From {
			if x.Member != nil && !x.Member(nid, ref.Relation) {
				continue
			}
			if _, err := x.Catalog.Lookup(ref.Relation); err != nil {
				return false, err
			}
			pred := a.LocalPredicate(i)
			if pred != nil {
				env := query.SingleEnv{Rel: i, Lookup: read}
				if !pred.Eval(env) {
					continue
				}
			}
			flags |= zorder.FlagFor(i, n)
		}
		if flags == 0 {
			return false, nil
		}
		for name := range needed {
			read(name)
		}
		nd := &nodeData{flags: flags, vals: vals}
		if grid != nil {
			joinVals := make([]float64, len(dimNames))
			for j, name := range dimNames {
				joinVals[j] = vals[name]
			}
			nd.key = grid.Encode(flags, joinVals)
		}
		nd.tupleBytes = relation.TupleBytes(len(p.shipped(flags)))
		p.nodes[id] = nd
		return true, nil
	}

	total := x.Dep.N()
	workers := x.Workers
	// Membership callbacks are arbitrary user code with no thread-safety
	// contract, so they force the sequential path.
	if workers > 1 && total >= 4096 && n <= 8 && x.Member == nil {
		// Pre-warm the shipped cache for every possible mask: the
		// parallel workers then only read it.
		for mask := uint64(1); mask < uint64(1)<<n; mask++ {
			p.shipped(mask)
		}
		chunk := (total - 1 + workers - 1) / workers
		counts := make([]int, workers)
		errs := make([]error, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := 1 + w*chunk
			hi := lo + chunk
			if lo > total {
				lo = total
			}
			if hi > total {
				hi = total
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				for id := lo; id < hi; id++ {
					member, err := fill(id)
					if err != nil {
						errs[w] = err
						return
					}
					if member {
						counts[w]++
					}
				}
			}(w, lo, hi)
		}
		wg.Wait()
		for w := 0; w < workers; w++ {
			if errs[w] != nil {
				return nil, errs[w]
			}
			p.members += counts[w]
		}
		return p, nil
	}
	for id := 1; id < total; id++ {
		member, err := fill(id)
		if err != nil {
			return nil, err
		}
		if member {
			p.members++
		}
	}
	return p, nil
}

// findAttrDef locates the quantization of an attribute among the query's
// relations.
func findAttrDef(x *Exec, name string) (relation.AttrDef, error) {
	for _, ref := range x.Query.From {
		s, err := x.Catalog.Lookup(ref.Relation)
		if err != nil {
			continue
		}
		if def, err := s.Attr(name); err == nil {
			return def, nil
		}
	}
	return relation.AttrDef{}, fmt.Errorf("core: no relation of the query defines attribute %q", name)
}

// shipped returns the sorted union of shipped attributes over the aliases
// set in flags.
func (p *plan) shipped(flags uint64) []string {
	if s, ok := p.shippedByFlags[flags]; ok {
		return s
	}
	n := len(p.x.Query.From)
	set := make(map[string]bool)
	for i := 0; i < n; i++ {
		if flags&zorder.FlagFor(i, n) != 0 {
			for _, name := range p.x.Analysis.ShippedAttrs[i] {
				set[name] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	p.shippedByFlags[flags] = out
	return out
}

// tuple materializes the complete (shipped) tuple of a node for the final
// result computation.
func (p *plan) tuple(id topology.NodeID) finalTuple {
	nd := p.nodes[id]
	return finalTuple{node: id, flags: nd.flags, vals: nd.vals, bytes: nd.tupleBytes}
}

// finalTuple is a complete tuple in flight to the base station. Only
// bytes is wire-visible; the rest is simulator-side content.
type finalTuple struct {
	node  topology.NodeID
	flags uint64
	vals  map[string]float64
	bytes int
}

// expandStar rewrites SELECT * into one item per attribute per FROM
// entry, qualified by alias, in schema order.
func expandStar(q *query.Query, cat relation.Catalog) error {
	if !q.Star {
		return nil
	}
	var items []query.SelectItem
	for i, ref := range q.From {
		s, err := cat.Lookup(ref.Relation)
		if err != nil {
			return err
		}
		for _, attr := range s.Attrs {
			items = append(items, query.SelectItem{
				Expr: query.Attr{Ref: query.AttrRef{Alias: ref.Alias, Name: attr.Name, Rel: i}},
			})
		}
	}
	q.Star = false
	q.Select = items
	return nil
}

// forExec returns a shallow copy of the plan bound to another execution
// context. Shared-execution cluster members share the node data (the
// compatibility key guarantees it is identical); only the query-side
// fields — analysis, join conditions, SELECT list — differ per member.
func (p *plan) forExec(x *Exec) *plan {
	c := *p
	c.x = x
	return &c
}
