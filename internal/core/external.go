package core

import (
	"sensjoin/internal/topology"
	"sensjoin/internal/trace"
)

// External is the state-of-the-art general-purpose baseline (paper §I,
// §VI): every member node ships its complete tuple (projected onto the
// attributes the query needs, selections applied locally) to the base
// station along the routing tree; forwarding nodes aggregate tuples into
// as few packets as possible; the base station joins.
type External struct{}

// Name implements Method.
func (External) Name() string { return "external-join" }

// Phases implements Method.
func (External) Phases() []string { return ExternalPhases }

// Run implements Method.
func (External) Run(x *Exec) (*Result, error) {
	p, err := buildPlan(x)
	if err != nil {
		return nil, err
	}
	start := x.Sim.Now()
	// One TAG-style collection wave gathers every member tuple at the
	// base station (nodes at depth d transmit in slot maxDepth-d, so
	// children always precede parents); the join happens there.
	x.span(trace.KindPhaseStart, topology.BaseStation, -1, PhaseExternal, 0)
	tuples := collectWave(x, p, x.Tree, PhaseExternal, nil)
	x.span(trace.KindPhaseEnd, topology.BaseStation, -1, PhaseExternal, 0)
	rows, contrib := exactJoin(x, tuples)
	res := &Result{
		Columns:           columnsOf(x.Query),
		Rows:              rows,
		ContributingNodes: len(contrib),
		MemberNodes:       p.members,
		Complete:          len(tuples) == p.members,
		ResponseTime:      x.Sim.Now() - start,
	}
	// The external join needs every member tuple, so scoped recovery
	// targets members rather than contributors.
	needed := memberSet(p)
	if x.Net.Reliable() {
		have := tupleIndex(tuples)
		rounds, missing := runScopedRecovery(x, p, needed, have, nil)
		finishReliable(x, p, res, have, missing, rounds, start)
	} else if !res.Complete {
		annotateIncomplete(x, missingFrom(needed, tupleIndex(tuples)), res)
	}
	return res, nil
}

// collectionSlot returns a slot duration covering the worst-case single
// transmission of a collection wave: all member tuples in one message.
func collectionSlot(x *Exec, p *plan) float64 {
	maxTuple := 0
	for _, nd := range p.nodes {
		if nd != nil && nd.tupleBytes > maxTuple {
			maxTuple = nd.tupleBytes
		}
	}
	bound := p.members*maxTuple + 64
	return x.Net.SlotFor(bound)
}
