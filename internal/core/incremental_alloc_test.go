package core

import (
	"sort"
	"testing"

	"sensjoin/internal/zorder"
)

// The symmetric differences of buildFilterMsg run at every forwarding
// node every epoch of a continuous query; before the diffScratch arena
// they cost two slice allocations per node per epoch. After a warm-up
// round the arena must be allocation-free in steady state.
func TestDiffScratchAllocs(t *testing.T) {
	a := make([]zorder.Key, 256)
	b := make([]zorder.Key, 256)
	for i := range a {
		a[i] = zorder.Key(2 * i)
		b[i] = zorder.Key(3 * i)
	}

	var d diffScratch
	d.diff(a, b) // warm: grows the arena once
	d.diff(b, a)
	allocs := testing.AllocsPerRun(100, func() {
		d.reset()
		d.diff(a, b)
		d.diff(b, a)
	})
	if allocs != 0 {
		t.Errorf("diffScratch.diff steady state: %.0f allocs/run, want 0", allocs)
	}
}

// diffScratch results must match the plain diffKeys and stay intact
// when later diffs grow the arena.
func TestDiffScratchMatchesDiffKeys(t *testing.T) {
	a := []zorder.Key{1, 3, 5, 7, 9, 11}
	b := []zorder.Key{3, 4, 7, 8, 11}
	c := []zorder.Key{0, 1, 2, 5, 9, 10, 12, 14, 16, 18, 20, 22}

	var d diffScratch
	first := d.diff(a, b)
	second := d.diff(c, a) // grows past the first result
	want1, want2 := diffKeys(a, b), diffKeys(c, a)

	equal := func(x, y []zorder.Key) bool {
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if !equal(first, want1) {
		t.Errorf("first diff: got %v want %v", first, want1)
	}
	if !equal(second, want2) {
		t.Errorf("second diff: got %v want %v", second, want2)
	}
}

// buildFilterMsg in delta mode must stay within a small constant
// allocation budget: the adds/dels come out of the arena, so only the
// filterMsg headers and SetBytes sizing may allocate (constant count,
// independent of the key-set size). Before the arena the adds/dels
// slices added two O(keys)-sized allocations per call.
func TestBuildFilterMsgAllocs(t *testing.T) {
	src := "SELECT A.temp, B.temp FROM Sensors A, Sensors B WHERE A.temp - B.temp > 1.5 SAMPLE PERIOD 30"
	p, keys := filterFixture(t, src)
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	o := Options{}.withDefaults()

	s := NewContinuousSENSJoin()
	s.cont = s.cont.ensure(len(p.nodes))
	// Prime the sender state so the next call takes the delta path, and
	// drift a few keys so the delta is non-empty.
	s.buildFilterMsg(p, o, 0, keys, false)
	drifted := append([]zorder.Key(nil), keys[:len(keys)-3]...)

	allocs := testing.AllocsPerRun(100, func() {
		s.cont.scratch.reset()
		s.buildFilterMsg(p, o, 0, drifted, false)
	})
	if allocs > 8 {
		t.Errorf("buildFilterMsg (delta): %.0f allocs/run, want <= 8", allocs)
	}
}
