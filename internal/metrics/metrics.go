// Package metrics is a stdlib-only, race-safe registry of counters,
// gauges and fixed-bucket histograms with label support. It is the live
// counterpart of the post-hoc stats.Collector: while an experiment sweep
// runs, instruments across the stack (netsim event loop, core protocol
// phases, routing, the bench harness) update atomically, and the
// registry exposes everything in the Prometheus text format (expose.go)
// so standard tooling can scrape a run in flight.
//
// The zero-cost rule mirrors package trace: every instrument method is a
// no-op on a nil receiver and a registry method on a nil *Registry
// returns a nil instrument, so instrumented hot paths need no guards and
// the untraced, metrics-off send/deliver path keeps its zero
// allocations per event (AllocsPerRun-guarded in netsim).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// L is one label pair attached to an instrument.
type L struct{ Key, Value string }

// Counter is a monotonically increasing int64 instrument.
type Counter struct {
	v atomic.Int64
}

// Inc adds one. Safe on nil.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative deltas are ignored: counters only go up). Safe on
// nil.
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count. Safe on nil.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instrument that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set stores v. Safe on nil.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add adds delta. Safe on nil.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Inc adds one. Safe on nil.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one. Safe on nil.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value. Safe on nil.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket cumulative histogram over float64
// observations, with an implicit +Inf bucket. Observations are
// lock-free: per-bucket atomic counts plus a CAS-updated sum.
type Histogram struct {
	bounds []float64 // ascending upper bounds, +Inf excluded
	counts []atomic.Int64
	inf    atomic.Int64
	count  atomic.Int64
	sumB   atomic.Uint64 // float64 bits
}

// Observe records v. Safe on nil.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v (le semantics).
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.bounds) {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumB.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumB.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations. Safe on nil.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations. Safe on nil.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumB.Load())
}

// Mean returns the mean observation, NaN when empty. Safe on nil.
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return math.NaN()
	}
	return h.Sum() / float64(n)
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket
// counts with linear interpolation inside the target bucket, the same
// estimate Prometheus' histogram_quantile computes. It returns NaN on an
// empty histogram and the last finite bound when the quantile falls in
// the +Inf bucket (there is no upper edge to interpolate toward).
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil || h.count.Load() == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	total := h.count.Load()
	rank := q * float64(total)
	cum := int64(0)
	for i := range h.bounds {
		c := h.counts[i].Load()
		if float64(cum+c) >= rank && c > 0 {
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			upper := h.bounds[i]
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lower + (upper-lower)*frac
		}
		cum += c
	}
	if len(h.bounds) == 0 {
		return math.NaN()
	}
	return h.bounds[len(h.bounds)-1]
}

// instrument is one registered time series.
type instrument struct {
	labels    []L
	labelsKey string // canonical encoding, map key and sort key
	counter   *Counter
	gauge     *Gauge
	hist      *Histogram
}

// family groups the instruments sharing one metric name.
type family struct {
	name   string
	help   string
	typ    string // "counter" | "gauge" | "histogram"
	bounds []float64
	insts  map[string]*instrument
}

// Registry holds instrument families. All methods are safe for
// concurrent use; registering the same (name, labels) again returns the
// existing instrument, so independent runners wire into shared series.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// New returns an empty registry.
func New() *Registry { return &Registry{families: map[string]*family{}} }

// labelsKey canonically encodes a sorted copy of labels.
func labelsKey(labels []L) (string, []L) {
	if len(labels) == 0 {
		return "", nil
	}
	ls := append([]L(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	return b.String(), ls
}

// lookup returns the instrument for (name, labels), creating family and
// instrument as needed; it panics when the name is reused with a
// different type (a programming error worth failing loudly on).
func (r *Registry) lookup(name, help, typ string, bounds []float64, labels []L) *instrument {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, bounds: bounds, insts: map[string]*instrument{}}
		r.families[name] = f
	} else if f.typ != typ {
		panic(fmt.Sprintf("metrics: %s registered as %s, requested as %s", name, f.typ, typ))
	}
	key, sorted := labelsKey(labels)
	inst := f.insts[key]
	if inst == nil {
		inst = &instrument{labels: sorted, labelsKey: key}
		switch typ {
		case "counter":
			inst.counter = &Counter{}
		case "gauge":
			inst.gauge = &Gauge{}
		case "histogram":
			h := &Histogram{bounds: append([]float64(nil), f.bounds...)}
			h.counts = make([]atomic.Int64, len(h.bounds))
			inst.hist = h
		}
		f.insts[key] = inst
	}
	return inst
}

// Counter registers (or returns) the counter (name, labels). A nil
// registry returns a nil, no-op counter.
func (r *Registry) Counter(name, help string, labels ...L) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, "counter", nil, labels).counter
}

// Gauge registers (or returns) the gauge (name, labels). A nil registry
// returns a nil, no-op gauge.
func (r *Registry) Gauge(name, help string, labels ...L) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, "gauge", nil, labels).gauge
}

// Histogram registers (or returns) the histogram (name, labels) with the
// given ascending finite bucket upper bounds (+Inf is implicit). The
// bounds of the first registration win; a nil registry returns a nil,
// no-op histogram.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...L) *Histogram {
	if r == nil {
		return nil
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram %s bounds not strictly ascending: %v", name, bounds))
		}
	}
	return r.lookup(name, help, "histogram", bounds, labels).hist
}

// validName checks the Prometheus metric-name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':'
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}
