package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	g := r.Gauge("x", "")
	h := r.Histogram("x_seconds", "", []float64{1})
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Inc()
	g.Dec()
	h.Observe(0.5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments must stay zero")
	}
	if !math.IsNaN(h.Quantile(0.5)) || !math.IsNaN(h.Mean()) {
		t.Fatal("nil histogram quantile/mean must be NaN")
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry exposition: %q, %v", sb.String(), err)
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("pkts_total", "packets", L{"phase", "a"})
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters only go up
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	// Same (name, labels) returns the same instrument.
	if c2 := r.Counter("pkts_total", "packets", L{"phase", "a"}); c2 != c {
		t.Fatal("re-registration must return the existing counter")
	}
	// Different labels are a different series.
	if c3 := r.Counter("pkts_total", "packets", L{"phase", "b"}); c3 == c {
		t.Fatal("distinct labels must be a distinct series")
	}
	g := r.Gauge("depth", "")
	g.Set(7)
	g.Dec()
	if g.Value() != 6 {
		t.Fatalf("gauge = %d, want 6", g.Value())
	}
}

func TestLabelOrderCanonical(t *testing.T) {
	r := New()
	a := r.Counter("x_total", "", L{"a", "1"}, L{"b", "2"})
	b := r.Counter("x_total", "", L{"b", "2"}, L{"a", "1"})
	if a != b {
		t.Fatal("label order must not distinguish series")
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := New()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on counter re-registered as gauge")
		}
	}()
	r.Gauge("x_total", "")
}

func TestHistogramEdgeCases(t *testing.T) {
	r := New()
	h := r.Histogram("d_seconds", "", []float64{1, 2, 4})

	// Empty: quantiles are NaN.
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram quantile must be NaN")
	}

	// Single sample: every quantile lands in its bucket.
	h.Observe(1.5)
	if q := h.Quantile(0.5); q < 1 || q > 2 {
		t.Fatalf("single-sample median %g outside its bucket (1,2]", q)
	}
	if q := h.Quantile(1); q != 2 {
		t.Fatalf("single-sample q=1 should hit the bucket's upper edge, got %g", q)
	}

	// Bucket-boundary observations use le semantics: 2.0 falls in the
	// (1,2] bucket, not (2,4].
	h2 := r.Histogram("e_seconds", "", []float64{1, 2, 4})
	h2.Observe(2)
	if q := h2.Quantile(1); q != 2 {
		t.Fatalf("boundary observation: q=1 = %g, want 2", q)
	}

	// Overflow: values above the last bound report the last finite bound.
	h3 := r.Histogram("f_seconds", "", []float64{1, 2, 4})
	h3.Observe(100)
	if q := h3.Quantile(0.5); q != 4 {
		t.Fatalf("overflow quantile = %g, want last finite bound 4", q)
	}
	if h3.Count() != 1 || h3.Sum() != 100 {
		t.Fatalf("overflow count/sum = %d/%g", h3.Count(), h3.Sum())
	}

	// Quantile interpolation across buckets.
	h4 := r.Histogram("g_seconds", "", []float64{10, 20})
	for i := 0; i < 10; i++ {
		h4.Observe(5)
	}
	for i := 0; i < 10; i++ {
		h4.Observe(15)
	}
	if q := h4.Quantile(0.25); q != 5 {
		t.Fatalf("q=0.25 = %g, want 5 (midway through the first bucket)", q)
	}
	if q := h4.Quantile(0.75); q != 15 {
		t.Fatalf("q=0.75 = %g, want 15 (midway through the second bucket)", q)
	}
	if m := h4.Mean(); m != 10 {
		t.Fatalf("mean = %g, want 10", m)
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	r := New()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-ascending bounds")
		}
	}()
	r.Histogram("bad_seconds", "", []float64{2, 1})
}

// TestConcurrentAccess hammers registration, increments and exposition
// from many goroutines — the experiment fan-out shape. Run under -race.
func TestConcurrentAccess(t *testing.T) {
	r := New()
	const workers = 16
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Every worker re-registers the same series each round,
				// as independent sweep-cell runners do.
				c := r.Counter("events_total", "", L{"phase", "collect"})
				c.Inc()
				g := r.Gauge("inflight", "")
				g.Inc()
				g.Dec()
				h := r.Histogram("lat_seconds", "", []float64{0.001, 0.01, 0.1, 1})
				h.Observe(float64(i%7) * 0.02)
				if i%100 == 0 {
					var sb strings.Builder
					if err := r.WritePrometheus(&sb); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("events_total", "", L{"phase", "collect"}).Value(); got != workers*perWorker {
		t.Fatalf("concurrent counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("lat_seconds", "", nil).Count(); got != workers*perWorker {
		t.Fatalf("concurrent histogram count = %d, want %d", got, workers*perWorker)
	}
}

// The exposition must satisfy the repo's own validator and be
// deterministic for a fixed registry state.
func TestPrometheusExpositionValidates(t *testing.T) {
	r := New()
	r.Counter("sensjoin_tx_total", "transmitted packets", L{"phase", "ja-collect"}).Add(12)
	r.Counter("sensjoin_tx_total", "transmitted packets", L{"phase", "final-collect"}).Add(3)
	r.Gauge("sensjoin_queue_depth", "event queue depth").Set(42)
	h := r.Histogram("sensjoin_phase_seconds", "phase durations", []float64{0.1, 1, 10}, L{"phase", "ja-collect"})
	h.Observe(0.5)
	h.Observe(20)
	r.Counter("odd_label_total", "quote \" and backslash \\", L{"q", `va"l\ue`}).Inc()

	var a, b strings.Builder
	if err := r.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("exposition not deterministic")
	}
	types, err := ValidateProm(strings.NewReader(a.String()))
	if err != nil {
		t.Fatalf("exposition does not validate: %v\n%s", err, a.String())
	}
	want := map[string]string{
		"sensjoin_tx_total":      "counter",
		"sensjoin_queue_depth":   "gauge",
		"sensjoin_phase_seconds": "histogram",
		"odd_label_total":        "counter",
	}
	for name, typ := range want {
		if types[name] != typ {
			t.Fatalf("family %s parsed as %q, want %q", name, types[name], typ)
		}
	}
	// The cumulative +Inf bucket must equal the count.
	if !strings.Contains(a.String(), `sensjoin_phase_seconds_bucket{phase="ja-collect",le="+Inf"} 2`) {
		t.Fatalf("missing +Inf bucket:\n%s", a.String())
	}
}

func TestValidatorRejectsGarbage(t *testing.T) {
	bad := []string{
		"no_type_decl 1\n",
		"# TYPE x counter\nx notanumber\n",
		"# TYPE x counter\nx{unterminated=\"v 1\n",
		"# TYPE x histogram\nx 1\n",
		"",
	}
	for _, s := range bad {
		if _, err := ValidateProm(strings.NewReader(s)); err == nil {
			t.Fatalf("validator accepted %q", s)
		}
	}
}

func TestSnapshot(t *testing.T) {
	r := New()
	r.Counter("c_total", "").Add(2)
	r.Gauge("g", "", L{"k", "v"}).Set(9)
	r.Histogram("h_seconds", "", []float64{1}).Observe(0.5)
	snap := r.Snapshot()
	if snap["c_total"] != int64(2) {
		t.Fatalf("snapshot c_total = %v", snap["c_total"])
	}
	if snap[`g{k="v"}`] != int64(9) {
		t.Fatalf("snapshot gauge = %v (keys %v)", snap[`g{k="v"}`], snap)
	}
	if snap["h_seconds_count"] != int64(1) {
		t.Fatalf("snapshot histogram count = %v", snap["h_seconds_count"])
	}
}
