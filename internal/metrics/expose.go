package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Prometheus text-format exposition (version 0.0.4), deterministic:
// families sort by name, series by their canonical label key.

// escapeHelp escapes a HELP string per the text format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value per the text format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatLabels renders {k="v",...} from sorted labels plus an optional
// extra pair (the histogram "le" label).
func formatLabels(labels []L, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Key, escapeLabel(l.Value))
	}
	if extraKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, extraKey, escapeLabel(extraVal))
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return fmt.Sprintf("%g", v)
}

// WritePrometheus writes every registered series in the Prometheus text
// format. Output is deterministic for a given registry state. Safe on a
// nil registry (writes nothing).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	type snap struct {
		fam   *family
		insts []*instrument
	}
	snaps := make([]snap, 0, len(names))
	for _, name := range names {
		f := r.families[name]
		insts := make([]*instrument, 0, len(f.insts))
		for _, inst := range f.insts {
			insts = append(insts, inst)
		}
		sort.Slice(insts, func(i, j int) bool { return insts[i].labelsKey < insts[j].labelsKey })
		snaps = append(snaps, snap{fam: f, insts: insts})
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, s := range snaps {
		f := s.fam
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for _, inst := range s.insts {
			switch f.typ {
			case "counter":
				fmt.Fprintf(bw, "%s%s %d\n", f.name, formatLabels(inst.labels, "", ""), inst.counter.Value())
			case "gauge":
				fmt.Fprintf(bw, "%s%s %d\n", f.name, formatLabels(inst.labels, "", ""), inst.gauge.Value())
			case "histogram":
				h := inst.hist
				cum := int64(0)
				for i, up := range h.bounds {
					cum += h.counts[i].Load()
					fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name, formatLabels(inst.labels, "le", formatFloat(up)), cum)
				}
				cum += h.inf.Load()
				fmt.Fprintf(bw, "%s_bucket%s %d\n", f.name, formatLabels(inst.labels, "le", "+Inf"), cum)
				fmt.Fprintf(bw, "%s_sum%s %s\n", f.name, formatLabels(inst.labels, "", ""), formatFloat(h.Sum()))
				fmt.Fprintf(bw, "%s_count%s %d\n", f.name, formatLabels(inst.labels, "", ""), h.Count())
			}
		}
	}
	return bw.Flush()
}

// Snapshot returns a flat map of every series to its current value —
// histograms contribute _sum and _count entries. expvar.Func feeds on
// it. Safe on a nil registry (returns an empty map).
func (r *Registry) Snapshot() map[string]any {
	out := map[string]any{}
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, f := range r.families {
		for _, inst := range f.insts {
			series := name
			if inst.labelsKey != "" {
				series = name + "{" + inst.labelsKey + "}"
			}
			switch f.typ {
			case "counter":
				out[series] = inst.counter.Value()
			case "gauge":
				out[series] = inst.gauge.Value()
			case "histogram":
				out[series+"_count"] = inst.hist.Count()
				out[series+"_sum"] = inst.hist.Sum()
			}
		}
	}
	return out
}
