package metrics

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ValidateProm is a deliberately small, stdlib-only validator for the
// Prometheus text exposition format — enough for CI to prove that what
// the observability server serves actually parses: metric names follow
// the grammar, label blocks are well-formed, sample values are floats,
// every sample belongs to a family announced by a # TYPE line, and
// histogram families come with _bucket/_sum/_count series. It returns
// the family -> type map of everything seen.
func ValidateProm(r io.Reader) (map[string]string, error) {
	types := map[string]string{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	samples := 0
	histSeries := map[string]map[string]bool{} // family -> suffixes seen
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				return nil, fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			if fields[1] == "TYPE" {
				if len(fields) < 4 {
					return nil, fmt.Errorf("line %d: TYPE without a type: %q", lineNo, line)
				}
				name, typ := fields[2], strings.TrimSpace(fields[3])
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: unknown type %q for %s", lineNo, typ, name)
				}
				if prev, ok := types[name]; ok && prev != typ {
					return nil, fmt.Errorf("line %d: %s re-declared as %s (was %s)", lineNo, name, typ, prev)
				}
				types[name] = typ
			}
			continue
		}
		name, rest, err := parseName(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		if strings.HasPrefix(rest, "{") {
			end := strings.Index(rest, "}")
			if end < 0 {
				return nil, fmt.Errorf("line %d: unterminated label block in %q", lineNo, line)
			}
			if err := validateLabels(rest[1:end]); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			rest = rest[end+1:]
		}
		value := strings.TrimSpace(rest)
		// An optional timestamp may follow the value.
		if i := strings.IndexByte(value, ' '); i >= 0 {
			ts := strings.TrimSpace(value[i+1:])
			if _, err := strconv.ParseInt(ts, 10, 64); err != nil {
				return nil, fmt.Errorf("line %d: bad timestamp %q", lineNo, ts)
			}
			value = value[:i]
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			return nil, fmt.Errorf("line %d: bad sample value %q", lineNo, value)
		}
		family, suffix := name, ""
		if _, ok := types[family]; !ok {
			for _, s := range []string{"_bucket", "_sum", "_count"} {
				base := strings.TrimSuffix(name, s)
				if base != name {
					if _, ok := types[base]; ok {
						family, suffix = base, s
						break
					}
				}
			}
		}
		typ, ok := types[family]
		if !ok {
			return nil, fmt.Errorf("line %d: sample %s has no preceding # TYPE", lineNo, name)
		}
		if typ == "histogram" {
			if histSeries[family] == nil {
				histSeries[family] = map[string]bool{}
			}
			if suffix == "" {
				return nil, fmt.Errorf("line %d: bare sample %s of histogram family", lineNo, name)
			}
			histSeries[family][suffix] = true
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if samples == 0 {
		return nil, fmt.Errorf("no samples in exposition")
	}
	for fam, suffixes := range histSeries {
		for _, want := range []string{"_bucket", "_sum", "_count"} {
			if !suffixes[want] {
				return nil, fmt.Errorf("histogram %s missing %s series", fam, want)
			}
		}
	}
	return types, nil
}

// parseName splits the leading metric name off a sample line.
func parseName(line string) (name, rest string, err error) {
	i := 0
	for i < len(line) {
		c := line[i]
		alpha := (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':'
		digit := c >= '0' && c <= '9'
		if !alpha && !(digit && i > 0) {
			break
		}
		i++
	}
	if i == 0 {
		return "", "", fmt.Errorf("no metric name in %q", line)
	}
	return line[:i], line[i:], nil
}

// validateLabels checks a k="v",k2="v2" block.
func validateLabels(s string) error {
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq <= 0 {
			return fmt.Errorf("malformed label pair in %q", s)
		}
		key := s[:eq]
		if name, rest, err := parseName(key); err != nil || rest != "" || name == "" {
			return fmt.Errorf("bad label name %q", key)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return fmt.Errorf("label value not quoted in %q", s)
		}
		// Scan to the closing unescaped quote.
		i := 1
		for i < len(s) {
			if s[i] == '\\' {
				i += 2
				continue
			}
			if s[i] == '"' {
				break
			}
			i++
		}
		if i >= len(s) {
			return fmt.Errorf("unterminated label value in %q", s)
		}
		s = s[i+1:]
		if len(s) > 0 {
			if s[0] != ',' {
				return fmt.Errorf("expected ',' between labels, got %q", s)
			}
			s = s[1:]
		}
	}
	return nil
}
