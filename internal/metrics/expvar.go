package metrics

import (
	"expvar"
	"sync"
	"sync/atomic"
)

var (
	expvarMu sync.Mutex
	// expvarTargets maps a published expvar name to the mutable pointer
	// its expvar.Func reads. Re-publishing a name swaps the registry the
	// existing Func reports instead of calling expvar.Publish again —
	// which panics on duplicate names.
	expvarTargets = map[string]*atomic.Pointer[Registry]{}
)

// PublishExpvar exposes reg's Snapshot under the given expvar name.
// Unlike a bare expvar.Publish it is safe to call any number of times
// per process (daemons and tests start their serving path repeatedly):
// the first call publishes, later calls atomically retarget the
// published variable at the new registry. A nil registry snapshots
// empty.
func PublishExpvar(name string, reg *Registry) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if p, ok := expvarTargets[name]; ok {
		p.Store(reg)
		return
	}
	p := &atomic.Pointer[Registry]{}
	p.Store(reg)
	expvarTargets[name] = p
	expvar.Publish(name, expvar.Func(func() any { return p.Load().Snapshot() }))
}
