package metrics

import (
	"encoding/json"
	"expvar"
	"testing"
)

// Publishing the same name twice must not panic (the serving path used a
// bare expvar.Publish, which panics the moment a daemon or test embeds
// it a second time) and must retarget the variable at the new registry.
func TestPublishExpvarDoubleStart(t *testing.T) {
	r1 := New()
	r1.Counter("test_expvar_total", "first registry").Add(7)
	PublishExpvar("sensjoin_test", r1)

	r2 := New()
	r2.Counter("test_expvar_total", "second registry").Add(42)
	PublishExpvar("sensjoin_test", r2) // must not panic

	v := expvar.Get("sensjoin_test")
	if v == nil {
		t.Fatal("variable not published")
	}
	var snap map[string]any
	if err := json.Unmarshal([]byte(v.String()), &snap); err != nil {
		t.Fatalf("snapshot not JSON: %v", err)
	}
	if got := snap["test_expvar_total"]; got != float64(42) {
		t.Fatalf("snapshot reads the old registry: got %v, want 42", got)
	}

	// A nil registry is a valid target: the snapshot goes empty.
	PublishExpvar("sensjoin_test", nil)
	if s := expvar.Get("sensjoin_test").String(); s != "{}" {
		t.Fatalf("nil registry snapshot = %q, want {}", s)
	}
}
