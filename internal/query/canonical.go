package query

import "sort"

// Canonicalization: a normal form under which differently written but
// identical predicates render to the same string. core.QueryGroup hashes
// canonical local predicates into its compatibility key, so "A.temp > 2
// + 1", "A.temp > 3" and "3 < A.temp" all land in the same shared
// execution cluster.
//
// Every rewrite is exact under IEEE-754 evaluation — not merely
// algebraically plausible. Queries that only *almost* normalize to the
// same form must not be grouped, because a shared execution evaluates
// one cluster member's predicate on behalf of all of them:
//
//   - constant folding (Fold/FoldBool) collapses all-constant subtrees,
//     preserving the original evaluation order within them;
//   - two-operand + and * commute (IEEE addition and multiplication are
//     commutative; only associativity is not), so a binary Arith sorts
//     its operands — chains are left alone to keep association intact;
//   - comparisons flip exactly (a > b ⇔ b < a, a >= b ⇔ b <= a) and
//     = / != sort their operands;
//   - AND/OR chains flatten and sort (predicates are pure, so conjunct
//     order cannot change the truth value);
//   - least/greatest sort their arguments (min/max select one of their
//     operands and Go's math.Min/Max resolve ±0 and NaN ties
//     order-independently);
//   - distance swaps its two points (negating both differences is
//     exact).

// CanonicalNum returns the canonical form of a numeric expression. The
// result evaluates bit-identically to e under every environment.
func CanonicalNum(e NumExpr) NumExpr {
	if e == nil {
		return nil
	}
	return canonNum(Fold(e))
}

func canonNum(e NumExpr) NumExpr {
	switch n := e.(type) {
	case Neg:
		return Neg{canonNum(n.X)}
	case Abs:
		return Abs{canonNum(n.X)}
	case Sqrt:
		return Sqrt{canonNum(n.X)}
	case Arith:
		l, r := canonNum(n.L), canonNum(n.R)
		if (n.Op == OpAdd || n.Op == OpMul) && r.String() < l.String() {
			l, r = r, l
		}
		return Arith{Op: n.Op, L: l, R: r}
	case Distance:
		x1, y1 := canonNum(n.X1), canonNum(n.Y1)
		x2, y2 := canonNum(n.X2), canonNum(n.Y2)
		if x2.String()+"\x00"+y2.String() < x1.String()+"\x00"+y1.String() {
			x1, y1, x2, y2 = x2, y2, x1, y1
		}
		return Distance{x1, y1, x2, y2}
	case MinMax:
		args := make([]NumExpr, len(n.Args))
		for i, a := range n.Args {
			args[i] = canonNum(a)
		}
		sort.SliceStable(args, func(i, j int) bool {
			return args[i].String() < args[j].String()
		})
		return MinMax{IsMax: n.IsMax, Args: args}
	}
	return e // Const, Attr
}

// Canonical returns the canonical form of a predicate. The result
// evaluates identically to e under every environment; equivalent
// spellings (folded constants, flipped comparisons, commuted operands
// and conjuncts) render to the same String().
func Canonical(e BoolExpr) BoolExpr {
	if e == nil {
		return nil
	}
	return canonBool(FoldBool(e))
}

func canonBool(e BoolExpr) BoolExpr {
	switch n := e.(type) {
	case Cmp:
		op, l, r := n.Op, canonNum(n.L), canonNum(n.R)
		switch op {
		case CmpGT:
			op, l, r = CmpLT, r, l
		case CmpGE:
			op, l, r = CmpLE, r, l
		case CmpEQ, CmpNE:
			if r.String() < l.String() {
				l, r = r, l
			}
		}
		return Cmp{Op: op, L: l, R: r}
	case And:
		cs := Conjuncts(n)
		for i := range cs {
			cs[i] = canonBool(cs[i])
		}
		sort.SliceStable(cs, func(i, j int) bool {
			return cs[i].String() < cs[j].String()
		})
		return AndAll(cs)
	case Or:
		ds := disjuncts(n)
		for i := range ds {
			ds[i] = canonBool(ds[i])
		}
		sort.SliceStable(ds, func(i, j int) bool {
			return ds[i].String() < ds[j].String()
		})
		return orAll(ds)
	case Not:
		return Not{canonBool(n.X)}
	}
	return e
}

// disjuncts flattens nested ORs into a list.
func disjuncts(e BoolExpr) []BoolExpr {
	if or, ok := e.(Or); ok {
		return append(disjuncts(or.L), disjuncts(or.R)...)
	}
	return []BoolExpr{e}
}

// orAll rebuilds a disjunction from a non-empty list.
func orAll(ds []BoolExpr) BoolExpr {
	out := ds[0]
	for _, d := range ds[1:] {
		out = Or{out, d}
	}
	return out
}
