package query

import "testing"

func fpOf(t *testing.T, src string) string {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return Fingerprint(q)
}

func TestFingerprintAliasInsensitive(t *testing.T) {
	a := fpOf(t, `SELECT A.temp FROM Sensors A, Sensors B WHERE A.temp - B.temp > 10.0 ONCE`)
	b := fpOf(t, `SELECT X.temp FROM Sensors X, Sensors Y WHERE X.temp - Y.temp > 10.0 ONCE`)
	if a != b {
		t.Fatalf("alias spelling changed the fingerprint:\n%s\n%s", a, b)
	}
}

func TestFingerprintCanonicalRewrites(t *testing.T) {
	// Comparison flip and commuted operands are IEEE-exact rewrites the
	// canonicalizer normalizes, so they fingerprint identically.
	a := fpOf(t, `SELECT A.temp FROM Sensors A, Sensors B WHERE A.temp - B.temp > 10.0 ONCE`)
	b := fpOf(t, `SELECT A.temp FROM Sensors A, Sensors B WHERE 10.0 < A.temp - B.temp ONCE`)
	if a != b {
		t.Fatalf("flipped comparison changed the fingerprint:\n%s\n%s", a, b)
	}
}

func TestFingerprintLiteralsDistinct(t *testing.T) {
	a := fpOf(t, `SELECT A.temp FROM Sensors A, Sensors B WHERE A.temp - B.temp > 10.0 ONCE`)
	b := fpOf(t, `SELECT A.temp FROM Sensors A, Sensors B WHERE A.temp - B.temp > 11.0 ONCE`)
	if a == b {
		t.Fatal("different literals must key distinct fingerprints")
	}
}

func TestFingerprintShapeDetails(t *testing.T) {
	base := `SELECT A.temp FROM Sensors A, Sensors B WHERE A.temp - B.temp > 10.0 ONCE`
	for _, variant := range []string{
		`SELECT A.hum FROM Sensors A, Sensors B WHERE A.temp - B.temp > 10.0 ONCE`,
		`SELECT A.temp AS t FROM Sensors A, Sensors B WHERE A.temp - B.temp > 10.0 ONCE`,
		`SELECT MIN(A.temp) FROM Sensors A, Sensors B WHERE A.temp - B.temp > 10.0 ONCE`,
		`SELECT A.temp FROM Sensors A, Sensors B WHERE A.temp - B.temp > 10.0 SAMPLE PERIOD 30`,
	} {
		if fpOf(t, base) == fpOf(t, variant) {
			t.Fatalf("variant %q fingerprints like the base query", variant)
		}
	}
}
