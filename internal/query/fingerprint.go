package query

import (
	"fmt"
	"strconv"
	"strings"
)

// Fingerprint renders a canonical byte string of the whole query,
// suitable as a prepared-plan cache key: two queries with equal
// fingerprints produce identical result tables on the same deployment
// snapshot, and textual differences that cannot change the result — an
// operand order the IEEE-754-exact Canonical rewrites normalize, or the
// spelling of a FROM alias — fingerprint identically. Literals are
// rendered exactly (hex float), so the same shape with different
// constants keys distinct entries.
func Fingerprint(q *Query) string {
	var b strings.Builder
	b.WriteString("select=")
	if q.Star {
		b.WriteString("*")
	}
	for i, it := range q.Select {
		if i > 0 {
			b.WriteByte(',')
		}
		if it.Agg != AggNone {
			b.WriteString(it.Agg.String())
		}
		b.WriteByte('(')
		fpNum(&b, CanonicalNum(it.Expr))
		b.WriteByte(')')
		if it.As != "" {
			b.WriteString(" as ")
			b.WriteString(it.As)
		}
	}
	b.WriteString(";from=")
	for i, r := range q.From {
		if i > 0 {
			b.WriteByte(',')
		}
		// The alias spelling is irrelevant: attribute references carry
		// the resolved FROM index, which fpNum renders positionally.
		b.WriteString(r.Relation)
	}
	b.WriteString(";where=")
	if q.Where != nil {
		fpBool(&b, Canonical(q.Where))
	}
	b.WriteString(";group=")
	for i, e := range q.GroupBy {
		if i > 0 {
			b.WriteByte(',')
		}
		fpNum(&b, CanonicalNum(e))
	}
	b.WriteString(";order=")
	for i, k := range q.OrderBy {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", k.Col)
		if k.Desc {
			b.WriteString(" desc")
		}
	}
	fmt.Fprintf(&b, ";limit=%d;mode=%d;period=%s",
		q.Limit, q.Mode, strconv.FormatFloat(q.Period, 'x', -1, 64))
	return b.String()
}

// fpNum renders a numeric expression with positional relation references
// and exact literals.
func fpNum(b *strings.Builder, e NumExpr) {
	switch v := e.(type) {
	case Const:
		b.WriteString(strconv.FormatFloat(v.V, 'x', -1, 64))
	case Attr:
		fmt.Fprintf(b, "#%d.%s", v.Ref.Rel, v.Ref.Name)
	case Arith:
		b.WriteByte('(')
		fpNum(b, v.L)
		b.WriteString(v.Op.String())
		fpNum(b, v.R)
		b.WriteByte(')')
	case Neg:
		b.WriteString("neg(")
		fpNum(b, v.X)
		b.WriteByte(')')
	case Abs:
		b.WriteString("abs(")
		fpNum(b, v.X)
		b.WriteByte(')')
	case Sqrt:
		b.WriteString("sqrt(")
		fpNum(b, v.X)
		b.WriteByte(')')
	case Distance:
		b.WriteString("distance(")
		for i, a := range []NumExpr{v.X1, v.Y1, v.X2, v.Y2} {
			if i > 0 {
				b.WriteByte(',')
			}
			fpNum(b, a)
		}
		b.WriteByte(')')
	case MinMax:
		if v.IsMax {
			b.WriteString("max(")
		} else {
			b.WriteString("min(")
		}
		for i, a := range v.Args {
			if i > 0 {
				b.WriteByte(',')
			}
			fpNum(b, a)
		}
		b.WriteByte(')')
	default:
		// Future node kinds degrade to their textual form; correctness
		// is kept (equal fingerprints still mean equal queries), only
		// alias-insensitivity is lost for the new kind.
		b.WriteString(e.String())
	}
}

// fpBool renders a predicate with positional relation references.
func fpBool(b *strings.Builder, e BoolExpr) {
	switch v := e.(type) {
	case Cmp:
		b.WriteByte('(')
		fpNum(b, v.L)
		b.WriteString(v.Op.String())
		fpNum(b, v.R)
		b.WriteByte(')')
	case And:
		b.WriteString("and(")
		fpBool(b, v.L)
		b.WriteByte(',')
		fpBool(b, v.R)
		b.WriteByte(')')
	case Or:
		b.WriteString("or(")
		fpBool(b, v.L)
		b.WriteByte(',')
		fpBool(b, v.R)
		b.WriteByte(')')
	case Not:
		b.WriteString("not(")
		fpBool(b, v.X)
		b.WriteByte(')')
	default:
		b.WriteString(e.String())
	}
}
