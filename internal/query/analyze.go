package query

import (
	"fmt"
	"sort"
)

// Analysis is the planner's view of a bound query: the WHERE clause split
// into per-relation local predicates and cross-relation join conditions,
// and the attribute sets each part of the protocol needs.
//
// The split drives the whole protocol (§IV): local predicates are
// evaluated on the node ("selections as early as possible"); join
// conditions define the join-attribute tuples (Definition 1) collected in
// the pre-computation; the shipped attributes are what the final phase
// (and the external join) must transport per tuple.
type Analysis struct {
	Query *Query
	// LocalPreds[i] holds the WHERE conjuncts referencing only FROM
	// entry i.
	LocalPreds [][]BoolExpr
	// JoinConds holds the conjuncts referencing two or more FROM entries.
	JoinConds []BoolExpr
	// ConstPreds holds conjuncts referencing no attributes at all.
	ConstPreds []BoolExpr
	// JoinAttrs[i] lists, sorted, the attribute names of FROM entry i
	// referenced by any join condition (the join-attribute tuple shape).
	JoinAttrs [][]string
	// SelectAttrs[i] lists, sorted, the attribute names of FROM entry i
	// referenced by the SELECT list.
	SelectAttrs [][]string
	// ShippedAttrs[i] is the union of JoinAttrs[i] and SelectAttrs[i]:
	// what a complete tuple restricted to query needs contains.
	ShippedAttrs [][]string
}

// Analyze splits the query per the protocol's needs. The query must be
// bound (references resolved), which Parse guarantees.
func Analyze(q *Query) (*Analysis, error) {
	n := len(q.From)
	if n == 0 {
		return nil, fmt.Errorf("query: FROM clause is empty")
	}
	// Standard SQL: in a grouped query every non-aggregate SELECT item
	// must be one of the grouping expressions (otherwise its value within
	// a group would depend on the execution strategy).
	if len(q.GroupBy) > 0 {
		grouped := make(map[string]bool, len(q.GroupBy))
		for _, g := range q.GroupBy {
			grouped[g.String()] = true
		}
		for _, item := range q.Select {
			if item.Agg == AggNone && !grouped[item.Expr.String()] {
				return nil, fmt.Errorf("query: non-aggregate SELECT item %q must appear in GROUP BY", item.Expr.String())
			}
		}
	}
	a := &Analysis{
		Query:       q,
		LocalPreds:  make([][]BoolExpr, n),
		JoinAttrs:   make([][]string, n),
		SelectAttrs: make([][]string, n),
	}
	joinSets := make([]map[string]bool, n)
	selSets := make([]map[string]bool, n)
	for i := range joinSets {
		joinSets[i] = make(map[string]bool)
		selSets[i] = make(map[string]bool)
	}
	for _, conj := range Conjuncts(q.Where) {
		rels := referencedRels(conj)
		switch len(rels) {
		case 0:
			a.ConstPreds = append(a.ConstPreds, conj)
		case 1:
			a.LocalPreds[rels[0]] = append(a.LocalPreds[rels[0]], conj)
		default:
			a.JoinConds = append(a.JoinConds, conj)
			conj.VisitNums(func(e NumExpr) {
				if at, ok := e.(Attr); ok {
					joinSets[at.Ref.Rel][at.Ref.Name] = true
				}
			})
		}
	}
	collect := func(e NumExpr) {
		e.Visit(func(sub NumExpr) {
			if at, ok := sub.(Attr); ok {
				selSets[at.Ref.Rel][at.Ref.Name] = true
			}
		})
	}
	for _, item := range q.Select {
		collect(item.Expr)
	}
	// Grouping expressions are evaluated at the base station on complete
	// tuples, so their attributes ship like SELECT attributes.
	for _, g := range q.GroupBy {
		collect(g)
	}
	for i := 0; i < n; i++ {
		a.JoinAttrs[i] = sortedKeys(joinSets[i])
		a.SelectAttrs[i] = sortedKeys(selSets[i])
		union := make(map[string]bool)
		for k := range joinSets[i] {
			union[k] = true
		}
		for k := range selSets[i] {
			union[k] = true
		}
		a.ShippedAttrs = append(a.ShippedAttrs, sortedKeys(union))
	}
	return a, nil
}

// Conjuncts flattens nested ANDs into a list; a nil predicate yields nil.
func Conjuncts(e BoolExpr) []BoolExpr {
	if e == nil {
		return nil
	}
	if and, ok := e.(And); ok {
		return append(Conjuncts(and.L), Conjuncts(and.R)...)
	}
	return []BoolExpr{e}
}

// AndAll rebuilds a conjunction from a list; nil for an empty list.
func AndAll(conjs []BoolExpr) BoolExpr {
	var out BoolExpr
	for _, c := range conjs {
		if out == nil {
			out = c
		} else {
			out = And{out, c}
		}
	}
	return out
}

func referencedRels(e BoolExpr) []int {
	set := make(map[int]bool)
	e.VisitNums(func(n NumExpr) {
		if at, ok := n.(Attr); ok {
			set[at.Ref.Rel] = true
		}
	})
	out := make([]int, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// HasJoin reports whether the analysis contains at least one join
// condition between distinct FROM entries.
func (a *Analysis) HasJoin() bool { return len(a.JoinConds) > 0 }

// JoinPredicate returns the conjunction of all join conditions (nil when
// there are none: then the join is a cross product).
func (a *Analysis) JoinPredicate() BoolExpr { return AndAll(a.JoinConds) }

// LocalPredicate returns the conjunction of the local predicates of FROM
// entry i (nil when there are none).
func (a *Analysis) LocalPredicate(i int) BoolExpr { return AndAll(a.LocalPreds[i]) }

// TupleEnv binds one tuple per FROM entry for exact evaluation. Values
// are looked up by (rel index, attribute name).
type TupleEnv struct {
	// Lookup returns the value of attribute name of FROM entry rel.
	Lookup func(rel int, name string) float64
}

// Value implements Env.
func (t TupleEnv) Value(ref AttrRef) float64 { return t.Lookup(ref.Rel, ref.Name) }

// CellEnv binds one interval per (rel, attribute) for tri-state
// evaluation of quantized join-attribute tuples.
type CellEnv struct {
	// Lookup returns the cell interval of attribute name of FROM entry
	// rel.
	Lookup func(rel int, name string) Interval
}

// Range implements BoundsEnv.
func (c CellEnv) Range(ref AttrRef) Interval { return c.Lookup(ref.Rel, ref.Name) }

// SingleEnv evaluates expressions over a single relation's tuple; local
// predicates use it on the node.
type SingleEnv struct {
	// Rel is the FROM index this tuple instantiates.
	Rel int
	// Lookup returns the value of an attribute of this tuple.
	Lookup func(name string) float64
}

// Value implements Env. Referencing another FROM entry panics: local
// predicates by construction reference only Rel.
func (s SingleEnv) Value(ref AttrRef) float64 {
	if ref.Rel != s.Rel {
		panic(fmt.Sprintf("query: local predicate referenced relation %d, bound %d", ref.Rel, s.Rel))
	}
	return s.Lookup(ref.Name)
}
