package query

import (
	"strings"
	"testing"
)

// The paper's running examples must parse.
const q1Src = `SELECT MIN(distance(A.x, A.y, B.x, B.y))
FROM Sensors A, Sensors B
WHERE A.temp - B.temp > 10.0
ONCE`

const q2Src = `SELECT |A.hum - B.hum|, |A.pres - B.pres|
FROM Sensors A, Sensors B
WHERE |A.temp - B.temp| < 0.3
AND distance(A.x, A.y, B.x, B.y) > 100
ONCE`

func TestParseQ1(t *testing.T) {
	q, err := Parse(q1Src)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.From) != 2 || q.From[0].Alias != "A" || q.From[1].Alias != "B" {
		t.Fatalf("FROM = %+v", q.From)
	}
	if q.From[0].Relation != "Sensors" || q.From[1].Relation != "Sensors" {
		t.Fatal("self-join relations wrong")
	}
	if len(q.Select) != 1 || q.Select[0].Agg != AggMin {
		t.Fatalf("SELECT = %+v", q.Select)
	}
	if _, ok := q.Select[0].Expr.(Distance); !ok {
		t.Fatalf("Q1 select expr is %T, want Distance", q.Select[0].Expr)
	}
	if q.Mode != Once {
		t.Fatal("mode should be Once")
	}
	cmp, ok := q.Where.(Cmp)
	if !ok || cmp.Op != CmpGT {
		t.Fatalf("WHERE = %+v", q.Where)
	}
}

func TestParseQ2(t *testing.T) {
	q, err := Parse(q2Src)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Select) != 2 {
		t.Fatalf("SELECT has %d items", len(q.Select))
	}
	for _, s := range q.Select {
		if _, ok := s.Expr.(Abs); !ok {
			t.Fatalf("select item %T, want Abs from |...|", s.Expr)
		}
	}
	and, ok := q.Where.(And)
	if !ok {
		t.Fatalf("WHERE = %T, want And", q.Where)
	}
	if _, ok := and.L.(Cmp); !ok {
		t.Fatal("left conjunct should be a comparison")
	}
}

func TestParseSamplePeriod(t *testing.T) {
	q, err := Parse("SELECT A.temp FROM Sensors A SAMPLE PERIOD 30")
	if err != nil {
		t.Fatal(err)
	}
	if q.Mode != Periodic || q.Period != 30 {
		t.Fatalf("mode/period = %v/%g", q.Mode, q.Period)
	}
}

func TestParseStar(t *testing.T) {
	q, err := Parse("SELECT * FROM Sensors ONCE")
	if err != nil {
		t.Fatal(err)
	}
	if !q.Star {
		t.Fatal("Star not set")
	}
	if q.From[0].Alias != "Sensors" {
		t.Fatal("default alias should equal relation name")
	}
}

func TestParseUnqualifiedAttr(t *testing.T) {
	q, err := Parse("SELECT temp FROM Sensors WHERE temp > 20 ONCE")
	if err != nil {
		t.Fatal(err)
	}
	at := q.Select[0].Expr.(Attr)
	if at.Ref.Rel != 0 || at.Ref.Alias != "Sensors" {
		t.Fatalf("unqualified binding = %+v", at.Ref)
	}
}

func TestParseUnqualifiedAmbiguous(t *testing.T) {
	if _, err := Parse("SELECT temp FROM Sensors A, Sensors B ONCE"); err == nil {
		t.Fatal("ambiguous unqualified attribute must fail to bind")
	}
}

func TestParseUnknownAlias(t *testing.T) {
	if _, err := Parse("SELECT C.temp FROM Sensors A ONCE"); err == nil {
		t.Fatal("unknown alias must fail")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT FROM Sensors ONCE",
		"SELECT A.t FROM Sensors A", // missing mode
		"SELECT A.t FROM Sensors A SAMPLE PERIOD -5",           // bad period
		"SELECT A.t FROM Sensors A WHERE A.t ONCE",             // non-predicate WHERE
		"SELECT A.t FROM Sensors A WHERE A.t > ONCE",           // comparison missing operand
		"SELECT A.t AND A.u FROM Sensors A ONCE",               // boolean select
		"SELECT A.t FROM Sensors A WHERE foo(A.t) ONCE",        // unknown function
		"SELECT A.t FROM Sensors A WHERE abs(A.t, 2) > 1 ONCE", // wrong arity
		"SELECT A.t FROM Sensors A WHERE A.t ! 3 ONCE",         // lone '!'
		"SELECT A.t FROM Sensors A WHERE A.t > 3 ONCE trailing",
		"SELECT A.t FROM Sensors A WHERE NOT A.t ONCE",           // NOT over numeric
		"SELECT A.t FROM Sensors A WHERE (A.t > 1) + 2 > 0 ONCE", // bool in arithmetic
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseOperatorPrecedence(t *testing.T) {
	q, err := Parse("SELECT A.a FROM S A WHERE A.a + 2 * 3 = 7 ONCE")
	if err != nil {
		t.Fatal(err)
	}
	cmp := q.Where.(Cmp)
	add, ok := cmp.L.(Arith)
	if !ok || add.Op != OpAdd {
		t.Fatalf("expected + at top of LHS, got %+v", cmp.L)
	}
	mul, ok := add.R.(Arith)
	if !ok || mul.Op != OpMul {
		t.Fatalf("expected * bound tighter: %+v", add.R)
	}
}

func TestParseLogicalPrecedence(t *testing.T) {
	// AND binds tighter than OR; NOT tighter than AND.
	q, err := Parse("SELECT A.a FROM S A WHERE A.a > 1 OR A.a < 0 AND NOT A.a = 5 ONCE")
	if err != nil {
		t.Fatal(err)
	}
	or, ok := q.Where.(Or)
	if !ok {
		t.Fatalf("top = %T, want Or", q.Where)
	}
	and, ok := or.R.(And)
	if !ok {
		t.Fatalf("right of OR = %T, want And", or.R)
	}
	if _, ok := and.R.(Not); !ok {
		t.Fatalf("right of AND = %T, want Not", and.R)
	}
}

func TestParseComparisonVariants(t *testing.T) {
	ops := map[string]CmpOp{
		"<": CmpLT, "<=": CmpLE, ">": CmpGT, ">=": CmpGE,
		"=": CmpEQ, "!=": CmpNE, "<>": CmpNE,
	}
	for src, want := range ops {
		q, err := Parse("SELECT A.a FROM S A WHERE A.a " + src + " 1 ONCE")
		if err != nil {
			t.Fatalf("op %q: %v", src, err)
		}
		if got := q.Where.(Cmp).Op; got != want {
			t.Fatalf("op %q parsed as %v", src, got)
		}
	}
}

func TestParseFunctions(t *testing.T) {
	q, err := Parse("SELECT least(A.a, A.b), greatest(A.a, A.b, 3), sqrt(A.a), abs(A.a - 1) FROM S A ONCE")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := q.Select[0].Expr.(MinMax); !ok {
		t.Fatal("least should parse to MinMax")
	}
	mm := q.Select[1].Expr.(MinMax)
	if !mm.IsMax || len(mm.Args) != 3 {
		t.Fatalf("greatest = %+v", mm)
	}
	if _, ok := q.Select[2].Expr.(Sqrt); !ok {
		t.Fatal("sqrt should parse")
	}
	if _, ok := q.Select[3].Expr.(Abs); !ok {
		t.Fatal("abs should parse")
	}
}

func TestParseSelectAlias(t *testing.T) {
	q, err := Parse("SELECT A.temp AS t1, MAX(A.hum) AS peak FROM Sensors A ONCE")
	if err != nil {
		t.Fatal(err)
	}
	if q.Select[0].As != "t1" || q.Select[1].As != "peak" {
		t.Fatalf("aliases = %+v", q.Select)
	}
	if q.Select[1].Agg != AggMax {
		t.Fatal("aggregate lost")
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	q, err := Parse("select A.temp from Sensors A where A.temp > 1 once")
	if err != nil {
		t.Fatal(err)
	}
	if q.Where == nil {
		t.Fatal("lower-case keywords not recognized")
	}
}

func TestParseScientificNumbers(t *testing.T) {
	q, err := Parse("SELECT A.a FROM S A WHERE A.a < 1.5e3 ONCE")
	if err != nil {
		t.Fatal(err)
	}
	if c := q.Where.(Cmp).R.(Const); c.V != 1500 {
		t.Fatalf("1.5e3 parsed as %g", c.V)
	}
}

// Property: String() output re-parses to an identical rendering
// (idempotent round-trip).
func TestStringRoundtrip(t *testing.T) {
	sources := []string{
		q1Src,
		q2Src,
		"SELECT A.a FROM S A WHERE NOT (A.a > 1 OR A.a < -1) AND A.b <= 2 ONCE",
		"SELECT A.a + A.b * 3 - 2 / A.c FROM S A SAMPLE PERIOD 15",
		"SELECT least(A.a, 1), greatest(A.b, 2) FROM S A ONCE",
		"SELECT COUNT(A.a) FROM S A WHERE sqrt(abs(A.a)) != 2 ONCE",
		"SELECT A.a FROM S A, T B WHERE A.a = B.b ONCE",
	}
	for _, src := range sources {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		s1 := q.String()
		q2, err := Parse(s1)
		if err != nil {
			t.Fatalf("re-parse %q: %v", s1, err)
		}
		s2 := q2.String()
		if s1 != s2 {
			t.Fatalf("round-trip mismatch:\n  %s\n  %s", s1, s2)
		}
	}
}

func TestParsePredicateStandalone(t *testing.T) {
	b, err := ParsePredicate("abs(A.t - B.t) < 0.3 AND A.x > 5")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "AND") {
		t.Fatalf("predicate = %s", b.String())
	}
	if _, err := ParsePredicate("A.t + 1"); err == nil {
		t.Fatal("numeric expression is not a predicate")
	}
	if _, err := ParsePredicate("A.t > 1 trailing"); err == nil {
		t.Fatal("trailing tokens must fail")
	}
}

func TestParseGroupOrderLimit(t *testing.T) {
	q, err := Parse(`SELECT A.temp, COUNT(B.temp) FROM Sensors A, Sensors B
		WHERE A.temp - B.temp > 3
		GROUP BY A.temp ORDER BY 1 DESC, 2 LIMIT 10 ONCE`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.GroupBy) != 1 {
		t.Fatalf("GroupBy = %v", q.GroupBy)
	}
	if at, ok := q.GroupBy[0].(Attr); !ok || at.Ref.Rel != 0 {
		t.Fatalf("GroupBy expression not bound: %+v", q.GroupBy[0])
	}
	if len(q.OrderBy) != 2 || q.OrderBy[0] != (OrderKey{Col: 1, Desc: true}) || q.OrderBy[1] != (OrderKey{Col: 2}) {
		t.Fatalf("OrderBy = %+v", q.OrderBy)
	}
	if q.Limit != 10 {
		t.Fatalf("Limit = %d", q.Limit)
	}
}

func TestParseGroupOrderLimitErrors(t *testing.T) {
	bad := []string{
		"SELECT A.t FROM S A GROUP BY ONCE",            // missing expr
		"SELECT A.t FROM S A ORDER BY A.t ONCE",        // non-positional order key
		"SELECT A.t FROM S A ORDER BY 2 ONCE",          // out of range
		"SELECT A.t FROM S A ORDER BY 0 ONCE",          // out of range
		"SELECT A.t FROM S A LIMIT 5 ONCE",             // limit without order
		"SELECT A.t FROM S A ORDER BY 1 LIMIT 0 ONCE",  // bad limit
		"SELECT A.t FROM S A ORDER BY 1 LIMIT -3 ONCE", // bad limit
		"SELECT A.t FROM S A GROUP A.t ONCE",           // missing BY
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestGroupOrderLimitStringRoundtrip(t *testing.T) {
	sources := []string{
		"SELECT A.temp, COUNT(B.temp) FROM S A, S B WHERE A.temp > B.temp GROUP BY A.temp ORDER BY 1 DESC LIMIT 5 ONCE",
		"SELECT MIN(A.a) FROM S A GROUP BY A.b, A.c ONCE",
		"SELECT A.a, A.b FROM S A ORDER BY 2, 1 DESC ONCE",
	}
	for _, src := range sources {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		s1 := q.String()
		q2, err := Parse(s1)
		if err != nil {
			t.Fatalf("re-parse %q: %v", s1, err)
		}
		if s2 := q2.String(); s1 != s2 {
			t.Fatalf("round trip:\n  %s\n  %s", s1, s2)
		}
	}
}
