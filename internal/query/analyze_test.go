package query

import (
	"reflect"
	"testing"
)

func TestAnalyzeQ1(t *testing.T) {
	q, err := Parse(q1Src)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	if !a.HasJoin() || len(a.JoinConds) != 1 {
		t.Fatalf("JoinConds = %v", a.JoinConds)
	}
	// Join attributes of Q1: temp only (the distance is in SELECT, not
	// in the join condition).
	if !reflect.DeepEqual(a.JoinAttrs[0], []string{"temp"}) {
		t.Fatalf("JoinAttrs[0] = %v, want [temp]", a.JoinAttrs[0])
	}
	if !reflect.DeepEqual(a.SelectAttrs[0], []string{"x", "y"}) {
		t.Fatalf("SelectAttrs[0] = %v, want [x y]", a.SelectAttrs[0])
	}
	// Shipped: temp + x + y = 3 attributes. This is the paper's "33%
	// join attributes" characterization of Q1 (1 of 3).
	if !reflect.DeepEqual(a.ShippedAttrs[0], []string{"temp", "x", "y"}) {
		t.Fatalf("ShippedAttrs[0] = %v", a.ShippedAttrs[0])
	}
	if len(a.LocalPreds[0])+len(a.LocalPreds[1]) != 0 {
		t.Fatal("Q1 has no local predicates")
	}
}

func TestAnalyzeQ2(t *testing.T) {
	q, err := Parse(q2Src)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.JoinConds) != 2 {
		t.Fatalf("JoinConds count = %d, want 2", len(a.JoinConds))
	}
	// Join attributes of Q2: temp, x, y; shipped adds hum, pres => 3 of
	// 5 = the paper's "60% join attributes" setting.
	if !reflect.DeepEqual(a.JoinAttrs[0], []string{"temp", "x", "y"}) {
		t.Fatalf("JoinAttrs[0] = %v", a.JoinAttrs[0])
	}
	if !reflect.DeepEqual(a.ShippedAttrs[0], []string{"hum", "pres", "temp", "x", "y"}) {
		t.Fatalf("ShippedAttrs[0] = %v", a.ShippedAttrs[0])
	}
}

func TestAnalyzeLocalAndConstPreds(t *testing.T) {
	q, err := Parse(`SELECT A.temp FROM Sensors A, Sensors B
		WHERE A.light > 100 AND B.light > 100 AND A.temp = B.temp AND 1 < 2 ONCE`)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.LocalPreds[0]) != 1 || len(a.LocalPreds[1]) != 1 {
		t.Fatalf("local preds = %v / %v", a.LocalPreds[0], a.LocalPreds[1])
	}
	if len(a.JoinConds) != 1 {
		t.Fatalf("join conds = %v", a.JoinConds)
	}
	if len(a.ConstPreds) != 1 {
		t.Fatalf("const preds = %v", a.ConstPreds)
	}
	// Local predicate attributes do not appear in JoinAttrs.
	if !reflect.DeepEqual(a.JoinAttrs[0], []string{"temp"}) {
		t.Fatalf("JoinAttrs[0] = %v", a.JoinAttrs[0])
	}
}

func TestAnalyzeNoWhere(t *testing.T) {
	q, err := Parse("SELECT A.temp FROM Sensors A ONCE")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	if a.HasJoin() {
		t.Fatal("no WHERE means no join conditions")
	}
	if a.JoinPredicate() != nil {
		t.Fatal("JoinPredicate should be nil")
	}
	if a.LocalPredicate(0) != nil {
		t.Fatal("LocalPredicate should be nil")
	}
}

func TestConjunctsAndAndAll(t *testing.T) {
	p, err := ParsePredicate("A.a > 1 AND (A.b < 2 AND A.c = 3)")
	if err != nil {
		t.Fatal(err)
	}
	cs := Conjuncts(p)
	if len(cs) != 3 {
		t.Fatalf("Conjuncts = %d, want 3", len(cs))
	}
	rebuilt := AndAll(cs)
	if rebuilt.String() == "" {
		t.Fatal("AndAll produced empty")
	}
	if len(Conjuncts(rebuilt)) != 3 {
		t.Fatal("AndAll must preserve conjunct count")
	}
	if AndAll(nil) != nil {
		t.Fatal("AndAll(nil) should be nil")
	}
	if Conjuncts(nil) != nil {
		t.Fatal("Conjuncts(nil) should be nil")
	}
}

func TestAnalyzeThreeWayJoin(t *testing.T) {
	q, err := Parse(`SELECT A.temp, B.temp, C.temp FROM S A, S B, S C
		WHERE abs(A.temp - B.temp) < 1 AND abs(B.temp - C.temp) < 1 ONCE`)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.JoinConds) != 2 {
		t.Fatalf("JoinConds = %d", len(a.JoinConds))
	}
	for i := 0; i < 3; i++ {
		if !reflect.DeepEqual(a.JoinAttrs[i], []string{"temp"}) {
			t.Fatalf("JoinAttrs[%d] = %v", i, a.JoinAttrs[i])
		}
	}
}

func TestAnalyzeOrAcrossRelationsIsJoinCond(t *testing.T) {
	// A disjunction spanning two relations cannot be split; it is a join
	// condition as a whole.
	q, err := Parse("SELECT A.a FROM S A, S B WHERE A.a > 1 OR B.b > 1 ONCE")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.JoinConds) != 1 || len(a.LocalPreds[0]) != 0 {
		t.Fatalf("OR across relations misclassified: join=%v local=%v", a.JoinConds, a.LocalPreds)
	}
}
