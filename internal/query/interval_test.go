package query

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIntervalBasics(t *testing.T) {
	i := Exact(5)
	if !i.IsExact() || !i.Contains(5) || i.Contains(5.1) {
		t.Fatal("Exact(5) misbehaves")
	}
	e := Everything()
	if !e.Contains(1e308) || !e.Contains(-1e308) {
		t.Fatal("Everything should contain all finite values")
	}
}

func TestIntervalArithmetic(t *testing.T) {
	a := Interval{1, 2}
	b := Interval{-3, 4}
	if got := a.Add(b); got != (Interval{-2, 6}) {
		t.Fatalf("Add = %+v", got)
	}
	if got := a.Sub(b); got != (Interval{-3, 5}) {
		t.Fatalf("Sub = %+v", got)
	}
	if got := a.Neg(); got != (Interval{-2, -1}) {
		t.Fatalf("Neg = %+v", got)
	}
	if got := a.Mul(b); got != (Interval{-6, 8}) {
		t.Fatalf("Mul = %+v", got)
	}
	if got := a.Div(Interval{2, 4}); got != (Interval{0.25, 1}) {
		t.Fatalf("Div = %+v", got)
	}
	if got := a.Div(b); !math.IsInf(got.Lo, -1) || !math.IsInf(got.Hi, 1) {
		t.Fatalf("Div by zero-containing interval should be unbounded, got %+v", got)
	}
}

func TestIntervalAbsSquareSqrt(t *testing.T) {
	if got := (Interval{2, 3}).Abs(); got != (Interval{2, 3}) {
		t.Fatalf("Abs positive = %+v", got)
	}
	if got := (Interval{-3, -2}).Abs(); got != (Interval{2, 3}) {
		t.Fatalf("Abs negative = %+v", got)
	}
	if got := (Interval{-2, 3}).Abs(); got != (Interval{0, 3}) {
		t.Fatalf("Abs mixed = %+v", got)
	}
	if got := (Interval{-2, 3}).Square(); got != (Interval{0, 9}) {
		t.Fatalf("Square mixed = %+v", got)
	}
	if got := (Interval{4, 9}).Sqrt(); got != (Interval{2, 3}) {
		t.Fatalf("Sqrt = %+v", got)
	}
	if got := (Interval{-4, 9}).Sqrt(); got != (Interval{0, 3}) {
		t.Fatalf("Sqrt clamps negatives: %+v", got)
	}
}

func TestIntervalMinMax(t *testing.T) {
	a, b := Interval{1, 5}, Interval{2, 3}
	if got := a.Min(b); got != (Interval{1, 3}) {
		t.Fatalf("Min = %+v", got)
	}
	if got := a.Max(b); got != (Interval{2, 5}) {
		t.Fatalf("Max = %+v", got)
	}
}

func TestTriLogic(t *testing.T) {
	if True.And(True) != True || True.And(Maybe) != Maybe || False.And(Maybe) != False {
		t.Fatal("And table wrong")
	}
	if False.Or(False) != False || False.Or(Maybe) != Maybe || True.Or(Maybe) != True {
		t.Fatal("Or table wrong")
	}
	if True.Not() != False || False.Not() != True || Maybe.Not() != Maybe {
		t.Fatal("Not table wrong")
	}
	if !True.Possible() || !Maybe.Possible() || False.Possible() {
		t.Fatal("Possible wrong")
	}
	if TriOf(true) != True || TriOf(false) != False {
		t.Fatal("TriOf wrong")
	}
	if False.String() != "false" || True.String() != "true" || Maybe.String() != "maybe" {
		t.Fatal("String wrong")
	}
}

func TestCmpOverIntervals(t *testing.T) {
	if CmpLess(Interval{1, 2}, Interval{3, 4}) != True {
		t.Fatal("disjoint less should be True")
	}
	if CmpLess(Interval{3, 4}, Interval{1, 2}) != False {
		t.Fatal("reversed disjoint less should be False")
	}
	if CmpLess(Interval{1, 3}, Interval{2, 4}) != Maybe {
		t.Fatal("overlapping less should be Maybe")
	}
	if CmpLess(Interval{1, 2}, Interval{2, 3}) != Maybe {
		t.Fatal("touching less should be Maybe (2 < 2 false, 1 < 3 true)")
	}
	if CmpLessEq(Interval{1, 2}, Interval{2, 3}) != True {
		t.Fatal("touching leq should be True")
	}
	if CmpEq(Exact(2), Exact(2)) != True {
		t.Fatal("equal exact should be True")
	}
	if CmpEq(Interval{1, 2}, Interval{3, 4}) != False {
		t.Fatal("disjoint eq should be False")
	}
	if CmpEq(Interval{1, 3}, Interval{2, 4}) != Maybe {
		t.Fatal("overlapping eq should be Maybe")
	}
}

// Soundness: for random intervals and random points inside them, the
// exact comparison result must be compatible with the tri-state result.
func TestQuickCmpSoundness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ri := func() Interval {
			a, b := rng.Float64()*20-10, rng.Float64()*20-10
			if a > b {
				a, b = b, a
			}
			return Interval{a, b}
		}
		l, r := ri(), ri()
		lv := l.Lo + rng.Float64()*(l.Hi-l.Lo)
		rv := r.Lo + rng.Float64()*(r.Hi-r.Lo)
		check := func(tri Tri, exact bool) bool {
			switch tri {
			case True:
				return exact
			case False:
				return !exact
			default:
				return true
			}
		}
		return check(CmpLess(l, r), lv < rv) &&
			check(CmpLessEq(l, r), lv <= rv) &&
			check(CmpEq(l, r), lv == rv)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Soundness: interval arithmetic must enclose the pointwise results.
func TestQuickArithmeticEnclosure(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ri := func() (Interval, float64) {
			a, b := rng.Float64()*20-10, rng.Float64()*20-10
			if a > b {
				a, b = b, a
			}
			v := a + rng.Float64()*(b-a)
			return Interval{a, b}, v
		}
		x, xv := ri()
		y, yv := ri()
		eps := 1e-9
		in := func(i Interval, v float64) bool {
			return v >= i.Lo-eps && v <= i.Hi+eps
		}
		ok := in(x.Add(y), xv+yv) &&
			in(x.Sub(y), xv-yv) &&
			in(x.Mul(y), xv*yv) &&
			in(x.Neg(), -xv) &&
			in(x.Abs(), math.Abs(xv)) &&
			in(x.Square(), xv*xv) &&
			in(x.Min(y), math.Min(xv, yv)) &&
			in(x.Max(y), math.Max(xv, yv))
		if yv != 0 {
			ok = ok && in(x.Div(y), xv/yv)
		}
		if xv >= 0 {
			ok = ok && in(x.Sqrt(), math.Sqrt(xv))
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
