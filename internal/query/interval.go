// Package query implements the declarative query layer of SENS-Join: a
// lexer and parser for the paper's SQL dialect (§III, "Problem
// statement"), an expression AST with exact evaluation, and an interval
// (tri-state) evaluation mode.
//
// The interval mode is what makes the quantized pre-computation correct:
// the base station joins *cells*, not values (§V-B, footnote 2). A join
// condition evaluated over cell intervals returns True, False, or Maybe;
// a candidate pair is discarded only on a definite False, so quantization
// can produce false positives (harmless: filtered by the exact final
// join) but never false negatives.
package query

import "math"

// Interval is a closed numeric interval [Lo, Hi].
type Interval struct {
	Lo, Hi float64
}

// Exact returns the degenerate interval [v, v].
func Exact(v float64) Interval { return Interval{v, v} }

// Contains reports whether v lies in i.
func (i Interval) Contains(v float64) bool { return v >= i.Lo && v <= i.Hi }

// IsExact reports whether the interval is a single point.
func (i Interval) IsExact() bool { return i.Lo == i.Hi }

// Everything is the interval covering all reals.
func Everything() Interval { return Interval{math.Inf(-1), math.Inf(1)} }

// Add returns i + j.
func (i Interval) Add(j Interval) Interval { return Interval{i.Lo + j.Lo, i.Hi + j.Hi} }

// Sub returns i - j.
func (i Interval) Sub(j Interval) Interval { return Interval{i.Lo - j.Hi, i.Hi - j.Lo} }

// Neg returns -i.
func (i Interval) Neg() Interval { return Interval{-i.Hi, -i.Lo} }

// Mul returns i * j.
func (i Interval) Mul(j Interval) Interval {
	a, b, c, d := i.Lo*j.Lo, i.Lo*j.Hi, i.Hi*j.Lo, i.Hi*j.Hi
	return Interval{min4(a, b, c, d), max4(a, b, c, d)}
}

// Div returns i / j. If j contains zero the result is unbounded: the
// conservative answer that keeps tri-state evaluation sound.
func (i Interval) Div(j Interval) Interval {
	if j.Lo <= 0 && j.Hi >= 0 {
		return Everything()
	}
	a, b, c, d := i.Lo/j.Lo, i.Lo/j.Hi, i.Hi/j.Lo, i.Hi/j.Hi
	return Interval{min4(a, b, c, d), max4(a, b, c, d)}
}

// Abs returns |i|.
func (i Interval) Abs() Interval {
	switch {
	case i.Lo >= 0:
		return i
	case i.Hi <= 0:
		return Interval{-i.Hi, -i.Lo}
	default:
		return Interval{0, math.Max(-i.Lo, i.Hi)}
	}
}

// Square returns i^2.
func (i Interval) Square() Interval {
	a := i.Abs()
	return Interval{a.Lo * a.Lo, a.Hi * a.Hi}
}

// Sqrt returns sqrt(i) with the lower bound clamped at zero (negative
// parts cannot occur for in-range inputs; clamping keeps soundness for
// out-of-range cells).
func (i Interval) Sqrt() Interval {
	lo := i.Lo
	if lo < 0 {
		lo = 0
	}
	hi := i.Hi
	if hi < 0 {
		hi = 0
	}
	return Interval{math.Sqrt(lo), math.Sqrt(hi)}
}

// Min returns the pointwise minimum of i and j.
func (i Interval) Min(j Interval) Interval {
	return Interval{math.Min(i.Lo, j.Lo), math.Min(i.Hi, j.Hi)}
}

// Max returns the pointwise maximum of i and j.
func (i Interval) Max(j Interval) Interval {
	return Interval{math.Max(i.Lo, j.Lo), math.Max(i.Hi, j.Hi)}
}

func min4(a, b, c, d float64) float64 {
	return math.Min(math.Min(a, b), math.Min(c, d))
}

func max4(a, b, c, d float64) float64 {
	return math.Max(math.Max(a, b), math.Max(c, d))
}

// Tri is three-valued logic for predicates over intervals.
type Tri int

// Tri-state truth values.
const (
	False Tri = iota
	Maybe
	True
)

// String returns the truth value's name.
func (t Tri) String() string {
	switch t {
	case False:
		return "false"
	case True:
		return "true"
	default:
		return "maybe"
	}
}

// TriOf lifts a boolean to a Tri.
func TriOf(b bool) Tri {
	if b {
		return True
	}
	return False
}

// And combines with three-valued conjunction.
func (t Tri) And(u Tri) Tri {
	if t == False || u == False {
		return False
	}
	if t == True && u == True {
		return True
	}
	return Maybe
}

// Or combines with three-valued disjunction.
func (t Tri) Or(u Tri) Tri {
	if t == True || u == True {
		return True
	}
	if t == False && u == False {
		return False
	}
	return Maybe
}

// Not negates, leaving Maybe unchanged.
func (t Tri) Not() Tri {
	switch t {
	case True:
		return False
	case False:
		return True
	default:
		return Maybe
	}
}

// Possible reports whether the predicate could hold (True or Maybe).
// The pre-computation join keeps a pair iff Possible.
func (t Tri) Possible() bool { return t != False }

// CmpLess compares l < r over intervals.
func CmpLess(l, r Interval) Tri {
	if l.Hi < r.Lo {
		return True
	}
	if l.Lo >= r.Hi {
		return False
	}
	return Maybe
}

// CmpLessEq compares l <= r over intervals.
func CmpLessEq(l, r Interval) Tri {
	if l.Hi <= r.Lo {
		return True
	}
	if l.Lo > r.Hi {
		return False
	}
	return Maybe
}

// CmpEq compares l = r over intervals.
func CmpEq(l, r Interval) Tri {
	if l.Hi < r.Lo || r.Hi < l.Lo {
		return False
	}
	if l.IsExact() && r.IsExact() && l.Lo == r.Lo {
		return True
	}
	return Maybe
}
