package query

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFoldCollapsesConstants(t *testing.T) {
	cases := map[string]float64{
		"1 + 2 * 3":             7,
		"abs(0 - 5) + sqrt(16)": 9,
		"least(3, 1 + 1, 9)":    2,
		"greatest(1, 2) * 4":    8,
		"distance(0, 0, 3, 4)":  5,
		"-(2 + 3)":              -5,
	}
	for src, want := range cases {
		q, err := Parse("SELECT " + src + " FROM S A ONCE")
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		folded := Fold(q.Select[0].Expr)
		c, ok := folded.(Const)
		if !ok {
			t.Fatalf("%q did not fold: %T", src, folded)
		}
		if math.Abs(c.V-want) > 1e-12 {
			t.Fatalf("%q folded to %g, want %g", src, c.V, want)
		}
	}
}

func TestFoldKeepsAttrsUnfolded(t *testing.T) {
	q, err := Parse("SELECT A.a + 2 * 3 FROM S A ONCE")
	if err != nil {
		t.Fatal(err)
	}
	folded := Fold(q.Select[0].Expr)
	a, ok := folded.(Arith)
	if !ok || a.Op != OpAdd {
		t.Fatalf("folded = %#v", folded)
	}
	if c, ok := a.R.(Const); !ok || c.V != 6 {
		t.Fatalf("right side should fold to 6: %#v", a.R)
	}
}

// Property: folding never changes the value under any environment.
func TestQuickFoldPreservesSemantics(t *testing.T) {
	exprs := []string{
		"A.a + 2 * 3 - B.b / (1 + 1)",
		"abs(A.a - B.b) * greatest(2, 1 + 0)",
		"distance(A.x, A.y, 0 + 0, 4 * 25) + sqrt(4)",
		"least(A.a, 10 - 3, B.b)",
		"-(A.a - (2 + 3))",
	}
	parsed := make([]NumExpr, len(exprs))
	for i, src := range exprs {
		q, err := Parse("SELECT " + src + " FROM S A, S B WHERE A.a = B.b ONCE")
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		parsed[i] = q.Select[0].Expr
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		env := mapEnv{
			0: {"a": rng.Float64()*20 - 10, "x": rng.Float64() * 100, "y": rng.Float64() * 100},
			1: {"b": rng.Float64()*20 - 10},
		}
		for _, e := range parsed {
			a, b := e.Eval(env), Fold(e).Eval(env)
			if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFoldBool(t *testing.T) {
	p, err := ParsePredicate("A.a - B.b > 2 + 1 AND NOT (A.a < 1 * 4)")
	if err != nil {
		t.Fatal(err)
	}
	folded := FoldBool(p)
	and := folded.(And)
	if c, ok := and.L.(Cmp).R.(Const); !ok || c.V != 3 {
		t.Fatalf("threshold should fold to 3: %#v", and.L)
	}
	not := and.R.(Not)
	if c, ok := not.X.(Cmp).R.(Const); !ok || c.V != 4 {
		t.Fatalf("inner bound should fold to 4: %#v", not.X)
	}
}
