package query

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokSymbol  // ( ) , . | and arithmetic
	tokCompare // < <= > >= = != <>
	tokKeyword // SELECT FROM WHERE AND OR NOT ONCE SAMPLE PERIOD AS
)

type token struct {
	kind tokKind
	text string
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true,
	"AND": true, "OR": true, "NOT": true,
	"ONCE": true, "SAMPLE": true, "PERIOD": true, "AS": true,
	"GROUP": true, "BY": true, "ORDER": true,
	"ASC": true, "DESC": true, "LIMIT": true,
}

// lex splits src into tokens. Keywords are recognized case-insensitively
// and normalized to upper case; identifiers keep their spelling.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c >= '0' && c <= '9' || c == '.' && i+1 < len(src) && src[i+1] >= '0' && src[i+1] <= '9':
			start := i
			seenDot := false
			seenExp := false
			for i < len(src) {
				d := src[i]
				if d >= '0' && d <= '9' {
					i++
					continue
				}
				if d == '.' && !seenDot && !seenExp {
					seenDot = true
					i++
					continue
				}
				if (d == 'e' || d == 'E') && !seenExp && i > start {
					seenExp = true
					i++
					if i < len(src) && (src[i] == '+' || src[i] == '-') {
						i++
					}
					continue
				}
				break
			}
			toks = append(toks, token{tokNumber, src[start:i], start})
		case isIdentStart(rune(c)):
			start := i
			for i < len(src) && isIdentPart(rune(src[i])) {
				i++
			}
			word := src[start:i]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, token{tokKeyword, up, start})
			} else {
				toks = append(toks, token{tokIdent, word, start})
			}
		case c == '<':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{tokCompare, "<=", i})
				i += 2
			} else if i+1 < len(src) && src[i+1] == '>' {
				toks = append(toks, token{tokCompare, "!=", i})
				i += 2
			} else {
				toks = append(toks, token{tokCompare, "<", i})
				i++
			}
		case c == '>':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{tokCompare, ">=", i})
				i += 2
			} else {
				toks = append(toks, token{tokCompare, ">", i})
				i++
			}
		case c == '=':
			toks = append(toks, token{tokCompare, "=", i})
			i++
		case c == '!':
			if i+1 < len(src) && src[i+1] == '=' {
				toks = append(toks, token{tokCompare, "!=", i})
				i += 2
			} else {
				return nil, fmt.Errorf("query: unexpected '!' at offset %d", i)
			}
		case strings.ContainsRune("(),.|+-*/", rune(c)):
			toks = append(toks, token{tokSymbol, string(c), i})
			i++
		default:
			return nil, fmt.Errorf("query: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, token{tokEOF, "", len(src)})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
