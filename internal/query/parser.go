package query

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses a query in the paper's SQL dialect and binds attribute
// references to FROM-clause indexes. The grammar (§III):
//
//	SELECT item, ...  |  SELECT *
//	FROM Relation [Alias], ...
//	[WHERE predicate]
//	SAMPLE PERIOD x  |  ONCE
//
// Predicates combine comparisons of arithmetic expressions over
// attributes with AND/OR/NOT; abs(x) (also written |x|), sqrt,
// distance(x1,y1,x2,y2), least and greatest are built-in functions;
// MIN/MAX/SUM/AVG/COUNT aggregate SELECT items.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if err := bind(q); err != nil {
		return nil, err
	}
	return q, nil
}

// ParsePredicate parses a standalone boolean expression (used by tests
// and by programmatic query construction). References are left unbound.
func ParsePredicate(src string) (BoolExpr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	n, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if err := p.expectEOF(); err != nil {
		return nil, err
	}
	b, ok := n.(BoolExpr)
	if !ok {
		return nil, fmt.Errorf("query: expression %q is not a predicate", src)
	}
	return b, nil
}

type parser struct {
	toks []token
	pos  int
	src  string
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) accept(kind tokKind, text string) bool {
	t := p.cur()
	if t.kind == kind && (text == "" || t.text == text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	t := p.cur()
	if t.kind == kind && (text == "" || t.text == text) {
		p.pos++
		return t, nil
	}
	return t, fmt.Errorf("query: expected %q at offset %d, found %q", text, t.pos, t.text)
}

func (p *parser) expectEOF() error {
	if p.cur().kind != tokEOF {
		return fmt.Errorf("query: trailing input at offset %d: %q", p.cur().pos, p.cur().text)
	}
	return nil
}

func (p *parser) parseQuery() (*Query, error) {
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	q := &Query{}
	if p.accept(tokSymbol, "*") {
		q.Star = true
	} else {
		for {
			item, err := p.parseSelectItem()
			if err != nil {
				return nil, err
			}
			q.Select = append(q.Select, item)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	for {
		rel, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		ref := RelRef{Relation: rel.text}
		if p.cur().kind == tokIdent {
			ref.Alias = p.next().text
		} else {
			ref.Alias = rel.text
		}
		q.From = append(q.From, ref)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if p.accept(tokKeyword, "WHERE") {
		n, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		b, ok := n.(BoolExpr)
		if !ok {
			return nil, fmt.Errorf("query: WHERE clause is not a predicate")
		}
		q.Where = b
	}
	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			n, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			num, ok := n.(NumExpr)
			if !ok {
				return nil, fmt.Errorf("query: GROUP BY expressions must be numeric")
			}
			q.GroupBy = append(q.GroupBy, num)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			t, err := p.expect(tokNumber, "")
			if err != nil {
				return nil, fmt.Errorf("query: ORDER BY takes 1-based output column positions: %w", err)
			}
			col, err := strconv.Atoi(t.text)
			if err != nil || col < 1 || col > len(q.Select) {
				return nil, fmt.Errorf("query: ORDER BY column %q out of range 1..%d", t.text, len(q.Select))
			}
			key := OrderKey{Col: col}
			if p.accept(tokKeyword, "DESC") {
				key.Desc = true
			} else {
				p.accept(tokKeyword, "ASC")
			}
			q.OrderBy = append(q.OrderBy, key)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if p.accept(tokKeyword, "LIMIT") {
		t, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		v, err := strconv.Atoi(t.text)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("query: bad LIMIT %q", t.text)
		}
		if len(q.OrderBy) == 0 {
			return nil, fmt.Errorf("query: LIMIT requires ORDER BY (otherwise the chosen rows depend on the execution strategy)")
		}
		q.Limit = v
	}
	switch {
	case p.accept(tokKeyword, "ONCE"):
		q.Mode = Once
	case p.accept(tokKeyword, "SAMPLE"):
		if _, err := p.expect(tokKeyword, "PERIOD"); err != nil {
			return nil, err
		}
		t, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("query: bad sample period %q", t.text)
		}
		q.Mode = Periodic
		q.Period = v
	default:
		return nil, fmt.Errorf("query: expected ONCE or SAMPLE PERIOD at offset %d", p.cur().pos)
	}
	if err := p.expectEOF(); err != nil {
		return nil, err
	}
	return q, nil
}

var aggNames = map[string]AggKind{
	"MIN": AggMin, "MAX": AggMax, "SUM": AggSum, "AVG": AggAvg, "COUNT": AggCount,
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	item := SelectItem{}
	if p.cur().kind == tokIdent {
		if agg, ok := aggNames[strings.ToUpper(p.cur().text)]; ok &&
			p.toks[p.pos+1].kind == tokSymbol && p.toks[p.pos+1].text == "(" {
			p.pos += 2
			item.Agg = agg
			n, err := p.parseAdditive()
			if err != nil {
				return item, err
			}
			num, ok := n.(NumExpr)
			if !ok {
				return item, fmt.Errorf("query: aggregate argument must be numeric")
			}
			item.Expr = num
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return item, err
			}
			return p.finishSelectItem(item)
		}
	}
	n, err := p.parseAdditive()
	if err != nil {
		return item, err
	}
	num, ok := n.(NumExpr)
	if !ok {
		return item, fmt.Errorf("query: SELECT item must be numeric")
	}
	item.Expr = num
	return p.finishSelectItem(item)
}

func (p *parser) finishSelectItem(item SelectItem) (SelectItem, error) {
	if p.accept(tokKeyword, "AS") {
		t, err := p.expect(tokIdent, "")
		if err != nil {
			return item, err
		}
		item.As = t.text
	}
	return item, nil
}

// node is either a NumExpr or a BoolExpr; combination operators
// type-check their operands.

func (p *parser) parseOr() (any, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		lb, lok := l.(BoolExpr)
		rb, rok := r.(BoolExpr)
		if !lok || !rok {
			return nil, fmt.Errorf("query: OR requires predicates on both sides")
		}
		l = Or{lb, rb}
	}
	return l, nil
}

func (p *parser) parseAnd() (any, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		lb, lok := l.(BoolExpr)
		rb, rok := r.(BoolExpr)
		if !lok || !rok {
			return nil, fmt.Errorf("query: AND requires predicates on both sides")
		}
		l = And{lb, rb}
	}
	return l, nil
}

func (p *parser) parseNot() (any, error) {
	if p.accept(tokKeyword, "NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		b, ok := x.(BoolExpr)
		if !ok {
			return nil, fmt.Errorf("query: NOT requires a predicate")
		}
		return Not{b}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (any, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tokCompare {
		return l, nil
	}
	opText := p.next().text
	r, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	ln, lok := l.(NumExpr)
	rn, rok := r.(NumExpr)
	if !lok || !rok {
		return nil, fmt.Errorf("query: comparison requires numeric operands")
	}
	var op CmpOp
	switch opText {
	case "<":
		op = CmpLT
	case "<=":
		op = CmpLE
	case ">":
		op = CmpGT
	case ">=":
		op = CmpGE
	case "=":
		op = CmpEQ
	default:
		op = CmpNE
	}
	return Cmp{Op: op, L: ln, R: rn}, nil
}

func (p *parser) parseAdditive() (any, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op ArithOp
		if p.accept(tokSymbol, "+") {
			op = OpAdd
		} else if p.accept(tokSymbol, "-") {
			op = OpSub
		} else {
			return l, nil
		}
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		ln, lok := l.(NumExpr)
		rn, rok := r.(NumExpr)
		if !lok || !rok {
			return nil, fmt.Errorf("query: arithmetic requires numeric operands")
		}
		l = Arith{Op: op, L: ln, R: rn}
	}
}

func (p *parser) parseMultiplicative() (any, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op ArithOp
		if p.accept(tokSymbol, "*") {
			op = OpMul
		} else if p.accept(tokSymbol, "/") {
			op = OpDiv
		} else {
			return l, nil
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		ln, lok := l.(NumExpr)
		rn, rok := r.(NumExpr)
		if !lok || !rok {
			return nil, fmt.Errorf("query: arithmetic requires numeric operands")
		}
		l = Arith{Op: op, L: ln, R: rn}
	}
}

func (p *parser) parseUnary() (any, error) {
	if p.accept(tokSymbol, "-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		n, ok := x.(NumExpr)
		if !ok {
			return nil, fmt.Errorf("query: unary minus requires a numeric operand")
		}
		return Neg{n}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (any, error) {
	t := p.cur()
	switch {
	case t.kind == tokNumber:
		p.pos++
		v, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("query: bad number %q at offset %d", t.text, t.pos)
		}
		return Const{v}, nil
	case t.kind == tokSymbol && t.text == "(":
		p.pos++
		n, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return n, nil
	case t.kind == tokSymbol && t.text == "|":
		// |expr| is absolute value, as written in the paper's Q2.
		p.pos++
		n, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, "|"); err != nil {
			return nil, err
		}
		num, ok := n.(NumExpr)
		if !ok {
			return nil, fmt.Errorf("query: |...| requires a numeric operand")
		}
		return Abs{num}, nil
	case t.kind == tokIdent:
		p.pos++
		// Function call?
		if p.cur().kind == tokSymbol && p.cur().text == "(" {
			return p.parseCall(t.text)
		}
		// Qualified attribute?
		if p.accept(tokSymbol, ".") {
			a, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			return Attr{Ref: AttrRef{Alias: t.text, Name: a.text, Rel: -1}}, nil
		}
		return Attr{Ref: AttrRef{Name: t.text, Rel: -1}}, nil
	}
	return nil, fmt.Errorf("query: unexpected token %q at offset %d", t.text, t.pos)
}

func (p *parser) parseCall(name string) (any, error) {
	p.pos++ // consume '('
	var args []NumExpr
	if !(p.cur().kind == tokSymbol && p.cur().text == ")") {
		for {
			n, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			num, ok := n.(NumExpr)
			if !ok {
				return nil, fmt.Errorf("query: function arguments must be numeric")
			}
			args = append(args, num)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
	}
	if _, err := p.expect(tokSymbol, ")"); err != nil {
		return nil, err
	}
	arity := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("query: %s expects %d arguments, got %d", name, n, len(args))
		}
		return nil
	}
	switch strings.ToLower(name) {
	case "abs":
		if err := arity(1); err != nil {
			return nil, err
		}
		return Abs{args[0]}, nil
	case "sqrt":
		if err := arity(1); err != nil {
			return nil, err
		}
		return Sqrt{args[0]}, nil
	case "distance":
		if err := arity(4); err != nil {
			return nil, err
		}
		return Distance{args[0], args[1], args[2], args[3]}, nil
	case "least":
		if len(args) < 2 {
			return nil, fmt.Errorf("query: least needs at least 2 arguments")
		}
		return MinMax{IsMax: false, Args: args}, nil
	case "greatest":
		if len(args) < 2 {
			return nil, fmt.Errorf("query: greatest needs at least 2 arguments")
		}
		return MinMax{IsMax: true, Args: args}, nil
	}
	return nil, fmt.Errorf("query: unknown function %q", name)
}

// bind resolves every attribute reference against the FROM list. A bare
// attribute (no alias) is allowed only when the FROM list has a single
// entry.
func bind(q *Query) error {
	var err error
	for i := range q.Select {
		q.Select[i].Expr, err = rebindNum(q, q.Select[i].Expr)
		if err != nil {
			return err
		}
	}
	if q.Where != nil {
		q.Where, err = rebindBool(q, q.Where)
		if err != nil {
			return err
		}
	}
	for i := range q.GroupBy {
		q.GroupBy[i], err = rebindNum(q, q.GroupBy[i])
		if err != nil {
			return err
		}
	}
	return nil
}

func resolveRef(q *Query, ref AttrRef) (AttrRef, error) {
	if ref.Alias == "" {
		if len(q.From) != 1 {
			return ref, fmt.Errorf("query: unqualified attribute %q is ambiguous with %d relations", ref.Name, len(q.From))
		}
		ref.Alias = q.From[0].Alias
		ref.Rel = 0
		return ref, nil
	}
	idx := q.AliasIndex(ref.Alias)
	if idx < 0 {
		return ref, fmt.Errorf("query: unknown alias %q", ref.Alias)
	}
	ref.Rel = idx
	return ref, nil
}

func rebindNum(q *Query, e NumExpr) (NumExpr, error) {
	switch n := e.(type) {
	case Const:
		return n, nil
	case Attr:
		ref, err := resolveRef(q, n.Ref)
		if err != nil {
			return nil, err
		}
		return Attr{Ref: ref}, nil
	case Neg:
		x, err := rebindNum(q, n.X)
		if err != nil {
			return nil, err
		}
		return Neg{x}, nil
	case Abs:
		x, err := rebindNum(q, n.X)
		if err != nil {
			return nil, err
		}
		return Abs{x}, nil
	case Sqrt:
		x, err := rebindNum(q, n.X)
		if err != nil {
			return nil, err
		}
		return Sqrt{x}, nil
	case Arith:
		l, err := rebindNum(q, n.L)
		if err != nil {
			return nil, err
		}
		r, err := rebindNum(q, n.R)
		if err != nil {
			return nil, err
		}
		return Arith{Op: n.Op, L: l, R: r}, nil
	case Distance:
		x1, err := rebindNum(q, n.X1)
		if err != nil {
			return nil, err
		}
		y1, err := rebindNum(q, n.Y1)
		if err != nil {
			return nil, err
		}
		x2, err := rebindNum(q, n.X2)
		if err != nil {
			return nil, err
		}
		y2, err := rebindNum(q, n.Y2)
		if err != nil {
			return nil, err
		}
		return Distance{x1, y1, x2, y2}, nil
	case MinMax:
		args := make([]NumExpr, len(n.Args))
		for i, a := range n.Args {
			x, err := rebindNum(q, a)
			if err != nil {
				return nil, err
			}
			args[i] = x
		}
		return MinMax{IsMax: n.IsMax, Args: args}, nil
	}
	return nil, fmt.Errorf("query: unknown numeric node %T", e)
}

func rebindBool(q *Query, e BoolExpr) (BoolExpr, error) {
	switch n := e.(type) {
	case Cmp:
		l, err := rebindNum(q, n.L)
		if err != nil {
			return nil, err
		}
		r, err := rebindNum(q, n.R)
		if err != nil {
			return nil, err
		}
		return Cmp{Op: n.Op, L: l, R: r}, nil
	case And:
		l, err := rebindBool(q, n.L)
		if err != nil {
			return nil, err
		}
		r, err := rebindBool(q, n.R)
		if err != nil {
			return nil, err
		}
		return And{l, r}, nil
	case Or:
		l, err := rebindBool(q, n.L)
		if err != nil {
			return nil, err
		}
		r, err := rebindBool(q, n.R)
		if err != nil {
			return nil, err
		}
		return Or{l, r}, nil
	case Not:
		x, err := rebindBool(q, n.X)
		if err != nil {
			return nil, err
		}
		return Not{x}, nil
	}
	return nil, fmt.Errorf("query: unknown boolean node %T", e)
}
