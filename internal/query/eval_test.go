package query

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// mapEnv binds (rel, attr) pairs to values.
type mapEnv map[int]map[string]float64

func (m mapEnv) Value(ref AttrRef) float64 { return m[ref.Rel][ref.Name] }

// cellsEnv binds (rel, attr) pairs to intervals.
type cellsEnv map[int]map[string]Interval

func (m cellsEnv) Range(ref AttrRef) Interval { return m[ref.Rel][ref.Name] }

func mustPredicate(t *testing.T, src string) BoolExpr {
	t.Helper()
	q, err := Parse("SELECT A.x FROM S A, S B WHERE " + src + " ONCE")
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return q.Where
}

func TestEvalQ1Predicate(t *testing.T) {
	p := mustPredicate(t, "A.temp - B.temp > 10.0")
	env := mapEnv{
		0: {"temp": 25},
		1: {"temp": 10},
	}
	if !p.Eval(env) {
		t.Fatal("25 - 10 > 10 should hold")
	}
	env[1]["temp"] = 20
	if p.Eval(env) {
		t.Fatal("25 - 20 > 10 should not hold")
	}
}

func TestEvalQ2Predicate(t *testing.T) {
	p := mustPredicate(t, "abs(A.temp - B.temp) < 0.3 AND distance(A.x, A.y, B.x, B.y) > 100")
	env := mapEnv{
		0: {"temp": 20.1, "x": 0, "y": 0},
		1: {"temp": 20.2, "x": 200, "y": 0},
	}
	if !p.Eval(env) {
		t.Fatal("similar temps 200 m apart should match")
	}
	env[1]["x"] = 50
	if p.Eval(env) {
		t.Fatal("50 m apart should fail the distance condition")
	}
}

func TestEvalArithmetic(t *testing.T) {
	q, err := Parse("SELECT A.a + A.b * 2 - 6 / A.c FROM S A ONCE")
	if err != nil {
		t.Fatal(err)
	}
	env := mapEnv{0: {"a": 1, "b": 3, "c": 2}}
	if got := q.Select[0].Expr.Eval(env); got != 4 {
		t.Fatalf("1 + 3*2 - 6/2 = %g, want 4", got)
	}
}

func TestEvalFunctions(t *testing.T) {
	q, err := Parse("SELECT least(A.a, A.b), greatest(A.a, A.b), sqrt(A.a), abs(0 - A.b) FROM S A ONCE")
	if err != nil {
		t.Fatal(err)
	}
	env := mapEnv{0: {"a": 9, "b": 4}}
	wants := []float64{4, 9, 3, 4}
	for i, want := range wants {
		if got := q.Select[i].Expr.Eval(env); got != want {
			t.Fatalf("item %d = %g, want %g", i, got, want)
		}
	}
}

func TestTruthPrunesDefinitelyFalse(t *testing.T) {
	p := mustPredicate(t, "abs(A.temp - B.temp) < 0.3")
	cells := cellsEnv{
		0: {"temp": Interval{20.0, 20.1}},
		1: {"temp": Interval{25.0, 25.1}},
	}
	if got := p.Truth(cells); got != False {
		t.Fatalf("far-apart cells = %v, want False", got)
	}
	cells[1]["temp"] = Interval{20.0, 20.1}
	if got := p.Truth(cells); got != True {
		t.Fatalf("identical narrow cells = %v, want True", got)
	}
	cells[1]["temp"] = Interval{20.2, 20.4}
	if got := p.Truth(cells); got != Maybe {
		t.Fatalf("borderline cells = %v, want Maybe", got)
	}
}

func TestTruthDistance(t *testing.T) {
	p := mustPredicate(t, "distance(A.x, A.y, B.x, B.y) > 100")
	cells := cellsEnv{
		0: {"x": Interval{0, 1}, "y": Interval{0, 1}},
		1: {"x": Interval{500, 501}, "y": Interval{0, 1}},
	}
	if got := p.Truth(cells); got != True {
		t.Fatalf("500 m apart = %v, want True", got)
	}
	cells[1]["x"] = Interval{10, 11}
	if got := p.Truth(cells); got != False {
		t.Fatalf("10 m apart = %v, want False", got)
	}
	cells[1]["x"] = Interval{95, 105}
	if got := p.Truth(cells); got != Maybe {
		t.Fatalf("boundary = %v, want Maybe", got)
	}
}

// Key soundness property (paper §V-B footnote 2): if the exact predicate
// holds for values inside the cells, the tri-state evaluation must not
// return False. Tested over random predicates from a small grammar.
func TestQuickTruthSoundness(t *testing.T) {
	preds := []string{
		"A.t - B.t > 2",
		"abs(A.t - B.t) < 1",
		"A.t * B.t >= 4",
		"distance(A.x, A.y, B.x, B.y) > 50",
		"A.t + B.t = 10",
		"NOT (A.t < B.t)",
		"A.t > B.t OR abs(A.t) <= 1",
		"A.t / B.t < 2",
		"least(A.t, B.t) >= 1 AND greatest(A.t, B.t) < 9",
		"sqrt(abs(A.t - B.t)) <= 1.2",
	}
	parsed := make([]BoolExpr, len(preds))
	for i, src := range preds {
		q, err := Parse("SELECT A.t FROM S A, S B WHERE " + src + " ONCE")
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		parsed[i] = q.Where
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mkCell := func() (Interval, float64) {
			lo := rng.Float64()*20 - 10
			w := rng.Float64() * 2
			v := lo + rng.Float64()*w
			return Interval{lo, lo + w}, v
		}
		cells := cellsEnv{0: {}, 1: {}}
		env := mapEnv{0: {}, 1: {}}
		for rel := 0; rel < 2; rel++ {
			for _, name := range []string{"t", "x", "y"} {
				c, v := mkCell()
				cells[rel][name] = c
				env[rel][name] = v
			}
		}
		for _, p := range parsed {
			exact := p.Eval(env)
			tri := p.Truth(cells)
			if exact && tri == False {
				return false // false negative: unsound
			}
			if !exact && tri == True {
				return false // claimed certainty wrongly
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundsEnclosure(t *testing.T) {
	q, err := Parse("SELECT distance(A.x, A.y, B.x, B.y) + abs(A.t) * 2 FROM S A, S B ONCE")
	if err != nil {
		t.Fatal(err)
	}
	e := q.Select[0].Expr
	cells := cellsEnv{
		0: {"x": Interval{0, 2}, "y": Interval{0, 2}, "t": Interval{-1, 1}},
		1: {"x": Interval{10, 12}, "y": Interval{0, 2}, "t": Interval{0, 0}},
	}
	b := e.Bounds(cells)
	// Sample the corners and midpoints: all values must fall in bounds.
	for i := 0; i < 200; i++ {
		env := mapEnv{
			0: {"x": 2 * rnd(i, 1), "y": 2 * rnd(i, 2), "t": 2*rnd(i, 3) - 1},
			1: {"x": 10 + 2*rnd(i, 4), "y": 2 * rnd(i, 5), "t": 0},
		}
		v := e.Eval(env)
		if v < b.Lo-1e-9 || v > b.Hi+1e-9 {
			t.Fatalf("value %g outside bounds [%g, %g]", v, b.Lo, b.Hi)
		}
	}
}

func rnd(i, j int) float64 {
	return math.Mod(math.Abs(math.Sin(float64(i*31+j*17)))*997, 1)
}

func TestSingleEnv(t *testing.T) {
	q, err := Parse("SELECT A.t FROM S A, S B WHERE A.t > 5 AND B.t < 3 ONCE")
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	envA := SingleEnv{Rel: 0, Lookup: func(name string) float64 { return 7 }}
	if !a.LocalPredicate(0).Eval(envA) {
		t.Fatal("A.t=7 > 5 should hold")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("cross-relation reference in SingleEnv must panic")
		}
	}()
	a.LocalPredicate(1).Eval(envA)
}
