package query

import (
	"fmt"
	"math"
	"testing"
)

// shapeOf parses a two-relation query with the given WHERE clause and
// classifies its join conditions.
func shapeOf(t *testing.T, where string) JoinShape {
	t.Helper()
	src := fmt.Sprintf("SELECT A.temp FROM S A, S B WHERE %s ONCE", where)
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	a, err := Analyze(q)
	if err != nil {
		t.Fatal(err)
	}
	return ShapeOf(a.JoinConds)
}

func TestShapeOfBandForms(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		where  string
		sum    bool
		lo, hi float64
	}{
		{"A.temp - B.temp > 3", false, 3, inf},
		{"A.temp - B.temp >= 3", false, 3, inf},
		{"A.temp - B.temp < 3", false, -inf, 3},
		{"A.temp - B.temp = 3", false, 3, 3},
		{"3 > A.temp - B.temp", false, -inf, 3},
		{"A.temp - B.temp > 2 + 1", false, 3, inf},
		{"abs(A.temp - B.temp) < 0.5", false, -0.5, 0.5},
		{"abs(A.temp - B.temp) <= 0.5", false, -0.5, 0.5},
		{"A.temp < B.hum", false, -inf, 0},
		{"A.temp >= B.hum", false, 0, inf},
		{"A.temp + B.temp < 50", true, -inf, 50},
		{"abs(A.temp + B.temp) < 2", true, -2, 2},
	}
	for _, c := range cases {
		s := shapeOf(t, c.where)
		if len(s.Band) != 1 || len(s.Eq) != 0 || len(s.Residual) != 0 {
			t.Errorf("%q: got %d band, %d eq, %d residual; want exactly one band",
				c.where, len(s.Band), len(s.Eq), len(s.Residual))
			continue
		}
		b := s.Band[0]
		if b.Sum != c.sum || b.Lo != c.lo || b.Hi != c.hi {
			t.Errorf("%q: band sum=%t [%g, %g], want sum=%t [%g, %g]",
				c.where, b.Sum, b.Lo, b.Hi, c.sum, c.lo, c.hi)
		}
		if b.L.Rel == b.R.Rel || b.L.Rel < 0 || b.R.Rel < 0 {
			t.Errorf("%q: band rels %d/%d not cross-relation", c.where, b.L.Rel, b.R.Rel)
		}
	}
}

func TestShapeOfEquality(t *testing.T) {
	s := shapeOf(t, "A.temp = B.temp AND A.hum - B.hum > 1")
	if len(s.Eq) != 1 || len(s.Band) != 1 || len(s.Residual) != 0 {
		t.Fatalf("got %d eq, %d band, %d residual; want 1/1/0", len(s.Eq), len(s.Band), len(s.Residual))
	}
	eq := s.Eq[0]
	if eq.L.Name != "temp" || eq.R.Name != "temp" || eq.L.Rel == eq.R.Rel {
		t.Fatalf("eq = %+v", eq)
	}
	if s.Eq[0].Cond == s.Band[0].Cond {
		t.Fatal("eq and band claim the same conjunct")
	}
}

func TestShapeOfResidualForms(t *testing.T) {
	residuals := []string{
		"A.temp != B.temp",                      // no contiguous window
		"abs(A.temp - B.temp) > 1",              // anti-band
		"distance(A.x, A.y, B.x, B.y) > 100",    // non-linear
		"(A.temp > B.temp OR A.hum < B.hum)",    // disjunction
		"A.temp * 2 - B.temp > 1",               // scaled attribute
		"sqrt(A.temp) - B.temp < 1",             // function of attribute
		"abs(A.temp - B.temp) = 1",              // two-point set
	}
	for _, where := range residuals {
		s := shapeOf(t, where)
		if len(s.Residual) != 1 || len(s.Eq) != 0 || len(s.Band) != 0 {
			t.Errorf("%q: got %d eq, %d band, %d residual; want residual only",
				where, len(s.Eq), len(s.Band), len(s.Residual))
		}
	}
}

func TestShapeOfMixedConjuncts(t *testing.T) {
	s := shapeOf(t, "A.temp - B.temp > 2 AND distance(A.x, A.y, B.x, B.y) > 100 AND A.hum = B.hum")
	if len(s.Eq) != 1 || len(s.Band) != 1 || len(s.Residual) != 1 {
		t.Fatalf("got %d eq, %d band, %d residual; want 1/1/1", len(s.Eq), len(s.Band), len(s.Residual))
	}
	if !s.Indexable() {
		t.Fatal("mixed shape must be indexable")
	}
	if ShapeOf(nil).Indexable() {
		t.Fatal("empty shape must not be indexable")
	}
}

// A same-relation comparison (A.temp > A.hum would be a local
// predicate, but constructed condition lists can contain anything) must
// not classify as a band.
func TestShapeOfSameRelationStaysResidual(t *testing.T) {
	c, err := ParsePredicate("x - y > 1")
	if err != nil {
		t.Fatal(err)
	}
	// Unbound references have Rel == -1 on both sides.
	s := ShapeOf([]BoolExpr{c})
	if len(s.Residual) != 1 || s.Indexable() {
		t.Fatalf("unbound/same-rel condition classified as indexable: %+v", s)
	}
}
