package query

import (
	"fmt"
	"math"
)

// Expression compilation for the base station's exact-join hot path.
//
// Evaluating an expression tree through the Env interface costs one
// string-keyed map lookup per attribute reference per candidate tuple
// combination — the dominant cost of the nested-loop join. CompileNum
// and CompileBool lower a tree once into closures that read attribute
// values from a flat slot vector by integer index; the caller assigns
// slots via resolve and fills the vector once per tuple assignment.
//
// The compiled closures perform exactly the operations of the
// corresponding Eval methods in the same order, so results are
// bit-identical to interpreted evaluation over the same values.

// CompiledNum evaluates a numeric expression over a slot vector.
type CompiledNum func(vals []float64) float64

// CompiledBool evaluates a boolean expression over a slot vector.
type CompiledBool func(vals []float64) bool

// CompileNum lowers e into a CompiledNum. resolve maps each attribute
// reference to its slot in the vector; it is called once per reference,
// at compile time.
func CompileNum(e NumExpr, resolve func(AttrRef) int) CompiledNum {
	switch x := e.(type) {
	case Const:
		v := x.V
		return func([]float64) float64 { return v }
	case Attr:
		slot := resolve(x.Ref)
		return func(vals []float64) float64 { return vals[slot] }
	case Arith:
		l, r := CompileNum(x.L, resolve), CompileNum(x.R, resolve)
		switch x.Op {
		case OpAdd:
			return func(v []float64) float64 { return l(v) + r(v) }
		case OpSub:
			return func(v []float64) float64 { return l(v) - r(v) }
		case OpMul:
			return func(v []float64) float64 { return l(v) * r(v) }
		default:
			return func(v []float64) float64 { return l(v) / r(v) }
		}
	case Neg:
		f := CompileNum(x.X, resolve)
		return func(v []float64) float64 { return -f(v) }
	case Abs:
		f := CompileNum(x.X, resolve)
		return func(v []float64) float64 { return math.Abs(f(v)) }
	case Sqrt:
		f := CompileNum(x.X, resolve)
		return func(v []float64) float64 { return math.Sqrt(f(v)) }
	case Distance:
		x1, y1 := CompileNum(x.X1, resolve), CompileNum(x.Y1, resolve)
		x2, y2 := CompileNum(x.X2, resolve), CompileNum(x.Y2, resolve)
		return func(v []float64) float64 {
			return math.Hypot(x1(v)-x2(v), y1(v)-y2(v))
		}
	case MinMax:
		args := make([]CompiledNum, len(x.Args))
		for i, a := range x.Args {
			args[i] = CompileNum(a, resolve)
		}
		isMax := x.IsMax
		return func(v []float64) float64 {
			r := args[0](v)
			for _, a := range args[1:] {
				w := a(v)
				if isMax {
					r = math.Max(r, w)
				} else {
					r = math.Min(r, w)
				}
			}
			return r
		}
	default:
		panic(fmt.Sprintf("query: CompileNum: unsupported expression %T", e))
	}
}

// CompileBool lowers e into a CompiledBool.
func CompileBool(e BoolExpr, resolve func(AttrRef) int) CompiledBool {
	switch x := e.(type) {
	case Cmp:
		l, r := CompileNum(x.L, resolve), CompileNum(x.R, resolve)
		switch x.Op {
		case CmpLT:
			return func(v []float64) bool { return l(v) < r(v) }
		case CmpLE:
			return func(v []float64) bool { return l(v) <= r(v) }
		case CmpGT:
			return func(v []float64) bool { return l(v) > r(v) }
		case CmpGE:
			return func(v []float64) bool { return l(v) >= r(v) }
		case CmpEQ:
			return func(v []float64) bool { return l(v) == r(v) }
		default:
			return func(v []float64) bool { return l(v) != r(v) }
		}
	case And:
		l, r := CompileBool(x.L, resolve), CompileBool(x.R, resolve)
		return func(v []float64) bool { return l(v) && r(v) }
	case Or:
		l, r := CompileBool(x.L, resolve), CompileBool(x.R, resolve)
		return func(v []float64) bool { return l(v) || r(v) }
	case Not:
		f := CompileBool(x.X, resolve)
		return func(v []float64) bool { return !f(v) }
	default:
		panic(fmt.Sprintf("query: CompileBool: unsupported expression %T", e))
	}
}
