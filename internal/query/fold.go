package query

// Constant folding: expressions whose operands are all literals collapse
// to a single Const. The planner uses this so that conditions like
// "A.temp - B.temp > 2 + 1" still match the band-join index patterns,
// and constant predicates evaluate once instead of per pair.

// Fold returns e with constant subexpressions evaluated. The result
// evaluates identically to e under every environment.
func Fold(e NumExpr) NumExpr {
	switch n := e.(type) {
	case Const, Attr:
		return e
	case Neg:
		x := Fold(n.X)
		if c, ok := x.(Const); ok {
			return Const{-c.V}
		}
		return Neg{x}
	case Abs:
		x := Fold(n.X)
		if c, ok := x.(Const); ok {
			return Const{Abs{Const{c.V}}.Eval(nil)}
		}
		return Abs{x}
	case Sqrt:
		x := Fold(n.X)
		if c, ok := x.(Const); ok {
			return Const{Sqrt{Const{c.V}}.Eval(nil)}
		}
		return Sqrt{x}
	case Arith:
		l, r := Fold(n.L), Fold(n.R)
		if lc, ok := l.(Const); ok {
			if rc, ok := r.(Const); ok {
				return Const{Arith{Op: n.Op, L: lc, R: rc}.Eval(nil)}
			}
		}
		return Arith{Op: n.Op, L: l, R: r}
	case Distance:
		x1, y1 := Fold(n.X1), Fold(n.Y1)
		x2, y2 := Fold(n.X2), Fold(n.Y2)
		if allConst(x1, y1, x2, y2) {
			return Const{Distance{x1, y1, x2, y2}.Eval(nil)}
		}
		return Distance{x1, y1, x2, y2}
	case MinMax:
		args := make([]NumExpr, len(n.Args))
		folded := true
		for i, a := range n.Args {
			args[i] = Fold(a)
			if _, ok := args[i].(Const); !ok {
				folded = false
			}
		}
		out := MinMax{IsMax: n.IsMax, Args: args}
		if folded {
			return Const{out.Eval(nil)}
		}
		return out
	}
	return e
}

func allConst(es ...NumExpr) bool {
	for _, e := range es {
		if _, ok := e.(Const); !ok {
			return false
		}
	}
	return true
}

// FoldBool folds the numeric subexpressions of a predicate and collapses
// comparisons of two constants.
func FoldBool(e BoolExpr) BoolExpr {
	switch n := e.(type) {
	case Cmp:
		l, r := Fold(n.L), Fold(n.R)
		return Cmp{Op: n.Op, L: l, R: r}
	case And:
		return And{FoldBool(n.L), FoldBool(n.R)}
	case Or:
		return Or{FoldBool(n.L), FoldBool(n.R)}
	case Not:
		return Not{FoldBool(n.X)}
	}
	return e
}
