package query

import (
	"math/rand"
	"testing"
)

// whereOf parses a two-relation query around the predicate and returns
// the bound WHERE clause.
func whereOf(t *testing.T, pred string) BoolExpr {
	t.Helper()
	q, err := Parse("SELECT A.temp FROM Sensors A, Sensors B WHERE " + pred + " ONCE")
	if err != nil {
		t.Fatalf("parse %q: %v", pred, err)
	}
	return q.Where
}

func TestCanonicalEquivalentForms(t *testing.T) {
	cases := []struct {
		name string
		a, b string
	}{
		{"folded constant", "A.temp - B.temp > 2 + 1", "A.temp - B.temp > 3"},
		{"flipped gt", "A.temp > 3", "3 < A.temp"},
		{"flipped ge", "A.temp >= 3", "3 <= A.temp"},
		{"commuted eq", "A.temp = B.temp", "B.temp = A.temp"},
		{"commuted ne", "A.temp != B.temp", "B.temp != A.temp"},
		{"commuted sum", "A.hum + B.hum > 2", "B.hum + A.hum > 2"},
		{"commuted product", "A.hum * B.hum > 2", "B.hum * A.hum > 2"},
		{"commuted and", "A.temp < 5 AND B.hum > 1", "B.hum > 1 AND A.temp < 5"},
		{"commuted or", "A.temp < 5 OR B.hum > 1", "B.hum > 1 OR A.temp < 5"},
		{"commuted least", "least(A.temp, B.temp) < 5", "least(B.temp, A.temp) < 5"},
		{"symmetric distance", "distance(A.x, A.y, B.x, B.y) > 100", "distance(B.x, B.y, A.x, A.y) > 100"},
		{"folded and flipped", "2 + 1 < A.temp - B.temp", "A.temp - B.temp > 3"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ca := Canonical(whereOf(t, tc.a)).String()
			cb := Canonical(whereOf(t, tc.b)).String()
			if ca != cb {
				t.Fatalf("canonical forms differ:\n  %q -> %q\n  %q -> %q", tc.a, ca, tc.b, cb)
			}
		})
	}
}

func TestCanonicalDistinguishesDifferentPredicates(t *testing.T) {
	cases := [][2]string{
		{"A.temp > 3", "A.temp > 4"},
		{"A.temp - B.temp > 3", "B.temp - A.temp > 3"}, // subtraction does not commute
		{"A.temp > 3", "A.temp >= 3"},
		{"A.temp < 5 AND B.hum > 1", "A.temp < 5 OR B.hum > 1"},
	}
	for _, tc := range cases {
		ca := Canonical(whereOf(t, tc[0])).String()
		cb := Canonical(whereOf(t, tc[1])).String()
		if ca == cb {
			t.Errorf("distinct predicates %q and %q share the canonical form %q", tc[0], tc[1], ca)
		}
	}
}

// TestCanonicalEvalExact checks the exactness contract: the canonical
// form evaluates bit-identically to the original under random
// environments, including values that stress float non-associativity.
func TestCanonicalEvalExact(t *testing.T) {
	preds := []string{
		"A.temp - B.temp > 2 + 1",
		"B.hum + A.hum > 2.5",
		"A.hum * B.hum >= 0.3",
		"3 < A.temp AND B.hum != A.hum",
		"least(B.temp, A.temp, A.hum) < greatest(A.temp, B.hum)",
		"distance(B.x, B.y, A.x, A.y) > 100 OR A.temp = B.temp",
		"NOT (A.temp > 1e16 + 1)",
	}
	rng := rand.New(rand.NewSource(7))
	for _, src := range preds {
		orig := whereOf(t, src)
		canon := Canonical(orig)
		for trial := 0; trial < 200; trial++ {
			vals := map[string]float64{}
			env := TupleEnv{Lookup: func(rel int, name string) float64 {
				k := name + string(rune('0'+rel))
				v, ok := vals[k]
				if !ok {
					v = (rng.Float64() - 0.5) * 1e17 * rng.Float64()
					vals[k] = v
				}
				return v
			}}
			if got, want := canon.Eval(env), orig.Eval(env); got != want {
				t.Fatalf("%q: canonical form %q diverges: got %v want %v (vals %v)",
					src, canon.String(), got, want, vals)
			}
		}
	}
}

// TestCanonicalIdempotent: canonicalizing a canonical form is a no-op.
func TestCanonicalIdempotent(t *testing.T) {
	for _, src := range []string{
		"A.temp - B.temp > 2 + 1",
		"B.hum > 1 AND A.temp < 5 AND 3 < A.temp",
		"distance(B.x, B.y, A.x, A.y) > 100",
	} {
		c1 := Canonical(whereOf(t, src))
		c2 := Canonical(c1)
		if c1.String() != c2.String() {
			t.Errorf("%q: not idempotent: %q -> %q", src, c1.String(), c2.String())
		}
	}
}
