package query

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// AttrRef names an attribute of a FROM-clause relation. Alias is the
// textual alias ("A"); Rel is its index in the FROM list, resolved by
// binding (-1 until bound).
type AttrRef struct {
	Alias string
	Name  string
	Rel   int
}

// String formats the reference as written in queries.
func (r AttrRef) String() string {
	if r.Alias == "" {
		return r.Name
	}
	return r.Alias + "." + r.Name
}

// Env supplies exact attribute values during evaluation: one bound tuple
// per FROM-clause entry.
type Env interface {
	Value(ref AttrRef) float64
}

// BoundsEnv supplies attribute value ranges during interval evaluation:
// the cell intervals of quantized join-attribute tuples.
type BoundsEnv interface {
	Range(ref AttrRef) Interval
}

// NumExpr is a numeric-valued expression.
type NumExpr interface {
	// Eval computes the exact value under env.
	Eval(env Env) float64
	// Bounds computes a sound enclosure of the value under benv.
	Bounds(benv BoundsEnv) Interval
	// String renders the expression in re-parsable query syntax.
	String() string
	// Visit calls fn on this node and every numeric subexpression.
	Visit(fn func(NumExpr))
}

// BoolExpr is a boolean-valued expression (predicate).
type BoolExpr interface {
	// Eval computes the exact truth value under env.
	Eval(env Env) bool
	// Truth computes the tri-state truth value under benv.
	Truth(benv BoundsEnv) Tri
	// String renders the predicate in re-parsable query syntax.
	String() string
	// VisitNums calls fn on every numeric subexpression.
	VisitNums(fn func(NumExpr))
}

// Const is a numeric literal.
type Const struct{ V float64 }

// Eval implements NumExpr.
func (c Const) Eval(Env) float64 { return c.V }

// Bounds implements NumExpr.
func (c Const) Bounds(BoundsEnv) Interval { return Exact(c.V) }

// String implements NumExpr.
func (c Const) String() string { return strconv.FormatFloat(c.V, 'g', -1, 64) }

// Visit implements NumExpr.
func (c Const) Visit(fn func(NumExpr)) { fn(c) }

// Attr is an attribute reference.
type Attr struct{ Ref AttrRef }

// Eval implements NumExpr.
func (a Attr) Eval(env Env) float64 { return env.Value(a.Ref) }

// Bounds implements NumExpr.
func (a Attr) Bounds(benv BoundsEnv) Interval { return benv.Range(a.Ref) }

// String implements NumExpr.
func (a Attr) String() string { return a.Ref.String() }

// Visit implements NumExpr.
func (a Attr) Visit(fn func(NumExpr)) { fn(a) }

// ArithOp is a binary arithmetic operator.
type ArithOp int

// Arithmetic operators.
const (
	OpAdd ArithOp = iota
	OpSub
	OpMul
	OpDiv
)

func (o ArithOp) String() string {
	switch o {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	default:
		return "/"
	}
}

// Arith is a binary arithmetic expression.
type Arith struct {
	Op   ArithOp
	L, R NumExpr
}

// Eval implements NumExpr.
func (a Arith) Eval(env Env) float64 {
	l, r := a.L.Eval(env), a.R.Eval(env)
	switch a.Op {
	case OpAdd:
		return l + r
	case OpSub:
		return l - r
	case OpMul:
		return l * r
	default:
		return l / r
	}
}

// Bounds implements NumExpr.
func (a Arith) Bounds(benv BoundsEnv) Interval {
	l, r := a.L.Bounds(benv), a.R.Bounds(benv)
	switch a.Op {
	case OpAdd:
		return l.Add(r)
	case OpSub:
		return l.Sub(r)
	case OpMul:
		return l.Mul(r)
	default:
		return l.Div(r)
	}
}

// String implements NumExpr.
func (a Arith) String() string {
	return fmt.Sprintf("(%s %s %s)", a.L.String(), a.Op.String(), a.R.String())
}

// Visit implements NumExpr.
func (a Arith) Visit(fn func(NumExpr)) {
	fn(a)
	a.L.Visit(fn)
	a.R.Visit(fn)
}

// Neg is unary minus.
type Neg struct{ X NumExpr }

// Eval implements NumExpr.
func (n Neg) Eval(env Env) float64 { return -n.X.Eval(env) }

// Bounds implements NumExpr.
func (n Neg) Bounds(benv BoundsEnv) Interval { return n.X.Bounds(benv).Neg() }

// String implements NumExpr.
func (n Neg) String() string { return "(-" + n.X.String() + ")" }

// Visit implements NumExpr.
func (n Neg) Visit(fn func(NumExpr)) { fn(n); n.X.Visit(fn) }

// Abs is the absolute value, written abs(x) or |x|.
type Abs struct{ X NumExpr }

// Eval implements NumExpr.
func (a Abs) Eval(env Env) float64 { return math.Abs(a.X.Eval(env)) }

// Bounds implements NumExpr.
func (a Abs) Bounds(benv BoundsEnv) Interval { return a.X.Bounds(benv).Abs() }

// String implements NumExpr.
func (a Abs) String() string { return "abs(" + a.X.String() + ")" }

// Visit implements NumExpr.
func (a Abs) Visit(fn func(NumExpr)) { fn(a); a.X.Visit(fn) }

// Sqrt is the square root function.
type Sqrt struct{ X NumExpr }

// Eval implements NumExpr.
func (s Sqrt) Eval(env Env) float64 { return math.Sqrt(s.X.Eval(env)) }

// Bounds implements NumExpr.
func (s Sqrt) Bounds(benv BoundsEnv) Interval { return s.X.Bounds(benv).Sqrt() }

// String implements NumExpr.
func (s Sqrt) String() string { return "sqrt(" + s.X.String() + ")" }

// Visit implements NumExpr.
func (s Sqrt) Visit(fn func(NumExpr)) { fn(s); s.X.Visit(fn) }

// Distance is the planar Euclidean distance function over four
// coordinates, as used by the paper's Q1 and Q2.
type Distance struct {
	X1, Y1, X2, Y2 NumExpr
}

// Eval implements NumExpr.
func (d Distance) Eval(env Env) float64 {
	dx := d.X1.Eval(env) - d.X2.Eval(env)
	dy := d.Y1.Eval(env) - d.Y2.Eval(env)
	return math.Hypot(dx, dy)
}

// Bounds implements NumExpr.
func (d Distance) Bounds(benv BoundsEnv) Interval {
	dx := d.X1.Bounds(benv).Sub(d.X2.Bounds(benv)).Square()
	dy := d.Y1.Bounds(benv).Sub(d.Y2.Bounds(benv)).Square()
	return dx.Add(dy).Sqrt()
}

// String implements NumExpr.
func (d Distance) String() string {
	return fmt.Sprintf("distance(%s, %s, %s, %s)", d.X1, d.Y1, d.X2, d.Y2)
}

// Visit implements NumExpr.
func (d Distance) Visit(fn func(NumExpr)) {
	fn(d)
	d.X1.Visit(fn)
	d.Y1.Visit(fn)
	d.X2.Visit(fn)
	d.Y2.Visit(fn)
}

// MinMax is the n-ary min or max function.
type MinMax struct {
	IsMax bool
	Args  []NumExpr
}

// Eval implements NumExpr.
func (m MinMax) Eval(env Env) float64 {
	v := m.Args[0].Eval(env)
	for _, a := range m.Args[1:] {
		w := a.Eval(env)
		if m.IsMax {
			v = math.Max(v, w)
		} else {
			v = math.Min(v, w)
		}
	}
	return v
}

// Bounds implements NumExpr.
func (m MinMax) Bounds(benv BoundsEnv) Interval {
	v := m.Args[0].Bounds(benv)
	for _, a := range m.Args[1:] {
		w := a.Bounds(benv)
		if m.IsMax {
			v = v.Max(w)
		} else {
			v = v.Min(w)
		}
	}
	return v
}

// String implements NumExpr.
func (m MinMax) String() string {
	name := "least"
	if m.IsMax {
		name = "greatest"
	}
	parts := make([]string, len(m.Args))
	for i, a := range m.Args {
		parts[i] = a.String()
	}
	return name + "(" + strings.Join(parts, ", ") + ")"
}

// Visit implements NumExpr.
func (m MinMax) Visit(fn func(NumExpr)) {
	fn(m)
	for _, a := range m.Args {
		a.Visit(fn)
	}
}

// CmpOp is a comparison operator.
type CmpOp int

// Comparison operators.
const (
	CmpLT CmpOp = iota
	CmpLE
	CmpGT
	CmpGE
	CmpEQ
	CmpNE
)

func (o CmpOp) String() string {
	switch o {
	case CmpLT:
		return "<"
	case CmpLE:
		return "<="
	case CmpGT:
		return ">"
	case CmpGE:
		return ">="
	case CmpEQ:
		return "="
	default:
		return "!="
	}
}

// Cmp compares two numeric expressions.
type Cmp struct {
	Op   CmpOp
	L, R NumExpr
}

// Eval implements BoolExpr.
func (c Cmp) Eval(env Env) bool {
	l, r := c.L.Eval(env), c.R.Eval(env)
	switch c.Op {
	case CmpLT:
		return l < r
	case CmpLE:
		return l <= r
	case CmpGT:
		return l > r
	case CmpGE:
		return l >= r
	case CmpEQ:
		return l == r
	default:
		return l != r
	}
}

// Truth implements BoolExpr.
func (c Cmp) Truth(benv BoundsEnv) Tri {
	l, r := c.L.Bounds(benv), c.R.Bounds(benv)
	switch c.Op {
	case CmpLT:
		return CmpLess(l, r)
	case CmpLE:
		return CmpLessEq(l, r)
	case CmpGT:
		return CmpLess(r, l)
	case CmpGE:
		return CmpLessEq(r, l)
	case CmpEQ:
		return CmpEq(l, r)
	default:
		return CmpEq(l, r).Not()
	}
}

// String implements BoolExpr.
func (c Cmp) String() string {
	return fmt.Sprintf("%s %s %s", c.L.String(), c.Op.String(), c.R.String())
}

// VisitNums implements BoolExpr.
func (c Cmp) VisitNums(fn func(NumExpr)) {
	c.L.Visit(fn)
	c.R.Visit(fn)
}

// And is logical conjunction.
type And struct{ L, R BoolExpr }

// Eval implements BoolExpr.
func (a And) Eval(env Env) bool { return a.L.Eval(env) && a.R.Eval(env) }

// Truth implements BoolExpr.
func (a And) Truth(benv BoundsEnv) Tri { return a.L.Truth(benv).And(a.R.Truth(benv)) }

// String implements BoolExpr.
func (a And) String() string {
	return fmt.Sprintf("(%s AND %s)", a.L.String(), a.R.String())
}

// VisitNums implements BoolExpr.
func (a And) VisitNums(fn func(NumExpr)) {
	a.L.VisitNums(fn)
	a.R.VisitNums(fn)
}

// Or is logical disjunction.
type Or struct{ L, R BoolExpr }

// Eval implements BoolExpr.
func (o Or) Eval(env Env) bool { return o.L.Eval(env) || o.R.Eval(env) }

// Truth implements BoolExpr.
func (o Or) Truth(benv BoundsEnv) Tri { return o.L.Truth(benv).Or(o.R.Truth(benv)) }

// String implements BoolExpr.
func (o Or) String() string {
	return fmt.Sprintf("(%s OR %s)", o.L.String(), o.R.String())
}

// VisitNums implements BoolExpr.
func (o Or) VisitNums(fn func(NumExpr)) {
	o.L.VisitNums(fn)
	o.R.VisitNums(fn)
}

// Not is logical negation.
type Not struct{ X BoolExpr }

// Eval implements BoolExpr.
func (n Not) Eval(env Env) bool { return !n.X.Eval(env) }

// Truth implements BoolExpr.
func (n Not) Truth(benv BoundsEnv) Tri { return n.X.Truth(benv).Not() }

// String implements BoolExpr.
func (n Not) String() string { return "NOT (" + n.X.String() + ")" }

// VisitNums implements BoolExpr.
func (n Not) VisitNums(fn func(NumExpr)) { n.X.VisitNums(fn) }

// AggKind is an optional aggregate wrapped around a SELECT item.
type AggKind int

// Aggregate kinds. AggNone marks a plain per-row expression.
const (
	AggNone AggKind = iota
	AggMin
	AggMax
	AggSum
	AggAvg
	AggCount
)

func (k AggKind) String() string {
	switch k {
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggCount:
		return "COUNT"
	default:
		return ""
	}
}

// SelectItem is one entry of the SELECT list.
type SelectItem struct {
	Agg  AggKind
	Expr NumExpr
	// As is the optional output column alias.
	As string
}

// String renders the item as written in queries.
func (s SelectItem) String() string {
	out := s.Expr.String()
	if s.Agg != AggNone {
		out = s.Agg.String() + "(" + out + ")"
	}
	if s.As != "" {
		out += " AS " + s.As
	}
	return out
}

// RelRef is one FROM-clause entry.
type RelRef struct {
	Relation string
	Alias    string
}

// String renders the entry as written in queries.
func (r RelRef) String() string {
	if r.Alias == "" || r.Alias == r.Relation {
		return r.Relation
	}
	return r.Relation + " " + r.Alias
}

// Mode distinguishes snapshot from continuous queries (§III).
type Mode int

// Query modes.
const (
	// Once computes the result on the current snapshot.
	Once Mode = iota
	// Periodic re-executes the query every Period seconds.
	Periodic
)

// OrderKey is one ORDER BY entry: a 1-based output-column position and
// direction (SQL positional ordering).
type OrderKey struct {
	Col  int
	Desc bool
}

// Query is a parsed and bound join query.
type Query struct {
	// Star is true for SELECT *; Select is then filled during binding
	// against a catalog, one item per attribute per relation.
	Star   bool
	Select []SelectItem
	From   []RelRef
	// Where is the full predicate; nil means no WHERE clause.
	Where BoolExpr
	// GroupBy holds the grouping expressions; aggregates in the SELECT
	// list then apply per group, and non-aggregate items take the
	// group's first row.
	GroupBy []NumExpr
	// OrderBy sorts the output rows; required when Limit is set so the
	// result is deterministic across join methods.
	OrderBy []OrderKey
	// Limit truncates the ordered output; 0 means no limit.
	Limit int
	Mode  Mode
	// Period is the SAMPLE PERIOD in seconds (Periodic mode only).
	Period float64
}

// AliasIndex resolves a FROM alias to its index, or -1.
func (q *Query) AliasIndex(alias string) int {
	for i, r := range q.From {
		if r.Alias == alias || (r.Alias == "" && r.Relation == alias) {
			return i
		}
	}
	return -1
}

// String renders the query in re-parsable form.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if q.Star {
		b.WriteString("*")
	} else {
		for i, s := range q.Select {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(s.String())
		}
	}
	b.WriteString(" FROM ")
	for i, r := range q.From {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(r.String())
	}
	if q.Where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(q.Where.String())
	}
	if len(q.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range q.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.String())
		}
	}
	if len(q.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range q.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%d", o.Col)
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if q.Limit > 0 {
		fmt.Fprintf(&b, " LIMIT %d", q.Limit)
	}
	if q.Mode == Periodic {
		fmt.Fprintf(&b, " SAMPLE PERIOD %g", q.Period)
	} else {
		b.WriteString(" ONCE")
	}
	return b.String()
}
