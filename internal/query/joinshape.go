package query

import "math"

// Join-shape analysis for the base station's exact-join kernel.
//
// The final join (paper §IV-D) evaluates the join conditions over
// complete tuples. Most experiment conditions are equality or band
// constraints over a pair of attributes; both admit index-accelerated
// probing (hash partitioning resp. sorted windows) instead of a nested
// scan. ShapeOf classifies each conjunct so the kernel can pick an
// access path per join level; everything it cannot prove to be an
// equality or band stays a residual conjunct evaluated by the compiled
// closure, so classification never changes results, only candidate
// enumeration.

// EqJoin is a recognized cross-relation equality: the conjunct implies
// value(L) == value(R) with L.Rel != R.Rel.
type EqJoin struct {
	// Cond is the index of the source conjunct.
	Cond int
	L, R AttrRef
}

// BandJoin is a recognized band constraint between two relations:
// the conjunct implies value(L) - value(R) ∈ [Lo, Hi] (or
// value(L) + value(R) ∈ [Lo, Hi] when Sum is set), up to floating-point
// rounding of the original comparison. The interval is a closed
// superset: strict comparisons keep their bound, so windows derived
// from it are conservative and candidates must still be checked against
// the original conjunct.
type BandJoin struct {
	// Cond is the index of the source conjunct.
	Cond int
	L, R AttrRef
	// Sum marks a constraint over L + R instead of L - R.
	Sum bool
	// Lo and Hi bound the (sum or difference) value; ±Inf when a side
	// is unconstrained.
	Lo, Hi float64
}

// JoinShape is the classification of a conjunct list.
type JoinShape struct {
	Eq   []EqJoin
	Band []BandJoin
	// Residual lists the indexes of conjuncts that fit neither class.
	Residual []int
}

// Indexable reports whether any conjunct admits an index access path.
func (s JoinShape) Indexable() bool { return len(s.Eq)+len(s.Band) > 0 }

// ShapeOf classifies each conjunct of a join condition list. Conjuncts
// are folded first, so constant arithmetic ("> 2 + 1") still matches.
func ShapeOf(conds []BoolExpr) JoinShape {
	var s JoinShape
	for i, c := range conds {
		if eq, ok := detectEqJoin(c); ok {
			eq.Cond = i
			s.Eq = append(s.Eq, eq)
			continue
		}
		if b, ok := detectBandJoin(c); ok {
			b.Cond = i
			s.Band = append(s.Band, b)
			continue
		}
		s.Residual = append(s.Residual, i)
	}
	return s
}

// attrPair destructures e as Attr ± Attr over two distinct bound
// relations.
func attrPair(e NumExpr) (l, r AttrRef, sum, ok bool) {
	a, isArith := e.(Arith)
	if !isArith || (a.Op != OpSub && a.Op != OpAdd) {
		return
	}
	la, ok1 := a.L.(Attr)
	ra, ok2 := a.R.(Attr)
	if !ok1 || !ok2 || la.Ref.Rel < 0 || ra.Ref.Rel < 0 || la.Ref.Rel == ra.Ref.Rel {
		return
	}
	return la.Ref, ra.Ref, a.Op == OpAdd, true
}

// detectEqJoin recognizes Attr = Attr across relations.
func detectEqJoin(c BoolExpr) (EqJoin, bool) {
	cmp, ok := FoldBool(c).(Cmp)
	if !ok || cmp.Op != CmpEQ {
		return EqJoin{}, false
	}
	la, ok1 := cmp.L.(Attr)
	ra, ok2 := cmp.R.(Attr)
	if !ok1 || !ok2 || la.Ref.Rel < 0 || ra.Ref.Rel < 0 || la.Ref.Rel == ra.Ref.Rel {
		return EqJoin{}, false
	}
	return EqJoin{L: la.Ref, R: ra.Ref}, true
}

// detectBandJoin recognizes the band forms:
//
//	A.a - B.b OP c, A.a + B.b OP c   (OP in <, <=, >, >=, =)
//	abs(A.a - B.b) OP c, abs(A.a + B.b) OP c  (OP in <, <=)
//	A.a OP B.b                        (OP in <, <=, >, >=)
//
// in either orientation of the constant.
func detectBandJoin(c BoolExpr) (BandJoin, bool) {
	cmp, ok := FoldBool(c).(Cmp)
	if !ok {
		return BandJoin{}, false
	}
	op := cmp.Op
	// Plain attribute comparison: l OP r is l - r OP 0.
	if la, ok1 := cmp.L.(Attr); ok1 {
		if ra, ok2 := cmp.R.(Attr); ok2 {
			if la.Ref.Rel < 0 || ra.Ref.Rel < 0 || la.Ref.Rel == ra.Ref.Rel {
				return BandJoin{}, false
			}
			b := BandJoin{L: la.Ref, R: ra.Ref}
			return boundByOp(b, op, 0)
		}
	}
	// Normalize to expr OP const.
	expr, k := cmp.L, cmp.R
	if _, isConst := expr.(Const); isConst {
		expr, k = cmp.R, cmp.L
		op = flipCmpOp(op)
	}
	kc, isConst := k.(Const)
	if !isConst {
		return BandJoin{}, false
	}
	switch e := expr.(type) {
	case Arith:
		l, r, sum, ok := attrPair(e)
		if !ok {
			return BandJoin{}, false
		}
		return boundByOp(BandJoin{L: l, R: r, Sum: sum}, op, kc.V)
	case Abs:
		l, r, sum, ok := attrPair(e.X)
		if !ok {
			return BandJoin{}, false
		}
		// |x| < c means x ∈ [-c, c]; the >-side is an anti-band and
		// stays residual.
		if op == CmpLT || op == CmpLE {
			return BandJoin{L: l, R: r, Sum: sum, Lo: -kc.V, Hi: kc.V}, true
		}
	}
	return BandJoin{}, false
}

// boundByOp fills the interval of b for "value OP c". Strict bounds stay
// closed (the interval is a superset by design).
func boundByOp(b BandJoin, op CmpOp, c float64) (BandJoin, bool) {
	switch op {
	case CmpLT, CmpLE:
		b.Lo, b.Hi = math.Inf(-1), c
	case CmpGT, CmpGE:
		b.Lo, b.Hi = c, math.Inf(1)
	case CmpEQ:
		b.Lo, b.Hi = c, c
	default: // != carries no contiguous window
		return BandJoin{}, false
	}
	return b, true
}

func flipCmpOp(op CmpOp) CmpOp {
	switch op {
	case CmpLT:
		return CmpGT
	case CmpLE:
		return CmpGE
	case CmpGT:
		return CmpLT
	case CmpGE:
		return CmpLE
	}
	return op
}
