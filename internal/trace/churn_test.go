package trace

import "testing"

func TestChurnSafetyCleanRunPasses(t *testing.T) {
	j := &Journal{Events: []Event{
		{Kind: KindChurnDeath, Node: 5, At: 1},
		{Kind: KindTx, Node: 3, At: 2, Phase: "ja-collect"},
		{Kind: KindChurnRejoin, Node: 5, At: 3},
		{Kind: KindTx, Node: 5, At: 4, Phase: "final-collect"},
	}}
	v := ChurnSafety(j, ChurnVerdict{Complete: true, OracleExact: true})
	if len(v) != 0 {
		t.Fatalf("clean churn run flagged: %v", v)
	}
}

func TestChurnSafetyFlagsSilentWrongAnswer(t *testing.T) {
	j := &Journal{}
	v := ChurnSafety(j, ChurnVerdict{Complete: true, OracleExact: false, Repairs: 1})
	if len(v) != 1 {
		t.Fatalf("complete-but-wrong result produced %d violations, want 1: %v", len(v), v)
	}
}

func TestChurnSafetyDemandsProvenance(t *testing.T) {
	j := &Journal{}
	// Missing rows with neither reason nor named subtrees: two violations.
	v := ChurnSafety(j, ChurnVerdict{Complete: false, OracleExact: false})
	if len(v) != 2 {
		t.Fatalf("bare incomplete produced %d violations, want 2: %v", len(v), v)
	}
	// With reason and subtree count both present, the verdict is honest.
	v = ChurnSafety(j, ChurnVerdict{Complete: false, OracleExact: false, Reason: "loss", MissingSubtrees: 1})
	if len(v) != 0 {
		t.Fatalf("honest incomplete flagged: %v", v)
	}
	// Conservatively incomplete (rows all present): a reason suffices —
	// there is no subtree to blame.
	v = ChurnSafety(j, ChurnVerdict{Complete: false, OracleExact: true, Reason: "loss"})
	if len(v) != 0 {
		t.Fatalf("conservative incomplete flagged: %v", v)
	}
}

func TestChurnSafetyFlagsDeadTransmitter(t *testing.T) {
	j := &Journal{Events: []Event{
		{Kind: KindChurnDeath, Node: 7, At: 1},
		{Kind: KindTx, Node: 7, At: 2, Phase: "ja-collect"},
	}}
	v := ChurnSafety(j, ChurnVerdict{Complete: true, OracleExact: true})
	if len(v) != 1 {
		t.Fatalf("dead transmitter produced %d violations, want 1: %v", len(v), v)
	}
}
