package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// File-level export with optional gzip: paper-scale journals run to
// millions of events, and the JSONL form compresses roughly 10:1. A
// ".gz" path suffix (run.jsonl.gz, run.chrome.json.gz) selects
// compression; anything else writes plain text, so existing call sites
// keep their behaviour.

// ExportJSONL writes the journal as JSON Lines to path, gzipped when
// the path ends in ".gz".
func ExportJSONL(path string, j *Journal) error {
	return exportTo(path, j, WriteJSONL)
}

// ExportChrome writes the journal in Chrome trace_event format to path,
// gzipped when the path ends in ".gz".
func ExportChrome(path string, j *Journal) error {
	return exportTo(path, j, WriteChrome)
}

func exportTo(path string, j *Journal, write func(io.Writer, *Journal) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	var w io.Writer = f
	var gz *gzip.Writer
	if strings.HasSuffix(path, ".gz") {
		gz = gzip.NewWriter(f)
		w = gz
	}
	if err := write(w, j); err != nil {
		f.Close()
		return err
	}
	if gz != nil {
		if err := gz.Close(); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

// ChromePathFor derives the Chrome trace path written alongside a JSONL
// export: run.jsonl -> run.jsonl.chrome.json, and run.jsonl.gz ->
// run.jsonl.chrome.json.gz (compression carries over).
func ChromePathFor(path string) string {
	if strings.HasSuffix(path, ".gz") {
		return strings.TrimSuffix(path, ".gz") + ".chrome.json.gz"
	}
	return path + ".chrome.json"
}

// ReadJSONL parses a JSONL journal back into memory, the inverse of
// WriteJSONL.
func ReadJSONL(r io.Reader) (*Journal, error) {
	j := &Journal{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var je jsonEvent
		if err := json.Unmarshal(line, &je); err != nil {
			return nil, fmt.Errorf("jsonl line %d: %w", lineNo, err)
		}
		k, ok := kindFromName(je.Kind)
		if !ok {
			return nil, fmt.Errorf("jsonl line %d: unknown event kind %q", lineNo, je.Kind)
		}
		ev := je.Event
		ev.Kind = k
		j.Events = append(j.Events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return j, nil
}

// LoadJSONL reads a journal from a JSONL file, transparently gunzipping
// a ".gz" path.
func LoadJSONL(path string) (*Journal, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return nil, err
		}
		defer gz.Close()
		r = gz
	}
	return ReadJSONL(r)
}

// kindFromName inverts Kind.String.
func kindFromName(name string) (Kind, bool) {
	for k, n := range kindNames {
		if n == name {
			return Kind(k), true
		}
	}
	return 0, false
}
