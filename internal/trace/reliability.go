package trace

import "sort"

// Reliability audits the reliable transport's end-to-end contract: every
// reliable transfer (all events sharing one Logical id) must converge to
// exactly one effective delivery — each payload packet reaching the
// receiver's ledger once — or an accounted failure (a give-up event).
// Retransmission attempts must be consecutively numbered, duplicates may
// only appear after the transfer completed (a lost-final-ACK probe), and
// every acknowledgement must belong to a known transfer. A journal
// without reliable events passes vacuously.
func Reliability(j *Journal) []Violation {
	type xfer struct {
		size      int // payload bytes of the full message (attempt-0 tx)
		total     int // packets of the full message (attempt-0 tx)
		rxPackets int // cumulative non-duplicate received packets
		rxBytes   int
		attempts  []int
		complete  bool
		gaveUp    bool
	}
	xfers := map[int64]*xfer{}
	get := func(id int64) *xfer {
		x := xfers[id]
		if x == nil {
			x = &xfer{}
			xfers[id] = x
		}
		return x
	}
	var out []Violation
	for _, ev := range j.Events {
		if ev.Logical == 0 {
			continue
		}
		if ev.Ack {
			if xfers[ev.Logical] == nil {
				out = violate(out, "reliability",
					"ACK %d references unknown transfer %d", ev.MsgID, ev.Logical)
			}
			continue
		}
		x := get(ev.Logical)
		switch ev.Kind {
		case KindTx:
			if ev.Attempt == 0 {
				x.size, x.total = ev.Bytes, ev.Packets
			}
			x.attempts = append(x.attempts, ev.Attempt)
		case KindRx:
			if ev.Dup {
				if !x.complete {
					out = violate(out, "reliability",
						"transfer %d: duplicate suppressed at %.6f before the transfer completed", ev.Logical, ev.At)
				}
				continue
			}
			x.rxPackets += ev.Packets
			x.rxBytes += ev.Bytes
			if x.rxPackets > x.total {
				out = violate(out, "reliability",
					"transfer %d: %d packets delivered, message has only %d", ev.Logical, x.rxPackets, x.total)
			}
			if x.rxPackets == x.total {
				x.complete = true
			}
		case KindGiveUp:
			x.gaveUp = true
		}
	}
	ids := make([]int64, 0, len(xfers))
	for id := range xfers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, k int) bool { return ids[i] < ids[k] })
	for _, id := range ids {
		x := xfers[id]
		for i, a := range x.attempts {
			if a != i {
				out = violate(out, "reliability",
					"transfer %d: attempt sequence %v not consecutive", id, x.attempts)
				break
			}
		}
		if !x.complete && !x.gaveUp {
			out = violate(out, "reliability",
				"transfer %d: neither delivered (%d/%d packets) nor accounted as failed", id, x.rxPackets, x.total)
		}
		if x.complete && x.rxBytes != x.size {
			out = violate(out, "reliability",
				"transfer %d: delivered %dB, message carries %dB", id, x.rxBytes, x.size)
		}
	}
	return out
}
