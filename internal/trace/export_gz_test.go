package trace

import (
	"compress/gzip"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestChromePathFor(t *testing.T) {
	cases := map[string]string{
		"run.jsonl":    "run.jsonl.chrome.json",
		"run.jsonl.gz": "run.jsonl.chrome.json.gz",
		"x/y.jsonl.gz": "x/y.jsonl.chrome.json.gz",
	}
	for in, want := range cases {
		if got := ChromePathFor(in); got != want {
			t.Errorf("ChromePathFor(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestGzipJSONLRoundTrip(t *testing.T) {
	j, _, _ := cleanJournal(t)
	j.Events = append([]Event{{Kind: KindPhaseStart, Phase: "p", At: 0}}, j.Events...)
	j.Events = append(j.Events, Event{Kind: KindPhaseEnd, Phase: "p", At: 1})

	dir := t.TempDir()
	for _, name := range []string{"run.jsonl", "run.jsonl.gz"} {
		path := filepath.Join(dir, name)
		if err := ExportJSONL(path, j); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		gzipped := len(raw) >= 2 && raw[0] == 0x1f && raw[1] == 0x8b
		if want := name == "run.jsonl.gz"; gzipped != want {
			t.Fatalf("%s: gzip magic = %v, want %v", name, gzipped, want)
		}
		back, err := LoadJSONL(path)
		if err != nil {
			t.Fatalf("%s: load: %v", name, err)
		}
		if len(back.Events) != len(j.Events) {
			t.Fatalf("%s: %d events back, want %d", name, len(back.Events), len(j.Events))
		}
		if !reflect.DeepEqual(back.Events, j.Events) {
			t.Fatalf("%s: journal did not round-trip", name)
		}
	}
}

func TestGzipChromeExport(t *testing.T) {
	j, _, _ := cleanJournal(t)
	path := filepath.Join(t.TempDir(), "run.chrome.json.gz")
	if err := ExportChrome(path, j); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	gz, err := gzip.NewReader(f)
	if err != nil {
		t.Fatalf("not gzipped: %v", err)
	}
	var chrome struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.NewDecoder(gz).Decode(&chrome); err != nil {
		t.Fatal(err)
	}
	if len(chrome.TraceEvents) == 0 {
		t.Fatal("empty chrome trace after gunzip")
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader(`{"ev":"no-such-kind","at":0}` + "\n")); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, err := ReadJSONL(strings.NewReader("not json\n")); err == nil {
		t.Fatal("non-JSON line accepted")
	}
}
