package trace

import (
	"fmt"
	"sort"

	"sensjoin/internal/routing"
	"sensjoin/internal/stats"
	"sensjoin/internal/topology"
)

// Violation is one failed audit invariant.
type Violation struct {
	// Audit names the pass ("conservation", "reconcile", "slot-order",
	// "filter-soundness", "reliability").
	Audit string
	// Detail describes the violation.
	Detail string
}

func (v Violation) String() string { return v.Audit + ": " + v.Detail }

func violate(out []Violation, audit, format string, args ...any) []Violation {
	return append(out, Violation{Audit: audit, Detail: fmt.Sprintf(format, args...)})
}

// Conservation checks that the radio events form a closed ledger: every
// transmission's outcome events (rx + drop + lost) add up to the
// receiver count the medium attempted, no outcome event lacks its
// transmission, and no reception happens at or before its send instant
// (the rx-at-send-time class of bug).
//
// Reliable-transport attempts (Logical != 0) are conserved at packet
// granularity instead: one attempt's packets can split between a partial
// reception and a loss event, so the outcome packet sum — not the event
// count — must equal the transmitted packets.
func Conservation(j *Journal) []Violation {
	type msg struct {
		hasTx      bool
		txAt       float64
		expect     int
		outcomes   int
		reliable   bool
		txPackets  int
		outPackets int
	}
	msgs := map[int64]*msg{}
	get := func(id int64) *msg {
		m := msgs[id]
		if m == nil {
			m = &msg{}
			msgs[id] = m
		}
		return m
	}
	var out []Violation
	j.Radio(func(ev Event) {
		m := get(ev.MsgID)
		switch ev.Kind {
		case KindTx:
			if m.hasTx {
				out = violate(out, "conservation", "msg %d transmitted twice", ev.MsgID)
				return
			}
			m.hasTx = true
			m.txAt = ev.At
			m.expect = ev.Expect
			m.reliable = ev.Logical != 0
			m.txPackets = ev.Packets
		default:
			m.outcomes++
			m.outPackets += ev.Packets
			if m.hasTx {
				if ev.At < m.txAt {
					out = violate(out, "conservation",
						"msg %d: %s at %.6f before its tx at %.6f", ev.MsgID, ev.Kind, ev.At, m.txAt)
				}
				if ev.Kind == KindRx && ev.At <= m.txAt {
					out = violate(out, "conservation",
						"msg %d: rx at %.6f not after its tx at %.6f (zero air time)", ev.MsgID, ev.At, m.txAt)
				}
			}
		}
	})
	ids := make([]int64, 0, len(msgs))
	for id := range msgs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, k int) bool { return ids[i] < ids[k] })
	for _, id := range ids {
		m := msgs[id]
		if !m.hasTx {
			out = violate(out, "conservation", "msg %d has %d outcome event(s) but no tx", id, m.outcomes)
			continue
		}
		if m.reliable {
			if m.outPackets != m.txPackets {
				out = violate(out, "conservation",
					"msg %d: reliable attempt sent %d packet(s), outcomes account %d", id, m.txPackets, m.outPackets)
			}
			continue
		}
		if m.outcomes != m.expect {
			out = violate(out, "conservation",
				"msg %d: tx attempted %d receiver(s), %d outcome event(s) recorded", id, m.expect, m.outcomes)
		}
	}
	return out
}

// Reconcile checks that the journal's radio totals equal the stats
// delta between the before and after snapshots, per node, per phase and
// per direction, bit-exact. Only receptions charge the receiver; drops
// and losses charge nobody (the transmission was already charged).
func Reconcile(j *Journal, before, after stats.Snapshot) []Violation {
	type key struct {
		node  topology.NodeID
		phase string
	}
	txJ := map[key]stats.Counter{}
	rxJ := map[key]stats.Counter{}
	j.Radio(func(ev Event) {
		switch ev.Kind {
		case KindTx:
			k := key{ev.Node, ev.Phase}
			c := txJ[k]
			c.Add(ev.Packets, ev.Bytes)
			txJ[k] = c
		case KindRx:
			k := key{ev.Peer, ev.Phase}
			c := rxJ[k]
			c.Add(ev.Packets, ev.Bytes)
			rxJ[k] = c
		}
	})
	phases := map[string]bool{}
	for _, p := range before.Phases() {
		phases[p] = true
	}
	for _, p := range after.Phases() {
		phases[p] = true
	}
	for k := range txJ {
		phases[k.phase] = true
	}
	for k := range rxJ {
		phases[k.phase] = true
	}
	sorted := make([]string, 0, len(phases))
	for p := range phases {
		sorted = append(sorted, p)
	}
	sort.Strings(sorted)

	var out []Violation
	n := after.N()
	for node := 0; node < n; node++ {
		id := topology.NodeID(node)
		for _, ph := range sorted {
			k := key{id, ph}
			out = reconcileSide(out, "tx", k.node, ph, txJ[k], before.Tx(id, ph), after.Tx(id, ph))
			out = reconcileSide(out, "rx", k.node, ph, rxJ[k], before.Rx(id, ph), after.Rx(id, ph))
		}
	}
	return out
}

func reconcileSide(out []Violation, side string, node topology.NodeID, phase string, journal, before, after stats.Counter) []Violation {
	dp := after.Packets - before.Packets
	db := after.Bytes - before.Bytes
	if journal.Packets != dp || journal.Bytes != db {
		out = violate(out, "reconcile",
			"node %d phase %q %s: journal %d pkt / %d B, collector delta %d pkt / %d B",
			node, phase, side, journal.Packets, journal.Bytes, dp, db)
	}
	return out
}

// SlotOrder checks the TAG-style schedule of the collection phases: in
// every execution segment of an audited phase, a node never transmits
// before its children's slots — children at greater depth go first, so
// parents can aggregate. Segments are delimited by the phase's
// start/end span events (recovery re-executes phases); a journal
// without spans is treated as a single segment.
func SlotOrder(j *Journal, tree *routing.Tree, phases []string) []Violation {
	var out []Violation
	for _, phase := range phases {
		for _, seg := range segments(j, phase) {
			out = append(out, slotOrderSegment(seg, tree, phase)...)
		}
	}
	return out
}

// segments splits the journal at the phase's start/end span events.
func segments(j *Journal, phase string) [][]Event {
	var segs [][]Event
	start := -1
	for i, ev := range j.Events {
		if ev.Phase != phase {
			continue
		}
		switch ev.Kind {
		case KindPhaseStart:
			start = i
		case KindPhaseEnd:
			if start >= 0 {
				segs = append(segs, j.Events[start:i+1])
				start = -1
			}
		}
	}
	if start >= 0 {
		segs = append(segs, j.Events[start:])
	}
	if segs == nil && len(j.Events) > 0 {
		segs = [][]Event{j.Events}
	}
	return segs
}

func slotOrderSegment(events []Event, tree *routing.Tree, phase string) []Violation {
	first := map[topology.NodeID]float64{}
	last := map[topology.NodeID]float64{}
	for _, ev := range events {
		// ACKs flow parent-to-child against the collection direction by
		// design; the slot schedule constrains data transmissions only.
		if ev.Kind != KindTx || ev.Phase != phase || ev.Ack {
			continue
		}
		if _, ok := first[ev.Node]; !ok {
			first[ev.Node] = ev.At
		}
		last[ev.Node] = ev.At
	}
	var out []Violation
	nodes := make([]topology.NodeID, 0, len(first))
	for id := range first {
		nodes = append(nodes, id)
	}
	sort.Slice(nodes, func(i, k int) bool { return nodes[i] < nodes[k] })
	for _, child := range nodes {
		parent := tree.Parent[child]
		if parent < 0 {
			continue
		}
		pFirst, ok := first[parent]
		if !ok {
			continue // the parent never transmitted in this phase (e.g. the root)
		}
		if pFirst < last[child] {
			out = violate(out, "slot-order",
				"phase %q: node %d (depth %d) transmitted at %.6f before its child %d's slot ending %.6f",
				phase, parent, tree.Depth[parent], pFirst, child, last[child])
		}
	}
	return out
}

// FilterSoundness checks the paper's central correctness property: the
// Phase-B filter admits false positives only, so no tuple it suppresses
// may belong to the ground-truth result. contributors is the set of
// nodes whose tuples appear in the ground-truth join (computed with
// simulator omniscience). Runs where the network lost or dropped
// messages are skipped: a lost Phase-A key legitimately shrinks the
// filter, and the protocol handles that via recovery, not the filter.
func FilterSoundness(j *Journal, contributors map[topology.NodeID]bool) []Violation {
	if j.HasLoss() {
		return nil
	}
	var out []Violation
	for _, ev := range j.Events {
		if ev.Kind != KindSuppress {
			continue
		}
		if contributors[ev.Peer] {
			out = violate(out, "filter-soundness",
				"node %d suppressed node %d's tuple in phase %q, but node %d contributes to the ground-truth result",
				ev.Node, ev.Peer, ev.Phase, ev.Peer)
		}
	}
	return out
}
