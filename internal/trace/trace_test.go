package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"sensjoin/internal/netsim"
	"sensjoin/internal/stats"
	"sensjoin/internal/topology"
)

func lineNet(t *testing.T, nodes int) (*netsim.Sim, *netsim.Network, *stats.Collector) {
	t.Helper()
	dep := topology.Line(nodes-1, 40, 50)
	sim := netsim.NewSim()
	coll := stats.NewCollector(dep.N())
	net := netsim.NewNetwork(sim, dep, netsim.DefaultRadio(), coll)
	return sim, net, coll
}

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	r.Span(1, KindTreecut, 3, -1, "ja-collect", 2) // must not panic
	r.Truncate(0)
	if r.Mark() != 0 {
		t.Fatal("nil Mark != 0")
	}
	if len(r.Journal().Events) != 0 {
		t.Fatal("nil journal not empty")
	}
}

func TestRecorderCollectsRadioAndSpans(t *testing.T) {
	sim, net, _ := lineNet(t, 3)
	rec := New()
	net.SetTracer(rec.Radio())
	net.SetHandler(1, func(netsim.Message) {})
	rec.Span(sim.Now(), KindPhaseStart, 0, -1, "p", 0)
	net.Send(netsim.Message{Src: 0, Dst: 1, Phase: "p", Size: 10})
	sim.Run()
	rec.Span(sim.Now(), KindPhaseEnd, 0, -1, "p", 0)
	j := rec.Journal()
	if len(j.Events) != 4 {
		t.Fatalf("events = %d, want 4 (start, tx, rx, end)", len(j.Events))
	}
	kinds := []Kind{KindPhaseStart, KindTx, KindRx, KindPhaseEnd}
	for i, k := range kinds {
		if j.Events[i].Kind != k {
			t.Fatalf("event %d kind %s, want %s", i, j.Events[i].Kind, k)
		}
	}
	if tx, rx := j.Events[1], j.Events[2]; rx.At <= tx.At {
		t.Fatalf("rx at %.6f not after tx at %.6f", rx.At, tx.At)
	}
	for i, ev := range j.Events {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
}

func TestMarkAndTruncate(t *testing.T) {
	rec := New()
	rec.Span(0, KindTreecut, 1, -1, "a", 0)
	m := rec.Mark()
	rec.Span(1, KindProxy, 2, -1, "a", 3)
	rec.Span(2, KindRecovery, 0, -1, "", 1)
	if got := len(rec.JournalSince(m).Events); got != 2 {
		t.Fatalf("JournalSince = %d events, want 2", got)
	}
	rec.Truncate(m)
	if got := len(rec.Journal().Events); got != 1 {
		t.Fatalf("after truncate: %d events, want 1", got)
	}
}

// cleanJournal runs a small broadcast+unicast workload and returns its
// journal with matching stats snapshots.
func cleanJournal(t *testing.T) (*Journal, stats.Snapshot, stats.Snapshot) {
	t.Helper()
	sim, net, coll := lineNet(t, 4)
	rec := New()
	net.SetTracer(rec.Radio())
	for i := 0; i < 4; i++ {
		net.SetHandler(topology.NodeID(i), func(netsim.Message) {})
	}
	before := coll.Snapshot()
	net.Send(netsim.Message{Src: 1, Dst: netsim.BroadcastID, Phase: "p", Size: 30})
	net.Send(netsim.Message{Src: 2, Dst: 3, Phase: "q", Size: 90})
	sim.Run()
	after := coll.Snapshot()
	return rec.Journal(), before, after
}

func TestConservationCleanRunPasses(t *testing.T) {
	j, _, _ := cleanJournal(t)
	if v := Conservation(j); len(v) != 0 {
		t.Fatalf("clean run flagged: %v", v)
	}
}

func TestConservationWithLossAndDropsPasses(t *testing.T) {
	// Losses and drops are not violations — they explain the gaps.
	sim, net, _ := lineNet(t, 3)
	rec := New()
	net.SetTracer(rec.Radio())
	net.SetLossRate(0.5, 11)
	net.SetHandler(1, func(netsim.Message) {})
	for i := 0; i < 50; i++ {
		net.Send(netsim.Message{Src: 0, Dst: 1, Phase: "p", Size: 5})
	}
	net.Send(netsim.Message{Src: 0, Dst: 2, Phase: "p", Size: 5}) // non-neighbor: drop
	net.Send(netsim.Message{Src: 0, Dst: 1, Phase: "p", Size: 5})
	net.KillNode(1) // in-flight death: drop at delivery time
	sim.Run()
	j := rec.Journal()
	if !j.HasLoss() {
		t.Fatal("journal should contain losses/drops")
	}
	if v := Conservation(j); len(v) != 0 {
		t.Fatalf("lossy-but-consistent run flagged: %v", v)
	}
}

func TestConservationFlagsPlantedViolations(t *testing.T) {
	j, _, _ := cleanJournal(t)
	// Plant 1: delete one rx — the tx's outcome count no longer matches.
	var tampered []Event
	removed := false
	for _, ev := range j.Events {
		if !removed && ev.Kind == KindRx {
			removed = true
			continue
		}
		tampered = append(tampered, ev)
	}
	if v := Conservation(&Journal{Events: tampered}); len(v) == 0 {
		t.Fatal("missing rx not flagged")
	}
	// Plant 2: an rx with no tx.
	orphan := append(append([]Event(nil), j.Events...), Event{
		Kind: KindRx, MsgID: 9999, At: 1, Node: 0, Peer: 1, Packets: 1, Bytes: 5,
	})
	if v := Conservation(&Journal{Events: orphan}); len(v) == 0 {
		t.Fatal("orphan rx not flagged")
	}
	// Plant 3: rx stamped at its send time (the bug this layer caught).
	var sendTime []Event
	txAt := map[int64]float64{}
	for _, ev := range j.Events {
		if ev.Kind == KindTx {
			txAt[ev.MsgID] = ev.At
		}
	}
	for _, ev := range j.Events {
		if ev.Kind == KindRx {
			ev.At = txAt[ev.MsgID]
		}
		sendTime = append(sendTime, ev)
	}
	if v := Conservation(&Journal{Events: sendTime}); len(v) == 0 {
		t.Fatal("rx-at-send-time not flagged")
	}
}

func TestReconcileCleanRunPasses(t *testing.T) {
	j, before, after := cleanJournal(t)
	if v := Reconcile(j, before, after); len(v) != 0 {
		t.Fatalf("clean run flagged: %v", v)
	}
}

func TestReconcileFlagsTamperedStats(t *testing.T) {
	j, before, after := cleanJournal(t)
	// Plant 1: drop a tx event from the journal.
	var tampered []Event
	for _, ev := range j.Events {
		if ev.Kind == KindTx && len(tampered) == 0 {
			continue
		}
		tampered = append(tampered, ev)
	}
	if v := Reconcile(&Journal{Events: tampered}, before, after); len(v) == 0 {
		t.Fatal("journal missing a tx not flagged against the collector")
	}
	// Plant 2: the journal claims bytes the collector never charged.
	inflated := append([]Event(nil), j.Events...)
	for i := range inflated {
		if inflated[i].Kind == KindTx {
			inflated[i].Bytes++
			break
		}
	}
	if v := Reconcile(&Journal{Events: inflated}, before, after); len(v) == 0 {
		t.Fatal("inflated journal bytes not flagged")
	}
}

func TestSegmentsAndPhaseSpans(t *testing.T) {
	j := &Journal{Events: []Event{
		{Kind: KindPhaseStart, Phase: "a", At: 0},
		{Kind: KindTx, Phase: "a", At: 1, Node: 2, MsgID: 1, Expect: 0, Packets: 3, Bytes: 100},
		{Kind: KindPhaseEnd, Phase: "a", At: 2},
		{Kind: KindPhaseStart, Phase: "a", At: 5},
		{Kind: KindPhaseEnd, Phase: "a", At: 7},
	}}
	segs := segments(j, "a")
	if len(segs) != 2 {
		t.Fatalf("segments = %d, want 2", len(segs))
	}
	spans := PhaseSpans(j)
	if len(spans) != 2 || spans[0].Duration() != 2 || spans[1].Duration() != 2 {
		t.Fatalf("spans = %+v", spans)
	}
	if spans[0].TxPackets != 3 || spans[1].TxPackets != 0 {
		t.Fatalf("tx charged to wrong span: %+v", spans)
	}
	if !strings.Contains(PhaseBreakdown(j), "total") {
		t.Fatal("breakdown lacks total row")
	}
}

func TestFilterSoundness(t *testing.T) {
	clean := &Journal{Events: []Event{
		{Kind: KindSuppress, Node: 4, Peer: 7, Phase: "filter-dissem"},
	}}
	if v := FilterSoundness(clean, map[topology.NodeID]bool{8: true}); len(v) != 0 {
		t.Fatalf("non-contributing suppression flagged: %v", v)
	}
	if v := FilterSoundness(clean, map[topology.NodeID]bool{7: true}); len(v) == 0 {
		t.Fatal("contributing suppression not flagged")
	}
	// Under loss the audit must stand down: a lost Phase-A key
	// legitimately shrinks the filter.
	lossy := &Journal{Events: append([]Event{
		{Kind: KindLost, MsgID: 1, Node: 1, Peer: 2},
	}, clean.Events...)}
	if v := FilterSoundness(lossy, map[topology.NodeID]bool{7: true}); len(v) != 0 {
		t.Fatalf("lossy run flagged: %v", v)
	}
}

func TestExportsRoundTrip(t *testing.T) {
	j, _, _ := cleanJournal(t)
	j.Events = append([]Event{{Kind: KindPhaseStart, Phase: "p", At: 0}}, j.Events...)
	j.Events = append(j.Events, Event{Kind: KindPhaseEnd, Phase: "p", At: 1})

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, j); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(j.Events) {
		t.Fatalf("JSONL lines = %d, want %d", len(lines), len(j.Events))
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first["ev"] != "phase-start" {
		t.Fatalf("first line ev = %v", first["ev"])
	}

	buf.Reset()
	if err := WriteChrome(&buf, j); err != nil {
		t.Fatal(err)
	}
	var chrome struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &chrome); err != nil {
		t.Fatal(err)
	}
	if len(chrome.TraceEvents) == 0 {
		t.Fatal("empty chrome trace")
	}

	tl := Timeline(j, 60)
	if !strings.Contains(tl, "p") || !strings.Contains(tl, "timeline") {
		t.Fatalf("timeline output unexpected:\n%s", tl)
	}
}
