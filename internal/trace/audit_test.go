package trace

import (
	"testing"

	"sensjoin/internal/routing"
	"sensjoin/internal/topology"
)

// lineTree returns the BFS tree of a 0-1-2-...-(n-1) line rooted at 0.
func lineTree(n int) *routing.Tree {
	neighbors := make([][]topology.NodeID, n)
	for i := 0; i < n; i++ {
		if i > 0 {
			neighbors[i] = append(neighbors[i], topology.NodeID(i-1))
		}
		if i < n-1 {
			neighbors[i] = append(neighbors[i], topology.NodeID(i+1))
		}
	}
	return routing.BuildTree(neighbors, 0)
}

func wavedJournal(phase string, txs []Event) *Journal {
	events := []Event{{Kind: KindPhaseStart, Phase: phase, At: 0}}
	events = append(events, txs...)
	last := 0.0
	for _, tx := range txs {
		if tx.At > last {
			last = tx.At
		}
	}
	events = append(events, Event{Kind: KindPhaseEnd, Phase: phase, At: last + 1})
	return &Journal{Events: events}
}

func TestSlotOrderCleanWavePasses(t *testing.T) {
	// Leaves-first TAG order on a 4-node line: node 3 (depth 3) first.
	tree := lineTree(4)
	j := wavedJournal("ja-collect", []Event{
		{Kind: KindTx, Phase: "ja-collect", Node: 3, At: 1, MsgID: 1},
		{Kind: KindTx, Phase: "ja-collect", Node: 2, At: 2, MsgID: 2},
		{Kind: KindTx, Phase: "ja-collect", Node: 1, At: 3, MsgID: 3},
	})
	if v := SlotOrder(j, tree, []string{"ja-collect"}); len(v) != 0 {
		t.Fatalf("clean wave flagged: %v", v)
	}
}

func TestSlotOrderFlagsParentBeforeChild(t *testing.T) {
	tree := lineTree(4)
	j := wavedJournal("ja-collect", []Event{
		{Kind: KindTx, Phase: "ja-collect", Node: 3, At: 1, MsgID: 1},
		{Kind: KindTx, Phase: "ja-collect", Node: 1, At: 2, MsgID: 2}, // before its child 2
		{Kind: KindTx, Phase: "ja-collect", Node: 2, At: 3, MsgID: 3},
	})
	v := SlotOrder(j, tree, []string{"ja-collect"})
	if len(v) == 0 {
		t.Fatal("parent transmitting before its child's slot not flagged")
	}
}

func TestSlotOrderSegmentsIndependently(t *testing.T) {
	// Two executions of the same phase (recovery re-runs): ordering is
	// checked within each segment, not across them — node 3's second-run
	// tx naturally comes after node 1's first-run tx.
	tree := lineTree(4)
	events := []Event{
		{Kind: KindPhaseStart, Phase: "final-collect", At: 0},
		{Kind: KindTx, Phase: "final-collect", Node: 3, At: 1, MsgID: 1},
		{Kind: KindTx, Phase: "final-collect", Node: 2, At: 2, MsgID: 2},
		{Kind: KindTx, Phase: "final-collect", Node: 1, At: 3, MsgID: 3},
		{Kind: KindPhaseEnd, Phase: "final-collect", At: 4},
		{Kind: KindPhaseStart, Phase: "final-collect", At: 10},
		{Kind: KindTx, Phase: "final-collect", Node: 3, At: 11, MsgID: 4},
		{Kind: KindTx, Phase: "final-collect", Node: 2, At: 12, MsgID: 5},
		{Kind: KindTx, Phase: "final-collect", Node: 1, At: 13, MsgID: 6},
		{Kind: KindPhaseEnd, Phase: "final-collect", At: 14},
	}
	if v := SlotOrder(&Journal{Events: events}, tree, []string{"final-collect"}); len(v) != 0 {
		t.Fatalf("independent segments flagged: %v", v)
	}
	// Sanity: without span events the journal is one segment, and node
	// 1's first-run tx precedes its child's second-run tx — a violation.
	var flat []Event
	for _, ev := range events {
		if ev.Kind == KindTx {
			flat = append(flat, ev)
		}
	}
	one := SlotOrder(&Journal{Events: flat}, tree, []string{"final-collect"})
	if len(one) == 0 {
		t.Fatal("sanity check failed: merged segments should violate ordering")
	}
}

func TestSlotOrderIgnoresOtherPhases(t *testing.T) {
	tree := lineTree(3)
	j := &Journal{Events: []Event{
		{Kind: KindTx, Phase: "filter-dissem", Node: 1, At: 1, MsgID: 1},
		{Kind: KindTx, Phase: "filter-dissem", Node: 2, At: 2, MsgID: 2},
	}}
	if v := SlotOrder(j, tree, []string{"ja-collect"}); len(v) != 0 {
		t.Fatalf("unaudited phase flagged: %v", v)
	}
}
