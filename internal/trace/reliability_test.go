package trace

import (
	"testing"

	"sensjoin/internal/netsim"
	"sensjoin/internal/topology"
)

// Journal a real reliable run under loss and check the radio-level
// passes accept it: Conservation at packet granularity and the
// Reliability contract (exactly-once or accounted failure).
func TestReliabilityAuditAcceptsLossyRun(t *testing.T) {
	sim := netsim.NewSim()
	dep := topology.Line(4, 40, 50)
	net := netsim.NewNetwork(sim, dep, netsim.DefaultRadio(), nil)
	net.EnableReliable(netsim.ReliableConfig{})
	net.SetLossRate(0.25, 5)
	r := New()
	net.SetTracer(r.Radio())
	for i := 1; i <= 4; i++ {
		id := topology.NodeID(i)
		net.SetHandler(id, func(m netsim.Message) {})
		net.Send(netsim.Message{Kind: 1, Src: id - 1, Dst: id, Phase: "p", Size: 150})
	}
	// A transfer on a down link must end as an accounted failure.
	net.LinkDown(0, 1)
	net.Send(netsim.Message{Kind: 1, Src: 0, Dst: 1, Phase: "p", Size: 10})
	sim.Run()
	j := r.Journal()
	if net.Retx == 0 {
		t.Fatal("expected retransmissions under 25% loss")
	}
	if vs := Conservation(j); len(vs) != 0 {
		t.Fatalf("conservation violations on a valid reliable run: %v", vs)
	}
	if vs := Reliability(j); len(vs) != 0 {
		t.Fatalf("reliability violations on a valid reliable run: %v", vs)
	}
	found := false
	for _, ev := range j.Events {
		if ev.Kind == KindGiveUp {
			found = true
		}
	}
	if !found {
		t.Fatal("down-link transfer should journal a give-up event")
	}
}

// A transfer whose journal shows neither a complete delivery nor a
// give-up must be flagged.
func TestReliabilityFlagsUnaccountedTransfer(t *testing.T) {
	j := &Journal{Events: []Event{
		{Kind: KindTx, Node: 0, Peer: 1, MsgID: 1, Logical: 1, Packets: 3, Bytes: 100},
		{Kind: KindRx, Node: 0, Peer: 1, MsgID: 1, Logical: 1, Packets: 2, Bytes: 80},
	}}
	vs := Reliability(j)
	if len(vs) != 1 {
		t.Fatalf("want exactly one violation, got %v", vs)
	}
}

// A duplicate before completion and an over-delivery are both protocol
// bugs the pass must catch.
func TestReliabilityFlagsEarlyDupAndOverDelivery(t *testing.T) {
	j := &Journal{Events: []Event{
		{Kind: KindTx, MsgID: 1, Logical: 1, Packets: 2, Bytes: 50},
		{Kind: KindRx, MsgID: 1, Logical: 1, Packets: 1, Bytes: 0, Dup: true},
		{Kind: KindRx, MsgID: 1, Logical: 1, Packets: 3, Bytes: 60},
	}}
	vs := Reliability(j)
	if len(vs) < 2 {
		t.Fatalf("want early-dup and over-delivery violations, got %v", vs)
	}
}
