// Package trace is the structured per-execution journal and audit
// subsystem. A Recorder collects two event streams into one time-ordered
// journal: radio-level events adapted from netsim's tracer (every
// transmission, reception, drop and loss with its true simulated
// timestamp, packet count and phase) and protocol-level span events
// emitted by the join methods in internal/core (phase transitions,
// Treecut exits, proxy takeovers, filter prune and suppress decisions,
// recovery attempts).
//
// Audit passes (audit.go) run over a finished journal and machine-check
// the invariants the paper's evaluation rests on: conservation (every
// reception traces back to a transmission, and drops/losses explain the
// gaps), reconciliation (journal totals equal the stats.Collector per
// node and phase, bit-exact), slot-schedule ordering (a node never
// transmits before its children's slots in the collection phases), and
// filter soundness (no tuple suppressed in Phase B contributes to the
// ground-truth result).
//
// All Recorder methods are safe on a nil receiver, so instrumented hot
// paths need no guards and cost nothing when tracing is off.
package trace

import (
	"sort"
	"sync"

	"sensjoin/internal/netsim"
	"sensjoin/internal/topology"
)

// Kind classifies a journal event.
type Kind uint8

// Radio-level kinds mirror netsim's tracer; span kinds are emitted by
// the protocol implementations in internal/core.
const (
	// KindTx is one transmission (a broadcast is a single tx).
	KindTx Kind = iota
	// KindRx is one delivery, stamped at its arrival time.
	KindRx
	// KindDrop is a failed delivery: link down or receiver dead
	// (including a receiver that died while the message was in flight).
	KindDrop
	// KindLost is a message removed by the probabilistic loss model.
	KindLost
	// KindPhaseStart/KindPhaseEnd bracket a protocol phase (A/B/C, the
	// external collection wave); Phase carries the accounting label.
	KindPhaseStart
	KindPhaseEnd
	// KindTreecut marks a node exiting the query via Treecut (§IV-B);
	// Arg is the complete tuples it shipped.
	KindTreecut
	// KindProxy marks a node taking over proxy duty for its subtree's
	// complete tuples; Arg is the tuple count stored.
	KindProxy
	// KindPrune marks a Selective-Filter-Forwarding decision (§IV-C);
	// Arg is the number of filter keys removed for the subtree.
	KindPrune
	// KindSuppress marks a tuple pruned in Phase B: the filter did not
	// contain its key, so it never ships. Node is the deciding node,
	// Peer the tuple's owner. Filter soundness audits these.
	KindSuppress
	// KindRecovery marks a routing-tree repair before a re-execution
	// (§IV-F); Arg is the attempt number.
	KindRecovery
	// KindGiveUp marks a reliable transfer ending without delivery:
	// retransmissions exhausted (or the sender died mid-transfer). It is
	// the "accounted failure" leg of the reliability audit — every
	// reliable transfer must converge to exactly one effective delivery
	// or one of these.
	KindGiveUp
	// KindRerequest marks the base station re-requesting a missing
	// subtree during scoped recovery; Node is the subtree root, Arg the
	// recovery round.
	KindRerequest
	// KindStandDown marks a subtree falling back to ship-everything mode
	// because filter dissemination to it could not be confirmed; Node is
	// the subtree root.
	KindStandDown
	// KindChurnDeath marks a node taken offline by the churn injector.
	KindChurnDeath
	// KindChurnRejoin marks a dead node the churn injector revived.
	KindChurnRejoin
	// KindChurnMove marks a mobility step that flipped at least one of
	// the node's links; Arg is the number of links that changed state.
	KindChurnMove
	// KindRepair marks a mid-round incremental tree repair; Node is the
	// base station, Arg the number of nodes re-parented. The churn audit
	// uses it to check a repaired run still ends oracle-exact or flagged.
	KindRepair
	// KindFanout marks the base station fanning a shared-execution
	// round's tuples out to one member query of a core.QueryGroup; Node
	// is the base station, Arg the member's row count. In a shared round
	// these are the only events tagged with an individual member's trace
	// ID — everything else carries the group's tag.
	KindFanout
)

var kindNames = [...]string{
	KindTx: "tx", KindRx: "rx", KindDrop: "drop", KindLost: "lost",
	KindPhaseStart: "phase-start", KindPhaseEnd: "phase-end",
	KindTreecut: "treecut", KindProxy: "proxy", KindPrune: "prune",
	KindSuppress: "suppress", KindRecovery: "recovery",
	KindGiveUp: "give-up", KindRerequest: "rerequest", KindStandDown: "stand-down",
	KindChurnDeath: "churn-death", KindChurnRejoin: "churn-rejoin",
	KindChurnMove: "churn-move", KindRepair: "repair",
	KindFanout: "fanout",
}

// String returns the kind's JSONL name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Radio reports whether k is a radio-level event.
func (k Kind) Radio() bool { return k <= KindLost }

// Event is one journal entry. For radio events Node is the sender and
// Peer the receiver (the concrete receiver on per-receiver outcome
// events, BroadcastID on a broadcast tx); receptions are charged to
// Peer. For span events Node is the acting node and Peer is
// kind-specific (the suppressed tuple's owner for KindSuppress, -1
// otherwise).
type Event struct {
	Seq   int              `json:"seq"`
	At    float64          `json:"at"`
	Kind  Kind             `json:"-"`
	Node  topology.NodeID  `json:"node"`
	Peer  topology.NodeID  `json:"peer"`
	MsgID int64            `json:"msg,omitempty"`
	Phase string           `json:"phase,omitempty"`
	// Packets, Bytes and Expect are set on radio events only; Expect on
	// tx events is the number of receivers the medium attempts delivery
	// to.
	Packets int `json:"packets,omitempty"`
	Bytes   int `json:"bytes,omitempty"`
	Expect  int `json:"expect,omitempty"`
	// Arg carries kind-specific data for span events.
	Arg int `json:"arg,omitempty"`
	// Attempt is the reliable transport's transmission attempt (0 = the
	// first transmission).
	Attempt int `json:"attempt,omitempty"`
	// Logical groups all attempts and ACKs of one reliable transfer: the
	// MsgID of its first attempt. Zero on best-effort events.
	Logical int64 `json:"logical,omitempty"`
	// Dup marks a reception suppressed as a duplicate.
	Dup bool `json:"dup,omitempty"`
	// Ack marks link-layer acknowledgement events.
	Ack bool `json:"ack,omitempty"`
	// Trace attributes the event to a request-scoped trace ID (the
	// serving path's per-query attribution). Empty on library runs.
	Trace string `json:"trace,omitempty"`
}

// Recorder accumulates events. The zero-cost rule: every method is a
// no-op on a nil *Recorder, so call sites need no guards.
//
// A recorder is single-goroutine by default; SetConcurrent(true) makes
// appends mutex-guarded so the sharded engine's region workers can emit
// protocol spans in parallel. Worker interleaving cannot leak into the
// recording: journals are rebuilt in canonical order (see Journal)
// whenever one is cut.
type Recorder struct {
	mu         sync.Mutex
	concurrent bool
	tag        string
	events     []Event
	// sealed is the length of the prefix already in canonical order;
	// the unsorted tail is ordered (and the prefix extended) whenever a
	// journal is built.
	sealed int
}

// New returns an empty recorder.
func New() *Recorder { return &Recorder{} }

// Enabled reports whether events are being recorded. Use it to guard
// work that only exists to feed the recorder (e.g. scheduling extra
// simulator events for phase boundaries).
func (r *Recorder) Enabled() bool { return r != nil }

// SetConcurrent toggles mutex-guarded appends. Turn it on before a run
// whose engine emits events from multiple goroutines (the sharded
// simulator), and only while no other recorder method is in flight.
func (r *Recorder) SetConcurrent(on bool) {
	if r == nil {
		return
	}
	r.concurrent = on
}

// SetTag stamps every subsequently appended event's Trace field with
// tag — the serving path's per-query (or per-group) attribution. An
// empty tag stops stamping.
func (r *Recorder) SetTag(tag string) {
	if r == nil {
		return
	}
	if r.concurrent {
		r.mu.Lock()
		defer r.mu.Unlock()
	}
	r.tag = tag
}

// append stamps the sequence number and the current tag and records the
// event, under the mutex when the recorder is in concurrent mode.
func (r *Recorder) append(ev Event) {
	if r.concurrent {
		r.mu.Lock()
		defer r.mu.Unlock()
	}
	ev.Seq = len(r.events)
	if ev.Trace == "" {
		ev.Trace = r.tag
	}
	r.events = append(r.events, ev)
}

// Radio returns a netsim tracer that appends radio events to the
// journal. Install it with Network.SetTracer.
func (r *Recorder) Radio() netsim.Tracer {
	return func(ev netsim.TraceEvent) {
		var k Kind
		switch ev.Event {
		case "tx":
			k = KindTx
		case "rx":
			k = KindRx
		case "drop":
			k = KindDrop
		case "lost":
			k = KindLost
		case "giveup":
			k = KindGiveUp
		default:
			return
		}
		r.append(Event{
			At: ev.At, Kind: k,
			Node: ev.Src, Peer: ev.Dst, MsgID: ev.MsgID, Phase: ev.Phase,
			Packets: ev.Packets, Bytes: ev.Bytes, Expect: ev.Expect,
			Attempt: ev.Attempt, Logical: ev.Logical, Dup: ev.Dup, Ack: ev.Ack,
		})
	}
}

// Span appends a protocol-level event at time at. Safe on nil.
func (r *Recorder) Span(at float64, k Kind, node, peer topology.NodeID, phase string, arg int) {
	if r == nil {
		return
	}
	r.append(Event{
		At: at, Kind: k,
		Node: node, Peer: peer, Phase: phase, Arg: arg,
	})
}

// SpanTagged is Span with an explicit per-event trace tag overriding
// the recorder's ambient tag — the group fan-out uses it to attribute
// each member's rows to that member's own trace ID.
func (r *Recorder) SpanTagged(at float64, k Kind, node, peer topology.NodeID, phase string, arg int, tag string) {
	if r == nil {
		return
	}
	r.append(Event{
		At: at, Kind: k,
		Node: node, Peer: peer, Phase: phase, Arg: arg, Trace: tag,
	})
}

// Mark returns the current journal length; JournalSince and Truncate
// take it to delimit one execution inside a longer recording. Marking
// seals the buffer: the canonical sort never moves an event across a
// mark, so a later journal cut contains exactly the events recorded
// after the mark.
func (r *Recorder) Mark() int {
	if r == nil {
		return 0
	}
	r.seal()
	return len(r.events)
}

// Truncate discards events from mark on (auto-audited runs bound the
// journal's memory this way after each per-run audit).
func (r *Recorder) Truncate(mark int) {
	if r == nil || mark >= len(r.events) {
		return
	}
	r.events = r.events[:mark]
	if r.sealed > mark {
		r.sealed = mark
	}
}

// Journal returns the full recording. The events alias the recorder's
// buffer; audit before recording further.
func (r *Recorder) Journal() *Journal { return r.JournalSince(0) }

// JournalSince returns the recording from mark on, in canonical order.
//
// Canonical order sorts the buffer's unsealed tail by the full event
// record — simulated time major, then node, kind and every remaining
// field — so a journal depends only on the multiset of events, never on
// emission interleaving. That is what makes sharded-engine journals
// byte-identical to the classic engine's for any shard count. Sorting
// only the tail is sound because executions never rewind simulated
// time past an already-cut journal.
func (r *Recorder) JournalSince(mark int) *Journal {
	if r == nil {
		return &Journal{}
	}
	r.seal()
	return &Journal{Events: r.events[mark:]}
}

// seal sorts the buffer's unsealed tail into canonical order and
// extends the sealed prefix over it. Sorting only the tail is sound
// because simulated time never rewinds past a seal point (marks and
// journal cuts happen between runs, with the simulator quiescent).
func (r *Recorder) seal() {
	if r.sealed == len(r.events) {
		return
	}
	tail := r.events[r.sealed:]
	sort.SliceStable(tail, func(i, j int) bool { return canonLess(&tail[i], &tail[j]) })
	for i := range tail {
		tail[i].Seq = r.sealed + i
	}
	r.sealed = len(r.events)
}

// canonLess is the canonical journal order: a full-record lexicographic
// key with the simulated timestamp major. Two equal records compare
// equal, so identical event multisets produce identical journals
// regardless of the order the engine emitted them in.
func canonLess(a, b *Event) bool {
	switch {
	case a.At != b.At:
		return a.At < b.At
	case a.Node != b.Node:
		return a.Node < b.Node
	case a.Kind != b.Kind:
		return kindRank(a.Kind) < kindRank(b.Kind)
	case a.Peer != b.Peer:
		return a.Peer < b.Peer
	case a.MsgID != b.MsgID:
		return a.MsgID < b.MsgID
	case a.Phase != b.Phase:
		return a.Phase < b.Phase
	case a.Arg != b.Arg:
		return a.Arg < b.Arg
	case a.Attempt != b.Attempt:
		return a.Attempt < b.Attempt
	case a.Logical != b.Logical:
		return a.Logical < b.Logical
	case a.Packets != b.Packets:
		return a.Packets < b.Packets
	case a.Bytes != b.Bytes:
		return a.Bytes < b.Bytes
	case a.Expect != b.Expect:
		return a.Expect < b.Expect
	case a.Dup != b.Dup:
		return b.Dup
	case a.Ack != b.Ack:
		return b.Ack
	default:
		return a.Trace < b.Trace
	}
}

// kindRank orders kinds within one (time, node) instant so the
// canonical order keeps phase brackets meaningful: a phase-start
// precedes the node's same-instant radio traffic, a phase-end follows
// it, and the remaining span kinds sit in between in enum order.
func kindRank(k Kind) int {
	switch {
	case k == KindPhaseStart:
		return 0
	case k.Radio():
		return 1 + int(k)
	case k == KindPhaseEnd:
		return 1 << 10
	default:
		return 8 + int(k)
	}
}

// Journal is a finished recording: events in canonical order (simulated
// time major; full-record tie-break, see JournalSince).
type Journal struct {
	Events []Event
}

// Radio iterates the radio-level events.
func (j *Journal) Radio(fn func(Event)) {
	for _, ev := range j.Events {
		if ev.Kind.Radio() {
			fn(ev)
		}
	}
}

// HasLoss reports whether the journal contains any lost or dropped
// message — executions where the network itself removed data, which
// audits that assume a faultless run must skip.
func (j *Journal) HasLoss() bool {
	for _, ev := range j.Events {
		if ev.Kind == KindDrop || ev.Kind == KindLost {
			return true
		}
	}
	return false
}
