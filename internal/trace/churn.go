package trace

import "sensjoin/internal/topology"

// Churn safety audit — the sixth pass. Under churn a run may
// legitimately end incomplete, but it must never be silently wrong:
// every result is either oracle-exact or explicitly flagged with a
// reason and the exact subtrees it is missing. The pass also checks the
// injector's physical model against the journal: a dead node is
// radio-silent until its rejoin.

// ChurnVerdict carries the execution-level facts the caller (core's
// AuditRun) established: whether the result was complete, whether its
// rows matched the pre-run ground truth, and the incompleteness
// annotations it shipped.
type ChurnVerdict struct {
	// Complete mirrors Result.Complete.
	Complete bool
	// OracleExact reports whether the result rows equal the ground truth
	// computed before the run (order-normalized).
	OracleExact bool
	// Reason mirrors Result.IncompleteReason.
	Reason string
	// MissingSubtrees is the count of Result.MissingSubtrees entries.
	MissingSubtrees int
	// Repairs mirrors Result.Repairs.
	Repairs int
}

// ChurnSafety audits one execution under churn:
//
//  1. No silent wrong answers: a result claiming completeness must be
//     oracle-exact.
//  2. Honest degradation: an incomplete result must carry a reason, and
//     when rows of the ground truth are actually absent it must name at
//     least one missing subtree — per-subtree provenance, not a bare
//     flag. (A count-based verdict may be conservatively incomplete
//     with the rows all present — e.g. lost phase-A coverage reports —
//     and then there is no subtree to blame.)
//  3. Radio silence of the dead: after a node's churn-death event it
//     transmits nothing until a churn-rejoin event revives it.
func ChurnSafety(j *Journal, v ChurnVerdict) []Violation {
	var out []Violation
	if v.Complete && !v.OracleExact {
		out = violate(out, "churn-safety", "result claims completeness but differs from the ground truth (repairs=%d)", v.Repairs)
	}
	if !v.Complete {
		if v.Reason == "" {
			out = violate(out, "churn-safety", "incomplete result carries no IncompleteReason")
		}
		if !v.OracleExact && v.MissingSubtrees == 0 {
			out = violate(out, "churn-safety", "incomplete result misses ground-truth rows but names no missing subtree")
		}
	}
	dead := make(map[topology.NodeID]bool)
	for _, ev := range j.Events {
		switch ev.Kind {
		case KindChurnDeath:
			dead[ev.Node] = true
		case KindChurnRejoin:
			delete(dead, ev.Node)
		case KindTx:
			if dead[ev.Node] {
				out = violate(out, "churn-safety", "dead node %d transmitted at t=%.6f (phase %q)", ev.Node, ev.At, ev.Phase)
			}
		}
	}
	return out
}
