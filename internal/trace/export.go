package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// jsonEvent adds the kind name to the wire form of an Event.
type jsonEvent struct {
	Kind string `json:"ev"`
	Event
}

// WriteJSONL writes the journal as one JSON object per line, in order.
func WriteJSONL(w io.Writer, j *Journal) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range j.Events {
		if err := enc.Encode(jsonEvent{Kind: ev.Kind.String(), Event: ev}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// chromeEvent is one entry of the Chrome trace_event format
// (chrome://tracing, Perfetto). Timestamps are microseconds.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChrome writes the journal in the Chrome trace_event format.
// Protocol phases render as duration slices on a "protocol" track;
// matched tx→rx pairs render as per-sender slices spanning the air
// time; span events render as instants on the acting node's track.
func WriteChrome(w io.Writer, j *Journal) error {
	const usec = 1e6
	var evs []chromeEvent
	// Pair receptions with their transmissions for duration slices.
	rxAt := map[int64]float64{}
	j.Radio(func(ev Event) {
		if ev.Kind == KindRx {
			if at, ok := rxAt[ev.MsgID]; !ok || ev.At > at {
				rxAt[ev.MsgID] = ev.At
			}
		}
	})
	var phaseStack []Event
	for _, ev := range j.Events {
		switch ev.Kind {
		case KindTx:
			ce := chromeEvent{
				Name: ev.Phase, Phase: "X", Ts: ev.At * usec,
				Pid: 0, Tid: int(ev.Node),
				Args: map[string]any{"msg": ev.MsgID, "bytes": ev.Bytes, "packets": ev.Packets, "dst": ev.Peer},
			}
			if at, ok := rxAt[ev.MsgID]; ok {
				ce.Dur = (at - ev.At) * usec
			}
			evs = append(evs, ce)
		case KindDrop, KindLost:
			evs = append(evs, chromeEvent{
				Name: ev.Kind.String(), Phase: "i", Ts: ev.At * usec,
				Pid: 0, Tid: int(ev.Node), Scope: "t",
				Args: map[string]any{"msg": ev.MsgID, "dst": ev.Peer, "phase": ev.Phase},
			})
		case KindPhaseStart:
			phaseStack = append(phaseStack, ev)
		case KindPhaseEnd:
			for i := len(phaseStack) - 1; i >= 0; i-- {
				if phaseStack[i].Phase == ev.Phase {
					start := phaseStack[i]
					phaseStack = append(phaseStack[:i], phaseStack[i+1:]...)
					evs = append(evs, chromeEvent{
						Name: ev.Phase, Phase: "X", Ts: start.At * usec,
						Dur: (ev.At - start.At) * usec, Pid: 1, Tid: 0,
					})
					break
				}
			}
		case KindTreecut, KindProxy, KindPrune, KindSuppress, KindRecovery,
			KindGiveUp, KindRerequest, KindStandDown:
			evs = append(evs, chromeEvent{
				Name: ev.Kind.String(), Phase: "i", Ts: ev.At * usec,
				Pid: 0, Tid: int(ev.Node), Scope: "t",
				Args: map[string]any{"peer": ev.Peer, "arg": ev.Arg, "phase": ev.Phase},
			})
		}
	}
	out := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{TraceEvents: evs}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// PhaseSpan is one phase's response-time share.
type PhaseSpan struct {
	Phase      string
	Start, End float64
	TxPackets  int64
	TxBytes    int64
}

// Duration returns the span's length in seconds.
func (p PhaseSpan) Duration() float64 { return p.End - p.Start }

// PhaseSpans extracts the per-phase response-time breakdown from the
// journal's phase span events, in start order. Radio totals of each
// phase label accrue to its span regardless of timing.
func PhaseSpans(j *Journal) []PhaseSpan {
	var spans []PhaseSpan
	open := map[string]int{}
	for _, ev := range j.Events {
		switch ev.Kind {
		case KindPhaseStart:
			open[ev.Phase] = len(spans)
			spans = append(spans, PhaseSpan{Phase: ev.Phase, Start: ev.At, End: ev.At})
		case KindPhaseEnd:
			if i, ok := open[ev.Phase]; ok {
				spans[i].End = ev.At
				delete(open, ev.Phase)
			}
		}
	}
	byPhase := map[string][]int{}
	for i, s := range spans {
		byPhase[s.Phase] = append(byPhase[s.Phase], i)
	}
	j.Radio(func(ev Event) {
		if ev.Kind != KindTx {
			return
		}
		// Charge the tx to the phase span covering it (falling back to
		// the label's last span: a straggler delivery tail).
		idxs := byPhase[ev.Phase]
		if len(idxs) == 0 {
			return
		}
		target := idxs[len(idxs)-1]
		for _, i := range idxs {
			if ev.At >= spans[i].Start && ev.At <= spans[i].End {
				target = i
				break
			}
		}
		spans[target].TxPackets += int64(ev.Packets)
		spans[target].TxBytes += int64(ev.Bytes)
	})
	return spans
}

// PhaseBreakdown formats the response-time breakdown as an aligned
// table: one row per phase span plus a total row.
func PhaseBreakdown(j *Journal) string {
	spans := PhaseSpans(j)
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %12s %12s %12s %10s %12s\n",
		"phase", "start [s]", "end [s]", "duration [s]", "packets", "bytes")
	var total PhaseSpan
	for i, s := range spans {
		fmt.Fprintf(&b, "%-24s %12.4f %12.4f %12.4f %10d %12d\n",
			s.Phase, s.Start, s.End, s.Duration(), s.TxPackets, s.TxBytes)
		if i == 0 || s.Start < total.Start {
			total.Start = s.Start
		}
		if s.End > total.End {
			total.End = s.End
		}
		total.TxPackets += s.TxPackets
		total.TxBytes += s.TxBytes
	}
	if len(spans) > 0 {
		fmt.Fprintf(&b, "%-24s %12.4f %12.4f %12.4f %10d %12d\n",
			"total", total.Start, total.End, total.Duration(), total.TxPackets, total.TxBytes)
	}
	return b.String()
}

// Timeline renders an ASCII timeline of the journal: one row per phase
// span scaled to width columns, with per-phase transmission density
// underneath. cmd/netviz uses it for terminal rendering.
func Timeline(j *Journal, width int) string {
	if width < 20 {
		width = 20
	}
	spans := PhaseSpans(j)
	if len(spans) == 0 {
		return "(no phase spans in trace)\n"
	}
	t0, t1 := spans[0].Start, spans[0].End
	for _, s := range spans {
		if s.Start < t0 {
			t0 = s.Start
		}
		if s.End > t1 {
			t1 = s.End
		}
	}
	if t1 <= t0 {
		t1 = t0 + 1e-9
	}
	col := func(t float64) int {
		c := int(float64(width) * (t - t0) / (t1 - t0))
		if c >= width {
			c = width - 1
		}
		if c < 0 {
			c = 0
		}
		return c
	}
	var b strings.Builder
	fmt.Fprintf(&b, "timeline %.4f s .. %.4f s (%.4f s)\n", t0, t1, t1-t0)
	// Per-column tx counts over all phases.
	density := make([]int64, width)
	maxD := int64(0)
	j.Radio(func(ev Event) {
		if ev.Kind == KindTx {
			c := col(ev.At)
			density[c] += int64(ev.Packets)
			if density[c] > maxD {
				maxD = density[c]
			}
		}
	})
	for _, s := range spans {
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		a, z := col(s.Start), col(s.End)
		for i := a; i <= z; i++ {
			row[i] = '='
		}
		row[a] = '['
		row[z] = ']'
		fmt.Fprintf(&b, "%-24s |%s| %8d pkt\n", s.Phase, row, s.TxPackets)
	}
	if maxD > 0 {
		shades := []byte(" .:-=+*#%@")
		row := make([]byte, width)
		for i := range row {
			idx := int(density[i] * int64(len(shades)-1) / maxD)
			row[i] = shades[idx]
		}
		fmt.Fprintf(&b, "%-24s |%s| %8d pkt/col max\n", "tx density", row, maxD)
	}
	return b.String()
}
