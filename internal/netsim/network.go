package netsim

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"sensjoin/internal/topology"
)

// NodeID identifies a node; it mirrors topology.NodeID.
type NodeID = topology.NodeID

// BroadcastID addresses a message to all live neighbors of the sender.
const BroadcastID NodeID = -1

// RadioConfig describes the packet-level radio model.
type RadioConfig struct {
	// MaxPacket is the maximum over-the-air packet size in bytes
	// (paper default: 48; the packet-size experiment uses 124).
	MaxPacket int
	// HeaderBytes is the fixed per-packet header; payload capacity is
	// MaxPacket - HeaderBytes.
	HeaderBytes int
	// BitRate is the radio data rate in bits/s (802.15.4: 250 kbit/s).
	BitRate float64
	// PacketOverhead is the fixed per-packet channel time in seconds
	// (acquisition, synchronization); it dominates small packets, which
	// is the paper's justification for counting transmissions.
	PacketOverhead float64
}

// DefaultRadio returns the paper's default radio model.
func DefaultRadio() RadioConfig {
	return RadioConfig{MaxPacket: 48, HeaderBytes: 8, BitRate: 250_000, PacketOverhead: 0.003}
}

// Payload returns the usable bytes per packet.
func (c RadioConfig) Payload() int {
	p := c.MaxPacket - c.HeaderBytes
	if p <= 0 {
		panic(fmt.Sprintf("netsim: header %dB leaves no payload in %dB packets", c.HeaderBytes, c.MaxPacket))
	}
	return p
}

// Packets returns the number of packets needed for size payload bytes.
// A zero-size message is still one (control) packet.
func (c RadioConfig) Packets(size int) int {
	if size <= 0 {
		return 1
	}
	p := c.Payload()
	return (size + p - 1) / p
}

// AirTime returns the channel time for transmitting npackets packets
// carrying size payload bytes in total.
func (c RadioConfig) AirTime(npackets, size int) Time {
	bytes := size + npackets*c.HeaderBytes
	return float64(npackets)*c.PacketOverhead + float64(bytes*8)/c.BitRate
}

// Message is a logical protocol message. Size is its wire size in payload
// bytes; Payload carries the in-memory content for the receiving handler
// (the simulator does not re-serialize content that Size already accounts
// for).
type Message struct {
	Kind    int
	Src     NodeID
	Dst     NodeID // BroadcastID for local broadcast
	Phase   string // accounting label
	Size    int    // payload bytes on the wire
	Payload any
}

// Accountant observes transmissions and receptions. The stats package
// provides the standard implementation.
type Accountant interface {
	OnTx(node NodeID, phase string, packets, bytes int)
	OnRx(node NodeID, phase string, packets, bytes int)
}

// Handler processes messages delivered to a node.
type Handler func(m Message)

// Network delivers messages between neighboring nodes over a broadcast
// medium, charging transmissions to an Accountant.
type Network struct {
	Sim   *Sim
	Radio RadioConfig
	Dep   *topology.Deployment

	handlers []Handler
	acct     Accountant
	down     map[linkKey]bool
	dead     []bool

	lossRate float64
	lossRNG  *rand.Rand
	linkLoss map[Link]*linkLossState
	tracer   Tracer

	// Reliable-unicast mode (see reliable.go).
	reliable  bool
	rcfg      ReliableConfig
	exhausted map[Link]int
	giveUp    func(m Message, attempts int)
	// msgSeq numbers transmissions per sender; trace events of one
	// logical message share its MsgID, which is what lets an audit match
	// each reception, drop or loss back to the transmission that caused
	// it. The counters are per sender — and the sender is packed into
	// the id — so id assignment needs no synchronization under sharding
	// (each node's sends execute on its own region's worker) and the id
	// sequence is identical for every shard count.
	msgSeq []int64
	// free is the delivery freelist: in-flight message state is pooled
	// so that the send/deliver path performs zero allocations per event
	// once warm (guarded by TestSendDeliverZeroAllocs).
	free []*delivery
	// freeR replaces free under sharded execution: one freelist per
	// region, so pool objects are acquired by the sender's worker and
	// released by the receiver's without shared mutable state.
	freeR [][]*delivery
	// traceR replaces synchronous tracer calls under sharded execution:
	// each region's worker appends its radio events lock-free to its own
	// buffer, flushed through the tracer at drain time (shardDrain). The
	// canonical journal order in internal/trace makes the flush order
	// invisible to the recorded journal.
	traceR [][]TraceEvent
	// dropR/lostR shadow the Dropped/Lost fields per region during a
	// sharded run (plain fields would race); folded back at drain.
	dropR, lostR []int64

	// met holds nil-safe live instruments; the zero value disables them
	// at the cost of one branch per call site.
	met NetMetrics

	// fallbackLogged dedups the sharded→classic fallback log line; the
	// counter still counts every occurrence.
	fallbackLogged bool

	// Dropped counts unicast messages that could not be delivered
	// because the link was down or the receiver dead.
	Dropped int
	// Lost counts messages dropped by the probabilistic loss model.
	Lost int
	// Retx counts reliable-transport retransmission attempts.
	Retx int
	// AckTx counts acknowledgements transmitted by reliable receivers.
	AckTx int
	// Dups counts duplicate deliveries the reliable transport suppressed.
	Dups int
	// GiveUps counts reliable transfers that exhausted their
	// retransmission budget.
	GiveUps int
}

// SetLossRate enables per-packet Bernoulli loss: each packet of a
// message is lost independently with the given probability, and a
// message is delivered only if all its packets survive (there is no
// link-layer ARQ; the paper's §IV-F recovery re-executes the query
// instead). Transmissions are still charged in full — the sender cannot
// know. Loss draws are deterministic for the seed.
func (n *Network) SetLossRate(rate float64, seed int64) {
	if rate <= 0 {
		n.lossRate, n.lossRNG = 0, nil
		return
	}
	// The loss model draws from one RNG stream; fall back to the
	// classic engine so draws stay ordered and deterministic.
	n.fallbackFromSharding("the loss model")
	n.lossRate = rate
	n.lossRNG = rand.New(rand.NewSource(seed))
}

// fallbackFromSharding reverts the simulator to the classic single-heap
// engine. Every feature whose hot path carries cross-node mutable state
// or a single RNG stream (reliable transport, the loss models, churn)
// calls it on enable, so the fallback DESIGN.md promises holds
// regardless of the order features and sharding were configured in.
// Tracing and live metrics no longer fall back: they buffer or shadow
// per region and fold at drain. The reversion is never silent: it logs
// once per network and counts every occurrence in
// sensjoin_netsim_shard_fallback_total.
func (n *Network) fallbackFromSharding(feature string) {
	if n.Sim.Sharded() {
		n.Sim.DisableSharding()
		n.BindSharding()
		n.noteShardFallback(feature)
	}
}

// noteShardFallback records one sharded→classic reversion.
func (n *Network) noteShardFallback(feature string) {
	n.met.ShardFallback.Inc()
	if !n.fallbackLogged {
		n.fallbackLogged = true
		log.Printf("netsim: %s requires the classic engine; sharded simulation disabled (sensjoin_netsim_shard_fallback_total counts these)", feature)
	}
}

type linkKey struct{ a, b NodeID }

func mkLink(a, b NodeID) linkKey {
	if a > b {
		a, b = b, a
	}
	return linkKey{a, b}
}

// NewNetwork wires a deployment to a simulator.
func NewNetwork(sim *Sim, dep *topology.Deployment, radio RadioConfig, acct Accountant) *Network {
	_ = radio.Payload() // validate
	return &Network{
		Sim:      sim,
		Radio:    radio,
		Dep:      dep,
		handlers: make([]Handler, dep.N()),
		acct:     acct,
		down:     make(map[linkKey]bool),
		dead:     make([]bool, dep.N()),
		msgSeq:   make([]int64, dep.N()),
	}
}

// nextMsgID returns a fresh message id for a transmission by src: the
// sender packed with its per-sender counter. Zero never occurs, so zero
// still means "untraced".
func (n *Network) nextMsgID(src NodeID) int64 {
	n.msgSeq[src]++
	return (int64(src)+1)<<32 | n.msgSeq[src]
}

// SetHandler installs the message handler for node id.
func (n *Network) SetHandler(id NodeID, h Handler) { n.handlers[id] = h }

// TraceEvent is one radio-level event. Timestamps are true simulated
// times: a "tx" carries the send instant, an "rx" the instant after air
// time at which the receiver actually gets the message. "drop" marks a
// delivery that failed (link down, receiver dead — including a receiver
// that died while the message was in flight) and "lost" a message
// removed by the probabilistic loss model. All events of one logical
// message share its MsgID.
type TraceEvent struct {
	// Event is "tx", "rx", "drop" or "lost".
	Event string
	// At is the simulated time of the event in seconds.
	At Time
	// MsgID identifies the transmission this event belongs to.
	MsgID int64
	// Src and Dst are sender and receiver; on a broadcast "tx" Dst is
	// BroadcastID while the per-receiver outcome events carry the
	// concrete receiver.
	Src, Dst NodeID
	// Kind, Phase, Bytes mirror the message.
	Kind  int
	Phase string
	Bytes int
	// Packets is the packet count the radio model charges.
	Packets int
	// Expect is set on "tx" events only: the number of receivers the
	// medium attempts delivery to (link-OK neighbors for a broadcast, 1
	// for any unicast). Conservation audits check that every
	// transmission's outcome events (rx + drop + lost) add up to it.
	Expect int
	// Attempt is the reliable transport's transmission attempt (0 for
	// the first transmission; best-effort events are always 0).
	Attempt int
	// Logical groups all attempts and ACKs of one reliable transfer: it
	// is the MsgID of the first attempt. Zero on best-effort events.
	Logical int64
	// Dup marks a reception the reliable transport suppressed as a
	// duplicate (the handler did not run again).
	Dup bool
	// Ack marks events of link-layer acknowledgements.
	Ack bool
}

// Tracer observes every transmission (once) and per-receiver outcome.
type Tracer func(ev TraceEvent)

// SetTracer installs a radio observer; nil disables tracing. The
// zero-trace send/deliver path stays allocation-free. Tracing composes
// with the sharded engine: events are buffered per region during a run
// and flushed through the tracer at drain time.
func (n *Network) SetTracer(t Tracer) { n.tracer = t }

// trace records a radio event. `by` is the acting node — the sender on
// tx/lost/send-side drops, the receiver on rx/delivery drops — whose
// clock stamps the event and whose region buffers it during a sharded
// run (the acting node's handler executes on that region's worker, so
// the append is race-free).
func (n *Network) trace(event string, by NodeID, m Message, packets int, msgID int64, expect int) {
	if n.tracer == nil {
		return
	}
	ev := TraceEvent{
		Event: event, At: n.Sim.NodeNow(by), MsgID: msgID,
		Src: m.Src, Dst: m.Dst, Kind: m.Kind, Phase: m.Phase,
		Bytes: m.Size, Packets: packets, Expect: expect,
	}
	if sh := n.Sim.sh; sh != nil && sh.running.Load() {
		reg := sh.regionOf[by]
		n.traceR[reg] = append(n.traceR[reg], ev)
		return
	}
	n.tracer(ev)
}

// countDrop and countLost bump the public failure counters, through the
// per-region shadows while a sharded run is in flight.
func (n *Network) countDrop(by NodeID) {
	n.met.Drop.Inc()
	if sh := n.Sim.sh; sh != nil && sh.running.Load() {
		n.dropR[sh.regionOf[by]]++
		return
	}
	n.Dropped++
}

func (n *Network) countLost(by NodeID) {
	n.met.Lost.Inc()
	if sh := n.Sim.sh; sh != nil && sh.running.Load() {
		n.lostR[sh.regionOf[by]]++
		return
	}
	n.Lost++
}

// shardDrain folds per-region buffers back into the global view: trace
// events flush through the tracer in region order (canonical journal
// ordering makes the flush order invisible) and the shadow failure
// counters fold into the public fields. The engine calls it
// single-threaded after every sharded run and on DisableSharding.
func (n *Network) shardDrain() {
	for ri := range n.traceR {
		buf := n.traceR[ri]
		for i := range buf {
			if n.tracer != nil {
				n.tracer(buf[i])
			}
			buf[i] = TraceEvent{}
		}
		n.traceR[ri] = buf[:0]
	}
	for ri := range n.dropR {
		n.Dropped += int(n.dropR[ri])
		n.dropR[ri] = 0
	}
	for ri := range n.lostR {
		n.Lost += int(n.lostR[ri])
		n.lostR[ri] = 0
	}
}

// SetAccountant replaces the transmission observer.
func (n *Network) SetAccountant(a Accountant) { n.acct = a }

// LinkDown forces the link between a and b to fail (both directions).
func (n *Network) LinkDown(a, b NodeID) { n.down[mkLink(a, b)] = true }

// LinkUp restores the link between a and b.
func (n *Network) LinkUp(a, b NodeID) { delete(n.down, mkLink(a, b)) }

// LinkOK reports whether a and b are neighbors with a live link.
func (n *Network) LinkOK(a, b NodeID) bool {
	if n.dead[a] || n.dead[b] {
		return false
	}
	if n.down[mkLink(a, b)] {
		return false
	}
	return n.Dep.IsNeighbor(a, b)
}

// KillNode takes node id offline entirely.
func (n *Network) KillNode(id NodeID) { n.dead[id] = true }

// ReviveNode brings node id back online.
func (n *Network) ReviveNode(id NodeID) { n.dead[id] = false }

// Alive reports whether node id is online.
func (n *Network) Alive(id NodeID) bool { return !n.dead[id] }

// Send transmits m. For unicast the receiver must be a live neighbor;
// otherwise the message is counted as transmitted (the sender cannot know)
// but dropped. For broadcast every live neighbor receives it. The
// transmission is charged to the source; delivery happens after air time.
func (n *Network) Send(m Message) {
	if n.dead[m.Src] {
		return
	}
	if n.reliable && m.Dst != BroadcastID {
		n.sendReliable(m)
		return
	}
	packets := n.Radio.Packets(m.Size)
	if n.acct != nil {
		n.acct.OnTx(m.Src, m.Phase, packets, m.Size)
	}
	n.met.Tx.Add(int64(packets))
	// Message ids exist for the tracer; untraced runs skip the counter so
	// the send path stays branch-cheap.
	var msgID int64
	if n.tracer != nil {
		msgID = n.nextMsgID(m.Src)
	}
	at := n.sendTime(m.Src) + n.Radio.AirTime(packets, m.Size)
	if m.Dst == BroadcastID {
		if n.tracer != nil {
			expect := 0
			for _, v := range n.Dep.Neighbors[m.Src] {
				if n.LinkOK(m.Src, v) {
					expect++
				}
			}
			n.trace("tx", m.Src, m, packets, msgID, expect)
		}
		if n.lossRNG == nil && len(n.down) == 0 {
			// Fast path: every v comes from the sender's neighbor list, no
			// links are down and nothing can be lost, so LinkOK reduces to
			// the receiver being alive — O(deg) instead of the O(deg²)
			// per-neighbor membership scan.
			for _, v := range n.Dep.Neighbors[m.Src] {
				if n.dead[v] {
					continue
				}
				n.deliver(m, v, packets, at, msgID)
			}
			return
		}
		for _, v := range n.Dep.Neighbors[m.Src] {
			if !n.LinkOK(m.Src, v) {
				continue
			}
			if n.lostOn(m.Src, v, packets) {
				n.countLost(m.Src)
				mm := m
				mm.Dst = v
				n.trace("lost", m.Src, mm, packets, msgID, 0)
				continue
			}
			n.deliver(m, v, packets, at, msgID)
		}
		return
	}
	n.trace("tx", m.Src, m, packets, msgID, 1)
	if !n.LinkOK(m.Src, m.Dst) {
		n.countDrop(m.Src)
		n.trace("drop", m.Src, m, packets, msgID, 0)
		return
	}
	if n.lostOn(m.Src, m.Dst, packets) {
		n.countLost(m.Src)
		n.trace("lost", m.Src, m, packets, msgID, 0)
		return
	}
	n.deliver(m, m.Dst, packets, at, msgID)
}

// sendTime returns the sender's current clock: its region clock during a
// sharded run (written only by the region's own worker), the global
// clock otherwise.
func (n *Network) sendTime(src NodeID) Time {
	if sh := n.Sim.sh; sh != nil && sh.running.Load() {
		return sh.regions[sh.regionOf[src]].now
	}
	return n.Sim.now
}

// BindSharding sizes the per-region state (delivery freelists, trace
// buffers, shadow counters) for the simulator's current sharding — or
// reverts to the shared state when sharding is off — and installs the
// network's drain hook. It refuses configurations whose hot path
// carries cross-node mutable state; core.Runner guarantees those
// features disable sharding first.
func (n *Network) BindSharding() {
	sh := n.Sim.sh
	if sh == nil {
		n.freeR = nil
		n.traceR = nil
		n.dropR, n.lostR = nil, nil
		return
	}
	if n.reliable || n.lossRNG != nil || n.linkLoss != nil {
		// A feature with cross-node mutable hot-path state is already on:
		// fall back to the classic engine deterministically instead of
		// refusing — the promise is that fallback works regardless of the
		// order features and sharding were enabled in.
		n.Sim.DisableSharding()
		n.freeR = nil
		n.noteShardFallback(shardBlocker(n))
		return
	}
	n.freeR = make([][]*delivery, len(sh.regions))
	n.traceR = make([][]TraceEvent, len(sh.regions))
	n.dropR = make([]int64, len(sh.regions))
	n.lostR = make([]int64, len(sh.regions))
	sh.drain = n.shardDrain
}

// shardBlocker names the already-enabled feature that keeps the network
// on the classic engine, for the fallback log line.
func shardBlocker(n *Network) string {
	switch {
	case n.reliable:
		return "reliable transport"
	case n.lossRNG != nil:
		return "the loss model"
	default:
		return "per-link loss"
	}
}

// delivery is pooled in-flight message state. Binding run to the
// deliver method once per pool object lets Schedule take a plain func()
// without allocating a fresh closure per message.
type delivery struct {
	n       *Network
	m       Message
	packets int
	msgID   int64
	run     func()
}

func (n *Network) getDelivery(src NodeID) *delivery {
	free := &n.free
	if n.freeR != nil {
		free = &n.freeR[n.Sim.sh.regionOf[src]]
	}
	if k := len(*free); k > 0 {
		d := (*free)[k-1]
		(*free)[k-1] = nil
		*free = (*free)[:k-1]
		return d
	}
	d := &delivery{n: n}
	d.run = d.deliver
	return d
}

// deliver fires at the scheduled delivery instant: reception accounting,
// the rx trace event and the handler all happen after air time, and a
// node that died while the message was in flight is charged nothing.
func (d *delivery) deliver() {
	n, m, packets, msgID := d.n, d.m, d.packets, d.msgID
	d.m = Message{} // release the payload reference
	if n.freeR != nil {
		// Sharded: this runs on the receiver's worker, so the object goes
		// to the receiver's region pool.
		reg := n.Sim.sh.regionOf[m.Dst]
		n.freeR[reg] = append(n.freeR[reg], d)
	} else {
		n.free = append(n.free, d)
	}
	to := m.Dst
	if n.dead[to] {
		n.countDrop(to)
		n.trace("drop", to, m, packets, msgID, 0)
		return
	}
	if n.acct != nil {
		n.acct.OnRx(to, m.Phase, packets, m.Size)
	}
	n.met.Rx.Add(int64(packets))
	n.trace("rx", to, m, packets, msgID, 0)
	if h := n.handlers[to]; h != nil {
		h(m)
	}
}

func (n *Network) deliver(m Message, to NodeID, packets int, at Time, msgID int64) {
	d := n.getDelivery(m.Src)
	d.m = m
	d.m.Dst = to
	d.packets = packets
	d.msgID = msgID
	n.Sim.ScheduleNode(m.Src, to, at, d.run)
}

// N returns the node count including the base station.
func (n *Network) N() int { return n.Dep.N() }

// LiveNeighbors returns the neighbor lists restricted to live links and
// live nodes — the graph a repaired routing tree forms over.
func (n *Network) LiveNeighbors() [][]NodeID {
	out := make([][]NodeID, n.N())
	for i := range out {
		if n.dead[i] {
			continue
		}
		for _, v := range n.Dep.Neighbors[i] {
			if n.LinkOK(NodeID(i), v) {
				out[i] = append(out[i], v)
			}
		}
	}
	return out
}

// MaxAirTime returns an upper bound on the air time of any single message
// of up to size bytes; protocol schedulers use it to size slots.
func (n *Network) MaxAirTime(size int) Time {
	p := n.Radio.Packets(size)
	return n.Radio.AirTime(p, size) + 1e-6
}

// SlotFor returns a conservative slot duration for forwarding size bytes,
// rounded up to a millisecond multiple for readability of traces. With
// reliable transport enabled the slot covers the worst-case transfer —
// every retransmission attempt, its ACK wait and backoff — so slotted
// protocol schedules stay valid under loss.
func (n *Network) SlotFor(size int) Time {
	t := n.MaxAirTime(size)
	if n.reliable {
		ackAir := n.Radio.AirTime(n.Radio.Packets(n.rcfg.AckBytes), n.rcfg.AckBytes) + 1e-6
		total := Time(0)
		for a := 0; a <= n.rcfg.MaxRetries; a++ {
			total += t + ackAir + n.rcfg.backoff(a)
		}
		t = total
	}
	return math.Ceil(t*1000) / 1000
}
