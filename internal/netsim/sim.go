// Package netsim is a discrete-event simulator for wireless sensor
// networks at packet granularity.
//
// It stands in for the ns-2 simulator the paper used (§VI): the paper's
// evaluation metric is the number of packet transmissions with a maximum
// packet size of 48 bytes, counted overall and per node, so the simulator
// models exactly that observable — a broadcast radio medium, link-level
// neighborhoods, message packetization, transmission accounting per
// protocol phase, and link-failure injection. MAC-level effects
// (collisions, retransmissions) are abstracted into per-packet cost; they
// are common-mode between the join methods being compared.
package netsim

import "fmt"

// Time is simulated time in seconds.
type Time = float64

type event struct {
	t   Time
	seq int64
	fn  func()
}

// eventHeap is a binary min-heap ordered by (t, seq) — seq is unique, so
// the order is total and pops are deterministic. The sift operations are
// typed: container/heap would box every event through interface{}, one
// allocation per Push on the simulator's hottest loop.
type eventHeap []event

func (h eventHeap) less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}

// push appends e and sifts it up.
func (h *eventHeap) push(e event) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

// pop removes and returns the minimum event.
func (h *eventHeap) pop() event {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s[n] = event{} // release the fn reference for the collector
	s = s[:n]
	*h = s
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && s.less(r, l) {
			m = r
		}
		if !s.less(m, i) {
			break
		}
		s[i], s[m] = s[m], s[i]
		i = m
	}
	return top
}

// Sim is the event loop: a priority queue of timestamped callbacks.
// Events at equal times run in scheduling order, so runs are
// deterministic. With EnableSharding the single heap is replaced by
// per-region heaps executed in parallel windows (see shard.go).
type Sim struct {
	now    Time
	heap   eventHeap
	seq    int64
	steps  int64
	halted bool
	met    SimMetrics
	sh     *shardEngine
}

// simMetricsSample batches event-counter updates and queue-gauge samples
// in the metered loops: exact totals, 1/1024th of the hot-loop cost.
const simMetricsSample = 1024

// NewSim returns a simulator at time zero.
func NewSim() *Sim { return &Sim{} }

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// NodeNow returns node id's current clock: its region clock during a
// sharded run (written only by the region's own worker, so reading it
// from that worker is race-free), the global clock otherwise. Event
// handlers that need the acting node's time must use it — the global
// clock does not advance while a sharded run is in flight.
func (s *Sim) NodeNow(id NodeID) Time {
	if sh := s.sh; sh != nil && sh.running.Load() {
		return sh.regions[sh.regionOf[id]].now
	}
	return s.now
}

// Steps returns the number of events executed so far.
func (s *Sim) Steps() int64 { return s.steps }

// Schedule runs fn at absolute time t. Scheduling in the past panics:
// it would silently reorder causality. Under sharding, events without a
// node affinity may only be scheduled from coordinator context (outside
// Run); event handlers must use ScheduleNode so the engine knows which
// region's heap and clock apply.
func (s *Sim) Schedule(t Time, fn func()) {
	if s.sh != nil {
		s.scheduleSharded(t, fn)
		return
	}
	if t < s.now {
		panic(fmt.Sprintf("netsim: scheduling event at %.6f before now %.6f", t, s.now))
	}
	s.seq++
	s.heap.push(event{t: t, seq: s.seq, fn: fn})
}

// scheduleSharded routes a plain Schedule to the base station's region.
func (s *Sim) scheduleSharded(t Time, fn func()) {
	if s.sh.running.Load() {
		panic("netsim: plain Schedule from an event handler during a sharded run; use ScheduleNode")
	}
	if t < s.now {
		panic(fmt.Sprintf("netsim: scheduling event at %.6f before now %.6f", t, s.now))
	}
	r := &s.sh.regions[s.sh.regionOf[0]]
	r.seq++
	r.heap.push(event{t: t, seq: r.seq, fn: fn})
}

// After runs fn d seconds from now.
func (s *Sim) After(d Time, fn func()) { s.Schedule(s.now+d, fn) }

// Run executes events until the queue is empty or Halt is called.
func (s *Sim) Run() {
	s.halted = false
	if s.sh != nil {
		s.runSharded(inf())
		return
	}
	if s.met.Events == nil {
		// Untraced hot loop: no metrics bookkeeping per event.
		for len(s.heap) > 0 && !s.halted {
			e := s.heap.pop()
			s.now = e.t
			s.steps++
			e.fn()
		}
		return
	}
	var batch int64
	for len(s.heap) > 0 && !s.halted {
		e := s.heap.pop()
		s.now = e.t
		s.steps++
		if batch++; batch >= simMetricsSample {
			s.met.Events.Add(batch)
			batch = 0
			s.met.Queue.Set(int64(len(s.heap)))
		}
		e.fn()
	}
	s.met.Events.Add(batch)
	s.met.Queue.Set(int64(len(s.heap)))
}

// RunUntil executes events with time <= t, then sets the clock to t.
func (s *Sim) RunUntil(t Time) {
	s.halted = false
	if s.sh != nil {
		s.runSharded(t)
		return
	}
	if s.met.Events == nil {
		for len(s.heap) > 0 && !s.halted && s.heap[0].t <= t {
			e := s.heap.pop()
			s.now = e.t
			s.steps++
			e.fn()
		}
		if !s.halted && s.now < t {
			s.now = t
		}
		return
	}
	var batch int64
	for len(s.heap) > 0 && !s.halted && s.heap[0].t <= t {
		e := s.heap.pop()
		s.now = e.t
		s.steps++
		if batch++; batch >= simMetricsSample {
			s.met.Events.Add(batch)
			batch = 0
			s.met.Queue.Set(int64(len(s.heap)))
		}
		e.fn()
	}
	if !s.halted && s.now < t {
		s.now = t
	}
	s.met.Events.Add(batch)
	s.met.Queue.Set(int64(len(s.heap)))
}

// Halt stops Run/RunUntil after the current event returns.
func (s *Sim) Halt() { s.halted = true }

// Pending reports how many events are queued.
func (s *Sim) Pending() int {
	if s.sh != nil {
		n := 0
		for i := range s.sh.regions {
			n += len(s.sh.regions[i].heap) + len(s.sh.regions[i].inbox)
		}
		return n
	}
	return len(s.heap)
}
