// Package netsim is a discrete-event simulator for wireless sensor
// networks at packet granularity.
//
// It stands in for the ns-2 simulator the paper used (§VI): the paper's
// evaluation metric is the number of packet transmissions with a maximum
// packet size of 48 bytes, counted overall and per node, so the simulator
// models exactly that observable — a broadcast radio medium, link-level
// neighborhoods, message packetization, transmission accounting per
// protocol phase, and link-failure injection. MAC-level effects
// (collisions, retransmissions) are abstracted into per-packet cost; they
// are common-mode between the join methods being compared.
package netsim

import (
	"container/heap"
	"fmt"
)

// Time is simulated time in seconds.
type Time = float64

type event struct {
	t   Time
	seq int64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Sim is the event loop: a priority queue of timestamped callbacks.
// Events at equal times run in scheduling order, so runs are
// deterministic.
type Sim struct {
	now    Time
	heap   eventHeap
	seq    int64
	steps  int64
	halted bool
}

// NewSim returns a simulator at time zero.
func NewSim() *Sim { return &Sim{} }

// Now returns the current simulated time.
func (s *Sim) Now() Time { return s.now }

// Steps returns the number of events executed so far.
func (s *Sim) Steps() int64 { return s.steps }

// Schedule runs fn at absolute time t. Scheduling in the past panics:
// it would silently reorder causality.
func (s *Sim) Schedule(t Time, fn func()) {
	if t < s.now {
		panic(fmt.Sprintf("netsim: scheduling event at %.6f before now %.6f", t, s.now))
	}
	s.seq++
	heap.Push(&s.heap, event{t: t, seq: s.seq, fn: fn})
}

// After runs fn d seconds from now.
func (s *Sim) After(d Time, fn func()) { s.Schedule(s.now+d, fn) }

// Run executes events until the queue is empty or Halt is called.
func (s *Sim) Run() {
	s.halted = false
	for len(s.heap) > 0 && !s.halted {
		e := heap.Pop(&s.heap).(event)
		s.now = e.t
		s.steps++
		e.fn()
	}
}

// RunUntil executes events with time <= t, then sets the clock to t.
func (s *Sim) RunUntil(t Time) {
	s.halted = false
	for len(s.heap) > 0 && !s.halted && s.heap[0].t <= t {
		e := heap.Pop(&s.heap).(event)
		s.now = e.t
		s.steps++
		e.fn()
	}
	if !s.halted && s.now < t {
		s.now = t
	}
}

// Halt stops Run/RunUntil after the current event returns.
func (s *Sim) Halt() { s.halted = true }

// Pending reports how many events are queued.
func (s *Sim) Pending() int { return len(s.heap) }
