package netsim

import (
	"testing"

	"sensjoin/internal/metrics"
)

func TestEventOrdering(t *testing.T) {
	s := NewSim()
	var order []int
	s.Schedule(3, func() { order = append(order, 3) })
	s.Schedule(1, func() { order = append(order, 1) })
	s.Schedule(2, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
	if s.Now() != 3 {
		t.Fatalf("Now = %g, want 3", s.Now())
	}
	if s.Steps() != 3 {
		t.Fatalf("Steps = %d, want 3", s.Steps())
	}
}

func TestFIFOAtEqualTimes(t *testing.T) {
	s := NewSim()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(5, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("equal-time events out of scheduling order: %v", order)
		}
	}
}

func TestAfterAndNesting(t *testing.T) {
	s := NewSim()
	var hits []Time
	s.After(1, func() {
		hits = append(hits, s.Now())
		s.After(2, func() { hits = append(hits, s.Now()) })
	})
	s.Run()
	if len(hits) != 2 || hits[0] != 1 || hits[1] != 3 {
		t.Fatalf("hits = %v, want [1 3]", hits)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	s := NewSim()
	s.Schedule(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic when scheduling in the past")
			}
		}()
		s.Schedule(1, func() {})
	})
	s.Run()
}

func TestRunUntil(t *testing.T) {
	s := NewSim()
	var ran []Time
	for _, at := range []Time{1, 2, 3, 4} {
		at := at
		s.Schedule(at, func() { ran = append(ran, at) })
	}
	s.RunUntil(2.5)
	if len(ran) != 2 {
		t.Fatalf("RunUntil(2.5) ran %v", ran)
	}
	if s.Now() != 2.5 {
		t.Fatalf("Now = %g, want 2.5", s.Now())
	}
	if s.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", s.Pending())
	}
	s.Run()
	if len(ran) != 4 {
		t.Fatalf("Run after RunUntil should finish the rest: %v", ran)
	}
}

func TestHalt(t *testing.T) {
	s := NewSim()
	count := 0
	s.Schedule(1, func() { count++; s.Halt() })
	s.Schedule(2, func() { count++ })
	s.Run()
	if count != 1 {
		t.Fatalf("Halt did not stop the loop; count = %d", count)
	}
	s.Run() // resumes
	if count != 2 {
		t.Fatalf("Run after Halt should resume; count = %d", count)
	}
}

// The event loop is the simulator's hottest path; the typed heap must
// not box events through interface{} (container/heap cost one
// allocation per Push). With the backing array pre-grown and a shared
// callback, a schedule/run cycle performs zero allocations.
func TestEventLoopAllocs(t *testing.T) {
	s := NewSim()
	fn := func() {}
	// Warm-up grows the heap's backing array to its steady-state size.
	for i := 0; i < 256; i++ {
		s.After(float64(i%7), fn)
	}
	s.Run()
	allocs := testing.AllocsPerRun(50, func() {
		for i := 0; i < 256; i++ {
			s.After(float64(i%7), fn)
		}
		s.Run()
	})
	if allocs > 0 {
		t.Fatalf("event loop: %.1f allocs per schedule/run cycle, want 0", allocs)
	}
}

// The typed heap must preserve the (t, seq) execution order: equal
// times run in scheduling order.
func TestHeapOrderWithTies(t *testing.T) {
	s := NewSim()
	var got []int
	times := []float64{3, 1, 2, 1, 3, 1, 2, 0, 3, 0}
	for i, tm := range times {
		i := i
		s.Schedule(tm, func() { got = append(got, i) })
	}
	s.Run()
	want := []int{7, 9, 1, 3, 5, 2, 6, 0, 4, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order %v, want %v", got, want)
		}
	}
}

// Metered runs batch the event counter every simMetricsSample events but
// must still report the exact total: the remainder is flushed when the
// loop drains.
func TestMeteredEventCountExact(t *testing.T) {
	reg := metrics.New()
	s := NewSim()
	s.SetMetrics(NewSimMetrics(reg))
	fn := func() {}
	const n = simMetricsSample*3 + 17 // force a non-empty remainder
	for i := 0; i < n; i++ {
		s.Schedule(float64(i), fn)
	}
	s.Run()
	got := reg.Snapshot()["sensjoin_netsim_events_total"]
	if got != int64(n) {
		t.Fatalf("events_total = %v, want %d", got, n)
	}
}

// BenchmarkEventLoop guards the hot loop in both configurations: the
// unmetered path must stay allocation-free and untouched by the
// observability layer, and the metered path must amortize its counter
// updates over simMetricsSample events.
func BenchmarkEventLoop(b *testing.B) {
	run := func(b *testing.B, s *Sim) {
		fn := func() {}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < 256; j++ {
				s.After(float64(j%7), fn)
			}
			s.Run()
		}
	}
	b.Run("unmetered", func(b *testing.B) {
		run(b, NewSim())
	})
	b.Run("metered", func(b *testing.B) {
		s := NewSim()
		s.SetMetrics(NewSimMetrics(metrics.New()))
		run(b, s)
	})
}
