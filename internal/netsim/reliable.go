package netsim

import (
	"math"
	"math/rand"
)

// Reliable hop-by-hop unicast transport.
//
// The paper's evaluation assumes the reliable delivery the TinyOS
// collection stack provides through link-layer acknowledgements and
// retransmissions. EnableReliable turns the same mechanism on for every
// unicast: the receiver acknowledges each transmission attempt, the
// sender retransmits the packets the receiver still misses (selective
// repeat) after a deterministic exponential backoff, and gives up after
// a bounded number of attempts — recording the exhausted directed link
// so routing can steer around a persistently failing link. Broadcasts
// stay best-effort, exactly like the radio they model.
//
// Accounting is honest: every retransmission and every ACK is charged
// to its transmitter through the Accountant under the data message's
// phase, so the paper's packet metric reflects the true cost of loss.
// Trace events of all attempts and ACKs of one transfer share a Logical
// id (the first attempt's MsgID), which is what lets the audit passes
// check that a retransmitted message converges to exactly one effective
// delivery or an accounted failure.

// AckKind is the reserved message kind of link-layer acknowledgements.
// ACKs terminate at the radio layer; they are never passed to node
// handlers.
const AckKind = -9

// ReliableConfig tunes the reliable-unicast mode. The zero value
// selects the defaults.
type ReliableConfig struct {
	// MaxRetries bounds the retransmission attempts after the first
	// transmission (default 8). An exhausted transfer is reported via
	// ExhaustedLinks and the OnGiveUp callback.
	MaxRetries int
	// AckBytes is the payload size of an acknowledgement (default 0 —
	// one control packet).
	AckBytes int
	// BackoffBase is the extra wait before the first retransmission,
	// beyond the data and ACK air time (default 1 ms).
	BackoffBase Time
	// BackoffFactor multiplies the backoff per attempt (default 2).
	BackoffFactor float64
}

func (c ReliableConfig) withDefaults() ReliableConfig {
	if c.MaxRetries == 0 {
		c.MaxRetries = 8
	}
	if c.BackoffBase == 0 {
		c.BackoffBase = 0.001
	}
	if c.BackoffFactor == 0 {
		c.BackoffFactor = 2
	}
	return c
}

// backoff returns the extra wait after transmission attempt (0-based)
// before the next retransmission.
func (c ReliableConfig) backoff(attempt int) Time {
	return c.BackoffBase * math.Pow(c.BackoffFactor, float64(attempt))
}

// Link is a directed link between two nodes.
type Link struct{ From, To NodeID }

// ReliabilityAccountant is an optional Accountant extension: an
// accountant implementing it additionally sees retransmissions and
// acknowledgements broken out (they are always also charged through
// OnTx, so total packet accounting needs no special casing).
type ReliabilityAccountant interface {
	Accountant
	OnRetx(node NodeID, phase string, packets, bytes int)
	OnAck(node NodeID, phase string, packets, bytes int)
}

// EnableReliable switches every unicast to reliable transport. The ARQ
// state machine mutates per-link maps from delivery handlers, so enabling
// it reverts a sharded simulator to the classic engine.
func (n *Network) EnableReliable(cfg ReliableConfig) {
	n.fallbackFromSharding("reliable transport")
	n.reliable = true
	n.rcfg = cfg.withDefaults()
}

// Reliable reports whether reliable unicast transport is enabled.
func (n *Network) Reliable() bool { return n.reliable }

// OnGiveUp installs a callback invoked when a reliable unicast exhausts
// its retransmission budget; attempts is the total transmissions spent.
// nil removes the callback.
func (n *Network) OnGiveUp(fn func(m Message, attempts int)) { n.giveUp = fn }

// ExhaustedLinks returns a copy of the per-directed-link counts of
// transfers that exhausted their retransmissions — the signal routing
// uses to re-select parents around persistently failing links.
func (n *Network) ExhaustedLinks() map[Link]int {
	out := make(map[Link]int, len(n.exhausted))
	for l, c := range n.exhausted {
		out[l] = c
	}
	return out
}

// ClearExhaustedLinks resets the exhaustion counts (after a tree
// rebuild consumed them).
func (n *Network) ClearExhaustedLinks() { n.exhausted = nil }

// linkLossState is the loss model of one directed link: its rate and a
// private deterministic draw stream.
type linkLossState struct {
	rate float64
	rng  *rand.Rand
}

// SetLinkLossRate overrides the per-packet loss rate of the directed
// link a→b (set the reverse direction separately for asymmetric links).
// A rate <= 0 removes the override, falling back to the global
// SetLossRate model. Each directed link draws from its own stream,
// seeded from the link endpoints, so outcomes are reproducible
// regardless of how transmissions on different links interleave.
func (n *Network) SetLinkLossRate(a, b NodeID, rate float64) {
	l := Link{From: a, To: b}
	if rate <= 0 {
		delete(n.linkLoss, l)
		return
	}
	// Per-link RNG draws mutate shared state from delivery handlers;
	// revert a sharded simulator to the classic engine.
	n.fallbackFromSharding("per-link loss")
	if n.linkLoss == nil {
		n.linkLoss = make(map[Link]*linkLossState)
	}
	s := n.linkLoss[l]
	if s == nil {
		s = &linkLossState{rng: rand.New(rand.NewSource(linkSeed(a, b)))}
		n.linkLoss[l] = s
	}
	s.rate = rate
}

// linkSeed mixes a directed link into a seed (splitmix64 finalizer).
func linkSeed(a, b NodeID) int64 {
	z := uint64(a)*0x9E3779B97F4A7C15 + uint64(b) + 0xD1B54A32D192ED03
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z & (1<<63 - 1))
}

// lossStream selects the draw stream for the directed link from→to:
// the link override when set, the global model otherwise.
func (n *Network) lossStream(from, to NodeID) (*rand.Rand, float64) {
	if s := n.linkLoss[Link{From: from, To: to}]; s != nil {
		return s.rng, s.rate
	}
	return n.lossRNG, n.lossRate
}

// lostOn is the best-effort loss draw: the message is lost when any of
// its packets is (there is no ARQ to repair a partial reception).
func (n *Network) lostOn(from, to NodeID, packets int) bool {
	rng, rate := n.lossStream(from, to)
	if rng == nil {
		return false
	}
	for i := 0; i < packets; i++ {
		if rng.Float64() < rate {
			return true
		}
	}
	return false
}

// lostCountOn draws per-packet losses for a reliable attempt and
// returns how many of the packets are lost.
func (n *Network) lostCountOn(from, to NodeID, packets int) int {
	rng, rate := n.lossStream(from, to)
	if rng == nil {
		return 0
	}
	lost := 0
	for i := 0; i < packets; i++ {
		if rng.Float64() < rate {
			lost++
		}
	}
	return lost
}

// pendingTx tracks one reliable unicast across its transmission
// attempts. remaining/remBytes is the packet ledger of what the
// receiver still misses; the simulator keeps it exact (real stacks
// track it with sequence numbers), so a retransmission carries exactly
// the missing packets. The in-memory payload is handed to the receiver
// only when the ledger drains to zero.
type pendingTx struct {
	m       Message
	logical int64
	total   int // packets of the full message
	remain  int
	remB    int
	attempt int
	acked   bool
	done    bool
}

// sendReliable starts a reliable unicast transfer.
func (n *Network) sendReliable(m Message) {
	packets := n.Radio.Packets(m.Size)
	p := &pendingTx{m: m, total: packets, remain: packets, remB: m.Size}
	n.met.InFlight.Inc()
	n.transmit(p)
}

// transmit performs one transmission attempt of p: charge the sender,
// draw per-packet loss, schedule the (partial) delivery and the
// retransmission timeout. When the transfer is already fully delivered
// but the final ACK was lost, a one-packet probe solicits a fresh ACK;
// its reception is a suppressed duplicate.
func (n *Network) transmit(p *pendingTx) {
	m := p.m
	send, sendB := p.remain, p.remB
	probe := false
	if send == 0 {
		send, sendB, probe = 1, 0, true
	}
	msgID := n.nextMsgID(m.Src)
	if p.attempt == 0 {
		p.logical = msgID
	} else {
		n.Retx++
		n.met.Retx.Inc()
	}
	n.met.Tx.Add(int64(send))
	if n.acct != nil {
		n.acct.OnTx(m.Src, m.Phase, send, sendB)
		if p.attempt > 0 {
			if ra, ok := n.acct.(ReliabilityAccountant); ok {
				ra.OnRetx(m.Src, m.Phase, send, sendB)
			}
		}
	}
	n.traceRel("tx", m, send, sendB, msgID, 1, p.attempt, p.logical, false, false)
	air := n.Radio.AirTime(send, sendB)
	switch {
	case !n.LinkOK(m.Src, m.Dst):
		n.Dropped++
		n.met.Drop.Inc()
		n.traceRel("drop", m, send, sendB, msgID, 0, p.attempt, p.logical, false, false)
	case probe:
		if n.lostCountOn(m.Src, m.Dst, send) > 0 {
			n.Lost++
			n.met.Lost.Inc()
			n.traceRel("lost", m, send, sendB, msgID, 0, p.attempt, p.logical, false, false)
		} else {
			n.Sim.Schedule(n.Sim.Now()+air, func() { n.deliverProbe(p, msgID) })
		}
	default:
		lost := n.lostCountOn(m.Src, m.Dst, send)
		arrived := send - lost
		arrivedB := sendB
		if lost > 0 {
			// The byte split follows the packet payload capacity; the
			// ledger invariant Packets(remB) == remain holds throughout.
			arrivedB = min(sendB, arrived*n.Radio.Payload())
			n.Lost++
			n.met.Lost.Inc()
			n.traceRel("lost", m, lost, sendB-arrivedB, msgID, 0, p.attempt, p.logical, false, false)
		}
		if arrived > 0 {
			n.Sim.Schedule(n.Sim.Now()+air, func() { n.deliverReliable(p, msgID, arrived, arrivedB) })
		}
	}
	attempt := p.attempt
	ackAir := n.Radio.AirTime(n.Radio.Packets(n.rcfg.AckBytes), n.rcfg.AckBytes)
	n.Sim.Schedule(n.Sim.Now()+air+ackAir+n.rcfg.backoff(attempt), func() { n.onTimeout(p, attempt) })
}

// deliverReliable fires when an attempt's surviving packets reach the
// receiver: charge the reception, drain the ledger, hand the message to
// the handler once complete, and acknowledge.
func (n *Network) deliverReliable(p *pendingTx, msgID int64, arrived, arrivedB int) {
	m := p.m
	to := m.Dst
	if n.dead[to] {
		n.Dropped++
		n.met.Drop.Inc()
		n.traceRel("drop", m, arrived, arrivedB, msgID, 0, p.attempt, p.logical, false, false)
		return
	}
	p.remain -= arrived
	p.remB -= arrivedB
	if n.acct != nil {
		n.acct.OnRx(to, m.Phase, arrived, arrivedB)
	}
	n.met.Rx.Add(int64(arrived))
	n.traceRel("rx", m, arrived, arrivedB, msgID, 0, p.attempt, p.logical, false, false)
	if p.remain == 0 {
		if h := n.handlers[to]; h != nil {
			h(m)
		}
	}
	n.sendAck(p, to)
}

// deliverProbe fires when a duplicate probe reaches a receiver that
// already has the complete message: the duplicate is suppressed (the
// handler does not run again) and only re-acknowledged.
func (n *Network) deliverProbe(p *pendingTx, msgID int64) {
	m := p.m
	to := m.Dst
	if n.dead[to] {
		n.Dropped++
		n.met.Drop.Inc()
		n.traceRel("drop", m, 1, 0, msgID, 0, p.attempt, p.logical, false, false)
		return
	}
	n.Dups++
	n.met.Dup.Inc()
	if n.acct != nil {
		n.acct.OnRx(to, m.Phase, 1, 0)
	}
	n.met.Rx.Inc()
	n.traceRel("rx", m, 1, 0, msgID, 0, p.attempt, p.logical, true, false)
	n.sendAck(p, to)
}

// sendAck transmits the link-layer acknowledgement for p's latest
// attempt from the receiver back to the sender, charged to the receiver
// under the data message's phase. ACKs are themselves best-effort (a
// lost ACK costs one retransmission round) and are never acknowledged.
func (n *Network) sendAck(p *pendingTx, from NodeID) {
	dst := p.m.Src
	size := n.rcfg.AckBytes
	packets := n.Radio.Packets(size)
	msgID := n.nextMsgID(from)
	n.AckTx++
	n.met.Ack.Inc()
	n.met.Tx.Add(int64(packets))
	if n.acct != nil {
		n.acct.OnTx(from, p.m.Phase, packets, size)
		if ra, ok := n.acct.(ReliabilityAccountant); ok {
			ra.OnAck(from, p.m.Phase, packets, size)
		}
	}
	am := Message{Kind: AckKind, Src: from, Dst: dst, Phase: p.m.Phase, Size: size}
	n.traceRel("tx", am, packets, size, msgID, 1, 0, p.logical, false, true)
	switch {
	case !n.LinkOK(from, dst):
		n.Dropped++
		n.met.Drop.Inc()
		n.traceRel("drop", am, packets, size, msgID, 0, 0, p.logical, false, true)
	case n.lostCountOn(from, dst, packets) > 0:
		n.Lost++
		n.met.Lost.Inc()
		n.traceRel("lost", am, packets, size, msgID, 0, 0, p.logical, false, true)
	default:
		final := p.remain == 0
		n.Sim.Schedule(n.Sim.Now()+n.Radio.AirTime(packets, size), func() {
			if n.dead[dst] {
				n.Dropped++
				n.met.Drop.Inc()
				n.traceRel("drop", am, packets, size, msgID, 0, 0, p.logical, false, true)
				return
			}
			if n.acct != nil {
				n.acct.OnRx(dst, am.Phase, packets, size)
			}
			n.traceRel("rx", am, packets, size, msgID, 0, 0, p.logical, false, true)
			if final {
				p.acked = true
			}
		})
	}
}

// onTimeout fires after an attempt's retransmission window: a transfer
// that is not acknowledged retransmits until the budget is exhausted,
// then records the failed directed link and reports the give-up.
func (n *Network) onTimeout(p *pendingTx, attempt int) {
	if p.done || p.attempt != attempt {
		return
	}
	if p.acked || n.dead[p.m.Src] {
		p.done = true
		n.met.InFlight.Dec()
		if !p.acked {
			// Sender died mid-transfer: account the failure for audits.
			n.traceRel("giveup", p.m, p.remain, p.remB, 0, 0, attempt, p.logical, false, false)
		}
		return
	}
	if attempt >= n.rcfg.MaxRetries {
		p.done = true
		n.met.InFlight.Dec()
		n.traceRel("giveup", p.m, p.remain, p.remB, 0, 0, attempt, p.logical, false, false)
		n.GiveUps++
		n.met.GiveUp.Inc()
		if n.exhausted == nil {
			n.exhausted = make(map[Link]int)
		}
		n.exhausted[Link{From: p.m.Src, To: p.m.Dst}]++
		if n.giveUp != nil {
			n.giveUp(p.m, attempt+1)
		}
		return
	}
	p.attempt++
	n.transmit(p)
}

// traceRel emits a radio event of the reliable transport; unlike the
// best-effort trace helper it carries per-attempt packet/byte counts and
// the reliability fields.
func (n *Network) traceRel(event string, m Message, packets, bytes int, msgID int64, expect, attempt int, logical int64, dup, ack bool) {
	if n.tracer == nil {
		return
	}
	n.tracer(TraceEvent{
		Event: event, At: n.Sim.Now(), MsgID: msgID,
		Src: m.Src, Dst: m.Dst, Kind: m.Kind, Phase: m.Phase,
		Bytes: bytes, Packets: packets, Expect: expect,
		Attempt: attempt, Logical: logical, Dup: dup, Ack: ack,
	})
}
