package netsim

import "sensjoin/internal/metrics"

// Live instrumentation of the simulator and radio layer.
//
// Instruments are stored by value with nil-safe pointers inside, so the
// zero value (metrics off) costs one predicted branch per call site and
// no allocations — the send/deliver path keeps its 0 allocs/event
// guarantee (TestSendDeliverZeroAllocs, TestEventLoopAllocs).

// SimMetrics instruments the event loop.
type SimMetrics struct {
	// Events counts executed simulator events.
	Events *metrics.Counter
	// Queue tracks the event-queue depth.
	Queue *metrics.Gauge
}

// NewSimMetrics registers the event-loop instruments on r. Counters are
// cumulative across every simulation sharing the registry. A nil
// registry yields no-op instruments.
func NewSimMetrics(r *metrics.Registry) SimMetrics {
	return SimMetrics{
		Events: r.Counter("sensjoin_netsim_events_total", "simulator events executed"),
		Queue:  r.Gauge("sensjoin_netsim_queue_depth", "pending events in the simulator queue"),
	}
}

// SetMetrics installs event-loop instruments (zero value disables).
func (s *Sim) SetMetrics(m SimMetrics) { s.met = m }

// NetMetrics instruments the radio layer: traffic, failure modes and the
// reliable transport.
type NetMetrics struct {
	Tx, Rx     *metrics.Counter // packets transmitted / received
	Drop, Lost *metrics.Counter // failed deliveries / loss-model removals
	Retx, Ack  *metrics.Counter // reliable retransmissions / ACK packets
	Dup        *metrics.Counter // suppressed duplicate deliveries
	GiveUp     *metrics.Counter // reliable transfers that exhausted retries
	InFlight   *metrics.Gauge   // reliable transfers currently in flight
	// ShardFallback counts reversions from the sharded to the classic
	// engine because a feature with cross-node mutable hot-path state
	// (tracing, reliable transport, loss models, churn) was enabled.
	ShardFallback *metrics.Counter
}

// NewNetMetrics registers the radio instruments on r. A nil registry
// yields no-op instruments.
func NewNetMetrics(r *metrics.Registry) NetMetrics {
	return NetMetrics{
		Tx:            r.Counter("sensjoin_netsim_tx_packets_total", "packets transmitted"),
		Rx:            r.Counter("sensjoin_netsim_rx_packets_total", "packets received"),
		Drop:          r.Counter("sensjoin_netsim_dropped_total", "messages dropped (link down or receiver dead)"),
		Lost:          r.Counter("sensjoin_netsim_lost_total", "messages removed by the loss model"),
		Retx:          r.Counter("sensjoin_netsim_retx_total", "reliable-transport retransmission attempts"),
		Ack:           r.Counter("sensjoin_netsim_ack_tx_total", "link-layer acknowledgements transmitted"),
		Dup:           r.Counter("sensjoin_netsim_dup_rx_total", "duplicate deliveries suppressed"),
		GiveUp:        r.Counter("sensjoin_netsim_giveups_total", "reliable transfers that exhausted retransmissions"),
		InFlight:      r.Gauge("sensjoin_netsim_reliable_inflight", "reliable transfers in flight"),
		ShardFallback: r.Counter("sensjoin_netsim_shard_fallback_total", "reversions from the sharded to the classic engine"),
	}
}

// SetMetrics installs radio instruments (zero value disables).
func (n *Network) SetMetrics(m NetMetrics) { n.met = m }

// ChurnMetrics instruments the churn & mobility injector.
type ChurnMetrics struct {
	Deaths    *metrics.Counter // nodes taken offline
	Rejoins   *metrics.Counter // dead nodes revived
	Moves     *metrics.Counter // mobility steps that flipped a link
	LinkFlaps *metrics.Counter // individual link state changes
	Ticks     *metrics.Counter // churn epochs executed
}

// NewChurnMetrics registers the churn instruments on r. A nil registry
// yields no-op instruments.
func NewChurnMetrics(r *metrics.Registry) ChurnMetrics {
	return ChurnMetrics{
		Deaths:    r.Counter("sensjoin_churn_deaths_total", "nodes killed by the churn injector"),
		Rejoins:   r.Counter("sensjoin_churn_rejoins_total", "dead nodes revived by the churn injector"),
		Moves:     r.Counter("sensjoin_churn_moves_total", "mobility steps that changed link reachability"),
		LinkFlaps: r.Counter("sensjoin_churn_link_flaps_total", "link state changes caused by mobility"),
		Ticks:     r.Counter("sensjoin_churn_ticks_total", "churn epochs executed"),
	}
}
