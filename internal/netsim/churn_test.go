package netsim

import (
	"fmt"
	"testing"

	"sensjoin/internal/metrics"
	"sensjoin/internal/topology"
)

// churnRun drives one injector over a grid deployment for several
// Cover/Run windows and returns every observable: event log, counters,
// aliveness and live-degree vector after each window.
func churnRun(dep *topology.Deployment, cfg ChurnConfig, windows int, window Time) string {
	sim := NewSim()
	net := NewNetwork(sim, dep, DefaultRadio(), nil)
	ch := NewChurn(net, cfg)
	out := ""
	ch.OnEvent = func(ev ChurnEvent) {
		out += fmt.Sprintf("ev %.3f k=%d n=%d a=%d\n", ev.At, ev.Kind, ev.Node, ev.Arg)
	}
	for w := 0; w < windows; w++ {
		until := Time(w+1) * window
		ch.Cover(until)
		sim.RunUntil(until)
		alive, links := 0, 0
		for i := 0; i < dep.N(); i++ {
			if net.Alive(NodeID(i)) {
				alive++
			}
		}
		for _, nb := range net.LiveNeighbors() {
			links += len(nb)
		}
		out += fmt.Sprintf("w%d alive=%d links=%d\n", w, alive, links)
	}
	out += fmt.Sprintf("deaths=%d rejoins=%d moves=%d flaps=%d ticks=%d\n",
		ch.Deaths, ch.Rejoins, ch.Moves, ch.LinkFlaps, ch.Ticks)
	return out
}

func TestChurnDeterministicReplay(t *testing.T) {
	dep := topology.Grid(8, 8, 35, 50)
	cfg := ChurnConfig{Seed: 7, Rate: 0.10, Epoch: 10, Speed: 4}
	a := churnRun(dep, cfg, 5, 60)
	b := churnRun(dep, cfg, 5, 60)
	if a != b {
		t.Fatalf("same-seed churn runs diverged:\n%s\nvs\n%s", a, b)
	}
	if c := churnRun(dep, ChurnConfig{Seed: 8, Rate: 0.10, Epoch: 10, Speed: 4}, 5, 60); c == a {
		t.Fatalf("different seeds produced identical churn")
	}
}

func TestChurnActuallyChurns(t *testing.T) {
	dep := topology.Grid(8, 8, 35, 50)
	sim := NewSim()
	net := NewNetwork(sim, dep, DefaultRadio(), nil)
	ch := NewChurn(net, ChurnConfig{Seed: 3, Rate: 0.20, Epoch: 10, Speed: 5})
	ch.Cover(600)
	sim.RunUntil(600)
	if ch.Deaths == 0 || ch.Rejoins == 0 || ch.LinkFlaps == 0 {
		t.Fatalf("sustained 20%% churn produced deaths=%d rejoins=%d flaps=%d; expected all > 0",
			ch.Deaths, ch.Rejoins, ch.LinkFlaps)
	}
	if !net.Alive(topology.BaseStation) {
		t.Fatalf("churn killed the base station")
	}
	if ch.Ticks != 60 {
		t.Fatalf("expected 60 ticks over 600s at epoch 10, got %d", ch.Ticks)
	}
}

func TestChurnZeroRateDrawsNothing(t *testing.T) {
	dep := topology.Grid(6, 6, 35, 50)
	sim := NewSim()
	net := NewNetwork(sim, dep, DefaultRadio(), nil)
	ch := NewChurn(net, ChurnConfig{Seed: 3, Rate: 0, Epoch: 10})
	ch.Cover(300)
	sim.RunUntil(300)
	if ch.Deaths+ch.Rejoins+ch.Moves+ch.LinkFlaps != 0 {
		t.Fatalf("rate-0 churn changed state: deaths=%d rejoins=%d moves=%d flaps=%d",
			ch.Deaths, ch.Rejoins, ch.Moves, ch.LinkFlaps)
	}
	for i := 0; i < dep.N(); i++ {
		if !net.Alive(NodeID(i)) {
			t.Fatalf("rate-0 churn killed node %d", i)
		}
	}
}

// TestChurnMobilityLinksRecover drives one node far out of range and
// back, checking that the injector's link flips are symmetric: every
// link it takes down comes back when the node returns.
func TestChurnMobilityLinksRecover(t *testing.T) {
	dep := topology.Grid(6, 6, 35, 50)
	sim := NewSim()
	net := NewNetwork(sim, dep, DefaultRadio(), nil)
	ch := NewChurn(net, ChurnConfig{Seed: 1, Rate: 0.5, Epoch: 5, Speed: 10, DeathShare: 0.0001, RejoinProb: 0.9})
	before := 0
	for _, nb := range net.LiveNeighbors() {
		before += len(nb)
	}
	ch.Cover(2000)
	sim.RunUntil(2000)
	if ch.LinkFlaps == 0 {
		t.Fatalf("mobility produced no link flaps")
	}
	downs := 0
	for range net.ExhaustedLinks() {
		downs++ // unrelated; just ensure the call still works under churn
	}
	_ = downs
	after := 0
	for _, nb := range net.LiveNeighbors() {
		after += len(nb)
	}
	// Links only toggle on the original neighbor graph: the live degree
	// can never exceed the static one.
	if after > before {
		t.Fatalf("live links grew beyond the static neighbor graph: %d > %d", after, before)
	}
}

func TestChurnShardFallbackCountedAndLogged(t *testing.T) {
	dep := topology.Line(40, 30, 50)
	sim := NewSim()
	sim.EnableSharding(PartitionStrips(dep, 4), 4, DefaultRadio().AirTime(1, 0), 2)
	net := NewNetwork(sim, dep, DefaultRadio(), nil)
	net.BindSharding()
	reg := metrics.New()
	net.SetMetrics(NewNetMetrics(reg))
	fallback := NewNetMetrics(reg).ShardFallback // registry dedups: same counter
	if got := fallback.Value(); got != 0 {
		t.Fatalf("fallback counter starts at %d", got)
	}
	NewChurn(net, ChurnConfig{Seed: 1, Rate: 0.01})
	if sim.Sharded() {
		t.Fatalf("churn did not revert the sharded engine")
	}
	if got := fallback.Value(); got != 1 {
		t.Fatalf("fallback counter = %d after churn attach, want 1", got)
	}
	// Further fallback-triggering features count again (the log line is
	// deduped, the counter is not) — but only when sharding is active.
	net.SetTracer(func(TraceEvent) {})
	if got := fallback.Value(); got != 1 {
		t.Fatalf("fallback counter = %d after tracer on classic engine, want still 1", got)
	}
}

func TestShardFallbackCounterOnBind(t *testing.T) {
	dep := topology.Line(20, 30, 50)
	sim := NewSim()
	net := NewNetwork(sim, dep, DefaultRadio(), nil)
	reg := metrics.New()
	net.SetMetrics(NewNetMetrics(reg))
	net.EnableReliable(ReliableConfig{})
	// Enabling sharding after the fact: BindSharding must refuse, revert
	// and count.
	sim.EnableSharding(PartitionStrips(dep, 2), 2, DefaultRadio().AirTime(1, 0), 1)
	net.BindSharding()
	if sim.Sharded() {
		t.Fatalf("BindSharding kept sharding despite reliable transport")
	}
	if got := NewNetMetrics(reg).ShardFallback.Value(); got != 1 {
		t.Fatalf("fallback counter = %d, want 1", got)
	}
}
