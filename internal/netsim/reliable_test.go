package netsim

import "testing"

// phaseAcct records per-node, per-phase traffic including the reliable
// transport's retransmission/ACK breakdown.
type phaseAcct struct {
	tx, rx, retx, ack map[NodeID]map[string][2]int
}

func newPhaseAcct() *phaseAcct {
	return &phaseAcct{
		tx:   map[NodeID]map[string][2]int{},
		rx:   map[NodeID]map[string][2]int{},
		retx: map[NodeID]map[string][2]int{},
		ack:  map[NodeID]map[string][2]int{},
	}
}

func add(m map[NodeID]map[string][2]int, n NodeID, phase string, p, b int) {
	if m[n] == nil {
		m[n] = map[string][2]int{}
	}
	cur := m[n][phase]
	m[n][phase] = [2]int{cur[0] + p, cur[1] + b}
}

func (a *phaseAcct) OnTx(n NodeID, phase string, p, b int)   { add(a.tx, n, phase, p, b) }
func (a *phaseAcct) OnRx(n NodeID, phase string, p, b int)   { add(a.rx, n, phase, p, b) }
func (a *phaseAcct) OnRetx(n NodeID, phase string, p, b int) { add(a.retx, n, phase, p, b) }
func (a *phaseAcct) OnAck(n NodeID, phase string, p, b int)  { add(a.ack, n, phase, p, b) }

func reliableNet(nodes int, acct Accountant) (*Sim, *Network) {
	sim := NewSim()
	net := NewNetwork(sim, lineDeployment(nodes), DefaultRadio(), acct)
	net.EnableReliable(ReliableConfig{})
	return sim, net
}

// Under heavy per-packet loss a reliable multi-packet unicast must still
// arrive exactly once, with retransmissions and ACKs charged to their
// transmitters under the data phase.
func TestReliableDeliversExactlyOnceUnderLoss(t *testing.T) {
	acct := newPhaseAcct()
	sim, net := reliableNet(3, acct)
	net.SetLossRate(0.3, 99)
	var got []Message
	net.SetHandler(1, func(m Message) { got = append(got, m) })
	// 200 payload bytes = 5 packets at the default 40B payload.
	net.Send(Message{Kind: 3, Src: 0, Dst: 1, Phase: "data", Size: 200, Payload: "big"})
	sim.Run()
	if len(got) != 1 || got[0].Payload != "big" {
		t.Fatalf("want exactly one delivery, got %d (%v)", len(got), got)
	}
	if net.Retx == 0 {
		t.Fatal("30% loss on a 5-packet message should force retransmissions")
	}
	if acct.retx[0]["data"][0] == 0 {
		t.Fatal("retransmissions not charged to the sender's phase accounting")
	}
	if acct.ack[1]["data"][0] == 0 {
		t.Fatal("ACKs not charged to the receiver's phase accounting")
	}
	// Retransmissions ride in OnTx too: total tx packets exceed the
	// 5-packet clean cost.
	if acct.tx[0]["data"][0] <= 5 {
		t.Fatalf("sender tx packets = %d, want > 5 (retransmissions included)", acct.tx[0]["data"][0])
	}
	if net.GiveUps != 0 {
		t.Fatalf("GiveUps = %d, want 0", net.GiveUps)
	}
}

// A lost final ACK makes the sender retransmit a probe; the receiver
// must suppress the duplicate (the handler does not run again) and
// re-acknowledge.
func TestReliableSuppressesDuplicateOnLostAck(t *testing.T) {
	acct := newPhaseAcct()
	sim, net := reliableNet(3, acct)
	// Asymmetric loss: data direction clean, ACK direction dead.
	net.SetLinkLossRate(1, 0, 1.0)
	calls := 0
	net.SetHandler(1, func(m Message) { calls++ })
	net.Send(Message{Kind: 3, Src: 0, Dst: 1, Phase: "data", Size: 10})
	sim.Run()
	if calls != 1 {
		t.Fatalf("handler ran %d times, want exactly 1", calls)
	}
	if net.Dups == 0 {
		t.Fatal("probe retransmissions should be suppressed as duplicates")
	}
	// With the ACK direction fully dead the sender can never confirm and
	// must eventually give up — an accounted failure, not silence.
	if net.GiveUps != 1 {
		t.Fatalf("GiveUps = %d, want 1", net.GiveUps)
	}
}

// Exhausting the retransmission budget on a down link must record the
// directed link and fire the give-up callback with the attempt total.
func TestReliableExhaustionRecordsLink(t *testing.T) {
	sim, net := reliableNet(3, newPhaseAcct())
	net.LinkDown(0, 1)
	var gaveUp Message
	attempts := 0
	net.OnGiveUp(func(m Message, a int) { gaveUp = m; attempts = a })
	net.Send(Message{Kind: 3, Src: 0, Dst: 1, Phase: "data", Size: 10})
	sim.Run()
	cfg := ReliableConfig{}.withDefaults()
	if attempts != cfg.MaxRetries+1 {
		t.Fatalf("give-up after %d attempts, want %d", attempts, cfg.MaxRetries+1)
	}
	if gaveUp.Dst != 1 {
		t.Fatalf("give-up message = %+v", gaveUp)
	}
	ex := net.ExhaustedLinks()
	if ex[Link{From: 0, To: 1}] != 1 {
		t.Fatalf("ExhaustedLinks = %v, want {0->1: 1}", ex)
	}
	net.ClearExhaustedLinks()
	if len(net.ExhaustedLinks()) != 0 {
		t.Fatal("ClearExhaustedLinks did not reset")
	}
}

// Per-directed-link loss draws must not depend on how transmissions on
// other links interleave: swapping the send order of two transfers on
// distinct links leaves each link's outcome trace unchanged.
func TestLinkLossDeterministicAcrossInterleaving(t *testing.T) {
	type key struct {
		ev       string
		src, dst NodeID
	}
	run := func(order []Message) map[key]int {
		sim := NewSim()
		net := NewNetwork(sim, lineDeployment(4), DefaultRadio(), newPhaseAcct())
		net.EnableReliable(ReliableConfig{})
		net.SetLinkLossRate(0, 1, 0.5)
		net.SetLinkLossRate(1, 0, 0.5)
		net.SetLinkLossRate(2, 3, 0.5)
		net.SetLinkLossRate(3, 2, 0.5)
		counts := map[key]int{}
		net.SetTracer(func(ev TraceEvent) { counts[key{ev.Event, ev.Src, ev.Dst}]++ })
		for i := range make([]struct{}, len(order)) {
			net.Send(order[i])
		}
		sim.Run()
		return counts
	}
	a := Message{Kind: 1, Src: 0, Dst: 1, Phase: "p", Size: 120}
	b := Message{Kind: 1, Src: 3, Dst: 2, Phase: "p", Size: 120}
	ab := run([]Message{a, b})
	ba := run([]Message{b, a})
	if len(ab) != len(ba) {
		t.Fatalf("event shapes differ: %v vs %v", ab, ba)
	}
	for k, v := range ab {
		if ba[k] != v {
			t.Fatalf("interleaving changed link outcomes at %+v: %d vs %d", k, v, ba[k])
		}
	}
}

// SetLinkLossRate is directional: loss in one direction must not affect
// the reverse direction, and rate <= 0 removes the override.
func TestLinkLossAsymmetric(t *testing.T) {
	sim := NewSim()
	net := NewNetwork(sim, lineDeployment(3), DefaultRadio(), newPhaseAcct())
	net.SetLinkLossRate(0, 1, 1.0)
	got := map[NodeID]int{}
	net.SetHandler(0, func(m Message) { got[0]++ })
	net.SetHandler(1, func(m Message) { got[1]++ })
	net.Send(Message{Kind: 1, Src: 0, Dst: 1, Phase: "p", Size: 10})
	net.Send(Message{Kind: 1, Src: 1, Dst: 0, Phase: "p", Size: 10})
	sim.Run()
	if got[1] != 0 || got[0] != 1 {
		t.Fatalf("asymmetric loss broken: deliveries = %v", got)
	}
	net.SetLinkLossRate(0, 1, 0)
	net.Send(Message{Kind: 1, Src: 0, Dst: 1, Phase: "p", Size: 10})
	sim.Run()
	if got[1] != 1 {
		t.Fatalf("removing the override should restore delivery, got %v", got)
	}
}

// With reliable transport on, SlotFor must cover the full worst-case
// retransmission window so slotted schedules stay valid under loss.
func TestSlotForCoversRetransmissionWindow(t *testing.T) {
	sim := NewSim()
	net := NewNetwork(sim, lineDeployment(3), DefaultRadio(), nil)
	plain := net.SlotFor(100)
	net.EnableReliable(ReliableConfig{})
	cfg := ReliableConfig{}.withDefaults()
	want := Time(0)
	air := net.MaxAirTime(100)
	ackAir := net.Radio.AirTime(net.Radio.Packets(cfg.AckBytes), cfg.AckBytes) + 1e-6
	for a := 0; a <= cfg.MaxRetries; a++ {
		want += air + ackAir + cfg.backoff(a)
	}
	got := net.SlotFor(100)
	if got < want {
		t.Fatalf("reliable SlotFor(100) = %v, want >= %v", got, want)
	}
	if got <= plain {
		t.Fatalf("reliable slot %v should exceed best-effort slot %v", got, plain)
	}
	// A transfer started at a slot boundary finishes (or gives up)
	// within the slot: last timer fires strictly before the slot ends.
	net.LinkDown(0, 1)
	done := sim.Now() + got
	net.Send(Message{Kind: 1, Src: 0, Dst: 1, Phase: "p", Size: 100})
	last := Time(0)
	for sim.Pending() > 0 {
		sim.Run()
		last = sim.Now()
	}
	if last >= done {
		t.Fatalf("retransmission window %v spills past slot %v", last, done)
	}
}

// The reliable path must keep the byte ledger consistent: partial
// arrivals decrement packets and bytes together so the receiver's
// accounted bytes sum to the message size exactly once.
func TestReliableByteConservation(t *testing.T) {
	acct := newPhaseAcct()
	sim, net := reliableNet(3, acct)
	net.SetLossRate(0.4, 7)
	net.SetHandler(1, func(m Message) {})
	const size = 500 // 13 packets
	net.Send(Message{Kind: 3, Src: 0, Dst: 1, Phase: "data", Size: size})
	sim.Run()
	if net.GiveUps != 0 {
		t.Skip("transfer gave up under this seed; byte identity checked elsewhere")
	}
	// Non-duplicate receiver bytes must equal the message size: every
	// payload byte arrives exactly once across all attempts.
	if gotB := acct.rx[1]["data"][1]; gotB != size {
		t.Fatalf("receiver accounted %dB, want exactly %dB", gotB, size)
	}
}

func TestDeadSenderSendsNothingReliable(t *testing.T) {
	sim, net := reliableNet(3, newPhaseAcct())
	net.KillNode(0)
	net.Send(Message{Kind: 1, Src: 0, Dst: 1, Phase: "p", Size: 10})
	sim.Run()
	if net.Retx != 0 || net.GiveUps != 0 {
		t.Fatal("dead sender should transmit nothing")
	}
}

var _ ReliabilityAccountant = (*phaseAcct)(nil)
