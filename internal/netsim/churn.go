package netsim

import (
	"math"
	"math/rand"

	"sensjoin/internal/geom"
)

// Churn & mobility fault injection.
//
// A Churn drives scheduled node deaths, rejoins and random-waypoint
// mobility through the simulator's event heap: every tick is a regular
// heap event and every random draw comes from one seeded stream consumed
// in tick order, so a run with churn replays bit-identically for the
// same seed. Mobility never mutates the shared topology.Deployment —
// the injector keeps its own position copy and expresses reachability
// changes by toggling original neighbor-graph links via LinkDown/LinkUp
// as nodes drift out of and back into radio range (links can only
// disappear and reappear; no new links form, so neighbor lists, slot
// schedules and audits keep their meaning).
//
// The injector's tick handlers mutate cross-node state (the dead flags
// and the down-link map), so attaching churn reverts a sharded simulator
// to the classic engine — which is also what makes "bit-identical at any
// shard/worker count" hold by construction.

// ChurnEventKind classifies an injector event.
type ChurnEventKind uint8

const (
	// ChurnDeath is a node taken offline.
	ChurnDeath ChurnEventKind = iota
	// ChurnRejoin is a dead node brought back online.
	ChurnRejoin
	// ChurnMove is a mobility step that flipped at least one link;
	// Arg carries the number of links that changed state.
	ChurnMove
)

// ChurnEvent is one injector action, reported through Churn.OnEvent so
// the trace layer can journal it (netsim cannot import trace).
type ChurnEvent struct {
	At   Time
	Kind ChurnEventKind
	Node NodeID
	Arg  int
}

// ChurnConfig tunes the injector. The zero value of every field but
// Rate selects a sensible default; Rate 0 disables events entirely
// (ticks still fire if scheduled, but draw nothing — a rate-0 injector
// that is never attached leaves runs byte-identical to no churn).
type ChurnConfig struct {
	// Seed seeds the injector's private draw stream.
	Seed int64
	// Rate is the per-node probability of a churn event per epoch.
	Rate float64
	// Epoch is the tick period in simulated seconds (default 30).
	Epoch Time
	// DeathShare is the fraction of churn events that are deaths; the
	// rest are mobility events (default 0.15).
	DeathShare float64
	// RejoinProb is the per-epoch probability that a dead node comes
	// back online (default 0.5).
	RejoinProb float64
	// Speed is the waypoint movement speed in m/s (default 1).
	Speed float64
	// WanderFactor scales the waypoint distance: a move event picks a
	// target within WanderFactor×Range of the node's home (deployment)
	// position (default 1.5). Anchoring waypoints at home keeps mobility
	// stationary — nodes drift out of range and back — instead of a
	// diffusive random walk that strands ever more of the network out of
	// radio reach.
	WanderFactor float64
}

func (c ChurnConfig) withDefaults() ChurnConfig {
	if c.Epoch == 0 {
		c.Epoch = 30
	}
	if c.DeathShare == 0 {
		c.DeathShare = 0.15
	}
	if c.RejoinProb == 0 {
		c.RejoinProb = 0.5
	}
	if c.Speed == 0 {
		c.Speed = 1
	}
	if c.WanderFactor == 0 {
		c.WanderFactor = 1.5
	}
	return c
}

// Churn is the fault injector. Create with NewChurn, then call
// Cover(until) before each execution window so ticks are scheduled
// exactly as far as the simulation is about to run (the event heap
// drains completely on Sim.Run, so pre-scheduling ticks to a far
// horizon would make all of them fire during the first round).
type Churn struct {
	cfg ChurnConfig
	net *Network
	rng *rand.Rand

	// pos is the injector-owned position copy; Dep.Pos stays immutable.
	// home keeps the original deployment positions that waypoint draws
	// anchor to.
	pos    []geom.Point
	home   []geom.Point
	target []geom.Point
	moving []bool
	// downed tracks the links this injector took down, so it never
	// re-raises a link some other failure injection owns.
	downed  map[linkKey]bool
	covered Time

	met ChurnMetrics

	// OnEvent observes every death, rejoin and link-flipping move.
	OnEvent func(ev ChurnEvent)

	// Counters, cumulative across the injector's lifetime.
	Deaths, Rejoins, Moves, LinkFlaps, Ticks int
}

// NewChurn attaches a churn injector to the network. Sharded simulation
// reverts to the classic engine (see package comment).
func NewChurn(n *Network, cfg ChurnConfig) *Churn {
	cfg = cfg.withDefaults()
	n.fallbackFromSharding("churn injection")
	c := &Churn{
		cfg:    cfg,
		net:    n,
		rng:    rand.New(rand.NewSource(churnSeed(cfg.Seed))),
		pos:    append([]geom.Point(nil), n.Dep.Pos...),
		home:   append([]geom.Point(nil), n.Dep.Pos...),
		target: make([]geom.Point, n.Dep.N()),
		moving: make([]bool, n.Dep.N()),
		downed: make(map[linkKey]bool),
	}
	return c
}

// churnSeed mixes the config seed through the splitmix64 finalizer so
// adjacent experiment seeds get well-separated draw streams.
func churnSeed(seed int64) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z & (1<<63 - 1))
}

// SetMetrics installs live instruments (zero value disables).
func (c *Churn) SetMetrics(m ChurnMetrics) { c.met = m }

// Config returns the effective configuration (defaults applied).
func (c *Churn) Config() ChurnConfig { return c.cfg }

// Cover schedules churn ticks from the last covered instant up to and
// including until. Call it before each Sim.Run window; ticks that would
// land before the current simulated time are skipped (they cannot be
// injected into the past), and covered time never rewinds.
func (c *Churn) Cover(until Time) {
	if until <= c.covered {
		return
	}
	now := c.net.Sim.Now()
	for t := c.nextTick(); t <= until; t += c.cfg.Epoch {
		if t < now {
			continue
		}
		at := t
		c.net.Sim.Schedule(at, func() { c.tick(at) })
	}
	c.covered = until
}

// nextTick returns the first tick instant strictly after the covered
// horizon, keeping ticks on the fixed k×Epoch grid regardless of how
// execution windows slice the timeline.
func (c *Churn) nextTick() Time {
	k := math.Floor(c.covered/c.cfg.Epoch) + 1
	return k * c.cfg.Epoch
}

// tick is one churn epoch: advance movers and flip the links their
// drift crossed, then draw deaths, rejoins and new movements per node in
// ascending id order. The draw order is fixed, so the stream replays.
func (c *Churn) tick(at Time) {
	c.Ticks++
	c.met.Ticks.Inc()
	n := c.net.Dep.N()
	// Phase 1: movement. Every currently-moving node advances toward its
	// waypoint; links of moved nodes are re-evaluated against the radio
	// range. Dead nodes stay frozen where they fell.
	step := c.cfg.Speed * c.cfg.Epoch
	for id := 1; id < n; id++ {
		if !c.moving[id] || !c.net.Alive(NodeID(id)) {
			continue
		}
		c.advance(NodeID(id), step)
		flips := c.refreshLinks(NodeID(id))
		if flips > 0 {
			c.Moves++
			c.met.Moves.Inc()
			c.emit(ChurnEvent{At: at, Kind: ChurnMove, Node: NodeID(id), Arg: flips})
		}
	}
	if c.cfg.Rate <= 0 {
		return
	}
	// Phase 2: event draws, one pass in ascending id order. The base
	// station is exempt: the paper's protocols have no story for a dying
	// sink, and neither does this reproduction.
	for id := 1; id < n; id++ {
		nid := NodeID(id)
		if !c.net.Alive(nid) {
			if c.rng.Float64() < c.cfg.RejoinProb {
				c.net.ReviveNode(nid)
				c.Rejoins++
				c.met.Rejoins.Inc()
				c.emit(ChurnEvent{At: at, Kind: ChurnRejoin, Node: nid})
			}
			continue
		}
		if c.rng.Float64() >= c.cfg.Rate {
			continue
		}
		if c.rng.Float64() < c.cfg.DeathShare {
			c.net.KillNode(nid)
			c.Deaths++
			c.met.Deaths.Inc()
			c.emit(ChurnEvent{At: at, Kind: ChurnDeath, Node: nid})
			continue
		}
		// Mobility event: pick a fresh waypoint within the wander radius
		// of the node's home position and start (or redirect) the drift.
		// Draws are consumed even when the node was already moving,
		// keeping the stream aligned.
		ang := c.rng.Float64() * 2 * math.Pi
		rad := c.cfg.WanderFactor * c.net.Dep.Range * math.Sqrt(c.rng.Float64())
		c.target[id] = geom.Point{X: c.home[id].X + rad*math.Cos(ang), Y: c.home[id].Y + rad*math.Sin(ang)}
		c.moving[id] = true
	}
}

// advance moves id one step toward its waypoint. A mobility event is a
// round trip: a node that reaches an away waypoint turns back toward
// home (no RNG draw — the stream stays aligned), and a node that
// reaches home stops. Without the return leg a rarely-redrawn waypoint
// would strand nodes out of radio range for hundreds of epochs.
func (c *Churn) advance(id NodeID, step float64) {
	p, t := c.pos[id], c.target[id]
	d := geom.Dist(p, t)
	if d > step {
		f := step / d
		c.pos[id] = geom.Point{X: p.X + f*(t.X-p.X), Y: p.Y + f*(t.Y-p.Y)}
		return
	}
	c.pos[id] = t
	if t != c.home[id] {
		c.target[id] = c.home[id]
		return
	}
	c.moving[id] = false
}

// refreshLinks re-evaluates every original neighbor link of id against
// the injector's current positions, taking links down as the node
// drifts out of range and raising the ones it took down when the node
// drifts back. Returns the number of links that changed state.
func (c *Churn) refreshLinks(id NodeID) int {
	flips := 0
	r2 := c.net.Dep.Range * c.net.Dep.Range
	for _, v := range c.net.Dep.Neighbors[id] {
		key := mkLink(id, v)
		inRange := geom.Dist2(c.pos[id], c.pos[v]) <= r2
		switch {
		case !inRange && !c.downed[key]:
			c.net.LinkDown(id, v)
			c.downed[key] = true
			flips++
			c.LinkFlaps++
			c.met.LinkFlaps.Inc()
		case inRange && c.downed[key]:
			c.net.LinkUp(id, v)
			delete(c.downed, key)
			flips++
			c.LinkFlaps++
			c.met.LinkFlaps.Inc()
		}
	}
	return flips
}

func (c *Churn) emit(ev ChurnEvent) {
	if c.OnEvent != nil {
		c.OnEvent(ev)
	}
}
