package netsim

import (
	"fmt"
	"testing"

	"sensjoin/internal/topology"
)

// floodResult captures everything observable about a flood run: per-node
// reception logs (order and payload) and the final clock/step counts.
func floodRun(t *testing.T, dep *topology.Deployment, shards, workers int) string {
	t.Helper()
	sim := NewSim()
	if shards > 1 {
		sim.EnableSharding(PartitionStrips(dep, shards), shards, DefaultRadio().AirTime(1, 0), workers)
	}
	net := NewNetwork(sim, dep, DefaultRadio(), nil)
	net.BindSharding()
	n := dep.N()
	seen := make([]bool, n)
	log := make([][]string, n)
	for i := 0; i < n; i++ {
		id := NodeID(i)
		net.SetHandler(id, func(m Message) {
			log[id] = append(log[id], fmt.Sprintf("%d<-%d@%d", id, m.Src, m.Kind))
			if seen[id] {
				return
			}
			seen[id] = true
			net.Send(Message{Kind: m.Kind + 1, Src: id, Dst: BroadcastID, Phase: "flood", Size: 10})
		})
	}
	seen[0] = true
	sim.ScheduleNode(0, 0, 0.5, func() {
		net.Send(Message{Kind: 1, Src: 0, Dst: BroadcastID, Phase: "flood", Size: 10})
	})
	sim.Run()
	out := fmt.Sprintf("now=%.9f steps=%d\n", sim.Now(), sim.Steps())
	for i := 0; i < n; i++ {
		out += fmt.Sprintf("%d: %v\n", i, log[i])
	}
	return out
}

// TestShardedFloodMatchesClassic floods a broadcast wave through a line
// deployment — every hop crosses time windows, and with several shards
// the wave repeatedly crosses region boundaries. Every per-node
// observable must be byte-identical to the classic engine for any shard
// and worker count.
func TestShardedFloodMatchesClassic(t *testing.T) {
	dep := topology.Line(40, 30, 50)
	want := floodRun(t, dep, 1, 1)
	for _, shards := range []int{2, 4, 8} {
		for _, workers := range []int{1, 4} {
			if got := floodRun(t, dep, shards, workers); got != want {
				t.Fatalf("shards=%d workers=%d diverged:\n got: %s\nwant: %s", shards, workers, got, want)
			}
		}
	}
}

// TestShardedUnicastChain relays a unicast message down the line —
// exercising the cross-region inbox hand-off and per-region freelists.
func TestShardedUnicastChain(t *testing.T) {
	dep := topology.Line(20, 30, 50)
	run := func(shards int) string {
		sim := NewSim()
		if shards > 1 {
			sim.EnableSharding(PartitionStrips(dep, shards), shards, DefaultRadio().AirTime(1, 0), shards)
		}
		net := NewNetwork(sim, dep, DefaultRadio(), nil)
		net.BindSharding()
		var arrived Time
		for i := 1; i < dep.N(); i++ {
			id := NodeID(i)
			net.SetHandler(id, func(m Message) {
				if int(id) == dep.N()-1 {
					arrived = sim.sendTimeForTest(id)
					return
				}
				net.Send(Message{Kind: m.Kind, Src: id, Dst: id + 1, Phase: "relay", Size: 24})
			})
		}
		sim.ScheduleNode(0, 0, 0, func() {
			net.Send(Message{Kind: 7, Src: 0, Dst: 1, Phase: "relay", Size: 24})
		})
		sim.Run()
		return fmt.Sprintf("%.9f %d", arrived, sim.Steps())
	}
	want := run(1)
	for _, shards := range []int{2, 4} {
		if got := run(shards); got != want {
			t.Fatalf("shards=%d: got %s want %s", shards, got, want)
		}
	}
}

// sendTimeForTest exposes the executing node's clock to tests.
func (s *Sim) sendTimeForTest(id NodeID) Time {
	if sh := s.sh; sh != nil && sh.running.Load() {
		return sh.regions[sh.regionOf[id]].now
	}
	return s.now
}

// TestPlainSchedulePanicsDuringShardedRun pins the contract: event
// handlers must use ScheduleNode under sharding.
func TestPlainSchedulePanicsDuringShardedRun(t *testing.T) {
	dep := topology.Line(4, 30, 50)
	sim := NewSim()
	sim.EnableSharding(PartitionStrips(dep, 2), 2, 0.001, 1)
	panicked := false
	sim.ScheduleNode(0, 0, 0, func() {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		sim.Schedule(1, func() {})
	})
	sim.Run()
	if !panicked {
		t.Fatal("plain Schedule during a sharded run did not panic")
	}
}

// TestDisableShardingMergesPending checks that events scheduled before
// the fallback survive it in deterministic order.
func TestDisableShardingMergesPending(t *testing.T) {
	dep := topology.Line(8, 30, 50)
	sim := NewSim()
	sim.EnableSharding(PartitionStrips(dep, 4), 4, 0.001, 1)
	var order []int
	for i := 0; i < 8; i++ {
		id := NodeID(i + 1)
		i := i
		sim.ScheduleNode(id, id, 1.0, func() { order = append(order, i) })
	}
	sim.DisableSharding()
	if sim.Sharded() {
		t.Fatal("still sharded after DisableSharding")
	}
	sim.Run()
	if len(order) != 8 {
		t.Fatalf("ran %d of 8 events", len(order))
	}
	// Equal times merge by (region, seq): node order along the line.
	for i, v := range order {
		if v != i {
			t.Fatalf("order %v not deterministic by region", order)
		}
	}
}

// TestShardsOneIsNoOp: a single region must not change the engine at all.
func TestShardsOneIsNoOp(t *testing.T) {
	dep := topology.Line(4, 30, 50)
	sim := NewSim()
	sim.EnableSharding(PartitionStrips(dep, 1), 1, 0.001, 1)
	if sim.Sharded() {
		t.Fatal("shards=1 enabled sharding")
	}
}
